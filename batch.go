package hetwire

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"hetwire/internal/batch"
)

// MaxSweepPoints caps how many scenarios one batch (or daemon sweep job) may
// expand to. It bounds both the admission cost of validating a batch and the
// memory its merged response retains; larger studies split into several
// batches, which the result cache then stitches together for free.
const MaxSweepPoints = 1024

// BatchSweep describes cartesian sweep axes: the cross product of
// models × benchmarks × clusters × instruction counts, every combination
// becoming one scenario. Empty Clusters and Ns axes default to a single
// unset value (the config's topology, DefaultRunInstructions).
type BatchSweep struct {
	Models     []string `json:"models,omitempty"`
	Benchmarks []string `json:"benchmarks,omitempty"`
	Clusters   []int    `json:"clusters,omitempty"`
	Ns         []uint64 `json:"ns,omitempty"`
	// Config optionally carries the base machine configuration every
	// swept scenario starts from (see RunRequest.Config).
	Config json.RawMessage `json:"config,omitempty"`
}

// BatchRequest asks for many simulations as one first-class request: an
// explicit scenario list, cartesian sweep axes, or both (explicit scenarios
// first). Expansion order is deterministic, and execution — however parallel
// — reports results in expansion order with per-scenario error isolation.
type BatchRequest struct {
	// Scenarios are explicit per-scenario run requests.
	Scenarios []RunRequest `json:"scenarios,omitempty"`
	// Sweep adds the cross product of its axes after the explicit scenarios.
	Sweep *BatchSweep `json:"sweep,omitempty"`
	// Parallelism bounds concurrent scenario executions (0 = the process
	// CPU-token capacity, i.e. GOMAXPROCS). Whatever the level, results are
	// bit-identical: parallelism changes wall clock, never output.
	Parallelism int `json:"parallelism,omitempty"`
}

// Expand enumerates the batch's scenarios in their canonical order:
// explicit scenarios first, then the sweep's cross product in
// benchmark-major order (benchmarks × models × clusters × ns).
func (b *BatchRequest) Expand() ([]RunRequest, error) {
	reqs := append([]RunRequest(nil), b.Scenarios...)
	if b.Sweep != nil {
		s := b.Sweep
		if len(s.Models) == 0 || len(s.Benchmarks) == 0 {
			return nil, &RequestError{Code: ReasonBadRequest,
				Err: fmt.Errorf("hetwire: batch sweep needs at least one model and one benchmark")}
		}
		clusters := s.Clusters
		if len(clusters) == 0 {
			clusters = []int{0}
		}
		ns := s.Ns
		if len(ns) == 0 {
			ns = []uint64{DefaultRunInstructions}
		}
		for _, bench := range s.Benchmarks {
			for _, m := range s.Models {
				for _, cl := range clusters {
					for _, n := range ns {
						reqs = append(reqs, RunRequest{
							Benchmark: bench,
							Model:     m,
							Clusters:  cl,
							N:         n,
							Config:    s.Config,
						})
					}
				}
			}
		}
	}
	if len(reqs) == 0 {
		return nil, &RequestError{Code: ReasonBadRequest,
			Err: fmt.Errorf("hetwire: batch request has no scenarios (set scenarios and/or sweep)")}
	}
	return reqs, nil
}

// Validate checks the whole batch without running it: the expansion must
// succeed, stay within MaxSweepPoints (ReasonBatchTooLarge otherwise), and
// every expanded scenario must pass RunRequest.Validate — a scenario
// rejection keeps its specific reason code, prefixed with the scenario
// index so callers can locate the offender in a thousand-point sweep.
func (b *BatchRequest) Validate() error {
	if b.Parallelism < 0 {
		return &RequestError{Code: ReasonBadRequest,
			Err: fmt.Errorf("hetwire: batch parallelism must be >= 0, got %d", b.Parallelism)}
	}
	reqs, err := b.Expand()
	if err != nil {
		return err
	}
	if len(reqs) > MaxSweepPoints {
		return &RequestError{Code: ReasonBatchTooLarge,
			Err: fmt.Errorf("hetwire: batch expands to %d scenarios, limit is %d (split the study)",
				len(reqs), MaxSweepPoints)}
	}
	for i := range reqs {
		if err := reqs[i].Validate(); err != nil {
			return &RequestError{Code: ReasonCode(err),
				Err: fmt.Errorf("hetwire: batch scenario %d: %w", i, err)}
		}
	}
	return nil
}

// BatchScenario is one scenario's slot in a batch response, at the index its
// expansion order assigned. Exactly one of Response and Error is set: a
// failed or cancelled scenario never disturbs its neighbours.
type BatchScenario struct {
	Index    int          `json:"index"`
	Request  RunRequest   `json:"request"`
	Response *RunResponse `json:"response,omitempty"`
	Error    string       `json:"error,omitempty"`
	// Reason is the machine-readable code for Error when one applies.
	Reason string `json:"reason,omitempty"`
	// Cached reports that the scenario was served from a result cache
	// (set by the hetwired daemon; always false on the library path).
	Cached bool `json:"cached,omitempty"`
}

// BatchResponse is the deterministic merge of a batch's scenario results:
// Scenarios is always indexed in expansion order regardless of the order
// executions completed in.
type BatchResponse struct {
	Scenarios []BatchScenario `json:"scenarios"`
	Completed int             `json:"completed"`
	Failed    int             `json:"failed"`
	// CacheHits counts scenarios served from a result cache (daemon path).
	CacheHits int `json:"cache_hits,omitempty"`
}

// Execute runs the batch to completion on the process CPU-token pool.
func (b *BatchRequest) Execute() (*BatchResponse, error) {
	return b.ExecuteContext(context.Background())
}

// ExecuteContext validates, expands, and executes the batch with bounded
// parallelism. Scenario failures are isolated into their BatchScenario slot;
// cancelling ctx stops the whole batch (running scenarios stop within
// CtxCheckInterval, unstarted ones are marked cancelled) and returns ctx's
// error alongside the partial response. Completed scenarios are bit-identical
// to running their RunRequest.Execute sequentially, at every parallelism.
func (b *BatchRequest) ExecuteContext(ctx context.Context) (*BatchResponse, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	reqs, err := b.Expand()
	if err != nil {
		return nil, err
	}
	out := &BatchResponse{Scenarios: make([]BatchScenario, len(reqs))}
	errs := batch.Run(ctx, len(reqs), b.Parallelism, func(ctx context.Context, i int) error {
		resp, err := reqs[i].ExecuteContext(ctx)
		if err != nil {
			return err
		}
		out.Scenarios[i].Response = resp
		return nil
	})
	for i := range out.Scenarios {
		sc := &out.Scenarios[i]
		sc.Index = i
		sc.Request = reqs[i]
		switch {
		case errs[i] != nil:
			sc.Error = errs[i].Error()
			if errors.Is(errs[i], context.Canceled) || errors.Is(errs[i], context.DeadlineExceeded) {
				sc.Reason = "cancelled"
			} else {
				sc.Reason = ReasonCode(errs[i])
			}
			out.Failed++
		default:
			out.Completed++
		}
	}
	return out, ctx.Err()
}
