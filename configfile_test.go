package hetwire_test

import (
	"bytes"
	"reflect"
	"testing"

	"hetwire"
	"hetwire/internal/wires"
	"hetwire/internal/xrand"
)

// randomConfig draws one configuration from the space a config file can
// express: a named model, cluster count, latency scale, steering policy,
// link organisation, LS-bit width, and a random subset of the model's
// supported techniques switched off (plus supported extensions switched
// on). Knobs outside this space — custom links, core overrides — are
// excluded because SaveConfigFile does not persist them.
func randomConfig(src *xrand.Source) hetwire.Config {
	models := []hetwire.ModelID{
		hetwire.ModelI, hetwire.ModelII, hetwire.ModelIII, hetwire.ModelIV,
		hetwire.ModelV, hetwire.ModelVI, hetwire.ModelVII, hetwire.ModelVIII,
		hetwire.ModelIX, hetwire.ModelX,
	}
	cfg := hetwire.DefaultConfig().WithModel(models[src.Intn(len(models))])
	if src.Bool(0.5) {
		cfg.Topology = hetwire.HierRing16
	}
	cfg.LatencyScale = 1 + src.Intn(3)
	switch src.Intn(3) {
	case 0:
		cfg.Steering = hetwire.SteerDynamic
	case 1:
		cfg.Steering = hetwire.SteerStatic
	case 2:
		cfg.Steering = hetwire.SteerRoundRobin
	}
	hasB := cfg.Model.Link.Has(wires.B)
	hasPW := cfg.Model.Link.Has(wires.PW)
	hasL := cfg.Model.Link.Has(wires.L)
	cfg.LinkHeterogeneous = hasB && hasPW && src.Bool(0.3)

	// Randomly disable supported techniques; never enable unsupported ones
	// (Validate would reject the config before it ever hit a file).
	t := &cfg.Tech
	maybeOff := func(b *bool) {
		if *b && src.Bool(0.4) {
			*b = false
		}
	}
	maybeOff(&t.LWireCachePipeline)
	maybeOff(&t.NarrowOperands)
	maybeOff(&t.MispredictOnL)
	maybeOff(&t.PWReadyOperands)
	maybeOff(&t.PWStoreData)
	maybeOff(&t.PWLoadBalance)
	if t.NarrowOperands && src.Bool(0.3) {
		t.NarrowOracle = true
	}
	if hasL {
		t.FrequentValueEnc = src.Bool(0.3)
		t.CriticalWordOnL = src.Bool(0.3)
		t.TransmissionLineL = src.Bool(0.3)
	}
	if t.LWireCachePipeline {
		t.LSBits = 4 + src.Intn(13) // [4,16]
	}
	return cfg
}

// TestConfigFileRoundTripProperty: for any expressible configuration,
// load(save(cfg)) == cfg, a second save is byte-identical (the canonical
// form is a fixpoint), and ConfigHash agrees across the round trip. The
// server's result cache keys on this serialization, so drift here would
// silently split or alias cache entries.
func TestConfigFileRoundTripProperty(t *testing.T) {
	dir := t.TempDir()
	src := xrand.New(0xC0FF_EE)
	for trial := 0; trial < 200; trial++ {
		cfg := randomConfig(src)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid config: %v", trial, err)
		}
		path := dir + "/cfg.json"
		if err := hetwire.SaveConfigFile(path, cfg); err != nil {
			t.Fatalf("trial %d: save: %v", trial, err)
		}
		loaded, err := hetwire.LoadConfigFile(path)
		if err != nil {
			t.Fatalf("trial %d: load: %v", trial, err)
		}
		if !reflect.DeepEqual(cfg, loaded) {
			t.Fatalf("trial %d: load(save(cfg)) != cfg\n save: %+v\n load: %+v", trial, cfg, loaded)
		}
		raw1, err := hetwire.ConfigJSON(cfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		raw2, err := hetwire.ConfigJSON(loaded)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !bytes.Equal(raw1, raw2) {
			t.Fatalf("trial %d: canonical JSON not a fixpoint:\n%s\nvs\n%s", trial, raw1, raw2)
		}
		h1, err1 := hetwire.ConfigHash(cfg)
		h2, err2 := hetwire.ConfigHash(loaded)
		if err1 != nil || err2 != nil || h1 != h2 {
			t.Fatalf("trial %d: hash mismatch %q vs %q (%v, %v)", trial, h1, h2, err1, err2)
		}
	}
}

// TestConfigHashDiscriminates: equivalent configs built through different
// paths hash equal; changing any persisted knob changes the hash.
func TestConfigHashDiscriminates(t *testing.T) {
	a := hetwire.DefaultConfig().WithModel(hetwire.ModelVII)
	b, err := hetwire.ConfigFromJSON([]byte(`{"model":"VII","clusters":4}`))
	if err != nil {
		t.Fatal(err)
	}
	ha, err := hetwire.ConfigHash(a)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := hetwire.ConfigHash(b)
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Errorf("equivalent configs hash differently: %s vs %s", ha, hb)
	}
	c := a
	c.LatencyScale = 2
	if hc, _ := hetwire.ConfigHash(c); hc == ha {
		t.Error("latency change did not change the hash")
	}
	d := a
	d.Tech.NarrowOperands = false
	if hd, _ := hetwire.ConfigHash(d); hd == ha {
		t.Error("technique change did not change the hash")
	}
}
