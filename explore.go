package hetwire

import (
	"context"
	"fmt"
	"sort"

	"hetwire/internal/batch"
	"hetwire/internal/config"
	"hetwire/internal/core"
	"hetwire/internal/energy"
	"hetwire/internal/workload"
)

// DesignPoint is one candidate link composition in a design-space
// exploration, with its measured performance and energy.
type DesignPoint struct {
	Link       config.LinkSpec
	MetalArea  float64
	IPC        float64
	RelEnergy  float64 // relative processor energy vs the B-only baseline
	RelED2     float64 // relative ED^2 vs the B-only baseline
	PaperModel ModelID // matching named model, or 0 if novel
}

// ExploreResult is a full design-space sweep under one metal-area budget.
type ExploreResult struct {
	AreaBudget float64
	ICFraction float64
	// Points contains every evaluated composition, sorted by ascending
	// relative ED^2 (best first).
	Points []DesignPoint
}

// Best returns the ED^2-optimal design.
func (r ExploreResult) Best() DesignPoint { return r.Points[0] }

// enumerateLinks lists every feasible heterogeneous link composition within
// the metal-area budget, in deterministic enumeration order: wires step in
// whole transfer widths (72 B, 72 PW, 18 L per direction) and at least one
// wide (B or PW) plane is required for 72-bit messages.
func enumerateLinks(areaBudget float64) []config.LinkSpec {
	var links []config.LinkSpec
	for b := 0; b*72 <= int(areaBudget*144/2); b++ {
		for pw := 0; ; pw++ {
			areaSoFar := (2*float64(b*72) + float64(pw*72)) / 144
			if areaSoFar > areaBudget+1e-9 {
				break
			}
			for l := 0; ; l++ {
				link := config.LinkSpec{BWires: b * 72, PWWires: pw * 72, LWires: l * 18}
				if link.MetalArea() > areaBudget+1e-9 {
					break
				}
				if b == 0 && pw == 0 {
					l++
					continue // need a wide plane for 72-bit messages
				}
				links = append(links, link)
			}
		}
	}
	return links
}

// ExploreArea enumerates every feasible heterogeneous link composition
// within the given metal-area budget (in Model-I link units: Model I = 1.0,
// the paper's largest designs = 3.0), simulates each on the benchmark
// suite, and ranks them by total-processor ED^2 — making the paper's
// Section 3 remark ("evaluations of this nature help identify the most
// promising ways to exploit such a resource") an executable query.
//
// The whole design × benchmark matrix runs as one flat batch on the engine,
// so scenario-level parallelism covers the entire exploration rather than
// one suite at a time; icFraction is the interconnect share of baseline
// processor energy (0.10 or 0.20).
func ExploreArea(areaBudget, icFraction float64, opt Options) ExploreResult {
	opt = opt.withDefaults()
	res := ExploreResult{AreaBudget: areaBudget, ICFraction: icFraction}

	// The normalisation baseline: the paper's Model I.
	baseCfg := config.Default()
	baseRun := runSuite(baseCfg, opt)
	baseMeas := baseRun.measurement(inventoryFor(baseCfg))
	em := energy.Model{Baseline: baseMeas, ICFraction: icFraction}

	named := make(map[config.LinkSpec]ModelID, 10)
	for _, m := range config.Models() {
		named[m.Link] = m.ID
	}

	links := enumerateLinks(areaBudget)
	nb := len(opt.Benchmarks)
	profs := make([]workload.Profile, nb)
	for i, name := range opt.Benchmarks {
		prof, ok := workload.ByName(name)
		if !ok {
			panic(fmt.Sprintf("hetwire: unknown benchmark %q", name))
		}
		profs[i] = prof
	}
	cfgs := make([]config.Config, len(links))
	for i, link := range links {
		cfgs[i] = config.Default().WithLink(link)
	}

	// One flat scenario list: item i is (link i/nb, benchmark i%nb).
	sts := make([]core.Stats, len(links)*nb)
	errs := batch.Run(context.Background(), len(sts), opt.Parallelism, func(_ context.Context, i int) error {
		proc := core.New(cfgs[i/nb])
		gen := workload.NewGenerator(profs[i%nb])
		proc.Warmup(gen, opt.Warmup)
		sts[i] = proc.Run(gen, opt.Instructions)
		return nil
	})
	for i, err := range errs {
		if err != nil {
			panic(fmt.Sprintf("hetwire: explore scenario %d: %v", i, err))
		}
	}

	for li, link := range links {
		run := suiteRun{perBench: make(map[string]core.Stats, nb)}
		for bi, name := range opt.Benchmarks {
			st := sts[li*nb+bi]
			run.perBench[name] = st
			run.ipcs = append(run.ipcs, st.IPC())
		}
		meas := run.measurement(inventoryFor(cfgs[li]))
		res.Points = append(res.Points, DesignPoint{
			Link:       link,
			MetalArea:  link.MetalArea(),
			IPC:        run.AMIPC(),
			RelEnergy:  em.RelativeProcessorEnergy(meas),
			RelED2:     em.RelativeED2(meas),
			PaperModel: named[link],
		})
	}
	sort.Slice(res.Points, func(i, j int) bool { return res.Points[i].RelED2 < res.Points[j].RelED2 })
	return res
}
