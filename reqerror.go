package hetwire

import "errors"

// Machine-readable reason codes for admission-validation failures. The
// hetwired daemon returns the code alongside the human-readable message and
// counts rejections per code in /metrics, so operators can tell a client
// sending oversized budgets apart from one sending typo'd benchmark names
// without parsing error strings.
const (
	// ReasonBadRequest: the request shape is wrong (e.g. neither or both of
	// benchmark and benchmarks set, undecodable body).
	ReasonBadRequest = "bad_request"
	// ReasonBudgetExceeded: the instruction budget is over MaxInstructions.
	ReasonBudgetExceeded = "budget_exceeded"
	// ReasonTooManyPrograms: more programs than MaxBenchmarks.
	ReasonTooManyPrograms = "too_many_programs"
	// ReasonUnknownBenchmark: a benchmark or kernel name that does not exist.
	ReasonUnknownBenchmark = "unknown_benchmark"
	// ReasonBadConfig: the embedded configuration document, model override,
	// or cluster override does not resolve to a valid machine.
	ReasonBadConfig = "bad_config"
	// ReasonTopologyMismatch: a multiprogrammed request with more programs
	// than the resolved topology has clusters.
	ReasonTopologyMismatch = "topology_mismatch"
	// ReasonProbeUnsupported: a telemetry-probed execution was requested for
	// a request shape that cannot be probed (multiprogrammed runs).
	ReasonProbeUnsupported = "probe_unsupported"
	// ReasonSweepTooLarge: a sweep expands to more points than the daemon's
	// per-job limit.
	ReasonSweepTooLarge = "sweep_too_large"
	// ReasonBatchTooLarge: a batch request expands to more scenarios than
	// MaxSweepPoints (or the daemon's configured per-job limit).
	ReasonBatchTooLarge = "batch_too_large"
	// ReasonInvalidRequest is the fallback code for validation errors that
	// carry no specific reason.
	ReasonInvalidRequest = "invalid_request"
	// ReasonUnknownTenant: the request carried an API key that matches no
	// configured tenant.
	ReasonUnknownTenant = "unknown_tenant"
	// ReasonTenantRateLimited: the tenant's submission token bucket is
	// exhausted; Retry-After carries the tenant's own refill time.
	ReasonTenantRateLimited = "tenant_rate_limited"
	// ReasonTenantQueueShare: the tenant already occupies its configured
	// share of the job queue.
	ReasonTenantQueueShare = "tenant_queue_share"
	// ReasonLoadShed: the daemon is shedding bulk-lane work under sustained
	// queue saturation; interactive submissions are still admitted.
	ReasonLoadShed = "load_shed"
)

// RequestError is a validation failure with a machine-readable reason code.
// Error() returns the wrapped message unchanged, so existing callers that
// match on strings keep working; new callers switch on Code (or use
// ReasonCode, which handles arbitrary errors).
type RequestError struct {
	Code string
	Err  error
}

func (e *RequestError) Error() string { return e.Err.Error() }
func (e *RequestError) Unwrap() error { return e.Err }

// ReasonCode extracts the machine-readable reason from a validation error.
// Errors that are not RequestError (or carry an empty code) fold to
// ReasonInvalidRequest so metric label sets stay bounded.
func ReasonCode(err error) string {
	var re *RequestError
	if errors.As(err, &re) && re.Code != "" {
		return re.Code
	}
	return ReasonInvalidRequest
}
