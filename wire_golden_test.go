package hetwire_test

// Wire-format golden corpus: the binary serving path (hetwire-bin/v1,
// internal/wire) must be behaviour-invisible. Two guards live here, outside
// package hetwire because internal/wire imports it:
//
//   - TestGoldenWireFixtures pins the encoded bytes themselves for a
//     representative scenario slice under testdata/golden-wire/. Any change
//     to the frame layout or payload encoding fails the byte comparison and
//     must be acknowledged with -update-golden-wire (a format-version event,
//     see DESIGN §10).
//   - TestGoldenWireCrossPath runs the full 72-scenario golden matrix and
//     proves decode(encode(r)) reaches the same ResultHash as the JSON path
//     — the binary wire is bit-identical to the debug view, scenario by
//     scenario.
//
// Refresh the byte fixtures intentionally with:
//
//	go test -run TestGoldenWireFixtures -update-golden-wire .

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hetwire"
	"hetwire/internal/config"
	"hetwire/internal/wire"
)

var updateGoldenWire = flag.Bool("update-golden-wire", false, "rewrite the testdata/golden-wire fixtures")

// The matrix mirrors golden_test.go exactly; it is restated here because
// this file compiles as an external test package.
var wireGoldenModels = []config.ModelID{config.ModelI, config.ModelV, config.ModelVIII}

var wireGoldenTopologies = []struct {
	name string
	topo config.Topology
}{
	{"crossbar4", config.Crossbar4},
	{"hierring16", config.HierRing16},
}

var wireGoldenBenchmarks = []string{"gzip", "gcc", "mcf", "swim", "mesa", "vortex"}

var wireGoldenCounts = []uint64{4_000, 16_000}

// The byte-fixture slice: every model and topology, one int-heavy and one
// fp/streaming benchmark, at the small budget. 12 committed frames cover
// all struct shapes (Stats maps, per-class network rows) without bloating
// the repo.
var wireFixtureBenchmarks = []string{"gcc", "swim"}

const wireFixtureN = 4_000

func modelShort(id config.ModelID) string {
	return strings.TrimPrefix(id.String(), "Model-")
}

func wireFixtureFile(id config.ModelID, topo string, bench string, n uint64) string {
	return filepath.Join("testdata", "golden-wire",
		fmt.Sprintf("%s_%s_%s_n%d.bin", modelShort(id), topo, bench, n))
}

// wireGoldenRun executes one corpus scenario through the serving-path entry
// point (RunRequest.Execute), which is what the daemon encodes.
func wireGoldenRun(t testing.TB, id config.ModelID, topo config.Topology, bench string, n uint64) *hetwire.RunResponse {
	t.Helper()
	req := &hetwire.RunRequest{Benchmark: bench, Model: modelShort(id), Clusters: topo.Clusters(), N: n}
	resp, err := req.Execute()
	if err != nil {
		t.Fatalf("Execute(%v, %s, %s, %d): %v", id, topo, bench, n, err)
	}
	return resp
}

func respHash(t testing.TB, resp *hetwire.RunResponse) string {
	t.Helper()
	if resp.Stats == nil {
		t.Fatal("RunResponse.Stats missing for single run")
	}
	return hetwire.ResultHash(hetwire.Result{Benchmark: resp.Benchmark, Stats: *resp.Stats})
}

// readGoldenHashes loads the pinned ResultHash fixture for one model (the
// same file TestGoldenCorpus compares against).
func readGoldenHashes(t *testing.T, id config.ModelID) map[string]string {
	t.Helper()
	path := filepath.Join("testdata", "golden", fmt.Sprintf("model_%s.json", modelShort(id)))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden fixture missing (run with -update-golden to create): %v", err)
	}
	out := make(map[string]string)
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("golden fixture %s corrupt: %v", path, err)
	}
	return out
}

// TestGoldenWireFixtures pins the encoded frame bytes for the fixture
// slice: encoding the scenario's response must reproduce the committed
// bytes exactly, the committed bytes must decode to the pinned ResultHash,
// and re-encoding the decoded struct must reproduce the frame (the
// canonical-encoding property, on real simulator output rather than fuzz
// inputs).
func TestGoldenWireFixtures(t *testing.T) {
	if *updateGoldenWire {
		if err := os.MkdirAll(filepath.Join("testdata", "golden-wire"), 0o755); err != nil {
			t.Fatal(err)
		}
		for _, id := range wireGoldenModels {
			for _, tp := range wireGoldenTopologies {
				for _, bench := range wireFixtureBenchmarks {
					resp := wireGoldenRun(t, id, tp.topo, bench, wireFixtureN)
					frame, err := wire.EncodeRunResult(resp)
					if err != nil {
						t.Fatal(err)
					}
					path := wireFixtureFile(id, tp.name, bench, wireFixtureN)
					if err := os.WriteFile(path, frame, 0o644); err != nil {
						t.Fatal(err)
					}
					t.Logf("wrote %s (%d bytes)", path, len(frame))
				}
			}
		}
		return
	}
	for _, id := range wireGoldenModels {
		id := id
		golden := readGoldenHashes(t, id)
		for _, tp := range wireGoldenTopologies {
			tp := tp
			for _, bench := range wireFixtureBenchmarks {
				bench := bench
				name := fmt.Sprintf("%s/%s/%s", id, tp.name, bench)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					path := wireFixtureFile(id, tp.name, bench, wireFixtureN)
					want, err := os.ReadFile(path)
					if err != nil {
						t.Fatalf("wire fixture missing (run with -update-golden-wire to create): %v", err)
					}
					if !wire.IsWire(want) {
						t.Fatalf("%s does not start with the frame magic", path)
					}

					resp := wireGoldenRun(t, id, tp.topo, bench, wireFixtureN)
					got, err := wire.EncodeRunResult(resp)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got, want) {
						t.Errorf("encoded frame differs from %s (%d vs %d bytes)\n"+
							"If the format change is intended, refresh with: go test -run TestGoldenWireFixtures -update-golden-wire .",
							path, len(got), len(want))
					}

					dec, err := wire.DecodeRunResult(want)
					if err != nil {
						t.Fatalf("decoding committed fixture: %v", err)
					}
					key := fmt.Sprintf("%s/%s/n=%d", tp.name, bench, uint64(wireFixtureN))
					wantHash, ok := golden[key]
					if !ok {
						t.Fatalf("no golden hash for %s", key)
					}
					if got := respHash(t, dec); got != wantHash {
						t.Errorf("fixture decodes to ResultHash %s, golden corpus pins %s", got, wantHash)
					}

					reenc, err := wire.EncodeRunResult(dec)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(reenc, want) {
						t.Error("re-encoding the decoded fixture is not byte-identical (encoding not canonical)")
					}

					h, err := wire.PeekHeader(want)
					if err != nil {
						t.Fatal(err)
					}
					if h.Type != wire.TypeRunResult {
						t.Errorf("fixture frame type = %#x, want TypeRunResult", h.Type)
					}
					if h.SummaryFloat() != dec.IPC {
						t.Errorf("header summary %g != payload IPC %g (zero-decode peek would lie)", h.SummaryFloat(), dec.IPC)
					}
				})
			}
		}
	}
}

// TestGoldenWireCrossPath is the acceptance gate for the whole wire change:
// all 72 golden scenarios, simulated once each, must reach the same
// ResultHash through three views — the response struct itself, a JSON
// round-trip (the debug/fallback path), and a binary frame round-trip (the
// serving path) — and that hash must equal the pinned golden fixture.
func TestGoldenWireCrossPath(t *testing.T) {
	if *updateGoldenWire {
		t.Skip("updating")
	}
	for _, id := range wireGoldenModels {
		id := id
		golden := readGoldenHashes(t, id)
		for _, tp := range wireGoldenTopologies {
			tp := tp
			for _, bench := range wireGoldenBenchmarks {
				bench := bench
				for _, n := range wireGoldenCounts {
					n := n
					key := fmt.Sprintf("%s/%s/n=%d", tp.name, bench, n)
					t.Run(fmt.Sprintf("%s/%s", id, key), func(t *testing.T) {
						t.Parallel()
						wantHash, ok := golden[key]
						if !ok {
							t.Fatalf("no golden hash for %s", key)
						}
						resp := wireGoldenRun(t, id, tp.topo, bench, n)
						if got := respHash(t, resp); got != wantHash {
							t.Fatalf("simulator drifted before encoding: %s vs golden %s", got, wantHash)
						}

						// JSON path (the debug/fallback view).
						raw, err := json.Marshal(resp)
						if err != nil {
							t.Fatal(err)
						}
						var viaJSON hetwire.RunResponse
						if err := json.Unmarshal(raw, &viaJSON); err != nil {
							t.Fatal(err)
						}
						jsonHash := respHash(t, &viaJSON)

						// Binary path (the wire).
						frame, err := wire.EncodeRunResult(resp)
						if err != nil {
							t.Fatal(err)
						}
						viaWire, err := wire.DecodeRunResult(frame)
						if err != nil {
							t.Fatal(err)
						}
						wireHash := respHash(t, viaWire)

						if jsonHash != wantHash {
							t.Errorf("JSON path ResultHash %s != golden %s", jsonHash, wantHash)
						}
						if wireHash != wantHash {
							t.Errorf("binary path ResultHash %s != golden %s", wireHash, wantHash)
						}

						reenc, err := wire.EncodeRunResult(viaWire)
						if err != nil {
							t.Fatal(err)
						}
						if !bytes.Equal(reenc, frame) {
							t.Error("decode∘encode is not the identity on this scenario")
						}
					})
				}
			}
		}
	}
}
