package hetwire_test

import (
	"bufio"
	"bytes"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"
)

// runCmd executes one of the repository's commands via `go run` and returns
// its combined output.
func runCmd(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, out)
	}
	return string(out)
}

// TestCLIWirecalc: the wire calculator prints the Table 2 derivation.
func TestCLIWirecalc(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	out := runCmd(t, "./cmd/wirecalc")
	for _, want := range []string{"PW-Wire", "L-Wire", "Transmission-line", "Technology scaling"} {
		if !strings.Contains(out, want) {
			t.Errorf("wirecalc output missing %q", want)
		}
	}
}

// TestCLITraceRoundTrip: tracegen writes a trace, inspects it, and hwsim
// replays it.
func TestCLITraceRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	dir := t.TempDir()
	path := dir + "/t.hwt"
	out := runCmd(t, "./cmd/tracegen", "-bench", "gzip", "-n", "30000", "-o", path)
	if !strings.Contains(out, "wrote 30000 instructions") {
		t.Fatalf("tracegen output: %s", out)
	}
	out = runCmd(t, "./cmd/tracegen", "-inspect", path)
	if !strings.Contains(out, "30000 instructions") || !strings.Contains(out, "branch") {
		t.Fatalf("inspect output: %s", out)
	}
	out = runCmd(t, "./cmd/hwsim", "-tracefile", path, "-model", "VII", "-n", "30000")
	if !strings.Contains(out, "IPC") || !strings.Contains(out, "Model-VII") {
		t.Fatalf("hwsim replay output: %s", out)
	}
}

// TestCLIHwsimJSON: the JSON output is well-formed enough to contain the
// key fields.
func TestCLIHwsimJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	out := runCmd(t, "./cmd/hwsim", "-bench", "mesa", "-n", "20000", "-json")
	for _, want := range []string{`"Benchmark": "mesa"`, `"IPC":`, `"Cycles":`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON output missing %s:\n%s", want, out[:200])
		}
	}
}

// TestCLIExperimentsFig3: the experiment driver runs end to end at a tiny
// scale and prints the AM row.
func TestCLIExperimentsFig3(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	out := runCmd(t, "./cmd/experiments", "-fig3", "-n", "5000")
	if !strings.Contains(out, "AM speedup") {
		t.Fatalf("experiments output missing summary:\n%s", out)
	}
}

// TestCLIPipeview: the pipeline viewer renders a timeline.
func TestCLIPipeview(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	out := runCmd(t, "./cmd/pipeview", "-bench", "gzip", "-skip", "2000", "-count", "8")
	if !strings.Contains(out, "timeline") || !strings.Contains(out, "F") {
		t.Fatalf("pipeview output:\n%s", out)
	}
}

// TestCLIHetwiretrace: record writes a parseable trace; summary, diff, and
// timeline render it. Two recordings of the same scenario are byte-identical
// (deterministic traces), so their diff reports no movement.
func TestCLIHetwiretrace(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	dir := t.TempDir()
	a, b := dir+"/a.trace", dir+"/b.trace"
	runCmd(t, "./cmd/hetwiretrace", "record", "-benchmark", "gcc", "-model", "V", "-n", "40000", "-o", a)
	runCmd(t, "./cmd/hetwiretrace", "record", "-benchmark", "gcc", "-model", "V", "-n", "40000", "-o", b)
	rawA, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	rawB, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rawA, rawB) {
		t.Error("two recordings of the same scenario differ; traces must be deterministic")
	}
	if !strings.HasPrefix(string(rawA), `{"schema":"hetwire-trace/v1"`) {
		t.Errorf("trace does not lead with the versioned header: %.80s", rawA)
	}

	out := runCmd(t, "./cmd/hetwiretrace", "summary", a)
	for _, want := range []string{"benchmark=gcc", "class", "W", "PW", "B", "L", "utilization", "ipc="} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}

	out = runCmd(t, "./cmd/hetwiretrace", "diff", a, b)
	if !strings.Contains(out, "no differing metrics") {
		t.Errorf("diff of identical traces reported movement:\n%s", out)
	}

	// A different model must move metrics.
	c := dir + "/c.trace"
	runCmd(t, "./cmd/hetwiretrace", "record", "-benchmark", "gcc", "-model", "I", "-n", "40000", "-o", c)
	out = runCmd(t, "./cmd/hetwiretrace", "diff", "-top", "5", a, c)
	if !strings.Contains(out, "metric") || !strings.Contains(out, "%") {
		t.Errorf("diff output malformed:\n%s", out)
	}

	out = runCmd(t, "./cmd/hetwiretrace", "timeline", "-width", "32", a)
	if !strings.Contains(out, "utilization timeline") || !strings.Contains(out, "B   |") {
		t.Errorf("timeline output malformed:\n%s", out)
	}
}

// TestCLIHetwiredServes: the daemon starts on a random port, serves a run,
// serves the identical request again from the result cache with a
// byte-identical body, exposes the hit on /metrics, and drains cleanly on
// SIGTERM.
func TestCLIHetwiredServes(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	dir := t.TempDir()
	bin := dir + "/hetwired"
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/hetwired").CombinedOutput(); err != nil {
		t.Fatalf("building hetwired: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-workers", "2", "-quiet",
		"-debug-addr", "127.0.0.1:0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	exited := false
	defer func() {
		if !exited {
			cmd.Process.Kill()
			<-done
		}
	}()

	// Startup prints the debug listener's address first, then the API's.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatal("no startup line from hetwired")
	}
	debugLine := sc.Text()
	if !sc.Scan() {
		t.Fatal("no API startup line from hetwired")
	}
	line := sc.Text()
	var rest string
	go func() {
		for sc.Scan() {
			rest += sc.Text() + "\n"
		}
		done <- cmd.Wait()
	}()
	const debugMarker = "debug listening on "
	i := strings.Index(debugLine, debugMarker)
	if i < 0 {
		t.Fatalf("debug startup line %q missing %q", debugLine, debugMarker)
	}
	debugBase := "http://" + strings.Fields(debugLine[i+len(debugMarker):])[0]
	const marker = "listening on "
	i = strings.Index(line, marker)
	if i < 0 {
		t.Fatalf("startup line %q missing %q", line, marker)
	}
	addr := strings.Fields(line[i+len(marker):])[0]
	base := "http://" + addr

	post := func() (string, []byte) {
		t.Helper()
		resp, err := http.Post(base+"/v1/run", "application/json",
			strings.NewReader(`{"benchmark":"gzip","model":"VII","n":20000}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /v1/run: %d %s", resp.StatusCode, body)
		}
		return resp.Header.Get("X-Hetwired-Cache"), body
	}
	cache1, body1 := post()
	cache2, body2 := post()
	if cache1 != "miss" || cache2 != "hit" {
		t.Errorf("cache headers = %q then %q, want miss then hit", cache1, cache2)
	}
	if !bytes.Equal(body1, body2) {
		t.Error("second response body differs from the first")
	}
	if !strings.Contains(string(body1), `"ipc"`) {
		t.Errorf("response missing ipc: %s", body1)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), "hetwired_cache_hits_total 1") {
		t.Errorf("metrics missing the cache hit:\n%.400s", metrics)
	}
	if !strings.Contains(string(metrics), "hetwired_build_info{version=") {
		t.Errorf("metrics missing hetwired_build_info:\n%.400s", metrics)
	}
	if !strings.Contains(string(metrics), `hetwired_worker_busy_seconds_total{worker="0"}`) {
		t.Errorf("metrics missing per-worker busy counters:\n%.400s", metrics)
	}

	// Requests echo their trace ID; daemon mints one when the client sends none.
	traceReq, _ := http.NewRequest("GET", base+"/healthz", nil)
	traceReq.Header.Set("X-Hetwire-Trace", "cli-itest-1")
	traceResp, err := http.DefaultClient.Do(traceReq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, traceResp.Body)
	traceResp.Body.Close()
	if got := traceResp.Header.Get("X-Hetwire-Trace"); got != "cli-itest-1" {
		t.Errorf("trace header echo = %q, want cli-itest-1", got)
	}

	// The debug listener serves expvar and pprof on its own port.
	dresp, err := http.Get(debugBase + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	dvars, _ := io.ReadAll(dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK || !strings.Contains(string(dvars), `"memstats"`) {
		t.Errorf("GET /debug/vars: %d, body missing memstats:\n%.200s", dresp.StatusCode, dvars)
	}
	presp, err := http.Get(debugBase + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, presp.Body)
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Errorf("GET /debug/pprof/cmdline: %d", presp.StatusCode)
	}
	// The API mux must NOT expose pprof.
	aresp, err := http.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, aresp.Body)
	aresp.Body.Close()
	if aresp.StatusCode != http.StatusNotFound {
		t.Errorf("API mux served /debug/pprof/cmdline with %d, want 404", aresp.StatusCode)
	}

	// SIGTERM must drain gracefully, not abort.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		exited = true
		if err != nil {
			t.Errorf("hetwired exited with %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("hetwired did not exit after SIGTERM")
	}
	if !strings.Contains(rest, "drained, exiting") {
		t.Errorf("missing drain farewell in output:\n%s", rest)
	}
}
