package hetwire_test

import (
	"os/exec"
	"strings"
	"testing"
)

// runCmd executes one of the repository's commands via `go run` and returns
// its combined output.
func runCmd(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, out)
	}
	return string(out)
}

// TestCLIWirecalc: the wire calculator prints the Table 2 derivation.
func TestCLIWirecalc(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	out := runCmd(t, "./cmd/wirecalc")
	for _, want := range []string{"PW-Wire", "L-Wire", "Transmission-line", "Technology scaling"} {
		if !strings.Contains(out, want) {
			t.Errorf("wirecalc output missing %q", want)
		}
	}
}

// TestCLITraceRoundTrip: tracegen writes a trace, inspects it, and hwsim
// replays it.
func TestCLITraceRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	dir := t.TempDir()
	path := dir + "/t.hwt"
	out := runCmd(t, "./cmd/tracegen", "-bench", "gzip", "-n", "30000", "-o", path)
	if !strings.Contains(out, "wrote 30000 instructions") {
		t.Fatalf("tracegen output: %s", out)
	}
	out = runCmd(t, "./cmd/tracegen", "-inspect", path)
	if !strings.Contains(out, "30000 instructions") || !strings.Contains(out, "branch") {
		t.Fatalf("inspect output: %s", out)
	}
	out = runCmd(t, "./cmd/hwsim", "-tracefile", path, "-model", "VII", "-n", "30000")
	if !strings.Contains(out, "IPC") || !strings.Contains(out, "Model-VII") {
		t.Fatalf("hwsim replay output: %s", out)
	}
}

// TestCLIHwsimJSON: the JSON output is well-formed enough to contain the
// key fields.
func TestCLIHwsimJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	out := runCmd(t, "./cmd/hwsim", "-bench", "mesa", "-n", "20000", "-json")
	for _, want := range []string{`"Benchmark": "mesa"`, `"IPC":`, `"Cycles":`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON output missing %s:\n%s", want, out[:200])
		}
	}
}

// TestCLIExperimentsFig3: the experiment driver runs end to end at a tiny
// scale and prints the AM row.
func TestCLIExperimentsFig3(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	out := runCmd(t, "./cmd/experiments", "-fig3", "-n", "5000")
	if !strings.Contains(out, "AM speedup") {
		t.Fatalf("experiments output missing summary:\n%s", out)
	}
}

// TestCLIPipeview: the pipeline viewer renders a timeline.
func TestCLIPipeview(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	out := runCmd(t, "./cmd/pipeview", "-bench", "gzip", "-skip", "2000", "-count", "8")
	if !strings.Contains(out, "timeline") || !strings.Contains(out, "F") {
		t.Fatalf("pipeview output:\n%s", out)
	}
}
