package hetwire

import (
	"encoding/json"
	"fmt"
	"os"

	"hetwire/internal/config"
)

// configFile is the JSON shape of a saved machine configuration. Only the
// commonly-swept knobs are exposed; everything else keeps its Table 1
// default.
type configFile struct {
	Model             string          `json:"model"`
	Clusters          int             `json:"clusters"`
	LatencyScale      int             `json:"latency_scale,omitempty"`
	Steering          string          `json:"steering,omitempty"`
	LinkHeterogeneous bool            `json:"link_heterogeneous,omitempty"`
	Techniques        map[string]bool `json:"techniques,omitempty"`
	LSBits            int             `json:"ls_bits,omitempty"`
	Overrides         map[string]int  `json:"core_overrides,omitempty"`
}

var steeringNames = map[string]config.SteeringPolicy{
	"":            config.SteerDynamic,
	"dynamic":     config.SteerDynamic,
	"static-hash": config.SteerStatic,
	"round-robin": config.SteerRoundRobin,
}

var modelByName = map[string]ModelID{
	"I": ModelI, "II": ModelII, "III": ModelIII, "IV": ModelIV, "V": ModelV,
	"VI": ModelVI, "VII": ModelVII, "VIII": ModelVIII, "IX": ModelIX, "X": ModelX,
}

// LoadConfigFile reads a machine configuration from a JSON file. Unset
// fields keep the paper's defaults; the model's supported techniques are
// enabled unless the file's "techniques" map disables them explicitly.
func LoadConfigFile(path string) (Config, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Config{}, err
	}
	cfg, err := ConfigFromJSON(raw)
	if err != nil {
		return Config{}, fmt.Errorf("hetwire: %s: %w", path, err)
	}
	return cfg, nil
}

// ConfigFromJSON decodes a machine configuration from the JSON document
// shape used by config files and the hetwired serving API. Unset fields
// keep the paper's defaults.
func ConfigFromJSON(raw []byte) (Config, error) {
	var cf configFile
	if err := json.Unmarshal(raw, &cf); err != nil {
		return Config{}, fmt.Errorf("hetwire: parsing config: %w", err)
	}

	id, ok := modelByName[cf.Model]
	if !ok {
		return Config{}, fmt.Errorf("hetwire: unknown model %q (use I..X)", cf.Model)
	}
	cfg := DefaultConfig().WithModel(id)
	switch cf.Clusters {
	case 0, 4:
	case 16:
		cfg.Topology = config.HierRing16
	default:
		return Config{}, fmt.Errorf("hetwire: clusters must be 4 or 16, got %d", cf.Clusters)
	}
	if cf.LatencyScale > 0 {
		cfg.LatencyScale = cf.LatencyScale
	}
	pol, ok := steeringNames[cf.Steering]
	if !ok {
		return Config{}, fmt.Errorf("hetwire: unknown steering policy %q", cf.Steering)
	}
	cfg.Steering = pol
	cfg.LinkHeterogeneous = cf.LinkHeterogeneous
	if cf.LSBits != 0 {
		cfg.Tech.LSBits = cf.LSBits
	}
	for name, on := range cf.Techniques {
		if err := setTechnique(&cfg.Tech, name, on); err != nil {
			return Config{}, err
		}
	}
	for name, v := range cf.Overrides {
		if err := setCoreOverride(&cfg.Core, name, v); err != nil {
			return Config{}, err
		}
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

func setTechnique(t *config.Techniques, name string, on bool) error {
	switch name {
	case "cache_pipeline":
		t.LWireCachePipeline = on
	case "narrow_operands":
		t.NarrowOperands = on
	case "narrow_oracle":
		t.NarrowOracle = on
	case "mispredict_on_l":
		t.MispredictOnL = on
	case "pw_ready_operands":
		t.PWReadyOperands = on
	case "pw_store_data":
		t.PWStoreData = on
	case "pw_load_balance":
		t.PWLoadBalance = on
	case "frequent_value":
		t.FrequentValueEnc = on
	case "critical_word":
		t.CriticalWordOnL = on
	case "transmission_line_l":
		t.TransmissionLineL = on
	default:
		return fmt.Errorf("hetwire: unknown technique %q", name)
	}
	return nil
}

func setCoreOverride(c *config.Core, name string, v int) error {
	switch name {
	case "rob":
		c.ROBSize = v
	case "issue_queue":
		c.IssueQPerClust = v
	case "registers":
		c.RegsPerClust = v
	case "fetch_width":
		c.FetchWidth = v
	case "l1d_latency":
		c.L1DLatency = v
	case "l2_latency":
		c.L2Latency = v
	case "memory_latency":
		c.MemLatency = v
	default:
		return fmt.Errorf("hetwire: unknown core override %q", name)
	}
	return nil
}

// SaveConfigFile writes the sweep-relevant parts of a configuration to a
// JSON file that LoadConfigFile round-trips.
func SaveConfigFile(path string, cfg Config) error {
	raw, err := ConfigJSON(cfg)
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// ConfigJSON encodes the sweep-relevant parts of a configuration as a
// canonical JSON document: fixed field order, sorted technique keys, and no
// dependence on how the Config was built. ConfigFromJSON round-trips it,
// and ConfigHash hashes it, so byte-equality of ConfigJSON output is the
// serving cache's notion of "same machine".
func ConfigJSON(cfg Config) ([]byte, error) {
	if cfg.Model.ID < ModelI || cfg.Model.ID > ModelX {
		return nil, fmt.Errorf("hetwire: config with custom link %v has no canonical JSON form (only named models I..X)", cfg.Model.Link)
	}
	cf := configFile{
		Model:             cfg.Model.ID.String()[len("Model-"):],
		Clusters:          cfg.Topology.Clusters(),
		LatencyScale:      cfg.LatencyScale,
		Steering:          cfg.Steering.String(),
		LinkHeterogeneous: cfg.LinkHeterogeneous,
		LSBits:            cfg.Tech.LSBits,
		Techniques: map[string]bool{
			"cache_pipeline":      cfg.Tech.LWireCachePipeline,
			"narrow_operands":     cfg.Tech.NarrowOperands,
			"narrow_oracle":       cfg.Tech.NarrowOracle,
			"mispredict_on_l":     cfg.Tech.MispredictOnL,
			"pw_ready_operands":   cfg.Tech.PWReadyOperands,
			"pw_store_data":       cfg.Tech.PWStoreData,
			"pw_load_balance":     cfg.Tech.PWLoadBalance,
			"frequent_value":      cfg.Tech.FrequentValueEnc,
			"critical_word":       cfg.Tech.CriticalWordOnL,
			"transmission_line_l": cfg.Tech.TransmissionLineL,
		},
	}
	return json.MarshalIndent(cf, "", "  ")
}
