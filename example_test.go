package hetwire_test

import (
	"fmt"
	"log"
	"testing"

	"hetwire"
	"hetwire/internal/workload"
)

// The simplest use: run one benchmark on the paper's baseline machine.
func ExampleRunBenchmark() {
	res, err := hetwire.RunBenchmark(hetwire.DefaultConfig(), "gzip", 100_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gzip committed %d instructions at IPC %.2f\n", res.Instructions, res.IPC())
}

// Configure a heterogeneous interconnect: Model VII adds an 18-bit L-wire
// plane to every link and enables the paper's Section 4 techniques.
func ExampleConfig_WithModel() {
	cfg := hetwire.DefaultConfig().WithModel(hetwire.ModelVII)
	res, err := hetwire.RunBenchmark(cfg, "mesa", 100_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("narrow operands on L-wires: %d\n", res.NarrowTransfers)
	fmt.Printf("partial-address false dependences: %d of %d loads\n",
		res.PartialFalseDeps, res.Loads)
}

// Regenerate paper Figure 3 on a benchmark subset.
func ExampleFigure3() {
	r := hetwire.Figure3(hetwire.Options{
		Instructions: 50_000,
		Benchmarks:   []string{"gzip", "mcf", "mesa"},
	})
	fmt.Printf("L-wire layer speedup: %+.1f%% (paper: +4.2%%)\n", r.SpeedupPct)
}

// Run several programs at once on the 16-cluster machine: threads own
// disjoint cluster partitions but share the wires and the cache.
func ExampleRunMultiprogrammed() {
	cfg := hetwire.DefaultConfig()
	cfg.Topology = hetwire.HierRing16
	res, err := hetwire.RunMultiprogrammed(cfg, []string{"gzip", "swim"}, 50_000)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res {
		fmt.Printf("%s on clusters %v: IPC %.2f\n", r.Benchmark, r.Clusters, r.Stats.IPC())
	}
}

// Search the whole link-composition design space within a metal-area
// budget, the paper's Section 3 question.
func ExampleExploreArea() {
	r := hetwire.ExploreArea(1.5, 0.10, hetwire.Options{
		Instructions: 30_000,
		Benchmarks:   []string{"gzip", "mesa"},
	})
	best := r.Best()
	fmt.Printf("ED2-optimal link within 1.5 area units: %s (ED2 %.0f)\n", best.Link, best.RelED2)
}

// TestExampleResultsAreLabeled pins the benchmark labeling contract the
// examples rely on: every public run path — RunBenchmark, RunKernel, and a
// raw Simulator fed a workload generator — stamps Result.Benchmark.
func TestExampleResultsAreLabeled(t *testing.T) {
	res, err := hetwire.RunBenchmark(hetwire.DefaultConfig(), "gzip", 5_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Benchmark != "gzip" {
		t.Errorf("RunBenchmark label = %q, want gzip", res.Benchmark)
	}
	res, err = hetwire.RunKernel(hetwire.DefaultConfig(), "stream", 5_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Benchmark != "stream" {
		t.Errorf("RunKernel label = %q, want stream", res.Benchmark)
	}
	sim, err := hetwire.NewSimulator(hetwire.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res = sim.Run(workload.NewGenerator(mustProfile(t, "mcf")), 5_000)
	if res.Benchmark != "mcf" {
		t.Errorf("Simulator.Run label = %q, want mcf", res.Benchmark)
	}
}

func mustProfile(t *testing.T, name string) workload.Profile {
	t.Helper()
	prof, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("profile %q missing", name)
	}
	return prof
}
