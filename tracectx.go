package hetwire

import "context"

// traceIDKey is the context key for the request-trace identifier. The ID is
// minted by the client (or the daemon, for clients that send none) and rides
// the X-Hetwire-Trace header through the daemon into the worker's job
// context, so one simulation can be followed across process boundaries:
// client logs, daemon request logs, job logs, and span timings all carry it.
type traceIDKey struct{}

// WithTraceID returns a context carrying the request-trace identifier.
func WithTraceID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceIDKey{}, id)
}

// TraceIDFrom extracts the request-trace identifier, or "" when the context
// carries none. ExecuteContext-side code (and fault injectors, loggers, or
// probes running under the job context) can use it to label their output.
func TraceIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(traceIDKey{}).(string)
	return id
}
