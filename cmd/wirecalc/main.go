// Command wirecalc derives the paper's Table 2 — the relative delay and
// energy of the four wire classes — from the physical RC/repeater models,
// and prints absolute figures for the 45nm technology point.
//
//	wirecalc            print the Table 2 derivation
//	wirecalc -length 10 also print absolute delay/energy for a 10mm link
//	wirecalc -clock 3   cycle counts at the given clock (GHz)
package main

import (
	"flag"
	"fmt"

	"hetwire/internal/stats"
	"hetwire/internal/wires"
)

func main() {
	length := flag.Float64("length", 10, "link length in mm")
	clock := flag.Float64("clock", 3.0, "clock frequency in GHz")
	flag.Parse()

	tech := wires.Tech45()
	derived := wires.DeriveParams(tech)

	fmt.Printf("Wire classes at %dnm (derived from geometry; paper Table 2 in parentheses)\n\n", tech.Node)
	t := stats.NewTable("class", "rel delay", "(paper)", "rel dyn/wire", "(paper)", "rel lkg/wire", "(paper)", "pitch", "xbar cyc", "ring cyc")
	for _, c := range wires.Classes() {
		d := derived[c]
		p := wires.Table2[c]
		t.AddRow(c.String(), d.RelDelay, p.RelDelay, d.RelDynPerWire, p.RelDynPerWire,
			d.RelLeakPerWire, p.RelLeakPerWire, d.RelPitch,
			wires.CrossbarLatency(c), wires.RingHopLatency(c))
	}
	fmt.Println(t)

	fmt.Printf("Absolute figures for a %.1fmm link at %.1fGHz:\n\n", *length, *clock)
	a := stats.NewTable("class", "delay ps/mm", "delay ps", "cycles", "dyn fJ/mm", "R ohm/mm", "C fF/mm")
	for _, c := range wires.Classes() {
		w := wires.ForClass(tech, c)
		a.AddRow(c.String(), w.DelayPerMM(), w.DelayPerMM()**length,
			wires.LatencyCycles(w, *length, *clock), w.DynamicEnergyPerMM(),
			w.ResistancePerMM(), w.CapacitancePerMM())
	}
	fmt.Println(a)

	fmt.Println("Technology scaling at a 15mm inter-cluster link (gates scale, wires don't):")
	nodes := []struct {
		t     wires.Technology
		clock float64
	}{{wires.Tech65(), 3.0}, {wires.Tech45(), 5.0}, {wires.Tech32(), 7.0}}
	n := stats.NewTable("node", "clock GHz", "B cycles", "PW cycles", "L cycles", "B-L gap")
	for _, nd := range nodes {
		lat := wires.NodeLatencies(nd.t, 15, nd.clock)
		n.AddRow(fmt.Sprintf("%dnm", nd.t.Node), nd.clock,
			lat[wires.B], lat[wires.PW], lat[wires.L], lat[wires.B]-lat[wires.L])
	}
	fmt.Println(n)
	fmt.Println("(At 45nm/5GHz the derivation lands on Table 2's 3/2/1 crossbar cycles;")
	fmt.Println(" at 32nm the B-L gap widens — the Section 5.3 wire-constrained case.)")
	fmt.Println()

	tl := wires.NewTransmissionLine(tech)
	rc := wires.NewL(tech)
	fmt.Printf("Transmission-line L-wire: %.1f ps/mm (%.2fx faster than the RC L-wire; Chang et al. report >= 1.33x)\n",
		tl.DelayPerMM(), rc.DelayPerMM()/tl.DelayPerMM())
	fmt.Printf("Power-optimal repeaters (PW): %.0f%% delay penalty buys %.0f%% capacitive-energy saving vs W\n",
		100*(derived[wires.PW].RelDelay-1), 100*(1-derived[wires.PW].RelDynPerWire))
	fmt.Println("(The paper's published 70% PW energy saving additionally counts short-circuit")
	fmt.Println(" and leakage re-optimisation from Banerjee & Mehrotra; the simulator's energy")
	fmt.Println(" accounting uses the published Table 2 constants.)")
}
