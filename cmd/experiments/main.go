// Command experiments regenerates every table and figure of the paper's
// evaluation section:
//
//	experiments -fig3      Figure 3: per-benchmark IPC, baseline vs +L-wires
//	experiments -table3    Table 3: interconnect models I..X on 4 clusters
//	experiments -table4    Table 4: interconnect models I..X on 16 clusters
//	experiments -latency   Section 1: IPC loss when inter-cluster latency doubles
//	experiments -scaling   Section 5.3: 16-cluster and wire-constrained studies
//	experiments -claims    Section 4: mechanism-level statistics
//	experiments -all       everything above
//
// Use -n to set instructions per benchmark (default 300000; the paper
// simulates 100M, which this harness supports but takes correspondingly
// longer).
package main

import (
	"flag"
	"fmt"
	"os"

	"hetwire"
)

func main() {
	var (
		fig3    = flag.Bool("fig3", false, "regenerate Figure 3")
		table3  = flag.Bool("table3", false, "regenerate Table 3 (4 clusters)")
		table4  = flag.Bool("table4", false, "regenerate Table 4 (16 clusters)")
		latency = flag.Bool("latency", false, "latency-doubling sensitivity study")
		scaling = flag.Bool("scaling", false, "Section 5.3 scaling studies")
		claims  = flag.Bool("claims", false, "Section 4 mechanism claims")
		exts    = flag.Bool("extensions", false, "future-work extensions (Sections 5.3/7)")
		verify  = flag.Bool("verify", false, "run the reproduction self-check and exit non-zero on failure")
		all     = flag.Bool("all", false, "run every experiment")
		n       = flag.Uint64("n", 300_000, "instructions per benchmark")
		csvDir  = flag.String("csv", "", "also write fig3.csv/table3.csv/table4.csv into this directory")
		bars    = flag.Bool("bars", false, "render Figure 3 as the paper's bar chart")
		sweep   = flag.Bool("sweep", false, "latency-multiplier sweep (Section 1 extended to a curve)")
	)
	flag.Parse()

	opt := hetwire.Options{Instructions: *n}
	ran := false

	if *fig3 || *all {
		ran = true
		fmt.Println("=== Figure 3: IPC, baseline vs baseline + L-wire layer (4 clusters) ===")
		r := hetwire.Figure3(opt)
		if *bars {
			fmt.Println(r.Bars(50))
		} else {
			fmt.Println(r)
		}
		fmt.Printf("AM speedup: %.1f%% (paper: 4.2%%)\n\n", r.SpeedupPct)
		writeCSV(*csvDir, "fig3.csv", r.CSV())
	}
	if *table3 || *all {
		ran = true
		fmt.Println("=== Table 3: heterogeneous interconnects, 4-cluster system ===")
		r := hetwire.Table3(opt)
		fmt.Println(r)
		best := r.BestED2(10)
		fmt.Printf("best ED2 @10%%: %v (%.1f; paper: Model-IX at 92.0)\n\n", best.Model, best.RelED2At10)
		writeCSV(*csvDir, "table3.csv", r.CSV())
	}
	if *table4 || *all {
		ran = true
		fmt.Println("=== Table 4: heterogeneous interconnects, 16-cluster system ===")
		r := hetwire.Table4(opt)
		fmt.Println(r)
		best := r.BestED2(20)
		fmt.Printf("best ED2 @20%%: %v (%.1f; paper: Models VII/IX at 88.7)\n\n", best.Model, best.RelED2At20)
		writeCSV(*csvDir, "table4.csv", r.CSV())
	}
	if *latency || *all {
		ran = true
		fmt.Println("=== Latency sensitivity: doubled inter-cluster latency ===")
		r := hetwire.LatencySensitivity(opt)
		fmt.Printf("baseline AM IPC %.3f -> doubled-latency AM IPC %.3f: %.1f%% slowdown (paper: ~12%%)\n\n",
			r.BaselineAM, r.DoubledAM, r.SlowdownPct)
	}
	if *scaling || *all {
		ran = true
		fmt.Println("=== Section 5.3 scaling studies ===")
		r := hetwire.ScalingStudies(opt)
		fmt.Printf("4->16 clusters:                 %+.1f%% IPC (paper: +17%%)\n", r.ClusterGainPct)
		fmt.Printf("L-wires, wire-constrained (2x): %+.1f%% IPC (paper: +7.1%%)\n", r.WireConstrainedGainPct)
		fmt.Printf("L-wires on 16 clusters:         %+.1f%% IPC (paper: +7.4%%)\n\n", r.SixteenClusterLWireGainPct)
	}
	if *claims || *all {
		ran = true
		fmt.Println("=== Section 4 mechanism claims ===")
		r := hetwire.Claims(opt)
		fmt.Printf("false partial-address dependences: %5.1f%% of loads  (paper: <9%%)\n", r.FalseDepPct)
		fmt.Printf("narrow predictor coverage:         %5.1f%%           (paper: 95%%)\n", r.NarrowCoveragePct)
		fmt.Printf("narrow predictor false-narrow:     %5.1f%%           (paper: 2%%)\n", r.NarrowFalsePct)
		fmt.Printf("narrow share of operand traffic:   %5.1f%%           (paper: 14%%)\n", r.NarrowTrafficPct)
		fmt.Printf("traffic diverted to PW (Model V):  %5.1f%%           (paper: 36%%)\n", r.PWTrafficPct)
		fmt.Printf("contention drop from PW criteria:  %5.1f%%           (paper: 14%%)\n", r.ContentionReductionPct)
		fmt.Printf("PW steering IPC cost vs Model IV:  %5.1f%%           (paper: ~1%%)\n\n", r.PWSteeringIPCCostPct)
	}

	if *exts || *all {
		ran = true
		fmt.Println("=== Extensions: the paper's future-work directions ===")
		r := hetwire.Extensions(opt)
		fmt.Printf("Model VII baseline AM IPC:            %.3f\n", r.BaseIPC)
		fmt.Printf("+ frequent-value compaction:          %.3f (%+.1f%%, %.1f%% of transfers compacted)\n",
			r.FrequentValueIPC, 100*(r.FrequentValueIPC/r.BaseIPC-1), r.FVTrafficPct)
		fmt.Printf("+ critical-word L2 returns on L:      %.3f (%+.1f%%, %d returns)\n",
			r.CriticalWordIPC, 100*(r.CriticalWordIPC/r.BaseIPC-1), r.CriticalWords)
		fmt.Printf("+ both:                               %.3f (%+.1f%%)\n",
			r.AllExtensionsIPC, 100*(r.AllExtensionsIPC/r.BaseIPC-1))
		fmt.Printf("transmission-line L plane, rel. ED2:  %.1f (RC L-wires = 100)\n\n", r.TransmissionLineED2)
	}

	if *sweep {
		ran = true
		fmt.Println("=== Latency-multiplier sweep (baseline AM IPC and L-wire gain) ===")
		c := hetwire.SweepLatencyScale([]int{1, 2, 3, 4}, opt)
		for i, sc := range c.Scales {
			fmt.Printf("  latency x%d: AM IPC %.3f, L-wire layer gain %+.1f%%\n", sc, c.AMIPC[i], c.LWireGainPct[i])
		}
		fmt.Println("  (the paper: gain grows from 4.2% nominal to 7.1% at 2x)")
		fmt.Println()
	}

	if *verify {
		ran = true
		fmt.Println("=== Reproduction self-check ===")
		findings := hetwire.VerifyReproduction(opt)
		for _, f := range findings {
			fmt.Println(f)
		}
		if !hetwire.AllOK(findings) {
			fmt.Println("\nself-check FAILED")
			os.Exit(1)
		}
		fmt.Println("\nall checks passed")
	}

	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

// writeCSV writes a CSV artifact when -csv is set.
func writeCSV(dir, name, body string) {
	if dir == "" {
		return
	}
	path := dir + string(os.PathSeparator) + name
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	fmt.Printf("(wrote %s)\n\n", path)
}
