// Command hetwired serves the hetwire simulator over HTTP: a bounded
// worker pool executes run and sweep jobs from a FIFO queue, deterministic
// results are cached content-addressed, and /metrics exposes Prometheus
// gauges for the queue, pool, and cache.
//
//	hetwired -addr :8677 -workers 8 -cache-mb 128
//
// Submit work:
//
//	curl -s localhost:8677/v1/run -d '{"benchmark":"gcc","model":"VII","n":100000}'
//	curl -s localhost:8677/v1/jobs -d '{"sweep":{"models":["I","VII"],"benchmarks":["gzip","mcf"],"ns":[100000]}}'
//
// SIGTERM or SIGINT drains gracefully: intake stops, queued jobs finish
// (up to -drain-timeout), then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hetwire/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8677", "listen address (host:port; port 0 picks a free port)")
		workers    = flag.Int("workers", 4, "simulation worker-pool size")
		queueDepth = flag.Int("queue", 64, "job queue depth (submissions beyond it get 503)")
		cacheMB    = flag.Int64("cache-mb", 64, "result-cache budget in MiB")
		drainT     = flag.Duration("drain-timeout", 30*time.Second, "how long to let jobs finish on SIGTERM")
		quiet      = flag.Bool("quiet", false, "suppress per-request logging")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "hetwired ", log.LstdFlags|log.Lmicroseconds)
	reqLogger := logger
	if *quiet {
		reqLogger = nil
	}
	srv := server.New(server.Options{
		Workers:    *workers,
		QueueDepth: *queueDepth,
		CacheBytes: *cacheMB << 20,
		Logger:     reqLogger,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("listen %s: %v", *addr, err)
	}
	// The "listening on" line is the startup handshake: scripts (and the
	// integration tests) parse it to learn the bound port when -addr used
	// port 0.
	fmt.Printf("hetwired: listening on %s (workers=%d queue=%d cache=%dMiB)\n",
		ln.Addr(), *workers, *queueDepth, *cacheMB)

	httpSrv := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigCh:
		logger.Printf("received %v, draining (timeout %s)", sig, *drainT)
	case err := <-errCh:
		logger.Fatalf("serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainT)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Printf("drain incomplete: %v", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	cs := srv.Cache().Stats()
	logger.Printf("drained: cache served %d hits, %d coalesced, %d misses (ratio %.2f)",
		cs.Hits, cs.Coalesced, cs.Misses, cs.HitRatio())
	fmt.Println("hetwired: drained, exiting")
}
