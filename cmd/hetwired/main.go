// Command hetwired serves the hetwire simulator over HTTP: a bounded
// worker pool executes run and sweep jobs from a FIFO queue, deterministic
// results are cached content-addressed, and /metrics exposes Prometheus
// gauges for the queue, pool, and cache.
//
//	hetwired -addr :8677 -workers 8 -cache-mb 128
//
// Submit work (raw HTTP, or the built-in fault-tolerant client mode):
//
//	curl -s localhost:8677/v1/run -d '{"benchmark":"gcc","model":"VII","n":100000}'
//	curl -s localhost:8677/v1/jobs -d '{"sweep":{"models":["I","VII"],"benchmarks":["gzip","mcf"],"ns":[100000]}}'
//	hetwired run -server http://localhost:8677 -bench gcc -model VII -n 100000
//
// The client mode submits idempotently (retried submits land on the same
// job), backs off exponentially honoring Retry-After on 429, and trips a
// circuit breaker when the daemon stays unreachable.
//
// Fault injection for chaos testing is enabled with -faults or the
// HETWIRE_FAULTS environment variable, e.g.
//
//	HETWIRE_FAULTS='seed=7,panic=0.05,slow=0.2,slowms=40,cancel=0.05,corrupt=0.1' hetwired
//
// SIGTERM or SIGINT drains gracefully: intake stops, queued jobs finish
// (up to -drain-timeout), then the process exits.
//
// Cluster mode distributes batch sweeps across machines: one daemon runs as
// the coordinator and any number of others join it as worker nodes, all
// sharing one secret:
//
//	hetwired -coordinator -cluster-token s3cret -addr :8677
//	hetwired -join http://coordinator:8677 -cluster-token s3cret
//
// Batch jobs submitted to the coordinator are sharded into work leases and
// executed by the nodes; results are content-addressed and flow through the
// coordinator's federated result cache, so repeated sweeps skip known
// scenarios cluster-wide. See internal/cluster for the protocol.
package main

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"syscall"
	"time"

	"hetwire"
	"hetwire/internal/client"
	"hetwire/internal/cluster/node"
	"hetwire/internal/faultinject"
	"hetwire/internal/obs/flight"
	"hetwire/internal/server"
	"hetwire/internal/tenant"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "run" {
		runClient(os.Args[2:])
		return
	}
	serve(os.Args[1:])
}

func serve(args []string) {
	fs := flag.NewFlagSet("hetwired", flag.ExitOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:8677", "listen address (host:port; port 0 picks a free port)")
		workers    = fs.Int("workers", 4, "simulation worker-pool size")
		queueDepth = fs.Int("queue", 64, "job queue depth (submissions beyond it get 429 + Retry-After)")
		retryAfter = fs.Duration("retry-after", 0, "Retry-After hint on 429 before any job has completed (0 = server default)")
		cacheMB    = fs.Int64("cache-mb", 64, "result-cache budget in MiB")
		deadline   = fs.Duration("deadline", 2*time.Minute, "default per-job wall-clock deadline (0 keeps the server default)")
		maxDL      = fs.Duration("max-deadline", 10*time.Minute, "cap on per-request deadline overrides")
		faults     = fs.String("faults", os.Getenv("HETWIRE_FAULTS"), "fault-injection spec (default $HETWIRE_FAULTS; empty = none)")
		drainT     = fs.Duration("drain-timeout", 30*time.Second, "how long to let jobs finish on SIGTERM")
		quiet      = fs.Bool("quiet", false, "suppress per-request logging")
		debugAddr  = fs.String("debug-addr", "", "optional introspection listener (host:port) serving /debug/pprof and /debug/vars; keep it off public interfaces")
		coord      = fs.Bool("coordinator", false, "run as a cluster coordinator: serve /v1/cluster and execute batch jobs on joined worker nodes")
		join       = fs.String("join", "", "join the coordinator at this base URL as a worker node instead of serving; requires -cluster-token")
		token      = fs.String("cluster-token", os.Getenv("HETWIRE_CLUSTER_TOKEN"), "shared cluster secret (default $HETWIRE_CLUSTER_TOKEN); required with -coordinator and -join")
		leaseSize  = fs.Int("lease-size", 0, "coordinator: scenarios per work lease; node: max scenarios to request per lease (0 = default)")
		leaseTTL   = fs.Duration("lease-ttl", 0, "work-lease deadline before re-dispatch (0 = coordinator default)")
		nodeName   = fs.String("node-name", "", "node label reported at registration (default: hostname)")
		leaseLog   = fs.String("lease-log", "", "node: append one JSONL record per completed lease to this file")
		tenantsF   = fs.String("tenants", "", "tenant config file (JSON) enabling keyed multi-tenancy with weighted-fair scheduling; empty = open mode")
		flightN    = fs.Int("flight-events", 0, "flight-recorder ring capacity in events (0 = default 4096; negative disables the recorder)")
		flightDir  = fs.String("flight-dir", "", "directory for automatic flight dumps on worker panic or watchdog stall (empty = no auto-dump)")
		flightLog  = fs.String("flight-log", "", "node: stream every flight event to this JSONL file as it is recorded")
	)
	fs.Parse(args)

	logger := log.New(os.Stderr, "hetwired ", log.LstdFlags|log.Lmicroseconds)
	reqLogger := logger
	if *quiet {
		reqLogger = nil
	}
	injector, err := faultinject.Parse(*faults)
	if err != nil {
		logger.Fatalf("parsing -faults: %v", err)
	}
	if injector != nil {
		logger.Printf("fault injection active: %s", injector)
	}
	if *join != "" {
		joinCluster(logger, *join, *token, *nodeName, *workers, *leaseSize, *leaseLog, *flightN, *flightLog)
		return
	}
	var tenantCfg *tenant.Config
	if *tenantsF != "" {
		raw, err := os.ReadFile(*tenantsF)
		if err != nil {
			logger.Fatalf("reading -tenants: %v", err)
		}
		tenantCfg, err = tenant.ParseConfig(raw)
		if err != nil {
			logger.Fatalf("parsing -tenants %s: %v", *tenantsF, err)
		}
		logger.Printf("multi-tenancy on: %d configured tenants (+anonymous)", len(tenantCfg.Tenants))
	}
	var clusterOpts *server.ClusterOptions
	if *coord {
		if *token == "" {
			logger.Fatalf("-coordinator requires a shared secret: set -cluster-token or $HETWIRE_CLUSTER_TOKEN (refusing to run an open coordinator)")
		}
		clusterOpts = &server.ClusterOptions{
			Token:     *token,
			LeaseSize: *leaseSize,
			LeaseTTL:  *leaseTTL,
		}
	}
	srv := server.New(server.Options{
		Workers:           *workers,
		QueueDepth:        *queueDepth,
		DefaultRetryAfter: *retryAfter,
		CacheBytes:        *cacheMB << 20,
		DefaultDeadline:   *deadline,
		MaxDeadline:       *maxDL,
		Faults:            injector,
		Logger:            reqLogger,
		Cluster:           clusterOpts,
		Tenants:           tenantCfg,
		FlightEvents:      *flightN,
		FlightDir:         *flightDir,
	})
	srv.Metrics().SetBuildInfo(buildVersion(), runtime.Version())

	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			logger.Fatalf("debug listen %s: %v", *debugAddr, err)
		}
		fmt.Printf("hetwired: debug listening on %s (/debug/pprof, /debug/vars)\n", dln.Addr())
		go func() {
			if err := http.Serve(dln, debugMux()); err != nil {
				logger.Printf("debug listener: %v", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("listen %s: %v", *addr, err)
	}
	// The "listening on" line is the startup handshake: scripts (and the
	// integration tests) parse it to learn the bound port when -addr used
	// port 0.
	fmt.Printf("hetwired: listening on %s (workers=%d queue=%d cache=%dMiB)\n",
		ln.Addr(), *workers, *queueDepth, *cacheMB)
	if clusterOpts != nil {
		fmt.Println("hetwired: coordinator mode on (/v1/cluster served, batch jobs run on joined nodes)")
	}

	httpSrv := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigCh:
		logger.Printf("received %v, draining (timeout %s)", sig, *drainT)
	case err := <-errCh:
		logger.Fatalf("serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainT)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Printf("drain incomplete: %v", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	cs := srv.Cache().Stats()
	logger.Printf("drained: cache served %d hits, %d coalesced, %d misses (ratio %.2f)",
		cs.Hits, cs.Coalesced, cs.Misses, cs.HitRatio())
	fmt.Println("hetwired: drained, exiting")
}

// joinCluster runs the process as a cluster worker node against the
// coordinator at base, until SIGTERM/SIGINT. A signal mid-lease abandons the
// lease without uploading; the coordinator's lease expiry re-dispatches it.
func joinCluster(logger *log.Logger, base, token, name string, parallelism, maxLease int, leaseLog string, flightN int, flightLog string) {
	if token == "" {
		logger.Fatalf("-join requires the shared secret: set -cluster-token or $HETWIRE_CLUSTER_TOKEN")
	}
	if name == "" {
		if hn, err := os.Hostname(); err == nil {
			name = hn
		}
	}
	var eventLog *os.File
	if leaseLog != "" {
		f, err := os.OpenFile(leaseLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			logger.Fatalf("opening -lease-log %s: %v", leaseLog, err)
		}
		defer f.Close()
		eventLog = f
	}
	var fr *flight.Recorder
	if flightN >= 0 {
		fr = flight.New(flightN)
	}
	if flightLog != "" {
		if fr == nil {
			logger.Fatalf("-flight-log requires the recorder: drop -flight-events=%d or make it non-negative", flightN)
		}
		f, err := os.OpenFile(flightLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			logger.Fatalf("opening -flight-log %s: %v", flightLog, err)
		}
		defer f.Close()
		if err := fr.SetSink(f, name); err != nil {
			logger.Fatalf("writing -flight-log header: %v", err)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		sig := <-sigCh
		logger.Printf("received %v, leaving the cluster", sig)
		cancel()
	}()

	fmt.Printf("hetwired: joining %s as %q (parallelism=%d)\n", base, name, parallelism)
	err := node.Run(ctx, node.Options{
		Coordinator: base,
		Token:       token,
		Name:        name,
		Parallelism: parallelism,
		MaxLease:    maxLease,
		Logger:      logger,
		EventLog:    eventLog,
		Flight:      fr,
	})
	if err != nil && ctx.Err() == nil {
		logger.Fatalf("node: %v", err)
	}
	fmt.Println("hetwired: left the cluster, exiting")
}

// debugMux serves the runtime-introspection endpoints on a dedicated mux —
// deliberately separate from the API handler so profiling surface is only
// exposed where -debug-addr points (typically loopback).
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// buildVersion reports the module version stamped into the binary, or
// "devel" for plain `go build` / `go run` trees.
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return "devel"
}

// runClient is the fault-tolerant client mode: submit one run idempotently,
// await the job through retries and backoff, and print the result JSON.
func runClient(args []string) {
	fs := flag.NewFlagSet("hetwired run", flag.ExitOnError)
	var (
		serverURL  = fs.String("server", "http://127.0.0.1:8677", "daemon base URL")
		bench      = fs.String("bench", "", "benchmark or kernel name")
		model      = fs.String("model", "", "interconnect model override (I..X)")
		n          = fs.Uint64("n", 0, "instruction budget (0 = server default)")
		clusters   = fs.Int("clusters", 0, "cluster count override (4 or 16)")
		deadlineMS = fs.Int64("deadline-ms", 0, "per-job wall-clock deadline override in ms")
		timeout    = fs.Duration("timeout", 5*time.Minute, "overall client timeout")
		attempts   = fs.Int("retries", 6, "max attempts per API operation")
		traceID    = fs.String("trace", "", "trace ID to stamp on every request (default: minted)")
		tenantKey  = fs.String("tenant-key", os.Getenv("HETWIRE_TENANT_KEY"), "tenant API key sent as X-Hetwire-Tenant (default $HETWIRE_TENANT_KEY)")
	)
	fs.Parse(args)
	if *bench == "" {
		fmt.Fprintln(os.Stderr, "hetwired run: -bench is required")
		fs.Usage()
		os.Exit(2)
	}

	req := &hetwire.RunRequest{Benchmark: *bench, Model: *model, N: *n, Clusters: *clusters}
	if err := req.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "hetwired run: %v\n", err)
		os.Exit(2)
	}
	cl := client.New(client.Options{BaseURL: *serverURL, MaxAttempts: *attempts, TraceID: *traceID, TenantKey: *tenantKey})
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	resp, st, err := cl.Run(ctx, req, *deadlineMS)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hetwired run: trace=%s %v\n", cl.TraceID(), err)
		os.Exit(1)
	}
	out := struct {
		Job   string `json:"job"`
		Trace string `json:"trace"`
		*hetwire.RunResponse
		CacheHit bool          `json:"cache_hit"`
		WallMS   float64       `json:"wall_ms"`
		Spans    []server.Span `json:"spans,omitempty"`
	}{Job: st.ID, Trace: st.TraceID, RunResponse: resp, CacheHit: st.CacheHit, WallMS: st.WallMS, Spans: st.Spans}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}
