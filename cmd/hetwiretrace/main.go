// Command hetwiretrace records and inspects wire-class telemetry traces
// (hetwire-trace/v1 JSONL, see internal/obs).
//
//	hetwiretrace record -benchmark gcc -model V -n 100000 -o gcc.trace
//	hetwiretrace summary gcc.trace           # per-class utilization table
//	hetwiretrace summary -json gcc.trace     # machine-readable summary
//	hetwiretrace diff a.trace b.trace        # metric-by-metric comparison
//	hetwiretrace timeline -width 80 gcc.trace
//	hetwiretrace cluster coordinator.flight node-a.flight node-a.leases
//
// record runs the simulation in-process (no daemon needed) with the probe
// attached; the other verbs work on any trace file, including ones captured
// by a probed hetwired worker. Traces are deterministic, so diffing two
// recordings of the same scenario shows exactly the metrics a config change
// moved.
//
// cluster merges flight-recorder dumps (JSONL or the hetwire-bin container,
// from GET /v1/debug/flight or a node's -flight-log) and node lease logs
// (-lease-log) into one causal timeline per trace ID. Ordering is sequence
// numbers and lease-grant anchoring, never wall clock, so merging the dumps
// of two identical runs yields byte-identical timelines.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"hetwire"
	"hetwire/internal/obs"
	"hetwire/internal/obs/flight"
	"hetwire/internal/wire"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = cmdRecord(os.Args[2:])
	case "summary":
		err = cmdSummary(os.Args[2:])
	case "diff":
		err = cmdDiff(os.Args[2:])
	case "timeline":
		err = cmdTimeline(os.Args[2:])
	case "cluster":
		err = cmdCluster(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "hetwiretrace: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hetwiretrace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  hetwiretrace record  -benchmark B [-model M] [-clusters C] [-n N] [-o FILE] [-binary]
  hetwiretrace summary [-json] FILE
  hetwiretrace diff    [-json] [-top K] FILE_A FILE_B
  hetwiretrace timeline [-width W] FILE
  hetwiretrace cluster [-durations] DUMP...   # flight dumps + lease logs -> causal timeline
`)
}

func cmdRecord(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	var (
		benchmark = fs.String("benchmark", "", "benchmark or kernel name (required)")
		model     = fs.String("model", "", "interconnect model I..X (default: config baseline)")
		clusters  = fs.Int("clusters", 0, "cluster count override (4 or 16)")
		n         = fs.Uint64("n", 100_000, "instruction budget")
		out       = fs.String("o", "-", "trace output file ('-' for stdout)")
		binary    = fs.Bool("binary", false, "write the trace in the hetwire-bin/v1 frame container instead of raw JSONL")
	)
	fs.Parse(args)
	if *benchmark == "" {
		return fmt.Errorf("record: -benchmark is required")
	}
	w := io.Writer(os.Stdout)
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if *binary {
		tw := wire.NewTraceWriter(w)
		defer tw.Close()
		w = tw
	}
	req := &hetwire.RunRequest{Benchmark: *benchmark, Model: *model, Clusters: *clusters, N: *n}
	resp, err := req.ExecuteProbed(context.Background(), w)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "recorded %s model=%s clusters=%d n=%d ipc=%.4f\n",
		resp.Benchmark, resp.Model, resp.Clusters, resp.N, resp.IPC)
	return nil
}

// readTraceFile loads a trace in either encoding: the file is sniffed for
// the binary frame magic, and binary containers are unwrapped back into the
// JSONL stream obs.ReadTrace expects. The JSONL lines inside a container are
// byte-identical to a raw recording, so both formats summarise identically.
func readTraceFile(path string) (obs.Header, []obs.Sample, error) {
	f, err := os.Open(path)
	if err != nil {
		return obs.Header{}, nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	if magic, err := br.Peek(4); err == nil && wire.IsWire(magic) {
		return obs.ReadTrace(wire.NewTraceReader(br))
	}
	return obs.ReadTrace(br)
}

func summarizeFile(path string) (obs.Summary, error) {
	hdr, samples, err := readTraceFile(path)
	if err != nil {
		return obs.Summary{}, err
	}
	return obs.Summarize(hdr, samples)
}

func cmdSummary(args []string) error {
	fs := flag.NewFlagSet("summary", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the summary as JSON")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("summary: need exactly one trace file")
	}
	sum, err := summarizeFile(fs.Arg(0))
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(sum)
	}
	fmt.Print(obs.FormatSummary(sum))
	return nil
}

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit diff rows as JSON")
	top := fs.Int("top", 0, "show only the K largest movers (0 = all, schema order)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("diff: need exactly two trace files")
	}
	a, err := summarizeFile(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := summarizeFile(fs.Arg(1))
	if err != nil {
		return err
	}
	rows := obs.DiffSummaries(a, b)
	if *top > 0 {
		obs.SortRowsByMagnitude(rows)
		if len(rows) > *top {
			rows = rows[:*top]
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rows)
	}
	fmt.Print(obs.FormatDiff(rows))
	return nil
}

// readClusterFile sniffs one cluster dump: binary flight containers by the
// wire magic, then JSONL flight dumps and lease logs by the schema field of
// the first record. Flight dumps are labelled by their header's source (the
// process that recorded them), lease logs by file name.
func readClusterFile(path string) (flight.Source, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return flight.Source{}, err
	}
	if wire.IsWire(data) {
		hdr, events, err := flight.ReadDump(wire.NewFlightReader(bytes.NewReader(data)))
		if err != nil {
			return flight.Source{}, fmt.Errorf("%s: %w", path, err)
		}
		return flight.Source{Name: sourceName(hdr, path), Events: events}, nil
	}
	var probe struct {
		Schema string `json:"schema"`
	}
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		json.Unmarshal(line, &probe)
		break
	}
	switch probe.Schema {
	case flight.Schema:
		hdr, events, err := flight.ReadDump(bytes.NewReader(data))
		if err != nil {
			return flight.Source{}, fmt.Errorf("%s: %w", path, err)
		}
		return flight.Source{Name: sourceName(hdr, path), Events: events}, nil
	case obs.LeaseSchema:
		leases, err := obs.ReadLeaseEvents(bytes.NewReader(data))
		if err != nil {
			return flight.Source{}, fmt.Errorf("%s: %w", path, err)
		}
		return flight.Source{Name: filepath.Base(path), Leases: leases}, nil
	}
	return flight.Source{}, fmt.Errorf("%s: not a flight dump or lease log (schema %q)", path, probe.Schema)
}

func sourceName(hdr flight.Header, path string) string {
	if hdr.Source != "" {
		return hdr.Source
	}
	return filepath.Base(path)
}

func cmdCluster(args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	durations := fs.Bool("durations", false, "include measured vtime/duration fields (nondeterministic; off for diffable output)")
	fs.Parse(args)
	if fs.NArg() == 0 {
		return fmt.Errorf("cluster: need at least one flight dump or lease log")
	}
	sources := make([]flight.Source, 0, fs.NArg())
	for _, path := range fs.Args() {
		src, err := readClusterFile(path)
		if err != nil {
			return err
		}
		sources = append(sources, src)
	}
	fmt.Print(flight.MergeTimeline(sources, *durations))
	return nil
}

func cmdTimeline(args []string) error {
	fs := flag.NewFlagSet("timeline", flag.ExitOnError)
	width := fs.Int("width", 64, "timeline width in buckets")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("timeline: need exactly one trace file")
	}
	hdr, samples, err := readTraceFile(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Print(obs.Timeline(hdr, samples, *width))
	return nil
}
