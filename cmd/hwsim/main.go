// Command hwsim runs the clustered-processor simulator on one benchmark and
// prints the full statistics readout.
//
//	hwsim -bench gcc -model VII -n 1000000
//	hwsim -bench mcf -clusters 16 -latency 2
//	hwsim -list
//	hwsim -bench gzip -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"hetwire"
	"hetwire/internal/config"
	"hetwire/internal/trace"
)

// runTraceFile replays an on-disk trace through the simulator.
func runTraceFile(cfg hetwire.Config, path string, n uint64) (hetwire.Result, error) {
	fs, err := trace.OpenTraceFile(path)
	if err != nil {
		return hetwire.Result{}, err
	}
	defer fs.Close()
	sim, err := hetwire.NewSimulator(cfg)
	if err != nil {
		return hetwire.Result{}, err
	}
	res := sim.Run(fs, n)
	if err := fs.Err(); err != nil {
		return res, err
	}
	return res, nil
}

var modelNames = map[string]hetwire.ModelID{
	"I": hetwire.ModelI, "II": hetwire.ModelII, "III": hetwire.ModelIII,
	"IV": hetwire.ModelIV, "V": hetwire.ModelV, "VI": hetwire.ModelVI,
	"VII": hetwire.ModelVII, "VIII": hetwire.ModelVIII, "IX": hetwire.ModelIX,
	"X": hetwire.ModelX,
}

func main() {
	var (
		bench    = flag.String("bench", "gcc", "benchmark name (see -list)")
		model    = flag.String("model", "I", "interconnect model: I..X")
		clusters = flag.Int("clusters", 4, "cluster count: 4 or 16")
		latScale = flag.Int("latency", 1, "interconnect latency multiplier")
		n        = flag.Uint64("n", 1_000_000, "instructions to simulate")
		list     = flag.Bool("list", false, "list benchmarks and exit")
		asJSON   = flag.Bool("json", false, "emit the statistics as JSON")
		traceF   = flag.String("tracefile", "", "replay a trace file (from tracegen) instead of a synthetic benchmark")
		confF    = flag.String("config", "", "load the machine configuration from a JSON file (overrides -model/-clusters/-latency)")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(hetwire.Benchmarks(), "\n"))
		return
	}

	id, ok := modelNames[strings.ToUpper(*model)]
	if !ok {
		fmt.Fprintf(os.Stderr, "hwsim: unknown model %q (use I..X)\n", *model)
		os.Exit(2)
	}
	var cfg hetwire.Config
	if *confF != "" {
		var err error
		cfg, err = hetwire.LoadConfigFile(*confF)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hwsim:", err)
			os.Exit(2)
		}
		id = cfg.Model.ID
		*clusters = cfg.Topology.Clusters()
		*latScale = cfg.LatencyScale
	} else {
		cfg = hetwire.DefaultConfig().WithModel(id)
		switch *clusters {
		case 4:
		case 16:
			cfg.Topology = config.HierRing16
		default:
			fmt.Fprintln(os.Stderr, "hwsim: -clusters must be 4 or 16")
			os.Exit(2)
		}
		cfg.LatencyScale = *latScale
	}

	var res hetwire.Result
	var err error
	if *traceF != "" {
		res, err = runTraceFile(cfg, *traceF, *n)
		*bench = *traceF
	} else {
		res, err = hetwire.RunBenchmark(cfg, *bench, *n)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hwsim:", err)
		os.Exit(1)
	}

	st := res.Stats
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Benchmark string
			Model     string
			Clusters  int
			IPC       float64
			Stats     any
		}{*bench, id.String(), *clusters, st.IPC(), st}); err != nil {
			fmt.Fprintln(os.Stderr, "hwsim:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("benchmark            %s\n", *bench)
	fmt.Printf("machine              %v, %v (%s), latency x%d\n", cfg.Topology, id, cfg.Model.Link, *latScale)
	fmt.Printf("instructions         %d\n", st.Instructions)
	fmt.Printf("cycles               %d\n", st.Cycles)
	fmt.Printf("IPC                  %.3f\n", st.IPC())
	fmt.Printf("branch accuracy      %.3f (%d mispredicts, %d BTB misses)\n", st.BranchAccuracy, st.Mispredicts, st.BTBMisses)
	fmt.Printf("L1D/L2/TLB miss      %.3f / %.3f / %.3f\n", st.L1DMissRate, st.L2MissRate, st.TLBMissRate)
	fmt.Printf("loads/stores         %d / %d (forwards %d)\n", st.Loads, st.Stores, st.StoreForwards)
	total := st.OperandTransfers + st.LocalOperands
	if total > 0 {
		fmt.Printf("operand traffic      %d transfers (%.1f%% of operands cross clusters)\n",
			st.OperandTransfers, 100*float64(st.OperandTransfers)/float64(total))
	}
	if st.PartialChecks > 0 {
		fmt.Printf("partial-addr LSQ     %d checks, %.2f%% false dependences\n",
			st.PartialChecks, 100*float64(st.PartialFalseDeps)/float64(st.PartialChecks))
	}
	if st.NarrowTransfers+st.NarrowMispredicted > 0 {
		fmt.Printf("narrow transfers     %d on L-wires, %d mispredicted-narrow resends\n",
			st.NarrowTransfers, st.NarrowMispredicted)
	}
	if st.ReadyOperandPW+st.StoreDataPW+st.BalancePW > 0 {
		fmt.Printf("PW steering          ready-operands %d, store-data %d, load-balance %d\n",
			st.ReadyOperandPW, st.StoreDataPW, st.BalancePW)
	}
	fmt.Printf("network wait cycles  %d (buffered contention)\n", st.WaitCycles)
	classes := [3]string{"B", "PW", "L"}
	for i, name := range classes {
		ns := st.Net[i]
		if ns.Transfers == 0 {
			continue
		}
		fmt.Printf("  %-2s plane           %d transfers, %d bits, %d bit-hops, %d wait cycles\n",
			name, ns.Transfers, ns.Bits, ns.BitHops, ns.WaitCycles)
	}
}
