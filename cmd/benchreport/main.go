// Command benchreport measures simulator throughput and allocation cost over
// a fixed scenario matrix and writes a machine-readable trajectory file, so
// performance can be tracked across commits without hand-reading `go test
// -bench` output.
//
//	benchreport                      # full matrix -> BENCH_hetwire.json
//	benchreport -quick               # smaller instruction counts (CI smoke)
//	benchreport -out /tmp/bench.json
//
// Each scenario reports instructions per wall-clock second, nanoseconds per
// simulated instruction, and heap allocations/bytes per instruction (from
// runtime.MemStats deltas around the run, single-threaded with GC settled
// first). Simulated behaviour per scenario is pinned separately by the golden
// corpus (testdata/golden); this tool tracks only cost.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"hetwire"
	"hetwire/internal/client"
	"hetwire/internal/config"
	"hetwire/internal/server"
	"hetwire/internal/tenant"
	"hetwire/internal/wire"
)

// Scenario identifies one measured configuration.
type Scenario struct {
	Model     string `json:"model"`
	Topology  string `json:"topology"`
	Benchmark string `json:"benchmark"`
	N         uint64 `json:"n"`
}

// Measurement is the cost readout for one scenario.
type Measurement struct {
	Scenario
	InstrsPerSec   float64 `json:"instrs_per_sec"`
	NsPerInstr     float64 `json:"ns_per_instr"`
	AllocsPerInstr float64 `json:"allocs_per_instr"`
	BytesPerInstr  float64 `json:"bytes_per_instr"`
	IPC            float64 `json:"ipc"`
}

// Report is the top-level BENCH_hetwire.json document.
type Report struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"go_version"`
	// NumCPU and GoMaxProcs record the host CPU topology the numbers were
	// taken on. They make scaling rows self-describing: a batch speedup of
	// ≈1.0x on num_cpu=1 is the host's ceiling, not the engine's.
	NumCPU     int           `json:"num_cpu"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Quick      bool          `json:"quick,omitempty"`
	Scenarios  []Measurement `json:"scenarios"`
	// ProbeOverhead compares one scenario with telemetry probes disabled vs
	// enabled (streaming to a discarded trace); the disabled path is required
	// to stay within noise of the plain simulator.
	ProbeOverhead *ProbeOverhead `json:"probe_overhead,omitempty"`
	// BatchThroughput measures the batch engine's sweep-level parallelism:
	// the same scenario matrix executed at several worker counts, with
	// speedup relative to the sequential run.
	BatchThroughput *BatchThroughput `json:"batch_throughput,omitempty"`
	// Wire measures the hetwire-bin/v1 result path: frame encode/decode
	// throughput and the zero-copy cache-hit serve cost.
	Wire *WireCost `json:"wire,omitempty"`
	// QoSOverhead compares the weighted-fair scheduler against the plain
	// FIFO queue on an identical job stream; the fair path is required to
	// stay within low single digits of FIFO.
	QoSOverhead *QoSOverhead `json:"qos_overhead,omitempty"`
	// FlightOverhead compares the serving path with the flight recorder
	// disabled vs enabled on an identical job stream; the always-on recorder
	// is required to stay within noise (<1%) of the disabled path.
	FlightOverhead *FlightOverhead `json:"flight_overhead,omitempty"`
}

// FlightOverhead is the flight-recorder-on vs recorder-off cost readout: the
// same stream of single-scenario jobs pushed through a live daemon once with
// the recorder compiled out of the hot path (nil recorder, one pointer
// compare per probe site) and once recording every admission, dispatch, and
// cache decision into the ring.
type FlightOverhead struct {
	Jobs      int     `json:"jobs"`
	Workers   int     `json:"workers"`
	N         uint64  `json:"n"`
	OffWallMS float64 `json:"off_wall_ms"`
	OnWallMS  float64 `json:"on_wall_ms"`
	// OverheadPct is how much slower the recorded stream was, in percent of
	// the recorder-off wall clock (negative means faster — noise).
	OverheadPct float64 `json:"overhead_pct"`
	// NoisePct is the spread (max-min over min, percent) of the baseline
	// side's per-round measurements: an OverheadPct smaller than NoisePct is
	// indistinguishable from host noise.
	NoisePct float64 `json:"noise_pct"`
}

// QoSOverhead is the fair-scheduler-on vs scheduler-off cost readout: the
// same stream of single-scenario jobs pushed through a live daemon once
// under the FIFO queue and once under the weighted-fair scheduler with two
// competing tenants. All jobs ride the interactive lane so both
// configurations keep every worker busy and the delta isolates dispatch
// bookkeeping (per-tenant queues, vtime accounting, CPU billing), not the
// bulk-lane reservation policy.
type QoSOverhead struct {
	Jobs       int     `json:"jobs"`
	Workers    int     `json:"workers"`
	N          uint64  `json:"n"`
	FIFOWallMS float64 `json:"fifo_wall_ms"`
	FairWallMS float64 `json:"fair_wall_ms"`
	// OverheadPct is how much slower the fair-scheduled stream was, in
	// percent of the FIFO wall clock (negative means faster — noise).
	OverheadPct float64 `json:"overhead_pct"`
	// NoisePct is the spread (max-min over min, percent) of the FIFO side's
	// per-round wall clocks; see FlightOverhead.NoisePct.
	NoisePct float64 `json:"noise_pct"`
}

// WireCost is the binary result-path cost readout, taken on a real frame
// (one simulated RunResponse). CacheHitServeNsPerOp is what the daemon pays
// to serve one stored frame — a header peek plus one buffer copy, never a
// payload decode.
type WireCost struct {
	Scenario
	FrameBytes           int     `json:"frame_bytes"`
	EncodeMBPerSec       float64 `json:"encode_mb_per_sec"`
	DecodeMBPerSec       float64 `json:"decode_mb_per_sec"`
	CacheHitServeNsPerOp float64 `json:"cache_hit_serve_ns_per_op"`
}

// BatchRow is one worker count's measurement of the batch matrix.
type BatchRow struct {
	Workers         int     `json:"workers"`
	WallMS          float64 `json:"wall_ms"`
	ScenariosPerSec float64 `json:"scenarios_per_sec"`
	// Speedup is sequential wall clock over this row's wall clock.
	Speedup float64 `json:"speedup"`
}

// BatchThroughput is the parallel-batch cost readout: the full matrix run
// sequentially, then at 1, 2, 4, and GOMAXPROCS workers through the batch
// engine. Results are bit-identical at every row (pinned by the golden
// corpus); only wall clock moves.
type BatchThroughput struct {
	Scenarios    int        `json:"scenarios"`
	N            uint64     `json:"n"`
	NumCPU       int        `json:"num_cpu"`
	GoMaxProcs   int        `json:"gomaxprocs"`
	SequentialMS float64    `json:"sequential_ms"`
	Rows         []BatchRow `json:"rows"`
}

// ProbeOverhead is the probes-off vs probes-on cost comparison.
type ProbeOverhead struct {
	Scenario
	OffInstrsPerSec float64 `json:"off_instrs_per_sec"`
	OnInstrsPerSec  float64 `json:"on_instrs_per_sec"`
	// OverheadPct is how much slower the probed run was, in percent of the
	// unprobed rate (negative means the probed run measured faster — noise).
	OverheadPct float64 `json:"overhead_pct"`
	// NoisePct is the spread (max-min over min, percent) of the unprobed
	// side's per-round rates; see FlightOverhead.NoisePct.
	NoisePct float64 `json:"noise_pct"`
}

// spreadPct returns the spread of a measurement series as a percentage of
// its minimum — the noise floor an overhead comparison on the same host has
// to clear before it means anything.
func spreadPct(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	min, max := vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if min == 0 {
		return 0
	}
	return (max - min) / min * 100
}

var models = []struct {
	name string
	id   config.ModelID
}{
	{"I", config.ModelI},
	{"V", config.ModelV},
	{"VIII", config.ModelVIII},
}

var topologies = []struct {
	name string
	topo config.Topology
}{
	{"crossbar4", config.Crossbar4},
	{"hierring16", config.HierRing16},
}

var benchmarks = []string{"gcc", "mcf", "swim"}

// measure runs one scenario best-of-three: the fastest pass gives the
// throughput row (a single pass on a busy host charges scheduler noise to
// the engine), and the lowest-allocation pass gives the allocation row —
// the first pass per configuration pays one-time processor construction
// before the run-scratch pool absorbs it, and the steady-state cost is
// the quantity the trajectory tracks.
func measure(sc Scenario, id config.ModelID, topo config.Topology) (Measurement, error) {
	cfg := hetwire.DefaultConfig().WithModel(id)
	cfg.Topology = topo

	m := Measurement{Scenario: sc, NsPerInstr: math.Inf(1), AllocsPerInstr: math.Inf(1), BytesPerInstr: math.Inf(1)}
	n := float64(sc.N)
	for pass := 0; pass < 3; pass++ {
		// Settle the heap so the MemStats delta reflects this run only.
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		res, err := hetwire.RunBenchmark(cfg, sc.Benchmark, sc.N)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if err != nil {
			return Measurement{}, err
		}
		if rate := n / elapsed.Seconds(); rate > m.InstrsPerSec {
			m.InstrsPerSec = rate
			m.NsPerInstr = float64(elapsed.Nanoseconds()) / n
		}
		if a := float64(after.Mallocs-before.Mallocs) / n; a < m.AllocsPerInstr {
			m.AllocsPerInstr = a
		}
		if bpi := float64(after.TotalAlloc-before.TotalAlloc) / n; bpi < m.BytesPerInstr {
			m.BytesPerInstr = bpi
		}
		m.IPC = res.IPC()
	}
	return m, nil
}

// measureProbeOverhead runs one scenario through ExecuteContext (no probe)
// and ExecuteProbed (interval telemetry to a discarded writer), interleaved
// best of five passes each (off, on, off, on, ...) — the same
// drift-cancelling structure measureFlight uses, so slow host drift is
// charged to both sides instead of whichever ran second. Both paths run the
// identical request; the only difference is the probe machinery itself.
func measureProbeOverhead(count uint64) (*ProbeOverhead, error) {
	sc := Scenario{Model: "V", Topology: "crossbar4", Benchmark: "gcc", N: count}
	req := &hetwire.RunRequest{Benchmark: sc.Benchmark, Model: sc.Model, N: sc.N}
	pass := func(probed bool) (float64, error) {
		runtime.GC()
		start := time.Now()
		var err error
		if probed {
			_, err = req.ExecuteProbed(context.Background(), io.Discard)
		} else {
			_, err = req.ExecuteContext(context.Background())
		}
		if err != nil {
			return 0, err
		}
		return float64(count) / time.Since(start).Seconds(), nil
	}
	var off, on float64
	var offRates []float64
	for round := 0; round < 5; round++ {
		for _, probed := range []bool{false, true} {
			rate, err := pass(probed)
			if err != nil {
				return nil, err
			}
			if probed {
				if rate > on {
					on = rate
				}
			} else {
				offRates = append(offRates, rate)
				if rate > off {
					off = rate
				}
			}
		}
	}
	return &ProbeOverhead{
		Scenario:        sc,
		OffInstrsPerSec: off,
		OnInstrsPerSec:  on,
		OverheadPct:     (off - on) / off * 100,
		NoisePct:        spreadPct(offRates),
	}, nil
}

// batchMatrix is the 18-scenario sweep the batch rows measure: the full
// model × topology × benchmark matrix as one BatchRequest.
func batchMatrix(count uint64, parallelism int) *hetwire.BatchRequest {
	return &hetwire.BatchRequest{
		Sweep: &hetwire.BatchSweep{
			Models:     []string{"I", "V", "VIII"},
			Benchmarks: []string{"gcc", "mcf", "swim"},
			Clusters:   []int{4, 16},
			Ns:         []uint64{count},
		},
		Parallelism: parallelism,
	}
}

// measureBatch times the batch matrix sequentially and at increasing worker
// counts. The workload memo cache is warmed first (a tiny-N pass builds every
// benchmark's static structure), so every measured row sees identical cache
// state and the comparison isolates scheduling, not build amortisation.
func measureBatch(count uint64) (*BatchThroughput, error) {
	warm := batchMatrix(1_000, 0)
	if _, err := warm.Execute(); err != nil {
		return nil, err
	}
	run := func(parallelism int) (time.Duration, error) {
		req := batchMatrix(count, parallelism)
		runtime.GC()
		start := time.Now()
		resp, err := req.Execute()
		if err != nil {
			return 0, err
		}
		if resp.Failed > 0 {
			return 0, fmt.Errorf("batch run: %d of %d scenarios failed", resp.Failed, len(resp.Scenarios))
		}
		return time.Since(start), nil
	}

	seq, err := run(1)
	if err != nil {
		return nil, err
	}
	nScen := 3 * 3 * 2
	bt := &BatchThroughput{
		Scenarios:    nScen,
		N:            count,
		NumCPU:       runtime.NumCPU(),
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		SequentialMS: float64(seq) / float64(time.Millisecond),
	}
	// 1/2/4 plus GOMAXPROCS gives a true scaling curve on multi-core hosts;
	// on a single-core host every row collapses to ≈1.0x and the recorded
	// num_cpu says why.
	workers := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	for _, w := range workers {
		if seen[w] {
			continue
		}
		seen[w] = true
		wall, err := run(w)
		if err != nil {
			return nil, err
		}
		bt.Rows = append(bt.Rows, BatchRow{
			Workers:         w,
			WallMS:          float64(wall) / float64(time.Millisecond),
			ScenariosPerSec: float64(nScen) / wall.Seconds(),
			Speedup:         seq.Seconds() / wall.Seconds(),
		})
	}
	return bt, nil
}

// qosPass pushes the job stream through one daemon configuration and times
// submission-to-last-completion. Distinct budgets per job defeat the result
// cache, so every job simulates.
func qosPass(fifo bool, workers int, ns []uint64) (time.Duration, error) {
	opts := server.Options{Workers: workers, QueueDepth: len(ns) + 8, FIFOScheduler: fifo}
	keys := []string{""}
	if !fifo {
		// Two competing tenants make the fair path do real work: separate
		// queues, weight-scaled vtime updates, per-tenant accounting.
		opts.Tenants = &tenant.Config{Tenants: []tenant.Spec{
			{Name: "alpha", Key: "qos-alpha", Weight: 3},
			{Name: "beta", Key: "qos-beta", Weight: 1},
		}}
		keys = []string{"qos-alpha", "qos-beta"}
	}
	s := server.New(opts)
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		s.Shutdown(ctx)
		ts.Close()
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	clients := make([]*client.Client, len(keys))
	for i, key := range keys {
		clients[i] = client.New(client.Options{BaseURL: ts.URL, TenantKey: key})
	}
	runtime.GC()
	start := time.Now()
	ids := make([]string, len(ns))
	for i, n := range ns {
		var st server.JobStatus
		if err := clients[i%len(clients)].DoJSON(ctx, http.MethodPost, "/v1/jobs",
			map[string]any{"benchmark": "gcc", "n": n}, "", &st); err != nil {
			return 0, err
		}
		ids[i] = st.ID
	}
	for i, id := range ids {
		st, err := clients[i%len(clients)].Await(ctx, id, 2*time.Millisecond)
		if err != nil {
			return 0, err
		}
		if st.State != server.StateDone {
			return 0, fmt.Errorf("qos pass job %s ended %s: %s", id, st.State, st.Error)
		}
	}
	return time.Since(start), nil
}

// measureQoS times the identical job stream under FIFO and under the
// weighted-fair scheduler, interleaved best of five passes each.
func measureQoS(count uint64) (*QoSOverhead, error) {
	const jobs = 24
	workers := runtime.GOMAXPROCS(0)
	if workers > 4 {
		workers = 4
	}
	per := count / 2
	if per < 1_000 {
		per = 1_000
	}
	// Warm the workload memo cache so neither configuration pays the
	// one-time benchmark build.
	if _, err := qosPass(true, workers, []uint64{1_000}); err != nil {
		return nil, err
	}
	// Interleave the passes (fifo, fair, fifo, fair, ...) and keep each
	// side's best: back-to-back alternation cancels slow host drift
	// (thermal, heap growth) that a run-all-of-one-then-the-other order
	// would charge entirely to whichever side went second.
	var fifoWall, fairWall time.Duration
	var fifoWalls []float64
	for round := 0; round < 5; round++ {
		for _, fifo := range []bool{true, false} {
			// Fresh budgets every pass: a shared prefix would hit the new
			// server's empty cache anyway, but distinct values also keep the
			// two configurations' workloads byte-for-byte symmetric.
			ns := make([]uint64, jobs)
			for j := range ns {
				ns[j] = per + uint64(round*jobs+j)
			}
			wall, err := qosPass(fifo, workers, ns)
			if err != nil {
				return nil, err
			}
			if fifo {
				fifoWalls = append(fifoWalls, wall.Seconds())
				if fifoWall == 0 || wall < fifoWall {
					fifoWall = wall
				}
			} else if fairWall == 0 || wall < fairWall {
				fairWall = wall
			}
		}
	}
	return &QoSOverhead{
		Jobs:       jobs,
		Workers:    workers,
		N:          per,
		FIFOWallMS: float64(fifoWall) / float64(time.Millisecond),
		FairWallMS: float64(fairWall) / float64(time.Millisecond),
		OverheadPct: (fairWall.Seconds() - fifoWall.Seconds()) /
			fifoWall.Seconds() * 100,
		NoisePct: spreadPct(fifoWalls),
	}, nil
}

// flightPass pushes the job stream through one daemon configuration —
// recorder disabled (FlightEvents -1) or enabled at the default ring size —
// and times submission-to-last-completion. Distinct budgets defeat the
// result cache, so every job simulates and every probe site fires.
func flightPass(enabled bool, workers int, ns []uint64) (time.Duration, error) {
	opts := server.Options{Workers: workers, QueueDepth: len(ns) + 8, FlightEvents: -1}
	if enabled {
		opts.FlightEvents = 0 // default ring
	}
	s := server.New(opts)
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		s.Shutdown(ctx)
		ts.Close()
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	cl := client.New(client.Options{BaseURL: ts.URL})
	runtime.GC()
	start := time.Now()
	ids := make([]string, len(ns))
	for i, n := range ns {
		var st server.JobStatus
		if err := cl.DoJSON(ctx, http.MethodPost, "/v1/jobs",
			map[string]any{"benchmark": "gcc", "n": n}, "", &st); err != nil {
			return 0, err
		}
		ids[i] = st.ID
	}
	for _, id := range ids {
		st, err := cl.Await(ctx, id, 2*time.Millisecond)
		if err != nil {
			return 0, err
		}
		if st.State != server.StateDone {
			return 0, fmt.Errorf("flight pass job %s ended %s: %s", id, st.State, st.Error)
		}
	}
	return time.Since(start), nil
}

// measureFlight times the identical job stream with the recorder off and on,
// interleaved best of five passes each (same drift-cancelling structure as
// measureQoS, but with more rounds: the true per-event cost is nanoseconds
// against multi-second passes, so the reported difference is dominated by
// scheduler noise and extra rounds tighten both minima toward it).
func measureFlight(count uint64) (*FlightOverhead, error) {
	const jobs = 24
	workers := runtime.GOMAXPROCS(0)
	if workers > 4 {
		workers = 4
	}
	per := count / 2
	if per < 1_000 {
		per = 1_000
	}
	if _, err := flightPass(false, workers, []uint64{1_000}); err != nil {
		return nil, err
	}
	var offWall, onWall time.Duration
	var offWalls []float64
	for round := 0; round < 5; round++ {
		for _, enabled := range []bool{false, true} {
			ns := make([]uint64, jobs)
			for j := range ns {
				ns[j] = per + uint64(round*jobs+j)
			}
			wall, err := flightPass(enabled, workers, ns)
			if err != nil {
				return nil, err
			}
			if enabled {
				if onWall == 0 || wall < onWall {
					onWall = wall
				}
			} else {
				offWalls = append(offWalls, wall.Seconds())
				if offWall == 0 || wall < offWall {
					offWall = wall
				}
			}
		}
	}
	return &FlightOverhead{
		Jobs:      jobs,
		Workers:   workers,
		N:         per,
		OffWallMS: float64(offWall) / float64(time.Millisecond),
		OnWallMS:  float64(onWall) / float64(time.Millisecond),
		OverheadPct: (onWall.Seconds() - offWall.Seconds()) /
			offWall.Seconds() * 100,
		NoisePct: spreadPct(offWalls),
	}, nil
}

// measureWire simulates one scenario, then times the binary result path on
// its frame: encode throughput, decode throughput, and the cache-hit serve
// operation (PeekHeader + copy, exactly the daemon's hit path).
func measureWire(count uint64) (*WireCost, error) {
	sc := Scenario{Model: "V", Topology: "crossbar4", Benchmark: "gcc", N: count}
	req := &hetwire.RunRequest{Benchmark: sc.Benchmark, Model: sc.Model, N: sc.N}
	resp, err := req.Execute()
	if err != nil {
		return nil, err
	}
	frame, err := wire.EncodeRunResult(resp)
	if err != nil {
		return nil, err
	}

	const iters = 50_000
	runtime.GC()
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := wire.EncodeRunResult(resp); err != nil {
			return nil, err
		}
	}
	encElapsed := time.Since(start)

	start = time.Now()
	for i := 0; i < iters; i++ {
		if _, err := wire.DecodeRunResult(frame); err != nil {
			return nil, err
		}
	}
	decElapsed := time.Since(start)

	dst := make([]byte, len(frame))
	start = time.Now()
	for i := 0; i < iters; i++ {
		if _, err := wire.PeekHeader(frame); err != nil {
			return nil, err
		}
		copy(dst, frame)
	}
	serveElapsed := time.Since(start)

	mb := float64(len(frame)) * iters / (1 << 20)
	return &WireCost{
		Scenario:             sc,
		FrameBytes:           len(frame),
		EncodeMBPerSec:       mb / encElapsed.Seconds(),
		DecodeMBPerSec:       mb / decElapsed.Seconds(),
		CacheHitServeNsPerOp: float64(serveElapsed.Nanoseconds()) / iters,
	}, nil
}

func main() {
	var (
		out   = flag.String("out", "BENCH_hetwire.json", "output file ('-' for stdout)")
		quick = flag.Bool("quick", false, "small instruction counts (CI smoke)")
		n     = flag.Uint64("n", 0, "override instructions per scenario (0 = default matrix)")
		check = flag.Bool("check", false, "compare two report files (old.json new.json); exit nonzero on regression")
	)
	flag.Parse()

	if *check {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchreport -check old.json new.json")
			os.Exit(2)
		}
		os.Exit(runCheck(flag.Arg(0), flag.Arg(1)))
	}

	count := uint64(200_000)
	if *quick {
		count = 20_000
	}
	if *n > 0 {
		count = *n
	}

	rep := Report{
		Schema:     "hetwire-bench/v1",
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Quick:      *quick,
	}
	for _, mo := range models {
		for _, tp := range topologies {
			for _, bench := range benchmarks {
				sc := Scenario{Model: mo.name, Topology: tp.name, Benchmark: bench, N: count}
				m, err := measure(sc, mo.id, tp.topo)
				if err != nil {
					fmt.Fprintf(os.Stderr, "benchreport: %s/%s/%s: %v\n", sc.Model, sc.Topology, sc.Benchmark, err)
					os.Exit(1)
				}
				rep.Scenarios = append(rep.Scenarios, m)
				fmt.Fprintf(os.Stderr, "%-5s %-10s %-6s n=%-7d %10.0f instrs/s %7.1f ns/instr %6.3f allocs/instr\n",
					sc.Model, sc.Topology, sc.Benchmark, sc.N, m.InstrsPerSec, m.NsPerInstr, m.AllocsPerInstr)
			}
		}
	}

	po, err := measureProbeOverhead(count)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: probe overhead: %v\n", err)
		os.Exit(1)
	}
	rep.ProbeOverhead = po
	fmt.Fprintf(os.Stderr, "probe overhead %s/%s/%s n=%-7d %10.0f instrs/s off %10.0f instrs/s on (%+.2f%%, noise %.2f%%)\n",
		po.Model, po.Topology, po.Benchmark, po.N, po.OffInstrsPerSec, po.OnInstrsPerSec, po.OverheadPct, po.NoisePct)

	bt, err := measureBatch(count)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: batch throughput: %v\n", err)
		os.Exit(1)
	}
	rep.BatchThroughput = bt
	for _, row := range bt.Rows {
		fmt.Fprintf(os.Stderr, "batch matrix %d scenarios n=%-7d workers=%-2d %8.0f ms %6.2f scen/s speedup %.2fx\n",
			bt.Scenarios, bt.N, row.Workers, row.WallMS, row.ScenariosPerSec, row.Speedup)
	}

	wc, err := measureWire(count)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: wire cost: %v\n", err)
		os.Exit(1)
	}
	rep.Wire = wc
	fmt.Fprintf(os.Stderr, "wire frame %d B encode %7.1f MB/s decode %7.1f MB/s cache-hit serve %6.1f ns/op\n",
		wc.FrameBytes, wc.EncodeMBPerSec, wc.DecodeMBPerSec, wc.CacheHitServeNsPerOp)

	qo, err := measureQoS(count)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: qos overhead: %v\n", err)
		os.Exit(1)
	}
	rep.QoSOverhead = qo
	fmt.Fprintf(os.Stderr, "qos overhead %d jobs n=%-7d workers=%d fifo %8.1f ms fair %8.1f ms (%+.2f%%, noise %.2f%%)\n",
		qo.Jobs, qo.N, qo.Workers, qo.FIFOWallMS, qo.FairWallMS, qo.OverheadPct, qo.NoisePct)

	fo, err := measureFlight(count)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: flight overhead: %v\n", err)
		os.Exit(1)
	}
	rep.FlightOverhead = fo
	fmt.Fprintf(os.Stderr, "flight overhead %d jobs n=%-7d workers=%d off %8.1f ms on %8.1f ms (%+.2f%%, noise %.2f%%)\n",
		fo.Jobs, fo.N, fo.Workers, fo.OffWallMS, fo.OnWallMS, fo.OverheadPct, fo.NoisePct)

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	raw = append(raw, '\n')
	if *out == "-" {
		os.Stdout.Write(raw)
		return
	}
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d scenarios)\n", *out, len(rep.Scenarios))
}
