// Command benchreport measures simulator throughput and allocation cost over
// a fixed scenario matrix and writes a machine-readable trajectory file, so
// performance can be tracked across commits without hand-reading `go test
// -bench` output.
//
//	benchreport                      # full matrix -> BENCH_hetwire.json
//	benchreport -quick               # smaller instruction counts (CI smoke)
//	benchreport -out /tmp/bench.json
//
// Each scenario reports instructions per wall-clock second, nanoseconds per
// simulated instruction, and heap allocations/bytes per instruction (from
// runtime.MemStats deltas around the run, single-threaded with GC settled
// first). Simulated behaviour per scenario is pinned separately by the golden
// corpus (testdata/golden); this tool tracks only cost.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"hetwire"
	"hetwire/internal/config"
)

// Scenario identifies one measured configuration.
type Scenario struct {
	Model     string `json:"model"`
	Topology  string `json:"topology"`
	Benchmark string `json:"benchmark"`
	N         uint64 `json:"n"`
}

// Measurement is the cost readout for one scenario.
type Measurement struct {
	Scenario
	InstrsPerSec   float64 `json:"instrs_per_sec"`
	NsPerInstr     float64 `json:"ns_per_instr"`
	AllocsPerInstr float64 `json:"allocs_per_instr"`
	BytesPerInstr  float64 `json:"bytes_per_instr"`
	IPC            float64 `json:"ipc"`
}

// Report is the top-level BENCH_hetwire.json document.
type Report struct {
	Schema    string        `json:"schema"`
	GoVersion string        `json:"go_version"`
	Quick     bool          `json:"quick,omitempty"`
	Scenarios []Measurement `json:"scenarios"`
}

var models = []struct {
	name string
	id   config.ModelID
}{
	{"I", config.ModelI},
	{"V", config.ModelV},
	{"VIII", config.ModelVIII},
}

var topologies = []struct {
	name string
	topo config.Topology
}{
	{"crossbar4", config.Crossbar4},
	{"hierring16", config.HierRing16},
}

var benchmarks = []string{"gcc", "mcf", "swim"}

func measure(sc Scenario, id config.ModelID, topo config.Topology) (Measurement, error) {
	cfg := hetwire.DefaultConfig().WithModel(id)
	cfg.Topology = topo

	// Settle the heap so the MemStats delta reflects this run only.
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := hetwire.RunBenchmark(cfg, sc.Benchmark, sc.N)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return Measurement{}, err
	}

	n := float64(sc.N)
	m := Measurement{
		Scenario:       sc,
		InstrsPerSec:   n / elapsed.Seconds(),
		NsPerInstr:     float64(elapsed.Nanoseconds()) / n,
		AllocsPerInstr: float64(after.Mallocs-before.Mallocs) / n,
		BytesPerInstr:  float64(after.TotalAlloc-before.TotalAlloc) / n,
		IPC:            res.IPC(),
	}
	return m, nil
}

func main() {
	var (
		out   = flag.String("out", "BENCH_hetwire.json", "output file ('-' for stdout)")
		quick = flag.Bool("quick", false, "small instruction counts (CI smoke)")
		n     = flag.Uint64("n", 0, "override instructions per scenario (0 = default matrix)")
	)
	flag.Parse()

	count := uint64(200_000)
	if *quick {
		count = 20_000
	}
	if *n > 0 {
		count = *n
	}

	rep := Report{Schema: "hetwire-bench/v1", GoVersion: runtime.Version(), Quick: *quick}
	for _, mo := range models {
		for _, tp := range topologies {
			for _, bench := range benchmarks {
				sc := Scenario{Model: mo.name, Topology: tp.name, Benchmark: bench, N: count}
				m, err := measure(sc, mo.id, tp.topo)
				if err != nil {
					fmt.Fprintf(os.Stderr, "benchreport: %s/%s/%s: %v\n", sc.Model, sc.Topology, sc.Benchmark, err)
					os.Exit(1)
				}
				rep.Scenarios = append(rep.Scenarios, m)
				fmt.Fprintf(os.Stderr, "%-5s %-10s %-6s n=%-7d %10.0f instrs/s %7.1f ns/instr %6.3f allocs/instr\n",
					sc.Model, sc.Topology, sc.Benchmark, sc.N, m.InstrsPerSec, m.NsPerInstr, m.AllocsPerInstr)
			}
		}
	}

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	raw = append(raw, '\n')
	if *out == "-" {
		os.Stdout.Write(raw)
		return
	}
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d scenarios)\n", *out, len(rep.Scenarios))
}
