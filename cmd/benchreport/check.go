package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
)

// Regression thresholds for -check. Throughput is compared as a geomean
// ratio across matched scenarios, so a single noisy row cannot fail the
// gate on its own; allocations are near-deterministic and get a much
// tighter band that still absorbs MemStats jitter.
const (
	checkMaxSlowdown   = 0.90 // new geomean instrs/s must be ≥ 90% of old
	checkMaxAllocsRise = 1.05 // new geomean allocs/instr must be ≤ 105% of old
)

// runCheck implements `benchreport -check old.json new.json`: it matches
// scenarios by (model, topology, benchmark), prints the per-scenario
// throughput and allocation ratios, and exits nonzero if the aggregate
// throughput regressed by more than 10% or allocs/instr rose. Scenario
// instruction counts may differ between the files — instrs/s and
// allocs/instr are already per-instruction rates.
func runCheck(oldPath, newPath string) int {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport: -check:", err)
		return 2
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport: -check:", err)
		return 2
	}

	oldBy := map[Scenario]Measurement{}
	for _, m := range oldRep.Scenarios {
		key := m.Scenario
		key.N = 0 // match on identity, not instruction count
		oldBy[key] = m
	}

	var logSpeed, logAllocs float64
	matched, allocPairs := 0, 0
	for _, nm := range newRep.Scenarios {
		key := nm.Scenario
		key.N = 0
		om, ok := oldBy[key]
		if !ok {
			continue
		}
		matched++
		r := nm.InstrsPerSec / om.InstrsPerSec
		logSpeed += math.Log(r)
		line := fmt.Sprintf("%-5s %-10s %-6s speed %6.2fx", key.Model, key.Topology, key.Benchmark, r)
		if om.AllocsPerInstr > 0 && nm.AllocsPerInstr > 0 {
			ar := nm.AllocsPerInstr / om.AllocsPerInstr
			logAllocs += math.Log(ar)
			allocPairs++
			line += fmt.Sprintf("  allocs %6.2fx", ar)
		}
		fmt.Fprintln(os.Stderr, line)
	}
	if matched == 0 {
		fmt.Fprintln(os.Stderr, "benchreport: -check: no matching scenarios between the two files")
		return 2
	}

	speedGeo := math.Exp(logSpeed / float64(matched))
	fail := false
	fmt.Fprintf(os.Stderr, "aggregate: %d scenarios, geomean speed %.3fx", matched, speedGeo)
	if speedGeo < checkMaxSlowdown {
		fmt.Fprintf(os.Stderr, "  REGRESSION (< %.2fx)", checkMaxSlowdown)
		fail = true
	}
	if allocPairs > 0 {
		allocGeo := math.Exp(logAllocs / float64(allocPairs))
		fmt.Fprintf(os.Stderr, ", geomean allocs %.3fx", allocGeo)
		if allocGeo > checkMaxAllocsRise {
			fmt.Fprintf(os.Stderr, "  REGRESSION (> %.2fx)", checkMaxAllocsRise)
			fail = true
		}
	}
	fmt.Fprintln(os.Stderr)
	if fail {
		fmt.Fprintln(os.Stderr, "benchreport: -check: FAIL")
		return 1
	}
	fmt.Fprintln(os.Stderr, "benchreport: -check: ok")
	return 0
}

func loadReport(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != "hetwire-bench/v1" {
		return nil, fmt.Errorf("%s: unexpected schema %q", path, rep.Schema)
	}
	return &rep, nil
}
