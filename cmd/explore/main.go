// Command explore enumerates every feasible heterogeneous link composition
// within a metal-area budget and ranks the designs by total-processor ED^2
// — the design-space search the paper's Section 3 calls for.
//
//	explore -area 2.0 -ic 0.10 -n 100000
package main

import (
	"flag"
	"fmt"

	"hetwire"
	"hetwire/internal/stats"
)

func main() {
	var (
		area = flag.Float64("area", 2.0, "metal-area budget in Model-I link units (paper designs: 1.0..3.0)")
		ic   = flag.Float64("ic", 0.10, "interconnect share of baseline processor energy (0.10 or 0.20)")
		n    = flag.Uint64("n", 100_000, "instructions per benchmark")
		top  = flag.Int("top", 10, "designs to print")
		j    = flag.Int("j", 0, "parallel scenario executions across the design×benchmark batch (0 = all CPUs)")
	)
	flag.Parse()

	fmt.Printf("exploring link compositions within %.1f Model-I area units (IC share %.0f%%)\n\n", *area, 100**ic)
	r := hetwire.ExploreArea(*area, *ic, hetwire.Options{Instructions: *n, Parallelism: *j})

	t := stats.NewTable("rank", "link (per direction)", "area", "AM IPC", "rel energy", "rel ED2", "paper model")
	for i, p := range r.Points {
		if i >= *top {
			break
		}
		name := "-"
		if p.PaperModel != 0 {
			name = p.PaperModel.String()
		}
		t.AddRow(i+1, p.Link.String(), p.MetalArea, p.IPC, p.RelEnergy, p.RelED2, name)
	}
	fmt.Println(t)
	best := r.Best()
	fmt.Printf("ED2-optimal design: %s (ED2 %.1f vs Model-I 100)\n", best.Link, best.RelED2)
	fmt.Println("(The paper's Table 3 samples ten points of this space; the sweep confirms")
	fmt.Println(" its conclusion — the optimum always mixes wire classes.)")
}
