// Command tracegen materialises synthetic benchmark traces as files, and
// inspects existing trace files. The on-disk format is documented in
// internal/trace/file.go; hwsim replays trace files with -tracefile.
//
//	tracegen -bench gcc -n 1000000 -o gcc.hwt
//	tracegen -inspect gcc.hwt
package main

import (
	"flag"
	"fmt"
	"os"

	"hetwire/internal/trace"
	"hetwire/internal/workload"
)

func main() {
	var (
		bench   = flag.String("bench", "gcc", "benchmark profile to generate")
		n       = flag.Uint64("n", 1_000_000, "instructions to generate")
		out     = flag.String("o", "", "output trace file (default <bench>.hwt)")
		inspect = flag.String("inspect", "", "print a summary of an existing trace file and exit")
	)
	flag.Parse()

	if *inspect != "" {
		if err := summarise(*inspect); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		return
	}

	prof, ok := workload.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "tracegen: unknown benchmark %q\n", *bench)
		os.Exit(2)
	}
	path := *out
	if path == "" {
		path = *bench + ".hwt"
	}
	written, err := trace.WriteTraceFile(path, workload.NewGenerator(prof), *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d instructions of %s to %s\n", written, *bench, path)
}

func summarise(path string) error {
	fs, err := trace.OpenTraceFile(path)
	if err != nil {
		return err
	}
	defer fs.Close()

	total := fs.Count()
	var counts [8]uint64
	var taken, narrow uint64
	var ins trace.Instr
	for fs.Next(&ins) {
		counts[int(ins.Op)%len(counts)]++
		if ins.Op == trace.Branch && ins.Taken {
			taken++
		}
		if ins.Dest != trace.NoReg && ins.Value < 1024 {
			narrow++
		}
	}
	if err := fs.Err(); err != nil {
		return err
	}
	fmt.Printf("%s: %d instructions\n", path, total)
	for op := trace.IntALU; op <= trace.Branch; op++ {
		if counts[op] == 0 {
			continue
		}
		fmt.Printf("  %-7s %9d (%5.1f%%)\n", op, counts[op], 100*float64(counts[op])/float64(total))
	}
	if b := counts[trace.Branch]; b > 0 {
		fmt.Printf("  taken-branch fraction: %.1f%%\n", 100*float64(taken)/float64(b))
	}
	fmt.Printf("  narrow results: %d\n", narrow)
	return nil
}
