// Command pipeview renders a per-instruction pipeline timeline — an ASCII
// Gantt of fetch/dispatch/issue/complete/commit — for a window of a
// benchmark's execution. Useful for seeing exactly where heterogeneous
// wires change the schedule.
//
//	pipeview -bench gzip -skip 5000 -count 30
//	pipeview -bench mcf -model VII -count 40
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hetwire"
	"hetwire/internal/core"
	"hetwire/internal/workload"
)

var modelNames = map[string]hetwire.ModelID{
	"I": hetwire.ModelI, "II": hetwire.ModelII, "III": hetwire.ModelIII,
	"IV": hetwire.ModelIV, "V": hetwire.ModelV, "VI": hetwire.ModelVI,
	"VII": hetwire.ModelVII, "VIII": hetwire.ModelVIII, "IX": hetwire.ModelIX,
	"X": hetwire.ModelX,
}

func main() {
	var (
		bench = flag.String("bench", "gzip", "benchmark name")
		model = flag.String("model", "I", "interconnect model I..X")
		skip  = flag.Uint64("skip", 10_000, "instructions to run before the window")
		count = flag.Uint64("count", 24, "instructions to display")
		width = flag.Int("width", 64, "timeline width in characters")
	)
	flag.Parse()

	id, ok := modelNames[strings.ToUpper(*model)]
	if !ok {
		fmt.Fprintf(os.Stderr, "pipeview: unknown model %q\n", *model)
		os.Exit(2)
	}
	prof, ok := workload.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "pipeview: unknown benchmark %q\n", *bench)
		os.Exit(2)
	}

	cfg := hetwire.DefaultConfig().WithModel(id)
	proc := core.New(cfg)
	gen := workload.NewGenerator(prof)

	var window []core.InstrTiming
	total := *skip + *count
	seen := uint64(0)
	proc.Observer = func(ti core.InstrTiming) {
		seen++
		if seen > *skip {
			window = append(window, ti)
		}
	}
	proc.Run(gen, total)
	if len(window) == 0 {
		fmt.Fprintln(os.Stderr, "pipeview: empty window")
		os.Exit(1)
	}

	base := window[0].Fetch
	span := window[len(window)-1].Commit - base + 1
	scale := float64(*width) / float64(span)
	pos := func(c uint64) int {
		p := int(float64(c-base) * scale)
		if p >= *width {
			p = *width - 1
		}
		return p
	}

	fmt.Printf("%s on %v — instructions %d..%d, cycles %d..%d (F fetch, D dispatch, I issue, C complete, R retire)\n\n",
		*bench, id, *skip+1, total, base, window[len(window)-1].Commit)
	fmt.Printf("%-6s %-10s %-6s %-4s %s\n", "seq", "pc", "op", "clu", "timeline")
	for _, ti := range window {
		line := []byte(strings.Repeat(".", *width))
		put := func(c uint64, ch byte) {
			p := pos(c)
			if line[p] == '.' || line[p] == '-' {
				line[p] = ch
			}
		}
		for p := pos(ti.Fetch); p <= pos(ti.Commit); p++ {
			line[p] = '-'
		}
		put(ti.Fetch, 'F')
		put(ti.Dispatch, 'D')
		put(ti.Issue, 'I')
		put(ti.Complete, 'C')
		put(ti.Commit, 'R')
		mark := " "
		if ti.Mispred {
			mark = "!"
		}
		fmt.Printf("%-6d %#08x %-6s %-4d %s%s\n", ti.Seq, ti.PC, ti.Op, ti.Cluster, string(line), mark)
	}
	fmt.Println("\n('!' marks mispredicted branches; time flows left to right)")
}
