package hetwire

import (
	"encoding/json"
	"testing"
)

// FuzzConfigFromJSON exercises the config-file decoder with arbitrary
// documents. Two properties: the decoder never panics, and every accepted
// configuration round-trips through its canonical JSON form to the same
// ConfigHash — the invariant the serving cache's identity scheme relies on.
func FuzzConfigFromJSON(f *testing.F) {
	f.Add([]byte(`{"model":"I"}`))
	f.Add([]byte(`{"model":"V","clusters":16}`))
	f.Add([]byte(`{"model":"VIII","clusters":4,"latency_scale":2,"steering":"static-hash"}`))
	f.Add([]byte(`{"model":"VII","link_heterogeneous":true,"ls_bits":6,` +
		`"techniques":{"cache_pipeline":false,"pw_store_data":true},` +
		`"core_overrides":{"rob":256,"fetch_width":4}}`))
	f.Add([]byte(`{"model":"X","steering":"round-robin"}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"model":"XI"}`))
	f.Add([]byte(`{"model":"I","clusters":7}`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		cfg, err := ConfigFromJSON(raw)
		if err != nil {
			return // rejected input; only panics are failures
		}
		canon, err := ConfigJSON(cfg)
		if err != nil {
			t.Fatalf("accepted config has no canonical JSON: %v", err)
		}
		cfg2, err := ConfigFromJSON(canon)
		if err != nil {
			t.Fatalf("canonical JSON does not round-trip: %v\n%s", err, canon)
		}
		h1, err := ConfigHash(cfg)
		if err != nil {
			t.Fatalf("ConfigHash(decoded): %v", err)
		}
		h2, err := ConfigHash(cfg2)
		if err != nil {
			t.Fatalf("ConfigHash(round-tripped): %v", err)
		}
		if h1 != h2 {
			t.Fatalf("round-trip changed the config identity: %s vs %s\ninput: %s", h1, h2, raw)
		}
	})
}

// FuzzRunRequestValidate exercises the serving API's request validation with
// arbitrary request documents. Validate must never panic, and any request it
// accepts must also produce a cache key (the daemon calls CacheKey right
// after Validate; an accept/no-key split would 500 at serve time).
func FuzzRunRequestValidate(f *testing.F) {
	f.Add([]byte(`{"benchmark":"gcc"}`))
	f.Add([]byte(`{"benchmark":"gzip","n":5000,"model":"V","clusters":16}`))
	f.Add([]byte(`{"benchmarks":["gcc","mcf","swim","gzip"],"clusters":16}`))
	f.Add([]byte(`{"benchmark":"pchase","config":{"model":"VII","clusters":4}}`))
	f.Add([]byte(`{"benchmark":"gcc","benchmarks":["mcf"]}`))
	f.Add([]byte(`{"benchmark":"nonexistent"}`))
	f.Add([]byte(`{"n":1}`))
	f.Add([]byte(`{"benchmark":"gcc","clusters":5}`))
	f.Add([]byte(`{"benchmark":"gcc","n":99999999999}`))                       // absurd instruction budget
	f.Add([]byte(`{"benchmarks":["gcc","mcf","swim","gzip","mesa","vortex",` + // > MaxBenchmarks
		`"gcc","mcf","swim","gzip","mesa","vortex","gcc","mcf","swim","gzip","mesa"]}`))
	f.Add([]byte(`{"benchmarks":["gcc","mcf","swim","gzip","mesa"],"clusters":4}`)) // programs > clusters
	f.Fuzz(func(t *testing.T, raw []byte) {
		var req RunRequest
		if err := json.Unmarshal(raw, &req); err != nil {
			return
		}
		if err := req.Validate(); err != nil {
			return // rejected request; only panics are failures
		}
		key, err := req.CacheKey()
		if err != nil {
			t.Fatalf("validated request has no cache key: %v\nrequest: %s", err, raw)
		}
		key2, err := req.CacheKey()
		if err != nil || key != key2 {
			t.Fatalf("cache key not stable: %q vs %q (err %v)", key, key2, err)
		}
	})
}
