package hetwire

import (
	"encoding/json"
	"testing"
)

// FuzzConfigFromJSON exercises the config-file decoder with arbitrary
// documents. Two properties: the decoder never panics, and every accepted
// configuration round-trips through its canonical JSON form to the same
// ConfigHash — the invariant the serving cache's identity scheme relies on.
func FuzzConfigFromJSON(f *testing.F) {
	f.Add([]byte(`{"model":"I"}`))
	f.Add([]byte(`{"model":"V","clusters":16}`))
	f.Add([]byte(`{"model":"VIII","clusters":4,"latency_scale":2,"steering":"static-hash"}`))
	f.Add([]byte(`{"model":"VII","link_heterogeneous":true,"ls_bits":6,` +
		`"techniques":{"cache_pipeline":false,"pw_store_data":true},` +
		`"core_overrides":{"rob":256,"fetch_width":4}}`))
	f.Add([]byte(`{"model":"X","steering":"round-robin"}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"model":"XI"}`))
	f.Add([]byte(`{"model":"I","clusters":7}`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		cfg, err := ConfigFromJSON(raw)
		if err != nil {
			return // rejected input; only panics are failures
		}
		canon, err := ConfigJSON(cfg)
		if err != nil {
			t.Fatalf("accepted config has no canonical JSON: %v", err)
		}
		cfg2, err := ConfigFromJSON(canon)
		if err != nil {
			t.Fatalf("canonical JSON does not round-trip: %v\n%s", err, canon)
		}
		h1, err := ConfigHash(cfg)
		if err != nil {
			t.Fatalf("ConfigHash(decoded): %v", err)
		}
		h2, err := ConfigHash(cfg2)
		if err != nil {
			t.Fatalf("ConfigHash(round-tripped): %v", err)
		}
		if h1 != h2 {
			t.Fatalf("round-trip changed the config identity: %s vs %s\ninput: %s", h1, h2, raw)
		}
	})
}

// FuzzBatchRequestValidate exercises batch admission with arbitrary batch
// documents. Validate must never panic, and three invariants hold for every
// input: a batch Validate accepts must Expand to within MaxSweepPoints with
// every scenario individually valid; expansion must be deterministic (two
// Expand calls agree); and validation must not mutate the request.
func FuzzBatchRequestValidate(f *testing.F) {
	f.Add([]byte(`{"scenarios":[{"benchmark":"gcc","n":5000}]}`))
	f.Add([]byte(`{"sweep":{"models":["I","V"],"benchmarks":["gcc","mcf"],"clusters":[4,16],"ns":[4000,16000]}}`))
	f.Add([]byte(`{"scenarios":[{"benchmark":"gcc"}],"sweep":{"models":["VIII"],"benchmarks":["swim"]}}`))
	f.Add([]byte(`{"sweep":{"models":["I"],"benchmarks":["gcc"],"ns":[1,2,3,4,5,6,7,8,9,10]},"parallelism":4}`))
	f.Add([]byte(`{}`))                                       // empty: no scenarios
	f.Add([]byte(`{"parallelism":-1,"scenarios":[{"benchmark":"gcc"}]}`)) // negative parallelism
	f.Add([]byte(`{"scenarios":[{"benchmark":"no-such-benchmark"}]}`))   // bad scenario
	f.Add([]byte(`{"sweep":{"models":["I"],"benchmarks":["gcc"],"clusters":[7]}}`))       // bad clusters
	f.Add([]byte(`{"sweep":{"benchmarks":["gcc"]}}`))                                     // missing models axis
	f.Add([]byte(`{"sweep":{"models":["I","V","VIII","X"],"benchmarks":["gcc","mcf","swim","gzip"],` +
		`"clusters":[4,16],"ns":[1000,2000,3000,4000,5000,6000,7000,8000,9000,10000,11000,12000,13000,` +
		`14000,15000,16000,17000,18000,19000,20000,21000,22000,23000,24000,25000,26000,27000,28000,29000,` +
		`30000,31000,32000]}}`)) // 4*4*2*33 = 1056 > MaxSweepPoints
	f.Fuzz(func(t *testing.T, raw []byte) {
		var req BatchRequest
		if err := json.Unmarshal(raw, &req); err != nil {
			return
		}
		before, err := json.Marshal(req)
		if err != nil {
			return // unmarshalable exotic values; not this fuzzer's concern
		}
		if err := req.Validate(); err != nil {
			if ReasonCode(err) == "" {
				t.Fatalf("rejection without a reason code: %v", err)
			}
			return
		}
		after, _ := json.Marshal(req)
		if string(before) != string(after) {
			t.Fatalf("Validate mutated the request:\nbefore %s\nafter  %s", before, after)
		}
		reqs, err := req.Expand()
		if err != nil {
			t.Fatalf("validated batch fails to expand: %v\nrequest: %s", err, raw)
		}
		if len(reqs) == 0 || len(reqs) > MaxSweepPoints {
			t.Fatalf("validated batch expands to %d scenarios\nrequest: %s", len(reqs), raw)
		}
		for i := range reqs {
			if err := reqs[i].Validate(); err != nil {
				t.Fatalf("validated batch contains invalid scenario %d: %v\nrequest: %s", i, err, raw)
			}
		}
		reqs2, err := req.Expand()
		if err != nil || len(reqs2) != len(reqs) {
			t.Fatalf("expansion not deterministic: %d vs %d scenarios (err %v)", len(reqs), len(reqs2), err)
		}
	})
}

// FuzzRunRequestValidate exercises the serving API's request validation with
// arbitrary request documents. Validate must never panic, and any request it
// accepts must also produce a cache key (the daemon calls CacheKey right
// after Validate; an accept/no-key split would 500 at serve time).
func FuzzRunRequestValidate(f *testing.F) {
	f.Add([]byte(`{"benchmark":"gcc"}`))
	f.Add([]byte(`{"benchmark":"gzip","n":5000,"model":"V","clusters":16}`))
	f.Add([]byte(`{"benchmarks":["gcc","mcf","swim","gzip"],"clusters":16}`))
	f.Add([]byte(`{"benchmark":"pchase","config":{"model":"VII","clusters":4}}`))
	f.Add([]byte(`{"benchmark":"gcc","benchmarks":["mcf"]}`))
	f.Add([]byte(`{"benchmark":"nonexistent"}`))
	f.Add([]byte(`{"n":1}`))
	f.Add([]byte(`{"benchmark":"gcc","clusters":5}`))
	f.Add([]byte(`{"benchmark":"gcc","n":99999999999}`))                       // absurd instruction budget
	f.Add([]byte(`{"benchmarks":["gcc","mcf","swim","gzip","mesa","vortex",` + // > MaxBenchmarks
		`"gcc","mcf","swim","gzip","mesa","vortex","gcc","mcf","swim","gzip","mesa"]}`))
	f.Add([]byte(`{"benchmarks":["gcc","mcf","swim","gzip","mesa"],"clusters":4}`)) // programs > clusters
	f.Fuzz(func(t *testing.T, raw []byte) {
		var req RunRequest
		if err := json.Unmarshal(raw, &req); err != nil {
			return
		}
		if err := req.Validate(); err != nil {
			return // rejected request; only panics are failures
		}
		key, err := req.CacheKey()
		if err != nil {
			t.Fatalf("validated request has no cache key: %v\nrequest: %s", err, raw)
		}
		key2, err := req.CacheKey()
		if err != nil || key != key2 {
			t.Fatalf("cache key not stable: %q vs %q (err %v)", key, key2, err)
		}
	})
}
