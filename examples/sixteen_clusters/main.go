// Sixteen clusters: the paper's aggressive partitioned machine (Figure
// 2b) — four crossbar-connected quads on a ring — and how interconnect
// choice matters more as wire delays grow (Section 5.3).
package main

import (
	"fmt"
	"log"

	"hetwire"
	"hetwire/internal/config"
)

func main() {
	benches := []string{"galgel", "mesa", "gzip", "swim", "mcf"}
	const n = 200_000

	fmt.Println("cluster-count scaling, Model I baseline interconnect")
	fmt.Printf("%-10s %12s %12s %10s\n", "benchmark", "4 clusters", "16 clusters", "gain")
	for _, b := range benches {
		c4, err := hetwire.RunBenchmark(hetwire.DefaultConfig(), b, n)
		if err != nil {
			log.Fatal(err)
		}
		cfg := hetwire.DefaultConfig()
		cfg.Topology = config.HierRing16
		c16, err := hetwire.RunBenchmark(cfg, b, n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %12.3f %12.3f %9.1f%%\n", b, c4.IPC(), c16.IPC(), 100*(c16.IPC()/c4.IPC()-1))
	}
	fmt.Println("\n(The paper reports a 17% average single-thread gain from 4 to 16 clusters.)")

	fmt.Println("\nheterogeneous wires on the 16-cluster machine (ring hops: PW 6 / B 4 / L 2 cycles)")
	cfg16 := hetwire.DefaultConfig()
	cfg16.Topology = config.HierRing16
	lw := cfg16
	lw.Model.Link.LWires = 18
	lw.Tech = config.AllTechniques()
	lw.Tech.PWReadyOperands = false
	lw.Tech.PWStoreData = false
	lw.Tech.PWLoadBalance = false
	fmt.Printf("%-10s %12s %12s %10s\n", "benchmark", "baseline", "+L-wires", "gain")
	for _, b := range benches {
		base, err := hetwire.RunBenchmark(cfg16, b, n)
		if err != nil {
			log.Fatal(err)
		}
		het, err := hetwire.RunBenchmark(lw, b, n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %12.3f %12.3f %9.1f%%\n", b, base.IPC(), het.IPC(), 100*(het.IPC()/base.IPC()-1))
	}
	fmt.Println("\n(The paper reports a 7.4% AM gain from the L-wire layer at 16 clusters.)")
}
