// Quickstart: simulate one benchmark on the baseline machine and on a
// heterogeneous interconnect, and compare.
package main

import (
	"fmt"
	"log"

	"hetwire"
)

func main() {
	const bench = "gzip"
	const instructions = 500_000

	// The paper's baseline: 4 clusters joined by a crossbar of homogeneous
	// B-wires (Model I), no wire-management techniques.
	base, err := hetwire.RunBenchmark(hetwire.DefaultConfig(), bench, instructions)
	if err != nil {
		log.Fatal(err)
	}

	// Model VII adds an 18-bit L-wire plane to every link and enables the
	// Section 4 techniques that exploit it: the partial-address cache
	// pipeline, narrow-operand transfers, and mispredict signalling.
	cfg := hetwire.DefaultConfig().WithModel(hetwire.ModelVII)
	het, err := hetwire.RunBenchmark(cfg, bench, instructions)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark: %s (%d instructions)\n\n", bench, instructions)
	fmt.Printf("%-28s %10s %12s\n", "", "baseline", "Model VII")
	fmt.Printf("%-28s %10.3f %12.3f\n", "IPC", base.IPC(), het.IPC())
	fmt.Printf("%-28s %10d %12d\n", "cycles", base.Cycles, het.Cycles)
	fmt.Printf("%-28s %10d %12d\n", "network wait cycles", base.WaitCycles, het.WaitCycles)
	fmt.Printf("%-28s %10d %12d\n", "L-wire transfers", base.Net[2].Transfers, het.Net[2].Transfers)
	fmt.Printf("%-28s %10s %12.2f%%\n", "narrow share of transfers", "-",
		100*float64(het.NarrowTransfers)/float64(het.OperandTransfers))
	fmt.Printf("\nspeedup: %.1f%%\n", 100*(het.IPC()/base.IPC()-1))
}
