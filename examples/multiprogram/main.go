// Multiprogram: four threads on the 16-cluster machine (the TLP
// organisation the paper motivates), showing how heterogeneous wires hold
// up when the shared interconnect is under multi-thread pressure.
package main

import (
	"fmt"
	"log"

	"hetwire"
	"hetwire/internal/config"
)

func main() {
	benches := []string{"gzip", "swim", "twolf", "mesa"}
	const n = 100_000

	run := func(cfg hetwire.Config, label string) float64 {
		res, err := hetwire.RunMultiprogrammed(cfg, benches, n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", label)
		var agg float64
		for _, r := range res {
			fmt.Printf("  %-8s clusters %v  IPC %.3f\n", r.Benchmark, r.Clusters, r.Stats.IPC())
			agg += r.Stats.IPC()
		}
		fmt.Printf("  aggregate throughput: %.3f IPC\n\n", agg)
		return agg
	}

	base := hetwire.DefaultConfig()
	base.Topology = config.HierRing16

	het := base.WithModel(hetwire.ModelVI)
	het.Topology = config.HierRing16

	a := run(base, "Model I (homogeneous B-wires), 4 threads x 4 clusters:")
	b := run(het, "Model VI (288 PW + 36 L wires), 4 threads x 4 clusters:")
	fmt.Printf("heterogeneous-wire throughput gain under TLP: %+.1f%%\n", 100*(b/a-1))
}
