// Energy breakdown: walk through the paper's Section 5.4 energy accounting
// for one pair of interconnects, component by component — where the
// heterogeneous design's ED^2 advantage actually comes from.
package main

import (
	"fmt"

	"hetwire"
	"hetwire/internal/config"
	"hetwire/internal/core"
	"hetwire/internal/energy"
	"hetwire/internal/workload"
)

func measure(cfg config.Config, benches []string, n uint64) (energy.RunMeasurement, float64) {
	var m energy.RunMeasurement
	var ipcSum float64
	for _, b := range benches {
		prof, _ := workload.ByName(b)
		proc := core.New(cfg)
		st := proc.Run(workload.NewGenerator(prof), n)
		if m.Inventory == nil {
			m.Inventory = st.LinkInventory
		}
		m.Cycles += st.Cycles
		for i := range m.Net {
			m.Net[i].Bits += st.Net[i].Bits
			m.Net[i].BitHops += st.Net[i].BitHops
			m.Net[i].Transfers += st.Net[i].Transfers
		}
		ipcSum += st.IPC()
	}
	return m, ipcSum / float64(len(benches))
}

func main() {
	benches := []string{"gzip", "mesa", "swim", "mcf"}
	const n = 150_000

	base := hetwire.DefaultConfig()                           // Model I: homogeneous B
	het := hetwire.DefaultConfig().WithModel(hetwire.ModelVI) // PW + L

	mBase, ipcBase := measure(base, benches, n)
	mHet, ipcHet := measure(het, benches, n)

	fmt.Printf("Model I  (144 B-wires):          AM IPC %.3f\n", ipcBase)
	fmt.Printf("Model VI (288 PW + 36 L wires):  AM IPC %.3f\n\n", ipcHet)

	for _, ic := range []float64{0.10, 0.20} {
		em := energy.Model{Baseline: mBase, ICFraction: ic}
		bb := em.Evaluate(mBase)
		hb := em.Evaluate(mHet)
		fmt.Printf("interconnect share %.0f%% of processor energy:\n", 100*ic)
		fmt.Printf("  %-22s %10s %10s\n", "component", "Model I", "Model VI")
		fmt.Printf("  %-22s %10.1f %10.1f\n", "core dynamic", bb.NonICDynamic, hb.NonICDynamic)
		fmt.Printf("  %-22s %10.1f %10.1f\n", "core leakage", bb.NonICLeakage, hb.NonICLeakage)
		fmt.Printf("  %-22s %10.1f %10.1f  (PW wires: 0.30x per bit)\n", "interconnect dynamic", bb.ICDynamic, hb.ICDynamic)
		fmt.Printf("  %-22s %10.1f %10.1f\n", "interconnect leakage", bb.ICLeakage, hb.ICLeakage)
		fmt.Printf("  %-22s %10.1f %10.1f\n", "total", bb.Total(), hb.Total())
		fmt.Printf("  relative ED^2: %.1f (Model I = 100)\n\n", em.RelativeED2(mHet))
	}
	fmt.Println("The L-wires buy back the PW plane's latency loss while the PW plane")
	fmt.Println("carries the bulk of the bits at 30% of the B-wire energy — that")
	fmt.Println("combination, not any single wire type, is what wins ED^2.")
}
