// Cache pipeline anatomy: isolate the paper's accelerated cache access
// (Section 4) and show how each L-wire mechanism contributes — the partial
// address transfer, narrow operands, and mispredict signalling — plus the
// LS-bit width ablation.
package main

import (
	"fmt"
	"log"

	"hetwire"
	"hetwire/internal/config"
)

const (
	bench        = "vortex"
	instructions = 400_000
)

func run(cfg hetwire.Config) hetwire.Result {
	res, err := hetwire.RunBenchmark(cfg, bench, instructions)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	base := hetwire.DefaultConfig()
	withL := base
	withL.Model.Link.LWires = 18

	fmt.Printf("benchmark %s, %d instructions, baseline + 18 L-wires per link\n\n", bench, instructions)
	baseRes := run(base)
	fmt.Printf("%-38s IPC %.3f\n", "baseline (no techniques)", baseRes.IPC())

	steps := []struct {
		name string
		tech config.Techniques
	}{
		{"+ cache pipeline (LS bits on L)", config.Techniques{LWireCachePipeline: true, LSBits: 8}},
		{"+ narrow operands (predicted)", config.Techniques{LWireCachePipeline: true, LSBits: 8, NarrowOperands: true}},
		{"+ mispredict signal on L (all three)", config.Techniques{LWireCachePipeline: true, LSBits: 8, NarrowOperands: true, MispredictOnL: true}},
	}
	for _, s := range steps {
		cfg := withL
		cfg.Tech = s.tech
		r := run(cfg)
		fmt.Printf("%-38s IPC %.3f (%+.1f%%)\n", s.name, r.IPC(), 100*(r.IPC()/baseRes.IPC()-1))
	}

	fmt.Println("\nLS-bit width ablation (false partial-address dependences):")
	for _, bits := range []int{4, 6, 8, 10, 12} {
		cfg := withL
		cfg.Tech = config.Techniques{LWireCachePipeline: true, LSBits: bits}
		r := run(cfg)
		rate := 100 * float64(r.PartialFalseDeps) / float64(r.PartialChecks)
		fmt.Printf("  %2d LS bits: %5.2f%% false dependences, IPC %.3f\n", bits, rate, r.IPC())
	}
	fmt.Println("\n(The paper reports <9% false dependences with 8 LS bits.)")
}
