// Heterogeneous interconnect sweep: run a subset of the suite over all ten
// interconnect models (paper Table 3) and report IPC, energy, and ED^2 —
// the paper's headline experiment, sized to finish in under a minute.
package main

import (
	"fmt"

	"hetwire"
)

func main() {
	opt := hetwire.Options{
		Instructions: 150_000,
		Benchmarks:   []string{"gzip", "mesa", "twolf", "swim", "mcf", "vortex"},
	}

	fmt.Println("Sweeping interconnect models I..X on the 4-cluster machine")
	fmt.Printf("(%d instructions x %d benchmarks per model)\n\n", opt.Instructions, len(opt.Benchmarks))

	table := hetwire.Table3(opt)
	fmt.Println(table)

	best10 := table.BestED2(10)
	best20 := table.BestED2(20)
	fmt.Printf("lowest ED2 @10%% interconnect share: %v (%.1f vs baseline 100)\n", best10.Model, best10.RelED2At10)
	fmt.Printf("lowest ED2 @20%% interconnect share: %v (%.1f vs baseline 100)\n", best20.Model, best20.RelED2At20)
	fmt.Println("\nThe paper's conclusion holds when the winning models combine wire")
	fmt.Println("classes (III, VI, VII, IX, X) rather than being homogeneous (I, IV, VIII).")
}
