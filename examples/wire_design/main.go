// Wire design exploration: use the physical wire models directly to study
// how geometry and repeater policy trade delay against energy and
// bandwidth — the Section 2 design space of the paper.
package main

import (
	"fmt"

	"hetwire/internal/wires"
)

func main() {
	tech := wires.Tech45()

	fmt.Println("1. Width/spacing sweep (delay-optimal repeaters)")
	fmt.Printf("%8s %12s %12s %14s\n", "width x", "delay ps/mm", "dyn fJ/mm", "wires per 10um")
	for _, mult := range []float64{1, 2, 4, 8} {
		w := wires.Wire{
			Tech: tech,
			Geom: wires.Geometry{Width: mult * tech.MinWidth, Spacing: mult * tech.MinSpacing},
			Rep:  wires.DelayOptimal,
		}
		fmt.Printf("%8.0f %12.2f %12.1f %14.1f\n",
			mult, w.DelayPerMM(), w.DynamicEnergyPerMM(), 10_000/w.Geom.Pitch())
	}

	fmt.Println("\n2. Repeater policy sweep on minimum-geometry wire")
	fmt.Printf("%10s %10s %12s %12s %12s\n", "size fac", "space fac", "delay ps/mm", "dyn fJ/mm", "leak/mm")
	for _, rep := range []wires.Repeaters{
		{SizeFactor: 1.0, SpacingFactor: 1.0},
		{SizeFactor: 0.7, SpacingFactor: 1.4},
		wires.PowerOptimal,
		{SizeFactor: 0.3, SpacingFactor: 2.5},
	} {
		w := wires.NewW(tech)
		w.Rep = rep
		fmt.Printf("%10.2f %10.2f %12.2f %12.1f %12.2f\n",
			rep.SizeFactor, rep.SpacingFactor, w.DelayPerMM(), w.DynamicEnergyPerMM(), w.LeakagePowerPerMM())
	}

	fmt.Println("\n3. The paper's four classes, derived vs published (Table 2)")
	derived := wires.DeriveParams(tech)
	for _, c := range wires.Classes() {
		d, p := derived[c], wires.Table2[c]
		fmt.Printf("%-8s delay %.2f (paper %.2f)  dyn %.2f (paper %.2f)  lkg %.2f (paper %.2f)\n",
			c, d.RelDelay, p.RelDelay, d.RelDynPerWire, p.RelDynPerWire, d.RelLeakPerWire, p.RelLeakPerWire)
	}

	fmt.Println("\n4. Equal metal area: what fits in the footprint of 72 B-wires?")
	area := 72 * wires.NewB(tech).Geom.Pitch()
	for _, c := range wires.Classes() {
		w := wires.ForClass(tech, c)
		n := int(area / w.Geom.Pitch())
		fmt.Printf("%-8s %3d wires -> %d-bit messages/cycle\n", c, n, n)
	}

	tl := wires.NewTransmissionLine(tech)
	fmt.Printf("\n5. Transmission line option: %.1f ps/mm (RC L-wire: %.1f ps/mm)\n",
		tl.DelayPerMM(), wires.NewL(tech).DelayPerMM())
}
