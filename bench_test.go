package hetwire

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (go test -bench=.). Each benchmark runs a reduced-scale but
// structurally complete version of the experiment and reports the headline
// quantity through b.ReportMetric, so `go test -bench=. -benchmem` produces
// the full paper-vs-measured comparison recorded in EXPERIMENTS.md.
//
//	BenchmarkTable2*   wire-class parameter derivation (paper Table 2)
//	BenchmarkFigure3   baseline vs +L-wires IPC (paper Figure 3)
//	BenchmarkTable3    model sweep on 4 clusters (paper Table 3)
//	BenchmarkTable4    model sweep on 16 clusters (paper Table 4)
//	BenchmarkLatency*  the Section 1 latency-doubling claim
//	BenchmarkScaling*  the Section 5.3 scaling claims
//	BenchmarkClaims    the Section 4 mechanism statistics
//	BenchmarkAblation* design-choice ablations called out in DESIGN.md
//	Benchmark<micro>   component micro-benchmarks

import (
	"testing"

	"hetwire/internal/bpred"
	"hetwire/internal/cache"
	"hetwire/internal/config"
	"hetwire/internal/core"
	"hetwire/internal/narrow"
	"hetwire/internal/noc"
	"hetwire/internal/trace"
	"hetwire/internal/wires"
	"hetwire/internal/workload"
)

// benchOpt sizes the experiment benchmarks: a representative benchmark
// subset keeps a full table sweep within a few seconds per iteration.
func benchOpt() Options {
	return Options{
		Instructions: 60_000,
		Benchmarks:   []string{"gzip", "mesa", "twolf", "swim", "mcf", "vortex", "galgel", "gcc"},
	}
}

// BenchmarkTable2Derivation regenerates the wire-class parameters from the
// physical models and reports the derived relative delay of L-wires
// (paper: 0.3).
func BenchmarkTable2Derivation(b *testing.B) {
	b.ReportAllocs()
	var last map[wires.Class]wires.Params
	for i := 0; i < b.N; i++ {
		last = wires.DeriveParams(wires.Tech45())
	}
	b.ReportMetric(last[wires.L].RelDelay, "L-relDelay")
	b.ReportMetric(last[wires.PW].RelDelay, "PW-relDelay")
	b.ReportMetric(last[wires.B].RelDelay, "B-relDelay")
}

// BenchmarkFigure3 reports the AM IPC speedup from adding an L-wire layer
// (paper: 4.2%).
func BenchmarkFigure3(b *testing.B) {
	if testing.Short() {
		b.Skip("heavyweight experiment sweep")
	}
	b.ReportAllocs()
	var r Figure3Result
	for i := 0; i < b.N; i++ {
		r = Figure3(benchOpt())
	}
	b.ReportMetric(r.BaselineAM, "baseline-AM-IPC")
	b.ReportMetric(r.SpeedupPct, "speedup-%")
}

// BenchmarkTable3 reports the best heterogeneous ED^2 at both interconnect
// shares (paper: 92.0 @10%, 92.1 @20%; homogeneous baselines ~100).
func BenchmarkTable3(b *testing.B) {
	if testing.Short() {
		b.Skip("heavyweight experiment sweep")
	}
	b.ReportAllocs()
	var r TableResult
	for i := 0; i < b.N; i++ {
		r = Table3(benchOpt())
	}
	b.ReportMetric(r.BestED2(10).RelED2At10, "best-ED2@10%")
	b.ReportMetric(r.BestED2(20).RelED2At20, "best-ED2@20%")
	b.ReportMetric(r.Rows[1].RelICDyn, "ModelII-IC-dyn")
}

// BenchmarkTable4 reports the 16-cluster results (paper: best ED^2 88.7
// @20%).
func BenchmarkTable4(b *testing.B) {
	if testing.Short() {
		b.Skip("heavyweight experiment sweep")
	}
	b.ReportAllocs()
	var r TableResult
	for i := 0; i < b.N; i++ {
		r = Table4(benchOpt())
	}
	b.ReportMetric(r.BestED2(20).RelED2At20, "best-ED2@20%")
	b.ReportMetric(r.Rows[0].IPC, "ModelI-IPC")
}

// BenchmarkLatencyDoubling reports the Section 1 slowdown (paper: ~12%).
func BenchmarkLatencyDoubling(b *testing.B) {
	if testing.Short() {
		b.Skip("heavyweight experiment sweep")
	}
	b.ReportAllocs()
	var r LatencySensitivityResult
	for i := 0; i < b.N; i++ {
		r = LatencySensitivity(benchOpt())
	}
	b.ReportMetric(r.SlowdownPct, "slowdown-%")
}

// BenchmarkScalingStudies reports the Section 5.3 claims (paper: +17%
// 4->16 clusters, +7.1% wire-constrained L-wires, +7.4% 16-cluster
// L-wires).
func BenchmarkScalingStudies(b *testing.B) {
	if testing.Short() {
		b.Skip("heavyweight experiment sweep")
	}
	b.ReportAllocs()
	var r ScalingResult
	for i := 0; i < b.N; i++ {
		r = ScalingStudies(benchOpt())
	}
	b.ReportMetric(r.ClusterGainPct, "4to16-gain-%")
	b.ReportMetric(r.WireConstrainedGainPct, "wire-constrained-L-gain-%")
	b.ReportMetric(r.SixteenClusterLWireGainPct, "16cluster-L-gain-%")
}

// BenchmarkClaims reports the Section 4 mechanism statistics (paper: <9%
// false deps, 95% coverage, 2% false narrow, 14% narrow traffic, 36% PW
// traffic, 14% contention drop).
func BenchmarkClaims(b *testing.B) {
	if testing.Short() {
		b.Skip("heavyweight experiment sweep")
	}
	b.ReportAllocs()
	var r ClaimsResult
	for i := 0; i < b.N; i++ {
		r = Claims(benchOpt())
	}
	b.ReportMetric(r.FalseDepPct, "false-dep-%")
	b.ReportMetric(r.NarrowCoveragePct, "narrow-coverage-%")
	b.ReportMetric(r.NarrowFalsePct, "narrow-false-%")
	b.ReportMetric(r.NarrowTrafficPct, "narrow-traffic-%")
	b.ReportMetric(r.PWTrafficPct, "PW-traffic-%")
	b.ReportMetric(r.ContentionReductionPct, "contention-drop-%")
}

// --- Ablations -----------------------------------------------------------

func runAblation(b *testing.B, cfg config.Config, bench string) core.Stats {
	b.Helper()
	b.ReportAllocs()
	prof, _ := workload.ByName(bench)
	var st core.Stats
	for i := 0; i < b.N; i++ {
		st = core.New(cfg).Run(workload.NewGenerator(prof), 60_000)
	}
	return st
}

// BenchmarkAblationLSBits sweeps the partial-address width (the paper
// chose 8 bits for <9% false dependences).
func BenchmarkAblationLSBits(b *testing.B) {
	for _, bits := range []int{4, 8, 12} {
		b.Run(map[int]string{4: "4bits", 8: "8bits", 12: "12bits"}[bits], func(b *testing.B) {
			cfg := config.Default().WithModel(config.ModelVII)
			cfg.Tech.LSBits = bits
			st := runAblation(b, cfg, "vortex")
			b.ReportMetric(100*float64(st.PartialFalseDeps)/float64(st.PartialChecks), "false-dep-%")
			b.ReportMetric(st.IPC(), "IPC")
		})
	}
}

// BenchmarkAblationNarrowPredictor compares no narrow transfers, the 8K
// 2-bit predictor, and oracle width knowledge (the paper's optimistic
// assumption).
func BenchmarkAblationNarrowPredictor(b *testing.B) {
	variants := []struct {
		name string
		mut  func(*config.Config)
	}{
		{"off", func(c *config.Config) { c.Tech.NarrowOperands = false }},
		{"predictor", func(c *config.Config) {}},
		{"oracle", func(c *config.Config) { c.Tech.NarrowOracle = true }},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			cfg := config.Default().WithModel(config.ModelVII)
			v.mut(&cfg)
			st := runAblation(b, cfg, "gzip")
			b.ReportMetric(st.IPC(), "IPC")
			b.ReportMetric(float64(st.NarrowTransfers), "narrow-transfers")
		})
	}
}

// BenchmarkAblationPWCriteria disables each of the three Section 4 PW
// steering rules in turn on Model V.
func BenchmarkAblationPWCriteria(b *testing.B) {
	variants := []struct {
		name string
		mut  func(*config.Config)
	}{
		{"all", func(c *config.Config) {}},
		{"no-ready-operands", func(c *config.Config) { c.Tech.PWReadyOperands = false }},
		{"no-store-data", func(c *config.Config) { c.Tech.PWStoreData = false }},
		{"no-load-balance", func(c *config.Config) { c.Tech.PWLoadBalance = false }},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			cfg := config.Default().WithModel(config.ModelV)
			v.mut(&cfg)
			st := runAblation(b, cfg, "vortex")
			b.ReportMetric(st.IPC(), "IPC")
			b.ReportMetric(float64(st.Net[1].Transfers), "PW-transfers")
		})
	}
}

// BenchmarkAblationImbalanceThreshold sweeps the load-balance trigger
// (paper: threshold 10 over a 5-cycle window).
func BenchmarkAblationImbalanceThreshold(b *testing.B) {
	for _, th := range []int{2, 10, 40} {
		b.Run(map[int]string{2: "thresh2", 10: "thresh10", 40: "thresh40"}[th], func(b *testing.B) {
			cfg := config.Default().WithModel(config.ModelV)
			cfg.Tech.BalanceThreshold = th
			st := runAblation(b, cfg, "gzip")
			b.ReportMetric(st.IPC(), "IPC")
			b.ReportMetric(float64(st.BalancePW), "diversions")
		})
	}
}

// BenchmarkAblationLWireCount compares 18 versus 36 L-wires per link
// (trading more metal area for two L transfers per cycle).
func BenchmarkAblationLWireCount(b *testing.B) {
	for _, n := range []int{18, 36} {
		b.Run(map[int]string{18: "18wires", 36: "36wires"}[n], func(b *testing.B) {
			cfg := config.Default().WithModel(config.ModelVII)
			cfg.Model.Link.LWires = n
			st := runAblation(b, cfg, "gzip")
			b.ReportMetric(st.IPC(), "IPC")
		})
	}
}

// --- Component micro-benchmarks ------------------------------------------

// BenchmarkSimulatorThroughput measures raw simulation speed in simulated
// instructions per wall-clock second.
func BenchmarkSimulatorThroughput(b *testing.B) {
	b.ReportAllocs()
	prof, _ := workload.ByName("gzip")
	const n = 100_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.New(config.Default()).Run(workload.NewGenerator(prof), n)
	}
	b.ReportMetric(float64(n*uint64(b.N))/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkWorkloadGenerator measures trace generation alone.
func BenchmarkWorkloadGenerator(b *testing.B) {
	b.ReportAllocs()
	prof, _ := workload.ByName("gcc")
	g := workload.NewGenerator(prof)
	var ins trace.Instr
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next(&ins)
	}
}

// BenchmarkBranchPredictor measures the combining predictor's update path.
func BenchmarkBranchPredictor(b *testing.B) {
	b.ReportAllocs()
	p := bpred.New(bpred.Config{
		BimodalSize: 16384, L1Size: 16384, HistoryBits: 12,
		L2Size: 16384, ChooserSize: 16384, BTBSets: 16384, BTBAssoc: 2, RASEntries: 32,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.UpdateDirection(uint64(i%4096)*4, i%3 != 0)
	}
}

// BenchmarkCacheLookup measures the L1D array model.
func BenchmarkCacheLookup(b *testing.B) {
	b.ReportAllocs()
	c := cache.New(cache.Config{SizeBytes: 32 * 1024, LineBytes: 64, Assoc: 4, Latency: 6, Banks: 4, Ports: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(uint64(i*64) % (256 * 1024))
	}
}

// BenchmarkNoCTransfer measures one heterogeneous-link reservation.
func BenchmarkNoCTransfer(b *testing.B) {
	b.ReportAllocs()
	n := noc.New(config.Default().WithModel(config.ModelX))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Transfer(noc.Cluster(i%4), noc.Cache, wires.B, 72, uint64(i/2))
	}
}

// BenchmarkNarrowPredictor measures the 8K-entry narrow-width predictor.
func BenchmarkNarrowPredictor(b *testing.B) {
	b.ReportAllocs()
	p := narrow.NewPredictor(8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Record(uint64(i%2048)*4, i%4 != 0)
	}
}

// BenchmarkExtensions reports the future-work techniques (paper Sections
// 5.3/7): frequent-value compaction, critical-word L2 returns, and the
// transmission-line L plane's ED^2.
func BenchmarkExtensions(b *testing.B) {
	if testing.Short() {
		b.Skip("heavyweight experiment sweep")
	}
	b.ReportAllocs()
	var r ExtensionsResult
	for i := 0; i < b.N; i++ {
		r = Extensions(benchOpt())
	}
	b.ReportMetric(100*(r.FrequentValueIPC/r.BaseIPC-1), "FV-gain-%")
	b.ReportMetric(100*(r.CriticalWordIPC/r.BaseIPC-1), "critword-gain-%")
	b.ReportMetric(r.TransmissionLineED2, "TL-relED2")
	b.ReportMetric(r.FVTrafficPct, "FV-traffic-%")
}

// BenchmarkAblationSteering compares the paper's dynamic steering heuristic
// against static (compile-time-style) hashing and blind round-robin.
func BenchmarkAblationSteering(b *testing.B) {
	for _, pol := range []config.SteeringPolicy{config.SteerDynamic, config.SteerStatic, config.SteerRoundRobin} {
		b.Run(pol.String(), func(b *testing.B) {
			cfg := config.Default()
			cfg.Steering = pol
			st := runAblation(b, cfg, "gzip")
			b.ReportMetric(st.IPC(), "IPC")
			b.ReportMetric(float64(st.OperandTransfers), "transfers")
		})
	}
}

// BenchmarkTLPThroughput runs four threads on the 16-cluster machine and
// reports aggregate throughput for homogeneous versus heterogeneous wires —
// the thread-level-parallelism case the paper motivates.
func BenchmarkTLPThroughput(b *testing.B) {
	if testing.Short() {
		b.Skip("heavyweight experiment sweep")
	}
	b.ReportAllocs()
	benches := []string{"gzip", "swim", "twolf", "mesa"}
	run := func(cfg Config) float64 {
		res, err := RunMultiprogrammed(cfg, benches, 40_000)
		if err != nil {
			b.Fatal(err)
		}
		var agg float64
		for _, r := range res {
			agg += r.Stats.IPC()
		}
		return agg
	}
	var homog, het float64
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.Topology = HierRing16
		homog = run(cfg)
		h := DefaultConfig().WithModel(ModelVI)
		h.Topology = HierRing16
		het = run(h)
	}
	b.ReportMetric(homog, "ModelI-throughput")
	b.ReportMetric(het, "ModelVI-throughput")
	b.ReportMetric(100*(het/homog-1), "het-gain-%")
}

// BenchmarkAblationPlaneVsLinkHeterogeneity compares the paper's chosen
// plane-heterogeneous links (every link carries every class) against the
// Section 3 low-complexity alternative (whole links dedicated to one
// class) at equal metal area.
func BenchmarkAblationPlaneVsLinkHeterogeneity(b *testing.B) {
	for _, mode := range []string{"plane", "per-link"} {
		b.Run(mode, func(b *testing.B) {
			cfg := config.Default().WithModel(config.ModelV)
			cfg.LinkHeterogeneous = mode == "per-link"
			st := runAblation(b, cfg, "gzip")
			b.ReportMetric(st.IPC(), "IPC")
		})
	}
}

// BenchmarkExploreDesignSpace sweeps all link compositions within 2.0
// Model-I area units and reports the ED^2-optimal design (the paper's
// Section 3 design-space question made executable).
func BenchmarkExploreDesignSpace(b *testing.B) {
	if testing.Short() {
		b.Skip("heavyweight experiment sweep")
	}
	b.ReportAllocs()
	var r ExploreResult
	for i := 0; i < b.N; i++ {
		r = ExploreArea(2.0, 0.10, benchOpt())
	}
	best := r.Best()
	b.ReportMetric(best.RelED2, "best-ED2")
	b.ReportMetric(float64(len(r.Points)), "designs")
	b.ReportMetric(best.IPC, "best-IPC")
}

// BenchmarkLatencySweep extends the Section 1 experiment to a curve: the
// L-wire layer's value must grow monotonically with wire latency.
func BenchmarkLatencySweep(b *testing.B) {
	if testing.Short() {
		b.Skip("heavyweight experiment sweep")
	}
	b.ReportAllocs()
	var c LatencyCurve
	for i := 0; i < b.N; i++ {
		c = SweepLatencyScale([]int{1, 2, 4}, benchOpt())
	}
	b.ReportMetric(c.LWireGainPct[0], "L-gain@1x-%")
	b.ReportMetric(c.LWireGainPct[1], "L-gain@2x-%")
	b.ReportMetric(c.LWireGainPct[2], "L-gain@4x-%")
}
