package hetwire

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
)

// ResultHash returns a canonical hex digest of a simulation result: the
// SHA-256 of the result's benchmark label and complete statistics readout in
// a fixed serialization. Simulations are deterministic, so two runs of the
// same (configuration, workload, instruction count) must produce equal
// hashes — on any platform, through any code path (library, daemon, CLI),
// before and after any optimization of the simulator internals.
//
// The hash covers every counter, rate, histogrammed network statistic, and
// latency-breakdown sum in Stats. It deliberately does not cover the
// configuration (fixtures and caches key on the configuration separately,
// via ConfigHash); it pins the *behaviour* a configuration produced.
//
// The golden corpus under testdata/golden/ pins ResultHash values for a
// matrix of configurations and workloads; TestGoldenCorpus regenerates and
// compares them, so any change to simulated behaviour — intended or not —
// fails loudly and must be acknowledged by refreshing the fixtures.
func ResultHash(r Result) string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	// A struct literal fixes field order; json encodes map keys (the link
	// inventory) in sorted order and floats in their shortest round-trip
	// form, so the byte stream is canonical.
	err := enc.Encode(struct {
		Benchmark string
		Stats     Stats
	}{r.Benchmark, r.Stats})
	if err != nil {
		// Stats contains only integers, floats and maps of them; encoding
		// cannot fail.
		panic("hetwire: ResultHash encode: " + err.Error())
	}
	return hex.EncodeToString(h.Sum(nil))
}
