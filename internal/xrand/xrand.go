// Package xrand provides small, fast, deterministic pseudo-random number
// generators used to synthesise workloads. Simulation results must be exactly
// reproducible across runs and platforms, so we avoid math/rand's global
// state and any seeding from the environment.
package xrand

import "math"

// Source is a splitmix64-seeded xoshiro256** generator. The zero value is not
// usable; construct with New.
type Source struct {
	s [4]uint64
}

// splitmix64 advances the splitmix64 state by one step and returns the next
// output (Steele, Lea & Flood; the xoshiro authors' recommended seeder).
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source deterministically seeded from seed using splitmix64,
// as recommended by the xoshiro authors.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		src.s[i] = splitmix64(&sm)
	}
	return &src
}

// Mix derives a decorrelated seed for stream i from a base seed: the result
// is the (i+1)-th output of a splitmix64 generator seeded with seed. Unlike
// ad-hoc XOR mixing, Mix(seed, 0) != seed, so every derived stream —
// including stream 0 — is distinct from the base sequence, and streams are
// pairwise distinct for any practical stream count.
func Mix(seed, stream uint64) uint64 {
	state := seed + stream*0x9e3779b97f4a7c15
	return splitmix64(&state)
}

// State is an opaque snapshot of a Source's position in its sequence.
// Comparable and copyable, so cached artifacts can embed one by value.
type State [4]uint64

// State snapshots the source. FromState(s.State()) yields a source that
// produces exactly the sequence s would have produced from this point on.
func (s *Source) State() State { return s.s }

// FromState reconstructs a Source at a snapshotted position.
func FromState(st State) *Source { return &Source{s: st} }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the sequence.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return result
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Uint64n returns a uniformly distributed uint64 in [0, n). It panics if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with zero n")
	}
	return s.Uint64() % n
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// Geometric returns a sample from a geometric distribution with success
// probability p, i.e. the number of failures before the first success
// (support {0, 1, 2, ...}, mean (1-p)/p). p must be in (0, 1].
func (s *Source) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("xrand: Geometric needs p in (0,1]")
	}
	n := 0
	for !s.Bool(p) {
		n++
		if n >= 1<<20 { // safety valve; statistically unreachable for sane p
			break
		}
	}
	return n
}

// Zipf returns a sample in [0, n) following an approximate Zipf distribution
// with exponent theta, via inverse-CDF on a precomputed table-free rejection
// scheme. For the small n used by workload generators a direct CDF walk is
// accurate and fast enough.
type Zipf struct {
	cdf []float64
	src *Source
}

// NewZipf builds a Zipf sampler over [0, n) with exponent theta > 0.
func NewZipf(src *Source, n int, theta float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1.0 / pow(float64(i+1), theta)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, src: src}
}

// Reseat returns a sampler drawing from src but sharing z's CDF table. The
// table depends only on (n, theta) and is read-only after construction, so
// one table can back any number of concurrent samplers — the workload memo
// cache relies on this to share a benchmark's locality distribution across
// generators without rebuilding it.
func (z *Zipf) Reseat(src *Source) *Zipf { return &Zipf{cdf: z.cdf, src: src} }

// TableLen reports the CDF table size (for cache byte accounting).
func (z *Zipf) TableLen() int { return len(z.cdf) }

// Next returns the next Zipf-distributed sample.
func (z *Zipf) Next() int {
	u := z.src.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func pow(base, exp float64) float64 { return math.Pow(base, exp) }
