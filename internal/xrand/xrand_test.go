package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed sequences diverged at %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collided %d/1000 times", same)
	}
}

func TestIntnBounds(t *testing.T) {
	src := New(1)
	f := func(raw uint16) bool {
		n := int(raw%1000) + 1
		v := src.Intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat64Range(t *testing.T) {
	src := New(2)
	for i := 0; i < 10000; i++ {
		v := src.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %f out of [0,1)", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	src := New(3)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if src.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %.3f", got)
	}
}

func TestGeometricMean(t *testing.T) {
	src := New(4)
	sum := 0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += src.Geometric(0.5)
	}
	mean := float64(sum) / n // expected (1-p)/p = 1
	if math.Abs(mean-1) > 0.05 {
		t.Errorf("Geometric(0.5) mean = %.3f, want ~1", mean)
	}
}

func TestZipfSkew(t *testing.T) {
	src := New(5)
	z := NewZipf(src, 100, 1.1)
	counts := make([]int, 100)
	const n = 100000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf sample %d out of range", v)
		}
		counts[v]++
	}
	// Rank 0 must dominate rank 50 heavily under theta=1.1.
	if counts[0] < 10*counts[50] {
		t.Errorf("Zipf not skewed: rank0=%d rank50=%d", counts[0], counts[50])
	}
	// All mass accounted for.
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != n {
		t.Errorf("lost samples: %d", total)
	}
}

func TestUint64n(t *testing.T) {
	src := New(6)
	for i := 0; i < 1000; i++ {
		if v := src.Uint64n(7); v >= 7 {
			t.Fatalf("Uint64n(7) = %d", v)
		}
	}
}

func TestPanicsOnBadArgs(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	src := New(7)
	mustPanic("Intn(0)", func() { src.Intn(0) })
	mustPanic("Uint64n(0)", func() { src.Uint64n(0) })
	mustPanic("Geometric(0)", func() { src.Geometric(0) })
	mustPanic("NewZipf(0)", func() { NewZipf(src, 0, 1) })
}

func TestMixStreamsDistinct(t *testing.T) {
	// Derived stream seeds must be pairwise distinct across seeds and
	// stream indices, and no stream — not even stream 0 — may keep the
	// base seed (a past bug collided multiprogrammed thread 0 with
	// single-program runs of the same benchmark).
	seen := make(map[uint64][2]uint64)
	for _, seed := range []uint64{0, 1, 42, 0x9E37, 1 << 40, ^uint64(0)} {
		for i := uint64(0); i < 64; i++ {
			m := Mix(seed, i)
			if m == seed {
				t.Errorf("Mix(%#x, %d) returned the base seed", seed, i)
			}
			if prev, dup := seen[m]; dup {
				t.Errorf("Mix collision: (%#x,%d) and (%#x,%d) -> %#x",
					prev[0], prev[1], seed, i, m)
			}
			seen[m] = [2]uint64{seed, i}
		}
	}
}

func TestMixMatchesSplitmix(t *testing.T) {
	// Mix(seed, i) is defined as the (i+1)-th splitmix64 output of seed;
	// pin that so workload seeds stay stable across refactors.
	for _, seed := range []uint64{0, 7, 1 << 33} {
		state := seed
		for i := uint64(0); i < 8; i++ {
			if got, want := Mix(seed, i), splitmix64(&state); got != want {
				t.Fatalf("Mix(%#x, %d) = %#x, want splitmix output %#x", seed, i, got, want)
			}
		}
	}
}
