// Package faultinject is a deterministic, seeded fault-injection harness for
// the hetwired serving layer. An Injector is configured with a per-point
// firing rate (plus an optional cap on total firings) and consulted at
// well-defined points in the real server: before a job executes (worker
// panic, artificial slowness, spurious context cancellation) and after a
// result is cached (stored-entry corruption). Decisions are pure functions
// of (seed, point, decision index), so a chaos test that replays the same
// request sequence observes the same faults — failures found under injection
// reproduce.
//
// The daemon enables injection from the HETWIRE_FAULTS environment variable
// (or the -faults flag); the spec syntax is
//
//	seed=42,panic=0.05,slow=0.2,slowms=50,cancel=0.1,corrupt=0.1,panic.max=3
//
// i.e. comma-separated key=value pairs where each point name takes a rate in
// [0,1], point.max caps how often that point may fire, slowms sets the
// injected delay, and seed fixes the decision sequence. An empty spec (or a
// nil *Injector) injects nothing: every Should call on a nil injector is
// false, which is what lets the production hot path keep a single nil check.
package faultinject

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hetwire/internal/xrand"
)

// Point names one instrumented site in the server.
type Point string

// The instrumented sites.
const (
	// WorkerPanic fires a panic inside the worker while it executes a job,
	// exercising panic containment and worker respawn.
	WorkerPanic Point = "panic"
	// JobSlow delays a job by SlowDuration before it simulates (the delay is
	// context-aware, so deadlines and cancellation still apply).
	JobSlow Point = "slow"
	// CtxCancel spuriously cancels a job's context as the worker claims it.
	CtxCancel Point = "cancel"
	// CacheCorrupt flips a byte of a freshly stored result-cache entry,
	// exercising the cache's checksum self-healing.
	CacheCorrupt Point = "corrupt"
)

// Points lists every instrumented site (spec validation and tests).
func Points() []Point { return []Point{WorkerPanic, JobSlow, CtxCancel, CacheCorrupt} }

// DefaultSlow is the injected job delay when the spec sets a slow rate but
// no slowms.
const DefaultSlow = 25 * time.Millisecond

// Config is the parsed injection plan.
type Config struct {
	// Seed fixes the decision sequence; two injectors with equal Config make
	// identical decisions.
	Seed uint64
	// Rates maps each point to its firing probability in [0,1].
	Rates map[Point]float64
	// MaxFires optionally caps the number of firings per point (0 = no cap).
	MaxFires map[Point]uint64
	// Slow is the delay injected by JobSlow (DefaultSlow if 0).
	Slow time.Duration
}

// Injector makes deterministic fault decisions. The zero value injects
// nothing; so does a nil *Injector — all methods are nil-receiver safe.
type Injector struct {
	cfg Config

	mu    sync.Mutex
	seen  map[Point]uint64 // decisions asked per point
	fired map[Point]uint64 // decisions answered true per point
}

// New builds an injector from a config. Rates outside [0,1] are an error.
func New(cfg Config) (*Injector, error) {
	for p, r := range cfg.Rates {
		if r < 0 || r > 1 {
			return nil, fmt.Errorf("faultinject: rate for %q must be in [0,1], got %g", p, r)
		}
		if !knownPoint(p) {
			return nil, fmt.Errorf("faultinject: unknown point %q (known: %v)", p, Points())
		}
	}
	if cfg.Slow == 0 {
		cfg.Slow = DefaultSlow
	}
	return &Injector{
		cfg:   cfg,
		seen:  make(map[Point]uint64),
		fired: make(map[Point]uint64),
	}, nil
}

func knownPoint(p Point) bool {
	for _, k := range Points() {
		if p == k {
			return true
		}
	}
	return false
}

// Parse builds an injector from a spec string (see the package comment for
// the syntax). An empty spec yields nil: no injection.
func Parse(spec string) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	cfg := Config{
		Rates:    make(map[Point]float64),
		MaxFires: make(map[Point]uint64),
	}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("faultinject: %q is not key=value", field)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch {
		case key == "seed":
			s, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: seed %q: %v", val, err)
			}
			cfg.Seed = s
		case key == "slowms":
			ms, err := strconv.ParseUint(val, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("faultinject: slowms %q: %v", val, err)
			}
			cfg.Slow = time.Duration(ms) * time.Millisecond
		case strings.HasSuffix(key, ".max"):
			p := Point(strings.TrimSuffix(key, ".max"))
			if !knownPoint(p) {
				return nil, fmt.Errorf("faultinject: unknown point %q in %q", p, field)
			}
			m, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: %s %q: %v", key, val, err)
			}
			cfg.MaxFires[p] = m
		default:
			r, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: rate %q for %q: %v", val, key, err)
			}
			cfg.Rates[Point(key)] = r
		}
	}
	return New(cfg)
}

// Should reports whether point p's fault fires for this decision. The k-th
// decision at a point is a pure function of (seed, point, k): the injector
// hashes them to a uniform value and compares against the configured rate.
// A nil injector, an unconfigured point, and an exhausted MaxFires cap all
// answer false.
func (in *Injector) Should(p Point) bool {
	if in == nil {
		return false
	}
	rate, ok := in.cfg.Rates[p]
	if !ok || rate == 0 {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	k := in.seen[p]
	in.seen[p] = k + 1
	if max := in.cfg.MaxFires[p]; max > 0 && in.fired[p] >= max {
		return false
	}
	// Map (seed, point, k) to a uniform value in [0,1): pointHash
	// decorrelates the per-point streams, xrand.Mix supplies the avalanche.
	u := xrand.Mix(in.cfg.Seed^pointHash(p), k)
	if float64(u>>11)/(1<<53) >= rate {
		return false
	}
	in.fired[p]++
	return true
}

// pointHash is FNV-1a over the point name, decorrelating per-point streams
// that share a seed.
func pointHash(p Point) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(p); i++ {
		h ^= uint64(p[i])
		h *= 1099511628211
	}
	return h
}

// SlowDuration returns the configured JobSlow delay (0 on a nil injector).
func (in *Injector) SlowDuration() time.Duration {
	if in == nil {
		return 0
	}
	return in.cfg.Slow
}

// Fired returns how many times point p has fired (test observability).
func (in *Injector) Fired(p Point) uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[p]
}

// Decisions returns how many decisions have been asked at point p.
func (in *Injector) Decisions(p Point) uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.seen[p]
}

// String renders the active plan for startup logs.
func (in *Injector) String() string {
	if in == nil {
		return "faults: none"
	}
	points := make([]string, 0, len(in.cfg.Rates))
	for p := range in.cfg.Rates {
		points = append(points, string(p))
	}
	sort.Strings(points)
	var b strings.Builder
	fmt.Fprintf(&b, "faults: seed=%d", in.cfg.Seed)
	for _, p := range points {
		fmt.Fprintf(&b, " %s=%g", p, in.cfg.Rates[Point(p)])
		if m := in.cfg.MaxFires[Point(p)]; m > 0 {
			fmt.Fprintf(&b, "(max %d)", m)
		}
	}
	if _, ok := in.cfg.Rates[JobSlow]; ok {
		fmt.Fprintf(&b, " slow=%s", in.cfg.Slow)
	}
	return b.String()
}
