package faultinject

import (
	"math"
	"testing"
	"time"
)

// TestNilInjectorInertness: a nil *Injector is the production configuration;
// every method must be a safe no-op.
func TestNilInjectorInertness(t *testing.T) {
	var in *Injector
	for _, p := range Points() {
		if in.Should(p) {
			t.Errorf("nil injector fired %q", p)
		}
	}
	if in.SlowDuration() != 0 || in.Fired(JobSlow) != 0 || in.Decisions(JobSlow) != 0 {
		t.Error("nil injector reported non-zero state")
	}
	if in.String() != "faults: none" {
		t.Errorf("nil injector String = %q", in.String())
	}
}

// TestDeterminism: two injectors with the same config answer every decision
// identically — the property that makes chaos failures reproducible.
func TestDeterminism(t *testing.T) {
	mk := func() *Injector {
		in, err := Parse("seed=42,panic=0.3,slow=0.5,cancel=0.1,corrupt=0.7")
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	a, b := mk(), mk()
	for i := 0; i < 2000; i++ {
		for _, p := range Points() {
			if a.Should(p) != b.Should(p) {
				t.Fatalf("decision %d at %q diverged between equal configs", i, p)
			}
		}
	}
	if a.Fired(WorkerPanic) == 0 || a.Fired(CacheCorrupt) == 0 {
		t.Error("positive rates never fired over 2000 decisions")
	}
}

// TestRates: firing frequency tracks the configured rate (law of large
// numbers over a deterministic stream; exact counts are stable per seed).
func TestRates(t *testing.T) {
	in, err := New(Config{Seed: 7, Rates: map[Point]float64{WorkerPanic: 0.25}})
	if err != nil {
		t.Fatal(err)
	}
	const trials = 20000
	for i := 0; i < trials; i++ {
		in.Should(WorkerPanic)
	}
	got := float64(in.Fired(WorkerPanic)) / trials
	if math.Abs(got-0.25) > 0.02 {
		t.Errorf("empirical rate %.4f, configured 0.25", got)
	}
	if in.Decisions(WorkerPanic) != trials {
		t.Errorf("decisions = %d, want %d", in.Decisions(WorkerPanic), trials)
	}
}

// TestZeroRateNeverFires: the zero-fault configuration used by the
// determinism corpus must be exactly inert.
func TestZeroRateNeverFires(t *testing.T) {
	in, err := Parse("seed=1,panic=0,slow=0,cancel=0,corrupt=0")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		for _, p := range Points() {
			if in.Should(p) {
				t.Fatalf("zero-rate injector fired %q", p)
			}
		}
	}
}

// TestMaxFires: the per-point cap stops firing after N hits while decisions
// keep being consumed (so downstream decision indices stay aligned).
func TestMaxFires(t *testing.T) {
	in, err := Parse("seed=3,panic=1,panic.max=2")
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	for i := 0; i < 100; i++ {
		if in.Should(WorkerPanic) {
			fired++
		}
	}
	if fired != 2 {
		t.Errorf("fired %d times, cap was 2", fired)
	}
}

// TestParseErrors: malformed specs are rejected with errors, not panics.
func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"panic",          // not key=value
		"panic=2",        // rate out of range
		"panic=-0.1",     // rate out of range
		"warp=0.5",       // unknown point
		"seed=x",         // bad seed
		"slowms=x",       // bad duration
		"bogus.max=1",    // unknown point cap
		"panic.max=nope", // bad cap
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
	if in, err := Parse("   "); err != nil || in != nil {
		t.Errorf("blank spec: injector=%v err=%v, want nil,nil", in, err)
	}
}

// TestParseSlow: slowms configures the injected delay; unset falls back to
// DefaultSlow.
func TestParseSlow(t *testing.T) {
	in, err := Parse("slow=0.5,slowms=120")
	if err != nil {
		t.Fatal(err)
	}
	if in.SlowDuration() != 120*time.Millisecond {
		t.Errorf("SlowDuration = %s, want 120ms", in.SlowDuration())
	}
	in2, err := Parse("slow=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if in2.SlowDuration() != DefaultSlow {
		t.Errorf("default SlowDuration = %s, want %s", in2.SlowDuration(), DefaultSlow)
	}
}
