// Package config defines the simulated processor configurations: the
// paper's Table 1 core/memory parameters, the interconnect models I..X of
// Tables 3 and 4, the 4- and 16-cluster topologies of Figure 2, and the
// microarchitectural technique toggles of Section 4.
package config

import (
	"fmt"

	"hetwire/internal/wires"
)

// Topology selects the inter-cluster network shape (paper Figure 2).
type Topology uint8

const (
	// Crossbar4 is the 4-cluster system: four clusters and the centralized
	// L1 data cache connected by a crossbar.
	Crossbar4 Topology = iota
	// HierRing16 is the 16-cluster system: four 4-cluster crossbars joined
	// by a ring (after Aggarwal & Franklin).
	HierRing16
)

// String names the topology.
func (t Topology) String() string {
	switch t {
	case Crossbar4:
		return "4-cluster crossbar"
	case HierRing16:
		return "16-cluster hierarchical ring"
	}
	return fmt.Sprintf("Topology(%d)", uint8(t))
}

// Clusters returns the cluster count for the topology.
func (t Topology) Clusters() int {
	if t == HierRing16 {
		return 16
	}
	return 4
}

// LinkSpec describes the heterogeneous wire composition of one link
// *direction* to a cluster. Counts are physical wires; bandwidth in
// transfers/cycle follows from the per-class message widths (72 bits on
// B/PW/W, 18 bits on L). Links to the centralized data cache have twice the
// metal area and twice the wires (paper Section 4).
type LinkSpec struct {
	BWires  int // 72 wires per B transfer/cycle
	PWWires int // 72 wires per PW transfer/cycle
	LWires  int // 18 wires per L transfer/cycle
}

// Transfer widths in wires for a full transfer slot on each class.
const (
	BTransferWires  = 72
	PWTransferWires = 72
	LTransferWires  = 18
)

// Bandwidth returns transfers per cycle available on the given class.
func (l LinkSpec) Bandwidth(c wires.Class) int {
	switch c {
	case wires.B:
		return l.BWires / BTransferWires
	case wires.PW:
		return l.PWWires / PWTransferWires
	case wires.L:
		return l.LWires / LTransferWires
	}
	return 0
}

// Has reports whether the link has any wires of the class.
func (l LinkSpec) Has(c wires.Class) bool { return l.Bandwidth(c) > 0 }

// TotalWires returns the wire count of the class (for leakage accounting).
func (l LinkSpec) TotalWires(c wires.Class) int {
	switch c {
	case wires.B:
		return l.BWires
	case wires.PW:
		return l.PWWires
	case wires.L:
		return l.LWires
	}
	return 0
}

// Double returns the link spec with twice the wires (used for cache links).
func (l LinkSpec) Double() LinkSpec {
	return LinkSpec{BWires: 2 * l.BWires, PWWires: 2 * l.PWWires, LWires: 2 * l.LWires}
}

// MetalArea returns the link's metal area in units of one 144-B-wire link
// (the Model I area), using the Table 2 relative pitches: a B wire costs
// twice a PW/W wire and an L wire costs eight times.
func (l LinkSpec) MetalArea() float64 {
	bUnits := float64(l.BWires) * 2
	pwUnits := float64(l.PWWires) * 1
	lUnits := float64(l.LWires) * 8
	// Model I per-direction link (72 B wires at 2 pitch units each) is the unit.
	return (bUnits + pwUnits + lUnits) / 144
}

// String renders the spec the way the paper's tables do.
func (l LinkSpec) String() string {
	s := ""
	sep := func() {
		if s != "" {
			s += ", "
		}
	}
	if l.BWires > 0 {
		s += fmt.Sprintf("%d B-Wires", l.BWires)
	}
	if l.PWWires > 0 {
		sep()
		s += fmt.Sprintf("%d PW-Wires", l.PWWires)
	}
	if l.LWires > 0 {
		sep()
		s += fmt.Sprintf("%d L-Wires", l.LWires)
	}
	if s == "" {
		s = "(no wires)"
	}
	return s
}

// ModelID identifies one of the paper's interconnect models (Tables 3/4).
type ModelID int

// The paper's ten interconnect models. The LinkSpec counts follow the
// paper's table captions, which give total wires per link; a link carries
// half in each direction, so e.g. Model I's "144 B-Wires" is one 72-bit B
// transfer per cycle per direction.
const (
	ModelI ModelID = iota + 1
	ModelII
	ModelIII
	ModelIV
	ModelV
	ModelVI
	ModelVII
	ModelVIII
	ModelIX
	ModelX
)

// String returns the Roman-numeral model name used in the paper.
func (m ModelID) String() string {
	names := [...]string{"I", "II", "III", "IV", "V", "VI", "VII", "VIII", "IX", "X"}
	if m < ModelI || m > ModelX {
		return fmt.Sprintf("Model(%d)", int(m))
	}
	return "Model-" + names[m-1]
}

// ModelSpec couples a model ID with its per-direction cluster-link wires.
type ModelSpec struct {
	ID   ModelID
	Link LinkSpec // per direction, links to clusters; cache links are Double()
}

// Models returns the paper's ten interconnect models (Tables 3 and 4),
// with per-direction wire counts (half the table's per-link totals).
func Models() []ModelSpec {
	return []ModelSpec{
		{ModelI, LinkSpec{BWires: 72}},
		{ModelII, LinkSpec{PWWires: 144}},
		{ModelIII, LinkSpec{PWWires: 72, LWires: 18}},
		{ModelIV, LinkSpec{BWires: 144}},
		{ModelV, LinkSpec{BWires: 72, PWWires: 144}},
		{ModelVI, LinkSpec{PWWires: 144, LWires: 18}},
		{ModelVII, LinkSpec{BWires: 72, LWires: 18}},
		{ModelVIII, LinkSpec{BWires: 216}},
		{ModelIX, LinkSpec{BWires: 144, LWires: 18}},
		{ModelX, LinkSpec{BWires: 72, PWWires: 144, LWires: 18}},
	}
}

// Model returns the spec for one model ID.
func Model(id ModelID) ModelSpec {
	for _, m := range Models() {
		if m.ID == id {
			return m
		}
	}
	panic(fmt.Sprintf("config: unknown model %d", int(id)))
}

// SteeringPolicy selects how instructions are assigned to clusters.
type SteeringPolicy uint8

const (
	// SteerDynamic is the paper's run-time heuristic: dependence,
	// criticality, cache proximity and issue-queue occupancy weights.
	SteerDynamic SteeringPolicy = iota
	// SteerStatic assigns each static instruction to a fixed cluster by PC
	// hash — a stand-in for compile-time partitioning, which the paper
	// notes its proposals also apply to.
	SteerStatic
	// SteerRoundRobin distributes instructions blindly; the degenerate
	// baseline that maximises communication.
	SteerRoundRobin
)

// String names the policy.
func (s SteeringPolicy) String() string {
	switch s {
	case SteerDynamic:
		return "dynamic"
	case SteerStatic:
		return "static-hash"
	case SteerRoundRobin:
		return "round-robin"
	}
	return fmt.Sprintf("SteeringPolicy(%d)", uint8(s))
}

// Techniques gathers the Section 4 mechanism toggles. The zero value
// disables everything (pure baseline); enabled techniques only take effect
// when the interconnect provides the wire class they need.
type Techniques struct {
	// LWireCachePipeline sends the LS bits of load/store effective addresses
	// on L-wires so LSQ partial disambiguation and L1/TLB RAM access start
	// early (Section 4, "Accelerating Cache Access").
	LWireCachePipeline bool
	// LSBits is the number of low-order address bits carried by the early
	// L-wire transfer for partial LSQ comparison (paper uses 8).
	LSBits int
	// NarrowOperands routes results representable in 10 bits over L-wires.
	NarrowOperands bool
	// NarrowOracle bypasses the predictor and uses perfect advance knowledge
	// of operand widths (the paper's optimistic assumption; the predictor
	// version models the 8K-entry 2-bit table).
	NarrowOracle bool
	// MispredictOnL sends branch mispredict signals (branch ID only) to the
	// front end on L-wires.
	MispredictOnL bool
	// PWReadyOperands transfers operands that are already available in a
	// remote register file at dispatch time on PW-wires.
	PWReadyOperands bool
	// PWStoreData sends store data to the LSQ on PW-wires.
	PWStoreData bool
	// PWLoadBalance diverts traffic to the less congested interconnect when
	// the recent-traffic difference exceeds BalanceThreshold.
	PWLoadBalance bool
	// BalanceWindow is the traffic-tracking window in cycles (paper: N=5).
	BalanceWindow int
	// BalanceThreshold is the traffic-difference trigger (paper: 10).
	BalanceThreshold int

	// Extensions beyond the paper's evaluated configuration, implementing
	// the directions its text sketches. All default off.

	// FrequentValueEnc encodes operands matching an 8-entry frequent-value
	// table in 3 bits so they ride L-wires even when wider than 10 bits
	// (the Yang et al. compaction the paper cites as future work).
	FrequentValueEnc bool
	// CriticalWordOnL returns the critical word of L2/memory-missing loads
	// to the cluster on L-wires when the loaded value is narrow (the
	// Section 5.3 note about fetching critical words from L2/L3 on
	// low-latency wires). The cache has the value in hand, so no
	// prediction is involved.
	CriticalWordOnL bool
	// TransmissionLineL implements the L plane as on-chip transmission
	// lines instead of fat RC wires: same cycle latencies at this clock,
	// but roughly one third the dynamic energy per transfer (Chang et al.,
	// paper Section 5.2).
	TransmissionLineL bool
}

// AllTechniques returns the paper's full Section 4 configuration: L-wire
// cache pipeline with 8 LS bits, predicted narrow operands, mispredict
// signals on L, and all three PW steering criteria with N=5, threshold 10.
func AllTechniques() Techniques {
	return Techniques{
		LWireCachePipeline: true,
		LSBits:             8,
		NarrowOperands:     true,
		MispredictOnL:      true,
		PWReadyOperands:    true,
		PWStoreData:        true,
		PWLoadBalance:      true,
		BalanceWindow:      5,
		BalanceThreshold:   10,
	}
}

// Core holds the Table 1 pipeline and memory-hierarchy parameters.
type Core struct {
	FetchQueueSize int // 64
	FetchWidth     int // 8, across up to 2 basic blocks
	MaxBlocksFetch int // 2
	DispatchWidth  int // 8
	CommitWidth    int // 8
	ROBSize        int // 480
	IssueQPerClust int // 15 (int and fp each)
	RegsPerClust   int // 32 (int and fp each)
	IntALUs        int // 1 per cluster
	IntMulDiv      int // 1 per cluster
	FPALUs         int // 1 per cluster
	FPMulDiv       int // 1 per cluster

	MinMispredictPenalty int // at least 12 cycles

	// Branch predictor (combination of bimodal and 2-level).
	BimodalSize   int // 16K
	L1PredSize    int // 16K entries
	HistoryBits   int // 12
	L2PredSize    int // 16K entries
	ChooserSize   int // 16K
	BTBSets       int // 16K sets
	BTBAssoc      int // 2-way
	RASEntries    int
	NarrowPredSz  int // 8K 2-bit counters for the narrow-operand predictor
	NarrowMaxBits int // results in [0, 2^NarrowMaxBits) ride L-wires (10)

	// Memory hierarchy.
	L1ISizeKB    int // 32
	L1IAssoc     int // 2
	L1ILatency   int
	L1DSizeKB    int // 32
	L1DAssoc     int // 4
	L1DLatency   int // 6
	L1DBanks     int // 4-way word interleaved
	L1DPorts     int // ports per bank
	LineBytes    int // 64
	L2SizeMB     int // 8
	L2Assoc      int // 8
	L2Latency    int // 30
	MemLatency   int // 300 for the first block
	TLBEntries   int // 128
	PageBytes    int // 8KB
	TLBAssocBase int // TLB associativity in the baseline pipeline
	L1DAssocBase int
}

// DefaultCore returns the paper's Table 1 configuration.
func DefaultCore() Core {
	return Core{
		FetchQueueSize:       64,
		FetchWidth:           8,
		MaxBlocksFetch:       2,
		DispatchWidth:        8,
		CommitWidth:          8,
		ROBSize:              480,
		IssueQPerClust:       15,
		RegsPerClust:         32,
		IntALUs:              1,
		IntMulDiv:            1,
		FPALUs:               1,
		FPMulDiv:             1,
		MinMispredictPenalty: 12,
		BimodalSize:          16 * 1024,
		L1PredSize:           16 * 1024,
		HistoryBits:          12,
		L2PredSize:           16 * 1024,
		ChooserSize:          16 * 1024,
		BTBSets:              16 * 1024,
		BTBAssoc:             2,
		RASEntries:           32,
		NarrowPredSz:         8 * 1024,
		NarrowMaxBits:        10,
		L1ISizeKB:            32,
		L1IAssoc:             2,
		L1ILatency:           1,
		L1DSizeKB:            32,
		L1DAssoc:             4,
		L1DLatency:           6,
		L1DBanks:             4,
		L1DPorts:             1,
		LineBytes:            64,
		L2SizeMB:             8,
		L2Assoc:              8,
		L2Latency:            30,
		MemLatency:           300,
		TLBEntries:           128,
		PageBytes:            8 * 1024,
		TLBAssocBase:         8,
		L1DAssocBase:         4,
	}
}

// Config is a complete simulated-machine description.
type Config struct {
	Core     Core
	Topology Topology
	Model    ModelSpec
	Tech     Techniques
	// Steering selects the instruction-to-cluster assignment policy
	// (default: the paper's dynamic heuristic).
	Steering SteeringPolicy
	// LinkHeterogeneous selects the paper's Section 3 alternative: instead
	// of every link carrying all wire classes (plane heterogeneity, the
	// paper's choice), alternate links are built entirely from one class —
	// even-numbered cluster links all B-wires, odd-numbered all PW-wires,
	// at the same total metal area. Lower design complexity, but a message
	// must take whatever wires its link has. Only meaningful for models
	// with both B and PW wires (e.g. Model V).
	LinkHeterogeneous bool
	// LatencyScale multiplies all interconnect latencies; 2 models the
	// paper's "wire-constrained future technology" studies (Section 5.3).
	LatencyScale int
}

// Default returns the paper's baseline: 4 clusters, Model I (homogeneous
// 144 B-wires per link), no heterogeneous-wire techniques.
func Default() Config {
	return Config{
		Core:         DefaultCore(),
		Topology:     Crossbar4,
		Model:        Model(ModelI),
		Tech:         Techniques{},
		LatencyScale: 1,
	}
}

// TechniquesFor returns the paper's full Section 4 technique set filtered
// to what the link's wire classes support: L-wire mechanisms need L wires,
// PW steering needs PW wires, and load balancing needs both a B and a PW
// plane to balance between.
func TechniquesFor(link LinkSpec) Techniques {
	t := AllTechniques()
	if !link.Has(wires.L) {
		t.LWireCachePipeline = false
		t.NarrowOperands = false
		t.MispredictOnL = false
	}
	if !link.Has(wires.PW) {
		t.PWReadyOperands = false
		t.PWStoreData = false
	}
	t.PWLoadBalance = link.Has(wires.PW) && link.Has(wires.B)
	return t
}

// WithModel returns a copy of the config using the given interconnect model
// and, when the model provides the necessary wire classes, the paper's full
// technique set.
func (c Config) WithModel(id ModelID) Config {
	out := c
	out.Model = Model(id)
	out.Tech = TechniquesFor(out.Model.Link)
	return out
}

// WithLink returns a copy of the config using a custom per-direction link
// composition (outside the paper's ten named models), with the supported
// techniques enabled. Used by the design-space explorer.
func (c Config) WithLink(link LinkSpec) Config {
	out := c
	out.Model = ModelSpec{ID: ModelID(0), Link: link}
	out.Tech = TechniquesFor(link)
	return out
}

// Latency returns the inter-cluster latency in cycles for a transfer on the
// given class within one crossbar, scaled by LatencyScale.
func (c Config) Latency(class wires.Class) int {
	l := wires.CrossbarLatency(class)
	if c.LatencyScale > 1 {
		l *= c.LatencyScale
	}
	return l
}

// RingLatency returns the per-hop ring latency for the 16-cluster topology.
func (c Config) RingLatency(class wires.Class) int {
	l := wires.RingHopLatency(class)
	if c.LatencyScale > 1 {
		l *= c.LatencyScale
	}
	return l
}

// Validate checks internal consistency and returns a descriptive error for
// the first problem found.
func (c Config) Validate() error {
	if c.Core.FetchWidth <= 0 || c.Core.DispatchWidth <= 0 || c.Core.CommitWidth <= 0 {
		return fmt.Errorf("config: pipeline widths must be positive")
	}
	if c.Core.ROBSize <= 0 || c.Core.IssueQPerClust <= 0 || c.Core.RegsPerClust <= 0 {
		return fmt.Errorf("config: window resources must be positive")
	}
	if c.Model.Link == (LinkSpec{}) {
		return fmt.Errorf("config: interconnect model %v has no wires", c.Model.ID)
	}
	if c.LatencyScale < 1 {
		return fmt.Errorf("config: LatencyScale must be >= 1, got %d", c.LatencyScale)
	}
	if c.Tech.LWireCachePipeline && !c.Model.Link.Has(wires.L) {
		return fmt.Errorf("config: L-wire cache pipeline enabled but %v has no L-wires", c.Model.ID)
	}
	if (c.Tech.PWReadyOperands || c.Tech.PWStoreData) && !c.Model.Link.Has(wires.PW) {
		return fmt.Errorf("config: PW steering enabled but %v has no PW-wires", c.Model.ID)
	}
	if c.Tech.NarrowOperands && !c.Model.Link.Has(wires.L) {
		return fmt.Errorf("config: narrow-operand transfers enabled but %v has no L-wires", c.Model.ID)
	}
	if c.Tech.LWireCachePipeline && (c.Tech.LSBits < 4 || c.Tech.LSBits > 16) {
		return fmt.Errorf("config: LSBits = %d out of supported range [4,16]", c.Tech.LSBits)
	}
	if (c.Tech.FrequentValueEnc || c.Tech.CriticalWordOnL || c.Tech.TransmissionLineL) && !c.Model.Link.Has(wires.L) {
		return fmt.Errorf("config: L-wire extension enabled but %v has no L-wires", c.Model.ID)
	}
	return nil
}
