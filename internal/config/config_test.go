package config

import (
	"testing"

	"hetwire/internal/wires"
)

// TestDefaultMatchesTable1 pins the simulator defaults to the paper's
// Table 1.
func TestDefaultMatchesTable1(t *testing.T) {
	c := DefaultCore()
	checks := []struct {
		name string
		got  int
		want int
	}{
		{"fetch queue", c.FetchQueueSize, 64},
		{"fetch width", c.FetchWidth, 8},
		{"basic blocks per fetch", c.MaxBlocksFetch, 2},
		{"bimodal size", c.BimodalSize, 16384},
		{"level-1 predictor", c.L1PredSize, 16384},
		{"history bits", c.HistoryBits, 12},
		{"level-2 predictor", c.L2PredSize, 16384},
		{"BTB sets", c.BTBSets, 16384},
		{"BTB assoc", c.BTBAssoc, 2},
		{"min mispredict penalty", c.MinMispredictPenalty, 12},
		{"issue queue per cluster", c.IssueQPerClust, 15},
		{"registers per cluster", c.RegsPerClust, 32},
		{"int ALUs", c.IntALUs, 1},
		{"fp ALUs", c.FPALUs, 1},
		{"ROB", c.ROBSize, 480},
		{"L1I KB", c.L1ISizeKB, 32},
		{"L1I assoc", c.L1IAssoc, 2},
		{"L1D KB", c.L1DSizeKB, 32},
		{"L1D assoc", c.L1DAssoc, 4},
		{"L1D latency", c.L1DLatency, 6},
		{"L1D banks", c.L1DBanks, 4},
		{"L2 MB", c.L2SizeMB, 8},
		{"L2 assoc", c.L2Assoc, 8},
		{"L2 latency", c.L2Latency, 30},
		{"memory latency", c.MemLatency, 300},
		{"TLB entries", c.TLBEntries, 128},
		{"page bytes", c.PageBytes, 8192},
	}
	for _, ck := range checks {
		if ck.got != ck.want {
			t.Errorf("%s = %d, want %d", ck.name, ck.got, ck.want)
		}
	}
}

// TestModelLinkSpecs pins the ten models' wire mixes to the Table 3 captions
// (per-direction counts are half the per-link totals).
func TestModelLinkSpecs(t *testing.T) {
	want := map[ModelID]LinkSpec{
		ModelI:    {BWires: 72},
		ModelII:   {PWWires: 144},
		ModelIII:  {PWWires: 72, LWires: 18},
		ModelIV:   {BWires: 144},
		ModelV:    {BWires: 72, PWWires: 144},
		ModelVI:   {PWWires: 144, LWires: 18},
		ModelVII:  {BWires: 72, LWires: 18},
		ModelVIII: {BWires: 216},
		ModelIX:   {BWires: 144, LWires: 18},
		ModelX:    {BWires: 72, PWWires: 144, LWires: 18},
	}
	if len(Models()) != 10 {
		t.Fatalf("expected 10 models, got %d", len(Models()))
	}
	for id, spec := range want {
		if got := Model(id).Link; got != spec {
			t.Errorf("%v link = %+v, want %+v", id, got, spec)
		}
	}
}

// TestModelMetalArea reproduces the "Relative Metal Area" column of
// Table 3: I=1.0, II=1.0, III=1.5, IV..VII=2.0, VIII..X=3.0.
func TestModelMetalArea(t *testing.T) {
	want := map[ModelID]float64{
		ModelI: 1.0, ModelII: 1.0, ModelIII: 1.5,
		ModelIV: 2.0, ModelV: 2.0, ModelVI: 2.0, ModelVII: 2.0,
		ModelVIII: 3.0, ModelIX: 3.0, ModelX: 3.0,
	}
	for id, area := range want {
		got := Model(id).Link.MetalArea()
		if got != area {
			t.Errorf("%v metal area = %.2f, want %.2f", id, got, area)
		}
	}
}

// TestBandwidths checks transfer-per-cycle conversion and cache-link
// doubling.
func TestBandwidths(t *testing.T) {
	l := Model(ModelX).Link
	if l.Bandwidth(wires.B) != 1 || l.Bandwidth(wires.PW) != 2 || l.Bandwidth(wires.L) != 1 {
		t.Errorf("Model X bandwidths = %d/%d/%d, want 1/2/1",
			l.Bandwidth(wires.B), l.Bandwidth(wires.PW), l.Bandwidth(wires.L))
	}
	d := l.Double()
	if d.Bandwidth(wires.B) != 2 || d.Bandwidth(wires.PW) != 4 || d.Bandwidth(wires.L) != 2 {
		t.Errorf("cache link bandwidths = %d/%d/%d, want 2/4/2",
			d.Bandwidth(wires.B), d.Bandwidth(wires.PW), d.Bandwidth(wires.L))
	}
	if !l.Has(wires.L) || l.Has(wires.W) {
		t.Error("Has() misreports class availability")
	}
}

// TestWithModelEnablesOnlySupportedTechniques checks that WithModel turns on
// exactly the techniques the wire mix supports.
func TestWithModelEnablesOnlySupportedTechniques(t *testing.T) {
	base := Default()

	m1 := base.WithModel(ModelI) // B only
	if m1.Tech.LWireCachePipeline || m1.Tech.NarrowOperands || m1.Tech.PWStoreData || m1.Tech.PWLoadBalance {
		t.Errorf("Model I should support no heterogeneous techniques, got %+v", m1.Tech)
	}

	m7 := base.WithModel(ModelVII) // B + L
	if !m7.Tech.LWireCachePipeline || !m7.Tech.NarrowOperands || !m7.Tech.MispredictOnL {
		t.Errorf("Model VII must enable the L-wire techniques, got %+v", m7.Tech)
	}
	if m7.Tech.PWStoreData || m7.Tech.PWReadyOperands {
		t.Errorf("Model VII has no PW wires; PW steering must stay off, got %+v", m7.Tech)
	}

	m5 := base.WithModel(ModelV) // B + PW
	if !m5.Tech.PWStoreData || !m5.Tech.PWReadyOperands || !m5.Tech.PWLoadBalance {
		t.Errorf("Model V must enable PW steering, got %+v", m5.Tech)
	}
	if m5.Tech.LWireCachePipeline {
		t.Errorf("Model V has no L wires; L techniques must stay off")
	}

	m2 := base.WithModel(ModelII) // PW only
	if m2.Tech.PWLoadBalance {
		t.Error("Model II has a single wire class; load balancing must stay off")
	}

	for _, spec := range Models() {
		cfg := base.WithModel(spec.ID)
		if err := cfg.Validate(); err != nil {
			t.Errorf("%v: WithModel produced invalid config: %v", spec.ID, err)
		}
	}
}

// TestLatencies pins the per-class cycle latencies and the wire-constrained
// scaling used by Section 5.3.
func TestLatencies(t *testing.T) {
	c := Default()
	if c.Latency(wires.B) != 2 || c.Latency(wires.PW) != 3 || c.Latency(wires.L) != 1 {
		t.Errorf("crossbar latencies = %d/%d/%d, want 2/3/1",
			c.Latency(wires.B), c.Latency(wires.PW), c.Latency(wires.L))
	}
	c.LatencyScale = 2
	if c.Latency(wires.B) != 4 || c.Latency(wires.PW) != 6 || c.Latency(wires.L) != 2 {
		t.Errorf("scaled latencies = %d/%d/%d, want 4/6/2",
			c.Latency(wires.B), c.Latency(wires.PW), c.Latency(wires.L))
	}
	if c.RingLatency(wires.B) != 8 || c.RingLatency(wires.L) != 4 {
		t.Errorf("scaled ring latencies = %d/%d, want 8/4",
			c.RingLatency(wires.B), c.RingLatency(wires.L))
	}
}

// TestValidateRejectsBadConfigs exercises the error paths.
func TestValidateRejectsBadConfigs(t *testing.T) {
	good := Default()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}

	bad := good
	bad.Core.ROBSize = 0
	if bad.Validate() == nil {
		t.Error("zero ROB accepted")
	}

	bad = good
	bad.Tech.LWireCachePipeline = true // Model I has no L wires
	if bad.Validate() == nil {
		t.Error("L-wire pipeline without L wires accepted")
	}

	bad = good.WithModel(ModelVII)
	bad.Tech.LSBits = 2
	if bad.Validate() == nil {
		t.Error("absurd LSBits accepted")
	}

	bad = good
	bad.LatencyScale = 0
	if bad.Validate() == nil {
		t.Error("zero latency scale accepted")
	}

	bad = good
	bad.Model.Link = LinkSpec{}
	if bad.Validate() == nil {
		t.Error("wireless interconnect accepted")
	}
}

// TestTopologyHelpers covers the topology enum.
func TestTopologyHelpers(t *testing.T) {
	if Crossbar4.Clusters() != 4 || HierRing16.Clusters() != 16 {
		t.Error("cluster counts wrong")
	}
	if Crossbar4.String() == "" || HierRing16.String() == "" || Topology(9).String() == "" {
		t.Error("topology names must be non-empty")
	}
}

// TestLinkSpecString covers the table-style rendering.
func TestLinkSpecString(t *testing.T) {
	if s := Model(ModelX).Link.String(); s != "72 B-Wires, 144 PW-Wires, 18 L-Wires" {
		t.Errorf("Model X link string = %q", s)
	}
	if s := (LinkSpec{}).String(); s != "(no wires)" {
		t.Errorf("empty link string = %q", s)
	}
}

// TestSteeringPolicyNames covers the enum.
func TestSteeringPolicyNames(t *testing.T) {
	if SteerDynamic.String() != "dynamic" || SteerStatic.String() != "static-hash" ||
		SteerRoundRobin.String() != "round-robin" || SteeringPolicy(7).String() == "" {
		t.Error("steering policy names wrong")
	}
	if Default().Steering != SteerDynamic {
		t.Error("default steering must be the paper's dynamic heuristic")
	}
}

// TestExtensionValidation: L-wire extensions need L wires.
func TestExtensionValidation(t *testing.T) {
	cfg := Default() // Model I
	cfg.Tech.TransmissionLineL = true
	if cfg.Validate() == nil {
		t.Error("transmission-line L plane accepted without L wires")
	}
	cfg = Default().WithModel(ModelVII)
	cfg.Tech.TransmissionLineL = true
	cfg.Tech.FrequentValueEnc = true
	cfg.Tech.CriticalWordOnL = true
	if err := cfg.Validate(); err != nil {
		t.Errorf("extensions rejected on an L-wire model: %v", err)
	}
}
