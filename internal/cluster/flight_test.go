// Ops-plane tests for the cluster fabric: coordinator flight events across
// the lease lifecycle, heartbeat-piggybacked node event indexing, and the
// deterministic merged timeline two identical runs must reproduce
// byte-identically.
package cluster

import (
	"strings"
	"testing"
	"time"

	"hetwire/internal/obs"
	"hetwire/internal/obs/flight"
)

func testFlightCoordinator(t *testing.T, clk *fakeClock, fr *flight.Recorder) *Coordinator {
	t.Helper()
	return New(Options{
		LeaseSize: 2,
		LeaseTTL:  10 * time.Second,
		Heartbeat: 2 * time.Second,
		DeadAfter: 30 * time.Second,
		Now:       clk.Now,
		Flight:    fr,
	})
}

// TestCoordinatorFlightLeaseLifecycle pins the coordinator-side event chain:
// grant, upload, and expiry all land in the recorder with the job's trace.
func TestCoordinatorFlightLeaseLifecycle(t *testing.T) {
	clk := newFakeClock()
	fr := flight.New(64)
	c := testFlightCoordinator(t, clk, fr)
	n1 := register(t, c, "slow")
	n2 := register(t, c, "healthy")
	if _, _, err := c.Submit(testBatch(2), "tr-life", "acme"); err != nil {
		t.Fatalf("submit: %v", err)
	}
	l1 := mustLease(t, c, n1, 0)
	clk.Advance(5 * time.Second)
	c.Heartbeat(&HeartbeatRequest{NodeID: n2})
	clk.Advance(6 * time.Second) // l1's TTL exceeded
	l2 := mustLease(t, c, n2, 0) // re-dispatch of [0,2)
	uploadRange(t, c, n2, l2)

	var kinds []string
	for _, ev := range fr.Snapshot() {
		if ev.Trace != "tr-life" {
			t.Errorf("event %+v lost the job trace", ev)
		}
		if ev.Tenant != "acme" {
			t.Errorf("event %+v lost the tenant", ev)
		}
		kinds = append(kinds, ev.Kind)
	}
	want := []string{flight.KindLeaseGrant, flight.KindLeaseExpire, flight.KindLeaseGrant, flight.KindLeaseUpload}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Fatalf("event chain = %v, want %v", kinds, want)
	}
	evs := fr.Snapshot()
	if evs[1].Lease != l1.ID || evs[1].Reason == "" {
		t.Errorf("expire event = %+v, want lease %s with a reason", evs[1], l1.ID)
	}
	if evs[3].Lease != l2.ID || !strings.Contains(evs[3].Detail, "accepted=2") {
		t.Errorf("upload event = %+v, want lease %s accepted=2", evs[3], l2.ID)
	}
}

// TestHeartbeatIndexesNodeEventsPerJob: events piggybacked on heartbeats are
// filed under the jobs they concern; events for unknown (or already-taken)
// jobs are dropped rather than accumulated unboundedly.
func TestHeartbeatIndexesNodeEventsPerJob(t *testing.T) {
	clk := newFakeClock()
	c := testFlightCoordinator(t, clk, nil)
	n1 := register(t, c, "a")
	jobID, done, err := c.Submit(testBatch(2), "tr-idx", "")
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	lease := mustLease(t, c, n1, 0)

	c.Heartbeat(&HeartbeatRequest{NodeID: n1, Events: []flight.Event{
		{Seq: 1, Kind: flight.KindLeaseRun, Trace: "tr-idx", Job: jobID, Lease: lease.ID, Node: n1},
		{Seq: 2, Kind: flight.KindSpan, Trace: "tr-idx", Job: "b-9999", Lease: "l-9999", Node: n1}, // unknown job
	}})
	got := c.NodeEvents(jobID)
	if len(got) != 1 || got[0].Kind != flight.KindLeaseRun || got[0].Node != n1 {
		t.Fatalf("indexed events = %+v, want just the lease_run", got)
	}
	if c.NodeEvents("b-9999") != nil {
		t.Error("events indexed for an unknown job")
	}

	uploadRange(t, c, n1, lease)
	<-done
	if _, _, err := c.Take(jobID); err != nil {
		t.Fatalf("take: %v", err)
	}
	// Taken job: the record is gone, late events are dropped silently.
	c.Heartbeat(&HeartbeatRequest{NodeID: n1, Events: []flight.Event{
		{Seq: 3, Kind: flight.KindSpan, Job: jobID},
	}})
	if c.NodeEvents(jobID) != nil {
		t.Error("events survived (or were indexed after) job take")
	}
}

// runTwoNodeScript drives one fully scripted 2-node cluster run — fixed
// registration order, fixed lease acquisition order, node-side events and
// lease logs fabricated exactly as the agent records them — and returns the
// merged canonical timeline. Two invocations must return identical bytes.
func runTwoNodeScript(t *testing.T) string {
	t.Helper()
	clk := newFakeClock()
	coordFR := flight.New(64)
	c := testFlightCoordinator(t, clk, coordFR)
	nodes := []string{register(t, c, "alpha"), register(t, c, "beta")}
	jobID, done, err := c.Submit(testBatch(4), "tr-merge", "acme")
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	nodeFR := []*flight.Recorder{flight.New(64), flight.New(64)}
	var leaseLogs [2][]obs.LeaseEvent
	for i, nodeID := range nodes {
		lease := mustLease(t, c, nodeID, 0)
		nodeFR[i].Record(flight.Event{
			Kind: flight.KindLeaseRun, Trace: lease.TraceID, Tenant: lease.Tenant,
			Job: lease.JobID, Lease: lease.ID, Node: nodeID,
		})
		uploadRange(t, c, nodeID, lease)
		nodeFR[i].Record(flight.Event{
			Kind: flight.KindSpan, Trace: lease.TraceID, Job: lease.JobID,
			Lease: lease.ID, Node: nodeID, DurMS: float64(i + 1), Detail: SpanSim,
		})
		leaseLogs[i] = append(leaseLogs[i], obs.LeaseEvent{
			Schema: obs.LeaseSchema, TraceID: lease.TraceID, Tenant: lease.Tenant,
			JobID: lease.JobID, LeaseID: lease.ID, Node: nodeID,
			Start: lease.Start, End: lease.End, Simulated: lease.End - lease.Start,
		})
	}
	<-done
	if _, _, err := c.Take(jobID); err != nil {
		t.Fatalf("take: %v", err)
	}

	return flight.MergeTimeline([]flight.Source{
		{Name: "coordinator", Events: flight.Canonical(coordFR.Snapshot())},
		{Name: "alpha", Events: flight.Canonical(nodeFR[0].Snapshot())},
		{Name: "beta", Events: flight.Canonical(nodeFR[1].Snapshot())},
		{Name: "alpha.leases", Leases: leaseLogs[0]},
		{Name: "beta.leases", Leases: leaseLogs[1]},
	}, false)
}

// TestMergedTimelineByteIdenticalAcrossRuns is the cluster-trace acceptance
// check: two identical 2-node runs merge to byte-identical causal timelines.
func TestMergedTimelineByteIdenticalAcrossRuns(t *testing.T) {
	a := runTwoNodeScript(t)
	b := runTwoNodeScript(t)
	if a != b {
		t.Fatalf("identical runs merged differently:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
	if !strings.Contains(a, "trace tr-merge") {
		t.Fatalf("timeline lost the trace section:\n%s", a)
	}
	// Causal shape: each lease's rows form one block anchored to its grant —
	// grant, then the node's execution, then the lease log, then the upload —
	// and blocks appear in grant order.
	wantOrder := []string{
		"lease_grant tenant=acme job=cj-000001 lease=l-000001",
		"lease_run tenant=acme job=cj-000001 lease=l-000001",
		"lease-log l-000001 node=n-0001",
		"lease_upload tenant=acme job=cj-000001 lease=l-000001",
		"lease_grant tenant=acme job=cj-000001 lease=l-000002",
		"lease_run tenant=acme job=cj-000001 lease=l-000002",
		"lease-log l-000002 node=n-0002",
		"lease_upload tenant=acme job=cj-000001 lease=l-000002",
	}
	pos := -1
	for _, probe := range wantOrder {
		next := strings.Index(a, probe)
		if next <= pos {
			t.Fatalf("timeline row %q missing or out of causal order:\n%s", probe, a)
		}
		pos = next
	}
	if strings.Contains(a, "dur_ms") {
		t.Error("canonical timeline leaked a measured duration")
	}
}
