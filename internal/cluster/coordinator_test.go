package cluster

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"hetwire"
	"hetwire/internal/wire"
)

// fakeClock drives the coordinator deterministically: tests advance it past
// lease TTLs and heartbeat windows instead of sleeping.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// memCache is a map-backed ResultCache for coordinator tests.
type memCache struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMemCache() *memCache { return &memCache{m: make(map[string][]byte)} }

func (c *memCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.m[key]
	return b, ok
}

func (c *memCache) Put(key string, body []byte) {
	c.mu.Lock()
	c.m[key] = append([]byte(nil), body...)
	c.mu.Unlock()
}

func (c *memCache) Delete(key string) {
	c.mu.Lock()
	delete(c.m, key)
	c.mu.Unlock()
}

func testCoordinator(t *testing.T, clk *fakeClock, cache ResultCache) *Coordinator {
	t.Helper()
	// DeadAfter is kept past the lease TTL so lease-expiry tests exercise the
	// deadline path, not node death; the node-death test builds its own.
	return New(Options{
		LeaseSize: 4,
		LeaseTTL:  10 * time.Second,
		Heartbeat: 2 * time.Second,
		DeadAfter: 30 * time.Second,
		Cache:     cache,
		Now:       clk.Now,
	})
}

func register(t *testing.T, c *Coordinator, name string) string {
	t.Helper()
	resp, err := c.Register(&RegisterRequest{
		Name:       name,
		Protocol:   ProtocolVersion,
		CompatHash: CompatHash(),
	})
	if err != nil {
		t.Fatalf("register %s: %v", name, err)
	}
	return resp.NodeID
}

func testBatch(scenarios int) *hetwire.BatchRequest {
	// One scenario per benchmark x n pair; vary n to get distinct scenarios.
	ns := make([]uint64, scenarios)
	for i := range ns {
		ns[i] = uint64(1000 * (i + 1))
	}
	return &hetwire.BatchRequest{
		Sweep: &hetwire.BatchSweep{
			Benchmarks: []string{"gzip"},
			Models:     []string{"I"},
			Ns:         ns,
		},
	}
}

// resultFor fabricates a deterministic upload body for an index. The IPC
// varies by index so distinct scenarios stay distinct after the coordinator
// canonicalises bodies into wire frames.
func resultFor(idx int) ScenarioResult {
	body, _ := json.Marshal(map[string]any{"ipc": 1.0 + float64(idx)})
	return ScenarioResult{Index: idx, Body: body, BodySHA256: BodySum(body)}
}

// uploadRange uploads fabricated results for [start, end).
func uploadRange(t *testing.T, c *Coordinator, nodeID string, lease *Lease) *UploadResponse {
	t.Helper()
	results := make([]ScenarioResult, 0, lease.End-lease.Start)
	for idx := lease.Start; idx < lease.End; idx++ {
		r := resultFor(idx)
		key, err := lease.Scenarios[idx-lease.Start].CacheKey()
		if err != nil {
			t.Fatalf("cache key: %v", err)
		}
		r.CacheKey = key
		results = append(results, r)
	}
	resp, err := c.Upload(&UploadRequest{
		NodeID: nodeID, LeaseID: lease.ID, JobID: lease.JobID, Results: results,
	})
	if err != nil {
		t.Fatalf("upload lease %s: %v", lease.ID, err)
	}
	return resp
}

func mustLease(t *testing.T, c *Coordinator, nodeID string, max int) *Lease {
	t.Helper()
	resp, err := c.Lease(&LeaseRequest{NodeID: nodeID, Max: max})
	if err != nil {
		t.Fatalf("lease: %v", err)
	}
	if resp.Lease == nil {
		t.Fatalf("expected a lease, got idle (retry %dms)", resp.RetryMS)
	}
	return resp.Lease
}

func TestRegisterRejectsIncompatibleNodes(t *testing.T) {
	c := testCoordinator(t, newFakeClock(), nil)
	_, err := c.Register(&RegisterRequest{Protocol: ProtocolVersion + 1, CompatHash: CompatHash()})
	if hetwire.ReasonCode(err) != ReasonIncompatibleNode {
		t.Fatalf("protocol mismatch: got reason %q err %v", hetwire.ReasonCode(err), err)
	}
	_, err = c.Register(&RegisterRequest{Protocol: ProtocolVersion, CompatHash: "v1/deadbeef"})
	if hetwire.ReasonCode(err) != ReasonIncompatibleNode {
		t.Fatalf("compat mismatch: got reason %q err %v", hetwire.ReasonCode(err), err)
	}
}

func TestUnknownNodeIsMachineReadable(t *testing.T) {
	c := testCoordinator(t, newFakeClock(), nil)
	if _, err := c.Lease(&LeaseRequest{NodeID: "n-9999"}); hetwire.ReasonCode(err) != ReasonUnknownNode {
		t.Fatalf("lease: got reason %q err %v", hetwire.ReasonCode(err), err)
	}
	if _, err := c.Upload(&UploadRequest{NodeID: "n-9999"}); hetwire.ReasonCode(err) != ReasonUnknownNode {
		t.Fatalf("upload: got reason %q err %v", hetwire.ReasonCode(err), err)
	}
	if _, err := c.CacheCheck(&CacheCheckRequest{NodeID: "n-9999"}); hetwire.ReasonCode(err) != ReasonUnknownNode {
		t.Fatalf("cachecheck: got reason %q err %v", hetwire.ReasonCode(err), err)
	}
	if hb := c.Heartbeat(&HeartbeatRequest{NodeID: "n-9999"}); hb.Known {
		t.Fatal("heartbeat from an unknown node must answer Known=false")
	}
}

func TestLeaseShardsInCanonicalOrder(t *testing.T) {
	clk := newFakeClock()
	c := testCoordinator(t, clk, nil)
	n1 := register(t, c, "a")
	if _, done, err := c.Submit(testBatch(10), "t1", ""); err != nil || done == nil {
		t.Fatalf("submit: %v", err)
	}
	l1 := mustLease(t, c, n1, 0)
	if l1.Start != 0 || l1.End != 4 {
		t.Fatalf("first lease covers [%d,%d), want [0,4)", l1.Start, l1.End)
	}
	if len(l1.Scenarios) != 4 {
		t.Fatalf("lease carries %d scenarios, want 4", len(l1.Scenarios))
	}
	l2 := mustLease(t, c, n1, 0)
	if l2.Start != 4 || l2.End != 8 {
		t.Fatalf("second lease covers [%d,%d), want [4,8)", l2.Start, l2.End)
	}
	l3 := mustLease(t, c, n1, 0)
	if l3.Start != 8 || l3.End != 10 {
		t.Fatalf("third lease covers [%d,%d), want [8,10)", l3.Start, l3.End)
	}
	if resp, err := c.Lease(&LeaseRequest{NodeID: n1}); err != nil || resp.Lease != nil {
		t.Fatalf("exhausted job still leased: %+v err %v", resp.Lease, err)
	}
}

func TestLeaseExpiryRedispatchesToAnotherNode(t *testing.T) {
	clk := newFakeClock()
	c := testCoordinator(t, clk, nil)
	n1 := register(t, c, "sick")
	n2 := register(t, c, "healthy")
	_, done, err := c.Submit(testBatch(4), "t2", "")
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	l1 := mustLease(t, c, n1, 0) // covers [0,4), then the node goes silent
	// Keep n2 alive while n1's lease runs out.
	clk.Advance(5 * time.Second)
	c.Heartbeat(&HeartbeatRequest{NodeID: n2})
	clk.Advance(6 * time.Second) // lease TTL (10s) exceeded
	l2 := mustLease(t, c, n2, 0)
	if l2.Start != l1.Start || l2.End != l1.End {
		t.Fatalf("re-dispatched lease covers [%d,%d), want [%d,%d)", l2.Start, l2.End, l1.Start, l1.End)
	}
	st := c.Stats()
	if st.LeasesExpired == 0 || st.ScenariosRedispatched != 4 {
		t.Fatalf("expiry not accounted: %+v", st)
	}
	uploadRange(t, c, n2, l2)
	select {
	case <-done:
	default:
		t.Fatal("job not complete after re-dispatched upload")
	}

	// The straggler finally reports in: every result is a duplicate no-op.
	resp, err := c.Upload(&UploadRequest{
		NodeID: n1, LeaseID: l1.ID, JobID: l1.JobID,
		Results: []ScenarioResult{resultFor(0), resultFor(1), resultFor(2), resultFor(3)},
	})
	if err != nil {
		t.Fatalf("straggler upload: %v", err)
	}
	if resp.Duplicate != 4 || resp.Accepted != 0 {
		t.Fatalf("straggler upload: %+v, want 4 duplicates", resp)
	}
	if st := c.Stats(); st.UploadConflicts != 0 {
		t.Fatalf("identical duplicate counted as conflict: %+v", st)
	}
}

func TestDeadNodeLeasesExpireImmediately(t *testing.T) {
	clk := newFakeClock()
	// DeadAfter (6s) < lease TTL (60s): node death must free the lease long
	// before its own deadline would.
	c := New(Options{
		LeaseSize: 4,
		LeaseTTL:  60 * time.Second,
		Heartbeat: 2 * time.Second,
		DeadAfter: 6 * time.Second,
		Now:       clk.Now,
	})
	n1 := register(t, c, "doomed")
	n2 := register(t, c, "survivor")
	if _, _, err := c.Submit(testBatch(4), "", ""); err != nil {
		t.Fatalf("submit: %v", err)
	}
	mustLease(t, c, n1, 0)
	// n2 keeps heartbeating; n1 goes silent past DeadAfter.
	clk.Advance(4 * time.Second)
	c.Heartbeat(&HeartbeatRequest{NodeID: n2})
	clk.Advance(3 * time.Second)
	l2 := mustLease(t, c, n2, 0) // sweepLocked runs on entry, reaping n1
	if l2.Start != 0 || l2.End != 4 {
		t.Fatalf("lease after node death covers [%d,%d), want [0,4)", l2.Start, l2.End)
	}
	st := c.Stats()
	if st.NodesDead != 1 || st.NodesAlive != 1 {
		t.Fatalf("node death not accounted: %+v", st)
	}
	if hb := c.Heartbeat(&HeartbeatRequest{NodeID: n1}); hb.Known {
		t.Fatal("dead node must be told to re-register")
	}
}

func TestFederatedCacheFillsSkippedSlots(t *testing.T) {
	clk := newFakeClock()
	cache := newMemCache()
	c := testCoordinator(t, clk, cache)
	n1 := register(t, c, "a")
	_, done, err := c.Submit(testBatch(2), "", "")
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	lease := mustLease(t, c, n1, 0)
	keys := make([]string, 2)
	for i := range lease.Scenarios {
		keys[i], _ = lease.Scenarios[i].CacheKey()
	}

	// Nothing cached yet: the check reports all unknown.
	chk, err := c.CacheCheck(&CacheCheckRequest{NodeID: n1, Keys: keys})
	if err != nil {
		t.Fatalf("cachecheck: %v", err)
	}
	for i, k := range chk.Known {
		if k {
			t.Fatalf("key %d reported known on an empty cache", i)
		}
	}

	// Pre-load index 1's result, as if another sweep had computed it. The
	// federated store holds wire frames, so the preload must be one too.
	body1, err := wire.EncodeRunResult(&hetwire.RunResponse{IPC: 2})
	if err != nil {
		t.Fatalf("encoding preload frame: %v", err)
	}
	cache.Put(keys[1], body1)
	chk, _ = c.CacheCheck(&CacheCheckRequest{NodeID: n1, Keys: keys})
	if chk.Known[0] || !chk.Known[1] {
		t.Fatalf("cachecheck after preload: %v", chk.Known)
	}

	// The node simulates index 0 and skips index 1.
	r0 := resultFor(0)
	r0.CacheKey = keys[0]
	resp, err := c.Upload(&UploadRequest{
		NodeID: n1, LeaseID: lease.ID, JobID: lease.JobID,
		Results: []ScenarioResult{r0, {Index: 1, CacheKey: keys[1], Skipped: true}},
	})
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	if resp.Accepted != 2 || len(resp.Requeued) != 0 || !resp.JobDone {
		t.Fatalf("upload response: %+v", resp)
	}
	st := c.Stats()
	if st.FederatedHits != 1 {
		t.Fatalf("federated hits = %d, want 1", st.FederatedHits)
	}
	// Index 0's fresh result must have populated the federated store.
	if _, ok := cache.Get(keys[0]); !ok {
		t.Fatal("fresh upload did not populate the federated cache")
	}
	<-done
	out, _, err := c.Take(lease.JobID)
	if err != nil {
		t.Fatalf("take: %v", err)
	}
	if out.Completed != 2 || out.CacheHits != 1 || !out.Scenarios[1].Cached {
		t.Fatalf("merged response: completed=%d hits=%d", out.Completed, out.CacheHits)
	}
}

func TestEvictedCacheEntryRequeuesSkippedIndex(t *testing.T) {
	clk := newFakeClock()
	cache := newMemCache()
	c := testCoordinator(t, clk, cache)
	n1 := register(t, c, "a")
	if _, _, err := c.Submit(testBatch(1), "", ""); err != nil {
		t.Fatalf("submit: %v", err)
	}
	lease := mustLease(t, c, n1, 0)
	key, _ := lease.Scenarios[0].CacheKey()
	cache.Put(key, []byte(`{"ipc":1}`))
	// The entry vanishes between the node's check and its skip-marker upload.
	cache.Delete(key)
	resp, err := c.Upload(&UploadRequest{
		NodeID: n1, LeaseID: lease.ID, JobID: lease.JobID,
		Results: []ScenarioResult{{Index: 0, CacheKey: key, Skipped: true}},
	})
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	if len(resp.Requeued) != 1 || resp.Requeued[0] != 0 {
		t.Fatalf("requeued = %v, want [0]", resp.Requeued)
	}
	// The index is pending again and the next lease re-covers it.
	l2 := mustLease(t, c, n1, 0)
	if l2.Start != 0 || l2.End != 1 {
		t.Fatalf("requeued lease covers [%d,%d), want [0,1)", l2.Start, l2.End)
	}
}

func TestUploadRejectsMalformedResults(t *testing.T) {
	clk := newFakeClock()
	c := testCoordinator(t, clk, nil)
	n1 := register(t, c, "a")
	if _, _, err := c.Submit(testBatch(2), "", ""); err != nil {
		t.Fatalf("submit: %v", err)
	}
	lease := mustLease(t, c, n1, 0)

	// Out-of-range index.
	_, err := c.Upload(&UploadRequest{
		NodeID: n1, LeaseID: lease.ID, JobID: lease.JobID,
		Results: []ScenarioResult{{Index: 99, Body: []byte("{}")}},
	})
	if hetwire.ReasonCode(err) != hetwire.ReasonBadRequest {
		t.Fatalf("out-of-range index: reason %q err %v", hetwire.ReasonCode(err), err)
	}

	// Body that does not match its declared checksum.
	_, err = c.Upload(&UploadRequest{
		NodeID: n1, LeaseID: lease.ID, JobID: lease.JobID,
		Results: []ScenarioResult{{Index: 0, Body: []byte(`{"ipc":1}`), BodySHA256: "not-a-sum"}},
	})
	if hetwire.ReasonCode(err) != hetwire.ReasonBadRequest {
		t.Fatalf("checksum mismatch: reason %q err %v", hetwire.ReasonCode(err), err)
	}

	// A result with neither body, error, nor skip marker.
	_, err = c.Upload(&UploadRequest{
		NodeID: n1, LeaseID: lease.ID, JobID: lease.JobID,
		Results: []ScenarioResult{{Index: 0}},
	})
	if hetwire.ReasonCode(err) != hetwire.ReasonBadRequest {
		t.Fatalf("empty result: reason %q err %v", hetwire.ReasonCode(err), err)
	}
}

func TestScenarioErrorsIsolateToTheirSlots(t *testing.T) {
	clk := newFakeClock()
	c := testCoordinator(t, clk, nil)
	n1 := register(t, c, "a")
	_, done, err := c.Submit(testBatch(2), "", "")
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	lease := mustLease(t, c, n1, 0)
	r0 := resultFor(0)
	_, err = c.Upload(&UploadRequest{
		NodeID: n1, LeaseID: lease.ID, JobID: lease.JobID,
		Results: []ScenarioResult{r0, {Index: 1, Error: "simulated node failure", Reason: "bad_config"}},
	})
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	<-done
	out, _, err := c.Take(lease.JobID)
	if err != nil {
		t.Fatalf("take: %v", err)
	}
	if out.Completed != 1 || out.Failed != 1 {
		t.Fatalf("completed=%d failed=%d, want 1/1", out.Completed, out.Failed)
	}
	if out.Scenarios[1].Reason != "bad_config" || out.Scenarios[1].Error == "" {
		t.Fatalf("failed slot: %+v", out.Scenarios[1])
	}
}

func TestCancelResolvesOpenSlots(t *testing.T) {
	clk := newFakeClock()
	c := testCoordinator(t, clk, nil)
	n1 := register(t, c, "a")
	jobID, done, err := c.Submit(testBatch(3), "", "")
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	lease := mustLease(t, c, n1, 2)
	r0 := resultFor(0)
	if _, err := c.Upload(&UploadRequest{
		NodeID: n1, LeaseID: lease.ID, JobID: lease.JobID,
		Results: []ScenarioResult{r0},
	}); err != nil {
		t.Fatalf("upload: %v", err)
	}
	c.Cancel(jobID)
	select {
	case <-done:
	default:
		t.Fatal("done channel not closed by cancel")
	}
	out, _, err := c.Take(jobID)
	if err != nil {
		t.Fatalf("take: %v", err)
	}
	if out.Completed != 1 || out.Failed != 2 {
		t.Fatalf("after cancel: completed=%d failed=%d, want 1/2", out.Completed, out.Failed)
	}
	for _, i := range []int{1, 2} {
		if out.Scenarios[i].Reason != "cancelled" {
			t.Fatalf("slot %d reason %q, want cancelled", i, out.Scenarios[i].Reason)
		}
	}
	if st := c.Stats(); st.JobsCancelled != 1 {
		t.Fatalf("cancel not accounted: %+v", st)
	}
}

func TestOldestJobLeasesFirst(t *testing.T) {
	clk := newFakeClock()
	c := testCoordinator(t, clk, nil)
	n1 := register(t, c, "a")
	j1, _, err := c.Submit(testBatch(2), "", "")
	if err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	j2, _, err := c.Submit(testBatch(2), "", "")
	if err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	if j1 == j2 {
		t.Fatalf("duplicate job IDs: %s", j1)
	}
	l := mustLease(t, c, n1, 0)
	if l.JobID != j1 {
		t.Fatalf("first lease from job %s, want oldest %s", l.JobID, j1)
	}
}

func TestLeaseIDsAndNodeIDsAreSequential(t *testing.T) {
	clk := newFakeClock()
	c := testCoordinator(t, clk, nil)
	for i := 1; i <= 3; i++ {
		id := register(t, c, "n")
		if want := fmt.Sprintf("n-%04d", i); id != want {
			t.Fatalf("node id %q, want %q", id, want)
		}
	}
}

// TestStragglerUploadWhilePendingRetiresQueueEntry covers the window between
// lease expiry and re-lease: a straggler body landing while its index sits in
// the pending queue must retire the queue entry, or the index would be
// re-leased over the recorded result and resolve the slot twice (premature
// completion, then a negative open count).
func TestStragglerUploadWhilePendingRetiresQueueEntry(t *testing.T) {
	clk := newFakeClock()
	c := testCoordinator(t, clk, nil)
	n1 := register(t, c, "slow")
	n2 := register(t, c, "healthy")
	_, done, err := c.Submit(testBatch(4), "", "")
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	l1 := mustLease(t, c, n1, 0) // [0,4), then the lease runs out
	clk.Advance(5 * time.Second)
	c.Heartbeat(&HeartbeatRequest{NodeID: n2})
	clk.Advance(6 * time.Second) // TTL (10s) exceeded; indices back in pending
	c.Sweep()

	// The straggler delivers index 0 while it is still queued (not re-leased).
	r0 := resultFor(0)
	resp, err := c.Upload(&UploadRequest{
		NodeID: n1, LeaseID: l1.ID, JobID: l1.JobID, Results: []ScenarioResult{r0},
	})
	if err != nil {
		t.Fatalf("straggler upload: %v", err)
	}
	if resp.Accepted != 1 {
		t.Fatalf("straggler body not accepted: %+v", resp)
	}

	// The next lease must cover only the three unresolved indices.
	l2 := mustLease(t, c, n2, 0)
	if l2.Start != 1 || l2.End != 4 {
		t.Fatalf("re-dispatched lease covers [%d,%d), want [1,4)", l2.Start, l2.End)
	}
	if resp := uploadRange(t, c, n2, l2); resp.Accepted != 3 {
		t.Fatalf("healthy upload: %+v, want 3 accepted", resp)
	}
	select {
	case <-done:
	default:
		t.Fatal("job not complete after all four indices resolved")
	}
	out, _, err := c.Take(l1.JobID)
	if err != nil {
		t.Fatalf("take: %v", err)
	}
	if out.Completed != 4 || out.Failed != 0 {
		t.Fatalf("completed=%d failed=%d, want 4/0", out.Completed, out.Failed)
	}
	// No further work may exist for the collected job.
	if resp, err := c.Lease(&LeaseRequest{NodeID: n2}); err != nil || resp.Lease != nil {
		t.Fatalf("collected job still leasable: %+v err %v", resp.Lease, err)
	}
}

// TestStaleErrorDoesNotFailSlot: a scenario error is only trusted from the
// lease that still owns the slot. A straggler's transient failure arriving
// after expiry must not mark the slot failed — the healthy re-dispatch's
// result wins regardless of interleaving.
func TestStaleErrorDoesNotFailSlot(t *testing.T) {
	clk := newFakeClock()
	c := testCoordinator(t, clk, nil)
	n1 := register(t, c, "flaky")
	n2 := register(t, c, "healthy")
	_, done, err := c.Submit(testBatch(2), "", "")
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	l1 := mustLease(t, c, n1, 0)
	clk.Advance(5 * time.Second)
	c.Heartbeat(&HeartbeatRequest{NodeID: n2})
	clk.Advance(6 * time.Second)
	l2 := mustLease(t, c, n2, 0) // re-dispatch of [0,2)

	// The straggler reports a transient failure for the re-leased slots.
	resp, err := c.Upload(&UploadRequest{
		NodeID: n1, LeaseID: l1.ID, JobID: l1.JobID,
		Results: []ScenarioResult{
			{Index: 0, Error: "context deadline exceeded", Reason: "internal"},
			{Index: 1, Error: "context deadline exceeded", Reason: "internal"},
		},
	})
	if err != nil {
		t.Fatalf("stale error upload: %v", err)
	}
	if resp.Accepted != 0 || resp.Duplicate != 2 {
		t.Fatalf("stale errors not dropped: %+v", resp)
	}
	if st := c.Stats(); st.UploadsStale != 2 {
		t.Fatalf("stale uploads not accounted: %+v", st)
	}

	// The healthy node's bodies land and the batch completes clean.
	uploadRange(t, c, n2, l2)
	select {
	case <-done:
	default:
		t.Fatal("job not complete after healthy upload")
	}
	out, _, err := c.Take(l1.JobID)
	if err != nil {
		t.Fatalf("take: %v", err)
	}
	if out.Completed != 2 || out.Failed != 0 {
		t.Fatalf("completed=%d failed=%d, want 2/0 (stale error leaked)", out.Completed, out.Failed)
	}
}

// TestStaleSkipMarkerDoesNotDuplicatePendingIndex: a skip marker from an
// expired lease whose cache entry vanished must not re-queue an index that is
// already pending — the queue is a set, and a duplicate entry would hand the
// same scenario to two leases.
func TestStaleSkipMarkerDoesNotDuplicatePendingIndex(t *testing.T) {
	clk := newFakeClock()
	cache := newMemCache()
	c := testCoordinator(t, clk, cache)
	n1 := register(t, c, "slow")
	n2 := register(t, c, "healthy")
	_, done, err := c.Submit(testBatch(2), "", "")
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	l1 := mustLease(t, c, n1, 0)
	clk.Advance(5 * time.Second)
	c.Heartbeat(&HeartbeatRequest{NodeID: n2})
	clk.Advance(6 * time.Second)
	c.Sweep() // [0,2) back in pending

	// Straggler skip markers with no cache entries behind them: dropped, not
	// re-queued (the indices are already pending).
	keys := make([]string, 2)
	for i := range keys {
		keys[i], _ = l1.Scenarios[i].CacheKey()
	}
	resp, err := c.Upload(&UploadRequest{
		NodeID: n1, LeaseID: l1.ID, JobID: l1.JobID,
		Results: []ScenarioResult{
			{Index: 0, CacheKey: keys[0], Skipped: true},
			{Index: 1, CacheKey: keys[1], Skipped: true},
		},
	})
	if err != nil {
		t.Fatalf("stale skip upload: %v", err)
	}
	if len(resp.Requeued) != 0 || resp.Duplicate != 2 {
		t.Fatalf("stale skip markers: %+v, want 2 dropped and none requeued", resp)
	}

	// Exactly one lease covers the two indices; a second lease finds nothing.
	l2 := mustLease(t, c, n2, 0)
	if l2.Start != 0 || l2.End != 2 {
		t.Fatalf("re-dispatched lease covers [%d,%d), want [0,2)", l2.Start, l2.End)
	}
	if resp, err := c.Lease(&LeaseRequest{NodeID: n2}); err != nil || resp.Lease != nil {
		t.Fatalf("duplicate pending entry produced a second lease: %+v err %v", resp.Lease, err)
	}
	uploadRange(t, c, n2, l2)
	select {
	case <-done:
	default:
		t.Fatal("job not complete")
	}
}

// TestCacheCheckKeyCapIsEnforced: an oversized cache check is a protocol
// violation with a machine-readable reason, not a cheap way to hammer the
// coordinator's result cache.
func TestCacheCheckKeyCapIsEnforced(t *testing.T) {
	c := testCoordinator(t, newFakeClock(), newMemCache())
	n1 := register(t, c, "a")
	keys := make([]string, MaxCacheCheckKeys+1)
	_, err := c.CacheCheck(&CacheCheckRequest{NodeID: n1, Keys: keys})
	if hetwire.ReasonCode(err) != hetwire.ReasonBadRequest {
		t.Fatalf("oversized cache check: reason %q err %v", hetwire.ReasonCode(err), err)
	}
	if _, err := c.CacheCheck(&CacheCheckRequest{NodeID: n1, Keys: keys[:MaxCacheCheckKeys]}); err != nil {
		t.Fatalf("at-cap cache check rejected: %v", err)
	}
}
