package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"hetwire"
	"hetwire/internal/obs/flight"
	"hetwire/internal/wire"
)

// Options configures a Coordinator.
type Options struct {
	// LeaseSize is the default number of scenarios per work lease (default 8).
	LeaseSize int
	// LeaseTTL is how long a node has to upload a lease's results before its
	// indices are re-dispatched (default 30s).
	LeaseTTL time.Duration
	// Heartbeat is the check-in cadence announced to nodes (default 5s).
	Heartbeat time.Duration
	// DeadAfter is how long a node may stay silent — no heartbeat, lease
	// request, cache check, or upload — before it is declared dead and its
	// leases expire immediately (default 3×Heartbeat).
	DeadAfter time.Duration
	// Poll is the idle-poll hint returned with empty lease responses
	// (default 200ms).
	Poll time.Duration
	// Cache is the federated content-addressed result store: cache checks
	// consult it, uploads populate it, and skip markers are filled from it.
	// The hetwired coordinator passes its own LRU result cache, so cluster
	// results and single-box results share one store. Nil disables
	// federation (every scenario simulates).
	Cache ResultCache
	// Flight, when set, receives lease-lifecycle events (grant, upload,
	// expire) from the coordinator. Nil records nothing.
	Flight *flight.Recorder
	// Logger receives lease lifecycle logs (default: discard).
	Logger *log.Logger
	// Now is the clock (default time.Now); tests inject a fake to drive
	// lease expiry and node death deterministically.
	Now func() time.Time
}

// ResultCache is the coordinator's view of a content-addressed result store.
type ResultCache interface {
	Get(key string) ([]byte, bool)
	Put(key string, body []byte)
}

func (o Options) withDefaults() Options {
	if o.LeaseSize <= 0 {
		o.LeaseSize = 8
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 30 * time.Second
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = 5 * time.Second
	}
	if o.DeadAfter <= 0 {
		o.DeadAfter = 3 * o.Heartbeat
	}
	if o.Poll <= 0 {
		o.Poll = 200 * time.Millisecond
	}
	if o.Logger == nil {
		o.Logger = log.New(discardWriter{}, "", 0)
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

// slot states for one scenario inside a cluster job.
const (
	slotPending = iota // waiting to be leased
	slotLeased         // inside a live lease
	slotDone           // result bytes recorded
	slotFailed         // the node reported a scenario-level error
	slotCancelled
)

// slot is one scenario's state inside a cluster job.
type slot struct {
	state  int
	req    hetwire.RunRequest
	key    string // content-addressed request identity (CacheKey)
	body   []byte
	sum    string // BodySum(body)
	cached bool   // filled via the federated cache rather than a fresh run
	node   string
	errMsg string
	reason string
	// redispatched marks an index whose lease expired at least once; the
	// next lease containing it counts toward the re-dispatch metric.
	redispatched bool
}

// jobState is one batch flowing through the cluster.
type jobState struct {
	id      string
	traceID string
	// tenant is the submitting tenant's name, stamped onto every lease the
	// job produces so node-side lease logs attribute work to its tenant.
	// Accounting (sim-CPU billing, fair-share charging) stays on the
	// coordinator; the name on the wire is observability only.
	tenant  string
	slots   []slot
	pending []int // sorted scenario indices awaiting a lease
	open    int   // slots not yet in a terminal state
	done    chan struct{}
	// spanDur accumulates node-reported per-lease phase durations (ms) by
	// name; the server merges them into the job's span breakdown.
	spanDur map[string]float64
	// fedHits counts slots filled from the federated cache.
	fedHits int
	// nodeEvents holds the flight-recorder events nodes attached to their
	// heartbeats for this job, in arrival order — the coordinator-side index
	// behind cluster-wide causal trace aggregation.
	nodeEvents []flight.Event
}

// nodeState tracks one registered node.
type nodeState struct {
	id       string
	name     string
	caps     NodeCaps
	lastSeen time.Time
	leases   map[string]bool
}

// leaseState is one outstanding work lease.
type leaseState struct {
	id      string
	jobID   string
	nodeID  string
	start   int
	end     int
	expires time.Time
}

// Stats is a point-in-time snapshot of the coordinator's counters, rendered
// by the daemon's /metrics.
type Stats struct {
	NodesAlive        int
	NodesRegistered   uint64 // lifetime registrations
	NodesDead         uint64 // nodes declared dead on missed heartbeats
	LeasesIssued      uint64
	LeasesExpired     uint64
	LeasesOutstanding int
	// ScenariosRedispatched counts scenario-index re-leases after an expiry.
	ScenariosRedispatched uint64
	UploadsAccepted       uint64
	UploadsDuplicate      uint64
	// UploadsStale counts dropped scenario errors and skip markers from leases
	// that no longer owned their slots (expired and possibly re-dispatched):
	// only result bodies are trusted from stale leases, so the batch outcome
	// cannot depend on straggler interleaving.
	UploadsStale uint64
	// UploadConflicts counts duplicate uploads whose bytes disagreed with the
	// recorded result — impossible for deterministic simulations; a non-zero
	// value means a node is misbehaving (first result wins).
	UploadConflicts uint64
	FederatedHits   uint64
	JobsSubmitted   uint64
	JobsCompleted   uint64
	JobsCancelled   uint64
}

// Coordinator is the cluster master: it owns node membership, the lease
// table, and every in-flight cluster job. All methods are safe for
// concurrent use; the HTTP layer in internal/server is a thin JSON shim
// over them.
type Coordinator struct {
	opts Options

	mu        sync.Mutex
	nodes     map[string]*nodeState
	jobs      map[string]*jobState
	leases    map[string]*leaseState
	jobOrder  []string // submission order; leases are filled oldest-first
	nextNode  uint64
	nextJob   uint64
	nextLease uint64
	compat    string
	stats     Stats
}

// New builds a coordinator.
func New(opts Options) *Coordinator {
	return &Coordinator{
		opts:   opts.withDefaults(),
		nodes:  make(map[string]*nodeState),
		jobs:   make(map[string]*jobState),
		leases: make(map[string]*leaseState),
		compat: CompatHash(),
	}
}

// Register admits a node after checking protocol and simulator
// compatibility, assigning its authoritative ID.
func (c *Coordinator) Register(req *RegisterRequest) (*RegisterResponse, error) {
	if req.Protocol != ProtocolVersion {
		return nil, reqErr(ReasonIncompatibleNode,
			"node speaks protocol %d, coordinator speaks %d", req.Protocol, ProtocolVersion)
	}
	if req.CompatHash != c.compat {
		return nil, reqErr(ReasonIncompatibleNode,
			"node compat hash %q does not match coordinator %q (rebuild the node from the same source)",
			req.CompatHash, c.compat)
	}
	name := req.Name
	if name == "" {
		name = "node"
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked(c.opts.Now())
	c.nextNode++
	n := &nodeState{
		id:       fmt.Sprintf("n-%04d", c.nextNode),
		name:     name,
		caps:     req.Caps,
		lastSeen: c.opts.Now(),
		leases:   make(map[string]bool),
	}
	c.nodes[n.id] = n
	c.stats.NodesRegistered++
	c.opts.Logger.Printf("cluster node registered id=%s name=%s gomaxprocs=%d", n.id, n.name, n.caps.GoMaxProcs)
	return &RegisterResponse{
		NodeID:      n.id,
		HeartbeatMS: c.opts.Heartbeat.Milliseconds(),
		LeaseTTLMS:  c.opts.LeaseTTL.Milliseconds(),
		PollMS:      c.opts.Poll.Milliseconds(),
		WireFormats: []string{wire.Format},
	}, nil
}

// Heartbeat refreshes a node's liveness. An unknown node gets Known=false
// rather than an error: after a coordinator restart every node is unknown,
// and the response tells them to re-register.
func (c *Coordinator) Heartbeat(req *HeartbeatRequest) *HeartbeatResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked(c.opts.Now())
	n, ok := c.nodes[req.NodeID]
	if !ok {
		return &HeartbeatResponse{Known: false}
	}
	n.lastSeen = c.opts.Now()
	// Index piggybacked node flight events under the jobs they concern; the
	// node stamps its own name, the job ID routes them. Events for finished
	// (taken) jobs are dropped — there is no record left to attach them to.
	for _, ev := range req.Events {
		if j, ok := c.jobs[ev.Job]; ok {
			j.nodeEvents = append(j.nodeEvents, ev)
		}
	}
	return &HeartbeatResponse{Known: true}
}

// NodeEvents copies the node flight events indexed so far for a live job
// (empty once the job has been taken).
func (c *Coordinator) NodeEvents(jobID string) []flight.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[jobID]
	if !ok {
		return nil
	}
	return append([]flight.Event(nil), j.nodeEvents...)
}

// Lease hands the requesting node the next shard of pending work: up to Max
// (or the default lease size) scenario indices from the oldest job with
// pending work, contiguous when possible.
func (c *Coordinator) Lease(req *LeaseRequest) (*LeaseResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opts.Now()
	c.sweepLocked(now)
	n, ok := c.nodes[req.NodeID]
	if !ok {
		return nil, reqErr(ReasonUnknownNode, "unknown node %q (re-register)", req.NodeID)
	}
	n.lastSeen = now

	size := req.Max
	if size <= 0 || size > c.opts.LeaseSize {
		size = c.opts.LeaseSize
	}
	for _, jobID := range c.jobOrder {
		j, ok := c.jobs[jobID]
		if !ok || len(j.pending) == 0 {
			continue
		}
		// Take the longest contiguous run of pending indices from the front,
		// capped at the lease size: initial dispatch produces pure ranges,
		// re-dispatch after expiry produces the expired range again.
		start := j.pending[0]
		count := 1
		for count < len(j.pending) && count < size && j.pending[count] == start+count {
			count++
		}
		indices := j.pending[:count]
		j.pending = j.pending[count:]

		c.nextLease++
		ls := &leaseState{
			id:      fmt.Sprintf("l-%06d", c.nextLease),
			jobID:   jobID,
			nodeID:  n.id,
			start:   start,
			end:     start + count,
			expires: now.Add(c.opts.LeaseTTL),
		}
		c.leases[ls.id] = ls
		n.leases[ls.id] = true
		scenarios := make([]hetwire.RunRequest, count)
		for i, idx := range indices {
			sl := &j.slots[idx]
			sl.state = slotLeased
			if sl.redispatched {
				c.stats.ScenariosRedispatched++
			}
			scenarios[i] = sl.req
		}
		c.stats.LeasesIssued++
		c.opts.Flight.Record(flight.Event{
			Kind:   flight.KindLeaseGrant,
			Trace:  j.traceID,
			Tenant: j.tenant,
			Job:    jobID,
			Lease:  ls.id,
			Node:   n.id,
			Detail: fmt.Sprintf("range=[%d,%d)", ls.start, ls.end),
		})
		c.opts.Logger.Printf("cluster lease issued id=%s job=%s node=%s range=[%d,%d) tenant=%s trace=%s",
			ls.id, jobID, n.id, ls.start, ls.end, j.tenant, j.traceID)
		return &LeaseResponse{Lease: &Lease{
			ID:        ls.id,
			JobID:     jobID,
			TraceID:   j.traceID,
			Tenant:    j.tenant,
			Start:     ls.start,
			End:       ls.end,
			Scenarios: scenarios,
			TTLMS:     c.opts.LeaseTTL.Milliseconds(),
		}}, nil
	}
	return &LeaseResponse{RetryMS: c.opts.Poll.Milliseconds()}, nil
}

// CacheCheck answers the federated cache index query: Known[i] reports
// whether Keys[i] is resident in the coordinator's result cache right now.
// A positive answer is a hint, not a promise — the entry may be evicted
// before the node's skip marker arrives, in which case the index is
// re-queued — so correctness never depends on the answer.
func (c *Coordinator) CacheCheck(req *CacheCheckRequest) (*CacheCheckResponse, error) {
	if len(req.Keys) > MaxCacheCheckKeys {
		return nil, reqErr(hetwire.ReasonBadRequest,
			"cache check carries %d keys, limit %d (split the check)", len(req.Keys), MaxCacheCheckKeys)
	}
	c.mu.Lock()
	now := c.opts.Now()
	c.sweepLocked(now)
	n, ok := c.nodes[req.NodeID]
	if ok {
		n.lastSeen = now
	}
	cache := c.opts.Cache
	c.mu.Unlock()
	if !ok {
		return nil, reqErr(ReasonUnknownNode, "unknown node %q (re-register)", req.NodeID)
	}
	known := make([]bool, len(req.Keys))
	if cache != nil {
		for i, k := range req.Keys {
			_, known[i] = cache.Get(k)
		}
	}
	return &CacheCheckResponse{Known: known}, nil
}

// Upload records a lease's results. It is deliberately forgiving about
// result *bodies*: a body for an expired or unknown lease is still accepted
// (the work is correct whoever did it — results are content-addressed),
// already-filled slots count as duplicates and change nothing, and a
// finished job answers JobDone so stragglers stop resending. Scenario
// *errors* are the exception: only the lease that still owns the slot may
// fail it, because a straggler's transient error overriding a healthy
// re-dispatch would make the batch outcome depend on interleaving.
func (c *Coordinator) Upload(req *UploadRequest) (*UploadResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opts.Now()
	c.sweepLocked(now)
	n, ok := c.nodes[req.NodeID]
	if !ok {
		return nil, reqErr(ReasonUnknownNode, "unknown node %q (re-register)", req.NodeID)
	}
	n.lastSeen = now
	// owned remembers the index range this upload's lease still held on
	// arrival. An expired lease (or one belonging to another node) owns
	// nothing: its scenario errors and requeue requests are stale.
	ownStart, ownEnd := 0, 0
	if ls, ok := c.leases[req.LeaseID]; ok && ls.nodeID == n.id {
		ownStart, ownEnd = ls.start, ls.end
		c.releaseLeaseLocked(ls)
	}
	owned := func(idx int) bool { return idx >= ownStart && idx < ownEnd }
	j, ok := c.jobs[req.JobID]
	if !ok {
		return &UploadResponse{JobDone: true}, nil
	}
	resp := &UploadResponse{}
	for i := range req.Results {
		r := &req.Results[i]
		if r.Index < 0 || r.Index >= len(j.slots) {
			return nil, reqErr(hetwire.ReasonBadRequest,
				"result index %d out of range for job %s (%d scenarios)", r.Index, j.id, len(j.slots))
		}
		// Normalise the result to its canonical wire frame before any
		// comparison or store: the slot table, the federated cache, and the
		// idempotency sums all speak frames, so a JSON straggler and a binary
		// re-dispatch of the same scenario collide on identical bytes.
		frame, err := resultFrame(r)
		if err != nil {
			return nil, err
		}
		sl := &j.slots[r.Index]
		// A straggler result can land while its index sits in the pending
		// queue (lease expired, index not yet re-leased). Accepting it must
		// also retire the queue entry, or the index would be re-leased over
		// the recorded result and resolve — decrementing j.open — twice.
		wasPending := sl.state == slotPending
		settle := func() {
			j.open--
			if wasPending {
				j.pending = removeSorted(j.pending, r.Index)
			}
		}
		switch {
		case sl.state == slotDone || sl.state == slotFailed || sl.state == slotCancelled:
			// Straggler after re-dispatch: verify the duplicate agrees.
			if len(frame) > 0 && sl.state == slotDone && BodySum(frame) != sl.sum {
				c.stats.UploadConflicts++
				c.opts.Logger.Printf("cluster upload CONFLICT job=%s index=%d node=%s (first result kept)",
					j.id, r.Index, n.id)
			} else {
				c.stats.UploadsDuplicate++
			}
			resp.Duplicate++
		case r.Error != "":
			if !owned(r.Index) {
				// Stale error from an expired lease: the slot is pending or
				// re-leased, and a healthy node's result must win. Drop it.
				c.stats.UploadsStale++
				resp.Duplicate++
				continue
			}
			sl.state = slotFailed
			sl.errMsg = r.Error
			sl.reason = r.Reason
			sl.node = n.id
			settle()
			c.stats.UploadsAccepted++
			resp.Accepted++
		case r.Skipped:
			// Fill from the federated cache; if the entry vanished, re-queue —
			// but only a slot this lease still owns may re-enter the queue. A
			// stale skip marker's slot is already pending or owned by another
			// live lease, and queueing it again would duplicate the index.
			body, ok := c.cacheGet(sl.key)
			if ok && wire.ValidateResultFrame(body) != nil {
				// The cached entry is not a valid result frame (corrupt, or a
				// foreign value under our key): treat it as evicted rather
				// than let bad bytes into the slot table.
				ok = false
			}
			if !ok {
				if owned(r.Index) {
					sl.state = slotPending
					j.pending = insertSorted(j.pending, r.Index)
					resp.Requeued = append(resp.Requeued, r.Index)
				} else {
					c.stats.UploadsStale++
					resp.Duplicate++
				}
				continue
			}
			sl.state = slotDone
			sl.body = body
			sl.sum = BodySum(body)
			sl.cached = true
			sl.node = n.id
			settle()
			j.fedHits++
			c.stats.FederatedHits++
			c.stats.UploadsAccepted++
			resp.Accepted++
		case len(frame) == 0:
			return nil, reqErr(hetwire.ReasonBadRequest,
				"result index %d carries neither body, error, nor skip marker", r.Index)
		default:
			sl.state = slotDone
			sl.body = append([]byte(nil), frame...)
			sl.sum = BodySum(sl.body)
			sl.node = n.id
			settle()
			c.stats.UploadsAccepted++
			resp.Accepted++
			if c.opts.Cache != nil && sl.key != "" {
				c.opts.Cache.Put(sl.key, sl.body)
			}
		}
	}
	for _, sp := range req.Spans {
		j.spanDur[sp.Name] += sp.DurMS
	}
	c.opts.Flight.Record(flight.Event{
		Kind:   flight.KindLeaseUpload,
		Trace:  j.traceID,
		Tenant: j.tenant,
		Job:    j.id,
		Lease:  req.LeaseID,
		Node:   n.id,
		Detail: fmt.Sprintf("accepted=%d duplicate=%d requeued=%d", resp.Accepted, resp.Duplicate, len(resp.Requeued)),
	})
	if j.open == 0 {
		// A straggler upload can land after the job already completed (every
		// result a duplicate); complete exactly once.
		select {
		case <-j.done:
		default:
			c.completeLocked(j)
		}
		resp.JobDone = true
	}
	return resp, nil
}

// resultFrame converts one uploaded result to its canonical wire frame. A
// binary upload's frame is validated (CRC, strict payload decode, summary
// agreement) and used as-is; a JSON body is verified against its declared
// sha256 (transport integrity for the debug encoding) and re-encoded
// canonically. Error and skip markers carry no frame and yield nil.
func resultFrame(r *ScenarioResult) ([]byte, error) {
	if len(r.Frame) > 0 {
		if err := wire.ValidateResultFrame(r.Frame); err != nil {
			return nil, reqErr(hetwire.ReasonBadRequest, "result index %d frame rejected: %v", r.Index, err)
		}
		return r.Frame, nil
	}
	if len(r.Body) == 0 {
		return nil, nil
	}
	if r.BodySHA256 != "" && BodySum(r.Body) != r.BodySHA256 {
		return nil, reqErr(hetwire.ReasonBadRequest,
			"result index %d body does not match its declared sha256 (corrupt upload)", r.Index)
	}
	var resp hetwire.RunResponse
	if err := json.Unmarshal(r.Body, &resp); err != nil {
		return nil, reqErr(hetwire.ReasonBadRequest, "result index %d body is not a run response: %v", r.Index, err)
	}
	return wire.EncodeRunResult(&resp)
}

// cacheGet reads the federated cache. Called with c.mu held; the cache has
// its own lock but never calls back into the coordinator.
func (c *Coordinator) cacheGet(key string) ([]byte, bool) {
	if c.opts.Cache == nil || key == "" {
		return nil, false
	}
	return c.opts.Cache.Get(key)
}

// Submit expands and registers a batch as a cluster job on behalf of the
// named tenant ("" for pre-tenancy callers and open mode). The returned
// channel closes when every scenario reaches a terminal state (or the job
// is cancelled); collect the outcome with Take.
func (c *Coordinator) Submit(batch *hetwire.BatchRequest, traceID, tenant string) (jobID string, done <-chan struct{}, err error) {
	if err := batch.Validate(); err != nil {
		return "", nil, err
	}
	reqs, err := batch.Expand()
	if err != nil {
		return "", nil, err
	}
	j := &jobState{
		traceID: traceID,
		tenant:  tenant,
		slots:   make([]slot, len(reqs)),
		pending: make([]int, len(reqs)),
		open:    len(reqs),
		done:    make(chan struct{}),
		spanDur: make(map[string]float64),
	}
	for i := range reqs {
		key, err := reqs[i].CacheKey()
		if err != nil {
			return "", nil, err
		}
		j.slots[i] = slot{state: slotPending, req: reqs[i], key: key}
		j.pending[i] = i
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextJob++
	j.id = fmt.Sprintf("cj-%06d", c.nextJob)
	c.jobs[j.id] = j
	c.jobOrder = append(c.jobOrder, j.id)
	c.stats.JobsSubmitted++
	c.opts.Logger.Printf("cluster job submitted id=%s scenarios=%d tenant=%s trace=%s", j.id, len(reqs), tenant, traceID)
	return j.id, j.done, nil
}

// Cancel resolves a job's unfinished scenarios as cancelled and closes its
// done channel. Already-recorded results are kept (Take still returns them).
func (c *Coordinator) Cancel(jobID string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[jobID]
	if !ok {
		return
	}
	select {
	case <-j.done:
		return // already complete
	default:
	}
	for i := range j.slots {
		sl := &j.slots[i]
		if sl.state == slotPending || sl.state == slotLeased {
			sl.state = slotCancelled
			j.open--
		}
	}
	j.pending = nil
	c.stats.JobsCancelled++
	c.opts.Logger.Printf("cluster job cancelled id=%s", j.id)
	close(j.done)
}

// completeLocked finishes a job whose last open slot just resolved.
func (c *Coordinator) completeLocked(j *jobState) {
	c.stats.JobsCompleted++
	c.opts.Logger.Printf("cluster job complete id=%s scenarios=%d federated_hits=%d", j.id, len(j.slots), j.fedHits)
	close(j.done)
}

// takeJob removes a job record from the coordinator and returns it.
func (c *Coordinator) takeJob(jobID string) (*jobState, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[jobID]
	if !ok {
		return nil, false
	}
	delete(c.jobs, jobID)
	for i, id := range c.jobOrder {
		if id == jobID {
			c.jobOrder = append(c.jobOrder[:i], c.jobOrder[i+1:]...)
			break
		}
	}
	return j, true
}

// Take collects a finished (or cancelled) job's merged response and removes
// the job from the coordinator. Scenario results land at their expansion
// index; node identity is an execution detail and does not appear in the
// response, which is what makes the cluster path bit-compatible with local
// batch execution. This is the decoded (debug) view; the serving path uses
// TakeFrames, which never decodes a result.
func (c *Coordinator) Take(jobID string) (*hetwire.BatchResponse, map[string]float64, error) {
	j, ok := c.takeJob(jobID)
	if !ok {
		return nil, nil, reqErr(hetwire.ReasonBadRequest, "unknown cluster job %q", jobID)
	}
	out := &hetwire.BatchResponse{Scenarios: make([]hetwire.BatchScenario, len(j.slots))}
	for i := range j.slots {
		sl := &j.slots[i]
		sc := &out.Scenarios[i]
		sc.Index = i
		sc.Request = sl.req
		switch sl.state {
		case slotDone:
			resp, err := wire.DecodeRunResult(sl.body)
			if err != nil {
				return nil, nil, fmt.Errorf("cluster: decoding scenario %d result: %w", i, err)
			}
			sc.Response = resp
			sc.Cached = sl.cached
			if sl.cached {
				out.CacheHits++
			}
			out.Completed++
		case slotFailed:
			sc.Error = sl.errMsg
			sc.Reason = sl.reason
			if sc.Reason == "" {
				sc.Reason = hetwire.ReasonInvalidRequest
			}
			out.Failed++
		default: // cancelled (or, impossibly, still open)
			sc.Error = "cancelled"
			sc.Reason = "cancelled"
			out.Failed++
		}
	}
	return out, j.spanDur, nil
}

// FrameOutcome summarises one scenario's terminal state for progress
// reporting next to its wire frame, derived from the slot table and the
// frame header alone — no result payload is decoded.
type FrameOutcome struct {
	IPC    float64
	Cached bool
	Error  string
}

// TakeFrames collects a finished (or cancelled) job as per-scenario wire
// frames and removes the job from the coordinator. Recorded result frames
// are embedded verbatim — this path never decodes a result — so the batch
// stream assembled from these frames is bit-identical to local batch
// execution. Frames come back in expansion order with one outcome summary
// each, plus the node-reported span durations.
func (c *Coordinator) TakeFrames(jobID string) ([][]byte, []FrameOutcome, map[string]float64, error) {
	j, ok := c.takeJob(jobID)
	if !ok {
		return nil, nil, nil, reqErr(hetwire.ReasonBadRequest, "unknown cluster job %q", jobID)
	}
	frames := make([][]byte, len(j.slots))
	outcomes := make([]FrameOutcome, len(j.slots))
	for i := range j.slots {
		sl := &j.slots[i]
		sc := &wire.Scenario{Index: i, Request: sl.req}
		switch sl.state {
		case slotDone:
			h, err := wire.PeekHeader(sl.body)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("cluster: scenario %d result frame: %w", i, err)
			}
			sc.Result = sl.body
			sc.Cached = sl.cached
			outcomes[i] = FrameOutcome{IPC: h.SummaryFloat(), Cached: sl.cached}
		case slotFailed:
			sc.Error = sl.errMsg
			sc.Reason = sl.reason
			if sc.Reason == "" {
				sc.Reason = hetwire.ReasonInvalidRequest
			}
			outcomes[i] = FrameOutcome{Error: sc.Error}
		default: // cancelled (or, impossibly, still open)
			sc.Error = "cancelled"
			sc.Reason = "cancelled"
			outcomes[i] = FrameOutcome{Error: "cancelled"}
		}
		fr, err := wire.AppendScenario(nil, sc)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("cluster: encoding scenario %d frame: %w", i, err)
		}
		frames[i] = fr
	}
	return frames, outcomes, j.spanDur, nil
}

// AwaitJob blocks until the job completes, ctx ends, or — because lease
// expiry and node death are only detected when the clock is consulted — a
// periodic sweep tick fires. Cancelling ctx cancels the job.
func (c *Coordinator) AwaitJob(ctx context.Context, jobID string, done <-chan struct{}) error {
	tick := time.NewTicker(c.sweepInterval())
	defer tick.Stop()
	for {
		select {
		case <-done:
			return nil
		case <-ctx.Done():
			c.Cancel(jobID)
			return ctx.Err()
		case <-tick.C:
			c.Sweep()
		}
	}
}

// sweepInterval is how often AwaitJob forces a sweep: often enough to catch
// expiries promptly, bounded below for tiny test TTLs.
func (c *Coordinator) sweepInterval() time.Duration {
	d := c.opts.LeaseTTL / 4
	if d < 10*time.Millisecond {
		d = 10 * time.Millisecond
	}
	if d > time.Second {
		d = time.Second
	}
	return d
}

// Sweep runs one expiry pass with the coordinator's clock: leases past
// their deadline return their unfinished indices to the pending queue, and
// nodes silent past DeadAfter are declared dead (expiring their leases).
func (c *Coordinator) Sweep() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked(c.opts.Now())
}

// sweepLocked is Sweep with c.mu held; every protocol entry point calls it
// first, so expiry needs no background goroutine to make progress while
// traffic flows.
func (c *Coordinator) sweepLocked(now time.Time) {
	for id, n := range c.nodes {
		if now.Sub(n.lastSeen) > c.opts.DeadAfter {
			for lid := range n.leases {
				if ls, ok := c.leases[lid]; ok {
					c.expireLeaseLocked(ls, "node dead")
				}
			}
			delete(c.nodes, id)
			c.stats.NodesDead++
			c.opts.Logger.Printf("cluster node dead id=%s name=%s (silent for %s)", id, n.name, now.Sub(n.lastSeen))
		}
	}
	for _, ls := range c.leases {
		if now.After(ls.expires) {
			c.expireLeaseLocked(ls, "deadline passed")
		}
	}
}

// expireLeaseLocked returns a lease's unfinished indices to the pending
// queue (straggler re-dispatch) and drops the lease record.
func (c *Coordinator) expireLeaseLocked(ls *leaseState, why string) {
	j, ok := c.jobs[ls.jobID]
	requeued := 0
	if ok {
		for idx := ls.start; idx < ls.end; idx++ {
			sl := &j.slots[idx]
			if sl.state == slotLeased {
				sl.state = slotPending
				sl.redispatched = true
				j.pending = insertSorted(j.pending, idx)
				requeued++
			}
		}
	}
	c.releaseLeaseLocked(ls)
	c.stats.LeasesExpired++
	ev := flight.Event{
		Kind:   flight.KindLeaseExpire,
		Job:    ls.jobID,
		Lease:  ls.id,
		Node:   ls.nodeID,
		Reason: why,
		Detail: fmt.Sprintf("requeued=%d", requeued),
	}
	if ok {
		ev.Trace = j.traceID
		ev.Tenant = j.tenant
	}
	c.opts.Flight.Record(ev)
	c.opts.Logger.Printf("cluster lease expired id=%s job=%s node=%s requeued=%d (%s)",
		ls.id, ls.jobID, ls.nodeID, requeued, why)
}

// releaseLeaseLocked drops a lease record without touching slot state.
func (c *Coordinator) releaseLeaseLocked(ls *leaseState) {
	delete(c.leases, ls.id)
	if n, ok := c.nodes[ls.nodeID]; ok {
		delete(n.leases, ls.id)
	}
}

// insertSorted inserts idx into the sorted index queue, keeping expansion
// order: re-dispatched work is handed out lowest-index-first just like the
// initial sharding. The queue is a set — an index already present is left
// alone, so no interleaving can make the same scenario leasable twice.
func insertSorted(s []int, idx int) []int {
	i := sort.SearchInts(s, idx)
	if i < len(s) && s[i] == idx {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = idx
	return s
}

// removeSorted deletes idx from the sorted index queue if present: a slot
// resolved while sitting in the queue (straggler upload between lease expiry
// and re-lease) must not be handed out again.
func removeSorted(s []int, idx int) []int {
	i := sort.SearchInts(s, idx)
	if i < len(s) && s[i] == idx {
		return append(s[:i], s[i+1:]...)
	}
	return s
}

// NodeInfo is one registered node in the coordinator's listing.
type NodeInfo struct {
	ID       string    `json:"id"`
	Name     string    `json:"name"`
	Caps     NodeCaps  `json:"caps"`
	Leases   int       `json:"leases"`
	LastSeen time.Time `json:"last_seen"`
}

// Nodes lists the currently-registered nodes, ordered by ID.
func (c *Coordinator) Nodes() []NodeInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]NodeInfo, 0, len(c.nodes))
	for _, n := range c.nodes {
		out = append(out, NodeInfo{ID: n.id, Name: n.name, Caps: n.caps, Leases: len(n.leases), LastSeen: n.lastSeen})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Stats snapshots the coordinator counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.NodesAlive = len(c.nodes)
	st.LeasesOutstanding = len(c.leases)
	return st
}
