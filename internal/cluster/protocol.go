// Package cluster is the distributed sweep fabric: a coordinator that
// expands BatchRequest sweeps in canonical order, shards the scenario index
// space into bounded work leases, and hands them to registered worker nodes
// over a small authenticated HTTP/JSON protocol, plus the node agent that
// pulls leases, simulates, and uploads content-addressed results.
//
// Determinism contract: the coordinator expands each batch exactly once
// (hetwire.BatchRequest.Expand) and every scenario result is addressed by
// its expansion index. A scenario's result bytes are a pure function of its
// RunRequest (simulations are deterministic and json.Marshal of the same
// response struct is byte-stable), so the assembled BatchResponse is
// bit-identical regardless of node count, lease size, which node ran which
// range, or how lease expiry and re-dispatch interleaved. Duplicate uploads
// — a straggler finishing after its lease was re-dispatched — are no-ops by
// construction: the slot is already filled with the same bytes. Scenario
// errors are not content-addressed, so they are only trusted from the lease
// that still owns the slot; a straggler's stale error is dropped rather than
// allowed to override a healthy re-dispatch.
//
// Robustness contract: leases carry deadlines; an expired lease returns its
// unfinished indices to the pending queue for another node (straggler
// re-dispatch). Nodes that miss enough heartbeats are declared dead and
// their leases expire immediately. A node checks the coordinator's
// federated result-cache index before simulating and skips scenarios whose
// results are already known; uploaded results populate the coordinator's
// content-addressed cache, so cluster work and single-box work share one
// result store.
package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"hetwire"
	"hetwire/internal/obs/flight"
)

// ProtocolVersion is bumped on any incompatible change to the wire types or
// lease semantics; register rejects mismatched nodes.
const ProtocolVersion = 1

// Machine-readable reason codes specific to the cluster protocol. They ride
// hetwire.RequestError, so hetwire.ReasonCode extracts them uniformly and
// the daemon returns them in error bodies next to the human message.
const (
	// ReasonUnauthorized: missing or wrong cluster token.
	ReasonUnauthorized = "unauthorized"
	// ReasonUnknownNode: the node ID is not registered (or was declared dead);
	// the node must re-register.
	ReasonUnknownNode = "unknown_node"
	// ReasonIncompatibleNode: protocol version or simulator compatibility
	// fingerprint mismatch — results from this node could not be trusted to
	// be bit-identical.
	ReasonIncompatibleNode = "incompatible_node"
	// ReasonClusterDisabled: the daemon is not running as a coordinator.
	ReasonClusterDisabled = "cluster_disabled"
)

// CompatHash is the simulator-compatibility fingerprint exchanged at
// registration: the canonical ConfigHash of the default machine plus the
// protocol version. Two builds agree exactly when their default
// configuration serializes identically — a cheap, content-addressed proxy
// for "same simulator semantics" that catches config-schema drift without a
// hand-maintained version number.
func CompatHash() string {
	h, err := hetwire.ConfigHash(hetwire.DefaultConfig())
	if err != nil {
		// The default config always has a canonical form.
		panic("cluster: default config has no canonical hash: " + err.Error())
	}
	return fmt.Sprintf("v%d/%s", ProtocolVersion, h)
}

// NodeCaps describes a worker node's execution capacity, reported at
// registration and surfaced in the coordinator's node listing.
type NodeCaps struct {
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GoVersion  string `json:"go_version,omitempty"`
}

// RegisterRequest announces a node to the coordinator.
type RegisterRequest struct {
	// Name is a human-readable node label (hostname-like); the coordinator
	// assigns the authoritative NodeID.
	Name string `json:"name"`
	// Protocol is the node's ProtocolVersion.
	Protocol int `json:"protocol"`
	// CompatHash is the node's simulator-compatibility fingerprint; it must
	// equal the coordinator's own (see CompatHash).
	CompatHash string   `json:"compat_hash"`
	Caps       NodeCaps `json:"caps"`
}

// RegisterResponse carries the assigned identity and the cadence the
// coordinator expects.
type RegisterResponse struct {
	NodeID string `json:"node_id"`
	// HeartbeatMS is how often the node must check in; missing several in a
	// row declares the node dead.
	HeartbeatMS int64 `json:"heartbeat_ms"`
	// LeaseTTLMS is the work-lease deadline the coordinator will stamp on
	// leases; a node that cannot finish a lease within it should ask for
	// smaller leases (Max on LeaseRequest).
	LeaseTTLMS int64 `json:"lease_ttl_ms"`
	// PollMS is the suggested idle poll interval when no work is available.
	PollMS int64 `json:"poll_ms"`
	// WireFormats lists the binary upload encodings the coordinator accepts
	// (e.g. "hetwire-bin/v1"). A node that recognises one uploads binary
	// result frames under that content type; otherwise it falls back to the
	// JSON upload body, which every coordinator accepts.
	WireFormats []string `json:"wire_formats,omitempty"`
}

// HeartbeatRequest is the periodic liveness check-in. Events optionally
// piggybacks the node's flight-recorder drain: events recorded since the
// last acknowledged heartbeat, for the coordinator to index per job. The
// field is additive — old nodes omit it, old coordinators ignore it — and
// rides the JSON heartbeat precisely so the binary upload format (and its
// golden-wire fixtures) stays untouched.
type HeartbeatRequest struct {
	NodeID string         `json:"node_id"`
	Events []flight.Event `json:"events,omitempty"`
}

// HeartbeatResponse acknowledges a heartbeat. Known=false tells the node the
// coordinator no longer recognises it (restart, or it was declared dead);
// the node must re-register before asking for work.
type HeartbeatResponse struct {
	Known bool `json:"known"`
}

// LeaseRequest is pull-based work acquisition: a node asks for up to Max
// scenarios (0 = the coordinator's default lease size).
type LeaseRequest struct {
	NodeID string `json:"node_id"`
	Max    int    `json:"max,omitempty"`
}

// LeaseResponse carries at most one lease; a nil Lease means no work is
// pending and the node should poll again after RetryMS.
type LeaseResponse struct {
	Lease   *Lease `json:"lease,omitempty"`
	RetryMS int64  `json:"retry_ms,omitempty"`
}

// Lease is one contiguous shard of a batch's scenario index space, assigned
// to one node until its deadline. Scenarios[i] is the expanded RunRequest
// for absolute index Start+i; shipping the expanded requests (rather than
// the sweep axes) makes the node's view of the work independent of its own
// expansion code.
type Lease struct {
	ID    string `json:"id"`
	JobID string `json:"job_id"`
	// TraceID is the request-trace identifier of the originating batch job;
	// the node stamps it into the simulation context and its lease events so
	// one sweep can be followed coordinator -> node -> simulator.
	TraceID string `json:"trace_id,omitempty"`
	// Tenant names the tenant the originating job was submitted by; the node
	// copies it into its lease events so node-side logs attribute work to
	// tenants. Empty for pre-tenancy coordinators and open mode (the field is
	// additive — old nodes ignore it, old coordinators omit it).
	Tenant string `json:"tenant,omitempty"`
	// Start (inclusive) and End (exclusive) bound the absolute scenario
	// indices this lease covers.
	Start int `json:"start"`
	End   int `json:"end"`
	// Scenarios holds the expanded requests for [Start, End).
	Scenarios []hetwire.RunRequest `json:"scenarios"`
	// TTLMS is the lease deadline: results uploaded after it may find their
	// indices re-dispatched (uploads stay idempotent either way).
	TTLMS int64 `json:"ttl_ms"`
}

// MaxCacheCheckKeys bounds one CacheCheckRequest: each key costs a locked
// cache lookup, and a node only ever needs one lease's worth of keys per
// check, so a huge batch is a protocol violation rather than a workload.
const MaxCacheCheckKeys = 4096

// CacheCheckRequest asks the coordinator's federated result-cache index
// which content-addressed keys are already known. Len(Keys) must not exceed
// MaxCacheCheckKeys; split larger checks.
type CacheCheckRequest struct {
	NodeID string   `json:"node_id"`
	Keys   []string `json:"keys"`
}

// CacheCheckResponse answers a cache check: Known[i] reports whether Keys[i]
// is resident in the coordinator's result cache. A node skips simulating
// known scenarios and uploads a skip marker instead; the coordinator fills
// those slots from its cache.
type CacheCheckResponse struct {
	Known []bool `json:"known"`
}

// ScenarioResult is one scenario's outcome inside an upload, addressed by
// its absolute expansion index.
type ScenarioResult struct {
	Index int `json:"index"`
	// CacheKey is the scenario's content-addressed request identity
	// (hetwire.RunRequest.CacheKey); the coordinator uses it to populate the
	// federated cache and to fill skipped slots.
	CacheKey string `json:"cache_key,omitempty"`
	// Body is the JSON-marshalled hetwire.RunResponse for completed
	// scenarios uploaded in the JSON (debug/fallback) encoding.
	Body json.RawMessage `json:"body,omitempty"`
	// Frame is the binary wire frame (wire.EncodeRunResult) for completed
	// scenarios uploaded in the hetwire-bin encoding. It never rides the
	// JSON body — the binary upload path populates it directly — and exactly
	// one of Frame, Body, Error, or Skipped is set per result.
	Frame []byte `json:"-"`
	// BodySHA256 is the hex SHA-256 of Body, verified by the coordinator on
	// receipt (transport integrity) and compared on duplicate uploads (the
	// idempotency check).
	BodySHA256 string `json:"body_sha256,omitempty"`
	// Skipped marks a scenario the node did not simulate because the
	// federated cache check reported its key as known.
	Skipped bool `json:"skipped,omitempty"`
	// Error/Reason report a scenario that failed on the node (isolated to
	// its slot, like local batch execution).
	Error  string `json:"error,omitempty"`
	Reason string `json:"reason,omitempty"`
}

// Span is a node-side per-lease phase timing, merged by name into the
// originating job's span breakdown by the coordinator.
type Span struct {
	Name  string  `json:"name"`
	DurMS float64 `json:"dur_ms"`
}

// Node-side lease phase names.
const (
	SpanCacheCheck = "node_cache_check"
	SpanSim        = "node_sim"
	SpanUpload     = "node_upload"
)

// UploadRequest delivers a lease's results. Uploads are idempotent: a result
// for an already-filled slot whose bytes match is counted as a duplicate and
// otherwise ignored, so a straggler whose lease was re-dispatched cannot
// disturb the batch.
type UploadRequest struct {
	NodeID  string           `json:"node_id"`
	LeaseID string           `json:"lease_id"`
	JobID   string           `json:"job_id"`
	Results []ScenarioResult `json:"results"`
	Spans   []Span           `json:"spans,omitempty"`
}

// UploadResponse summarises how an upload landed.
type UploadResponse struct {
	// Accepted counts results that filled a previously-unfilled slot.
	Accepted int `json:"accepted"`
	// Duplicate counts results whose slot was already filled identically
	// (straggler after re-dispatch) — a no-op by design.
	Duplicate int `json:"duplicate"`
	// Requeued lists skip-marker indices the coordinator could not fill
	// because the cached entry was evicted between check and upload; they
	// return to the pending queue for a future lease.
	Requeued []int `json:"requeued,omitempty"`
	// JobDone reports that the job is no longer live (completed, cancelled,
	// or already collected); the node should drop any remaining state for it.
	JobDone bool `json:"job_done"`
}

// BodySum is the content hash used for upload idempotency checks: hex
// SHA-256 of the marshalled result body.
func BodySum(body []byte) string {
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:])
}

// reqErr builds a hetwire.RequestError with a cluster reason code.
func reqErr(code, format string, args ...any) error {
	return &hetwire.RequestError{Code: code, Err: fmt.Errorf("cluster: "+format, args...)}
}
