// Package node is the worker side of the distributed sweep fabric: an agent
// that registers with a hetwired coordinator, heartbeats, pulls work leases,
// checks the coordinator's federated result-cache index to skip
// already-known scenarios, simulates the rest through the shared CPU-token
// batch engine, and uploads content-addressed results.
//
// The agent lives in its own package (rather than in internal/cluster)
// because it builds on internal/client, which imports internal/server, which
// imports internal/cluster for the coordinator — keeping the protocol and
// coordinator dependency-light while the agent reuses the client's backoff,
// Retry-After, and circuit-breaker policies unchanged.
package node

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"sync"
	"time"

	"hetwire"
	"hetwire/internal/batch"
	"hetwire/internal/client"
	"hetwire/internal/cluster"
	"hetwire/internal/obs"
	"hetwire/internal/obs/flight"
	"hetwire/internal/wire"
)

// Options configures a node agent.
type Options struct {
	// Coordinator is the coordinator daemon's base URL,
	// e.g. "http://127.0.0.1:8677".
	Coordinator string
	// Token is the shared cluster secret, sent as a bearer token.
	Token string
	// Name is the human-readable node label (default "node").
	Name string
	// Parallelism bounds concurrent scenario simulations within a lease
	// (default: the CPU token-pool capacity).
	Parallelism int
	// MaxLease asks the coordinator for at most this many scenarios per lease
	// (0 = the coordinator's default).
	MaxLease int
	// Client optionally overrides the HTTP client; by default one is built
	// from Coordinator and Token with the standard retry policy.
	Client *client.Client
	// Logger receives node lifecycle logs (default: discard).
	Logger *log.Logger
	// EventLog, when non-nil, receives one obs.LeaseEvent JSONL record per
	// completed (or aborted) lease.
	EventLog io.Writer
	// Flight, when non-nil, records the node's operational events (lease
	// start, per-phase spans) and drains them into heartbeat traffic so the
	// coordinator can index them per job for cluster-wide trace aggregation.
	Flight *flight.Recorder
	// OnLease, when non-nil, observes each lease as it is received, before
	// any work happens. Tests use it to kill the node mid-lease.
	OnLease func(lease *cluster.Lease)
}

func (o Options) withDefaults() Options {
	if o.Name == "" {
		o.Name = "node"
	}
	if o.Logger == nil {
		o.Logger = log.New(io.Discard, "", 0)
	}
	if o.Client == nil {
		o.Client = client.New(client.Options{BaseURL: o.Coordinator, AuthToken: o.Token})
	}
	return o
}

// agent is the running node's state shared between the main loop and the
// heartbeat goroutine.
type agent struct {
	opts Options
	cl   *client.Client

	mu      sync.Mutex
	nodeID  string
	hbEvery time.Duration
	poll    time.Duration
	needReg bool // heartbeat saw Known=false: re-register before next lease
	// wireOK records that the coordinator advertised the binary wire format
	// at registration: results are then encoded as wire frames and uploads go
	// out binary; otherwise the JSON upload body is used.
	wireOK bool
	// flightSent is the highest flight-recorder sequence number the
	// coordinator has acknowledged receiving (via a successful heartbeat);
	// the next heartbeat drains everything after it.
	flightSent uint64
}

// Run operates one node against the coordinator until ctx ends. It returns
// ctx's error on shutdown, or a terminal error if the coordinator rejects
// the node as incompatible (retrying cannot help).
func Run(ctx context.Context, opts Options) error {
	a := &agent{opts: opts.withDefaults()}
	a.cl = a.opts.Client
	if err := a.register(ctx); err != nil {
		return err
	}

	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	var hbDone sync.WaitGroup
	hbDone.Add(1)
	go func() {
		defer hbDone.Done()
		a.heartbeatLoop(hbCtx)
	}()
	defer hbDone.Wait()

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		a.mu.Lock()
		reReg := a.needReg
		a.mu.Unlock()
		if reReg {
			if err := a.register(ctx); err != nil {
				return err
			}
		}
		lease, retry, err := a.lease(ctx)
		if err != nil {
			if terminal(ctx, err) {
				return err
			}
			a.opts.Logger.Printf("node lease request failed (will retry): %v", err)
			if err := sleepCtx(ctx, a.pollInterval()); err != nil {
				return err
			}
			continue
		}
		if lease == nil {
			if err := sleepCtx(ctx, retry); err != nil {
				return err
			}
			continue
		}
		if a.opts.OnLease != nil {
			a.opts.OnLease(lease)
		}
		if err := a.runLease(ctx, lease); err != nil {
			if terminal(ctx, err) {
				return err
			}
			a.opts.Logger.Printf("node lease %s failed (will continue): %v", lease.ID, err)
		}
	}
}

// register announces the node and records the assigned identity and cadence.
// The register POST carries an idempotency key so transport failures retry;
// the coordinator does not deduplicate registrations, but a duplicate only
// leaves a zombie node record that expires on missed heartbeats.
func (a *agent) register(ctx context.Context) error {
	req := cluster.RegisterRequest{
		Name:       a.opts.Name,
		Protocol:   cluster.ProtocolVersion,
		CompatHash: cluster.CompatHash(),
		Caps: cluster.NodeCaps{
			GoMaxProcs: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
			GoVersion:  runtime.Version(),
		},
	}
	var resp cluster.RegisterResponse
	if err := a.cl.DoJSON(ctx, http.MethodPost, "/v1/cluster/register", &req, "register-"+a.opts.Name, &resp); err != nil {
		return fmt.Errorf("node: registering with coordinator: %w", err)
	}
	wireOK := false
	for _, f := range resp.WireFormats {
		if f == wire.Format {
			wireOK = true
			break
		}
	}
	a.mu.Lock()
	a.nodeID = resp.NodeID
	a.hbEvery = time.Duration(resp.HeartbeatMS) * time.Millisecond
	a.poll = time.Duration(resp.PollMS) * time.Millisecond
	a.needReg = false
	a.wireOK = wireOK
	a.mu.Unlock()
	a.opts.Logger.Printf("node registered id=%s coordinator=%s wire=%t", resp.NodeID, a.opts.Coordinator, wireOK)
	return nil
}

func (a *agent) wire() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.wireOK
}

func (a *agent) id() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.nodeID
}

func (a *agent) pollInterval() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.poll <= 0 {
		return 200 * time.Millisecond
	}
	return a.poll
}

// heartbeatLoop keeps the node alive on the coordinator while the main loop
// may be deep inside a long simulation. Known=false flags the main loop to
// re-register (coordinator restarted, or we were declared dead).
func (a *agent) heartbeatLoop(ctx context.Context) {
	for {
		a.mu.Lock()
		every := a.hbEvery
		a.mu.Unlock()
		if every <= 0 {
			every = 5 * time.Second
		}
		if err := sleepCtx(ctx, every); err != nil {
			return
		}
		// Drain flight events recorded since the last acknowledged heartbeat
		// onto this one; the sent watermark only advances on success, so a
		// failed heartbeat retries the same window (the coordinator indexes
		// per job ID, and duplicates only arise from ring lapping, never from
		// the drain itself).
		a.mu.Lock()
		sent := a.flightSent
		a.mu.Unlock()
		events := a.opts.Flight.Since(sent)
		var resp cluster.HeartbeatResponse
		err := a.cl.DoJSON(ctx, http.MethodPost, "/v1/cluster/heartbeat",
			&cluster.HeartbeatRequest{NodeID: a.id(), Events: events}, "hb", &resp)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			a.opts.Logger.Printf("node heartbeat failed: %v", err)
			continue
		}
		if n := len(events); n > 0 {
			a.mu.Lock()
			if last := events[n-1].Seq; last > a.flightSent {
				a.flightSent = last
			}
			a.mu.Unlock()
		}
		if !resp.Known {
			a.mu.Lock()
			a.needReg = true
			a.mu.Unlock()
		}
	}
}

// lease asks for work. A nil lease with a nil error means idle: wait retry
// and ask again.
func (a *agent) lease(ctx context.Context) (*cluster.Lease, time.Duration, error) {
	var resp cluster.LeaseResponse
	err := a.cl.DoJSON(ctx, http.MethodPost, "/v1/cluster/lease",
		&cluster.LeaseRequest{NodeID: a.id(), Max: a.opts.MaxLease}, "lease", &resp)
	if err != nil {
		if reason(err) == cluster.ReasonUnknownNode {
			a.mu.Lock()
			a.needReg = true
			a.mu.Unlock()
		}
		return nil, 0, err
	}
	retry := time.Duration(resp.RetryMS) * time.Millisecond
	if retry <= 0 {
		retry = a.pollInterval()
	}
	return resp.Lease, retry, nil
}

// runLease executes one lease end to end: federated cache check, simulate
// the unknowns, upload. A context cancellation mid-lease aborts without
// uploading — the straggler case the coordinator's lease expiry exists for.
func (a *agent) runLease(ctx context.Context, lease *cluster.Lease) error {
	count := lease.End - lease.Start
	if count != len(lease.Scenarios) {
		return fmt.Errorf("node: lease %s carries %d scenarios for range [%d,%d)",
			lease.ID, len(lease.Scenarios), lease.Start, lease.End)
	}
	ev := obs.LeaseEvent{
		TraceID: lease.TraceID,
		Tenant:  lease.Tenant,
		JobID:   lease.JobID,
		LeaseID: lease.ID,
		Node:    a.id(),
		Start:   lease.Start,
		End:     lease.End,
	}
	a.opts.Flight.Record(flight.Event{
		Kind:   flight.KindLeaseRun,
		Trace:  lease.TraceID,
		Tenant: lease.Tenant,
		Job:    lease.JobID,
		Lease:  lease.ID,
		Node:   a.id(),
		Detail: fmt.Sprintf("range=[%d,%d)", lease.Start, lease.End),
	})

	// Phase 1: ask the federated cache index which results are already known.
	// Failures degrade to "nothing known" — the check is an optimization, the
	// upload path re-verifies everything.
	keys := make([]string, count)
	for i := range lease.Scenarios {
		k, err := lease.Scenarios[i].CacheKey()
		if err == nil {
			keys[i] = k
		}
	}
	t0 := time.Now()
	known := a.cacheCheck(ctx, keys)
	spans := []cluster.Span{{Name: cluster.SpanCacheCheck, DurMS: msSince(t0)}}

	// Phase 2: simulate every scenario the cache does not already hold,
	// through the shared batch engine so lease execution draws from the same
	// process-wide CPU budget as local surfaces. Scenario failures are
	// isolated to their slots; only context cancellation aborts the lease.
	results := make([]cluster.ScenarioResult, count)
	useWire := a.wire()
	simCtx := hetwire.WithTraceID(ctx, lease.TraceID)
	t0 = time.Now()
	errs := batch.RunRange(simCtx, lease.Start, lease.End, a.opts.Parallelism, func(ctx context.Context, idx int) error {
		i := idx - lease.Start
		res := &results[i]
		res.Index = idx
		res.CacheKey = keys[i]
		if known[i] {
			res.Skipped = true
			return nil
		}
		sc := lease.Scenarios[i]
		resp, err := sc.ExecuteContext(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			res.Error = err.Error()
			res.Reason = hetwire.ReasonCode(err)
			return nil
		}
		// Binary-speaking coordinators get the result as a wire frame — the
		// frame CRC plus the coordinator's full validation replace the JSON
		// path's declared sha256, and the coordinator stores the frame bytes
		// without re-encoding.
		if useWire {
			frame, err := wire.EncodeRunResult(resp)
			if err != nil {
				res.Error = err.Error()
				res.Reason = hetwire.ReasonBadRequest
				return nil
			}
			res.Frame = frame
			return nil
		}
		body, err := json.Marshal(resp)
		if err != nil {
			res.Error = err.Error()
			res.Reason = hetwire.ReasonBadRequest
			return nil
		}
		res.Body = body
		res.BodySHA256 = cluster.BodySum(body)
		return nil
	})
	spans = append(spans, cluster.Span{Name: cluster.SpanSim, DurMS: msSince(t0)})
	if err := ctx.Err(); err != nil {
		ev.Aborted = true
		a.logEvent(ev)
		return err
	}
	for i := range results {
		switch {
		case results[i].Skipped:
			ev.Skipped++
		case results[i].Error != "":
			ev.Failed++
		case len(results[i].Body) > 0 || len(results[i].Frame) > 0:
			ev.Simulated++
		case errs[i] != nil:
			// Engine-level failure (token acquisition, contained panic) with no
			// scenario-level record: report it so the slot resolves.
			results[i].Index = lease.Start + i
			results[i].CacheKey = keys[i]
			results[i].Error = errs[i].Error()
			results[i].Reason = hetwire.ReasonCode(errs[i])
			ev.Failed++
		}
	}

	// Phase 3: upload. Keyed by lease ID so transport retries replay safely —
	// uploads are idempotent by content on the coordinator.
	t0 = time.Now()
	var uresp cluster.UploadResponse
	var err error
	if useWire {
		var body []byte
		body, err = encodeWireUpload(a.id(), lease.ID, lease.JobID, results, spans)
		if err == nil {
			err = a.cl.DoBytes(ctx, http.MethodPost, "/v1/cluster/upload", wire.ContentType,
				body, "upload-"+lease.ID, &uresp)
		}
	} else {
		err = a.cl.DoJSON(ctx, http.MethodPost, "/v1/cluster/upload", &cluster.UploadRequest{
			NodeID:  a.id(),
			LeaseID: lease.ID,
			JobID:   lease.JobID,
			Results: results,
			Spans:   spans,
		}, "upload-"+lease.ID, &uresp)
	}
	if err != nil {
		if reason(err) == cluster.ReasonUnknownNode {
			a.mu.Lock()
			a.needReg = true
			a.mu.Unlock()
		}
		ev.Aborted = true
		a.logEvent(ev)
		return fmt.Errorf("node: uploading lease %s: %w", lease.ID, err)
	}
	// Span summaries ride the flight recorder (and from there, heartbeat
	// traffic): one event per phase, DurMS being the measured — hence
	// nondeterministic, hence Canonical-elided — cost.
	for _, sp := range append(spans, cluster.Span{Name: cluster.SpanUpload, DurMS: msSince(t0)}) {
		a.opts.Flight.Record(flight.Event{
			Kind:   flight.KindSpan,
			Trace:  lease.TraceID,
			Tenant: lease.Tenant,
			Job:    lease.JobID,
			Lease:  lease.ID,
			Node:   a.id(),
			DurMS:  sp.DurMS,
			Detail: sp.Name,
		})
	}
	a.opts.Logger.Printf("node lease %s done job=%s range=[%d,%d) simulated=%d skipped=%d failed=%d accepted=%d duplicate=%d requeued=%d upload_ms=%.1f",
		lease.ID, lease.JobID, lease.Start, lease.End, ev.Simulated, ev.Skipped, ev.Failed,
		uresp.Accepted, uresp.Duplicate, len(uresp.Requeued), msSince(t0))
	a.logEvent(ev)
	return nil
}

// encodeWireUpload assembles the binary upload body: one TypeUploadHeader
// frame carrying the lease identity and spans, then one TypeUploadResult
// frame per scenario, each embedding its result frame verbatim.
func encodeWireUpload(nodeID, leaseID, jobID string, results []cluster.ScenarioResult, spans []cluster.Span) ([]byte, error) {
	hdr := &wire.UploadHeader{NodeID: nodeID, LeaseID: leaseID, JobID: jobID}
	for _, sp := range spans {
		hdr.Spans = append(hdr.Spans, wire.SpanMS{Name: sp.Name, DurMS: sp.DurMS})
	}
	out, err := wire.AppendUploadHeader(nil, hdr)
	if err != nil {
		return nil, err
	}
	for i := range results {
		r := &results[i]
		out, err = wire.AppendUploadResult(out, &wire.UploadResult{
			Index:    r.Index,
			CacheKey: r.CacheKey,
			Frame:    r.Frame,
			Error:    r.Error,
			Reason:   r.Reason,
			Skipped:  r.Skipped,
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// cacheCheck queries the federated index, folding any failure into "nothing
// known".
func (a *agent) cacheCheck(ctx context.Context, keys []string) []bool {
	known := make([]bool, len(keys))
	ask := false
	for _, k := range keys {
		if k != "" {
			ask = true
			break
		}
	}
	if !ask {
		return known
	}
	var resp cluster.CacheCheckResponse
	err := a.cl.DoJSON(ctx, http.MethodPost, "/v1/cluster/cachecheck",
		&cluster.CacheCheckRequest{NodeID: a.id(), Keys: keys}, "cachecheck", &resp)
	if err != nil || len(resp.Known) != len(keys) {
		return known
	}
	return resp.Known
}

func (a *agent) logEvent(ev obs.LeaseEvent) {
	if a.opts.EventLog == nil {
		return
	}
	if err := obs.AppendLeaseEvent(a.opts.EventLog, ev); err != nil {
		a.opts.Logger.Printf("node lease event log: %v", err)
	}
}

// terminal reports whether an error should stop the node loop entirely:
// shutdown, or a coordinator verdict that retrying cannot change.
func terminal(ctx context.Context, err error) bool {
	if ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	switch reason(err) {
	case cluster.ReasonIncompatibleNode, cluster.ReasonUnauthorized, cluster.ReasonClusterDisabled:
		return true
	}
	return false
}

// reason extracts the daemon's machine-readable rejection code, if any.
func reason(err error) string {
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		return apiErr.Reason
	}
	return ""
}

func msSince(t0 time.Time) float64 {
	return float64(time.Since(t0)) / float64(time.Millisecond)
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
