// Package cache implements the simulated memory hierarchy of paper Table 1:
// set-associative LRU caches (32KB 2-way L1I; 32KB 4-way, 6-cycle, 4-way
// word-interleaved L1D; 8MB 8-way, 30-cycle unified L2), a 128-entry TLB
// with 8KB pages, and a 300-cycle memory backstop. Timing (bank-port
// contention, miss latencies) is resolved with cycle calendars so the core
// model can ask "when does this access complete?" directly.
package cache

import (
	"hetwire/internal/sched"
)

// Config sizes one cache.
type Config struct {
	SizeBytes int
	LineBytes int
	Assoc     int
	Latency   int // access latency in cycles (hit)
	Banks     int // word-interleaved banks (1 = unbanked)
	Ports     int // ports per bank
}

// Cache is a set-associative cache with true-LRU replacement and
// word-interleaved bank/port timing. Not safe for concurrent use.
type Cache struct {
	cfg  Config
	sets int
	// tags/lru are flat arrays indexed set*Assoc+way, so a 16K-set L2 is two
	// allocations instead of two per set.
	tags     []uint64 // 0 = invalid
	lru      []uint32 // larger = more recent
	lruClock uint32
	banks    []*sched.Calendar

	Accesses uint64
	Misses   uint64
}

// New builds a cache. Sizes must give a power-of-two number of sets.
func New(cfg Config) *Cache {
	if cfg.SizeBytes <= 0 || cfg.LineBytes <= 0 || cfg.Assoc <= 0 {
		panic("cache: bad geometry")
	}
	sets := cfg.SizeBytes / (cfg.LineBytes * cfg.Assoc)
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("cache: set count must be a positive power of two")
	}
	if cfg.Banks <= 0 {
		cfg.Banks = 1
	}
	if cfg.Ports <= 0 {
		cfg.Ports = 1
	}
	c := &Cache{cfg: cfg, sets: sets}
	c.tags = make([]uint64, sets*cfg.Assoc)
	c.lru = make([]uint32, sets*cfg.Assoc)
	c.banks = make([]*sched.Calendar, cfg.Banks)
	for i := range c.banks {
		c.banks[i] = sched.NewCalendar(cfg.Ports, sched.DefaultWindow)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Geometry() Config { return c.cfg }

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	line := addr / uint64(c.cfg.LineBytes)
	return int(line % uint64(c.sets)), line/uint64(c.sets) + 1 // +1: tag never 0
}

// Lookup performs the array access and fill: returns true on hit. On miss
// the line is installed (allocate-on-miss for both loads and stores; the
// paper's configuration is write-allocate by default in Simplescalar).
func (c *Cache) Lookup(addr uint64) bool {
	c.Accesses++
	set, tag := c.index(addr)
	base := set * c.cfg.Assoc
	c.lruClock++
	for w := 0; w < c.cfg.Assoc; w++ {
		if c.tags[base+w] == tag {
			c.lru[base+w] = c.lruClock
			return true
		}
	}
	c.Misses++
	victim := 0
	for w := 1; w < c.cfg.Assoc; w++ {
		if c.lru[base+w] < c.lru[base+victim] {
			victim = w
		}
	}
	c.tags[base+victim] = tag
	c.lru[base+victim] = c.lruClock
	return false
}

// Probe checks for presence without changing any state.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	base := set * c.cfg.Assoc
	for w := 0; w < c.cfg.Assoc; w++ {
		if c.tags[base+w] == tag {
			return true
		}
	}
	return false
}

// bankOf maps an address to its word-interleaved bank (8-byte words).
func (c *Cache) bankOf(addr uint64) int {
	return int((addr >> 3) % uint64(len(c.banks)))
}

// ReservePort books a port on the address's bank at the earliest cycle >= at
// and returns the granted cycle. Callers add the cache latency themselves so
// that pipelined variants (the L-wire early-index pipeline) can overlap
// parts of the access.
func (c *Cache) ReservePort(addr uint64, at uint64) uint64 {
	return c.banks[c.bankOf(addr)].Reserve(at)
}

// CalendarClamps returns port-calendar clamp events (see sched.Calendar).
func (c *Cache) CalendarClamps() uint64 {
	var sum uint64
	for _, b := range c.banks {
		sum += b.Clamped
	}
	return sum
}

// ResetStats zeroes the hit/miss counters, keeping cache contents.
func (c *Cache) ResetStats() { c.Accesses, c.Misses = 0, 0 }

// Reset restores the cache to its just-constructed state — cold arrays, idle
// bank ports, zero counters — reusing all storage. A reset cache behaves
// bit-identically to a freshly built one.
func (c *Cache) Reset() {
	clear(c.tags)
	clear(c.lru)
	c.lruClock = 0
	for _, b := range c.banks {
		b.Reset()
	}
	c.Accesses, c.Misses = 0, 0
}

// MissRate returns misses/accesses so far (0 before any access).
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// TLB models the 128-entry translation buffer (8KB pages) with LRU.
type TLB struct {
	entries  int
	pageBits uint
	tags     []uint64
	lru      []uint32
	clock    uint32

	Accesses uint64
	Misses   uint64
}

// NewTLB builds a fully-associative-equivalent LRU TLB. (The paper notes
// the L-wire pipeline prefers a set-associative TLB; associativity affects
// only which index bits ride the L-wires, not hit/miss behaviour at this
// fidelity, so the timing model parameterises index bits separately.)
func NewTLB(entries, pageBytes int) *TLB {
	if entries <= 0 || pageBytes <= 0 || pageBytes&(pageBytes-1) != 0 {
		panic("cache: TLB needs positive entries and power-of-two page size")
	}
	bits := uint(0)
	for 1<<bits < pageBytes {
		bits++
	}
	return &TLB{
		entries:  entries,
		pageBits: bits,
		tags:     make([]uint64, entries),
		lru:      make([]uint32, entries),
	}
}

// Lookup translates; returns true on TLB hit. Misses install the page.
func (t *TLB) Lookup(addr uint64) bool {
	t.Accesses++
	page := addr>>t.pageBits + 1
	t.clock++
	victim := 0
	for i, tag := range t.tags {
		if tag == page {
			t.lru[i] = t.clock
			return true
		}
		if t.lru[i] < t.lru[victim] {
			victim = i
		}
	}
	t.Misses++
	t.tags[victim] = page
	t.lru[victim] = t.clock
	return false
}

// ResetStats zeroes the TLB counters, keeping translations.
func (t *TLB) ResetStats() { t.Accesses, t.Misses = 0, 0 }

// Reset empties the TLB and zeroes its counters, reusing storage.
func (t *TLB) Reset() {
	clear(t.tags)
	clear(t.lru)
	t.clock = 0
	t.Accesses, t.Misses = 0, 0
}

// MissRate returns the TLB miss rate so far.
func (t *TLB) MissRate() float64 {
	if t.Accesses == 0 {
		return 0
	}
	return float64(t.Misses) / float64(t.Accesses)
}

// Level identifies where an access was satisfied.
type Level uint8

const (
	LevelL1 Level = iota
	LevelL2
	LevelMem
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelMem:
		return "memory"
	}
	return "?"
}

// HierarchyConfig collects the Table 1 memory parameters.
type HierarchyConfig struct {
	L1I        Config
	L1D        Config
	L2         Config
	TLBEntries int
	PageBytes  int
	TLBPenalty int // cycles added on a TLB miss (page walk)
	MemLatency int // cycles for the first block from memory
}

// Hierarchy bundles the instruction cache, data cache, shared L2, TLB and
// memory timing.
type Hierarchy struct {
	cfg HierarchyConfig
	L1I *Cache
	L1D *Cache
	L2  *Cache
	TLB *TLB
}

// NewHierarchy builds the full memory system.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	if cfg.TLBPenalty <= 0 {
		cfg.TLBPenalty = 30
	}
	return &Hierarchy{
		cfg: cfg,
		L1I: New(cfg.L1I),
		L1D: New(cfg.L1D),
		L2:  New(cfg.L2),
		TLB: NewTLB(cfg.TLBEntries, cfg.PageBytes),
	}
}

// DataAccess models a load or store reaching the L1 data cache at cycle
// `start` (the cycle the full address is available at the cache). It
// reserves a bank port, walks the hierarchy on misses, and returns the cycle
// at which data is available and the satisfying level.
//
// indexReady is the cycle at which the cache's RAM indexing could begin; in
// the baseline pipeline it equals start, while the L-wire pipeline delivers
// the index bits early so RAM access overlaps the remaining address
// transfer (paper Section 4). The RAM-array portion of the L1 latency
// (all but one cycle) is charged from indexReady; the final tag-compare
// cycle is charged from start.
func (h *Hierarchy) DataAccess(addr uint64, indexReady, start uint64) (uint64, Level) {
	if indexReady > start {
		indexReady = start
	}
	port := h.L1D.ReservePort(addr, indexReady)
	ramDone := port + uint64(h.L1D.cfg.Latency-1)
	tlbDone := indexReady + 1 // TLB RAM lookup overlaps cache RAM access
	if !h.TLB.Lookup(addr) {
		tlbDone += uint64(h.cfg.TLBPenalty)
	}
	// Tag compare needs: RAM data, the translation, and the full address.
	done := maxU(maxU(ramDone, tlbDone), start) + 1
	if h.L1D.Lookup(addr) {
		return done, LevelL1
	}
	if h.L2.Lookup(addr) {
		return done + uint64(h.L2.cfg.Latency), LevelL2
	}
	return done + uint64(h.L2.cfg.Latency) + uint64(h.cfg.MemLatency), LevelMem
}

// ResetStats zeroes hit/miss counters across the hierarchy.
func (h *Hierarchy) ResetStats() {
	h.L1I.ResetStats()
	h.L1D.ResetStats()
	h.L2.ResetStats()
	h.TLB.ResetStats()
}

// Reset restores the whole hierarchy to its just-constructed (cold) state,
// reusing all storage.
func (h *Hierarchy) Reset() {
	h.L1I.Reset()
	h.L1D.Reset()
	h.L2.Reset()
	h.TLB.Reset()
}

// FetchAccess models an instruction fetch at cycle start; returns completion
// cycle and level.
func (h *Hierarchy) FetchAccess(addr uint64, start uint64) (uint64, Level) {
	done := start + uint64(h.L1I.cfg.Latency)
	if h.L1I.Lookup(addr) {
		return done, LevelL1
	}
	if h.L2.Lookup(addr) {
		return done + uint64(h.L2.cfg.Latency), LevelL2
	}
	return done + uint64(h.L2.cfg.Latency) + uint64(h.cfg.MemLatency), LevelMem
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
