package cache

import (
	"testing"
	"testing/quick"

	"hetwire/internal/xrand"
)

func smallCache() *Cache {
	return New(Config{SizeBytes: 1024, LineBytes: 64, Assoc: 2, Latency: 6, Banks: 4, Ports: 1})
}

func TestLookupMissThenHit(t *testing.T) {
	c := smallCache()
	if c.Lookup(0x1000) {
		t.Error("cold access hit")
	}
	if !c.Lookup(0x1000) {
		t.Error("second access missed")
	}
	if !c.Lookup(0x1038) { // same 64-byte line
		t.Error("same-line access missed")
	}
	if c.Misses != 1 || c.Accesses != 3 {
		t.Errorf("misses/accesses = %d/%d, want 1/3", c.Misses, c.Accesses)
	}
}

func TestLRUReplacement(t *testing.T) {
	c := smallCache() // 8 sets, 2 ways
	// Three addresses mapping to set 0: line numbers 0, 8, 16.
	a, b, x := uint64(0), uint64(8*64), uint64(16*64)
	c.Lookup(a)
	c.Lookup(b)
	c.Lookup(a) // a is MRU
	c.Lookup(x) // evicts b
	if !c.Probe(a) {
		t.Error("MRU line evicted")
	}
	if c.Probe(b) {
		t.Error("LRU line survived")
	}
	if !c.Probe(x) {
		t.Error("newly installed line absent")
	}
}

func TestProbeDoesNotDisturbState(t *testing.T) {
	c := smallCache()
	c.Lookup(0)       // set 0 way A
	c.Lookup(8 * 64)  // set 0 way B (B is MRU)
	c.Probe(0)        // must NOT refresh A's recency
	c.Lookup(16 * 64) // evicts LRU, which must still be A
	if c.Probe(0) {
		t.Error("Probe refreshed LRU state")
	}
	if !c.Probe(8 * 64) {
		t.Error("MRU line was evicted instead")
	}
}

// TestWorkingSetFitsCacheHasLowMissRate: property-style check of the
// locality behaviour the workload generator relies on.
func TestWorkingSetFitsCacheHasLowMissRate(t *testing.T) {
	c := New(Config{SizeBytes: 32 * 1024, LineBytes: 64, Assoc: 4, Latency: 6})
	src := xrand.New(1)
	for i := 0; i < 100000; i++ {
		addr := uint64(src.Intn(16 * 1024)) // 16KB working set in 32KB cache
		c.Lookup(addr)
	}
	if mr := c.MissRate(); mr > 0.02 {
		t.Errorf("fitting working set has miss rate %.3f, want < 0.02", mr)
	}

	big := New(Config{SizeBytes: 32 * 1024, LineBytes: 64, Assoc: 4, Latency: 6})
	for i := 0; i < 100000; i++ {
		addr := uint64(src.Intn(64 * 1024 * 1024)) // 64MB stream
		big.Lookup(addr)
	}
	if mr := big.MissRate(); mr < 0.5 {
		t.Errorf("thrashing working set has miss rate %.3f, want > 0.5", mr)
	}
}

func TestBankPortContention(t *testing.T) {
	c := New(Config{SizeBytes: 1024, LineBytes: 64, Assoc: 2, Latency: 6, Banks: 4, Ports: 1})
	// Same bank (same word offset pattern): three requests at cycle 10.
	addr := uint64(0x40) // bank = (0x40>>3)%4 = 0
	if got := c.ReservePort(addr, 10); got != 10 {
		t.Fatalf("first port grant at %d", got)
	}
	if got := c.ReservePort(addr+32, 10); got != 11 { // 0x60>>3=12, %4=0: same bank
		t.Errorf("same-bank second grant at %d, want 11", got)
	}
	// Different bank is free at cycle 10.
	if got := c.ReservePort(addr+8, 10); got != 10 {
		t.Errorf("different-bank grant at %d, want 10", got)
	}
}

func TestTLBHitMissAndLRU(t *testing.T) {
	tlb := NewTLB(2, 8192)
	if tlb.Lookup(0x0000) {
		t.Error("cold TLB hit")
	}
	if !tlb.Lookup(0x1000) { // same 8KB page
		t.Error("same-page TLB miss")
	}
	tlb.Lookup(0x4000) // second page
	tlb.Lookup(0x0000) // page 0 is MRU
	tlb.Lookup(0x8000) // third page evicts page 1 (0x4000)
	if !tlb.Lookup(0x0000) {
		t.Error("MRU page evicted")
	}
	if tlb.Lookup(0x4000) {
		t.Error("LRU page survived")
	}
}

func newTestHierarchy() *Hierarchy {
	return NewHierarchy(HierarchyConfig{
		L1I:        Config{SizeBytes: 32 * 1024, LineBytes: 64, Assoc: 2, Latency: 1},
		L1D:        Config{SizeBytes: 32 * 1024, LineBytes: 64, Assoc: 4, Latency: 6, Banks: 4, Ports: 1},
		L2:         Config{SizeBytes: 8 * 1024 * 1024, LineBytes: 64, Assoc: 8, Latency: 30},
		TLBEntries: 128,
		PageBytes:  8192,
		TLBPenalty: 30,
		MemLatency: 300,
	})
}

// TestDataAccessLatencies: an L1 hit (after warming TLB and cache) takes the
// configured 6 cycles; L2 and memory add their latencies.
func TestDataAccessLatencies(t *testing.T) {
	h := newTestHierarchy()
	const addr = 0x10000

	// Cold access: TLB miss + L1 miss + L2 miss -> memory.
	done, lvl := h.DataAccess(addr, 100, 100)
	if lvl != LevelMem {
		t.Fatalf("cold access level = %v, want memory", lvl)
	}
	coldLat := done - 100
	if coldLat < 300 {
		t.Errorf("cold access latency %d < memory latency", coldLat)
	}

	// Warm access: everything hits; latency = L1 latency.
	done, lvl = h.DataAccess(addr, 200, 200)
	if lvl != LevelL1 {
		t.Fatalf("warm access level = %v, want L1", lvl)
	}
	if lat := done - 200; lat != 6 {
		t.Errorf("L1 hit latency = %d, want 6", lat)
	}

	// Evict from L1 but not L2: stream over L1-conflicting lines.
	for i := uint64(1); i <= 8; i++ {
		h.DataAccess(addr+i*32*1024, 300+i*20, 300+i*20)
	}
	done, lvl = h.DataAccess(addr, 1000, 1000)
	if lvl != LevelL2 {
		t.Fatalf("level = %v, want L2", lvl)
	}
	if lat := done - 1000; lat != 6+30 {
		t.Errorf("L2 hit latency = %d, want 36", lat)
	}
}

// TestEarlyIndexOverlapsRAMAccess is the paper's accelerated cache pipeline:
// if the index bits arrive early (indexReady < start), the RAM access
// overlaps the remaining address transfer and only the final tag-compare
// cycle is serialized after the full address arrives.
func TestEarlyIndexOverlapsRAMAccess(t *testing.T) {
	h := newTestHierarchy()
	const addr = 0x20000
	h.DataAccess(addr, 10, 10) // warm TLB + caches

	// Baseline: full address at cycle 100, index at the same time.
	doneBase, _ := h.DataAccess(addr, 100, 100)
	if lat := doneBase - 100; lat != 6 {
		t.Fatalf("baseline latency = %d, want 6", lat)
	}

	// L-wire pipeline: index available at 95, full address at 100. The
	// 5-cycle RAM access (latency-1) runs 95..100 and only tag compare
	// remains: total completes at 101.
	doneEarly, _ := h.DataAccess(addr, 195, 200)
	if lat := doneEarly - 200; lat != 1 {
		t.Errorf("early-index latency beyond full-address arrival = %d, want 1", lat)
	}

	// indexReady later than start must be clamped (never helps).
	doneClamped, _ := h.DataAccess(addr, 400, 300)
	if doneClamped < 300 {
		t.Error("clamped access completed before the address arrived")
	}
}

// TestFetchAccess covers the instruction path.
func TestFetchAccess(t *testing.T) {
	h := newTestHierarchy()
	done, lvl := h.FetchAccess(0x400000, 50)
	if lvl != LevelMem || done <= 50 {
		t.Fatalf("cold fetch = (%d, %v)", done, lvl)
	}
	done, lvl = h.FetchAccess(0x400000, 60)
	if lvl != LevelL1 || done != 61 {
		t.Errorf("warm fetch = (%d, %v), want (61, L1)", done, lvl)
	}
}

// TestDataAccessMonotoneInStart: property — completion time is monotone in
// the address-arrival time for hit accesses.
func TestDataAccessMonotoneInStart(t *testing.T) {
	h := newTestHierarchy()
	h.DataAccess(0x5000, 1, 1)
	f := func(s8 uint8) bool {
		s := 1000 + uint64(s8)
		d1, _ := h.DataAccess(0x5000, s, s)
		d2, _ := h.DataAccess(0x5000, s+10, s+10)
		return d2 >= d1 && d1 > s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLevelString(t *testing.T) {
	if LevelL1.String() != "L1" || LevelL2.String() != "L2" || LevelMem.String() != "memory" {
		t.Error("level names wrong")
	}
}

func TestConstructorValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("non-power-of-two sets", func() {
		New(Config{SizeBytes: 3000, LineBytes: 64, Assoc: 2, Latency: 1})
	})
	mustPanic("zero-size TLB", func() { NewTLB(0, 8192) })
	mustPanic("non-power-of-two page", func() { NewTLB(16, 5000) })
}
