package bpred

import (
	"testing"
	"testing/quick"

	"hetwire/internal/xrand"
)

func testConfig() Config {
	return Config{
		BimodalSize: 16384,
		L1Size:      16384,
		HistoryBits: 12,
		L2Size:      16384,
		ChooserSize: 16384,
		BTBSets:     16384,
		BTBAssoc:    2,
		RASEntries:  32,
	}
}

func TestCounterSaturation(t *testing.T) {
	c := counter2(0)
	for i := 0; i < 10; i++ {
		c = c.update(true)
	}
	if c != 3 {
		t.Errorf("counter should saturate at 3, got %d", c)
	}
	for i := 0; i < 10; i++ {
		c = c.update(false)
	}
	if c != 0 {
		t.Errorf("counter should saturate at 0, got %d", c)
	}
}

// TestAlwaysTakenBranch: a monomorphic branch must be learned essentially
// perfectly after warmup.
func TestAlwaysTakenBranch(t *testing.T) {
	p := New(testConfig())
	const pc = 0x40001000
	for i := 0; i < 8; i++ {
		p.UpdateDirection(pc, true)
	}
	misses := uint64(0)
	for i := 0; i < 1000; i++ {
		before := p.DirMisses
		p.UpdateDirection(pc, true)
		misses += p.DirMisses - before
	}
	if misses != 0 {
		t.Errorf("always-taken branch mispredicted %d/1000 times after warmup", misses)
	}
}

// TestAlternatingBranchLearnedByTwoLevel: a strict T/NT alternation defeats
// bimodal but is perfectly capturable by 12 bits of local history; the
// combining predictor must converge on the two-level side.
func TestAlternatingBranchLearnedByTwoLevel(t *testing.T) {
	p := New(testConfig())
	const pc = 0x40002000
	taken := false
	for i := 0; i < 200; i++ { // warmup: learn pattern + chooser
		p.UpdateDirection(pc, taken)
		taken = !taken
	}
	missesBefore := p.DirMisses
	for i := 0; i < 1000; i++ {
		p.UpdateDirection(pc, taken)
		taken = !taken
	}
	misses := p.DirMisses - missesBefore
	if misses > 10 {
		t.Errorf("alternating branch mispredicted %d/1000 times; two-level should capture it", misses)
	}
}

// TestLoopPattern: (T^9 NT)* is a classic loop-branch pattern within the
// 12-bit history reach.
func TestLoopPattern(t *testing.T) {
	p := New(testConfig())
	const pc = 0x40003000
	outcome := func(i int) bool { return i%10 != 9 }
	for i := 0; i < 400; i++ {
		p.UpdateDirection(pc, outcome(i))
	}
	missesBefore := p.DirMisses
	for i := 400; i < 1400; i++ {
		p.UpdateDirection(pc, outcome(i))
	}
	misses := p.DirMisses - missesBefore
	if misses > 50 { // 10% of 1000; a learned loop should be far below
		t.Errorf("loop pattern mispredicted %d/1000 times", misses)
	}
}

// TestRandomBranchAccuracyBounded: on a 50/50 random branch no predictor can
// do much better than chance; sanity-check we are within [35%, 65%].
func TestRandomBranchAccuracyBounded(t *testing.T) {
	p := New(testConfig())
	src := xrand.New(7)
	const pc = 0x40004000
	for i := 0; i < 20000; i++ {
		p.UpdateDirection(pc, src.Bool(0.5))
	}
	acc := p.Accuracy()
	if acc < 0.35 || acc > 0.65 {
		t.Errorf("random-branch accuracy %.3f outside sanity bounds", acc)
	}
}

// TestBiasedBranchesAccuracy: a population of branches with 90% bias should
// be predicted at roughly >= 85% accuracy.
func TestBiasedBranchesAccuracy(t *testing.T) {
	p := New(testConfig())
	src := xrand.New(11)
	for i := 0; i < 100000; i++ {
		pc := uint64(0x400000 + (i%64)*4)
		bias := 0.9
		if i%64%2 == 0 {
			bias = 0.1
		}
		p.UpdateDirection(pc, src.Bool(bias))
	}
	if acc := p.Accuracy(); acc < 0.85 {
		t.Errorf("biased-branch accuracy %.3f, want >= 0.85", acc)
	}
}

func TestBTBHitAfterInstall(t *testing.T) {
	p := New(testConfig())
	p.UpdateTarget(0x1000, 0x2000)
	tgt, ok := p.LookupTarget(0x1000)
	if !ok || tgt != 0x2000 {
		t.Fatalf("BTB lookup = (%#x, %v), want (0x2000, true)", tgt, ok)
	}
	if _, ok := p.LookupTarget(0x1004); ok {
		t.Error("BTB hit for never-installed PC")
	}
}

// TestBTBAssociativityAndEviction: two PCs in the same set coexist (2-way);
// a third evicts the least recently used.
func TestBTBAssociativityAndEviction(t *testing.T) {
	cfg := testConfig()
	cfg.BTBSets = 2 // tiny BTB to force conflicts
	p := New(cfg)
	// These PCs all map to set 0 (pc>>2 even).
	a, b, c := uint64(0x00), uint64(0x10), uint64(0x20)
	p.UpdateTarget(a, 0xA)
	p.UpdateTarget(b, 0xB)
	if _, ok := p.LookupTarget(a); !ok {
		t.Fatal("way 0 lost after filling way 1")
	}
	if _, ok := p.LookupTarget(b); !ok {
		t.Fatal("way 1 missing")
	}
	// Touch a, then install c: b should be the LRU victim.
	p.LookupTarget(a)
	p.UpdateTarget(c, 0xC)
	if _, ok := p.LookupTarget(a); !ok {
		t.Error("MRU entry was evicted")
	}
	if _, ok := p.LookupTarget(b); ok {
		t.Error("LRU entry survived eviction")
	}
}

func TestRASLIFO(t *testing.T) {
	p := New(testConfig())
	p.PushRAS(0x100)
	p.PushRAS(0x200)
	if v, ok := p.PopRAS(); !ok || v != 0x200 {
		t.Errorf("first pop = (%#x,%v), want (0x200,true)", v, ok)
	}
	if v, ok := p.PopRAS(); !ok || v != 0x100 {
		t.Errorf("second pop = (%#x,%v), want (0x100,true)", v, ok)
	}
}

// TestPredictMatchesUpdate: property — PredictDirection agrees with the
// prediction UpdateDirection scores, for arbitrary pc/outcome sequences.
func TestPredictMatchesUpdate(t *testing.T) {
	p := New(testConfig())
	f := func(pcSeed uint16, taken bool) bool {
		pc := uint64(pcSeed) * 4
		pred := p.PredictDirection(pc)
		missesBefore := p.DirMisses
		p.UpdateDirection(pc, taken)
		gotCorrect := p.DirMisses == missesBefore
		return gotCorrect == (pred == taken)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestHistoryBounded: property — the history register never exceeds its
// configured width.
func TestHistoryBounded(t *testing.T) {
	p := New(testConfig())
	src := xrand.New(3)
	for i := 0; i < 10000; i++ {
		p.UpdateDirection(uint64(src.Intn(1024))*4, src.Bool(0.7))
	}
	limit := uint32(1)<<12 - 1
	for _, h := range p.l1hist {
		if h > limit {
			t.Fatalf("history register %#x exceeds 12 bits", h)
		}
	}
}

func TestNewRejectsBadSizes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New accepted a non-power-of-two table size")
		}
	}()
	cfg := testConfig()
	cfg.BimodalSize = 1000
	New(cfg)
}
