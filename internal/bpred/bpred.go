// Package bpred implements the paper's front-end branch prediction stack
// (Table 1): a combining predictor built from a 16K-entry bimodal table and
// a two-level predictor (16K-entry level-1 history table with 12 bits of
// history feeding a 16K-entry level-2 counter table), a 16K-set 2-way BTB,
// and a return address stack.
package bpred

// counter2 is a 2-bit saturating counter. Values 0-1 predict not-taken,
// 2-3 predict taken.
type counter2 uint8

func (c counter2) taken() bool { return c >= 2 }

func (c counter2) update(taken bool) counter2 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Config sizes the predictor structures; see config.DefaultCore for the
// paper's values.
type Config struct {
	BimodalSize int // entries, power of two
	L1Size      int // level-1 history entries, power of two
	HistoryBits int // history register length
	L2Size      int // level-2 counter entries, power of two
	ChooserSize int // chooser counters, power of two
	BTBSets     int // power of two
	BTBAssoc    int
	RASEntries  int
}

// Predictor is a combining (bimodal + two-level) direction predictor with a
// BTB and RAS. It is not safe for concurrent use.
type Predictor struct {
	cfg     Config
	bimodal []counter2
	l1hist  []uint32 // per-entry branch history registers
	l2      []counter2
	chooser []counter2 // 0-1: use bimodal, 2-3: use two-level

	// BTB arrays are flat, indexed set*BTBAssoc+way, so the whole table is
	// three allocations instead of three per set.
	btbTags []uint64 // 0 = invalid
	btbTgt  []uint64
	btbLRU  []uint8 // higher = more recently used

	ras    []uint64
	rasTop int

	// Statistics.
	Lookups     uint64
	DirMisses   uint64
	BTBMisses   uint64
	BimodalUsed uint64
	TwoLevUsed  uint64
}

// New builds a predictor. Sizes must be powers of two.
func New(cfg Config) *Predictor {
	for _, s := range []int{cfg.BimodalSize, cfg.L1Size, cfg.L2Size, cfg.ChooserSize, cfg.BTBSets} {
		if s <= 0 || s&(s-1) != 0 {
			panic("bpred: structure sizes must be positive powers of two")
		}
	}
	if cfg.BTBAssoc <= 0 || cfg.HistoryBits <= 0 || cfg.HistoryBits > 30 {
		panic("bpred: bad BTB associativity or history length")
	}
	p := &Predictor{
		cfg:     cfg,
		bimodal: make([]counter2, cfg.BimodalSize),
		l1hist:  make([]uint32, cfg.L1Size),
		l2:      make([]counter2, cfg.L2Size),
		chooser: make([]counter2, cfg.ChooserSize),
		ras:     make([]uint64, max(cfg.RASEntries, 1)),
	}
	// Weakly-taken initial state halves the cold-start mispredict burst.
	for i := range p.bimodal {
		p.bimodal[i] = 2
	}
	for i := range p.l2 {
		p.l2[i] = 2
	}
	for i := range p.chooser {
		p.chooser[i] = 1 // slight initial bias towards bimodal
	}
	p.btbTags = make([]uint64, cfg.BTBSets*cfg.BTBAssoc)
	p.btbTgt = make([]uint64, cfg.BTBSets*cfg.BTBAssoc)
	p.btbLRU = make([]uint8, cfg.BTBSets*cfg.BTBAssoc)
	return p
}

func (p *Predictor) bimodalIdx(pc uint64) int { return int((pc >> 2) & uint64(p.cfg.BimodalSize-1)) }
func (p *Predictor) l1Idx(pc uint64) int      { return int((pc >> 2) & uint64(p.cfg.L1Size-1)) }
func (p *Predictor) chooserIdx(pc uint64) int { return int((pc >> 2) & uint64(p.cfg.ChooserSize-1)) }

func (p *Predictor) l2Idx(pc uint64) int {
	hist := p.l1hist[p.l1Idx(pc)]
	// Standard gshare-style hash of history and PC into the level-2 table.
	return int((uint64(hist) ^ (pc >> 2)) & uint64(p.cfg.L2Size-1))
}

// PredictDirection returns the predicted direction for a conditional branch
// at pc.
func (p *Predictor) PredictDirection(pc uint64) bool {
	bim := p.bimodal[p.bimodalIdx(pc)].taken()
	two := p.l2[p.l2Idx(pc)].taken()
	if p.chooser[p.chooserIdx(pc)].taken() {
		return two
	}
	return bim
}

// UpdateDirection trains all direction structures with the actual outcome
// and returns whether the prediction (recomputed pre-update) was correct.
func (p *Predictor) UpdateDirection(pc uint64, taken bool) bool {
	bIdx, tIdx, cIdx := p.bimodalIdx(pc), p.l2Idx(pc), p.chooserIdx(pc)
	bim := p.bimodal[bIdx].taken()
	two := p.l2[tIdx].taken()
	useTwo := p.chooser[cIdx].taken()
	pred := bim
	if useTwo {
		pred = two
		p.TwoLevUsed++
	} else {
		p.BimodalUsed++
	}
	p.Lookups++
	correct := pred == taken

	// Train the chooser only when the components disagree.
	if bim != two {
		p.chooser[cIdx] = p.chooser[cIdx].update(two == taken)
	}
	p.bimodal[bIdx] = p.bimodal[bIdx].update(taken)
	p.l2[tIdx] = p.l2[tIdx].update(taken)
	h := &p.l1hist[p.l1Idx(pc)]
	*h = (*h<<1 | b2u(taken)) & (1<<uint(p.cfg.HistoryBits) - 1)

	if !correct {
		p.DirMisses++
	}
	return correct
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// btbTag distinguishes PCs mapping to the same set.
func (p *Predictor) btbTag(pc uint64) uint64 {
	return pc>>2 + 1 // +1 so a valid tag is never zero (0 = invalid)
}

func (p *Predictor) btbSet(pc uint64) int { return int((pc >> 2) & uint64(p.cfg.BTBSets-1)) }

// LookupTarget returns the BTB-predicted target for a taken branch at pc,
// and whether the BTB hit.
func (p *Predictor) LookupTarget(pc uint64) (uint64, bool) {
	base := p.btbSet(pc) * p.cfg.BTBAssoc
	tag := p.btbTag(pc)
	for w := 0; w < p.cfg.BTBAssoc; w++ {
		if p.btbTags[base+w] == tag {
			p.touchBTB(base, w)
			return p.btbTgt[base+w], true
		}
	}
	p.BTBMisses++
	return 0, false
}

// UpdateTarget installs or refreshes the target for a taken branch.
func (p *Predictor) UpdateTarget(pc, target uint64) {
	base := p.btbSet(pc) * p.cfg.BTBAssoc
	tag := p.btbTag(pc)
	victim := 0
	for w := 0; w < p.cfg.BTBAssoc; w++ {
		if p.btbTags[base+w] == tag {
			p.btbTgt[base+w] = target
			p.touchBTB(base, w)
			return
		}
		if p.btbLRU[base+w] < p.btbLRU[base+victim] {
			victim = w
		}
	}
	p.btbTags[base+victim] = tag
	p.btbTgt[base+victim] = target
	p.touchBTB(base, victim)
}

// touchBTB takes the set's base offset (set*BTBAssoc), not the set number.
func (p *Predictor) touchBTB(base, way int) {
	for w := 0; w < p.cfg.BTBAssoc; w++ {
		if p.btbLRU[base+w] > 0 {
			p.btbLRU[base+w]--
		}
	}
	p.btbLRU[base+way] = uint8(p.cfg.BTBAssoc)
}

// PushRAS records a call's return address.
func (p *Predictor) PushRAS(ret uint64) {
	p.ras[p.rasTop] = ret
	p.rasTop = (p.rasTop + 1) % len(p.ras)
}

// PopRAS predicts a return target; ok is false when the stack is empty
// (all-zero slot).
func (p *Predictor) PopRAS() (uint64, bool) {
	p.rasTop = (p.rasTop - 1 + len(p.ras)) % len(p.ras)
	v := p.ras[p.rasTop]
	return v, v != 0
}

// ResetStats zeroes prediction counters, keeping all learned state.
func (p *Predictor) ResetStats() {
	p.Lookups, p.DirMisses, p.BTBMisses, p.BimodalUsed, p.TwoLevUsed = 0, 0, 0, 0, 0
}

// Reset restores the predictor to its just-constructed state (including the
// weakly-taken counter initialisation), reusing all table storage.
func (p *Predictor) Reset() {
	for i := range p.bimodal {
		p.bimodal[i] = 2
	}
	clear(p.l1hist)
	for i := range p.l2 {
		p.l2[i] = 2
	}
	for i := range p.chooser {
		p.chooser[i] = 1
	}
	clear(p.btbTags)
	clear(p.btbTgt)
	clear(p.btbLRU)
	clear(p.ras)
	p.rasTop = 0
	p.ResetStats()
}

// Accuracy returns the fraction of correct direction predictions so far.
func (p *Predictor) Accuracy() float64 {
	if p.Lookups == 0 {
		return 1
	}
	return 1 - float64(p.DirMisses)/float64(p.Lookups)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
