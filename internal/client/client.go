// Package client is a fault-tolerant HTTP client for the hetwired daemon:
// exponential backoff with deterministic jitter, Retry-After honoring,
// retries restricted to idempotent operations, and a circuit breaker that
// fails fast once the daemon looks down.
//
// Submission is made idempotent by keying every POST /v1/jobs with the
// request's canonical content hash (hetwire.RunRequest.CacheKey, itself
// derived from the ConfigHash of the resolved machine): a retried submit
// whose first attempt actually reached the daemon returns the job that
// attempt created instead of enqueueing a duplicate.
package client

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"hetwire"
	"hetwire/internal/server"
	"hetwire/internal/wire"
	"hetwire/internal/xrand"
)

// Options configures a Client.
type Options struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8677".
	BaseURL string
	// HTTPClient optionally overrides the transport (default
	// http.DefaultClient).
	HTTPClient *http.Client
	// MaxAttempts bounds the attempts per operation, first try included
	// (default 6).
	MaxAttempts int
	// BaseBackoff seeds the exponential backoff schedule (default 200ms);
	// attempt k waits ~BaseBackoff<<k with jitter, capped at MaxBackoff
	// (default 5s). A server Retry-After hint overrides the schedule.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// JitterSeed makes the jitter stream deterministic for tests (default 1).
	JitterSeed uint64
	// BreakerThreshold is how many consecutive transport/5xx failures trip
	// the circuit breaker (default 5); while open, calls fail immediately
	// with ErrCircuitOpen until BreakerCooldown (default 10s) elapses, after
	// which the next call probes the daemon (half-open).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// TraceID is sent as X-Hetwire-Trace on every request so daemon logs,
	// job status, and span timings correlate back to this client. Empty
	// mints a fresh ID at construction — one per client, covering the whole
	// submit/poll conversation of each operation.
	TraceID string
	// AuthToken, when non-empty, is sent as "Authorization: Bearer <token>"
	// on every request. The cluster node agent uses it to authenticate
	// against a hetwired coordinator's /v1/cluster endpoints.
	AuthToken string
	// TenantKey, when non-empty, is sent as X-Hetwire-Tenant on every
	// request, identifying this client's tenant to a multi-tenant daemon.
	// The dedicated header (rather than Authorization) keeps tenant identity
	// working against coordinators, where Authorization carries the cluster
	// token.
	TenantKey string
}

func (o Options) withDefaults() Options {
	if o.HTTPClient == nil {
		o.HTTPClient = http.DefaultClient
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 6
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 200 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 5 * time.Second
	}
	if o.JitterSeed == 0 {
		o.JitterSeed = 1
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 10 * time.Second
	}
	return o
}

// ErrCircuitOpen is returned without touching the network while the breaker
// is open.
var ErrCircuitOpen = errors.New("client: circuit breaker open (daemon looked down recently)")

// APIError is a non-retryable HTTP failure from the daemon. Reason, when
// present, is the daemon's machine-readable rejection code (hetwire.Reason*
// values plus "queue_full"/"draining"/"bad_json"); callers can branch on it
// without parsing the message.
type APIError struct {
	Status  int
	Message string
	Reason  string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: daemon returned %d: %s", e.Status, e.Message)
}

// Client talks to one hetwired daemon. Safe for concurrent use.
type Client struct {
	opts Options

	mu        sync.Mutex
	jitter    *xrand.Source
	fails     int       // consecutive breaker-counted failures
	openUntil time.Time // breaker open while now < openUntil

	// now and sleep are test seams.
	now   func() time.Time
	sleep func(ctx context.Context, d time.Duration) error
}

// New builds a client for the daemon at opts.BaseURL.
func New(opts Options) *Client {
	opts = opts.withDefaults()
	if opts.TraceID == "" {
		opts.TraceID = server.MintTraceID()
	}
	return &Client{
		opts:   opts,
		jitter: xrand.New(opts.JitterSeed),
		now:    time.Now,
		sleep:  sleepCtx,
	}
}

// TraceID returns the identifier this client stamps on every request.
func (c *Client) TraceID() string { return c.opts.TraceID }

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// SubmitRun submits one run request as a job. The call is idempotent: it is
// keyed by the request's canonical content hash, so retries (ours or a
// caller's) land on the same job. deadlineMS, when positive, asks the daemon
// to bound the job's wall clock.
func (c *Client) SubmitRun(ctx context.Context, req *hetwire.RunRequest, deadlineMS int64) (server.JobStatus, error) {
	key, err := req.CacheKey()
	if err != nil {
		return server.JobStatus{}, err
	}
	body := struct {
		hetwire.RunRequest
		DeadlineMS int64 `json:"deadline_ms,omitempty"`
	}{RunRequest: *req, DeadlineMS: deadlineMS}
	raw, err := json.Marshal(body)
	if err != nil {
		return server.JobStatus{}, err
	}
	var st server.JobStatus
	err = c.do(ctx, &apiCall{method: http.MethodPost, path: "/v1/jobs", body: raw, idemKey: "run-" + key}, &st)
	return st, err
}

// SubmitBatch submits a batch job, keyed by the content hash of the
// submission body so retries (ours or a caller's) land on the job the first
// attempt created.
func (c *Client) SubmitBatch(ctx context.Context, batch *hetwire.BatchRequest, deadlineMS int64) (server.JobStatus, error) {
	body := struct {
		Batch      *hetwire.BatchRequest `json:"batch"`
		DeadlineMS int64                 `json:"deadline_ms,omitempty"`
	}{Batch: batch, DeadlineMS: deadlineMS}
	raw, err := json.Marshal(body)
	if err != nil {
		return server.JobStatus{}, err
	}
	sum := sha256.Sum256(raw)
	var st server.JobStatus
	err = c.do(ctx, &apiCall{method: http.MethodPost, path: "/v1/jobs", body: raw,
		idemKey: "batch-" + hex.EncodeToString(sum[:])}, &st)
	return st, err
}

// Job polls one job's status.
func (c *Client) Job(ctx context.Context, id string) (server.JobStatus, error) {
	var st server.JobStatus
	err := c.do(ctx, &apiCall{method: http.MethodGet, path: "/v1/jobs/" + id}, &st)
	return st, err
}

// Cancel cancels a queued or running job (idempotent by nature).
func (c *Client) Cancel(ctx context.Context, id string) (server.JobStatus, error) {
	var st server.JobStatus
	err := c.do(ctx, &apiCall{method: http.MethodDelete, path: "/v1/jobs/" + id}, &st)
	return st, err
}

// Await polls the job until it reaches a terminal state (or ctx ends).
func (c *Client) Await(ctx context.Context, id string, poll time.Duration) (server.JobStatus, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		if err := c.sleep(ctx, poll); err != nil {
			return st, err
		}
	}
}

// Run submits the request, awaits the job, and decodes the result: the
// whole submit/poll loop with every retry policy applied. A job that ends
// failed or cancelled is reported as an error carrying the job's message.
func (c *Client) Run(ctx context.Context, req *hetwire.RunRequest, deadlineMS int64) (*hetwire.RunResponse, server.JobStatus, error) {
	st, err := c.SubmitRun(ctx, req, deadlineMS)
	if err != nil {
		return nil, st, err
	}
	st, err = c.Await(ctx, st.ID, 0)
	if err != nil {
		return nil, st, err
	}
	if st.State != server.StateDone {
		return nil, st, fmt.Errorf("client: job %s ended %s: %s", st.ID, st.State, st.Error)
	}
	var resp hetwire.RunResponse
	if err := json.Unmarshal(st.Result, &resp); err != nil {
		return nil, st, fmt.Errorf("client: decoding result of job %s: %w", st.ID, err)
	}
	return &resp, st, nil
}

// RunWire performs a synchronous run negotiating the binary wire format:
// POST /v1/run with Accept: application/x-hetwire-bin. A daemon that speaks
// the format answers with the stored result frame; a daemon that does not
// ignores the Accept header and answers JSON, detected here by content type
// — the fallback costs only the decode. The bool result reports whether the
// daemon served the run from its cache.
func (c *Client) RunWire(ctx context.Context, req *hetwire.RunRequest) (*hetwire.RunResponse, bool, error) {
	key, err := req.CacheKey()
	if err != nil {
		return nil, false, err
	}
	raw, err := json.Marshal(req)
	if err != nil {
		return nil, false, err
	}
	var rr rawResponse
	if err := c.do(ctx, &apiCall{
		method: http.MethodPost, path: "/v1/run", body: raw,
		accept: wire.ContentType, idemKey: "run-" + key,
	}, &rr); err != nil {
		return nil, false, err
	}
	hit := rr.cacheHeader == "hit"
	if strings.HasPrefix(rr.contentType, wire.ContentType) || wire.IsWire(rr.body) {
		resp, err := wire.DecodeRunResult(rr.body)
		return resp, hit, err
	}
	var resp hetwire.RunResponse
	if err := json.Unmarshal(rr.body, &resp); err != nil {
		return nil, hit, fmt.Errorf("client: decoding run response: %w", err)
	}
	return &resp, hit, nil
}

// StreamBatch consumes a batch job's binary stream (GET /v1/jobs/{id}/stream),
// invoking fn for each scenario frame as it arrives — in canonical index
// order, before the job has finished — and returning the trailer. Streaming
// is a single attempt by nature (frames already consumed cannot be
// replayed); callers wanting retry semantics should fall back to Await and
// the job result.
func (c *Client) StreamBatch(ctx context.Context, jobID string, fn func(*wire.Scenario) error) (*wire.BatchTrailer, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.opts.BaseURL+"/v1/jobs/"+jobID+"/stream", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", wire.ContentType)
	if c.opts.AuthToken != "" {
		req.Header.Set("Authorization", "Bearer "+c.opts.AuthToken)
	}
	if c.opts.TenantKey != "" {
		req.Header.Set(server.TenantHeader, c.opts.TenantKey)
	}
	req.Header.Set(server.TraceHeader, c.opts.TraceID)
	resp, err := c.opts.HTTPClient.Do(req)
	if err != nil {
		c.breakerRecord(false)
		return nil, fmt.Errorf("client: streaming job %s: %w", jobID, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		c.breakerRecord(true) // the daemon answered; the job is just not streamable
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		var msg struct {
			Error  string `json:"error"`
			Reason string `json:"reason"`
		}
		_ = json.Unmarshal(raw, &msg)
		if msg.Error == "" {
			msg.Error = string(raw)
		}
		return nil, &APIError{Status: resp.StatusCode, Message: msg.Error, Reason: msg.Reason}
	}
	c.breakerRecord(true)
	rd := wire.NewReader(resp.Body)
	var total, seen int
	sawHeader := false
	for {
		h, frame, err := rd.Next()
		if err == io.EOF {
			return nil, fmt.Errorf("client: job %s stream ended without a trailer", jobID)
		}
		if err != nil {
			return nil, fmt.Errorf("client: job %s stream: %w", jobID, err)
		}
		switch h.Type {
		case wire.TypeBatchHeader:
			if sawHeader {
				return nil, fmt.Errorf("client: job %s stream repeated its header", jobID)
			}
			sawHeader = true
			if total, err = wire.DecodeBatchHeader(frame); err != nil {
				return nil, err
			}
		case wire.TypeScenario:
			if !sawHeader {
				return nil, fmt.Errorf("client: job %s stream began mid-batch", jobID)
			}
			sc, err := wire.DecodeScenario(frame)
			if err != nil {
				return nil, err
			}
			if sc.Index != seen {
				return nil, fmt.Errorf("client: job %s stream scenario %d arrived where %d was expected",
					jobID, sc.Index, seen)
			}
			seen++
			if fn != nil {
				if err := fn(sc); err != nil {
					return nil, err
				}
			}
		case wire.TypeBatchTrailer:
			tr, err := wire.DecodeBatchTrailer(frame)
			if err != nil {
				return nil, err
			}
			if !sawHeader || seen != total || tr.Total != total {
				return nil, fmt.Errorf("client: job %s stream delivered %d of %d scenarios", jobID, seen, total)
			}
			return &tr, nil
		default:
			return nil, fmt.Errorf("client: job %s stream carried unexpected frame type %#02x", jobID, h.Type)
		}
	}
}

// DoJSON performs one authenticated API operation under the client's full
// fault-tolerance policy — retries with jittered exponential backoff,
// Retry-After honoring, and the circuit breaker. body, when non-nil, is
// marshalled as the JSON request body; out, when non-nil, receives the
// decoded response. A POST retries only when idemKey is non-empty and the
// server deduplicates replays of it; the cluster protocol's register, lease,
// and upload operations are idempotent by construction (content-addressed
// results, coordinator-side duplicate detection), which is what makes them
// safe to drive through this retry loop.
func (c *Client) DoJSON(ctx context.Context, method, path string, body any, idemKey string, out any) error {
	var raw []byte
	if body != nil {
		var err error
		raw, err = json.Marshal(body)
		if err != nil {
			return fmt.Errorf("client: encoding %s %s body: %w", method, path, err)
		}
	}
	return c.do(ctx, &apiCall{method: method, path: path, body: raw, idemKey: idemKey}, out)
}

// DoBytes is DoJSON for pre-encoded request bodies: the bytes are sent
// verbatim under the given content type (e.g. a binary wire upload), with
// the same retry, backoff, and breaker policy.
func (c *Client) DoBytes(ctx context.Context, method, path, contentType string, body []byte, idemKey string, out any) error {
	return c.do(ctx, &apiCall{method: method, path: path, body: body, ctype: contentType, idemKey: idemKey}, out)
}

// apiCall describes one HTTP operation for the retry loop.
type apiCall struct {
	method string
	path   string
	body   []byte
	// ctype is the request Content-Type; empty defaults to application/json
	// when a body is present.
	ctype string
	// accept, when set, negotiates the response encoding (the binary wire
	// format); pair it with a *rawResponse out so the undecoded body and its
	// content type reach the caller.
	accept  string
	idemKey string
}

// rawResponse receives an undecoded response body plus the headers content
// negotiation turns on. Pass it as `out` to skip the JSON decode.
type rawResponse struct {
	body        []byte
	contentType string
	cacheHeader string // X-Hetwired-Cache: hit|miss
}

// do performs one API operation with retries, backoff, Retry-After, and the
// circuit breaker. Only idempotent operations retry: GET and DELETE always
// are; a POST is retried only when idemKey is non-empty (the daemon then
// deduplicates replays).
func (c *Client) do(ctx context.Context, call *apiCall, out any) error {
	retryable := call.method == http.MethodGet || call.method == http.MethodDelete || call.idemKey != ""
	var lastErr error
	for attempt := 0; attempt < c.opts.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := c.breakerAllow(); err != nil {
			return err
		}
		retryAfter, err := c.once(ctx, call, out)
		if err == nil {
			return nil
		}
		lastErr = err
		var apiErr *APIError
		if errors.As(err, &apiErr) && !retryStatus(apiErr.Status) {
			return err // a definitive daemon answer; retrying cannot help
		}
		if !retryable || attempt == c.opts.MaxAttempts-1 {
			return err
		}
		wait := c.backoff(attempt)
		if retryAfter > 0 {
			wait = retryAfter
		}
		if err := c.sleep(ctx, wait); err != nil {
			return err
		}
	}
	return lastErr
}

// once performs a single HTTP attempt, classifying the outcome for the
// breaker and extracting any Retry-After hint.
func (c *Client) once(ctx context.Context, call *apiCall, out any) (retryAfter time.Duration, err error) {
	var rd io.Reader
	if call.body != nil {
		rd = bytes.NewReader(call.body)
	}
	req, err := http.NewRequestWithContext(ctx, call.method, c.opts.BaseURL+call.path, rd)
	if err != nil {
		return 0, err
	}
	if call.body != nil {
		ct := call.ctype
		if ct == "" {
			ct = "application/json"
		}
		req.Header.Set("Content-Type", ct)
	}
	if call.accept != "" {
		req.Header.Set("Accept", call.accept)
	}
	if call.idemKey != "" {
		req.Header.Set("Idempotency-Key", call.idemKey)
	}
	if c.opts.AuthToken != "" {
		req.Header.Set("Authorization", "Bearer "+c.opts.AuthToken)
	}
	if c.opts.TenantKey != "" {
		req.Header.Set(server.TenantHeader, c.opts.TenantKey)
	}
	req.Header.Set(server.TraceHeader, c.opts.TraceID)
	resp, err := c.opts.HTTPClient.Do(req)
	if err != nil {
		c.breakerRecord(false)
		return 0, fmt.Errorf("client: %s %s: %w", call.method, call.path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		c.breakerRecord(false)
		return 0, fmt.Errorf("client: reading %s %s response: %w", call.method, call.path, err)
	}
	if resp.StatusCode >= 400 {
		// 429 is the daemon shedding load, not the daemon being broken: it
		// retries but does not count against the breaker.
		c.breakerRecord(resp.StatusCode == http.StatusTooManyRequests)
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, perr := strconv.Atoi(ra); perr == nil && secs >= 0 {
				retryAfter = time.Duration(secs) * time.Second
				if retryAfter > 30*time.Second {
					retryAfter = 30 * time.Second
				}
			}
		}
		var msg struct {
			Error  string `json:"error"`
			Reason string `json:"reason"`
		}
		_ = json.Unmarshal(raw, &msg)
		if msg.Error == "" {
			msg.Error = string(raw)
		}
		return retryAfter, &APIError{Status: resp.StatusCode, Message: msg.Error, Reason: msg.Reason}
	}
	c.breakerRecord(true)
	switch o := out.(type) {
	case nil:
	case *rawResponse:
		o.body = raw
		o.contentType = resp.Header.Get("Content-Type")
		o.cacheHeader = resp.Header.Get("X-Hetwired-Cache")
	default:
		if err := json.Unmarshal(raw, out); err != nil {
			return 0, fmt.Errorf("client: decoding %s %s response: %w", call.method, call.path, err)
		}
	}
	return 0, nil
}

// retryStatus reports whether an HTTP status is worth retrying.
func retryStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return status == 0 // transport error, no status
}

// backoff returns the jittered exponential delay for the given attempt:
// uniformly in [half, full] of min(MaxBackoff, BaseBackoff<<attempt).
func (c *Client) backoff(attempt int) time.Duration {
	d := c.opts.BaseBackoff << uint(attempt)
	if d <= 0 || d > c.opts.MaxBackoff {
		d = c.opts.MaxBackoff
	}
	c.mu.Lock()
	u := c.jitter.Uint64()
	c.mu.Unlock()
	frac := 0.5 + 0.5*float64(u>>11)/(1<<53)
	return time.Duration(float64(d) * frac)
}

// breakerAllow rejects immediately while the breaker is open; once the
// cooldown has elapsed the call proceeds as the half-open probe.
func (c *Client) breakerAllow() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.now().Before(c.openUntil) {
		return ErrCircuitOpen
	}
	return nil
}

// breakerRecord folds one attempt outcome into the breaker state: a success
// closes it, a failure past the threshold (re-)opens it for the cooldown.
func (c *Client) breakerRecord(ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ok {
		c.fails = 0
		c.openUntil = time.Time{}
		return
	}
	c.fails++
	if c.fails >= c.opts.BreakerThreshold {
		c.openUntil = c.now().Add(c.opts.BreakerCooldown)
	}
}

// Breaker reports whether the circuit is currently open (test observability).
func (c *Client) Breaker() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now().Before(c.openUntil)
}
