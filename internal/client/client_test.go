package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hetwire"
	"hetwire/internal/faultinject"
	"hetwire/internal/server"
)

// instantSleeper replaces the client's sleep seam: it records every backoff
// the client would have taken and returns immediately.
type instantSleeper struct {
	mu    sync.Mutex
	waits []time.Duration
}

func (s *instantSleeper) sleep(ctx context.Context, d time.Duration) error {
	s.mu.Lock()
	s.waits = append(s.waits, d)
	s.mu.Unlock()
	return ctx.Err()
}

func newFastClient(t *testing.T, url string, opts Options) (*Client, *instantSleeper) {
	t.Helper()
	opts.BaseURL = url
	c := New(opts)
	sl := &instantSleeper{}
	c.sleep = sl.sleep
	return c, sl
}

func okStatus(w http.ResponseWriter, code int, st server.JobStatus) {
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(st)
}

// TestRetryOn429HonorsRetryAfter: a 429 with Retry-After overrides the
// backoff schedule, and the idempotency key is replayed verbatim on every
// attempt so the daemon can deduplicate.
func TestRetryOn429HonorsRetryAfter(t *testing.T) {
	var attempts atomic.Int32
	var keys []string
	var mu sync.Mutex
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		keys = append(keys, r.Header.Get("Idempotency-Key"))
		mu.Unlock()
		if attempts.Add(1) <= 2 {
			w.Header().Set("Retry-After", "2")
			http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
			return
		}
		okStatus(w, http.StatusAccepted, server.JobStatus{ID: "j-1", State: server.StateQueued})
	}))
	defer ts.Close()

	c, sl := newFastClient(t, ts.URL, Options{})
	st, err := c.SubmitRun(context.Background(), &hetwire.RunRequest{Benchmark: "gzip", N: 5000}, 0)
	if err != nil {
		t.Fatalf("SubmitRun: %v", err)
	}
	if st.ID != "j-1" {
		t.Errorf("job ID = %q", st.ID)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3", got)
	}
	if len(sl.waits) != 2 || sl.waits[0] != 2*time.Second || sl.waits[1] != 2*time.Second {
		t.Errorf("backoffs = %v, want two 2s waits from Retry-After", sl.waits)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(keys) != 3 || keys[0] == "" || keys[1] != keys[0] || keys[2] != keys[0] {
		t.Errorf("idempotency keys across attempts = %q, want one stable non-empty key", keys)
	}
	if c.Breaker() {
		t.Error("429s tripped the breaker; shedding load is not an outage")
	}
}

// TestNonRetryableStatusFailsFast: a definitive daemon answer (400) is
// returned on the first attempt — retrying a rejected request cannot help.
func TestNonRetryableStatusFailsFast(t *testing.T) {
	var attempts atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		http.Error(w, `{"error":"unknown benchmark"}`, http.StatusBadRequest)
	}))
	defer ts.Close()

	c, _ := newFastClient(t, ts.URL, Options{})
	_, err := c.SubmitRun(context.Background(), &hetwire.RunRequest{Benchmark: "gzip", N: 5000}, 0)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want APIError{400}", err)
	}
	if !strings.Contains(apiErr.Message, "unknown benchmark") {
		t.Errorf("message = %q, daemon error lost", apiErr.Message)
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("attempts = %d, want 1", got)
	}
}

// TestNonIdempotentPostNotRetried: without an idempotency key, a POST that
// fails retryably is still not retried — the request may have side effects.
func TestNonIdempotentPostNotRetried(t *testing.T) {
	var attempts atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		http.Error(w, `{"error":"unavailable"}`, http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c, _ := newFastClient(t, ts.URL, Options{})
	err := c.do(context.Background(), &apiCall{method: http.MethodPost, path: "/v1/x", body: []byte(`{}`)}, nil)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want APIError{503}", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("attempts = %d, want 1 (non-idempotent POST must not retry)", got)
	}
}

// TestBreakerTripsAndRecovers: consecutive 5xx failures open the circuit;
// while open, calls fail fast without touching the network; after the
// cooldown, the half-open probe closes it on success.
func TestBreakerTripsAndRecovers(t *testing.T) {
	var attempts atomic.Int32
	var healthy atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		if healthy.Load() {
			okStatus(w, http.StatusOK, server.JobStatus{ID: "j-2", State: server.StateDone})
			return
		}
		http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
	}))
	defer ts.Close()

	c, _ := newFastClient(t, ts.URL, Options{MaxAttempts: 1, BreakerThreshold: 3, BreakerCooldown: 10 * time.Second})
	now := time.Now()
	c.now = func() time.Time { return now }

	for i := 0; i < 3; i++ {
		if _, err := c.Job(context.Background(), "j-2"); err == nil {
			t.Fatal("unhealthy daemon reported success")
		}
	}
	if !c.Breaker() {
		t.Fatal("breaker not open after 3 consecutive 500s")
	}
	before := attempts.Load()
	if _, err := c.Job(context.Background(), "j-2"); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open-breaker call: err = %v, want ErrCircuitOpen", err)
	}
	if attempts.Load() != before {
		t.Error("open breaker still hit the network")
	}

	healthy.Store(true)
	now = now.Add(11 * time.Second) // past the cooldown: half-open probe
	st, err := c.Job(context.Background(), "j-2")
	if err != nil || st.ID != "j-2" {
		t.Fatalf("half-open probe: %+v, %v", st, err)
	}
	if c.Breaker() {
		t.Error("breaker still open after a successful probe")
	}
}

// TestAwaitPollsToTerminal: Await keeps polling through non-terminal states
// and returns the first terminal snapshot.
func TestAwaitPollsToTerminal(t *testing.T) {
	var polls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st := server.JobStatus{ID: "j-3", State: server.StateRunning}
		if polls.Add(1) >= 3 {
			st.State = server.StateDone
			st.Result = json.RawMessage(`{"ipc":1.5}`)
		}
		okStatus(w, http.StatusOK, st)
	}))
	defer ts.Close()

	c, _ := newFastClient(t, ts.URL, Options{})
	st, err := c.Await(context.Background(), "j-3", time.Millisecond)
	if err != nil || st.State != server.StateDone {
		t.Fatalf("Await = %+v, %v", st, err)
	}
	if polls.Load() != 3 {
		t.Errorf("polls = %d, want 3", polls.Load())
	}
}

// TestClientServerIntegration is the acceptance scenario: a saturated daemon
// (one slowed worker, queue depth one) sheds the client's submit with 429s,
// and the client retries with backoff until capacity frees, then awaits the
// job to completion. Asserted against a real server.Server.
func TestClientServerIntegration(t *testing.T) {
	in, err := faultinject.Parse("seed=9,slow=1,slowms=400")
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(server.Options{Workers: 1, QueueDepth: 1, Faults: in})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})

	// Saturate: one job claims the (slowed) worker, one fills the queue.
	submitRaw := func(body string) int {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	if code := submitRaw(`{"benchmark":"gcc","n":6000}`); code != http.StatusAccepted {
		t.Fatalf("blocker 1 = %d", code)
	}
	deadline := time.Now().Add(5 * time.Second)
	for { // the worker needs a moment to pop blocker 1 off the queue
		if code := submitRaw(`{"benchmark":"mcf","n":6000}`); code == http.StatusAccepted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("blocker 2 never accepted")
		}
		time.Sleep(5 * time.Millisecond)
	}

	cl := New(Options{BaseURL: ts.URL, MaxAttempts: 10, BaseBackoff: 50 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	resp, st, err := cl.Run(ctx, &hetwire.RunRequest{Benchmark: "gzip", N: 8000}, 0)
	if err != nil {
		t.Fatalf("Run through saturation: %v", err)
	}
	if st.State != server.StateDone || resp.IPC <= 0 {
		t.Fatalf("result = %+v / %+v", st, resp)
	}
	if cl.Breaker() {
		t.Error("breaker open after a successful run")
	}

	// A second identical submit must replay onto the same (finished) job.
	st2, err := cl.SubmitRun(ctx, &hetwire.RunRequest{Benchmark: "gzip", N: 8000}, 0)
	if err != nil {
		t.Fatalf("replay submit: %v", err)
	}
	if st2.ID != st.ID {
		t.Errorf("replay landed on job %s, first run was %s", st2.ID, st.ID)
	}
}

// TestClientTracePropagation: every request carries the client's trace ID,
// the daemon threads it through to the job, and the finished status returns
// populated per-phase spans — the full client→daemon→simulator chain.
func TestClientTracePropagation(t *testing.T) {
	s := server.New(server.Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})

	cl := New(Options{BaseURL: ts.URL, TraceID: "client-trace-42"})
	if cl.TraceID() != "client-trace-42" {
		t.Fatalf("TraceID() = %q", cl.TraceID())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	resp, st, err := cl.Run(ctx, &hetwire.RunRequest{Benchmark: "gzip", N: 20000}, 0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if resp.IPC <= 0 {
		t.Fatalf("result = %+v", resp)
	}
	if st.TraceID != "client-trace-42" {
		t.Errorf("job trace_id = %q, want the client's ID", st.TraceID)
	}
	names := make(map[string]bool, len(st.Spans))
	for _, sp := range st.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"queue_wait", "cache_lookup", "sim_run", "result_encode"} {
		if !names[want] {
			t.Errorf("spans missing %q: %+v", want, st.Spans)
		}
	}

	// An unset TraceID mints one per client.
	minted := New(Options{BaseURL: ts.URL})
	if minted.TraceID() == "" || minted.TraceID() == cl.TraceID() {
		t.Errorf("minted trace ID = %q", minted.TraceID())
	}
}

// TestAPIErrorCarriesReason: the daemon's machine-readable rejection code
// survives into APIError.Reason.
func TestAPIErrorCarriesReason(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if got := r.Header.Get(server.TraceHeader); got != "reason-test" {
			t.Errorf("request trace header = %q", got)
		}
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"unknown benchmark \"nope\"","reason":"unknown_benchmark"}`))
	}))
	defer ts.Close()

	c, _ := newFastClient(t, ts.URL, Options{TraceID: "reason-test"})
	_, err := c.SubmitRun(context.Background(), &hetwire.RunRequest{Benchmark: "gzip", N: 5000}, 0)
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want APIError", err)
	}
	if apiErr.Reason != hetwire.ReasonUnknownBenchmark {
		t.Errorf("reason = %q, want %q", apiErr.Reason, hetwire.ReasonUnknownBenchmark)
	}
}
