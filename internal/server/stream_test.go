package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"testing"
	"time"

	"hetwire/internal/wire"
)

// --- the binary streaming endpoint (GET /v1/jobs/{id}/stream) ---

// submitBatch posts a batch and returns its submission status.
func submitBatch(t *testing.T, base string, body map[string]any) JobStatus {
	t.Helper()
	resp, raw := postJSON(t, base+"/v1/jobs", body)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit status = %d: %s", resp.StatusCode, raw)
	}
	var st JobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// openStream starts the binary stream for a job and returns a frame reader
// over the live response body.
func openStream(t *testing.T, ctx context.Context, base, id string) (*wire.Reader, *http.Response) {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/jobs/"+id+"/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream status = %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != wire.ContentType {
		t.Fatalf("stream Content-Type = %q, want %q", ct, wire.ContentType)
	}
	return wire.NewReader(resp.Body), resp
}

// readBatchHeader reads and validates the stream-opening batch header.
func readBatchHeader(t *testing.T, rd *wire.Reader, wantTotal int) {
	t.Helper()
	h, frame, err := rd.Next()
	if err != nil {
		t.Fatalf("reading batch header: %v", err)
	}
	if h.Type != wire.TypeBatchHeader {
		t.Fatalf("first frame type = %#x, want TypeBatchHeader", h.Type)
	}
	total, err := wire.DecodeBatchHeader(frame)
	if err != nil {
		t.Fatal(err)
	}
	if total != wantTotal {
		t.Fatalf("batch header total = %d, want %d", total, wantTotal)
	}
}

// TestStreamBatchOrderedBeforeCompletion is the streaming e2e: a batch
// submitted over the binary endpoint delivers per-scenario frames in
// canonical expansion-index order while the job is still running — the
// first frame is observable before the last scenario has simulated — and
// the trailer counts agree with the frames that preceded it.
func TestStreamBatchOrderedBeforeCompletion(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	// One worker, sequential scenarios with a non-trivial budget: the stream
	// must outrun the batch, not trail it.
	st := submitBatch(t, ts.URL, batchBody([]string{"I", "V"}, []string{"gzip", "gcc", "mcf"}, 120_000, 1))
	const total = 6

	rd, _ := openStream(t, context.Background(), ts.URL, st.ID)
	readBatchHeader(t, rd, total)

	sawLive := false
	for i := 0; i < total; i++ {
		h, frame, err := rd.Next()
		if err != nil {
			t.Fatalf("reading scenario %d: %v", i, err)
		}
		if h.Type != wire.TypeScenario {
			t.Fatalf("frame %d type = %#x, want TypeScenario", i, h.Type)
		}
		if int(h.Index) != i {
			t.Fatalf("frame %d carries index %d: stream is out of canonical order", i, h.Index)
		}
		sc, err := wire.DecodeScenario(frame)
		if err != nil {
			t.Fatalf("scenario %d: %v", i, err)
		}
		if sc.Error != "" || sc.Result == nil {
			t.Fatalf("scenario %d failed: %s", i, sc.Error)
		}
		if h.SummaryFloat() <= 0 {
			t.Errorf("scenario %d header summary = %g, want positive IPC", i, h.SummaryFloat())
		}
		// The job still has scenarios to run after the first frame arrives:
		// delivery is progressive, not a terminal-blob replay.
		if i == 0 && !s.lookup(st.ID).State().Terminal() {
			sawLive = true
		}
	}
	if !sawLive {
		t.Error("first frame arrived only after the job terminated; stream is not progressive")
	}

	h, frame, err := rd.Next()
	if err != nil {
		t.Fatalf("reading trailer: %v", err)
	}
	if h.Type != wire.TypeBatchTrailer {
		t.Fatalf("final frame type = %#x, want TypeBatchTrailer", h.Type)
	}
	tr, err := wire.DecodeBatchTrailer(frame)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Total != total || tr.Completed != total || tr.Failed != 0 || tr.Incomplete() {
		t.Errorf("trailer = %+v, want %d clean completions", tr, total)
	}
	if _, _, err := rd.Next(); err != io.EOF {
		t.Errorf("stream has bytes after the trailer: %v", err)
	}
}

// TestStreamClientDisconnectJobContinues: a client that vanishes mid-stream
// must not take the job with it — the worker finishes the batch, the
// counters stay exact, and a later stream of the finished job replays every
// frame.
func TestStreamClientDisconnectJobContinues(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	st := submitBatch(t, ts.URL, batchBody([]string{"I", "V"}, []string{"gzip", "gcc"}, 120_000, 1))
	const total = 4

	ctx, cancel := context.WithCancel(context.Background())
	rd, _ := openStream(t, ctx, ts.URL, st.ID)
	readBatchHeader(t, rd, total)
	if h, _, err := rd.Next(); err != nil || h.Type != wire.TypeScenario || h.Index != 0 {
		t.Fatalf("first scenario frame: type=%#x index=%d err=%v", h.Type, h.Index, err)
	}
	cancel() // hang up mid-stream

	final := waitTerminal(t, ts.URL, st.ID, 60*time.Second)
	if final.State != StateDone {
		t.Fatalf("job after disconnect = %s (%s), want done", final.State, final.Error)
	}
	if final.Batch == nil || final.Batch.Completed != total || final.Batch.Failed != 0 {
		t.Fatalf("batch counters after disconnect = %+v", final.Batch)
	}

	// The worker is free again: a fresh job gets through promptly.
	resp, raw := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"benchmark": "gzip", "n": 3000})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-disconnect submit = %d: %s", resp.StatusCode, raw)
	}
	var next JobStatus
	if err := json.Unmarshal(raw, &next); err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, ts.URL, next.ID, 30*time.Second); got.State != StateDone {
		t.Fatalf("post-disconnect job = %s", got.State)
	}

	// Re-streaming the finished job replays the full frame sequence.
	rd2, _ := openStream(t, context.Background(), ts.URL, st.ID)
	readBatchHeader(t, rd2, total)
	for i := 0; i < total; i++ {
		h, _, err := rd2.Next()
		if err != nil || h.Type != wire.TypeScenario || int(h.Index) != i {
			t.Fatalf("replay frame %d: type=%#x index=%d err=%v", i, h.Type, h.Index, err)
		}
	}
	h, frame, err := rd2.Next()
	if err != nil || h.Type != wire.TypeBatchTrailer {
		t.Fatalf("replay trailer: type=%#x err=%v", h.Type, err)
	}
	tr, err := wire.DecodeBatchTrailer(frame)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Completed != total || tr.Incomplete() {
		t.Errorf("replay trailer = %+v", tr)
	}
}

// TestStreamCacheHitsZeroDecode: resubmitting a finished batch streams every
// scenario from the stored result frames — each frame flagged cached, no
// re-simulation, and (the zero-copy invariant) not a single RunResponse
// payload decode anywhere in the process while the stream is served.
func TestStreamCacheHitsZeroDecode(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2})
	body := batchBody([]string{"I", "V"}, []string{"gzip", "mcf"}, 3_000, 0)
	const total = 4

	first := submitBatch(t, ts.URL, body)
	if st := waitTerminal(t, ts.URL, first.ID, 60*time.Second); st.State != StateDone {
		t.Fatalf("warming batch = %s (%s)", st.State, st.Error)
	}
	simsBefore := s.Cache().Stats().Misses

	second := submitBatch(t, ts.URL, body)
	decodesBefore := wire.ResultDecodes.Value()
	rd, _ := openStream(t, context.Background(), ts.URL, second.ID)
	readBatchHeader(t, rd, total)
	for i := 0; i < total; i++ {
		h, _, err := rd.Next()
		if err != nil {
			t.Fatalf("cached scenario %d: %v", i, err)
		}
		if int(h.Index) != i || h.Type != wire.TypeScenario {
			t.Fatalf("cached frame %d: type=%#x index=%d", i, h.Type, h.Index)
		}
		if h.Flags&wire.FlagCached == 0 {
			t.Errorf("scenario %d not served from cache", i)
		}
	}
	h, frame, err := rd.Next()
	if err != nil || h.Type != wire.TypeBatchTrailer {
		t.Fatalf("cached trailer: type=%#x err=%v", h.Type, err)
	}
	tr, err := wire.DecodeBatchTrailer(frame)
	if err != nil {
		t.Fatal(err)
	}
	if tr.CacheHits != total || tr.Completed != total {
		t.Errorf("cached trailer = %+v, want %d cache hits", tr, total)
	}
	if got := wire.ResultDecodes.Value(); got != decodesBefore {
		t.Errorf("cache-hit stream performed %d result decodes, want 0", got-decodesBefore)
	}
	if sims := s.Cache().Stats().Misses; sims != simsBefore {
		t.Errorf("cache-hit batch re-simulated %d scenarios", sims-simsBefore)
	}
}

// --- binary /v1/run negotiation ---

// TestRunSyncBinaryCacheHitZeroDecode: a /v1/run cache hit negotiated via
// Accept is served as one copy of the stored frame — the ResultDecodes
// counter must not move for the entire hit request.
func TestRunSyncBinaryCacheHitZeroDecode(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	post := func() (*http.Response, []byte) {
		t.Helper()
		raw, _ := json.Marshal(map[string]any{"benchmark": "gzip", "n": 5_000})
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/run", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Accept", wire.ContentType)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}

	if resp, body := post(); resp.StatusCode != http.StatusOK {
		t.Fatalf("warming run = %d: %s", resp.StatusCode, body)
	}

	before := wire.ResultDecodes.Value()
	resp, body := post()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cache-hit run = %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Hetwired-Cache"); got != "hit" {
		t.Fatalf("X-Hetwired-Cache = %q, want hit", got)
	}
	if ct := resp.Header.Get("Content-Type"); ct != wire.ContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, wire.ContentType)
	}
	if !wire.IsWire(body) {
		t.Fatal("hit body is not a wire frame")
	}
	if err := wire.ValidateResultFrame(body); err != nil {
		t.Fatalf("hit frame invalid: %v", err)
	}
	if got := wire.ResultDecodes.Value(); got != before {
		t.Errorf("binary cache hit performed %d result decodes, want 0", got-before)
	}
	// Client-side decode (after the measurement window) yields a real result.
	out, err := wire.DecodeRunResult(body)
	if err != nil {
		t.Fatal(err)
	}
	if out.Benchmark != "gzip" || out.IPC <= 0 {
		t.Errorf("decoded hit = %+v", out)
	}
}

// --- Retry-After before the first completed job ---

// TestRetryAfterDefaultBeforeFirstJob is the regression test for the
// zero-jobs-completed case: with no observed job latency to scale by queue
// depth, a 429 must carry the configured default hint rather than a
// depth-multiplied guess.
func TestRetryAfterDefaultBeforeFirstJob(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 1, DefaultRetryAfter: 7 * time.Second})
	sawBusy := false
	for i := 0; i < 8; i++ {
		resp, _ := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"benchmark": "gzip", "n": 300_000})
		if resp.StatusCode == http.StatusTooManyRequests {
			sawBusy = true
			ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
			if err != nil {
				t.Fatalf("Retry-After = %q: %v", resp.Header.Get("Retry-After"), err)
			}
			if ra != 7 {
				t.Errorf("Retry-After before first completed job = %d, want the configured 7", ra)
			}
			break
		}
	}
	if !sawBusy {
		t.Error("queue never reported full")
	}
}
