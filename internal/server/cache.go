package server

import (
	"container/list"
	"sync"
)

// Cache is a content-addressed result cache with LRU eviction under a byte
// budget and in-flight deduplication: concurrent requests for the same key
// coalesce onto one computation instead of simulating twice. Keys are the
// canonical request hashes from hetwire.RunRequest.CacheKey, so a hit is
// guaranteed to be byte-identical to what re-running the request would
// produce (simulations are deterministic).
type Cache struct {
	mu       sync.Mutex
	budget   int64
	bytes    int64
	ll       *list.List // front = most recently used
	entries  map[string]*list.Element
	inflight map[string]*flight

	hits      uint64 // served from a stored entry
	coalesced uint64 // served by waiting on an in-flight computation
	misses    uint64 // computed fresh
	evictions uint64
}

type cacheEntry struct {
	key  string
	body []byte
}

// flight is one in-progress computation; waiters block on done.
type flight struct {
	done chan struct{}
	body []byte
	err  error
}

// NewCache creates a cache holding at most budget bytes of response bodies.
// A budget <= 0 disables storage (every request computes) but keeps
// in-flight deduplication.
func NewCache(budget int64) *Cache {
	return &Cache{
		budget:   budget,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
}

// Do returns the cached body for key, or computes it. The hit result is
// true when the body was served without running compute in this call —
// either from the store or by coalescing onto another caller's in-flight
// computation. Returned bodies are shared; callers must not mutate them.
func (c *Cache) Do(key string, compute func() ([]byte, error)) (body []byte, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		body = el.Value.(*cacheEntry).body
		c.mu.Unlock()
		return body, true, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.coalesced++
		c.mu.Unlock()
		<-f.done
		return f.body, true, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.misses++
	c.mu.Unlock()

	f.body, f.err = compute()
	close(f.done)

	c.mu.Lock()
	delete(c.inflight, key)
	if f.err == nil {
		c.insert(key, f.body)
	}
	c.mu.Unlock()
	return f.body, false, f.err
}

// Get looks the key up without computing on miss.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// insert stores the body and evicts LRU entries past the byte budget.
// Bodies larger than the whole budget are not stored at all — evicting the
// entire cache for one oversized response would be strictly worse.
// Called with c.mu held.
func (c *Cache) insert(key string, body []byte) {
	size := int64(len(body))
	if size > c.budget {
		return
	}
	if el, ok := c.entries[key]; ok { // lost a race with an identical insert
		c.bytes -= int64(len(el.Value.(*cacheEntry).body))
		c.ll.Remove(el)
		delete(c.entries, key)
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
	c.bytes += size
	for c.bytes > c.budget {
		back := c.ll.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.entries, ent.key)
		c.bytes -= int64(len(ent.body))
		c.evictions++
	}
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Entries   int
	Bytes     int64
	Budget    int64
	Hits      uint64 // stored-entry hits
	Coalesced uint64 // in-flight dedup hits
	Misses    uint64
	Evictions uint64
}

// HitRatio returns hits (stored + coalesced) over all lookups.
func (s CacheStats) HitRatio() float64 {
	total := s.Hits + s.Coalesced + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Coalesced) / float64(total)
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   len(c.entries),
		Bytes:     c.bytes,
		Budget:    c.budget,
		Hits:      c.hits,
		Coalesced: c.coalesced,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
