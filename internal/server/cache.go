package server

import (
	"container/list"
	"context"
	"crypto/sha256"
	"errors"
	"sync"

	"hetwire/internal/obs/flight"
)

// Cache is a content-addressed result cache with LRU eviction under a byte
// budget and in-flight deduplication: concurrent requests for the same key
// coalesce onto one computation instead of simulating twice. Keys are the
// canonical request hashes from hetwire.RunRequest.CacheKey, so a hit is
// guaranteed to be byte-identical to what re-running the request would
// produce (simulations are deterministic).
//
// Entries carry a SHA-256 of their body taken at insert time; every hit is
// verified against it, and an entry whose bytes no longer match (bit-rot, or
// the fault-injection harness) is silently dropped and recomputed — the
// cache self-heals rather than serving corrupt results.
type Cache struct {
	mu       sync.Mutex
	budget   int64
	bytes    int64
	ll       *list.List // front = most recently used
	entries  map[string]*list.Element
	inflight map[string]*inflightCall

	// flight receives cache_corrupt events when a checksum-failed entry is
	// dropped; nil-safe.
	flight *flight.Recorder

	hits       uint64 // served from a stored entry
	coalesced  uint64 // served by waiting on an in-flight computation
	misses     uint64 // computed fresh
	evictions  uint64
	corruption uint64 // entries dropped on checksum mismatch
}

type cacheEntry struct {
	key  string
	body []byte
	sum  [sha256.Size]byte
}

// inflightCall is one in-progress computation; waiters block on done.
type inflightCall struct {
	done chan struct{}
	body []byte
	err  error
}

// NewCache creates a cache holding at most budget bytes of response bodies.
// A budget <= 0 disables storage (every request computes) but keeps
// in-flight deduplication.
func NewCache(budget int64) *Cache {
	return &Cache{
		budget:   budget,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*inflightCall),
	}
}

// setFlight attaches the flight recorder (nil keeps recording disabled).
func (c *Cache) setFlight(fr *flight.Recorder) { c.flight = fr }

// Do returns the cached body for key, or computes it. The hit result is
// true when the body was served without running compute in this call —
// either from the store or by coalescing onto another caller's in-flight
// computation. Returned bodies are shared; callers must not mutate them.
//
// ctx governs only the waiting: a caller coalesced onto another flight stops
// waiting when ctx is cancelled. And when the flight it waited on fails with
// the *computing* job's context error, a still-live waiter retries the
// computation itself instead of inheriting a cancellation that was never
// meant for it.
func (c *Cache) Do(ctx context.Context, key string, compute func() ([]byte, error)) (body []byte, hit bool, err error) {
	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			ent := el.Value.(*cacheEntry)
			if sha256.Sum256(ent.body) == ent.sum {
				c.ll.MoveToFront(el)
				c.hits++
				c.mu.Unlock()
				return ent.body, true, nil
			}
			// Corrupt entry: drop it and fall through to recompute.
			c.removeLocked(el)
			c.corruption++
			c.flight.Record(flight.Event{Kind: flight.KindCacheCorrupt, Detail: key})
		}
		if f, ok := c.inflight[key]; ok {
			c.coalesced++
			c.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if isContextError(f.err) && ctx.Err() == nil {
				continue // the computer was cancelled, we were not: retry
			}
			return f.body, true, f.err
		}
		f := &inflightCall{done: make(chan struct{})}
		c.inflight[key] = f
		c.misses++
		c.mu.Unlock()

		f.body, f.err = compute()
		close(f.done)

		c.mu.Lock()
		delete(c.inflight, key)
		if f.err == nil {
			c.insert(key, f.body)
		}
		c.mu.Unlock()
		return f.body, false, f.err
	}
}

// isContextError reports whether err is a context cancellation or deadline
// error (possibly wrapped).
func isContextError(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Get looks the key up without computing on miss; corrupt entries are
// dropped and reported as a miss.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	if sha256.Sum256(ent.body) != ent.sum {
		c.removeLocked(el)
		c.corruption++
		c.flight.Record(flight.Event{Kind: flight.KindCacheCorrupt, Detail: key})
		return nil, false
	}
	c.ll.MoveToFront(el)
	return ent.body, true
}

// Put stores a body under key without running a computation — the
// federated-cache population path for results uploaded by cluster nodes.
// The body is copied so the caller may reuse its buffer. An empty key or
// body is ignored.
func (c *Cache) Put(key string, body []byte) {
	if key == "" || len(body) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.insert(key, append([]byte(nil), body...))
}

// CorruptEntry deterministically flips one byte of the stored copy of key's
// body (fault injection). The stored body is replaced with a mutated copy so
// slices already handed to callers stay intact. Returns false when the key
// is not resident.
func (c *Cache) CorruptEntry(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return false
	}
	ent := el.Value.(*cacheEntry)
	if len(ent.body) == 0 {
		return false
	}
	mutated := append([]byte(nil), ent.body...)
	mutated[len(mutated)/2] ^= 0xff
	ent.body = mutated
	return true
}

// insert stores the body and evicts LRU entries past the byte budget.
// Bodies larger than the whole budget are not stored at all — evicting the
// entire cache for one oversized response would be strictly worse.
// Called with c.mu held.
func (c *Cache) insert(key string, body []byte) {
	size := int64(len(body))
	if size > c.budget {
		return
	}
	if el, ok := c.entries[key]; ok { // lost a race with an identical insert
		c.removeLocked(el)
	}
	ent := &cacheEntry{key: key, body: body, sum: sha256.Sum256(body)}
	c.entries[key] = c.ll.PushFront(ent)
	c.bytes += size
	for c.bytes > c.budget {
		back := c.ll.Back()
		if back == nil {
			break
		}
		c.removeLocked(back)
		c.evictions++
	}
}

// removeLocked unlinks one entry and releases its bytes. Called with c.mu
// held.
func (c *Cache) removeLocked(el *list.Element) {
	ent := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.entries, ent.key)
	c.bytes -= int64(len(ent.body))
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Entries   int
	Bytes     int64
	Budget    int64
	Hits      uint64 // stored-entry hits
	Coalesced uint64 // in-flight dedup hits
	Misses    uint64
	Evictions uint64
	// Corrupt counts entries dropped because their bytes stopped matching
	// the insert-time checksum.
	Corrupt uint64
}

// HitRatio returns hits (stored + coalesced) over all lookups.
func (s CacheStats) HitRatio() float64 {
	total := s.Hits + s.Coalesced + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Coalesced) / float64(total)
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   len(c.entries),
		Bytes:     c.bytes,
		Budget:    c.budget,
		Hits:      c.hits,
		Coalesced: c.coalesced,
		Misses:    c.misses,
		Evictions: c.evictions,
		Corrupt:   c.corruption,
	}
}
