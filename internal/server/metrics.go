package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hetwire/internal/stats"
)

// latency histogram geometry: 1ms buckets up to 50ms, overflow beyond.
// Synchronous simulation endpoints overflow by design — their mean is still
// exact via sum/count — while the metadata and polling endpoints resolve.
const (
	latBuckets     = 50
	latBucketWidth = 1000 // microseconds
)

// Metrics aggregates the daemon's observability counters. All mutation is
// either atomic or under mu; rendering takes a consistent-enough snapshot
// for Prometheus scraping (gauges may lag each other by a scrape).
type Metrics struct {
	start time.Time

	jobsSubmitted atomic.Uint64
	jobsDone      atomic.Uint64
	jobsFailed    atomic.Uint64
	jobsCancelled atomic.Uint64
	jobsRunning   atomic.Int64
	// jobsPanicked counts jobs that died to a contained worker panic (a
	// subset of jobsFailed); workersRespawned counts the replacement workers
	// started afterwards.
	jobsPanicked     atomic.Uint64
	workersRespawned atomic.Uint64
	// jobsRejected counts submissions bounced for backpressure (queue full).
	jobsRejected atomic.Uint64

	// jobWallNanos/jobWallCount accumulate terminal jobs' wall time; their
	// ratio is the observed mean job latency that sizes Retry-After hints.
	jobWallNanos atomic.Int64
	jobWallCount atomic.Uint64

	workers     int
	workersBusy atomic.Int64

	// instructions is the total simulated instruction count (cache hits do
	// not re-simulate and therefore do not count).
	instructions atomic.Uint64
	// simBusy accumulates nanoseconds spent inside simulation calls.
	simBusy atomic.Int64

	mu        sync.Mutex
	endpoints map[string]*endpointMetrics
}

type endpointMetrics struct {
	requests uint64
	statuses map[int]uint64
	latency  *stats.Histogram // microseconds
}

// NewMetrics creates the registry for a pool of the given size.
func NewMetrics(workers int, now time.Time) *Metrics {
	return &Metrics{start: now, workers: workers, endpoints: make(map[string]*endpointMetrics)}
}

// ObserveJobWall folds one terminal job's wall time into the latency
// estimate behind Retry-After.
func (m *Metrics) ObserveJobWall(d time.Duration) {
	m.jobWallNanos.Add(int64(d))
	m.jobWallCount.Add(1)
}

// MeanJobLatency is the observed mean wall time of terminal jobs, or the
// fallback when no job has finished yet.
func (m *Metrics) MeanJobLatency(fallback time.Duration) time.Duration {
	n := m.jobWallCount.Load()
	if n == 0 {
		return fallback
	}
	return time.Duration(uint64(m.jobWallNanos.Load()) / n)
}

// JobsPanicked exposes the panic counter (tests).
func (m *Metrics) JobsPanicked() uint64 { return m.jobsPanicked.Load() }

// WorkersRespawned exposes the respawn counter (tests).
func (m *Metrics) WorkersRespawned() uint64 { return m.workersRespawned.Load() }

// ObserveRequest records one served HTTP request for the route pattern.
func (m *Metrics) ObserveRequest(route string, status int, elapsed time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ep, ok := m.endpoints[route]
	if !ok {
		ep = &endpointMetrics{
			statuses: make(map[int]uint64),
			latency:  stats.NewHistogram(latBuckets, latBucketWidth),
		}
		m.endpoints[route] = ep
	}
	ep.requests++
	ep.statuses[status]++
	ep.latency.Observe(uint64(elapsed / time.Microsecond))
}

// render writes the Prometheus text exposition. Gauges that live outside
// the registry (queue depth, cache counters) are passed in by the server.
func (m *Metrics) render(w io.Writer, queueDepth int, draining bool, cs CacheStats, now time.Time) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}

	up := 1.0
	if draining {
		up = 0
	}
	gauge("hetwired_up", "1 while serving, 0 while draining.", up)
	gauge("hetwired_uptime_seconds", "Seconds since the daemon started.", now.Sub(m.start).Seconds())

	fmt.Fprintf(w, "# HELP hetwired_jobs_total Jobs by terminal state.\n# TYPE hetwired_jobs_total counter\n")
	fmt.Fprintf(w, "hetwired_jobs_total{state=\"done\"} %d\n", m.jobsDone.Load())
	fmt.Fprintf(w, "hetwired_jobs_total{state=\"failed\"} %d\n", m.jobsFailed.Load())
	fmt.Fprintf(w, "hetwired_jobs_total{state=\"cancelled\"} %d\n", m.jobsCancelled.Load())
	counter("hetwired_jobs_submitted_total", "Jobs accepted into the queue.", m.jobsSubmitted.Load())
	counter("hetwired_jobs_panicked_total", "Jobs failed by a contained worker panic.", m.jobsPanicked.Load())
	counter("hetwired_jobs_rejected_total", "Submissions rejected for backpressure (429).", m.jobsRejected.Load())
	counter("hetwired_workers_respawned_total", "Workers respawned after a panic escaped a job.", m.workersRespawned.Load())

	fmt.Fprintf(w, "# HELP hetwired_jobs Jobs currently in a live state.\n# TYPE hetwired_jobs gauge\n")
	fmt.Fprintf(w, "hetwired_jobs{state=\"queued\"} %d\n", queueDepth)
	fmt.Fprintf(w, "hetwired_jobs{state=\"running\"} %d\n", m.jobsRunning.Load())

	gauge("hetwired_queue_depth", "Jobs waiting in the FIFO queue.", float64(queueDepth))
	gauge("hetwired_workers", "Size of the worker pool.", float64(m.workers))
	gauge("hetwired_workers_busy", "Workers currently executing a job.", float64(m.workersBusy.Load()))
	if m.workers > 0 {
		gauge("hetwired_worker_utilization", "Fraction of workers busy.",
			float64(m.workersBusy.Load())/float64(m.workers))
	}

	counter("hetwired_cache_hits_total", "Result-cache hits served from stored entries.", cs.Hits)
	counter("hetwired_cache_coalesced_total", "Requests deduplicated onto an in-flight computation.", cs.Coalesced)
	counter("hetwired_cache_misses_total", "Result-cache misses (fresh simulations).", cs.Misses)
	counter("hetwired_cache_evictions_total", "Entries evicted to stay within the byte budget.", cs.Evictions)
	counter("hetwired_cache_corrupt_dropped_total", "Entries dropped on checksum mismatch and recomputed.", cs.Corrupt)
	gauge("hetwired_cache_entries", "Entries resident in the result cache.", float64(cs.Entries))
	gauge("hetwired_cache_bytes", "Bytes resident in the result cache.", float64(cs.Bytes))
	gauge("hetwired_cache_budget_bytes", "Byte budget of the result cache.", float64(cs.Budget))
	gauge("hetwired_cache_hit_ratio", "Lifetime hit ratio including coalesced requests.", cs.HitRatio())

	instr := m.instructions.Load()
	counter("hetwired_simulated_instructions_total", "Instructions simulated (cache hits excluded).", instr)
	if busy := m.simBusy.Load(); busy > 0 {
		gauge("hetwired_simulated_instructions_per_second",
			"Lifetime simulation throughput over busy time.",
			float64(instr)/(float64(busy)/float64(time.Second)))
	}

	m.renderEndpoints(w)
}

// renderEndpoints emits per-route request counters and latency histograms
// built on internal/stats histograms.
func (m *Metrics) renderEndpoints(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()
	routes := make([]string, 0, len(m.endpoints))
	for r := range m.endpoints {
		routes = append(routes, r)
	}
	sort.Strings(routes)

	fmt.Fprintf(w, "# HELP hetwired_http_requests_total Requests served, by route and status.\n# TYPE hetwired_http_requests_total counter\n")
	for _, r := range routes {
		ep := m.endpoints[r]
		codes := make([]int, 0, len(ep.statuses))
		for c := range ep.statuses {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "hetwired_http_requests_total{route=%q,code=\"%d\"} %d\n", r, c, ep.statuses[c])
		}
	}

	fmt.Fprintf(w, "# HELP hetwired_http_request_duration_seconds Request latency, by route.\n# TYPE hetwired_http_request_duration_seconds histogram\n")
	cumBuf := make([]stats.CumBucket, 0, latBuckets+1)
	for _, r := range routes {
		ep := m.endpoints[r]
		cumBuf = ep.latency.AppendCumulative(cumBuf[:0])
		for _, b := range cumBuf {
			if b.Inf {
				fmt.Fprintf(w, "hetwired_http_request_duration_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", r, b.Count)
				continue
			}
			le := float64(b.UpperBound+1) / 1e6
			fmt.Fprintf(w, "hetwired_http_request_duration_seconds_bucket{route=%q,le=\"%g\"} %d\n", r, le, b.Count)
		}
		fmt.Fprintf(w, "hetwired_http_request_duration_seconds_sum{route=%q} %g\n", r, float64(ep.latency.Sum)/1e6)
		fmt.Fprintf(w, "hetwired_http_request_duration_seconds_count{route=%q} %d\n", r, ep.latency.Count)
	}
}
