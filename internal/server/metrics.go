package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hetwire/internal/cluster"
	"hetwire/internal/stats"
	"hetwire/internal/tenant"
)

// latency histogram geometry: 1ms buckets up to 50ms, overflow beyond.
// Synchronous simulation endpoints overflow by design — their mean is still
// exact via sum/count — while the metadata and polling endpoints resolve.
const (
	latBuckets     = 50
	latBucketWidth = 1000 // microseconds
)

// Cardinality bounds: label sets fed by external input are capped, with
// overflow folded into a catch-all, so a hostile or buggy client cannot grow
// the /metrics payload without bound.
const (
	// maxEndpoints caps distinct route labels. Routes are normalized patterns
	// (job IDs collapsed, queries stripped), so the cap is never reached by
	// the served API; it is a backstop for future route additions.
	maxEndpoints = 32
	// maxRejectReasons caps distinct rejection-reason labels; reasons come
	// from the bounded hetwire.Reason* code set plus the daemon's own
	// backpressure classes.
	maxRejectReasons = 16
	// maxTenantLabels caps distinct tenant labels in the hetwired_tenant_*
	// series; tenants past the cap (name order) are summed into the overflow
	// label. The registry itself allows up to tenant.MaxTenants configured
	// tenants, so a large fleet folds rather than bloating every scrape.
	maxTenantLabels = 64
	// overflowLabel absorbs observations past a cardinality cap.
	overflowLabel = "other"
)

// Metrics aggregates the daemon's observability counters. All mutation is
// either atomic or under mu; rendering takes a consistent-enough snapshot
// for Prometheus scraping (gauges may lag each other by a scrape).
type Metrics struct {
	start time.Time

	jobsSubmitted atomic.Uint64
	jobsDone      atomic.Uint64
	jobsFailed    atomic.Uint64
	jobsCancelled atomic.Uint64
	jobsRunning   atomic.Int64
	// jobsPanicked counts jobs that died to a contained worker panic (a
	// subset of jobsFailed); workersRespawned counts the replacement workers
	// started afterwards.
	jobsPanicked     atomic.Uint64
	workersRespawned atomic.Uint64

	// jobWallNanos/jobWallCount accumulate terminal jobs' wall time; their
	// ratio is the observed mean job latency that sizes Retry-After hints.
	jobWallNanos atomic.Int64
	jobWallCount atomic.Uint64

	workers     int
	workersBusy atomic.Int64
	// workerBusyNanos accumulates per-worker busy time (index = worker slot;
	// a respawned worker keeps its predecessor's slot), exposing skew between
	// workers that the pool-level gauge averages away.
	workerBusyNanos []atomic.Int64

	// instructions is the total simulated instruction count (cache hits do
	// not re-simulate and therefore do not count).
	instructions atomic.Uint64
	// simBusy accumulates nanoseconds spent inside simulation calls.
	simBusy atomic.Int64

	// buildVersion/buildGo label hetwired_build_info; set once before serving
	// (SetBuildInfo), empty means the line is omitted.
	buildVersion string
	buildGo      string

	// clusterStats, when set (coordinator mode), supplies the cluster
	// coordinator's counters at render time; nil omits the cluster section
	// entirely, keeping non-coordinator expositions unchanged.
	clusterStats func() cluster.Stats

	// tenantStats, when set (a -tenants file was configured), supplies the
	// per-tenant counter snapshots at render time; nil omits the
	// hetwired_tenant_* section, keeping open-mode expositions unchanged.
	tenantStats func() []tenant.Snapshot
	// schedStats, when set, supplies the fair queue's snapshot at render
	// time (per-lane depths); nil omits the hetwired_sched_* section.
	schedStats func() SchedSnapshot
	// loadShedTotal counts load-shed engagements by the overload watchdog.
	loadShedTotal atomic.Uint64

	mu        sync.Mutex
	endpoints map[string]*endpointMetrics
	// rejected counts submissions bounced before queueing, by machine-
	// readable reason (hetwire.Reason* validation codes, queue_full,
	// draining, bad_json).
	rejected map[string]uint64
	// phases holds one latency histogram per job phase (queue_wait, sim_run,
	// ...); keys come from the daemon's fixed span-name set.
	phases map[string]*stats.Histogram
	// tenantSLO holds the per-tenant SLO ledgers (good/bad counters, latency
	// histograms, burn-rate minute buckets) for tenants with a configured
	// latency objective. Bounded by maxTenantLabels with overflow folding,
	// like every tenant-labelled series.
	tenantSLO map[string]*sloState
}

// sloState is one tenant's SLO ledger. good/bad are lifetime counters; the
// minute-bucket ring backs the multi-window burn-rate gauges (5m and 1h fit
// in 60 slots).
type sloState struct {
	targetPct float64
	good, bad uint64
	e2e       *stats.Histogram // end-to-end wall, microseconds
	qwait     *stats.Histogram // queue wait, microseconds
	buckets   [60]sloBucket
}

// sloBucket is one minute of good/bad counts; minute is the absolute Unix
// minute the slot currently holds, so stale laps self-invalidate.
type sloBucket struct {
	minute    int64
	good, bad uint64
}

type endpointMetrics struct {
	requests uint64
	statuses map[int]uint64
	latency  *stats.Histogram // microseconds
}

// NewMetrics creates the registry for a pool of the given size.
func NewMetrics(workers int, now time.Time) *Metrics {
	return &Metrics{
		start:           now,
		workers:         workers,
		workerBusyNanos: make([]atomic.Int64, workers),
		endpoints:       make(map[string]*endpointMetrics),
		rejected:        make(map[string]uint64),
		phases:          make(map[string]*stats.Histogram),
		tenantSLO:       make(map[string]*sloState),
	}
}

// ObserveSLO folds one terminal job into its tenant's SLO ledger: the
// good/bad verdict, the end-to-end and queue-wait latency samples, and the
// minute bucket backing the burn-rate windows. Tenants past the label cap
// fold into the overflow label.
func (m *Metrics) ObserveSLO(tenantName string, targetPct float64, good bool, e2e, queueWait time.Duration, now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.tenantSLO[tenantName]
	if !ok && len(m.tenantSLO) >= maxTenantLabels {
		tenantName = overflowLabel
		st, ok = m.tenantSLO[tenantName]
	}
	if !ok {
		st = &sloState{
			targetPct: targetPct,
			e2e:       stats.NewHistogram(latBuckets, latBucketWidth),
			qwait:     stats.NewHistogram(latBuckets, latBucketWidth),
		}
		m.tenantSLO[tenantName] = st
	}
	st.targetPct = targetPct
	minute := now.Unix() / 60
	b := &st.buckets[minute%60]
	if b.minute != minute {
		*b = sloBucket{minute: minute}
	}
	if good {
		st.good++
		b.good++
	} else {
		st.bad++
		b.bad++
	}
	if e2e < 0 {
		e2e = 0
	}
	if queueWait < 0 {
		queueWait = 0
	}
	st.e2e.Observe(uint64(e2e / time.Microsecond))
	st.qwait.Observe(uint64(queueWait / time.Microsecond))
}

// SetBuildInfo records the version labels for hetwired_build_info. Call once
// before serving; the zero state omits the metric, keeping directly
// constructed registries (tests) deterministic.
func (m *Metrics) SetBuildInfo(version, goVersion string) {
	m.buildVersion, m.buildGo = version, goVersion
}

// ObserveRejection counts one bounced submission by machine-readable reason.
// The reason label set is capped; unexpected reasons past the cap fold into
// the overflow label instead of growing the exposition.
func (m *Metrics) ObserveRejection(reason string) {
	if reason == "" {
		reason = overflowLabel
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.rejected[reason]; !ok && len(m.rejected) >= maxRejectReasons {
		reason = overflowLabel
	}
	m.rejected[reason]++
}

// ObservePhase folds one job-phase duration into the phase histogram (same
// microsecond geometry as the HTTP latency histograms).
func (m *Metrics) ObservePhase(phase string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.phases[phase]
	if !ok {
		h = stats.NewHistogram(latBuckets, latBucketWidth)
		m.phases[phase] = h
	}
	h.Observe(uint64(d / time.Microsecond))
}

// AddWorkerBusy accrues busy time for one worker slot.
func (m *Metrics) AddWorkerBusy(worker int, d time.Duration) {
	if worker >= 0 && worker < len(m.workerBusyNanos) {
		m.workerBusyNanos[worker].Add(int64(d))
	}
}

// ObserveJobWall folds one terminal job's wall time into the latency
// estimate behind Retry-After.
func (m *Metrics) ObserveJobWall(d time.Duration) {
	m.jobWallNanos.Add(int64(d))
	m.jobWallCount.Add(1)
}

// ObservedJobs reports how many terminal jobs have contributed wall-time
// samples; zero means MeanJobLatency has nothing real to report.
func (m *Metrics) ObservedJobs() uint64 { return m.jobWallCount.Load() }

// MeanJobLatency is the observed mean wall time of terminal jobs, or the
// fallback when no job has finished yet.
func (m *Metrics) MeanJobLatency(fallback time.Duration) time.Duration {
	n := m.jobWallCount.Load()
	if n == 0 {
		return fallback
	}
	return time.Duration(uint64(m.jobWallNanos.Load()) / n)
}

// JobsPanicked exposes the panic counter (tests).
func (m *Metrics) JobsPanicked() uint64 { return m.jobsPanicked.Load() }

// WorkersRespawned exposes the respawn counter (tests).
func (m *Metrics) WorkersRespawned() uint64 { return m.workersRespawned.Load() }

// ObserveRequest records one served HTTP request for the route pattern. The
// route label set is capped at maxEndpoints; routes past the cap fold into
// the overflow label so unmatched-path traffic cannot grow the exposition.
func (m *Metrics) ObserveRequest(route string, status int, elapsed time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ep, ok := m.endpoints[route]
	if !ok && len(m.endpoints) >= maxEndpoints {
		route = overflowLabel
		ep, ok = m.endpoints[route]
	}
	if !ok {
		ep = &endpointMetrics{
			statuses: make(map[int]uint64),
			latency:  stats.NewHistogram(latBuckets, latBucketWidth),
		}
		m.endpoints[route] = ep
	}
	ep.requests++
	ep.statuses[status]++
	ep.latency.Observe(uint64(elapsed / time.Microsecond))
}

// render writes the Prometheus text exposition. Gauges that live outside
// the registry (queue depth, cache counters) are passed in by the server.
func (m *Metrics) render(w io.Writer, queueDepth int, draining bool, cs CacheStats, now time.Time) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}

	up := 1.0
	if draining {
		up = 0
	}
	gauge("hetwired_up", "1 while serving, 0 while draining.", up)
	gauge("hetwired_uptime_seconds", "Seconds since the daemon started.", now.Sub(m.start).Seconds())

	fmt.Fprintf(w, "# HELP hetwired_jobs_total Jobs by terminal state.\n# TYPE hetwired_jobs_total counter\n")
	fmt.Fprintf(w, "hetwired_jobs_total{state=\"done\"} %d\n", m.jobsDone.Load())
	fmt.Fprintf(w, "hetwired_jobs_total{state=\"failed\"} %d\n", m.jobsFailed.Load())
	fmt.Fprintf(w, "hetwired_jobs_total{state=\"cancelled\"} %d\n", m.jobsCancelled.Load())
	counter("hetwired_jobs_submitted_total", "Jobs accepted into the queue.", m.jobsSubmitted.Load())
	counter("hetwired_jobs_panicked_total", "Jobs failed by a contained worker panic.", m.jobsPanicked.Load())
	m.renderRejections(w)
	counter("hetwired_workers_respawned_total", "Workers respawned after a panic escaped a job.", m.workersRespawned.Load())
	counter("hetwired_load_shed_engaged_total", "Times the overload watchdog engaged load-shed mode.", m.loadShedTotal.Load())

	fmt.Fprintf(w, "# HELP hetwired_jobs Jobs currently in a live state.\n# TYPE hetwired_jobs gauge\n")
	fmt.Fprintf(w, "hetwired_jobs{state=\"queued\"} %d\n", queueDepth)
	fmt.Fprintf(w, "hetwired_jobs{state=\"running\"} %d\n", m.jobsRunning.Load())

	gauge("hetwired_queue_depth", "Jobs waiting in the FIFO queue.", float64(queueDepth))
	gauge("hetwired_workers", "Size of the worker pool.", float64(m.workers))
	gauge("hetwired_workers_busy", "Workers currently executing a job.", float64(m.workersBusy.Load()))
	if m.workers > 0 {
		gauge("hetwired_worker_utilization", "Fraction of workers busy.",
			float64(m.workersBusy.Load())/float64(m.workers))
	}
	if len(m.workerBusyNanos) > 0 {
		fmt.Fprintf(w, "# HELP hetwired_worker_busy_seconds_total Cumulative busy time per worker slot.\n# TYPE hetwired_worker_busy_seconds_total counter\n")
		for i := range m.workerBusyNanos {
			fmt.Fprintf(w, "hetwired_worker_busy_seconds_total{worker=\"%d\"} %g\n",
				i, float64(m.workerBusyNanos[i].Load())/float64(time.Second))
		}
	}

	counter("hetwired_cache_hits_total", "Result-cache hits served from stored entries.", cs.Hits)
	counter("hetwired_cache_coalesced_total", "Requests deduplicated onto an in-flight computation.", cs.Coalesced)
	counter("hetwired_cache_misses_total", "Result-cache misses (fresh simulations).", cs.Misses)
	counter("hetwired_cache_evictions_total", "Entries evicted to stay within the byte budget.", cs.Evictions)
	counter("hetwired_cache_corrupt_dropped_total", "Entries dropped on checksum mismatch and recomputed.", cs.Corrupt)
	gauge("hetwired_cache_entries", "Entries resident in the result cache.", float64(cs.Entries))
	gauge("hetwired_cache_bytes", "Bytes resident in the result cache.", float64(cs.Bytes))
	gauge("hetwired_cache_budget_bytes", "Byte budget of the result cache.", float64(cs.Budget))
	gauge("hetwired_cache_hit_ratio", "Lifetime hit ratio including coalesced requests.", cs.HitRatio())

	instr := m.instructions.Load()
	counter("hetwired_simulated_instructions_total", "Instructions simulated (cache hits excluded).", instr)
	if busy := m.simBusy.Load(); busy > 0 {
		gauge("hetwired_simulated_instructions_per_second",
			"Lifetime simulation throughput over busy time.",
			float64(instr)/(float64(busy)/float64(time.Second)))
	}

	if m.buildVersion != "" || m.buildGo != "" {
		fmt.Fprintf(w, "# HELP hetwired_build_info Build metadata as labels; the value is always 1.\n# TYPE hetwired_build_info gauge\n")
		fmt.Fprintf(w, "hetwired_build_info{version=%q,go=%q} 1\n", m.buildVersion, m.buildGo)
	}

	m.renderCluster(w)
	m.renderSched(w)
	m.renderTenants(w)
	m.renderSLO(w, now)
	m.renderPhases(w)
	m.renderEndpoints(w)
}

// SetClusterStats wires the coordinator's counter snapshot into the
// exposition. Call once before serving (coordinator mode only).
func (m *Metrics) SetClusterStats(fn func() cluster.Stats) {
	m.clusterStats = fn
}

// SetTenantStats wires the tenant registry's snapshot into the exposition.
// Call once before serving (tenancy-configured mode only).
func (m *Metrics) SetTenantStats(fn func() []tenant.Snapshot) {
	m.tenantStats = fn
}

// SetSchedStats wires the fair queue's snapshot into the exposition. Call
// once before serving.
func (m *Metrics) SetSchedStats(fn func() SchedSnapshot) {
	m.schedStats = fn
}

// renderSched emits the scheduler gauges: queued jobs per lane plus the
// bulk-slot occupancy, from the fair queue's own snapshot.
func (m *Metrics) renderSched(w io.Writer) {
	if m.schedStats == nil {
		return
	}
	snap := m.schedStats()
	lanes := make([]string, 0, len(snap.LaneDepth))
	for lane := range snap.LaneDepth {
		lanes = append(lanes, lane)
	}
	sort.Strings(lanes)
	fmt.Fprintf(w, "# HELP hetwired_sched_lane_depth Jobs queued per scheduler lane.\n# TYPE hetwired_sched_lane_depth gauge\n")
	for _, lane := range lanes {
		fmt.Fprintf(w, "hetwired_sched_lane_depth{lane=%q} %d\n", lane, snap.LaneDepth[lane])
	}
	fmt.Fprintf(w, "# HELP hetwired_sched_bulk_running Bulk-lane jobs currently dispatched, and the cap that reserves a worker for the interactive lane.\n# TYPE hetwired_sched_bulk_running gauge\n")
	fmt.Fprintf(w, "hetwired_sched_bulk_running %d\n", snap.BulkRunning)
	fmt.Fprintf(w, "# HELP hetwired_sched_bulk_cap Maximum bulk-lane jobs dispatched concurrently.\n# TYPE hetwired_sched_bulk_cap gauge\n")
	fmt.Fprintf(w, "hetwired_sched_bulk_cap %d\n", snap.BulkCap)
}

// sloWindowBad sums a window of minute buckets ending at nowMinute and
// returns the bad fraction plus whether any sample fell in the window.
func (st *sloState) sloWindowBad(nowMinute int64, minutes int64) (float64, bool) {
	var good, bad uint64
	for i := range st.buckets {
		b := &st.buckets[i]
		if b.minute > nowMinute-minutes && b.minute <= nowMinute {
			good += b.good
			bad += b.bad
		}
	}
	total := good + bad
	if total == 0 {
		return 0, false
	}
	return float64(bad) / float64(total), true
}

// renderSLO emits the per-tenant SLO series: the objective, lifetime
// good/bad verdict counters, multi-window burn rates, and the end-to-end and
// queue-wait latency histograms. Burn rate is the observed bad fraction over
// the window divided by the error budget (1 - target); 1.0 means the tenant
// is consuming its budget exactly at the allowed rate, >1 means faster.
func (m *Metrics) renderSLO(w io.Writer, now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.tenantSLO) == 0 {
		return
	}
	names := make([]string, 0, len(m.tenantSLO))
	for n := range m.tenantSLO {
		names = append(names, n)
	}
	sort.Strings(names)
	nowMinute := now.Unix() / 60

	fmt.Fprintf(w, "# HELP hetwired_slo_target_pct Configured latency-objective target percentage per tenant.\n# TYPE hetwired_slo_target_pct gauge\n")
	for _, n := range names {
		fmt.Fprintf(w, "hetwired_slo_target_pct{tenant=%q} %g\n", n, m.tenantSLO[n].targetPct)
	}
	fmt.Fprintf(w, "# HELP hetwired_slo_requests_total Terminal jobs per tenant by SLO verdict.\n# TYPE hetwired_slo_requests_total counter\n")
	for _, n := range names {
		st := m.tenantSLO[n]
		fmt.Fprintf(w, "hetwired_slo_requests_total{tenant=%q,verdict=\"good\"} %d\n", n, st.good)
		fmt.Fprintf(w, "hetwired_slo_requests_total{tenant=%q,verdict=\"bad\"} %d\n", n, st.bad)
	}
	fmt.Fprintf(w, "# HELP hetwired_slo_burn_rate Error-budget burn rate per tenant and window (1.0 = budget consumed exactly at the allowed rate).\n# TYPE hetwired_slo_burn_rate gauge\n")
	for _, n := range names {
		st := m.tenantSLO[n]
		budget := 1 - st.targetPct/100
		for _, win := range []struct {
			label   string
			minutes int64
		}{{"5m", 5}, {"1h", 60}} {
			badFrac, ok := st.sloWindowBad(nowMinute, win.minutes)
			rate := 0.0
			if ok && budget > 0 {
				rate = badFrac / budget
			}
			fmt.Fprintf(w, "hetwired_slo_burn_rate{tenant=%q,window=%q} %g\n", n, win.label, rate)
		}
	}

	for _, series := range []struct {
		name, help string
		hist       func(*sloState) *stats.Histogram
	}{
		{"hetwired_tenant_e2e_latency_seconds", "End-to-end job latency (queue wait included) per SLO tenant.",
			func(st *sloState) *stats.Histogram { return st.e2e }},
		{"hetwired_tenant_queue_wait_seconds", "Queue wait per SLO tenant.",
			func(st *sloState) *stats.Histogram { return st.qwait }},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", series.name, series.help, series.name)
		cumBuf := make([]stats.CumBucket, 0, latBuckets+1)
		for _, n := range names {
			h := series.hist(m.tenantSLO[n])
			cumBuf = h.AppendCumulative(cumBuf[:0])
			for _, b := range cumBuf {
				if b.Inf {
					fmt.Fprintf(w, "%s_bucket{tenant=%q,le=\"+Inf\"} %d\n", series.name, n, b.Count)
					continue
				}
				le := float64(b.UpperBound+1) / 1e6
				fmt.Fprintf(w, "%s_bucket{tenant=%q,le=\"%g\"} %d\n", series.name, n, le, b.Count)
			}
			fmt.Fprintf(w, "%s_sum{tenant=%q} %g\n", series.name, n, float64(h.Sum)/1e6)
			fmt.Fprintf(w, "%s_count{tenant=%q} %d\n", series.name, n, h.Count)
		}
	}
}

// renderTenants emits the hetwired_tenant_* series from the registry
// snapshot. Snapshots arrive in name order; tenants past maxTenantLabels
// are summed into the overflow label so the exposition stays bounded no
// matter how many tenants are configured.
func (m *Metrics) renderTenants(w io.Writer) {
	if m.tenantStats == nil {
		return
	}
	snaps := m.tenantStats()
	if len(snaps) > maxTenantLabels {
		head := snaps[:maxTenantLabels-1]
		over := tenant.Snapshot{Name: overflowLabel, Rejected: make(map[string]uint64)}
		for _, sn := range snaps[maxTenantLabels-1:] {
			over.SimCPU += sn.SimCPU
			over.Queued += sn.Queued
			over.InFlight += sn.InFlight
			over.CacheBytes += sn.CacheBytes
			over.Submitted += sn.Submitted
			over.Done += sn.Done
			over.Failed += sn.Failed
			over.Cancelled += sn.Cancelled
			for r, n := range sn.Rejected {
				over.Rejected[r] += n
			}
		}
		snaps = append(append(make([]tenant.Snapshot, 0, maxTenantLabels), head...), over)
	}

	fmt.Fprintf(w, "# HELP hetwired_tenant_weight Configured scheduler weight per tenant.\n# TYPE hetwired_tenant_weight gauge\n")
	for _, sn := range snaps {
		if sn.Name != overflowLabel {
			fmt.Fprintf(w, "hetwired_tenant_weight{tenant=%q} %d\n", sn.Name, sn.Weight)
		}
	}
	fmt.Fprintf(w, "# HELP hetwired_tenant_sim_cpu_seconds_total Simulation CPU seconds billed per tenant.\n# TYPE hetwired_tenant_sim_cpu_seconds_total counter\n")
	for _, sn := range snaps {
		fmt.Fprintf(w, "hetwired_tenant_sim_cpu_seconds_total{tenant=%q} %g\n", sn.Name, sn.SimCPU.Seconds())
	}
	fmt.Fprintf(w, "# HELP hetwired_tenant_jobs Live jobs per tenant by state.\n# TYPE hetwired_tenant_jobs gauge\n")
	for _, sn := range snaps {
		fmt.Fprintf(w, "hetwired_tenant_jobs{tenant=%q,state=\"queued\"} %d\n", sn.Name, sn.Queued)
		fmt.Fprintf(w, "hetwired_tenant_jobs{tenant=%q,state=\"running\"} %d\n", sn.Name, sn.InFlight)
	}
	fmt.Fprintf(w, "# HELP hetwired_tenant_jobs_submitted_total Jobs accepted into the queue per tenant.\n# TYPE hetwired_tenant_jobs_submitted_total counter\n")
	for _, sn := range snaps {
		fmt.Fprintf(w, "hetwired_tenant_jobs_submitted_total{tenant=%q} %d\n", sn.Name, sn.Submitted)
	}
	fmt.Fprintf(w, "# HELP hetwired_tenant_jobs_total Terminal jobs per tenant by state.\n# TYPE hetwired_tenant_jobs_total counter\n")
	for _, sn := range snaps {
		fmt.Fprintf(w, "hetwired_tenant_jobs_total{tenant=%q,state=\"done\"} %d\n", sn.Name, sn.Done)
		fmt.Fprintf(w, "hetwired_tenant_jobs_total{tenant=%q,state=\"failed\"} %d\n", sn.Name, sn.Failed)
		fmt.Fprintf(w, "hetwired_tenant_jobs_total{tenant=%q,state=\"cancelled\"} %d\n", sn.Name, sn.Cancelled)
	}
	fmt.Fprintf(w, "# HELP hetwired_tenant_cache_bytes_inserted_total Result-cache bytes inserted on behalf of the tenant.\n# TYPE hetwired_tenant_cache_bytes_inserted_total counter\n")
	for _, sn := range snaps {
		fmt.Fprintf(w, "hetwired_tenant_cache_bytes_inserted_total{tenant=%q} %d\n", sn.Name, sn.CacheBytes)
	}
	fmt.Fprintf(w, "# HELP hetwired_tenant_rejected_total Submissions rejected per tenant, by machine-readable reason.\n# TYPE hetwired_tenant_rejected_total counter\n")
	for _, sn := range snaps {
		reasons := make([]string, 0, len(sn.Rejected))
		for r := range sn.Rejected {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		for _, r := range reasons {
			fmt.Fprintf(w, "hetwired_tenant_rejected_total{tenant=%q,reason=%q} %d\n", sn.Name, r, sn.Rejected[r])
		}
	}
}

// renderRejections emits the per-reason rejection counters. The total line is
// always present (even at zero) so dashboards keyed on the metric name keep
// working; per-reason labels appear once a reason has been observed.
func (m *Metrics) renderRejections(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()
	fmt.Fprintf(w, "# HELP hetwired_jobs_rejected_total Submissions rejected before queueing, by machine-readable reason.\n# TYPE hetwired_jobs_rejected_total counter\n")
	reasons := make([]string, 0, len(m.rejected))
	for r := range m.rejected {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	for _, r := range reasons {
		fmt.Fprintf(w, "hetwired_jobs_rejected_total{reason=%q} %d\n", r, m.rejected[r])
	}
}

// renderPhases emits the per-phase job latency histograms (queue_wait,
// cache_lookup, sim_run, result_encode).
func (m *Metrics) renderPhases(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.phases) == 0 {
		return
	}
	names := make([]string, 0, len(m.phases))
	for n := range m.phases {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "# HELP hetwired_job_phase_duration_seconds Time spent per job phase.\n# TYPE hetwired_job_phase_duration_seconds histogram\n")
	cumBuf := make([]stats.CumBucket, 0, latBuckets+1)
	for _, n := range names {
		h := m.phases[n]
		cumBuf = h.AppendCumulative(cumBuf[:0])
		for _, b := range cumBuf {
			if b.Inf {
				fmt.Fprintf(w, "hetwired_job_phase_duration_seconds_bucket{phase=%q,le=\"+Inf\"} %d\n", n, b.Count)
				continue
			}
			le := float64(b.UpperBound+1) / 1e6
			fmt.Fprintf(w, "hetwired_job_phase_duration_seconds_bucket{phase=%q,le=\"%g\"} %d\n", n, le, b.Count)
		}
		fmt.Fprintf(w, "hetwired_job_phase_duration_seconds_sum{phase=%q} %g\n", n, float64(h.Sum)/1e6)
		fmt.Fprintf(w, "hetwired_job_phase_duration_seconds_count{phase=%q} %d\n", n, h.Count)
	}
}

// renderEndpoints emits per-route request counters and latency histograms
// built on internal/stats histograms.
func (m *Metrics) renderEndpoints(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()
	routes := make([]string, 0, len(m.endpoints))
	for r := range m.endpoints {
		routes = append(routes, r)
	}
	sort.Strings(routes)

	fmt.Fprintf(w, "# HELP hetwired_http_requests_total Requests served, by route and status.\n# TYPE hetwired_http_requests_total counter\n")
	for _, r := range routes {
		ep := m.endpoints[r]
		codes := make([]int, 0, len(ep.statuses))
		for c := range ep.statuses {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "hetwired_http_requests_total{route=%q,code=\"%d\"} %d\n", r, c, ep.statuses[c])
		}
	}

	fmt.Fprintf(w, "# HELP hetwired_http_request_duration_seconds Request latency, by route.\n# TYPE hetwired_http_request_duration_seconds histogram\n")
	cumBuf := make([]stats.CumBucket, 0, latBuckets+1)
	for _, r := range routes {
		ep := m.endpoints[r]
		cumBuf = ep.latency.AppendCumulative(cumBuf[:0])
		for _, b := range cumBuf {
			if b.Inf {
				fmt.Fprintf(w, "hetwired_http_request_duration_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", r, b.Count)
				continue
			}
			le := float64(b.UpperBound+1) / 1e6
			fmt.Fprintf(w, "hetwired_http_request_duration_seconds_bucket{route=%q,le=\"%g\"} %d\n", r, le, b.Count)
		}
		fmt.Fprintf(w, "hetwired_http_request_duration_seconds_sum{route=%q} %g\n", r, float64(ep.latency.Sum)/1e6)
		fmt.Fprintf(w, "hetwired_http_request_duration_seconds_count{route=%q} %d\n", r, ep.latency.Count)
	}
}
