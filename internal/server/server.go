// Package server implements hetwired, the simulation-as-a-service daemon:
// an HTTP/JSON front end over the hetwire simulator with a bounded FIFO job
// queue, a fixed worker pool, a content-addressed result cache, and
// Prometheus-format metrics. Simulations are deterministic, so identical
// requests are served from the cache (or coalesced onto an in-flight run)
// instead of re-simulating.
//
// Endpoints:
//
//	POST   /v1/run        synchronous run; X-Hetwired-Cache: hit|miss
//	POST   /v1/jobs       submit a run, sweep, or batch job; returns its id
//	GET    /v1/jobs       list job statuses (?state= filters)
//	GET    /v1/jobs/{id}  poll one job; result body included when done
//	DELETE /v1/jobs/{id}  cancel a queued or running job
//	GET    /v1/catalog    benchmarks, kernels, and interconnect models
//	GET    /healthz       liveness (503 while draining)
//	GET    /metrics       Prometheus text exposition
//
// Coordinator mode (Options.Cluster) adds the authenticated cluster
// protocol — POST /v1/cluster/{register,heartbeat,lease,cachecheck,upload}
// and GET /v1/cluster/nodes — and routes batch jobs to worker nodes; see
// internal/cluster.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hetwire"
	"hetwire/internal/batch"
	"hetwire/internal/cluster"
	"hetwire/internal/config"
	"hetwire/internal/core"
	"hetwire/internal/faultinject"
	"hetwire/internal/obs/flight"
	"hetwire/internal/tenant"
	"hetwire/internal/wire"
)

// Options configures a Server.
type Options struct {
	// Workers is the simulation worker-pool size (default 4).
	Workers int
	// QueueDepth bounds the FIFO job queue (default 64); submissions
	// beyond it are rejected with 429 + Retry-After.
	QueueDepth int
	// CacheBytes is the result-cache byte budget (default 64 MiB).
	CacheBytes int64
	// MaxJobs bounds the retained job records; the oldest terminal jobs
	// are pruned past it (default 1024).
	MaxJobs int
	// DefaultDeadline is the per-job wall-clock budget (queue wait included)
	// applied when a submission carries none (default 2m). Zero after
	// defaulting is impossible; a negative value disables deadlines.
	DefaultDeadline time.Duration
	// MaxDeadline caps per-request deadline overrides (default 10m).
	MaxDeadline time.Duration
	// MaxSweepPoints bounds how many points one sweep job may expand to
	// (default 1024); larger sweeps are rejected at submission.
	MaxSweepPoints int
	// DefaultRetryAfter is the Retry-After hint returned on queue-full
	// rejections before any job has completed, when no observed latency
	// exists to estimate drain time from (default 1s).
	DefaultRetryAfter time.Duration
	// Tenants, when set, enables keyed multi-tenancy: requests resolve to
	// configured tenants by API key and per-tenant limits apply. Nil is open
	// mode — everything runs as the unlimited anonymous tenant.
	Tenants *tenant.Config
	// FIFOScheduler disables the weighted-fair scheduler in favour of the
	// plain FIFO queue. A benchmarking knob (benchreport's qos_overhead row
	// measures the fair path against this baseline); production keeps it off.
	FIFOScheduler bool
	// ShedHighWater, ShedLowWater, ShedWindow, and ShedInterval tune the
	// overload watchdog: the queue staying at or above ShedHighWater x
	// QueueDepth for ShedWindow engages load-shed mode (bulk submissions get
	// 429 load_shed), cleared when depth falls to ShedLowWater x QueueDepth.
	// Defaults: 0.9, 0.25, 2s, 100ms.
	ShedHighWater float64
	ShedLowWater  float64
	ShedWindow    time.Duration
	ShedInterval  time.Duration
	// Faults optionally wires the deterministic fault-injection harness into
	// the worker path (chaos tests, HETWIRE_FAULTS). Nil injects nothing.
	Faults *faultinject.Injector
	// FlightEvents sizes the always-on flight recorder's event ring
	// (rounded up to a power of two). Zero selects flight.DefaultEvents;
	// a negative value disables the recorder entirely (nil-recorder fast
	// path: one pointer compare per would-be event).
	FlightEvents int
	// FlightDir, when set, is where the recorder auto-dumps on worker panic
	// or watchdog stall (flight-<reason>-<seq>.jsonl). Empty disables
	// auto-dumps; GET /v1/debug/flight still works.
	FlightDir string
	// Cluster, when set, runs the daemon as a cluster coordinator: the
	// /v1/cluster endpoints come up and batch jobs execute on registered
	// worker nodes instead of the local CPU pool. Nil keeps the daemon
	// single-box.
	Cluster *ClusterOptions
	// Logger receives structured request and job logs (default: discard).
	Logger *log.Logger
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.CacheBytes <= 0 {
		o.CacheBytes = 64 << 20
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 1024
	}
	if o.DefaultDeadline == 0 {
		o.DefaultDeadline = 2 * time.Minute
	}
	if o.DefaultDeadline < 0 {
		o.DefaultDeadline = 0
	}
	if o.MaxDeadline <= 0 {
		o.MaxDeadline = 10 * time.Minute
	}
	if o.MaxSweepPoints <= 0 {
		o.MaxSweepPoints = 1024
	}
	if o.DefaultRetryAfter <= 0 {
		o.DefaultRetryAfter = time.Second
	}
	if o.ShedHighWater <= 0 || o.ShedHighWater > 1 {
		o.ShedHighWater = 0.9
	}
	if o.ShedLowWater <= 0 || o.ShedLowWater >= o.ShedHighWater {
		o.ShedLowWater = 0.25
	}
	if o.ShedWindow <= 0 {
		o.ShedWindow = 2 * time.Second
	}
	if o.ShedInterval <= 0 {
		o.ShedInterval = 100 * time.Millisecond
	}
	if o.Logger == nil {
		o.Logger = log.New(discard{}, "", 0)
	}
	return o
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// Server is the hetwired daemon core. Create with New, serve its Handler,
// and stop with Shutdown.
type Server struct {
	opts    Options
	mux     *http.ServeMux
	queue   *fairQueue
	cache   *Cache
	metrics *Metrics
	tenants *tenant.Registry
	// shed is the overload watchdog's latch: while set, bulk-lane
	// submissions are rejected with reason load_shed.
	shed atomic.Bool
	// flight is the always-on flight recorder; nil when disabled
	// (Options.FlightEvents < 0), in which case every Record call is one
	// pointer compare.
	flight *flight.Recorder
	// coord is the cluster coordinator; nil unless Options.Cluster was set.
	coord        *cluster.Coordinator
	clusterToken string

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string          // submission order, for listing and pruning
	idem     map[string]string // Idempotency-Key -> job ID, pruned with jobs
	nextID   uint64
	draining bool
}

// New builds a server and starts its worker pool.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	var fr *flight.Recorder
	if opts.FlightEvents >= 0 {
		fr = flight.New(opts.FlightEvents)
	}
	s := &Server{
		opts:    opts,
		queue:   newFairQueue(opts.QueueDepth, opts.Workers, opts.FIFOScheduler, fr),
		cache:   NewCache(opts.CacheBytes),
		metrics: NewMetrics(opts.Workers, time.Now()),
		tenants: tenant.NewRegistry(opts.Tenants),
		flight:  fr,
		baseCtx: ctx,
		stop:    cancel,
		jobs:    make(map[string]*Job),
		idem:    make(map[string]string),
	}
	s.cache.setFlight(fr)
	if opts.Tenants != nil {
		s.metrics.SetTenantStats(s.tenants.Snapshots)
	}
	s.metrics.SetSchedStats(s.queue.snapshot)
	publishSchedExpvar(s.queue)
	s.mux = http.NewServeMux()
	s.route("POST", "/v1/run", s.handleRunSync)
	s.route("POST", "/v1/jobs", s.handleSubmit)
	s.route("GET", "/v1/jobs", s.handleListJobs)
	s.route("GET", "/v1/jobs/{id}", s.handleGetJob)
	s.route("GET", "/v1/jobs/{id}/stream", s.handleStreamJob)
	s.route("DELETE", "/v1/jobs/{id}", s.handleCancelJob)
	s.route("GET", "/v1/catalog", s.handleCatalog)
	s.route("GET", "/v1/debug/flight", s.handleDebugFlight)
	s.route("GET", "/v1/tenants/usage", s.handleTenantsUsage)
	s.route("GET", "/healthz", s.handleHealthz)
	s.route("GET", "/metrics", s.handleMetrics)
	if opts.Cluster != nil {
		s.initCluster(opts.Cluster)
	}
	// Catch-all for paths outside the served API: the request is still
	// counted (under the bounded NormalizeRoute label) and traced, so probes
	// for wrong URLs show up in /metrics instead of vanishing.
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		tid := ensureTraceID(w, r)
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown endpoint %s %s", r.Method, r.URL.Path))
		elapsed := time.Since(start)
		s.metrics.ObserveRequest(NormalizeRoute(r.Method, r.URL.Path), http.StatusNotFound, elapsed)
		s.opts.Logger.Printf("http method=%s path=%s status=404 trace=%s dur=%s",
			r.Method, r.URL.Path, tid, elapsed.Round(time.Microsecond))
	})
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker(i)
	}
	// The overload watchdog runs outside the worker WaitGroup: it exits on
	// the base context, which Shutdown cancels after the workers drain.
	go s.shedMonitor()
	return s
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Cache exposes the result cache (tests and the daemon's summary log).
func (s *Server) Cache() *Cache { return s.cache }

// Metrics exposes the metrics registry.
func (s *Server) Metrics() *Metrics { return s.metrics }

// route registers a handler with request logging and latency metrics keyed
// by the route pattern (not the raw URL, which would explode cardinality).
// Every request gets a trace ID here — taken from X-Hetwire-Trace when the
// client sent a valid one, minted otherwise — echoed on the response, stamped
// into the request log, and carried to the handler via the request context.
func (s *Server) route(method, pattern string, h http.HandlerFunc) {
	label := method + " " + pattern
	s.mux.HandleFunc(method+" "+pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		tid := ensureTraceID(w, r)
		r = r.WithContext(hetwire.WithTraceID(r.Context(), tid))
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		elapsed := time.Since(start)
		s.metrics.ObserveRequest(label, rec.status, elapsed)
		s.opts.Logger.Printf("http method=%s path=%s status=%d bytes=%d trace=%s dur=%s",
			r.Method, r.URL.Path, rec.status, rec.bytes, tid, elapsed.Round(time.Microsecond))
	})
}

type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.bytes += n
	return n, err
}

// Flush forwards to the wrapped writer so streaming handlers can push
// frames through the recorder.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Shutdown drains the daemon: intake closes immediately (submissions get
// 503), queued and running jobs finish, and the worker pool exits. If ctx
// expires first, running jobs are cancelled (sweeps stop between points)
// and Shutdown returns the context error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.queue.close()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.stop()
		return nil
	case <-ctx.Done():
		s.stop() // cancel running jobs, then wait for workers to notice
		<-done
		return ctx.Err()
	}
}

// worker drains the queue until it is closed and empty. A panic that escapes
// a job is contained here: the job it was executing finishes as failed with
// the stack trace in failure_log, and a replacement worker is spawned so the
// pool never shrinks — the daemon keeps serving. The slot index labels the
// per-worker busy-time counter; a respawned worker inherits its
// predecessor's slot so the label set stays fixed at pool size.
func (s *Server) worker(slot int) {
	var current *Job
	var busyStart time.Time
	defer func() {
		if r := recover(); r != nil {
			stack := debug.Stack()
			now := time.Now()
			if current != nil {
				s.flight.Record(flight.Event{
					Kind:   flight.KindPanic,
					Trace:  current.TraceID,
					Tenant: current.tenant.Name(),
					Job:    current.ID,
					Detail: fmt.Sprint(r),
				})
				current.finishPanic(r, stack, now)
				s.queue.finished(current) // release the bulk-dispatch slot
				current.tenant.CountTerminal(string(StateFailed))
				s.metrics.jobsFailed.Add(1)
				s.metrics.ObserveJobWall(now.Sub(current.Status(false).Submitted))
				s.metrics.AddWorkerBusy(slot, now.Sub(busyStart))
				s.opts.Logger.Printf("job id=%s kind=%s tenant=%s state=failed trace=%s panic=%q (worker respawning)",
					current.ID, current.Kind, current.tenant.Name(), current.TraceID, fmt.Sprint(r))
			} else {
				s.flight.Record(flight.Event{Kind: flight.KindPanic, Detail: fmt.Sprint(r)})
				s.opts.Logger.Printf("worker panic outside a job: %v (respawning)", r)
			}
			s.autoDumpFlight("panic")
			s.metrics.jobsPanicked.Add(1)
			s.metrics.workersRespawned.Add(1)
			s.wg.Add(1)
			go s.worker(slot)
		}
		s.wg.Done()
	}()
	for {
		job, ok := s.queue.pop()
		if !ok {
			return
		}
		current = job
		busyStart = time.Now()
		s.runJob(job)
		s.queue.finished(job)
		s.metrics.AddWorkerBusy(slot, time.Since(busyStart))
		current = nil
	}
}

// runJob executes one claimed job and records its outcome. The running/busy
// gauges are restored by defer so they stay correct even when a panic
// propagates to the worker's containment handler.
func (s *Server) runJob(job *Job) {
	if !job.claim(time.Now()) {
		return // cancelled while queued
	}
	s.metrics.jobsRunning.Add(1)
	s.metrics.workersBusy.Add(1)
	job.tenant.IncInFlight()
	defer func() {
		s.metrics.jobsRunning.Add(-1)
		s.metrics.workersBusy.Add(-1)
		job.tenant.DecInFlight()
	}()
	start := time.Now()

	// Fault-injection points (no-ops without an injector): spurious
	// cancellation, artificial slowness, and a worker panic.
	if s.opts.Faults.Should(faultinject.CtxCancel) {
		job.cancel()
	}
	if s.opts.Faults.Should(faultinject.JobSlow) {
		sleepCtx(job.ctx, s.opts.Faults.SlowDuration())
	}
	if s.opts.Faults.Should(faultinject.WorkerPanic) {
		panic("faultinject: worker panic")
	}

	var body []byte
	var hit bool
	var err error
	switch job.Kind {
	case "sweep":
		body, hit, err = s.runSweep(job.ctx, job.Sweep, job.spans)
	case "batch":
		if s.coord != nil {
			body, hit, err = s.runClusterBatch(job)
		} else {
			body, hit, err = s.runBatch(job)
		}
	default:
		body, hit, err = s.runCached(job.ctx, &job.Req, job.spans)
	}
	now := time.Now()
	job.finish(body, hit, ipcOf(body), err, now)

	// A forward-progress watchdog abort is the "stall" incident class: record
	// it and preserve the ring on disk, exactly like a panic.
	var np *core.NoProgressError
	if errors.As(err, &np) {
		s.flight.Record(flight.Event{
			Kind:   flight.KindStall,
			Trace:  job.TraceID,
			Tenant: job.tenant.Name(),
			Job:    job.ID,
			Detail: np.Error(),
		})
		s.autoDumpFlight("stall")
	}

	state := job.State()
	switch state {
	case StateDone:
		s.metrics.jobsDone.Add(1)
	case StateFailed:
		s.metrics.jobsFailed.Add(1)
	case StateCancelled:
		s.metrics.jobsCancelled.Add(1)
	}
	for _, sp := range job.spans.snapshot() {
		s.metrics.ObservePhase(sp.Name, time.Duration(sp.DurMS*float64(time.Millisecond)))
	}
	// Bill the tenant for the job's measured simulation time — sim_run for
	// local execution, node_sim for scenarios that ran on cluster nodes — and
	// fold the same charge into the fair scheduler's virtual time.
	simCPU := job.spans.totalDur(spanSimRun, cluster.SpanSim)
	job.tenant.AddSimCPU(simCPU)
	job.tenant.CountTerminal(string(state))
	s.queue.charge(job, simCPU)
	st := job.Status(false)
	s.metrics.ObserveJobWall(now.Sub(st.Submitted))
	// SLO accounting: a job counts good when it finished Done within the
	// tenant's latency objective, measured end-to-end (queue wait included —
	// that is what the client experiences). Cancelled jobs are the client's
	// own doing and count neither way.
	if sloMS, sloTarget := job.tenant.SLO(); sloMS > 0 && state != StateCancelled {
		e2e := now.Sub(st.Submitted)
		good := state == StateDone && float64(e2e)/float64(time.Millisecond) <= sloMS
		s.metrics.ObserveSLO(job.tenant.Name(), sloTarget, good, e2e,
			time.Duration(st.QueueMS*float64(time.Millisecond)), now)
	}
	s.opts.Logger.Printf("job id=%s kind=%s tenant=%s lane=%s state=%s trace=%s cache_hit=%t wall_ms=%.1f sim_cpu_ms=%.1f ipc=%.3f err=%q",
		job.ID, job.Kind, job.tenant.Name(), job.lane, state, job.TraceID, st.CacheHit,
		float64(now.Sub(start))/float64(time.Millisecond), float64(simCPU)/float64(time.Millisecond), st.IPC, st.Error)
}

// sleepCtx sleeps for d or until ctx is cancelled, whichever comes first —
// injected slowness must not outlive a cancellation or deadline.
func sleepCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// runCached serves one run request through the result cache. The simulation
// itself runs under ctx: cancelling the job stops the simulator within one
// ctx-check interval (hetwire.CtxCheckInterval committed instructions).
// Phase spans land on the recorder: sim_run and result_encode inside the
// fill (only when this call actually simulates), cache_lookup as the Do time
// net of the fill — for hits and coalesced waits that is the whole wait.
func (s *Server) runCached(ctx context.Context, req *hetwire.RunRequest, spans *spanRecorder) ([]byte, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	// Hold a process CPU token across the lookup-or-fill, unless this frame
	// already runs under one (a batch scenario). Acquiring before cache.Do is
	// what keeps the pool deadlock-free: a coalescing flight leader always
	// already holds its token, so waiters holding tokens never starve it.
	if !batch.HasToken(ctx) {
		waitStart := time.Now()
		if err := batch.CPU.Acquire(ctx); err != nil {
			return nil, false, err
		}
		defer batch.CPU.Release()
		spans.observe(spanCPUWait, waitStart, time.Since(waitStart))
		ctx = batch.WithToken(ctx)
	}
	key, err := req.CacheKey()
	if err != nil {
		return nil, false, err
	}
	lookupStart := time.Now()
	var fillDur time.Duration
	body, hit, err := s.cache.Do(ctx, key, func() ([]byte, error) {
		fillStart := time.Now()
		defer func() { fillDur = time.Since(fillStart) }()
		resp, err := req.ExecuteContext(ctx)
		if err != nil {
			return nil, err
		}
		simDur := time.Since(fillStart)
		s.metrics.simBusy.Add(int64(simDur))
		s.metrics.instructions.Add(resp.Instructions)
		spans.observe(spanSimRun, fillStart, simDur)
		// The cache stores the binary wire frame, not JSON: hits and
		// coalesced waiters then serve results by copying stored bytes, and
		// binary consumers (batch streams, cluster uploads) embed the frame
		// without ever re-encoding. JSON views are rendered lazily at the
		// HTTP edge only when a client asks for them.
		encStart := time.Now()
		b, err := wire.EncodeRunResult(resp)
		spans.observe(spanResultEncode, encStart, time.Since(encStart))
		// Attribute the inserted bytes to the tenant whose job filled this
		// entry (cumulative insert attribution; later hits by any tenant read
		// it for free — the filler paid the simulation too).
		if err == nil {
			if tn := tenant.FromContext(ctx); tn != nil {
				tn.AddCacheBytes(int64(len(b)))
			}
		}
		return b, err
	})
	if d := time.Since(lookupStart) - fillDur; d > 0 {
		spans.observe(spanCacheLookup, lookupStart, d)
	} else {
		spans.observe(spanCacheLookup, lookupStart, 0)
	}
	if err == nil {
		kind := flight.KindCacheMiss
		if hit {
			kind = flight.KindCacheHit
		}
		ev := flight.Event{Kind: kind, Trace: hetwire.TraceIDFrom(ctx)}
		if tn := tenant.FromContext(ctx); tn != nil {
			ev.Tenant = tn.Name()
		}
		s.flight.Record(ev)
	}
	if err == nil && !hit && s.opts.Faults.Should(faultinject.CacheCorrupt) {
		s.cache.CorruptEntry(key)
	}
	return body, hit, err
}

// runSweep executes a sweep point by point, consulting the cache for each
// and honouring cancellation between points.
func (s *Server) runSweep(ctx context.Context, sw *SweepRequest, spans *spanRecorder) ([]byte, bool, error) {
	reqs, err := sw.expand()
	if err != nil {
		return nil, false, err
	}
	out := SweepResponse{Points: make([]SweepPoint, 0, len(reqs))}
	for i := range reqs {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		req := &reqs[i]
		body, hit, err := s.runCached(ctx, req, spans)
		if err != nil {
			return nil, false, fmt.Errorf("point %s/%s/n=%d: %w",
				req.Benchmark, req.Model, req.Instructions(), err)
		}
		if hit {
			out.CacheHits++
		}
		out.Points = append(out.Points, SweepPoint{
			Benchmark: req.Benchmark,
			Model:     req.Model,
			N:         req.Instructions(),
			IPC:       ipcOf(body),
			Cached:    hit,
		})
	}
	body, err := json.Marshal(out)
	return body, out.CacheHits == len(reqs), err
}

// runBatch executes a batch job on the shared engine: scenarios run in
// parallel under the process CPU-token budget, each going through the result
// cache individually, with per-scenario spans merged into the job's recorder
// and per-scenario progress published as each one finishes (a status poll
// mid-run sees the completed prefix, and the streaming endpoint relays each
// scenario frame as it lands). The job body is the binary batch stream —
// header, one TypeScenario frame per expansion index, trailer — assembled by
// concatenating the already-published frames; a cached scenario's stored
// result frame is embedded verbatim, so the batch path never decodes or
// re-encodes a result. Scenario failures are isolated into their slot rather
// than failing the job; only cancellation or a deadline ends the job early.
func (s *Server) runBatch(job *Job) ([]byte, bool, error) {
	ctx := job.ctx
	reqs, err := job.Batch.Expand()
	if err != nil {
		return nil, false, err
	}
	frames := make([][]byte, len(reqs))
	errs := batch.Run(ctx, len(reqs), job.Batch.Parallelism, func(ctx context.Context, i int) error {
		start := time.Now()
		body, hit, err := s.runCached(ctx, &reqs[i], job.spans)
		job.progress.finishPoint(i, ipcOf(body), hit, err, time.Since(start))
		fr, encErr := scenarioFrame(i, reqs[i], body, hit, err)
		if encErr != nil {
			return encErr
		}
		frames[i] = fr
		job.progress.publishFrame(i, fr)
		return err
	})
	// Scenarios the run never started (cancellation) or whose frame failed to
	// encode still occupy their index: synthesize an error frame so both the
	// stream and the merged body carry every expansion slot.
	for i := range frames {
		if frames[i] != nil {
			continue
		}
		cause := errs[i]
		if cause == nil {
			cause = errors.New("scenario did not run")
		}
		fr, encErr := scenarioFrame(i, reqs[i], nil, false, cause)
		if encErr != nil {
			return nil, false, encErr
		}
		frames[i] = fr
		job.progress.publishFrame(i, fr)
	}
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	encStart := time.Now()
	body, hit, err := assembleBatch(frames)
	job.spans.observe(spanResultEncode, encStart, time.Since(encStart))
	return body, hit, err
}

// scenarioFrame encodes one resolved batch scenario into its wire frame. A
// successful scenario embeds the cached result frame verbatim; a failed one
// carries the error and reason strings instead.
func scenarioFrame(i int, req hetwire.RunRequest, body []byte, hit bool, err error) ([]byte, error) {
	sc := &wire.Scenario{Index: i, Request: req}
	if err != nil {
		sc.Error = err.Error()
		sc.Reason = scenarioReason(err)
	} else {
		sc.Result = body
		sc.Cached = hit
	}
	return wire.AppendScenario(nil, sc)
}

// scenarioReason maps a scenario error to its machine-readable reason code.
func scenarioReason(err error) string {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return "cancelled"
	}
	return hetwire.ReasonCode(err)
}

// assembleBatch concatenates published scenario frames into the canonical
// batch stream, deriving the trailer counts from the frame headers alone.
// The bool result reports whether every scenario was a cache hit.
func assembleBatch(frames [][]byte) ([]byte, bool, error) {
	var completed, failed, hits int
	for i, fr := range frames {
		h, err := wire.PeekHeader(fr)
		if err != nil {
			return nil, false, fmt.Errorf("batch scenario %d: %w", i, err)
		}
		if h.Flags&wire.FlagError != 0 {
			failed++
			continue
		}
		completed++
		if h.Flags&wire.FlagCached != 0 {
			hits++
		}
	}
	out, err := wire.AppendBatchHeader(nil, len(frames))
	if err != nil {
		return nil, false, err
	}
	for _, fr := range frames {
		out = append(out, fr...)
	}
	out, err = wire.AppendBatchTrailer(out, wire.BatchTrailer{
		Total:     len(frames),
		Completed: completed,
		Failed:    failed,
		CacheHits: hits,
	})
	if err != nil {
		return nil, false, err
	}
	return out, hits == len(frames), nil
}

// ipcOf extracts the summary IPC from a result body. Wire frames carry the
// IPC in the frame header, so the common path reads 28 bytes and never
// decodes the payload; JSON bodies (sweep and batch summaries) fall back to
// unmarshalling.
func ipcOf(body []byte) float64 {
	if wire.IsWire(body) {
		h, err := wire.PeekHeader(body)
		if err != nil || h.Type != wire.TypeRunResult {
			return 0
		}
		return h.SummaryFloat()
	}
	var v struct {
		IPC float64 `json:"ipc"`
	}
	if body == nil || json.Unmarshal(body, &v) != nil {
		return 0
	}
	return v.IPC
}

// submitRequest is the POST /v1/jobs body: run-request fields inline, a
// "sweep" object, or a "batch" object, plus an optional per-job deadline
// override.
type submitRequest struct {
	hetwire.RunRequest
	Sweep *SweepRequest         `json:"sweep,omitempty"`
	Batch *hetwire.BatchRequest `json:"batch,omitempty"`
	// DeadlineMS overrides the server's default per-job wall-clock budget,
	// capped at Options.MaxDeadline.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// deadlineFor resolves a submission's wall-clock budget: the request
// override clamped to MaxDeadline, or the server default.
func (s *Server) deadlineFor(sub *submitRequest) time.Duration {
	d := s.opts.DefaultDeadline
	if sub.DeadlineMS > 0 {
		d = time.Duration(sub.DeadlineMS) * time.Millisecond
		if d > s.opts.MaxDeadline {
			d = s.opts.MaxDeadline
		}
	}
	return d
}

// submit validates, registers, and enqueues a job on behalf of tn (never
// nil; the anonymous tenant in open mode). A non-empty idemKey makes the
// submission idempotent within the tenant: a retry carrying the same key
// returns the job the first attempt created instead of enqueueing a
// duplicate — but the same key from a different tenant is a different
// submission. Every rejection is counted by machine-readable reason, on
// both the global and the tenant's counters, before it returns.
func (s *Server) submit(sub *submitRequest, tn *tenant.Tenant, idemKey, traceID string) (job *Job, replayed bool, err error) {
	kind := "run"
	var batchReqs []hetwire.RunRequest
	if sub.Batch != nil && sub.Sweep != nil {
		err := &hetwire.RequestError{Code: hetwire.ReasonBadRequest,
			Err: fmt.Errorf("server: a submission carries either batch or sweep, not both")}
		s.reject(tn, hetwire.ReasonCode(err))
		return nil, false, err
	}
	if sub.Batch != nil {
		kind = "batch"
		if err := sub.Batch.Validate(); err != nil {
			s.reject(tn, hetwire.ReasonCode(err))
			return nil, false, err
		}
		reqs, err := sub.Batch.Expand()
		if err != nil { // unreachable after Validate, but don't trust it
			s.reject(tn, hetwire.ReasonCode(err))
			return nil, false, err
		}
		// Validate enforced the library-wide MaxSweepPoints; the daemon's own
		// per-job limit may be tighter.
		if len(reqs) > s.opts.MaxSweepPoints {
			err := &hetwire.RequestError{Code: hetwire.ReasonBatchTooLarge,
				Err: fmt.Errorf("server: batch expands to %d scenarios, limit is %d", len(reqs), s.opts.MaxSweepPoints)}
			s.reject(tn, hetwire.ReasonCode(err))
			return nil, false, err
		}
		batchReqs = reqs
	} else if sub.Sweep != nil {
		kind = "sweep"
		reqs, err := sub.Sweep.expand()
		if err != nil {
			err = &hetwire.RequestError{Code: hetwire.ReasonBadRequest, Err: err}
			s.reject(tn, hetwire.ReasonCode(err))
			return nil, false, err
		}
		if len(reqs) > s.opts.MaxSweepPoints {
			err := &hetwire.RequestError{Code: hetwire.ReasonSweepTooLarge,
				Err: fmt.Errorf("server: sweep expands to %d points, limit is %d", len(reqs), s.opts.MaxSweepPoints)}
			s.reject(tn, hetwire.ReasonCode(err))
			return nil, false, err
		}
		for i := range reqs {
			if reqs[i].N > hetwire.MaxInstructions {
				err := &hetwire.RequestError{Code: hetwire.ReasonBudgetExceeded,
					Err: fmt.Errorf("server: sweep point n=%d exceeds the per-request limit of %d",
						reqs[i].N, uint64(hetwire.MaxInstructions))}
				s.reject(tn, hetwire.ReasonCode(err))
				return nil, false, err
			}
		}
	} else if err := sub.RunRequest.Validate(); err != nil {
		s.reject(tn, hetwire.ReasonCode(err))
		return nil, false, err
	}

	// Overload protection, after validation (malformed requests stay 400)
	// and before registration. Load-shed rejects only the bulk lane —
	// interactive runs stay admitted; the per-tenant token bucket covers
	// every lane. Both return 429 with a tenant-appropriate Retry-After.
	if laneOf(kind) == laneBulk && s.shed.Load() {
		err := &hetwire.RequestError{Code: hetwire.ReasonLoadShed,
			Err: fmt.Errorf("server: shedding load, bulk submissions are rejected until the queue drains")}
		s.reject(tn, hetwire.ReasonLoadShed)
		return nil, false, err
	}
	if !tn.Allow(time.Now()) {
		err := &hetwire.RequestError{Code: hetwire.ReasonTenantRateLimited,
			Err: fmt.Errorf("server: tenant %q submission rate limit exceeded", tn.Name())}
		s.reject(tn, hetwire.ReasonTenantRateLimited)
		return nil, false, err
	}

	// Idempotency keys are scoped per tenant: tenant A replaying key K must
	// never observe (or collide with) tenant B's job under the same K. The
	// separator cannot appear in a tenant name, so scoped keys cannot alias.
	if idemKey != "" {
		idemKey = tn.Name() + "\x00" + idemKey
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.reject(tn, "draining")
		return nil, false, ErrDraining
	}
	if idemKey != "" {
		if id, ok := s.idem[idemKey]; ok {
			if j, ok := s.jobs[id]; ok {
				s.mu.Unlock()
				return j, true, nil
			}
		}
	}
	s.nextID++
	job = newJob(s.baseCtx, fmt.Sprintf("j-%06d", s.nextID), kind, traceID, tn, s.deadlineFor(sub), time.Now())
	job.Req = sub.RunRequest
	job.Sweep = sub.Sweep
	job.Batch = sub.Batch
	if batchReqs != nil {
		job.progress = newBatchProgress(batchReqs)
	}
	job.idemKey = idemKey
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	if idemKey != "" {
		s.idem[idemKey] = job.ID
	}
	s.pruneLocked()
	s.mu.Unlock()

	if err := s.queue.push(job); err != nil {
		s.mu.Lock()
		s.dropLocked(job)
		s.mu.Unlock()
		// Reason order matters: errTenantQueueShare wraps ErrQueueFull, so
		// the typed code is consulted before the errors.Is fallbacks.
		var re *hetwire.RequestError
		switch {
		case errors.As(err, &re):
			s.reject(tn, re.Code)
		case errors.Is(err, ErrQueueFull):
			s.reject(tn, "queue_full")
		default:
			s.reject(tn, "draining")
		}
		return nil, false, err
	}
	s.metrics.jobsSubmitted.Add(1)
	tn.CountSubmitted()
	s.flight.Record(flight.Event{
		Kind:   flight.KindAdmit,
		Trace:  job.TraceID,
		Tenant: tn.Name(),
		Job:    job.ID,
		Lane:   job.lane.String(),
	})
	return job, false, nil
}

// dropLocked removes a job record that never made it into the queue.
// Called with s.mu held.
func (s *Server) dropLocked(job *Job) {
	delete(s.jobs, job.ID)
	for i := len(s.order) - 1; i >= 0; i-- { // it is almost always last
		if s.order[i] == job.ID {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	if job.idemKey != "" && s.idem[job.idemKey] == job.ID {
		delete(s.idem, job.idemKey)
	}
	job.cancel() // release the deadline timer
}

// pruneLocked drops the oldest terminal job records past MaxJobs.
func (s *Server) pruneLocked() {
	for len(s.order) > s.opts.MaxJobs {
		pruned := false
		for i, id := range s.order {
			if j, ok := s.jobs[id]; ok && j.State().Terminal() {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				if j.idemKey != "" && s.idem[j.idemKey] == id {
					delete(s.idem, j.idemKey)
				}
				pruned = true
				break
			}
		}
		if !pruned {
			return // everything retained is still live
		}
	}
}

// retryAfter estimates how long a rejected submitter should back off: the
// queue's expected drain time, i.e. depth x observed mean job latency spread
// over the worker pool, clamped to [1s, 5m] and rounded up to whole seconds
// (the Retry-After header's unit). Before any job has completed there is no
// observed latency to scale by queue depth, so the configured default is
// returned as-is rather than multiplying a guess by the depth.
func (s *Server) retryAfter() time.Duration {
	if s.metrics.ObservedJobs() == 0 {
		return s.opts.DefaultRetryAfter.Round(time.Second)
	}
	mean := s.metrics.MeanJobLatency(time.Second)
	depth := s.queue.depthNow() + 1 // the job that would have queued
	est := time.Duration(depth) * mean / time.Duration(s.opts.Workers)
	if est < time.Second {
		est = time.Second
	}
	if est > 5*time.Minute {
		est = 5 * time.Minute
	}
	return est.Round(time.Second)
}

// --- HTTP handlers ---

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tn, err := s.resolveTenant(r)
	if err != nil {
		s.reject(nil, hetwire.ReasonUnknownTenant)
		s.submitError(w, err, nil)
		return
	}
	var sub submitRequest
	if err := json.NewDecoder(r.Body).Decode(&sub); err != nil {
		s.reject(tn, "bad_json")
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	job, replayed, err := s.submit(&sub, tn, r.Header.Get("Idempotency-Key"), hetwire.TraceIDFrom(r.Context()))
	if err != nil {
		s.submitError(w, err, tn)
		return
	}
	if replayed {
		w.Header().Set("X-Hetwired-Idempotent", "replay")
		w.WriteHeader(http.StatusOK)
	} else {
		w.WriteHeader(http.StatusAccepted)
	}
	writeJSON(w, job.Status(false))
}

// submitError maps a submission failure to its HTTP response. Overload
// rejections (queue_full, tenant_queue_share, tenant_rate_limited,
// load_shed) become 429 with a Retry-After hint — the tenant's own bucket
// refill time for a rate limit, the queue-drain estimate otherwise — and
// unknown_tenant becomes 401. The body carries the machine-readable reason
// code alongside the human-readable message so clients can branch without
// string matching. The typed code is consulted before the errors.Is
// fallbacks because tenant rejections wrap the generic sentinels.
func (s *Server) submitError(w http.ResponseWriter, err error, tn *tenant.Tenant) {
	var re *hetwire.RequestError
	if errors.As(err, &re) {
		switch re.Code {
		case hetwire.ReasonTenantRateLimited, hetwire.ReasonTenantQueueShare, hetwire.ReasonLoadShed:
			w.Header().Set("Retry-After", strconv.Itoa(int(s.retryAfterFor(tn, re.Code)/time.Second)))
			httpErrorReason(w, http.StatusTooManyRequests, re.Code, err)
			return
		case hetwire.ReasonUnknownTenant:
			httpErrorReason(w, http.StatusUnauthorized, re.Code, err)
			return
		}
	}
	if errors.Is(err, ErrQueueFull) {
		w.Header().Set("Retry-After", strconv.Itoa(int(s.retryAfter()/time.Second)))
		httpErrorReason(w, http.StatusTooManyRequests, "queue_full", err)
		return
	}
	if errors.Is(err, ErrDraining) {
		httpErrorReason(w, http.StatusServiceUnavailable, "draining", err)
		return
	}
	httpErrorReason(w, submitStatus(err), hetwire.ReasonCode(err), err)
}

// handleRunSync submits a run and blocks until it completes, returning the
// result body directly; the X-Hetwired-Cache header reports hit or miss.
func (s *Server) handleRunSync(w http.ResponseWriter, r *http.Request) {
	tn, err := s.resolveTenant(r)
	if err != nil {
		s.reject(nil, hetwire.ReasonUnknownTenant)
		s.submitError(w, err, nil)
		return
	}
	var req hetwire.RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.reject(tn, "bad_json")
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	job, _, err := s.submit(&submitRequest{RunRequest: req}, tn, r.Header.Get("Idempotency-Key"), hetwire.TraceIDFrom(r.Context()))
	if err != nil {
		s.submitError(w, err, tn)
		return
	}
	select {
	case <-job.done:
	case <-r.Context().Done():
		// The client went away; the job keeps running and fills the cache.
		httpError(w, 499, fmt.Errorf("client closed request; job %s continues", job.ID))
		return
	}
	st := job.Status(false)
	switch st.State {
	case StateDone:
		if st.CacheHit {
			w.Header().Set("X-Hetwired-Cache", "hit")
		} else {
			w.Header().Set("X-Hetwired-Cache", "miss")
		}
		// Content negotiation: a client accepting the binary wire format gets
		// the stored frame copied straight out of the cache — zero decode, zero
		// re-encode. Everyone else gets the JSON debug view, rendered lazily.
		if acceptsWire(r) {
			s.flight.Record(flight.Event{
				Kind: flight.KindZeroDecode, Trace: job.TraceID,
				Tenant: tn.Name(), Job: job.ID,
			})
			w.Header().Set("Content-Type", wire.ContentType)
			w.Write(job.RawResult())
			return
		}
		s.flight.Record(flight.Event{
			Kind: flight.KindWireDecode, Trace: job.TraceID,
			Tenant: tn.Name(), Job: job.ID,
		})
		w.Header().Set("Content-Type", "application/json")
		w.Write(job.Status(true).Result)
	case StateCancelled:
		httpError(w, http.StatusConflict, fmt.Errorf("job %s cancelled", job.ID))
	default:
		httpError(w, http.StatusInternalServerError, errors.New(st.Error))
	}
}

// acceptsWire reports whether the request opted into the binary wire format.
func acceptsWire(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), wire.ContentType)
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	filter := JobState(r.URL.Query().Get("state"))
	s.mu.Lock()
	ids := make([]string, len(s.order))
	copy(ids, s.order)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		if j, ok := s.jobs[id]; ok {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		st := j.Status(false)
		if filter != "" && st.State != filter {
			continue
		}
		out = append(out, st)
	}
	writeJSON(w, map[string]any{"jobs": out})
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(r.PathValue("id"))
	if job == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, job.Status(true))
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(r.PathValue("id"))
	if job == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	if job.markCancelled(time.Now()) {
		s.metrics.jobsCancelled.Add(1)
		job.tenant.CountTerminal(string(StateCancelled))
	} else {
		job.cancel() // running: stops between sweep points; terminal: no-op
	}
	writeJSON(w, job.Status(false))
}

func (s *Server) handleCatalog(w http.ResponseWriter, _ *http.Request) {
	models := make([]string, 0, 10)
	for _, m := range config.Models() {
		models = append(models, m.ID.String())
	}
	writeJSON(w, map[string]any{
		"benchmarks": hetwire.Benchmarks(),
		"kernels":    hetwire.Kernels(),
		"models":     models,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		w.WriteHeader(http.StatusServiceUnavailable)
		writeJSON(w, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, map[string]any{"status": "ok"})
}

// handleDebugFlight dumps the flight recorder's surviving event window.
// ?canon=1 clears the measured fields (VTime, DurMS) so two identical runs
// dump byte-identical files — the determinism contract CI pins with cmp.
// Content negotiation mirrors the result path: binary clients get the dump
// wrapped in TypeFlightRecord frames, everyone else gets JSONL.
func (s *Server) handleDebugFlight(w http.ResponseWriter, r *http.Request) {
	if !s.flight.Enabled() {
		httpError(w, http.StatusNotFound, errors.New("flight recorder disabled (-flight-events < 0)"))
		return
	}
	events := s.flight.Snapshot()
	if r.URL.Query().Get("canon") == "1" {
		events = flight.Canonical(events)
	}
	if acceptsWire(r) {
		w.Header().Set("Content-Type", wire.ContentType)
		fw := wire.NewFlightWriter(w)
		if err := flight.WriteDump(fw, "hetwired", events); err == nil {
			fw.Close()
		}
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flight.WriteDump(w, "hetwired", events)
}

// handleTenantsUsage surfaces the per-tenant accounting ledgers (submission,
// terminal-state, sim-CPU, and cache-byte counters plus the live queue/
// in-flight gauges) as JSON — the ops-plane view of who is spending what.
func (s *Server) handleTenantsUsage(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{"tenants": s.tenants.Snapshots()})
}

// autoDumpFlight preserves the recorder ring on disk after an incident
// (worker panic, watchdog stall). Best-effort: dump failures are logged,
// never propagated — the incident path must not gain new failure modes.
func (s *Server) autoDumpFlight(reason string) {
	if !s.flight.Enabled() || s.opts.FlightDir == "" {
		return
	}
	name := filepath.Join(s.opts.FlightDir, fmt.Sprintf("flight-%s-%d.jsonl", reason, s.flight.Seq()))
	f, err := os.Create(name)
	if err != nil {
		s.opts.Logger.Printf("flight: auto-dump %s: %v", name, err)
		return
	}
	defer f.Close()
	if err := flight.WriteDump(f, "hetwired", s.flight.Snapshot()); err != nil {
		s.opts.Logger.Printf("flight: auto-dump %s: %v", name, err)
		return
	}
	s.opts.Logger.Printf("flight: dumped recorder to %s (reason=%s)", name, reason)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.render(w, s.queue.depthNow(), draining, s.cache.Stats(), time.Now())
}

func (s *Server) lookup(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// submitStatus maps submission errors to HTTP statuses: draining is 503
// (retry against another instance), bad requests 400. Queue-full is handled
// earlier by submitError (429 + Retry-After).
func submitStatus(err error) int {
	if errors.Is(err, ErrQueueFull) || errors.Is(err, ErrDraining) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, v any) {
	if w.Header().Get("Content-Type") == "" {
		w.Header().Set("Content-Type", "application/json")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// httpErrorReason is httpError plus a machine-readable reason field.
func httpErrorReason(w http.ResponseWriter, status int, reason string, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error(), "reason": reason})
}
