package server

import (
	"encoding/json"
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hetwire"
)

var updateGolden = flag.Bool("update", false, "rewrite golden fixtures")

func TestNormalizeRoute(t *testing.T) {
	cases := []struct {
		method, path, want string
	}{
		{"GET", "/v1/jobs", "GET /v1/jobs"},
		{"GET", "/v1/jobs?state=done", "GET /v1/jobs"},
		{"GET", "/v1/jobs/j-000123", "GET /v1/jobs/{id}"},
		{"DELETE", "/v1/jobs/j-000123", "DELETE /v1/jobs/{id}"},
		{"GET", "/v1/jobs/j-000123?x=1", "GET /v1/jobs/{id}"},
		{"GET", "/v1/jobs/j-000123/stream", "GET /v1/jobs/{id}/stream"},
		{"GET", "/v1/jobs/j-000123/stream?from=4", "GET /v1/jobs/{id}/stream"},
		{"GET", "/v1/jobs/j-1/x/stream", "GET /v1/jobs/{id}"}, // junk segments fold to the id route
		{"GET", "/v1/debug/flight", "GET /v1/debug/flight"},
		{"GET", "/v1/debug/flight?canon=1", "GET /v1/debug/flight"},
		{"GET", "/v1/tenants/usage", "GET /v1/tenants/usage"},
		{"POST", "/v1/run", "POST /v1/run"},
		{"GET", "/healthz", "GET /healthz"},
		{"GET", "/metrics", "GET /metrics"},
		{"GET", "/", "GET other"},
		{"GET", "/favicon.ico", "GET other"},
		{"POST", "/admin/../../etc/passwd", "POST other"},
		{"GET", "/v1/jobs/", "GET other"}, // trailing slash, empty id
	}
	for _, c := range cases {
		if got := NormalizeRoute(c.method, c.path); got != c.want {
			t.Errorf("NormalizeRoute(%s, %s) = %q, want %q", c.method, c.path, got, c.want)
		}
	}
}

func TestTraceIDValidation(t *testing.T) {
	valid := []string{"a", "0123456789abcdef", "trace-id_1.2", strings.Repeat("x", 64)}
	for _, id := range valid {
		if !validTraceID(id) {
			t.Errorf("validTraceID(%q) = false, want true", id)
		}
	}
	invalid := []string{"", "has space", "semi;colon", "new\nline", strings.Repeat("x", 65), "ünïcode"}
	for _, id := range invalid {
		if validTraceID(id) {
			t.Errorf("validTraceID(%q) = true, want false", id)
		}
	}
	mint := MintTraceID()
	if len(mint) != 16 || !validTraceID(mint) {
		t.Errorf("MintTraceID() = %q, want 16 valid hex chars", mint)
	}
	if MintTraceID() == mint {
		t.Error("two minted trace IDs collided")
	}
}

func TestSpanRecorderMergesSameName(t *testing.T) {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	sr := newSpanRecorder(base)
	sr.observe("sim_run", base.Add(10*time.Millisecond), 20*time.Millisecond)
	sr.observe("encode", base.Add(30*time.Millisecond), 1*time.Millisecond)
	sr.observe("sim_run", base.Add(50*time.Millisecond), 5*time.Millisecond)
	spans := sr.snapshot()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2 (same-name spans must merge)", len(spans))
	}
	if spans[0].Name != "sim_run" || spans[0].StartMS != 10 || spans[0].DurMS != 25 {
		t.Errorf("merged span = %+v, want start 10ms dur 25ms", spans[0])
	}

	// Nil recorder: observe and snapshot are no-ops, not panics.
	var nilRec *spanRecorder
	nilRec.observe("x", base, time.Millisecond)
	if nilRec.snapshot() != nil {
		t.Error("nil recorder snapshot is non-nil")
	}
}

// TestTraceAndSpansEndToEnd drives a job through the HTTP API with a
// client-supplied trace ID and checks the full propagation chain: echoed
// response header, job status trace_id, and populated phase spans.
func TestTraceAndSpansEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	body, _ := json.Marshal(map[string]any{"benchmark": "gzip", "n": 20000})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", strings.NewReader(string(body)))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TraceHeader, "e2e-trace-0001")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	if got := resp.Header.Get(TraceHeader); got != "e2e-trace-0001" {
		t.Errorf("response trace header = %q, want the submitted ID", got)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.TraceID != "e2e-trace-0001" {
		t.Errorf("job status trace_id = %q, want the submitted ID", st.TraceID)
	}

	final := waitTerminal(t, ts.URL, st.ID, 30*time.Second)
	if final.State != StateDone {
		t.Fatalf("job finished %s: %s", final.State, final.Error)
	}
	if final.TraceID != "e2e-trace-0001" {
		t.Errorf("terminal trace_id = %q", final.TraceID)
	}
	byName := make(map[string]Span, len(final.Spans))
	for _, sp := range final.Spans {
		byName[sp.Name] = sp
	}
	for _, want := range []string{spanQueueWait, spanCacheLookup, spanSimRun, spanResultEncode} {
		if _, ok := byName[want]; !ok {
			t.Errorf("job spans missing %q (got %+v)", want, final.Spans)
		}
	}
	if byName[spanSimRun].DurMS <= 0 {
		t.Errorf("sim_run span duration = %v, want > 0", byName[spanSimRun].DurMS)
	}

	// A request without (or with a malformed) trace header gets a minted ID.
	resp2, raw := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"benchmark": "gzip", "n": 20000})
	minted := resp2.Header.Get(TraceHeader)
	if !validTraceID(minted) || len(minted) != 16 {
		t.Errorf("minted trace header = %q, want 16 valid chars", minted)
	}
	var st2 JobStatus
	if err := json.Unmarshal(raw, &st2); err != nil {
		t.Fatal(err)
	}
	if st2.TraceID != minted {
		t.Errorf("job trace_id %q != echoed header %q", st2.TraceID, minted)
	}
}

// TestRejectionReasonCounters checks that admission failures surface both a
// machine-readable reason in the response body and a per-reason counter in
// the exposition.
func TestRejectionReasonCounters(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})

	reasonOf := func(raw []byte) string {
		var e struct {
			Reason string `json:"reason"`
		}
		json.Unmarshal(raw, &e)
		return e.Reason
	}

	resp, raw := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"benchmark": "no-such-bench", "n": 1000})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown benchmark: status %d", resp.StatusCode)
	}
	if got := reasonOf(raw); got != hetwire.ReasonUnknownBenchmark {
		t.Errorf("unknown benchmark reason = %q, want %q", got, hetwire.ReasonUnknownBenchmark)
	}

	resp, raw = postJSON(t, ts.URL+"/v1/jobs", map[string]any{"benchmark": "gzip", "n": hetwire.MaxInstructions + 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized budget: status %d", resp.StatusCode)
	}
	if got := reasonOf(raw); got != hetwire.ReasonBudgetExceeded {
		t.Errorf("budget reason = %q, want %q", got, hetwire.ReasonBudgetExceeded)
	}

	resp, raw = postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"sweep": map[string]any{"models": []string{"I"}, "benchmarks": []string{}},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty sweep: status %d", resp.StatusCode)
	}
	if got := reasonOf(raw); got != hetwire.ReasonBadRequest {
		t.Errorf("empty sweep reason = %q, want %q", got, hetwire.ReasonBadRequest)
	}

	// Undecodable body.
	hr, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json: status %d", hr.StatusCode)
	}

	text := scrapeMetrics(t, ts.URL)
	for _, want := range []string{
		`hetwired_jobs_rejected_total{reason="unknown_benchmark"} 1`,
		`hetwired_jobs_rejected_total{reason="budget_exceeded"} 1`,
		`hetwired_jobs_rejected_total{reason="bad_request"} 1`,
		`hetwired_jobs_rejected_total{reason="bad_json"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestEndpointCardinalityCap(t *testing.T) {
	m := NewMetrics(1, time.Unix(0, 0))
	for i := 0; i < 3*maxEndpoints; i++ {
		m.ObserveRequest(NormalizeRoute("GET", "/bogus/"+strings.Repeat("x", i+1)), 404, time.Millisecond)
	}
	// NormalizeRoute folds all of those to one label already; hit the cap by
	// feeding distinct labels directly (simulating future route additions).
	for i := 0; i < 3*maxEndpoints; i++ {
		m.ObserveRequest("GET /route-"+strings.Repeat("z", i+1), 200, time.Millisecond)
	}
	m.mu.Lock()
	n := len(m.endpoints)
	over, ok := m.endpoints[overflowLabel]
	m.mu.Unlock()
	if n > maxEndpoints+1 {
		t.Errorf("endpoint label set grew to %d, cap is %d (+overflow)", n, maxEndpoints)
	}
	if !ok || over.requests == 0 {
		t.Error("overflow label absorbed no requests")
	}
}

func TestRejectionReasonCardinalityCap(t *testing.T) {
	m := NewMetrics(1, time.Unix(0, 0))
	for i := 0; i < 3*maxRejectReasons; i++ {
		m.ObserveRejection("reason-" + strings.Repeat("r", i+1))
	}
	m.mu.Lock()
	n := len(m.rejected)
	over := m.rejected[overflowLabel]
	m.mu.Unlock()
	if n > maxRejectReasons+1 {
		t.Errorf("reason label set grew to %d, cap is %d (+overflow)", n, maxRejectReasons)
	}
	if over == 0 {
		t.Error("overflow label absorbed no rejections")
	}
}

// TestMetricsRenderGolden pins the exposition format — HELP/TYPE lines,
// label quoting and escaping, histogram bucket boundaries — against a golden
// fixture. Regenerate with: go test ./internal/server -run RenderGolden -update
func TestMetricsRenderGolden(t *testing.T) {
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	m := NewMetrics(2, t0)
	m.SetBuildInfo("v1.2.3", "go1.22.0")

	m.jobsSubmitted.Store(5)
	m.jobsDone.Store(3)
	m.jobsFailed.Store(1)
	m.jobsCancelled.Store(1)
	m.instructions.Store(120000)
	m.simBusy.Store(int64(2 * time.Second))
	m.AddWorkerBusy(0, 1500*time.Millisecond)
	m.AddWorkerBusy(1, 500*time.Millisecond)

	m.ObserveRequest("POST /v1/jobs", 202, 800*time.Microsecond)
	m.ObserveRequest("POST /v1/jobs", 400, 300*time.Microsecond)
	m.ObserveRequest("GET /v1/jobs/{id}", 200, 1200*time.Microsecond)
	// A hostile label exercises Prometheus string escaping (%q): quotes and
	// backslashes must come out escaped, newlines must not break the line.
	m.ObserveRequest(`GET bad"route\label`, 404, 100*time.Microsecond)

	m.ObserveRejection("queue_full")
	m.ObserveRejection("unknown_benchmark")
	m.ObserveRejection("unknown_benchmark")

	m.ObservePhase(spanQueueWait, 2*time.Millisecond)
	m.ObservePhase(spanSimRun, 40*time.Millisecond)
	m.ObservePhase(spanSimRun, 90*time.Millisecond) // overflow bucket

	// Scheduler gauges and the per-tenant SLO layer render from fixed inputs
	// so the golden pins their exposition shape too.
	m.SetSchedStats(func() SchedSnapshot {
		return SchedSnapshot{
			Depth:       4,
			BulkRunning: 1,
			BulkCap:     1,
			LaneDepth:   map[string]int{"bulk": 3, "interactive": 1},
		}
	})
	m.ObserveSLO("acme", 99, true, 40*time.Millisecond, 5*time.Millisecond, t0.Add(30*time.Second))
	m.ObserveSLO("acme", 99, false, 900*time.Millisecond, 200*time.Millisecond, t0.Add(60*time.Second))

	cs := CacheStats{Entries: 2, Bytes: 1024, Budget: 4096, Hits: 7, Coalesced: 1, Misses: 4, Evictions: 1}
	var buf strings.Builder
	m.render(&buf, 3, false, cs, t0.Add(90*time.Second))
	got := buf.String()

	golden := filepath.Join("testdata", "metrics_render.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("render drifted from golden fixture; rerun with -update and review the diff.\n--- got ---\n%s", got)
	}
}
