package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"hetwire"
	"hetwire/internal/batch"
	"hetwire/internal/tenant"
	"hetwire/internal/wire"
)

// JobState is the lifecycle of a submitted job.
type JobState string

// Job lifecycle: Queued -> Running -> one of Done/Failed/Cancelled. Queued
// jobs cancel immediately; running sweep jobs cancel between points
// (individual simulation legs are not preemptible).
const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Job is one queued unit of work: a single/multiprogrammed run, a sweep, or
// a batch.
type Job struct {
	ID    string
	Kind  string // "run", "sweep", or "batch"
	Req   hetwire.RunRequest
	Sweep *SweepRequest
	Batch *hetwire.BatchRequest
	// TraceID is the request-trace identifier the job was submitted under
	// (client-minted or daemon-minted); immutable after submission.
	TraceID string

	// tenant is the resolved submitting tenant (never nil) and lane its
	// scheduler class; both are immutable after submission.
	tenant *tenant.Tenant
	lane   jobLane
	// dispatchedBulk marks a job occupying one of the scheduler's bounded
	// bulk-dispatch slots; owned by the fairQueue (mutated under its lock).
	dispatchedBulk bool

	ctx      context.Context
	cancel   context.CancelFunc
	done     chan struct{}  // closed on reaching a terminal state
	idemKey  string         // tenant-scoped idempotency key, if any
	deadline time.Duration  // wall-clock budget from submission
	spans    *spanRecorder  // per-phase timings, base = submission time
	progress *batchProgress // per-scenario progress, batch jobs only

	mu         sync.Mutex
	state      JobState
	body       []byte // encoded result (wire frames or JSON), valid when state == StateDone
	jsonBody   []byte // memoized JSON view of a wire-framed body, built on first demand
	jsonErr    error
	errMsg     string
	failureLog string // stack trace when the job died to a worker panic
	cacheHit   bool
	ipc        float64
	submitted  time.Time
	started    time.Time
	finished   time.Time
}

// newJob builds a queued job whose context descends from parent; a non-zero
// deadline bounds the job's total wall clock (queue wait included) via
// context.WithTimeout. The trace ID is carried both on the record (status,
// logs) and in the job context (hetwire.TraceIDFrom), so code running under
// the worker can label its output without reaching back to the server.
// Interactive-lane jobs additionally mark their context for the CPU-token
// pool's fast lane, so a run job preempts bulk sweeps at scenario
// granularity once a worker picks it up.
func newJob(parent context.Context, id, kind, traceID string, tn *tenant.Tenant, deadline time.Duration, now time.Time) *Job {
	parent = hetwire.WithTraceID(parent, traceID)
	parent = tenant.NewContext(parent, tn)
	lane := laneOf(kind)
	if lane == laneInteractive {
		parent = batch.WithInteractive(parent)
	}
	var ctx context.Context
	var cancel context.CancelFunc
	if deadline > 0 {
		ctx, cancel = context.WithTimeout(parent, deadline)
	} else {
		ctx, cancel = context.WithCancel(parent)
	}
	return &Job{
		ID:        id,
		Kind:      kind,
		TraceID:   traceID,
		tenant:    tn,
		lane:      lane,
		ctx:       ctx,
		cancel:    cancel,
		done:      make(chan struct{}),
		deadline:  deadline,
		spans:     newSpanRecorder(now),
		state:     StateQueued,
		submitted: now,
	}
}

// claim transitions queued -> running; it returns false when the job was
// cancelled while waiting in the queue. The queue_wait span is closed here:
// submission to claim is exactly the time spent waiting for a worker.
func (j *Job) claim(now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = now
	j.spans.observe(spanQueueWait, j.submitted, now.Sub(j.submitted))
	return true
}

// finish records the terminal outcome. Cancellation wins over errors so a
// job cancelled mid-sweep reports "cancelled", not the context error; a
// deadline expiry is a failure (the job did not do what was asked) with an
// explicit message rather than a bare context error.
func (j *Job) finish(body []byte, cacheHit bool, ipc float64, err error, now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.finished = now
	switch {
	case err != nil && errors.Is(err, context.DeadlineExceeded):
		j.state = StateFailed
		j.errMsg = fmt.Sprintf("deadline exceeded (budget %s, wall %s)",
			j.deadline, now.Sub(j.submitted).Round(time.Millisecond))
	case err != nil && errors.Is(err, context.Canceled):
		j.state = StateCancelled
		j.errMsg = "cancelled"
	case err != nil:
		j.state = StateFailed
		j.errMsg = err.Error()
	default:
		j.state = StateDone
		j.body = body
		j.cacheHit = cacheHit
		j.ipc = ipc
	}
	close(j.done)
}

// finishPanic resolves the job after a worker panic: failed, with the panic
// value as the error and the stack trace preserved in failure_log.
func (j *Job) finishPanic(panicVal any, stack []byte, now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.finished = now
	j.state = StateFailed
	j.errMsg = fmt.Sprintf("worker panic: %v", panicVal)
	j.failureLog = string(stack)
	close(j.done)
}

// markCancelled resolves a still-queued job without running it.
func (j *Job) markCancelled(now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateCancelled
	j.errMsg = "cancelled"
	j.finished = now
	close(j.done)
	return true
}

// State returns the current state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// JobStatus is the JSON view of a job served by the jobs endpoints.
type JobStatus struct {
	ID   string `json:"id"`
	Kind string `json:"kind"`
	// Tenant is the resolved tenant the job was submitted by ("anonymous"
	// for keyless submissions); Lane is its scheduler class ("interactive"
	// for single-scenario runs, "bulk" for sweeps and batches).
	Tenant   string   `json:"tenant,omitempty"`
	Lane     string   `json:"lane,omitempty"`
	State    JobState `json:"state"`
	CacheHit bool     `json:"cache_hit,omitempty"`
	IPC      float64  `json:"ipc,omitempty"`
	Error    string   `json:"error,omitempty"`
	// FailureLog carries the worker's stack trace when the job failed to a
	// contained panic.
	FailureLog string    `json:"failure_log,omitempty"`
	DeadlineMS float64   `json:"deadline_ms,omitempty"`
	Submitted  time.Time `json:"submitted"`
	WallMS     float64   `json:"wall_ms,omitempty"`
	QueueMS    float64   `json:"queue_ms,omitempty"`
	// TraceID is the request-trace identifier the job runs under; pass it as
	// X-Hetwire-Trace on related requests to correlate daemon logs.
	TraceID string `json:"trace_id,omitempty"`
	// Spans is the per-phase timing breakdown (queue_wait, cpu_wait,
	// cache_lookup, sim_run, result_encode), milliseconds relative to
	// submission. Sweep and batch jobs merge per-point phases into one span
	// per name.
	Spans []Span `json:"spans,omitempty"`
	// Batch is the per-scenario progress of a batch job, available from
	// submission on — a poll during the run sees completed scenarios before
	// the job reaches a terminal state.
	Batch  *BatchStatus    `json:"batch,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// Status snapshots the job. Result bodies are included only when done and
// withResult is set (list views stay small).
func (j *Job) Status(withResult bool) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:         j.ID,
		Kind:       j.Kind,
		Tenant:     j.tenant.Name(),
		Lane:       j.lane.String(),
		State:      j.state,
		CacheHit:   j.cacheHit,
		IPC:        j.ipc,
		Error:      j.errMsg,
		FailureLog: j.failureLog,
		Submitted:  j.submitted,
		TraceID:    j.TraceID,
		Spans:      j.spans.snapshot(),
	}
	if j.deadline > 0 {
		st.DeadlineMS = float64(j.deadline) / float64(time.Millisecond)
	}
	if !j.started.IsZero() {
		st.QueueMS = float64(j.started.Sub(j.submitted)) / float64(time.Millisecond)
		if !j.finished.IsZero() {
			st.WallMS = float64(j.finished.Sub(j.started)) / float64(time.Millisecond)
		}
	}
	if withResult && j.state == StateDone {
		st.Result = j.resultJSONLocked()
	}
	// Batch progress is read outside j.mu (it has its own lock) but the
	// pointer itself is immutable after submission.
	st.Batch = j.progress.snapshot(withResult)
	return st
}

// RawResult returns the stored result body exactly as the worker produced
// it — wire frames for run and batch jobs, JSON for sweeps — without any
// conversion. This is the zero-copy serving path: a binary-negotiating
// client gets the cached frame bytes with no decode.
func (j *Job) RawResult() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil
	}
	return j.body
}

// resultJSONLocked returns the JSON view of the result body, converting a
// wire-framed body on first demand and memoizing it (polling clients that
// want JSON pay the decode once per job, not per poll). Called with j.mu
// held.
func (j *Job) resultJSONLocked() json.RawMessage {
	if len(j.body) == 0 || !wire.IsWire(j.body) {
		return j.body
	}
	if j.jsonBody == nil && j.jsonErr == nil {
		j.jsonBody, j.jsonErr = wireBodyJSON(j.Kind, j.body)
	}
	return j.jsonBody
}

// wireBodyJSON converts a stored wire body into the JSON debug view.
func wireBodyJSON(kind string, body []byte) ([]byte, error) {
	switch kind {
	case "batch":
		resp, err := wire.DecodeBatch(body)
		if err != nil {
			return nil, err
		}
		return json.Marshal(resp)
	default:
		resp, err := wire.DecodeRunResult(body)
		if err != nil {
			return nil, err
		}
		return json.Marshal(resp)
	}
}

// Errors the queue reports to submitters.
var (
	ErrQueueFull = errors.New("server: job queue is full")
	ErrDraining  = errors.New("server: draining, not accepting jobs")
)

// SweepRequest asks for the cross product of models x benchmarks x
// instruction counts, executed as one job. Every point goes through the
// result cache individually, so overlapping sweeps re-simulate only the
// points no earlier query has covered.
type SweepRequest struct {
	Models     []string        `json:"models"`
	Benchmarks []string        `json:"benchmarks"`
	Ns         []uint64        `json:"ns,omitempty"`
	Clusters   int             `json:"clusters,omitempty"`
	Config     json.RawMessage `json:"config,omitempty"`
}

// expand enumerates the sweep's points as individual run requests, in
// deterministic benchmark-major order.
func (s *SweepRequest) expand() ([]hetwire.RunRequest, error) {
	if len(s.Models) == 0 || len(s.Benchmarks) == 0 {
		return nil, fmt.Errorf("server: sweep needs at least one model and one benchmark")
	}
	ns := s.Ns
	if len(ns) == 0 {
		ns = []uint64{hetwire.DefaultRunInstructions}
	}
	reqs := make([]hetwire.RunRequest, 0, len(s.Models)*len(s.Benchmarks)*len(ns))
	for _, b := range s.Benchmarks {
		for _, m := range s.Models {
			for _, n := range ns {
				reqs = append(reqs, hetwire.RunRequest{
					Benchmark: b,
					Model:     m,
					N:         n,
					Clusters:  s.Clusters,
					Config:    s.Config,
				})
			}
		}
	}
	return reqs, nil
}

// SweepPoint is one completed point of a sweep response.
type SweepPoint struct {
	Benchmark string  `json:"benchmark"`
	Model     string  `json:"model"`
	N         uint64  `json:"n"`
	IPC       float64 `json:"ipc"`
	Cached    bool    `json:"cached"`
}

// SweepResponse is the marshalled result of a sweep job.
type SweepResponse struct {
	Points    []SweepPoint `json:"points"`
	CacheHits int          `json:"cache_hits"`
}

// BatchPointStatus is one scenario's live state within a batch job.
type BatchPointStatus struct {
	Index     int     `json:"index"`
	Benchmark string  `json:"benchmark,omitempty"`
	Model     string  `json:"model,omitempty"`
	Clusters  int     `json:"clusters,omitempty"`
	N         uint64  `json:"n"`
	State     string  `json:"state"` // "pending", "done", or "failed"
	IPC       float64 `json:"ipc,omitempty"`
	Cached    bool    `json:"cached,omitempty"`
	Error     string  `json:"error,omitempty"`
	WallMS    float64 `json:"wall_ms,omitempty"`
}

// BatchStatus summarises a batch job's progress; Points carries the
// per-scenario detail on full status reads.
type BatchStatus struct {
	Total     int                `json:"total"`
	Completed int                `json:"completed"`
	Failed    int                `json:"failed"`
	CacheHits int                `json:"cache_hits"`
	Points    []BatchPointStatus `json:"points,omitempty"`
}

// batchProgress is the mutable progress record behind BatchStatus. Scenario
// workers update their own point under the progress lock; status polls
// snapshot concurrently, which is what makes partial batch results visible
// while the job is still running. It also carries the per-scenario wire
// frames as they are produced, which is what the streaming endpoint reads:
// a frame is published exactly once, and every publication closes the
// current notify channel so blocked streamers re-check.
type batchProgress struct {
	mu     sync.Mutex
	reqs   []hetwire.RunRequest
	points []BatchPointStatus
	frames [][]byte
	notify chan struct{}
	done   int
	failed int
	hits   int
}

// newBatchProgress pre-populates one pending point per expanded scenario.
func newBatchProgress(reqs []hetwire.RunRequest) *batchProgress {
	p := &batchProgress{
		reqs:   reqs,
		points: make([]BatchPointStatus, len(reqs)),
		frames: make([][]byte, len(reqs)),
		notify: make(chan struct{}),
	}
	for i := range reqs {
		bench := reqs[i].Benchmark
		if bench == "" && len(reqs[i].Benchmarks) > 0 {
			bench = strings.Join(reqs[i].Benchmarks, "+")
		}
		p.points[i] = BatchPointStatus{
			Index:     i,
			Benchmark: bench,
			Model:     reqs[i].Model,
			Clusters:  reqs[i].Clusters,
			N:         reqs[i].Instructions(),
			State:     "pending",
		}
	}
	return p
}

// finishPoint records one scenario's outcome.
func (p *batchProgress) finishPoint(i int, ipc float64, cached bool, err error, wall time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	pt := &p.points[i]
	pt.WallMS = float64(wall) / float64(time.Millisecond)
	if err != nil {
		pt.State = "failed"
		pt.Error = err.Error()
		p.failed++
		return
	}
	pt.State = "done"
	pt.IPC = ipc
	pt.Cached = cached
	p.done++
	if cached {
		p.hits++
	}
}

// publishFrame records scenario i's wire frame and wakes streamers. Frames
// arrive in completion order; streamers serialise them back into canonical
// index order.
func (p *batchProgress) publishFrame(i int, frame []byte) {
	p.mu.Lock()
	p.frames[i] = frame
	ch := p.notify
	p.notify = make(chan struct{})
	p.mu.Unlock()
	close(ch)
}

// frameAt returns scenario i's published frame, or nil if it has not
// resolved yet.
func (p *batchProgress) frameAt(i int) []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.frames[i]
}

// changed returns a channel closed at the next frame publication. Acquire
// it BEFORE re-checking frameAt: publications between the check and the
// wait then close exactly this channel, so a streamer can never sleep
// through the frame it is waiting for.
func (p *batchProgress) changed() <-chan struct{} {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.notify
}

// request returns scenario i's expanded request (streamers synthesising
// cancelled-scenario frames need the exact request bytes).
func (p *batchProgress) request(i int) hetwire.RunRequest {
	return p.reqs[i] // immutable after construction
}

// total returns the expanded scenario count.
func (p *batchProgress) total() int { return len(p.reqs) }

// snapshot renders the progress; nil receiver (non-batch jobs) yields nil.
func (p *batchProgress) snapshot(withPoints bool) *BatchStatus {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	st := &BatchStatus{
		Total:     len(p.points),
		Completed: p.done,
		Failed:    p.failed,
		CacheHits: p.hits,
	}
	if withPoints {
		st.Points = make([]BatchPointStatus, len(p.points))
		copy(st.Points, p.points)
	}
	return st
}
