package server

import (
	"context"
	"fmt"
	"net/http"

	"hetwire/internal/wire"
)

// handleStreamJob serves GET /v1/jobs/{id}/stream: the batch job's binary
// wire stream, emitted progressively. The batch header goes out immediately,
// each TypeScenario frame is relayed in canonical index order as soon as
// that scenario resolves (frames may complete out of order; the stream
// serialises them), and the trailer follows the last scenario. Frames are
// the exact bytes the job published — cache hits stream the stored result
// frame without any decode or re-simulation. A client disconnect ends only
// the response; the job keeps running on its worker and fills the cache.
func (s *Server) handleStreamJob(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(r.PathValue("id"))
	if job == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	if job.Kind != "batch" || job.progress == nil {
		httpError(w, http.StatusConflict, fmt.Errorf("job %s is a %s job; only batch jobs stream", job.ID, job.Kind))
		return
	}
	p := job.progress
	w.Header().Set("Content-Type", wire.ContentType)
	hdr, err := wire.AppendBatchHeader(nil, p.total())
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	if _, err := w.Write(hdr); err != nil {
		return
	}
	flush(w)
	var completed, failed, hits int
	for i := 0; i < p.total(); i++ {
		fr, ok := awaitFrame(r, job, i)
		if !ok {
			return // client went away mid-stream; the job continues
		}
		if fr == nil {
			// The job reached a terminal state without resolving this
			// scenario (cancelled while still queued, or failed before the
			// batch ran). Synthesize a cancelled-scenario frame so every
			// expansion index still appears exactly once.
			fr, err = scenarioFrame(i, p.request(i), nil, false, context.Canceled)
			if err != nil {
				return
			}
		}
		h, err := wire.PeekHeader(fr)
		if err != nil {
			return
		}
		if h.Flags&wire.FlagError != 0 {
			failed++
		} else {
			completed++
			if h.Flags&wire.FlagCached != 0 {
				hits++
			}
		}
		if _, err := w.Write(fr); err != nil {
			return
		}
		flush(w)
	}
	trailer, err := wire.AppendBatchTrailer(nil, wire.BatchTrailer{
		Total:     p.total(),
		Completed: completed,
		Failed:    failed,
		CacheHits: hits,
	})
	if err != nil {
		return
	}
	w.Write(trailer)
	flush(w)
}

// awaitFrame blocks until scenario i's frame is published, the job turns
// terminal, or the client disconnects. It returns (frame, true) on a
// published frame, (nil, true) when the job terminated without one, and
// (nil, false) on client disconnect.
func awaitFrame(r *http.Request, job *Job, i int) ([]byte, bool) {
	p := job.progress
	for {
		// Acquire the notification channel BEFORE checking the frame: a
		// publish landing between the check and the wait closes exactly this
		// channel, so the streamer can never sleep through the frame it
		// waits for.
		ch := p.changed()
		if fr := p.frameAt(i); fr != nil {
			return fr, true
		}
		if job.State().Terminal() {
			// The final frames publish before the job turns terminal; the
			// frame check above may have raced ahead of the publication, so
			// look once more under the fresh channel.
			if fr := p.frameAt(i); fr != nil {
				return fr, true
			}
			return nil, true
		}
		select {
		case <-ch:
		case <-job.done:
		case <-r.Context().Done():
			return nil, false
		}
	}
}

// flush pushes buffered response bytes to the client, so streamed frames are
// observable before the job completes.
func flush(w http.ResponseWriter) {
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}
