package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"hetwire"
	"hetwire/internal/tenant"
)

// qosTenants is the two-saturating-tenants policy most QoS tests use:
// alpha is promised 3x beta's sim-CPU share.
func qosTenants() *tenant.Config {
	return &tenant.Config{Tenants: []tenant.Spec{
		{Name: "alpha", Key: "key-alpha", Weight: 3},
		{Name: "beta", Key: "key-beta", Weight: 1},
	}}
}

// postAs is postJSON with a tenant key and optional Idempotency-Key.
func postAs(t *testing.T, url, tenantKey, idemKey string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenantKey != "" {
		req.Header.Set(TenantHeader, tenantKey)
	}
	if idemKey != "" {
		req.Header.Set("Idempotency-Key", idemKey)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func mustUnmarshal(t *testing.T, raw []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(raw, v); err != nil {
		t.Fatalf("unmarshal %s: %v", raw, err)
	}
}

// --- scheduler-level fairness: deterministic dispatch and charge shares ---

// TestFairQueueWeightedShares drives the fair queue directly with two
// always-backlogged tenants at weights 3:1 and equal per-job CPU charges.
// Both the dispatch share and the charged sim-CPU share must track the
// weight ratio within the ±10 points the design promises. This is the
// deterministic core of the fairness property: no wall clocks, no workers —
// run-to-completion totals at the HTTP layer cannot distinguish schedules,
// so fairness is asserted where it is decided.
func TestFairQueueWeightedShares(t *testing.T) {
	reg := tenant.NewRegistry(qosTenants())
	alpha, ok := reg.Lookup("key-alpha")
	if !ok {
		t.Fatal("alpha not registered")
	}
	beta, ok := reg.Lookup("key-beta")
	if !ok {
		t.Fatal("beta not registered")
	}

	q := newFairQueue(64, 2, false, nil)
	stub := func(tn *tenant.Tenant) *Job { return &Job{tenant: tn, lane: laneBulk} }
	for _, tn := range []*tenant.Tenant{alpha, beta} {
		if err := q.push(stub(tn)); err != nil {
			t.Fatal(err)
		}
	}

	const rounds = 400
	const perJob = 10 * time.Millisecond
	dispatches := map[string]int{}
	charged := map[string]time.Duration{}
	for i := 0; i < rounds; i++ {
		j, ok := q.pop()
		if !ok {
			t.Fatal("queue closed mid-test")
		}
		dispatches[j.tenant.Name()]++
		charged[j.tenant.Name()] += perJob
		q.charge(j, perJob)
		q.finished(j)
		// Refill so the tenant stays backlogged: fairness is only defined
		// while both tenants are saturating.
		if err := q.push(stub(j.tenant)); err != nil {
			t.Fatal(err)
		}
	}

	dispatchShare := float64(dispatches["alpha"]) / float64(rounds)
	cpuShare := charged["alpha"].Seconds() / (charged["alpha"] + charged["beta"]).Seconds()
	if dispatchShare < 0.65 || dispatchShare > 0.85 {
		t.Errorf("alpha dispatch share = %.3f (alpha=%d beta=%d), want 0.75 +/- 0.10",
			dispatchShare, dispatches["alpha"], dispatches["beta"])
	}
	if cpuShare < 0.65 || cpuShare > 0.85 {
		t.Errorf("alpha sim-CPU share = %.3f, want 0.75 +/- 0.10", cpuShare)
	}
	if dispatches["beta"] == 0 {
		t.Error("beta starved: zero dispatches under weighted-fair scheduling")
	}
	// Drain the two refill jobs so Queued gauges return to zero.
	q.close()
	for {
		j, ok := q.pop()
		if !ok {
			break
		}
		q.finished(j)
	}
}

// TestFairSchedulerEndToEndShares saturates a one-worker daemon from two
// tenants at weights 3:1 and snapshots per-tenant sim-CPU while BOTH are
// still backlogged. Completed totals converge to submitted work no matter
// the schedule, so the share is only meaningful mid-backlog.
func TestFairSchedulerEndToEndShares(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 128, Tenants: qosTenants()})
	const perTenant = 24
	idx := 0
	for i := 0; i < perTenant; i++ {
		for _, key := range []string{"key-alpha", "key-beta"} {
			// Distinct budgets defeat the result cache: a cache hit carries
			// no sim span, is charged no CPU, and would skew the measurement.
			resp, raw := postAs(t, ts.URL+"/v1/jobs", key, "", map[string]any{
				"benchmark": "gzip", "n": 150000 + idx,
			})
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("submit %d as %s = %d: %s", idx, key, resp.StatusCode, raw)
			}
			idx++
		}
	}

	alpha, _ := s.tenants.Lookup("key-alpha")
	beta, _ := s.tenants.Lookup("key-beta")
	deadline := time.Now().Add(30 * time.Second)
	for {
		a, b := alpha.Snapshot(), beta.Snapshot()
		done := a.Done + b.Done
		if done >= 16 && a.Queued > 0 && b.Queued > 0 {
			total := a.SimCPU + b.SimCPU
			if total <= 0 {
				t.Fatalf("no sim-CPU attributed after %d completions", done)
			}
			share := a.SimCPU.Seconds() / total.Seconds()
			if share < 0.60 || share > 0.90 {
				t.Errorf("mid-backlog alpha sim-CPU share = %.3f (alpha=%s beta=%s done=%d), want 0.75 +/- 0.15",
					share, a.SimCPU, b.SimCPU, done)
			}
			break
		}
		if a.Queued == 0 || b.Queued == 0 {
			// The backlog drained before the sampling threshold: the workload
			// was too fast for a mid-flight measurement on this machine. The
			// deterministic share property is covered by
			// TestFairQueueWeightedShares; here just require completion.
			t.Logf("backlog drained early (done=%d); skipping share assertion", done)
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("tenants never reached sampling threshold: alpha=%+v beta=%+v", a, b)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Drain and verify exact per-tenant terminal accounting.
	for _, tn := range []*tenant.Tenant{alpha, beta} {
		waitFor(t, 30*time.Second, func() bool { return tn.Snapshot().Done == perTenant },
			fmt.Sprintf("tenant %s: all %d jobs done", tn.Name(), perTenant))
	}
	text := scrapeMetrics(t, ts.URL)
	if v := metricValue(t, text, `hetwired_tenant_jobs_total{tenant="alpha",state="done"}`); v != perTenant {
		t.Errorf("alpha done counter = %v, want %d", v, perTenant)
	}
	if v := metricValue(t, text, `hetwired_tenant_weight{tenant="alpha"}`); v != 3 {
		t.Errorf("alpha weight gauge = %v, want 3", v)
	}
	if v := metricValue(t, text, `hetwired_tenant_sim_cpu_seconds_total{tenant="beta"}`); v <= 0 {
		t.Errorf("beta sim-CPU counter = %v, want > 0", v)
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// --- priority lanes: a bulk storm must not delay interactive admission ---

// TestInteractiveLaneUnderBulkStorm floods the bulk lane with sweeps, then
// submits one single-scenario run. The reserved interactive worker slot
// must start it promptly — bounded queue wait — even though the bulk
// backlog is deep at submission time.
func TestInteractiveLaneUnderBulkStorm(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2, QueueDepth: 128})
	var sweepID string
	for i := 0; i < 12; i++ {
		resp, raw := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
			"sweep": map[string]any{
				"models":     []string{"I", "VIII"},
				"benchmarks": []string{"gcc"},
				"ns":         []uint64{uint64(120000 + 64*i)},
			},
		})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("sweep %d = %d: %s", i, resp.StatusCode, raw)
		}
		var st JobStatus
		mustUnmarshal(t, raw, &st)
		if st.Lane != "bulk" {
			t.Fatalf("sweep lane = %q, want bulk", st.Lane)
		}
		sweepID = st.ID
	}
	// With workers=2 the bulk cap is 1, so at most one sweep can have been
	// dispatched: the backlog is provably deep when the run arrives.
	if depth := s.queue.depthNow(); depth < 8 {
		t.Fatalf("queue depth = %d at run submission, storm did not build a backlog", depth)
	}

	resp, raw := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"benchmark": "gzip", "n": 20000})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("run = %d: %s", resp.StatusCode, raw)
	}
	var st JobStatus
	mustUnmarshal(t, raw, &st)
	if st.Lane != "interactive" {
		t.Errorf("run lane = %q, want interactive", st.Lane)
	}
	final := waitTerminal(t, ts.URL, st.ID, 30*time.Second)
	if final.State != StateDone {
		t.Fatalf("run state = %s err=%q", final.State, final.Error)
	}
	// The admission-to-start bound: generous for CI noise, but far below
	// the storm's drain time through a single bulk slot.
	if final.QueueMS > 2000 {
		t.Errorf("interactive run waited %.0fms behind a bulk storm, want < 2000ms", final.QueueMS)
	}
	waitTerminal(t, ts.URL, sweepID, 120*time.Second)
}

// --- idempotency is tenant-scoped ---

// TestIdempotencyScopedPerTenant: the same Idempotency-Key from two tenants
// must create two jobs (replay across tenants would leak one tenant's
// results to another); the same key from the same tenant must replay.
func TestIdempotencyScopedPerTenant(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, Tenants: qosTenants()})
	body := map[string]any{"benchmark": "gzip", "n": 34567}

	respA, rawA := postAs(t, ts.URL+"/v1/jobs", "key-alpha", "same-key", body)
	if respA.StatusCode != http.StatusAccepted {
		t.Fatalf("alpha submit = %d: %s", respA.StatusCode, rawA)
	}
	var stA JobStatus
	mustUnmarshal(t, rawA, &stA)
	if stA.Tenant != "alpha" {
		t.Errorf("job tenant = %q, want alpha", stA.Tenant)
	}

	respB, rawB := postAs(t, ts.URL+"/v1/jobs", "key-beta", "same-key", body)
	if respB.StatusCode != http.StatusAccepted {
		t.Fatalf("beta submit with alpha's idempotency key = %d (%s), want 202 (a fresh job)",
			respB.StatusCode, rawB)
	}
	if respB.Header.Get("X-Hetwired-Idempotent") == "replay" {
		t.Fatal("cross-tenant idempotency replay: beta was handed alpha's job")
	}
	var stB JobStatus
	mustUnmarshal(t, rawB, &stB)
	if stB.ID == stA.ID {
		t.Fatalf("cross-tenant submissions shared job ID %s", stA.ID)
	}
	if stB.Tenant != "beta" {
		t.Errorf("beta's job tenant = %q, want beta", stB.Tenant)
	}

	respA2, rawA2 := postAs(t, ts.URL+"/v1/jobs", "key-alpha", "same-key", body)
	if respA2.StatusCode != http.StatusOK || respA2.Header.Get("X-Hetwired-Idempotent") != "replay" {
		t.Fatalf("alpha retry = %d idempotent=%q, want 200 replay",
			respA2.StatusCode, respA2.Header.Get("X-Hetwired-Idempotent"))
	}
	var stA2 JobStatus
	mustUnmarshal(t, rawA2, &stA2)
	if stA2.ID != stA.ID {
		t.Errorf("same-tenant replay returned job %s, want %s", stA2.ID, stA.ID)
	}
}

// --- overload protection: machine-readable rejections + Retry-After ---

func rejectionReason(t *testing.T, raw []byte) string {
	t.Helper()
	var body struct {
		Reason string `json:"reason"`
	}
	mustUnmarshal(t, raw, &body)
	return body.Reason
}

func TestTenantRejections(t *testing.T) {
	cfg := &tenant.Config{Tenants: []tenant.Spec{
		{Name: "ratey", Key: "key-ratey", RatePerSec: 0.25, Burst: 1},
		{Name: "capped", Key: "key-capped", QueueShare: 0.2},
	}}
	// ShedInterval an hour out: the watchdog would otherwise clear the
	// forced load-shed latch (queue empty <= low water) mid-subtest.
	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 10, Tenants: cfg, ShedInterval: time.Hour})

	t.Run("unknown_tenant", func(t *testing.T) {
		resp, raw := postAs(t, ts.URL+"/v1/jobs", "no-such-key", "", map[string]any{"benchmark": "gzip", "n": 1000})
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("status = %d, want 401", resp.StatusCode)
		}
		if got := rejectionReason(t, raw); got != hetwire.ReasonUnknownTenant {
			t.Errorf("reason = %q, want %q", got, hetwire.ReasonUnknownTenant)
		}
	})

	t.Run("tenant_rate_limited", func(t *testing.T) {
		resp1, raw1 := postAs(t, ts.URL+"/v1/jobs", "key-ratey", "", map[string]any{"benchmark": "gzip", "n": 5000})
		if resp1.StatusCode != http.StatusAccepted {
			t.Fatalf("first submit = %d: %s", resp1.StatusCode, raw1)
		}
		resp2, raw2 := postAs(t, ts.URL+"/v1/jobs", "key-ratey", "", map[string]any{"benchmark": "gzip", "n": 6000})
		if resp2.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("second submit = %d (%s), want 429", resp2.StatusCode, raw2)
		}
		if got := rejectionReason(t, raw2); got != hetwire.ReasonTenantRateLimited {
			t.Errorf("reason = %q, want %q", got, hetwire.ReasonTenantRateLimited)
		}
		// The bucket refills at 0.25 tok/s from empty: the tenant's own
		// Retry-After is ~4s, NOT the global queue-drain estimate (~1s on an
		// idle daemon) — the header must come from the tenant's bucket.
		ra, err := strconv.Atoi(resp2.Header.Get("Retry-After"))
		if err != nil || ra < 3 || ra > 4 {
			t.Errorf("Retry-After = %q, want the bucket refill time (3-4s)", resp2.Header.Get("Retry-After"))
		}
	})

	t.Run("tenant_queue_share", func(t *testing.T) {
		// Occupy the single worker so subsequent submissions stay queued.
		resp, raw := postAs(t, ts.URL+"/v1/jobs", "key-capped", "", map[string]any{"benchmark": "swim", "n": 3000000})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("long job = %d: %s", resp.StatusCode, raw)
		}
		var long JobStatus
		mustUnmarshal(t, raw, &long)
		capped, _ := s.tenants.Lookup("key-capped")
		waitFor(t, 10*time.Second, func() bool { return capped.Snapshot().InFlight == 1 },
			"long job dispatched")
		// Share 0.2 of depth 10 = 2 queue slots. Two queued submissions fit;
		// the third bounces with the tenant-scoped reason, not queue_full.
		for i := 0; i < 2; i++ {
			resp, raw := postAs(t, ts.URL+"/v1/jobs", "key-capped", "", map[string]any{"benchmark": "gzip", "n": 40000 + i})
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("filler %d = %d: %s", i, resp.StatusCode, raw)
			}
		}
		resp3, raw3 := postAs(t, ts.URL+"/v1/jobs", "key-capped", "", map[string]any{"benchmark": "gzip", "n": 50000})
		if resp3.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("over-share submit = %d (%s), want 429", resp3.StatusCode, raw3)
		}
		if got := rejectionReason(t, raw3); got != hetwire.ReasonTenantQueueShare {
			t.Errorf("reason = %q, want %q", got, hetwire.ReasonTenantQueueShare)
		}
		if ra, err := strconv.Atoi(resp3.Header.Get("Retry-After")); err != nil || ra < 1 {
			t.Errorf("Retry-After = %q, want a positive integer of seconds", resp3.Header.Get("Retry-After"))
		}
		// The global queue had 7+ free slots: only the share cap rejects.
		if req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+long.ID, nil); req != nil {
			http.DefaultClient.Do(req)
		}
	})

	t.Run("load_shed", func(t *testing.T) {
		s.setShed(true)
		defer s.setShed(false)
		if !s.Shedding() {
			t.Fatal("setShed(true) did not engage shedding")
		}
		resp, raw := postAs(t, ts.URL+"/v1/jobs", "key-ratey", "", map[string]any{
			"sweep": map[string]any{"models": []string{"I"}, "benchmarks": []string{"gzip"}, "ns": []uint64{60000}},
		})
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("bulk under shed = %d (%s), want 429", resp.StatusCode, raw)
		}
		if got := rejectionReason(t, raw); got != hetwire.ReasonLoadShed {
			t.Errorf("reason = %q, want %q", got, hetwire.ReasonLoadShed)
		}
		if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
			t.Errorf("Retry-After = %q, want a positive integer of seconds", resp.Header.Get("Retry-After"))
		}
		// The interactive lane stays open while shedding: that is the point.
		resp2, raw2 := postAs(t, ts.URL+"/v1/jobs", "key-capped", "", map[string]any{"benchmark": "gzip", "n": 70000})
		if resp2.StatusCode != http.StatusAccepted {
			t.Errorf("interactive under shed = %d (%s), want 202", resp2.StatusCode, raw2)
		}
	})

	text := scrapeMetrics(t, ts.URL)
	if v := metricValue(t, text, `hetwired_tenant_rejected_total{tenant="ratey",reason="tenant_rate_limited"}`); v < 1 {
		t.Errorf("ratey rate-limit rejection counter = %v, want >= 1", v)
	}
	if v := metricValue(t, text, `hetwired_tenant_rejected_total{tenant="capped",reason="tenant_queue_share"}`); v < 1 {
		t.Errorf("capped queue-share rejection counter = %v, want >= 1", v)
	}
	if v := metricValue(t, text, "hetwired_load_shed_engaged_total"); v < 1 {
		t.Errorf("load-shed engagement counter = %v, want >= 1", v)
	}
}

// TestRetryAfterForPaths pins the unit behaviour satellite (b) asks for:
// tenant_rate_limited backs off by the tenant's own bucket refill (rounded
// up to whole seconds, minimum 1), every other reason by the global
// queue-drain estimate.
func TestRetryAfterForPaths(t *testing.T) {
	cfg := &tenant.Config{Tenants: []tenant.Spec{
		{Name: "slow", Key: "key-slow", RatePerSec: 0.5, Burst: 1},
	}}
	s, _ := newTestServer(t, Options{Workers: 1, Tenants: cfg, DefaultRetryAfter: time.Second})
	tn, ok := s.tenants.Lookup("key-slow")
	if !ok {
		t.Fatal("tenant not registered")
	}
	if !tn.Allow(time.Now()) {
		t.Fatal("fresh bucket denied its burst token")
	}
	// Empty bucket at 0.5 tok/s: refill takes ~2s; the rounded header value
	// must be 2, not the global 1s default.
	got := s.retryAfterFor(tn, hetwire.ReasonTenantRateLimited)
	if got != 2*time.Second {
		t.Errorf("retryAfterFor(rate_limited) = %s, want 2s (tenant bucket refill)", got)
	}
	// Non-rate reasons use the global estimate: idle daemon, no observed
	// jobs, so the configured default comes back.
	if got := s.retryAfterFor(tn, hetwire.ReasonTenantQueueShare); got != time.Second {
		t.Errorf("retryAfterFor(queue_share) = %s, want the global 1s estimate", got)
	}
	if got := s.retryAfterFor(nil, hetwire.ReasonTenantRateLimited); got != time.Second {
		t.Errorf("retryAfterFor(nil tenant) = %s, want the global fallback", got)
	}
}

// --- metrics cardinality: the tenant label set is bounded ---

// TestTenantMetricsCardinalityFold feeds the renderer more tenants than
// maxTenantLabels and requires the overflow to fold into one aggregated
// "other" series instead of growing the exposition without bound.
func TestTenantMetricsCardinalityFold(t *testing.T) {
	m := NewMetrics(1, time.Now())
	const n = maxTenantLabels + 6
	snaps := make([]tenant.Snapshot, n)
	for i := range snaps {
		snaps[i] = tenant.Snapshot{
			Name:      fmt.Sprintf("t-%03d", i),
			Weight:    1,
			Submitted: 1,
			Done:      1,
			Rejected:  map[string]uint64{"queue_full": 1},
		}
	}
	m.SetTenantStats(func() []tenant.Snapshot { return snaps })
	var buf bytes.Buffer
	m.render(&buf, 0, false, CacheStats{}, time.Now())
	text := buf.String()

	labels := map[string]bool{}
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "hetwired_tenant_jobs_submitted_total{tenant=\"") {
			continue
		}
		rest := strings.TrimPrefix(line, "hetwired_tenant_jobs_submitted_total{tenant=\"")
		labels[rest[:strings.IndexByte(rest, '"')]] = true
	}
	if len(labels) > maxTenantLabels {
		t.Errorf("tenant label cardinality = %d, want <= %d", len(labels), maxTenantLabels)
	}
	if !labels["other"] {
		t.Fatalf("overflow tenants were not folded into \"other\" (got %d labels)", len(labels))
	}
	// The fold preserves totals: n snapshots of 1 submission each must sum
	// to n across the bounded label set.
	var sum float64
	for name := range labels {
		sum += metricValue(t, text, `hetwired_tenant_jobs_submitted_total{tenant="`+name+`"}`)
	}
	if int(sum) != n {
		t.Errorf("submitted sum across folded labels = %v, want %d", sum, n)
	}
	// The aggregate pseudo-tenant must not claim a scheduling weight.
	if strings.Contains(text, `hetwired_tenant_weight{tenant="other"}`) {
		t.Error("\"other\" emitted a weight gauge; it is an aggregate, not a tenant")
	}
	if v := metricValue(t, text, `hetwired_tenant_rejected_total{tenant="other",reason="queue_full"}`); int(v) != n-(maxTenantLabels-1) {
		t.Errorf("other rejected{queue_full} = %v, want %d", v, n-(maxTenantLabels-1))
	}
}
