package server

import (
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"hetwire"
	"hetwire/internal/cluster"
	"hetwire/internal/wire"
)

// ClusterOptions turns the daemon into a cluster coordinator: batch jobs are
// sharded into work leases and executed by registered worker nodes instead
// of the local worker's own CPU, with results flowing through the daemon's
// content-addressed cache (the federated result store).
type ClusterOptions struct {
	// Token is the shared cluster secret; every /v1/cluster request must
	// carry it as "Authorization: Bearer <token>". An empty token disables
	// the endpoints entirely (fail closed) — the daemon refuses to run an
	// open coordinator.
	Token string
	// LeaseSize, LeaseTTL, Heartbeat, and DeadAfter tune the coordinator;
	// zero values take the cluster package defaults.
	LeaseSize int
	LeaseTTL  time.Duration
	Heartbeat time.Duration
	DeadAfter time.Duration
}

// initCluster builds the coordinator, registers the cluster endpoints, and
// wires the coordinator counters into /metrics. Called from New when
// Options.Cluster is set.
func (s *Server) initCluster(co *ClusterOptions) {
	s.coord = cluster.New(cluster.Options{
		LeaseSize: co.LeaseSize,
		LeaseTTL:  co.LeaseTTL,
		Heartbeat: co.Heartbeat,
		DeadAfter: co.DeadAfter,
		Cache:     s.cache,
		Flight:    s.flight,
		Logger:    s.opts.Logger,
	})
	s.clusterToken = co.Token
	s.metrics.SetClusterStats(s.coord.Stats)
	s.route("POST", "/v1/cluster/register", s.clusterAuth(s.handleClusterRegister))
	s.route("POST", "/v1/cluster/heartbeat", s.clusterAuth(s.handleClusterHeartbeat))
	s.route("POST", "/v1/cluster/lease", s.clusterAuth(s.handleClusterLease))
	s.route("POST", "/v1/cluster/cachecheck", s.clusterAuth(s.handleClusterCacheCheck))
	s.route("POST", "/v1/cluster/upload", s.clusterAuth(s.handleClusterUpload))
	s.route("GET", "/v1/cluster/nodes", s.clusterAuth(s.handleClusterNodes))
}

// clusterAuth gates a cluster endpoint behind the shared bearer token.
// Comparison is constant-time; failures answer 401 with the machine-readable
// "unauthorized" reason, never detail about which part was wrong.
func (s *Server) clusterAuth(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		token, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
		if !ok || s.clusterToken == "" ||
			subtle.ConstantTimeCompare([]byte(token), []byte(s.clusterToken)) != 1 {
			httpErrorReason(w, http.StatusUnauthorized, cluster.ReasonUnauthorized,
				errors.New("cluster: missing or invalid bearer token"))
			return
		}
		h(w, r)
	}
}

// Body size bounds for cluster protocol requests: a coordinator must not
// buffer arbitrary bytes from a compromised node. Control messages
// (register, heartbeat, lease, cachecheck) are at most a lease's worth of
// cache keys; uploads carry simulation result bodies — KBs each, a lease's
// worth per request — so they get a larger but still bounded cap.
const (
	clusterControlBodyLimit = 1 << 20
	clusterUploadBodyLimit  = 16 << 20
)

// decodeCluster reads a cluster protocol body within the given size bound.
func decodeCluster(w http.ResponseWriter, r *http.Request, v any, limit int64) bool {
	body, err := io.ReadAll(io.LimitReader(r.Body, limit))
	if err == nil {
		err = json.Unmarshal(body, v)
	}
	if err != nil {
		httpErrorReason(w, http.StatusBadRequest, "bad_json",
			fmt.Errorf("decoding cluster request: %w", err))
		return false
	}
	return true
}

// clusterError maps a coordinator rejection to its HTTP response: unknown
// nodes are 404 (re-register), incompatible nodes 409 (rebuild), everything
// else a plain 400 — always with the machine-readable reason code.
func clusterError(w http.ResponseWriter, err error) {
	reason := hetwire.ReasonCode(err)
	status := http.StatusBadRequest
	switch reason {
	case cluster.ReasonUnknownNode:
		status = http.StatusNotFound
	case cluster.ReasonIncompatibleNode:
		status = http.StatusConflict
	}
	httpErrorReason(w, status, reason, err)
}

func (s *Server) handleClusterRegister(w http.ResponseWriter, r *http.Request) {
	var req cluster.RegisterRequest
	if !decodeCluster(w, r, &req, clusterControlBodyLimit) {
		return
	}
	resp, err := s.coord.Register(&req)
	if err != nil {
		clusterError(w, err)
		return
	}
	writeJSON(w, resp)
}

func (s *Server) handleClusterHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req cluster.HeartbeatRequest
	if !decodeCluster(w, r, &req, clusterControlBodyLimit) {
		return
	}
	writeJSON(w, s.coord.Heartbeat(&req))
}

func (s *Server) handleClusterLease(w http.ResponseWriter, r *http.Request) {
	var req cluster.LeaseRequest
	if !decodeCluster(w, r, &req, clusterControlBodyLimit) {
		return
	}
	resp, err := s.coord.Lease(&req)
	if err != nil {
		clusterError(w, err)
		return
	}
	writeJSON(w, resp)
}

func (s *Server) handleClusterCacheCheck(w http.ResponseWriter, r *http.Request) {
	var req cluster.CacheCheckRequest
	if !decodeCluster(w, r, &req, clusterControlBodyLimit) {
		return
	}
	resp, err := s.coord.CacheCheck(&req)
	if err != nil {
		clusterError(w, err)
		return
	}
	writeJSON(w, resp)
}

func (s *Server) handleClusterUpload(w http.ResponseWriter, r *http.Request) {
	var req cluster.UploadRequest
	if strings.HasPrefix(r.Header.Get("Content-Type"), wire.ContentType) {
		if !decodeWireUpload(w, r, &req) {
			return
		}
	} else if !decodeCluster(w, r, &req, clusterUploadBodyLimit) {
		return
	}
	resp, err := s.coord.Upload(&req)
	if err != nil {
		clusterError(w, err)
		return
	}
	writeJSON(w, resp)
}

// decodeWireUpload reads a binary upload body: one TypeUploadHeader frame
// carrying the lease identity and spans, followed by one TypeUploadResult
// frame per scenario. Result frames embedded in the upload are passed to the
// coordinator verbatim (ScenarioResult.Frame), so an accepted result's bytes
// are exactly what the node's simulation produced.
func decodeWireUpload(w http.ResponseWriter, r *http.Request, req *cluster.UploadRequest) bool {
	fail := func(err error) bool {
		httpErrorReason(w, http.StatusBadRequest, "bad_wire",
			fmt.Errorf("decoding cluster upload: %w", err))
		return false
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, clusterUploadBodyLimit))
	if err != nil {
		return fail(err)
	}
	frames, err := wire.Split(body)
	if err != nil {
		return fail(err)
	}
	if len(frames) == 0 {
		return fail(errors.New("empty upload stream"))
	}
	hdr, err := wire.DecodeUploadHeader(frames[0])
	if err != nil {
		return fail(err)
	}
	req.NodeID = hdr.NodeID
	req.LeaseID = hdr.LeaseID
	req.JobID = hdr.JobID
	for _, sp := range hdr.Spans {
		req.Spans = append(req.Spans, cluster.Span{Name: sp.Name, DurMS: sp.DurMS})
	}
	req.Results = make([]cluster.ScenarioResult, 0, len(frames)-1)
	for _, fr := range frames[1:] {
		ur, err := wire.DecodeUploadResult(fr)
		if err != nil {
			return fail(err)
		}
		req.Results = append(req.Results, cluster.ScenarioResult{
			Index:    ur.Index,
			CacheKey: ur.CacheKey,
			Frame:    ur.Frame,
			Skipped:  ur.Skipped,
			Error:    ur.Error,
			Reason:   ur.Reason,
		})
	}
	return true
}

func (s *Server) handleClusterNodes(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{
		"nodes": s.coord.Nodes(),
		"stats": s.coord.Stats(),
	})
}

// runClusterBatch executes a batch job through the cluster fabric instead of
// the local CPU pool: submit to the coordinator, wait for nodes to lease and
// upload every scenario, then collect the per-scenario wire frames and
// assemble the batch stream by pure byte copy. The stream is bit-identical
// to local batch execution — scenarios land at their expansion index, carry
// no node identity, and embed the uploaded result frames verbatim — so the
// golden corpus reproduces exactly through either path.
func (s *Server) runClusterBatch(job *Job) ([]byte, bool, error) {
	jobID, done, err := s.coord.Submit(job.Batch, job.TraceID, job.tenant.Name())
	if err != nil {
		return nil, false, err
	}
	if err := s.coord.AwaitJob(job.ctx, jobID, done); err != nil {
		s.coord.Take(jobID) // drop the cancelled job's record
		return nil, false, err
	}
	frames, outcomes, spanDur, err := s.coord.TakeFrames(jobID)
	if err != nil {
		return nil, false, err
	}
	// Merge node-reported lease phases into the job's span breakdown. Only
	// the fixed protocol span names are admitted so a misbehaving node cannot
	// grow the span list (or the phase-metric label set) without bound.
	for _, name := range []string{cluster.SpanCacheCheck, cluster.SpanSim, cluster.SpanUpload} {
		if ms, ok := spanDur[name]; ok {
			job.spans.observe(name, time.Now(), time.Duration(ms*float64(time.Millisecond)))
		}
	}
	for i, out := range outcomes {
		var ptErr error
		if out.Error != "" {
			ptErr = errors.New(out.Error)
		}
		// Freshly simulated scenarios entered the federated cache via node
		// upload rather than the local fill path, so insert attribution
		// happens here: cached outcomes were already resident (someone else
		// paid for them).
		if ptErr == nil && !out.Cached {
			job.tenant.AddCacheBytes(int64(len(frames[i])))
		}
		job.progress.finishPoint(i, out.IPC, out.Cached, ptErr, 0)
		job.progress.publishFrame(i, frames[i])
	}
	return assembleBatch(frames)
}

// renderCluster emits the coordinator metrics; a nil hook (non-coordinator
// daemons, direct registry construction in tests) renders nothing.
func (m *Metrics) renderCluster(w io.Writer) {
	if m.clusterStats == nil {
		return
	}
	cs := m.clusterStats()
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	gauge("hetwired_cluster_nodes", "Worker nodes currently registered and alive.", float64(cs.NodesAlive))
	counter("hetwired_cluster_nodes_registered_total", "Lifetime node registrations.", cs.NodesRegistered)
	counter("hetwired_cluster_nodes_dead_total", "Nodes declared dead on missed heartbeats.", cs.NodesDead)
	gauge("hetwired_cluster_leases_outstanding", "Work leases currently held by nodes.", float64(cs.LeasesOutstanding))
	counter("hetwired_cluster_leases_issued_total", "Work leases handed to nodes.", cs.LeasesIssued)
	counter("hetwired_cluster_leases_expired_total", "Leases whose deadline passed before upload.", cs.LeasesExpired)
	counter("hetwired_cluster_scenarios_redispatched_total", "Scenario indices re-leased after an expiry.", cs.ScenariosRedispatched)
	fmt.Fprintf(w, "# HELP hetwired_cluster_uploads_total Node uploads by outcome.\n# TYPE hetwired_cluster_uploads_total counter\n")
	fmt.Fprintf(w, "hetwired_cluster_uploads_total{result=\"accepted\"} %d\n", cs.UploadsAccepted)
	fmt.Fprintf(w, "hetwired_cluster_uploads_total{result=\"duplicate\"} %d\n", cs.UploadsDuplicate)
	fmt.Fprintf(w, "hetwired_cluster_uploads_total{result=\"stale\"} %d\n", cs.UploadsStale)
	fmt.Fprintf(w, "hetwired_cluster_uploads_total{result=\"conflict\"} %d\n", cs.UploadConflicts)
	counter("hetwired_cluster_federated_cache_hits_total", "Scenarios answered by the federated result cache instead of a node simulation.", cs.FederatedHits)
	fmt.Fprintf(w, "# HELP hetwired_cluster_jobs_total Cluster jobs by lifecycle event.\n# TYPE hetwired_cluster_jobs_total counter\n")
	fmt.Fprintf(w, "hetwired_cluster_jobs_total{event=\"submitted\"} %d\n", cs.JobsSubmitted)
	fmt.Fprintf(w, "hetwired_cluster_jobs_total{event=\"completed\"} %d\n", cs.JobsCompleted)
	fmt.Fprintf(w, "hetwired_cluster_jobs_total{event=\"cancelled\"} %d\n", cs.JobsCancelled)
}
