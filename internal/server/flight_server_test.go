// Ops-plane tests: the flight-recorder debug endpoint and its determinism
// contract, auto-dump on worker panic, the scheduler expvar/gauge surface,
// and the per-tenant SLO metrics and usage report.
package server

import (
	"bytes"
	"encoding/json"
	"expvar"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hetwire/internal/obs/flight"
	"hetwire/internal/tenant"
	"hetwire/internal/wire"
)

// fetchFlight GETs /v1/debug/flight with the given Accept header and query.
func fetchFlight(t *testing.T, base, accept, query string) (string, []byte) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, base+"/v1/debug/flight"+query, nil)
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/debug/flight%s: %d", query, resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.Header.Get("Content-Type"), raw
}

// TestFlightDebugEndpoint drives one traced job and checks the dump carries
// the decision chain (admit -> dispatch -> cache miss) under the client's
// trace ID, that canonical dumps are byte-stable across fetches, and that the
// binary container unwraps to the identical JSONL bytes.
func TestFlightDebugEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})

	body, _ := json.Marshal(map[string]any{"benchmark": "gzip", "n": 8000})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(string(body)))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TraceHeader, "flight-e2e-0001")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitTerminal(t, ts.URL, st.ID, 30*time.Second)

	ct, raw := fetchFlight(t, ts.URL, "", "")
	if ct != "application/x-ndjson" {
		t.Errorf("JSON dump Content-Type = %q", ct)
	}
	hdr, events, err := flight.ReadDump(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Schema != flight.Schema || hdr.Source != "hetwired" {
		t.Errorf("dump header = %+v", hdr)
	}
	kinds := map[string]bool{}
	for _, ev := range events {
		if ev.Trace == "flight-e2e-0001" {
			kinds[ev.Kind] = true
		}
	}
	for _, want := range []string{flight.KindAdmit, flight.KindDispatch, flight.KindCacheMiss} {
		if !kinds[want] {
			t.Errorf("dump is missing a %q event for the traced job (got %v)", want, kinds)
		}
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("dump out of seq order at %d", i)
		}
	}

	// Canonical dumps of unchanged state are byte-identical — the property
	// the CI cmp check enforces.
	_, canon1 := fetchFlight(t, ts.URL, "", "?canon=1")
	_, canon2 := fetchFlight(t, ts.URL, "", "?canon=1")
	if !bytes.Equal(canon1, canon2) {
		t.Error("two canonical dumps of the same ring differ")
	}

	// The binary container negotiated via Accept unwraps to the same bytes.
	wct, framed := fetchFlight(t, ts.URL, wire.ContentType, "?canon=1")
	if wct != wire.ContentType {
		t.Errorf("binary dump Content-Type = %q, want %q", wct, wire.ContentType)
	}
	if !wire.IsWire(framed) {
		t.Fatal("binary dump does not start with the wire magic")
	}
	var unwrapped bytes.Buffer
	if _, err := unwrapped.ReadFrom(wire.NewFlightReader(bytes.NewReader(framed))); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(unwrapped.Bytes(), canon1) {
		t.Error("binary container does not unwrap to the JSONL canonical dump")
	}
}

func TestFlightDisabledReturns404(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, FlightEvents: -1})
	resp, err := http.Get(ts.URL + "/v1/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled recorder: status %d, want 404", resp.StatusCode)
	}
}

// TestFlightAutoDumpOnPanic checks the incident path: a worker panic leaves
// a flight dump on disk whose tail records the panic against the victim job.
func TestFlightAutoDumpOnPanic(t *testing.T) {
	dir := t.TempDir()
	in := mustInjector(t, "seed=5,panic=1,panic.max=1")
	_, ts := newTestServer(t, Options{Workers: 1, Faults: in, FlightDir: dir})

	_, raw := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"benchmark": "gcc", "n": 8000})
	var victim JobStatus
	mustDecode(t, raw, &victim)
	if st := waitTerminal(t, ts.URL, victim.ID, 30*time.Second); st.State != StateFailed {
		t.Fatalf("panicked job state = %s", st.State)
	}

	var dump string
	deadline := time.Now().Add(10 * time.Second)
	for dump == "" && time.Now().Before(deadline) {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), "flight-panic-") {
				dump = filepath.Join(dir, e.Name())
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if dump == "" {
		t.Fatal("no flight-panic-* dump appeared")
	}
	f, err := os.Open(dump)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	_, events, err := flight.ReadDump(f)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range events {
		if ev.Kind == flight.KindPanic && ev.Job == victim.ID {
			found = true
		}
	}
	if !found {
		t.Errorf("auto-dump has no panic event for %s", victim.ID)
	}
}

// TestSchedExpvarAndLaneGauges checks satellite (a): the fair queue's
// internals are visible through the hetwired_sched expvar and the lane-depth
// gauges on /metrics.
func TestSchedExpvarAndLaneGauges(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})

	_, raw := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"benchmark": "gzip", "n": 8000})
	var st JobStatus
	mustDecode(t, raw, &st)
	waitTerminal(t, ts.URL, st.ID, 30*time.Second)

	v := expvar.Get("hetwired_sched")
	if v == nil {
		t.Fatal("hetwired_sched expvar not published")
	}
	var snap SchedSnapshot
	if err := json.Unmarshal([]byte(v.String()), &snap); err != nil {
		t.Fatalf("hetwired_sched is not a SchedSnapshot: %v\n%s", err, v.String())
	}
	if _, ok := snap.LaneDepth[laneInteractive.String()]; !ok {
		t.Errorf("expvar lane_depth missing interactive lane: %+v", snap)
	}
	if _, ok := snap.LaneDepth[laneBulk.String()]; !ok {
		t.Errorf("expvar lane_depth missing bulk lane: %+v", snap)
	}
	if snap.Seq == 0 {
		t.Error("expvar snapshot saw no dispatches after a completed job")
	}

	text := scrapeMetrics(t, ts.URL)
	for _, want := range []string{
		`hetwired_sched_lane_depth{lane="bulk"}`,
		`hetwired_sched_lane_depth{lane="interactive"}`,
		"hetwired_sched_bulk_running",
		"hetwired_sched_bulk_cap",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestSLOMetricsAndTenantUsage checks the per-tenant SLO layer end to end: a
// tenant with a latency objective runs a job, and the verdict counters, burn
// rates, latency histograms, and the /v1/tenants/usage report all surface it.
func TestSLOMetricsAndTenantUsage(t *testing.T) {
	cfg := &tenant.Config{Tenants: []tenant.Spec{
		{Name: "gold", Key: "key-gold", Weight: 2, SLOMS: 60_000, SLOTargetPct: 99},
		{Name: "free", Key: "key-free", Weight: 1}, // no SLO: must not emit slo series
	}}
	_, ts := newTestServer(t, Options{Workers: 1, Tenants: cfg})

	_, raw := postAs(t, ts.URL+"/v1/jobs", "key-gold", "", map[string]any{"benchmark": "gzip", "n": 8000})
	var st JobStatus
	mustDecode(t, raw, &st)
	if final := waitTerminal(t, ts.URL, st.ID, 30*time.Second); final.State != StateDone {
		t.Fatalf("job ended %s", final.State)
	}

	text := scrapeMetrics(t, ts.URL)
	for _, want := range []string{
		`hetwired_slo_target_pct{tenant="gold"} 99`,
		`hetwired_slo_requests_total{tenant="gold",verdict="good"} 1`,
		`hetwired_slo_requests_total{tenant="gold",verdict="bad"} 0`,
		`hetwired_slo_burn_rate{tenant="gold",window="5m"} 0`,
		`hetwired_slo_burn_rate{tenant="gold",window="1h"} 0`,
		`hetwired_tenant_e2e_latency_seconds_count{tenant="gold"} 1`,
		`hetwired_tenant_queue_wait_seconds_count{tenant="gold"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if strings.Contains(text, `hetwired_slo_target_pct{tenant="free"}`) {
		t.Error("tenant without an SLO emitted slo series")
	}

	var usage struct {
		Tenants []tenant.Snapshot `json:"tenants"`
	}
	getJSON(t, ts.URL+"/v1/tenants/usage", &usage)
	var gold *tenant.Snapshot
	for i := range usage.Tenants {
		if usage.Tenants[i].Name == "gold" {
			gold = &usage.Tenants[i]
		}
	}
	if gold == nil {
		t.Fatalf("usage report missing tenant gold: %+v", usage.Tenants)
	}
	if gold.Submitted != 1 || gold.Done != 1 {
		t.Errorf("gold ledger = submitted %d done %d, want 1/1", gold.Submitted, gold.Done)
	}
	if gold.SLOMS != 60_000 || gold.SLOTarget != 99 {
		t.Errorf("gold SLO in usage = %v/%v", gold.SLOMS, gold.SLOTarget)
	}
}

// TestSLOBurnRateWindows exercises the minute-bucket ring directly: bad
// verdicts inside the 5m window burn hot, and aging past it cools the short
// window while the 1h window still sees them.
func TestSLOBurnRateWindows(t *testing.T) {
	m := NewMetrics(1, time.Unix(0, 0))
	t0 := time.Date(2026, 3, 1, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 9; i++ {
		m.ObserveSLO("t", 99, true, 10*time.Millisecond, time.Millisecond, t0)
	}
	m.ObserveSLO("t", 99, false, 5*time.Second, time.Millisecond, t0)

	burn := func(now time.Time, window string) float64 {
		var buf strings.Builder
		m.renderSLO(&buf, now)
		return metricValue(t, buf.String(), `hetwired_slo_burn_rate{tenant="t",window="`+window+`"}`)
	}
	near := func(got, want float64) bool { return math.Abs(got-want) < 1e-9*math.Max(1, want) }
	// 1 bad in 10 over a 1% budget: burn = 0.1/0.01 = 10, both windows.
	if got := burn(t0, "5m"); !near(got, 10) {
		t.Errorf("5m burn at t0 = %g, want 10", got)
	}
	if got := burn(t0, "1h"); !near(got, 10) {
		t.Errorf("1h burn at t0 = %g, want 10", got)
	}
	// 10 minutes later the samples left the 5m window but not the 1h one.
	if got := burn(t0.Add(10*time.Minute), "5m"); got != 0 {
		t.Errorf("5m burn after aging = %g, want 0", got)
	}
	if got := burn(t0.Add(10*time.Minute), "1h"); !near(got, 10) {
		t.Errorf("1h burn after aging = %g, want 10", got)
	}
}
