package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"hetwire/internal/faultinject"
)

func mustDecode(t *testing.T, raw []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(raw, v); err != nil {
		t.Fatalf("decode: %v (%s)", err, raw)
	}
}

func decodeBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func mustInjector(t *testing.T, spec string) *faultinject.Injector {
	t.Helper()
	in, err := faultinject.Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	return in
}

// TestWorkerPanicContainment: a panic escaping a job must not kill the
// daemon — the job finishes failed with the stack trace in failure_log, a
// replacement worker spawns, and the next job is served normally.
func TestWorkerPanicContainment(t *testing.T) {
	in := mustInjector(t, "seed=5,panic=1,panic.max=1")
	s, ts := newTestServer(t, Options{Workers: 1, Faults: in})

	_, raw := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"benchmark": "gcc", "n": 8000})
	var victim JobStatus
	mustDecode(t, raw, &victim)
	st := waitTerminal(t, ts.URL, victim.ID, 30*time.Second)
	if st.State != StateFailed {
		t.Fatalf("panicked job state = %s, want failed (%s)", st.State, st.Error)
	}
	if !strings.Contains(st.Error, "worker panic") {
		t.Errorf("error = %q, want a worker-panic message", st.Error)
	}
	if !strings.Contains(st.FailureLog, "goroutine") {
		t.Errorf("failure_log does not look like a stack trace:\n%s", st.FailureLog)
	}

	// The pool must have respawned: the single worker serves the next job.
	_, raw = postJSON(t, ts.URL+"/v1/jobs", map[string]any{"benchmark": "gzip", "n": 8000})
	var next JobStatus
	mustDecode(t, raw, &next)
	if st := waitTerminal(t, ts.URL, next.ID, 30*time.Second); st.State != StateDone {
		t.Errorf("post-panic job state = %s: %s", st.State, st.Error)
	}
	if got := s.Metrics().JobsPanicked(); got != 1 {
		t.Errorf("JobsPanicked = %d, want 1", got)
	}
	if got := s.Metrics().WorkersRespawned(); got != 1 {
		t.Errorf("WorkersRespawned = %d, want 1", got)
	}
	text := scrapeMetrics(t, ts.URL)
	if got := metricValue(t, text, "hetwired_jobs_panicked_total"); got != 1 {
		t.Errorf("jobs_panicked_total = %v, want 1", got)
	}
	if got := metricValue(t, text, "hetwired_workers_respawned_total"); got != 1 {
		t.Errorf("workers_respawned_total = %v, want 1", got)
	}
	if got := metricValue(t, text, "hetwired_workers"); got != 1 {
		t.Errorf("workers gauge = %v after respawn, want 1", got)
	}
}

// TestJobDeadlineExpires: a per-request deadline_ms bounds the job's wall
// clock; an expired job fails with an explicit deadline message, not a bare
// context error, and reports its budget.
func TestJobDeadlineExpires(t *testing.T) {
	in := mustInjector(t, "seed=2,slow=1,slowms=300")
	_, ts := newTestServer(t, Options{Workers: 1, Faults: in})
	_, raw := postJSON(t, ts.URL+"/v1/jobs",
		map[string]any{"benchmark": "gcc", "n": 8000, "deadline_ms": 100})
	var st JobStatus
	mustDecode(t, raw, &st)
	if st.DeadlineMS != 100 {
		t.Errorf("deadline_ms echoed as %v, want 100", st.DeadlineMS)
	}
	final := waitTerminal(t, ts.URL, st.ID, 30*time.Second)
	if final.State != StateFailed {
		t.Fatalf("state = %s, want failed (%s)", final.State, final.Error)
	}
	if !strings.Contains(final.Error, "deadline exceeded") || !strings.Contains(final.Error, "100ms") {
		t.Errorf("error = %q, want a deadline message naming the 100ms budget", final.Error)
	}
}

// TestDeadlineOverrideCapped: a request asking for more than MaxDeadline is
// clamped, not honored.
func TestDeadlineOverrideCapped(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, MaxDeadline: 2 * time.Second})
	_, raw := postJSON(t, ts.URL+"/v1/jobs",
		map[string]any{"benchmark": "gzip", "n": 4000, "deadline_ms": 3_600_000})
	var st JobStatus
	mustDecode(t, raw, &st)
	if st.DeadlineMS != 2000 {
		t.Errorf("deadline_ms = %v, want clamped to 2000", st.DeadlineMS)
	}
}

// TestCancelRunningJobFreesWorker: cancelling a job mid-simulation must stop
// the simulator within one ctx-check interval and return the worker to the
// pool promptly — proven by a follow-up job completing on the same single
// worker. This is the test CI runs under -race.
func TestCancelRunningJobFreesWorker(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	_, raw := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"benchmark": "gcc", "n": 20_000_000})
	var big JobStatus
	mustDecode(t, raw, &big)

	deadline := time.Now().Add(10 * time.Second)
	for {
		var cur JobStatus
		getJSON(t, ts.URL+"/v1/jobs/"+big.ID, &cur)
		if cur.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("big job never started: %s", cur.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+big.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	cancelled := time.Now()
	st := waitTerminal(t, ts.URL, big.ID, 10*time.Second)
	if st.State != StateCancelled {
		t.Fatalf("big job state = %s, want cancelled", st.State)
	}
	if took := time.Since(cancelled); took > 5*time.Second {
		t.Errorf("cancellation took %s to land; simulator is not honoring ctx", took)
	}

	_, raw = postJSON(t, ts.URL+"/v1/jobs", map[string]any{"benchmark": "gzip", "n": 5000})
	var small JobStatus
	mustDecode(t, raw, &small)
	if st := waitTerminal(t, ts.URL, small.ID, 10*time.Second); st.State != StateDone {
		t.Errorf("follow-up job state = %s: %s (worker not freed?)", st.State, st.Error)
	}
}

// TestCacheCorruptionSelfHeals: a corrupted cache entry is detected by its
// checksum on the next hit, dropped, recomputed, and counted — the caller
// still gets a correct body.
func TestCacheCorruptionSelfHeals(t *testing.T) {
	in := mustInjector(t, "seed=4,corrupt=1")
	s, ts := newTestServer(t, Options{Workers: 1, Faults: in})
	req := map[string]any{"benchmark": "gzip", "n": 9000}
	resp1, body1 := postJSON(t, ts.URL+"/v1/run", req)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first run: %d %s", resp1.StatusCode, body1)
	}
	resp2, body2 := postJSON(t, ts.URL+"/v1/run", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second run: %d %s", resp2.StatusCode, body2)
	}
	// The poisoned entry must not be served: the hit fails verification and
	// the request recomputes (reported as a miss), bit-identical to the first.
	if got := resp2.Header.Get("X-Hetwired-Cache"); got != "miss" {
		t.Errorf("second run cache header = %q, want miss (corrupt entry dropped)", got)
	}
	if string(body1) != string(body2) {
		t.Error("recomputed body differs from the original")
	}
	if cs := s.Cache().Stats(); cs.Corrupt < 1 {
		t.Errorf("corruption drops = %d, want >= 1", cs.Corrupt)
	}
	text := scrapeMetrics(t, ts.URL)
	if got := metricValue(t, text, "hetwired_cache_corrupt_dropped_total"); got < 1 {
		t.Errorf("corrupt_dropped_total = %v, want >= 1", got)
	}
}

// TestIdempotentSubmitReplay: resubmitting under the same Idempotency-Key
// returns the job the first attempt created instead of enqueueing a
// duplicate.
func TestIdempotentSubmitReplay(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	post := func(key string) (*http.Response, JobStatus) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs",
			strings.NewReader(`{"benchmark":"mcf","n":7000}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Idempotency-Key", key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st JobStatus
		decodeBody(t, resp, &st)
		return resp, st
	}
	resp1, st1 := post("k1")
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp1.StatusCode)
	}
	resp2, st2 := post("k1")
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("replay status = %d, want 200", resp2.StatusCode)
	}
	if resp2.Header.Get("X-Hetwired-Idempotent") != "replay" {
		t.Error("replay not flagged via X-Hetwired-Idempotent")
	}
	if st2.ID != st1.ID {
		t.Errorf("replay created a new job: %s vs %s", st2.ID, st1.ID)
	}
	resp3, st3 := post("k2")
	if resp3.StatusCode != http.StatusAccepted || st3.ID == st1.ID {
		t.Errorf("distinct key reused job %s (status %d)", st3.ID, resp3.StatusCode)
	}
	text := scrapeMetrics(t, ts.URL)
	if got := metricValue(t, text, "hetwired_jobs_submitted_total"); got != 2 {
		t.Errorf("submitted_total = %v, want 2 (replay must not enqueue)", got)
	}
	waitTerminal(t, ts.URL, st1.ID, 30*time.Second)
	waitTerminal(t, ts.URL, st3.ID, 30*time.Second)
}

// TestZeroFaultInjectorDeterminism: a configured injector whose rates are
// all zero must be exactly inert — a daemon wired with it serves bodies
// byte-identical to a daemon with no injector at all. This is the guard
// that lets the fault harness stay in the production code path.
func TestZeroFaultInjectorDeterminism(t *testing.T) {
	zero := mustInjector(t, "seed=1,panic=0,slow=0,cancel=0,corrupt=0")
	_, tsPlain := newTestServer(t, Options{Workers: 1})
	_, tsZero := newTestServer(t, Options{Workers: 1, Faults: zero})
	for _, req := range []map[string]any{
		{"benchmark": "gzip", "model": "I", "n": 16000},
		{"benchmark": "mcf", "model": "V", "n": 16000},
		{"benchmarks": []string{"gcc", "swim"}, "clusters": 16, "n": 8000},
	} {
		respA, bodyA := postJSON(t, tsPlain.URL+"/v1/run", req)
		respB, bodyB := postJSON(t, tsZero.URL+"/v1/run", req)
		if respA.StatusCode != http.StatusOK || respB.StatusCode != http.StatusOK {
			t.Fatalf("statuses %d/%d for %v", respA.StatusCode, respB.StatusCode, req)
		}
		if string(bodyA) != string(bodyB) {
			t.Errorf("zero-fault injector perturbed the result for %v", req)
		}
	}
	for _, p := range faultinject.Points() {
		if zero.Fired(p) != 0 {
			t.Errorf("zero-rate injector fired %q", p)
		}
	}
}

// TestSweepPointLimit: a sweep expanding past MaxSweepPoints is rejected at
// submission with a clear error, never enqueued.
func TestSweepPointLimit(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, MaxSweepPoints: 4})
	resp, body := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"sweep": map[string]any{
			"models":     []string{"I", "II", "III"},
			"benchmarks": []string{"gzip", "gcc"},
			"ns":         []uint64{1000},
		},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized sweep = %d %s, want 400", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "limit") {
		t.Errorf("error does not name the limit: %s", body)
	}
}
