package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// --- cache unit tests ---

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(30) // room for three 10-byte bodies
	body := func(i int) []byte { return []byte(fmt.Sprintf("body-%05d", i)) }
	put := func(key string, i int) {
		t.Helper()
		if _, hit, err := c.Do(context.Background(), key, func() ([]byte, error) { return body(i), nil }); hit || err != nil {
			t.Fatalf("Do(%s) hit=%t err=%v", key, hit, err)
		}
	}
	put("a", 1)
	put("b", 2)
	put("c", 3)
	if _, ok := c.Get("a"); !ok { // touch a -> b becomes LRU
		t.Fatal("a missing before eviction")
	}
	put("d", 4) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s evicted unexpectedly", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 3 || st.Bytes != 30 {
		t.Errorf("stats = %+v", st)
	}

	// Oversized bodies bypass storage instead of flushing the cache.
	if _, _, err := c.Do(context.Background(), "huge", func() ([]byte, error) { return make([]byte, 100), nil }); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("huge"); ok {
		t.Error("oversized body was stored")
	}
	if st := c.Stats(); st.Entries != 3 {
		t.Errorf("oversized insert disturbed the cache: %+v", st)
	}
}

func TestCacheCoalescesConcurrentComputes(t *testing.T) {
	c := NewCache(1 << 20)
	var computes int32
	gate := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	hits := 0
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, hit, err := c.Do(context.Background(), "k", func() ([]byte, error) {
				mu.Lock()
				computes++
				mu.Unlock()
				<-gate
				return []byte("result"), nil
			})
			if err != nil || string(body) != "result" {
				t.Errorf("Do = %q, %v", body, err)
			}
			if hit {
				mu.Lock()
				hits++
				mu.Unlock()
			}
		}()
	}
	time.Sleep(20 * time.Millisecond) // let the goroutines pile onto the flight
	close(gate)
	wg.Wait()
	if computes != 1 {
		t.Errorf("compute ran %d times, want 1", computes)
	}
	if hits != 7 {
		t.Errorf("%d callers coalesced, want 7", hits)
	}
	if st := c.Stats(); st.Misses != 1 || st.Coalesced != 7 {
		t.Errorf("stats = %+v", st)
	}
}

// --- HTTP helpers ---

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func waitTerminal(t *testing.T, base, id string, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var st JobStatus
		getJSON(t, base+"/v1/jobs/"+id, &st)
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// metricValue extracts one sample (with optional label selector) from a
// Prometheus text exposition.
func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` ([0-9.eE+-]+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("metric %s not found", name)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %s: %v", name, err)
	}
	return v
}

func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// --- the acceptance concurrency test: 32 jobs, 4 workers ---

func TestConcurrentJobsDedupAndMetrics(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 4, QueueDepth: 64})
	benches := []string{
		"gzip", "gcc", "mcf", "mesa", "twolf", "swim", "art", "vpr",
		"parser", "bzip2", "crafty", "eon", "gap", "vortex", "applu", "lucas",
	}
	// 16 distinct requests submitted twice each = 32 jobs; every duplicate
	// must be deduplicated (coalesced onto an in-flight run or served from
	// the cache) rather than re-simulated.
	ids := make([]string, 0, 32)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for round := 0; round < 2; round++ {
		for _, b := range benches {
			wg.Add(1)
			go func(b string) {
				defer wg.Done()
				resp, body := postJSON(t, ts.URL+"/v1/jobs",
					map[string]any{"benchmark": b, "n": 20000})
				if resp.StatusCode != http.StatusAccepted {
					t.Errorf("submit %s: %d %s", b, resp.StatusCode, body)
					return
				}
				var st JobStatus
				if err := json.Unmarshal(body, &st); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				ids = append(ids, st.ID)
				mu.Unlock()
			}(b)
		}
	}
	wg.Wait()
	if len(ids) != 32 {
		t.Fatalf("submitted %d jobs, want 32", len(ids))
	}
	for _, id := range ids {
		st := waitTerminal(t, ts.URL, id, 60*time.Second)
		if st.State != StateDone {
			t.Errorf("job %s finished %s: %s", id, st.State, st.Error)
		}
		if st.IPC <= 0 {
			t.Errorf("job %s reported IPC %v", id, st.IPC)
		}
	}

	cs := s.Cache().Stats()
	if cs.Hits+cs.Coalesced == 0 {
		t.Error("no cache hits across 16 duplicated requests")
	}
	if cs.Misses != 16 {
		t.Errorf("simulated %d distinct requests, want 16 (dedup failed)", cs.Misses)
	}

	text := scrapeMetrics(t, ts.URL)
	if got := metricValue(t, text, `hetwired_jobs_total{state="done"}`); got != 32 {
		t.Errorf("done jobs metric = %v, want 32", got)
	}
	if got := metricValue(t, text, `hetwired_jobs{state="queued"}`); got != 0 {
		t.Errorf("queued gauge = %v after completion", got)
	}
	if got := metricValue(t, text, `hetwired_jobs{state="running"}`); got != 0 {
		t.Errorf("running gauge = %v after completion", got)
	}
	if got := metricValue(t, text, "hetwired_queue_depth"); got != 0 {
		t.Errorf("queue depth = %v after completion", got)
	}
	if got := metricValue(t, text, "hetwired_jobs_submitted_total"); got != 32 {
		t.Errorf("submitted total = %v, want 32", got)
	}
	hits := metricValue(t, text, "hetwired_cache_hits_total") +
		metricValue(t, text, "hetwired_cache_coalesced_total")
	if hits == 0 {
		t.Error("metrics report zero cache hits")
	}
	if got := metricValue(t, text, "hetwired_simulated_instructions_total"); got != 16*20000 {
		t.Errorf("simulated instructions = %v, want %d", got, 16*20000)
	}
	if got := metricValue(t, text, "hetwired_workers"); got != 4 {
		t.Errorf("workers gauge = %v, want 4", got)
	}
}

// --- synchronous endpoint + cache identity ---

func TestRunSyncIdenticalBodyOnHit(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	req := map[string]any{"benchmark": "gzip", "model": "VII", "n": 15000}
	resp1, body1 := postJSON(t, ts.URL+"/v1/run", req)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first run: %d %s", resp1.StatusCode, body1)
	}
	if got := resp1.Header.Get("X-Hetwired-Cache"); got != "miss" {
		t.Errorf("first run cache header = %q, want miss", got)
	}
	resp2, body2 := postJSON(t, ts.URL+"/v1/run", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second run: %d %s", resp2.StatusCode, body2)
	}
	if got := resp2.Header.Get("X-Hetwired-Cache"); got != "hit" {
		t.Errorf("second run cache header = %q, want hit", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Error("cache hit body differs from the original response")
	}
	var out struct {
		Benchmark string  `json:"benchmark"`
		Model     string  `json:"model"`
		IPC       float64 `json:"ipc"`
	}
	if err := json.Unmarshal(body1, &out); err != nil {
		t.Fatal(err)
	}
	if out.Benchmark != "gzip" || out.Model != "Model-VII" || out.IPC <= 0 {
		t.Errorf("response = %+v", out)
	}

	// The same machine expressed through a config document must hit too:
	// cache keys are content-addressed over the resolved config.
	resp3, _ := postJSON(t, ts.URL+"/v1/run",
		map[string]any{"benchmark": "gzip", "n": 15000,
			"config": map[string]any{"model": "VII", "clusters": 4}})
	if got := resp3.Header.Get("X-Hetwired-Cache"); got != "hit" {
		t.Errorf("equivalent config-document request = %q, want hit", got)
	}
}

func TestMultiprogrammedRun(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	resp, body := postJSON(t, ts.URL+"/v1/run",
		map[string]any{"benchmarks": []string{"gzip", "swim"}, "clusters": 16, "n": 10000})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("multi run: %d %s", resp.StatusCode, body)
	}
	var out struct {
		Threads []struct {
			Benchmark string  `json:"benchmark"`
			IPC       float64 `json:"ipc"`
		} `json:"threads"`
		IPC float64 `json:"ipc"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Threads) != 2 || out.IPC <= 0 {
		t.Fatalf("response = %s", body)
	}
	if out.Threads[0].Benchmark != "gzip" || out.Threads[1].Benchmark != "swim" {
		t.Errorf("thread labels = %+v", out.Threads)
	}
}

// --- sweeps ---

func TestSweepSharesCacheWithSingleRuns(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2})
	// Pre-warm one point via the sync endpoint.
	resp, body := postJSON(t, ts.URL+"/v1/run", map[string]any{"benchmark": "gzip", "model": "I", "n": 12000})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm run: %d %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"sweep": map[string]any{
			"models":     []string{"I", "VII"},
			"benchmarks": []string{"gzip"},
			"ns":         []uint64{12000},
		},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep submit: %d %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, ts.URL, st.ID, 60*time.Second)
	if final.State != StateDone {
		t.Fatalf("sweep finished %s: %s", final.State, final.Error)
	}
	var sweep SweepResponse
	if err := json.Unmarshal(final.Result, &sweep); err != nil {
		t.Fatal(err)
	}
	if len(sweep.Points) != 2 {
		t.Fatalf("sweep points = %d, want 2", len(sweep.Points))
	}
	if !sweep.Points[0].Cached || sweep.CacheHits < 1 {
		t.Errorf("pre-warmed point not served from cache: %+v", sweep)
	}
	if sweep.Points[1].Cached {
		t.Errorf("cold point reported cached: %+v", sweep.Points[1])
	}
	// Re-running the identical sweep must be all hits.
	resp, body = postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"sweep": map[string]any{
			"models":     []string{"I", "VII"},
			"benchmarks": []string{"gzip"},
			"ns":         []uint64{12000},
		},
	})
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	final = waitTerminal(t, ts.URL, st.ID, 60*time.Second)
	if !final.CacheHit {
		t.Error("identical sweep not fully cached")
	}
	if cs := s.Cache().Stats(); cs.Misses != 2 {
		t.Errorf("distinct simulations = %d, want 2", cs.Misses)
	}
}

// --- cancellation ---

func TestCancelQueuedJob(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	// Occupy the single worker, then queue a victim behind it.
	_, blockerRaw := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"benchmark": "gcc", "n": 400000})
	var blocker JobStatus
	if err := json.Unmarshal(blockerRaw, &blocker); err != nil {
		t.Fatal(err)
	}
	_, victimRaw := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"benchmark": "mcf", "n": 400000})
	var victim JobStatus
	if err := json.Unmarshal(victimRaw, &victim); err != nil {
		t.Fatal(err)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+victim.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	st := waitTerminal(t, ts.URL, victim.ID, 30*time.Second)
	if st.State != StateCancelled {
		t.Errorf("victim state = %s, want cancelled", st.State)
	}
	if st.WallMS != 0 {
		t.Errorf("cancelled-in-queue job reports wall time %v", st.WallMS)
	}
	if st := waitTerminal(t, ts.URL, blocker.ID, 60*time.Second); st.State != StateDone {
		t.Errorf("blocker state = %s: %s", st.State, st.Error)
	}
}

func TestCancelRunningSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep")
	}
	_, ts := newTestServer(t, Options{Workers: 1})
	benches := []string{"gzip", "gcc", "mcf", "mesa", "twolf", "swim", "art", "vpr"}
	_, raw := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"sweep": map[string]any{
			"models":     []string{"I", "IV"},
			"benchmarks": benches,
			"ns":         []uint64{250000},
		},
	})
	var st JobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	// Wait for it to start, then cancel mid-sweep.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var cur JobStatus
		getJSON(t, ts.URL+"/v1/jobs/"+st.ID, &cur)
		if cur.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep never started: %s", cur.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	final := waitTerminal(t, ts.URL, st.ID, 60*time.Second)
	if final.State != StateCancelled {
		t.Errorf("sweep state = %s, want cancelled", final.State)
	}
}

// --- overload, drain, validation ---

func TestQueueFullRejects(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 1})
	// One running + one queued fills the system; the third gets 429 with a
	// Retry-After hint sized from queue depth x observed mean job latency.
	sawBusy := false
	for i := 0; i < 8; i++ {
		resp, _ := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"benchmark": "gzip", "n": 300000})
		if resp.StatusCode == http.StatusTooManyRequests {
			sawBusy = true
			ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
			if err != nil || ra < 1 {
				t.Errorf("Retry-After = %q, want a positive integer of seconds", resp.Header.Get("Retry-After"))
			}
			break
		}
	}
	if !sawBusy {
		t.Error("queue never reported full")
	}
}

func TestDrainFinishesQueuedJobs(t *testing.T) {
	s := New(Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ids := make([]string, 0, 6)
	for i := 0; i < 6; i++ {
		_, raw := postJSON(t, ts.URL+"/v1/jobs",
			map[string]any{"benchmark": "gzip", "n": 20000 + i*1000})
		var st JobStatus
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Post-drain: submissions rejected, every accepted job terminal.
	resp, _ := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"benchmark": "gzip", "n": 1000})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain submit = %d, want 503", resp.StatusCode)
	}
	for _, id := range ids {
		st := waitTerminal(t, ts.URL, id, time.Second)
		if st.State != StateDone {
			t.Errorf("job %s drained as %s", id, st.State)
		}
	}
	var health struct {
		Status string `json:"status"`
	}
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz = %d, want 503", resp2.StatusCode)
	}
	if err := json.NewDecoder(resp2.Body).Decode(&health); err != nil || health.Status != "draining" {
		t.Errorf("healthz body = %+v, %v", health, err)
	}
}

func TestValidationErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	cases := []map[string]any{
		{"benchmark": "no-such-benchmark", "n": 1000},
		{"n": 1000}, // no workload
		{"benchmark": "gzip", "benchmarks": []string{"gcc"}, "n": 1000}, // both
		{"benchmark": "gzip", "model": "XI", "n": 1000},                 // bad model
		{"benchmark": "gzip", "clusters": 7, "n": 1000},                 // bad clusters
		{"sweep": map[string]any{"models": []string{}, "benchmarks": []string{"gzip"}}},
	}
	for i, c := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/jobs", c)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d, body %s", i, resp.StatusCode, body)
		}
	}
}

func TestCatalogAndHealth(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	var cat struct {
		Benchmarks []string `json:"benchmarks"`
		Kernels    []string `json:"kernels"`
		Models     []string `json:"models"`
	}
	getJSON(t, ts.URL+"/v1/catalog", &cat)
	if len(cat.Benchmarks) < 20 || len(cat.Kernels) == 0 || len(cat.Models) != 10 {
		t.Errorf("catalog = %d benchmarks, %d kernels, %d models",
			len(cat.Benchmarks), len(cat.Kernels), len(cat.Models))
	}
	var health struct {
		Status string `json:"status"`
	}
	getJSON(t, ts.URL+"/healthz", &health)
	if health.Status != "ok" {
		t.Errorf("health = %+v", health)
	}
	text := scrapeMetrics(t, ts.URL)
	for _, want := range []string{
		"hetwired_up 1",
		"hetwired_http_requests_total",
		"hetwired_http_request_duration_seconds_bucket",
		`le="+Inf"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// --- concurrency stress ---

// TestConcurrentSubmitPollCancelStress hammers a 2-worker daemon with
// concurrent submitters, status pollers, job-list readers, cancellers and
// metrics scrapes, then drains while pollers are still running. Its value is
// under `go test -race` (which CI runs for the whole package): any unlocked
// shared state in the queue, job table, cache or metrics registry shows up
// here.
func TestConcurrentSubmitPollCancelStress(t *testing.T) {
	s := New(Options{Workers: 2, QueueDepth: 128})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var mu sync.Mutex
	var ids []string
	addID := func(id string) { mu.Lock(); ids = append(ids, id); mu.Unlock() }
	snapshot := func() []string {
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), ids...)
	}

	// post submits without test helpers so it is safe from any goroutine
	// (only Errorf, never FailNow, off the test goroutine).
	post := func(body map[string]any) (int, JobStatus) {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Errorf("marshal: %v", err)
			return 0, JobStatus{}
		}
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Errorf("submit: %v", err)
			return 0, JobStatus{}
		}
		defer resp.Body.Close()
		var st JobStatus
		_ = json.NewDecoder(resp.Body).Decode(&st)
		return resp.StatusCode, st
	}

	stopPolling := make(chan struct{})
	var pollers sync.WaitGroup
	for g := 0; g < 3; g++ {
		pollers.Add(1)
		go func() {
			defer pollers.Done()
			for {
				select {
				case <-stopPolling:
					return
				default:
				}
				for _, id := range snapshot() {
					if resp, err := http.Get(ts.URL + "/v1/jobs/" + id); err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}
				for _, path := range []string{"/v1/jobs", "/v1/jobs?state=done", "/metrics", "/healthz"} {
					if resp, err := http.Get(ts.URL + path); err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}
			}
		}()
	}

	// Cancellers chase the submitters, cancelling every third accepted job.
	// Cancellation racing completion is fine — both end terminal.
	stopCancel := make(chan struct{})
	var cancellers sync.WaitGroup
	cancellers.Add(1)
	go func() {
		defer cancellers.Done()
		seen := 0
		for {
			for _, id := range snapshot()[seen:] {
				seen++
				if seen%3 != 0 {
					continue
				}
				req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
				if resp, err := http.DefaultClient.Do(req); err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
			select {
			case <-stopCancel:
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()

	benches := []string{"gzip", "gcc", "mcf", "swim"}
	var submitters sync.WaitGroup
	for g := 0; g < 4; g++ {
		submitters.Add(1)
		go func(g int) {
			defer submitters.Done()
			for i := 0; i < 8; i++ {
				if i%4 == 3 {
					// Invalid request: must be rejected, never occupy a worker.
					if code, _ := post(map[string]any{"benchmark": "no-such-benchmark", "n": 1000}); code != http.StatusBadRequest {
						t.Errorf("invalid submit = %d, want 400", code)
					}
					continue
				}
				code, st := post(map[string]any{
					"benchmark": benches[(g+i)%len(benches)],
					"n":         2000 + 500*i + 16000*g, // distinct budgets defeat the result cache
				})
				switch code {
				case http.StatusAccepted:
					addID(st.ID)
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					// Queue full or draining: acceptable backpressure.
				default:
					t.Errorf("submit status = %d", code)
				}
			}
		}(g)
	}

	submitters.Wait()
	close(stopCancel)
	cancellers.Wait()

	// Drain while the pollers are still hitting every endpoint.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain under load: %v", err)
	}
	close(stopPolling)
	pollers.Wait()

	accepted := snapshot()
	if len(accepted) == 0 {
		t.Fatal("no jobs accepted; stress exercised nothing")
	}
	for _, id := range accepted {
		st := waitTerminal(t, ts.URL, id, 5*time.Second)
		if st.State != StateDone && st.State != StateCancelled {
			t.Errorf("job %s ended as %s: %s", id, st.State, st.Error)
		}
	}
}
