package server

import (
	"expvar"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hetwire"
	"hetwire/internal/obs/flight"
	"hetwire/internal/tenant"
)

// jobLane classifies a job for the scheduler's two priority lanes.
// Interactive work is the single-scenario "run" kind — the latency-critical
// class; sweeps and batches are bulk. The split mirrors the source paper's
// wire classes: latency-critical traffic rides the fast lane, bandwidth
// traffic the fat one, and neither starves the other.
type jobLane int

const (
	laneInteractive jobLane = iota
	laneBulk
	numLanes
)

func laneOf(kind string) jobLane {
	if kind == "run" {
		return laneInteractive
	}
	return laneBulk
}

func (l jobLane) String() string {
	if l == laneInteractive {
		return "interactive"
	}
	return "bulk"
}

// tenantQueue is one tenant's scheduler state: a FIFO per lane plus the
// virtual time that orders tenants. State persists while the tenant is idle
// (the tenant set is bounded by the registry), so accumulated usage is not
// forgotten between bursts; the vfloor rule below caps how much an idle
// tenant can owe.
type tenantQueue struct {
	tn     *tenant.Tenant
	weight float64
	lanes  [numLanes][]*Job
	queued int
	// vtime is the tenant's accumulated sim-CPU seconds divided by its
	// weight. The scheduler always dispatches the backlogged tenant with the
	// minimum vtime, which is what yields weight-proportional CPU shares
	// under saturation (start-time fair queueing over job CPU charges).
	vtime float64
	// lastSeq is the global dispatch sequence number of this tenant's most
	// recent pop; it tie-breaks equal vtimes into round-robin order so
	// tenants with no measured usage yet (cold start, all-cache-hit phases)
	// still interleave instead of starving behind map order.
	lastSeq uint64
}

// fairQueue replaces the FIFO job queue with weighted-fair, two-lane
// dispatch. Push is admission (per-tenant queue-share caps enforced here);
// pop is the scheduling decision; charge folds a finished job's measured
// sim-CPU back into its tenant's virtual time.
//
// Lane policy: a worker asking for work takes the best tenant's interactive
// job if any exists anywhere; bulk jobs dispatch only while fewer than
// bulkCap of them are running, so at least one worker slot is always free
// for the interactive lane and a bulk storm cannot occupy the whole pool.
//
// Determinism: the scheduler reorders only which job STARTS next. Job
// results are content-addressed and scenario results land at their expansion
// index, so result bytes are schedule-independent (DESIGN §11).
type fairQueue struct {
	mu   sync.Mutex
	cond *sync.Cond

	maxDepth int
	bulkCap  int
	// fifo disables fair scheduling: one global FIFO, no lanes, no caps.
	// This is the benchreport's scheduler-off baseline, kept only to measure
	// the fair path's overhead against.
	fifo bool

	// flight receives a KindDispatch event per scheduling decision; nil-safe
	// (a nil *Recorder records nothing at the cost of one pointer compare).
	flight *flight.Recorder

	depth       int
	bulkRunning int
	seq         uint64
	// vfloor is the vtime of the most recently dispatched tenant (monotone).
	// A tenant going from idle to backlogged is lifted to it, so sitting idle
	// never banks unbounded credit against active tenants.
	vfloor  float64
	tenants map[string]*tenantQueue
	fifoQ   []*Job
	closed  bool
}

func newFairQueue(maxDepth, workers int, fifo bool, fr *flight.Recorder) *fairQueue {
	bulkCap := workers - 1
	if bulkCap < 1 {
		bulkCap = 1
	}
	q := &fairQueue{
		maxDepth: maxDepth,
		bulkCap:  bulkCap,
		fifo:     fifo,
		flight:   fr,
		tenants:  make(map[string]*tenantQueue),
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// errTenantQueueShare is push's typed rejection for a tenant at its
// queue-share cap; the server maps it to 429 + tenant_queue_share.
var errTenantQueueShare = &hetwire.RequestError{
	Code: hetwire.ReasonTenantQueueShare,
	Err:  ErrQueueFull,
}

// push admits a job without blocking: ErrDraining after close, ErrQueueFull
// at global capacity, errTenantQueueShare when the job's tenant already
// holds its configured share of the queue.
func (q *fairQueue) push(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrDraining
	}
	if q.depth >= q.maxDepth {
		return ErrQueueFull
	}
	if q.fifo {
		q.fifoQ = append(q.fifoQ, j)
	} else {
		tq := q.tenantLocked(j.tenant)
		if share := j.tenant.QueueShareCap(q.maxDepth); share > 0 && tq.queued >= share {
			return errTenantQueueShare
		}
		if tq.queued == 0 && tq.vtime < q.vfloor {
			tq.vtime = q.vfloor
		}
		tq.lanes[j.lane] = append(tq.lanes[j.lane], j)
		tq.queued++
	}
	q.depth++
	j.tenant.IncQueued()
	q.cond.Signal()
	return nil
}

func (q *fairQueue) tenantLocked(tn *tenant.Tenant) *tenantQueue {
	tq, ok := q.tenants[tn.Name()]
	if !ok {
		tq = &tenantQueue{tn: tn, weight: float64(tn.Weight())}
		q.tenants[tn.Name()] = tq
	}
	return tq
}

// pop blocks until a job is dispatchable, returning (nil, false) once the
// queue is closed and fully drained. The caller MUST call finished(job)
// after running the job (bulk-slot bookkeeping).
func (q *fairQueue) pop() (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if j := q.pickLocked(); j != nil {
			return j, true
		}
		if q.closed && q.depth == 0 {
			return nil, false
		}
		// Bulk work may remain undispatchable until a running bulk job calls
		// finished(), which broadcasts; close() broadcasts too.
		q.cond.Wait()
	}
}

// pickLocked chooses the next job or nil when nothing is dispatchable:
// the min-vtime tenant's interactive job first, else (under the bulk cap)
// the min-vtime tenant's bulk job.
func (q *fairQueue) pickLocked() *Job {
	if q.fifo {
		if len(q.fifoQ) == 0 {
			return nil
		}
		j := q.fifoQ[0]
		q.fifoQ[0] = nil
		q.fifoQ = q.fifoQ[1:]
		q.depth--
		j.tenant.DecQueued()
		return j
	}
	if tq := q.bestLocked(laneInteractive); tq != nil {
		return q.takeLocked(tq, laneInteractive)
	}
	if q.bulkRunning < q.bulkCap {
		if tq := q.bestLocked(laneBulk); tq != nil {
			j := q.takeLocked(tq, laneBulk)
			j.dispatchedBulk = true
			q.bulkRunning++
			return j
		}
	}
	return nil
}

// bestLocked returns the backlogged tenant with the minimum (vtime, lastSeq,
// name) for the lane, or nil. Linear scan: the tenant set is bounded by
// tenant.MaxTenants and typically tiny.
func (q *fairQueue) bestLocked(lane jobLane) *tenantQueue {
	var best *tenantQueue
	var bestName string
	for name, tq := range q.tenants {
		if len(tq.lanes[lane]) == 0 {
			continue
		}
		if best == nil ||
			tq.vtime < best.vtime ||
			(tq.vtime == best.vtime && (tq.lastSeq < best.lastSeq ||
				(tq.lastSeq == best.lastSeq && name < bestName))) {
			best, bestName = tq, name
		}
	}
	return best
}

func (q *fairQueue) takeLocked(tq *tenantQueue, lane jobLane) *Job {
	j := tq.lanes[lane][0]
	tq.lanes[lane][0] = nil
	tq.lanes[lane] = tq.lanes[lane][1:]
	tq.queued--
	q.depth--
	q.seq++
	tq.lastSeq = q.seq
	if tq.vtime > q.vfloor {
		q.vfloor = tq.vtime
	}
	j.tenant.DecQueued()
	q.flight.Record(flight.Event{
		Kind:   flight.KindDispatch,
		Trace:  j.TraceID,
		Tenant: tq.tn.Name(),
		Job:    j.ID,
		Lane:   lane.String(),
		VTime:  tq.vtime,
	})
	return j
}

// finished releases a dispatched job's bulk slot (no-op for interactive
// jobs) and wakes a waiting worker. Must be called exactly once per pop.
func (q *fairQueue) finished(j *Job) {
	q.mu.Lock()
	if j.dispatchedBulk {
		j.dispatchedBulk = false
		q.bulkRunning--
	}
	q.mu.Unlock()
	q.cond.Broadcast()
}

// charge folds a finished job's measured simulation CPU into its tenant's
// virtual time: vtime += cpuSeconds / weight. Charging on completion (not
// dispatch) means the schedule reacts to real usage — a tenant of cheap
// cache-hit jobs is not billed like one running fresh 16k-instruction
// simulations.
func (q *fairQueue) charge(j *Job, cpu time.Duration) {
	if cpu <= 0 || q.fifo {
		return
	}
	q.mu.Lock()
	q.tenantLocked(j.tenant).vtime += cpu.Seconds() / float64(j.tenant.Weight())
	q.mu.Unlock()
}

// close stops intake; queued jobs remain for workers to drain.
func (q *fairQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

func (q *fairQueue) depthNow() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.depth
}

// SchedTenantSnapshot is one tenant's scheduler state as exposed over
// expvar: the start-time-fair-queueing internals that were previously
// observable only by reading sched.go.
type SchedTenantSnapshot struct {
	Tenant      string  `json:"tenant"`
	Weight      float64 `json:"weight"`
	VTime       float64 `json:"vtime"`
	Queued      int     `json:"queued"`
	Interactive int     `json:"interactive"`
	Bulk        int     `json:"bulk"`
	LastSeq     uint64  `json:"last_seq"`
}

// SchedSnapshot is a point-in-time view of the fair queue for expvar and
// the hetwired_sched_lane_depth metrics.
type SchedSnapshot struct {
	FIFO        bool                  `json:"fifo"`
	Depth       int                   `json:"depth"`
	BulkRunning int                   `json:"bulk_running"`
	BulkCap     int                   `json:"bulk_cap"`
	VFloor      float64               `json:"vfloor"`
	Seq         uint64                `json:"seq"`
	LaneDepth   map[string]int        `json:"lane_depth"`
	Tenants     []SchedTenantSnapshot `json:"tenants,omitempty"`
}

// snapshot captures the queue state under the lock; tenants are sorted by
// name so the output is deterministic.
func (q *fairQueue) snapshot() SchedSnapshot {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := SchedSnapshot{
		FIFO:        q.fifo,
		Depth:       q.depth,
		BulkRunning: q.bulkRunning,
		BulkCap:     q.bulkCap,
		VFloor:      q.vfloor,
		Seq:         q.seq,
		LaneDepth:   map[string]int{laneInteractive.String(): 0, laneBulk.String(): 0},
	}
	if q.fifo {
		s.LaneDepth[laneBulk.String()] = len(q.fifoQ)
		return s
	}
	for name, tq := range q.tenants {
		s.LaneDepth[laneInteractive.String()] += len(tq.lanes[laneInteractive])
		s.LaneDepth[laneBulk.String()] += len(tq.lanes[laneBulk])
		s.Tenants = append(s.Tenants, SchedTenantSnapshot{
			Tenant:      name,
			Weight:      tq.weight,
			VTime:       tq.vtime,
			Queued:      tq.queued,
			Interactive: len(tq.lanes[laneInteractive]),
			Bulk:        len(tq.lanes[laneBulk]),
			LastSeq:     tq.lastSeq,
		})
	}
	sort.Slice(s.Tenants, func(i, j int) bool { return s.Tenants[i].Tenant < s.Tenants[j].Tenant })
	return s
}

// expvar.Publish panics on duplicate names and server.New runs many times
// per test binary, so the "hetwired_sched" var is published once and
// repointed at the newest queue via an atomic pointer.
var (
	schedExpvarOnce  sync.Once
	schedExpvarQueue atomic.Pointer[fairQueue]
)

func publishSchedExpvar(q *fairQueue) {
	schedExpvarQueue.Store(q)
	schedExpvarOnce.Do(func() {
		expvar.Publish("hetwired_sched", expvar.Func(func() any {
			if cur := schedExpvarQueue.Load(); cur != nil {
				return cur.snapshot()
			}
			return nil
		}))
	})
}
