// End-to-end trace propagation across the ops plane: a client-minted trace
// ID follows a streamed batch job from submission through the coordinator's
// work leases to a real node agent's flight recorder and lease log, and the
// pieces merge into one causal timeline.
package server_test

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"hetwire"
	"hetwire/internal/client"
	"hetwire/internal/cluster/node"
	"hetwire/internal/obs"
	"hetwire/internal/obs/flight"
	"hetwire/internal/server"
)

func TestClusterTracePropagationEndToEnd(t *testing.T) {
	h := startCoordinator(t, server.ClusterOptions{LeaseSize: 2})

	// A real node agent with its own flight recorder and lease log.
	nodeFR := flight.New(256)
	var leaseLog bytes.Buffer
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	nodeDone := make(chan error, 1)
	go func() {
		nodeDone <- node.Run(ctx, node.Options{
			Coordinator: h.ts.URL,
			Token:       testClusterToken,
			Name:        "trace-node",
			Flight:      nodeFR,
			EventLog:    &leaseLog,
		})
	}()

	const traceID = "trace-prop-e2e-01"
	cl := client.New(client.Options{BaseURL: h.ts.URL, TraceID: traceID})
	batch := &hetwire.BatchRequest{Sweep: &hetwire.BatchSweep{
		Benchmarks: []string{"gzip", "mcf"},
		Models:     []string{"I"},
		Ns:         []uint64{4000, 8000},
	}}
	var st server.JobStatus
	if err := cl.DoJSON(ctx, http.MethodPost, "/v1/jobs",
		map[string]any{"batch": batch}, "trace-prop-idem", &st); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if st.TraceID != traceID {
		t.Fatalf("submitted job trace = %q, want %q", st.TraceID, traceID)
	}

	// Follow the job over the binary streaming endpoint; the stream response
	// must echo the trace header it was called with.
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, h.ts.URL+"/v1/jobs/"+st.ID+"/stream", nil)
	req.Header.Set(server.TraceHeader, traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get(server.TraceHeader); got != traceID {
		t.Errorf("stream echoed trace %q, want %q", got, traceID)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatalf("draining stream: %v", err)
	}
	final, err := cl.Await(ctx, st.ID, 10*time.Millisecond)
	if err != nil || final.State != server.StateDone {
		t.Fatalf("await: state=%v err=%v", final.State, err)
	}

	cancel()
	<-nodeDone

	// Node side: lease execution carries the client's trace.
	var nodeKinds []string
	for _, ev := range nodeFR.Snapshot() {
		if ev.Kind == flight.KindLeaseRun || ev.Kind == flight.KindSpan {
			if ev.Trace != traceID {
				t.Errorf("node event %+v lost the trace", ev)
			}
			nodeKinds = append(nodeKinds, ev.Kind)
		}
	}
	if len(nodeKinds) == 0 {
		t.Fatal("node recorder saw no lease execution")
	}
	leases, err := obs.ReadLeaseEvents(bytes.NewReader(leaseLog.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(leases) == 0 {
		t.Fatal("node wrote no lease-log records")
	}
	for _, le := range leases {
		if le.TraceID != traceID {
			t.Errorf("lease log record %+v lost the trace", le)
		}
	}

	// Coordinator side: the flight dump records the lease lifecycle under the
	// same trace.
	dreq, _ := http.NewRequest(http.MethodGet, h.ts.URL+"/v1/debug/flight", nil)
	dresp, err := http.DefaultClient.Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	_, coordEvents, err := flight.ReadDump(dresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	coordKinds := map[string]bool{}
	for _, ev := range coordEvents {
		if ev.Trace == traceID {
			coordKinds[ev.Kind] = true
		}
	}
	for _, want := range []string{flight.KindAdmit, flight.KindLeaseGrant, flight.KindLeaseUpload} {
		if !coordKinds[want] {
			t.Errorf("coordinator dump missing %q for trace %s (got %v)", want, traceID, coordKinds)
		}
	}

	// The three dumps merge into one causal timeline for the trace: the
	// coordinator's grant block precedes the node's execution and the
	// lease-log record lands inside it.
	timeline := flight.MergeTimeline([]flight.Source{
		{Name: "hetwired", Events: flight.Canonical(coordEvents)},
		{Name: "trace-node", Events: flight.Canonical(nodeFR.Snapshot())},
		{Name: "trace-node.leases", Leases: leases},
	}, false)
	if !strings.Contains(timeline, "trace "+traceID) {
		t.Fatalf("merged timeline has no section for %s:\n%s", traceID, timeline)
	}
	grant := strings.Index(timeline, "lease_grant")
	run := strings.Index(timeline, "lease_run")
	logRow := strings.Index(timeline, "lease-log")
	if !(grant >= 0 && run > grant && logRow > grant) {
		t.Errorf("timeline not causally ordered (grant=%d run=%d log=%d):\n%s",
			grant, run, logRow, timeline)
	}

	// Wire sanity for the streaming route label: the normalized route must
	// not fold the stream endpoint into the jobs/{id} label (satellite b).
	if got := server.NormalizeRoute(http.MethodGet, "/v1/jobs/"+st.ID+"/stream"); got != "GET /v1/jobs/{id}/stream" {
		t.Errorf("NormalizeRoute(stream) = %q", got)
	}
}
