package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hetwire/internal/faultinject"
	"hetwire/internal/tenant"
)

// TestChaosStorm is the chaos suite's centerpiece: a live daemon with every
// fault point armed (worker panics, artificial slowness, spurious
// cancellations, cache corruption) under a concurrent submit/poll/cancel
// storm. The invariants that must survive arbitrary fault interleavings:
//
//   - every accepted job reaches a terminal state (no deadlocks, no zombies)
//   - the terminal-state counters sum exactly to the accepted-job count
//   - panicked jobs carry a stack trace and respect the injector's fire cap
//   - the worker pool keeps its size (respawns replace panicked workers)
//   - the daemon drains cleanly afterwards
//
// The injector is seeded, so a failure replays with the same fault pattern.
func TestChaosStorm(t *testing.T) {
	in, err := faultinject.Parse("seed=11,panic=0.1,panic.max=3,slow=0.35,slowms=15,cancel=0.1,corrupt=0.25")
	if err != nil {
		t.Fatal(err)
	}
	const workers = 3
	s := New(Options{Workers: workers, QueueDepth: 64, Faults: in})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var mu sync.Mutex
	var ids []string
	addID := func(id string) { mu.Lock(); ids = append(ids, id); mu.Unlock() }
	snapshot := func() []string {
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), ids...)
	}
	post := func(body map[string]any) (int, JobStatus) {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Errorf("marshal: %v", err)
			return 0, JobStatus{}
		}
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Errorf("submit: %v", err)
			return 0, JobStatus{}
		}
		defer resp.Body.Close()
		var st JobStatus
		_ = json.NewDecoder(resp.Body).Decode(&st)
		return resp.StatusCode, st
	}

	// Pollers keep every read endpoint hot while faults fire.
	stopPoll := make(chan struct{})
	var pollers sync.WaitGroup
	for g := 0; g < 2; g++ {
		pollers.Add(1)
		go func() {
			defer pollers.Done()
			for {
				select {
				case <-stopPoll:
					return
				default:
				}
				for _, id := range snapshot() {
					if resp, err := http.Get(ts.URL + "/v1/jobs/" + id); err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}
				if resp, err := http.Get(ts.URL + "/metrics"); err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}

	benches := []string{"gzip", "gcc", "mcf", "swim", "mesa", "vortex"}
	var submitters sync.WaitGroup
	for g := 0; g < 4; g++ {
		submitters.Add(1)
		go func(g int) {
			defer submitters.Done()
			for i := 0; i < 9; i++ {
				code, st := post(map[string]any{
					"benchmark": benches[(g+i)%len(benches)],
					"n":         4000 + 700*i + 11000*g, // distinct budgets defeat the cache
				})
				if code == http.StatusAccepted {
					addID(st.ID)
					if i%5 == 4 { // cancel a slice of accepted jobs, any state
						req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
						if resp, err := http.DefaultClient.Do(req); err == nil {
							io.Copy(io.Discard, resp.Body)
							resp.Body.Close()
						}
					}
				} else if code != http.StatusTooManyRequests {
					t.Errorf("submit status = %d", code)
				}
			}
		}(g)
	}
	// Two sweep jobs ride along so the multi-point path sees faults too.
	submitters.Add(1)
	go func() {
		defer submitters.Done()
		for i := 0; i < 2; i++ {
			code, st := post(map[string]any{
				"sweep": map[string]any{
					"models":     []string{"I", "V"},
					"benchmarks": []string{"gzip", "mcf"},
					"ns":         []uint64{6000 + uint64(i)*500},
				},
			})
			if code == http.StatusAccepted {
				addID(st.ID)
			}
		}
	}()
	submitters.Wait()
	close(stopPoll)
	pollers.Wait()

	accepted := snapshot()
	if len(accepted) < 20 {
		t.Fatalf("only %d jobs accepted; the storm exercised too little", len(accepted))
	}
	panickedJobs := 0
	for _, id := range accepted {
		st := waitTerminal(t, ts.URL, id, 60*time.Second)
		if !st.State.Terminal() {
			t.Errorf("job %s not terminal: %s", id, st.State)
		}
		if strings.Contains(st.Error, "worker panic") {
			panickedJobs++
			if !strings.Contains(st.FailureLog, "goroutine") {
				t.Errorf("panicked job %s has no stack trace in failure_log", id)
			}
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain after chaos: %v", err)
	}

	// The harness must actually have injected something, and its panic cap
	// must hold; bookkeeping must balance exactly.
	fired := in.Fired(faultinject.WorkerPanic) + in.Fired(faultinject.JobSlow) +
		in.Fired(faultinject.CtxCancel) + in.Fired(faultinject.CacheCorrupt)
	if fired == 0 {
		t.Error("no faults fired; the chaos test tested nothing")
	}
	if got := s.Metrics().JobsPanicked(); got != in.Fired(faultinject.WorkerPanic) {
		t.Errorf("jobs_panicked = %d, injector fired %d", got, in.Fired(faultinject.WorkerPanic))
	}
	if got := s.Metrics().JobsPanicked(); got > 3 {
		t.Errorf("jobs_panicked = %d, cap was 3", got)
	}
	if got := s.Metrics().JobsPanicked(); uint64(panickedJobs) != got {
		t.Errorf("%d jobs report a panic, counter says %d", panickedJobs, got)
	}
	if got := s.Metrics().WorkersRespawned(); got != s.Metrics().JobsPanicked() {
		t.Errorf("respawns = %d, panics = %d", got, s.Metrics().JobsPanicked())
	}

	text := scrapeMetrics(t, ts.URL)
	terminal := metricValue(t, text, `hetwired_jobs_total{state="done"}`) +
		metricValue(t, text, `hetwired_jobs_total{state="failed"}`) +
		metricValue(t, text, `hetwired_jobs_total{state="cancelled"}`)
	if int(terminal) != len(accepted) {
		t.Errorf("terminal-state counters sum to %v, accepted %d jobs", terminal, len(accepted))
	}
	if got := metricValue(t, text, "hetwired_workers"); got != workers {
		t.Errorf("workers gauge = %v, want %d (pool shrank?)", got, workers)
	}
	if got := metricValue(t, text, `hetwired_jobs{state="running"}`); got != 0 {
		t.Errorf("running gauge = %v after drain", got)
	}
	if got := metricValue(t, text, "hetwired_queue_depth"); got != 0 {
		t.Errorf("queue depth = %v after drain", got)
	}
	t.Logf("chaos: %d jobs, faults fired: %s", len(accepted), in)
}

// TestChaosStormMultiTenant re-runs the storm with keyed tenants at mixed
// weights while every fault point is armed. On top of the global chaos
// invariants, the per-tenant ledgers must balance exactly: for every tenant,
// submitted == accepted and done+failed+cancelled == accepted — worker
// panics, spurious cancellations, and queue-full bounces included. Fault
// accounting that is merely eventually-consistent per tenant would make
// billing and fairness meaningless, so the equality is exact, not bounded.
func TestChaosStormMultiTenant(t *testing.T) {
	in, err := faultinject.Parse("seed=23,panic=0.1,panic.max=3,slow=0.3,slowms=12,cancel=0.1,corrupt=0.2")
	if err != nil {
		t.Fatal(err)
	}
	cfg := &tenant.Config{Tenants: []tenant.Spec{
		{Name: "alpha", Key: "storm-alpha", Weight: 3},
		{Name: "beta", Key: "storm-beta", Weight: 1},
		{Name: "gamma", Key: "storm-gamma", Weight: 2, QueueShare: 0.5},
	}}
	const workers = 3
	s := New(Options{Workers: workers, QueueDepth: 64, Faults: in, Tenants: cfg})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var mu sync.Mutex
	ids := map[string][]string{} // tenant name -> accepted job IDs
	addID := func(tn, id string) { mu.Lock(); ids[tn] = append(ids[tn], id); mu.Unlock() }
	post := func(key string, body map[string]any) (int, JobStatus) {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Errorf("marshal: %v", err)
			return 0, JobStatus{}
		}
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(raw))
		if err != nil {
			t.Errorf("request: %v", err)
			return 0, JobStatus{}
		}
		if key != "" {
			req.Header.Set(TenantHeader, key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Errorf("submit: %v", err)
			return 0, JobStatus{}
		}
		defer resp.Body.Close()
		var st JobStatus
		_ = json.NewDecoder(resp.Body).Decode(&st)
		return resp.StatusCode, st
	}

	// One submitter per keyed tenant plus one anonymous (keyless requests
	// resolve to the anonymous tenant and must be accounted the same way).
	keys := []string{"storm-alpha", "storm-beta", "storm-gamma", ""}
	names := []string{"alpha", "beta", "gamma", "anonymous"}
	benches := []string{"gzip", "gcc", "mcf", "swim", "mesa", "vortex"}
	var submitters sync.WaitGroup
	for g := range keys {
		submitters.Add(1)
		go func(g int) {
			defer submitters.Done()
			for i := 0; i < 9; i++ {
				body := map[string]any{
					"benchmark": benches[(g+i)%len(benches)],
					"n":         5000 + 900*i + 13000*g, // distinct budgets defeat the cache
				}
				if i == 7 { // one sweep per tenant exercises the bulk lane
					body = map[string]any{"sweep": map[string]any{
						"models":     []string{"I", "V"},
						"benchmarks": []string{benches[g]},
						"ns":         []uint64{uint64(90000 + 1000*g)},
					}}
				}
				code, st := post(keys[g], body)
				switch {
				case code == http.StatusAccepted:
					if st.Tenant != names[g] {
						t.Errorf("accepted job tenant = %q, want %q", st.Tenant, names[g])
					}
					addID(names[g], st.ID)
					if i%4 == 3 { // cancel a slice of accepted jobs, any state
						req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
						if resp, err := http.DefaultClient.Do(req); err == nil {
							io.Copy(io.Discard, resp.Body)
							resp.Body.Close()
						}
					}
				case code == http.StatusTooManyRequests:
					// queue_full / tenant_queue_share under storm: legitimate.
				default:
					t.Errorf("submit status = %d for tenant %s", code, names[g])
				}
			}
		}(g)
	}
	submitters.Wait()

	total := 0
	mu.Lock()
	for _, list := range ids {
		total += len(list)
	}
	perTenant := make(map[string][]string, len(ids))
	for name, list := range ids {
		perTenant[name] = append([]string(nil), list...)
	}
	mu.Unlock()
	if total < 20 {
		t.Fatalf("only %d jobs accepted; the storm exercised too little", total)
	}
	for _, list := range perTenant {
		for _, id := range list {
			waitTerminal(t, ts.URL, id, 60*time.Second)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain after chaos: %v", err)
	}

	for _, name := range names {
		accepted := uint64(len(perTenant[name]))
		var snap tenant.Snapshot
		for _, tn := range s.tenants.All() {
			if tn.Name() == name {
				snap = tn.Snapshot()
			}
		}
		if snap.Name != name {
			t.Fatalf("tenant %s missing from registry", name)
		}
		if snap.Submitted != accepted {
			t.Errorf("tenant %s: submitted counter = %d, accepted %d", name, snap.Submitted, accepted)
		}
		if terminal := snap.Done + snap.Failed + snap.Cancelled; terminal != accepted {
			t.Errorf("tenant %s: done+failed+cancelled = %d (%d+%d+%d), accepted %d",
				name, terminal, snap.Done, snap.Failed, snap.Cancelled, accepted)
		}
		if snap.Queued != 0 || snap.InFlight != 0 {
			t.Errorf("tenant %s: queued=%d in_flight=%d after drain, want 0/0", name, snap.Queued, snap.InFlight)
		}
	}

	if got := s.Metrics().JobsPanicked(); got != in.Fired(faultinject.WorkerPanic) || got > 3 {
		t.Errorf("jobs_panicked = %d, injector fired %d (cap 3)", got, in.Fired(faultinject.WorkerPanic))
	}
	text := scrapeMetrics(t, ts.URL)
	terminal := metricValue(t, text, `hetwired_jobs_total{state="done"}`) +
		metricValue(t, text, `hetwired_jobs_total{state="failed"}`) +
		metricValue(t, text, `hetwired_jobs_total{state="cancelled"}`)
	if int(terminal) != total {
		t.Errorf("terminal-state counters sum to %v, accepted %d jobs", terminal, total)
	}
	if got := metricValue(t, text, "hetwired_workers"); got != workers {
		t.Errorf("workers gauge = %v, want %d (pool shrank?)", got, workers)
	}
	t.Logf("multi-tenant chaos: %d jobs across %d tenants, faults fired: %s", total, len(names), in)
}
