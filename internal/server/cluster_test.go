// Cluster end-to-end tests: a coordinator daemon plus in-process node agents
// driving the full wire protocol. This file is an external test package
// because the node agent imports internal/client, which imports
// internal/server — linking it into package server's internal tests would
// cycle.
package server_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hetwire"
	"hetwire/internal/client"
	"hetwire/internal/cluster"
	"hetwire/internal/cluster/node"
	"hetwire/internal/server"
)

const testClusterToken = "cluster-e2e-secret"

// goldenCorpusBatch is the repo's 72-scenario golden determinism corpus
// (3 models x 2 topologies x 6 benchmarks x 2 instruction counts) expressed
// as one batch request; cluster execution must reproduce it bit-identically
// to single-process execution.
func goldenCorpusBatch() *hetwire.BatchRequest {
	return &hetwire.BatchRequest{Sweep: &hetwire.BatchSweep{
		Models:     []string{"I", "V", "VIII"},
		Benchmarks: []string{"gzip", "gcc", "mcf", "swim", "mesa", "vortex"},
		Clusters:   []int{4, 16},
		Ns:         []uint64{4_000, 16_000},
	}}
}

var (
	corpusOnce     sync.Once
	corpusBaseline *hetwire.BatchResponse
	corpusErr      error
)

// corpusLocal computes the single-process baseline once per test binary.
func corpusLocal(t *testing.T) *hetwire.BatchResponse {
	t.Helper()
	corpusOnce.Do(func() {
		corpusBaseline, corpusErr = goldenCorpusBatch().Execute()
	})
	if corpusErr != nil {
		t.Fatalf("local corpus baseline: %v", corpusErr)
	}
	return corpusBaseline
}

type clusterHarness struct {
	t   *testing.T
	srv *server.Server
	ts  *httptest.Server
}

func startCoordinator(t *testing.T, co server.ClusterOptions, mods ...func(*server.Options)) *clusterHarness {
	t.Helper()
	co.Token = testClusterToken
	opts := server.Options{Workers: 2, Cluster: &co}
	for _, mod := range mods {
		mod(&opts)
	}
	s := server.New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
		ts.Close()
	})
	return &clusterHarness{t: t, srv: s, ts: ts}
}

// startNode runs a node agent until ctx ends, returning its exit channel.
func (h *clusterHarness) startNode(ctx context.Context, name string, onLease func(*cluster.Lease)) <-chan error {
	errCh := make(chan error, 1)
	go func() {
		errCh <- node.Run(ctx, node.Options{
			Coordinator: h.ts.URL,
			Token:       testClusterToken,
			Name:        name,
			OnLease:     onLease,
		})
	}()
	return errCh
}

// runBatch submits a batch job through the public API and awaits its result.
func (h *clusterHarness) runBatch(ctx context.Context, idemKey string, b *hetwire.BatchRequest) *hetwire.BatchResponse {
	return h.runBatchAs(ctx, idemKey, "", b)
}

// runBatchAs is runBatch under a tenant API key (empty key: anonymous).
func (h *clusterHarness) runBatchAs(ctx context.Context, idemKey, tenantKey string, b *hetwire.BatchRequest) *hetwire.BatchResponse {
	h.t.Helper()
	cl := client.New(client.Options{BaseURL: h.ts.URL, TenantKey: tenantKey})
	var st server.JobStatus
	if err := cl.DoJSON(ctx, http.MethodPost, "/v1/jobs",
		map[string]any{"batch": b}, idemKey, &st); err != nil {
		h.t.Fatalf("submitting batch: %v", err)
	}
	st, err := cl.Await(ctx, st.ID, 20*time.Millisecond)
	if err != nil {
		h.t.Fatalf("awaiting job %s: %v", st.ID, err)
	}
	if st.State != server.StateDone {
		h.t.Fatalf("job %s ended %s: %s", st.ID, st.State, st.Error)
	}
	var out hetwire.BatchResponse
	if err := json.Unmarshal(st.Result, &out); err != nil {
		h.t.Fatalf("decoding batch result: %v", err)
	}
	return &out
}

// stats reads the coordinator counters through the authenticated nodes
// endpoint.
func (h *clusterHarness) stats() cluster.Stats {
	h.t.Helper()
	req, _ := http.NewRequest(http.MethodGet, h.ts.URL+"/v1/cluster/nodes", nil)
	req.Header.Set("Authorization", "Bearer "+testClusterToken)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		h.t.Fatalf("fetching cluster stats: %v", err)
	}
	defer resp.Body.Close()
	var body struct {
		Stats cluster.Stats `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		h.t.Fatalf("decoding cluster stats: %v", err)
	}
	return body.Stats
}

// waitStats polls until cond holds or the deadline passes.
func (h *clusterHarness) waitStats(cond func(cluster.Stats) bool, what string) {
	h.t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond(h.stats()) {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	h.t.Fatalf("timed out waiting for %s (stats %+v)", what, h.stats())
}

// requireBitIdentical asserts that got reproduces want scenario for scenario:
// same completion accounting and byte-identical marshalled responses.
func requireBitIdentical(t *testing.T, want, got *hetwire.BatchResponse) {
	t.Helper()
	if got.Completed != want.Completed || got.Failed != want.Failed {
		t.Fatalf("completed/failed = %d/%d, want %d/%d",
			got.Completed, got.Failed, want.Completed, want.Failed)
	}
	if len(got.Scenarios) != len(want.Scenarios) {
		t.Fatalf("scenario count %d, want %d", len(got.Scenarios), len(want.Scenarios))
	}
	for i := range want.Scenarios {
		wb, err := json.Marshal(want.Scenarios[i].Response)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := json.Marshal(got.Scenarios[i].Response)
		if err != nil {
			t.Fatal(err)
		}
		if string(wb) != string(gb) {
			t.Errorf("scenario %d diverged:\n  local:   %s\n  cluster: %s", i, wb, gb)
		}
	}
}

// TestClusterGoldenCorpus runs the golden corpus through the cluster path at
// one node, two nodes, and two nodes with one killed mid-lease, and requires
// every configuration to be bit-identical to single-process execution.
func TestClusterGoldenCorpus(t *testing.T) {
	baseline := corpusLocal(t)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	t.Run("one_node", func(t *testing.T) {
		h := startCoordinator(t, server.ClusterOptions{})
		nodeCtx, stop := context.WithCancel(ctx)
		defer stop()
		h.startNode(nodeCtx, "solo", nil)
		out := h.runBatch(ctx, "corpus-one-node", goldenCorpusBatch())
		requireBitIdentical(t, baseline, out)
	})

	t.Run("two_nodes", func(t *testing.T) {
		h := startCoordinator(t, server.ClusterOptions{LeaseSize: 8})
		nodeCtx, stop := context.WithCancel(ctx)
		defer stop()
		h.startNode(nodeCtx, "alpha", nil)
		h.startNode(nodeCtx, "beta", nil)
		out := h.runBatch(ctx, "corpus-two-nodes", goldenCorpusBatch())
		requireBitIdentical(t, baseline, out)
		if st := h.stats(); st.NodesRegistered < 2 {
			t.Errorf("expected two registrations, stats %+v", st)
		}
	})

	t.Run("two_nodes_one_killed_mid_lease", func(t *testing.T) {
		// Aggressive liveness settings so the killed node's lease re-dispatches
		// quickly: dead after 3 missed 150ms heartbeats, lease TTL 2s.
		h := startCoordinator(t, server.ClusterOptions{
			LeaseSize: 8,
			LeaseTTL:  2 * time.Second,
			Heartbeat: 150 * time.Millisecond,
			DeadAfter: 600 * time.Millisecond,
		})
		// The doomed node kills its own context on its first lease — after the
		// coordinator committed the range to it, before any upload.
		doomedCtx, kill := context.WithCancel(ctx)
		defer kill()
		var killOnce sync.Once
		doomedExit := h.startNode(doomedCtx, "doomed", func(*cluster.Lease) {
			killOnce.Do(kill)
		})

		resCh := make(chan *hetwire.BatchResponse, 1)
		go func() { resCh <- h.runBatch(ctx, "corpus-kill", goldenCorpusBatch()) }()
		// Hold the healthy node back until the doomed one holds a lease, so the
		// straggler path is genuinely exercised.
		h.waitStats(func(st cluster.Stats) bool { return st.LeasesIssued >= 1 }, "first lease issued")
		healthyCtx, stop := context.WithCancel(ctx)
		defer stop()
		h.startNode(healthyCtx, "healthy", nil)

		select {
		case out := <-resCh:
			requireBitIdentical(t, baseline, out)
		case <-ctx.Done():
			t.Fatal("batch did not complete after mid-lease node death")
		}
		st := h.stats()
		if st.LeasesExpired == 0 {
			t.Errorf("no lease expired despite the killed node: %+v", st)
		}
		if st.ScenariosRedispatched == 0 {
			t.Errorf("no scenario re-dispatched despite the killed node: %+v", st)
		}
		select {
		case <-doomedExit:
		case <-time.After(10 * time.Second):
			t.Error("killed node never exited")
		}
	})
}

// TestClusterFederatedCacheHits reruns a sweep and requires the second pass
// to be answered by the federated result cache rather than re-simulation.
func TestClusterFederatedCacheHits(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	h := startCoordinator(t, server.ClusterOptions{})
	nodeCtx, stop := context.WithCancel(ctx)
	defer stop()
	h.startNode(nodeCtx, "alpha", nil)
	h.startNode(nodeCtx, "beta", nil)

	sweep := &hetwire.BatchRequest{Sweep: &hetwire.BatchSweep{
		Models:     []string{"I", "V"},
		Benchmarks: []string{"gzip", "mcf"},
		Ns:         []uint64{4_000},
	}}
	first := h.runBatch(ctx, "fed-first", sweep)
	if first.Completed != 4 || first.Failed != 0 {
		t.Fatalf("first pass: %+v", first)
	}
	second := h.runBatch(ctx, "fed-second", sweep)
	if second.Completed != 4 || second.CacheHits != 4 {
		t.Fatalf("second pass not federated: completed=%d cache_hits=%d",
			second.Completed, second.CacheHits)
	}
	requireBitIdentical(t, first, second)
	if st := h.stats(); st.FederatedHits < 4 {
		t.Errorf("federated hits = %d, want >= 4 (stats %+v)", st.FederatedHits, st)
	}

	// The federated counter is on /metrics for operators.
	resp, err := http.Get(h.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	metrics := readAll(t, resp)
	if !strings.Contains(metrics, "hetwired_cluster_federated_cache_hits_total") {
		t.Error("/metrics missing hetwired_cluster_federated_cache_hits_total")
	}
	if strings.Contains(metrics, "hetwired_cluster_federated_cache_hits_total 0\n") {
		t.Error("/metrics reports zero federated cache hits after a federated pass")
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}

// TestClusterAuth locks the protocol behind the shared token: missing and
// wrong tokens answer 401 with the machine-readable "unauthorized" reason.
func TestClusterAuth(t *testing.T) {
	h := startCoordinator(t, server.ClusterOptions{})
	post := func(token string) (int, string) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodPost, h.ts.URL+"/v1/cluster/register",
			strings.NewReader(`{"name":"x"}`))
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body struct {
			Reason string `json:"reason"`
		}
		json.NewDecoder(resp.Body).Decode(&body)
		return resp.StatusCode, body.Reason
	}
	if code, reason := post(""); code != http.StatusUnauthorized || reason != cluster.ReasonUnauthorized {
		t.Errorf("no token: %d reason %q, want 401 %q", code, reason, cluster.ReasonUnauthorized)
	}
	if code, reason := post("wrong-secret"); code != http.StatusUnauthorized || reason != cluster.ReasonUnauthorized {
		t.Errorf("wrong token: %d reason %q, want 401 %q", code, reason, cluster.ReasonUnauthorized)
	}

	// A node built with the wrong token fails terminally (no retry storm).
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err := node.Run(ctx, node.Options{Coordinator: h.ts.URL, Token: "wrong-secret", Name: "intruder"})
	if err == nil || ctx.Err() != nil {
		t.Fatalf("node with wrong token: err %v (ctx %v), want immediate rejection", err, ctx.Err())
	}

	// A daemon without cluster mode has no cluster surface at all.
	plain := server.New(server.Options{Workers: 1})
	ts := httptest.NewServer(plain.Handler())
	t.Cleanup(func() {
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		plain.Shutdown(sctx)
		ts.Close()
	})
	resp, err := http.Post(ts.URL+"/v1/cluster/register", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("cluster endpoint on a plain daemon: %d, want 404", resp.StatusCode)
	}
}
