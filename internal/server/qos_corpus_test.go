// Golden-corpus determinism through the weighted-fair scheduler: the QoS
// layer reorders only which job starts next, so result bytes must be
// bit-identical to single-process execution under every weight/lane
// configuration — and under coordinator mode with tenant-tagged leases.
// External test package for the same reason as cluster_test.go: the client
// used to drive the daemon imports internal/server.
package server_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"hetwire"
	"hetwire/internal/client"
	"hetwire/internal/cluster"
	"hetwire/internal/server"
	"hetwire/internal/tenant"
)

// startDaemon runs a plain (non-cluster) daemon wrapped in the cluster
// harness type so runBatchAs works against it.
func startDaemon(t *testing.T, opts server.Options) *clusterHarness {
	t.Helper()
	s := server.New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
		ts.Close()
	})
	return &clusterHarness{t: t, srv: s, ts: ts}
}

// TestFairSchedulerGoldenCorpus runs the 72-scenario corpus through the fair
// scheduler at two different weight/lane configurations and requires
// bit-identity with the single-process baseline each time. Scheduling
// fairness must never leak into result bytes.
func TestFairSchedulerGoldenCorpus(t *testing.T) {
	baseline := corpusLocal(t)
	// Generous budgets: under -race on a small host the corpus plus the
	// competing traffic can legitimately exceed the 2-minute default job
	// deadline without anything being wrong.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	t.Run("weights_3_1_competing", func(t *testing.T) {
		h := startDaemon(t, server.Options{
			Workers: 4, QueueDepth: 32,
			DefaultDeadline: 8 * time.Minute,
			Tenants: &tenant.Config{Tenants: []tenant.Spec{
				{Name: "alpha", Key: "key-alpha", Weight: 3},
				{Name: "beta", Key: "key-beta", Weight: 1},
			}},
		})
		// Both tenants race the same corpus through the scheduler; each must
		// get the baseline bytes regardless of who is dispatched when.
		var wg sync.WaitGroup
		results := make([]*hetwire.BatchResponse, 2)
		for i, key := range []string{"key-alpha", "key-beta"} {
			wg.Add(1)
			go func(i int, key string) {
				defer wg.Done()
				results[i] = h.runBatchAs(ctx, "corpus-"+key, key, goldenCorpusBatch())
			}(i, key)
		}
		wg.Wait()
		for i := range results {
			requireBitIdentical(t, baseline, results[i])
		}
	})

	t.Run("weights_1_8_with_interactive_traffic", func(t *testing.T) {
		h := startDaemon(t, server.Options{
			Workers: 4, QueueDepth: 64,
			DefaultDeadline: 8 * time.Minute,
			Tenants: &tenant.Config{Tenants: []tenant.Spec{
				{Name: "alpha", Key: "key-alpha", Weight: 1},
				{Name: "beta", Key: "key-beta", Weight: 8},
			}},
		})
		// Interactive runs from alpha contend with beta's bulk corpus on the
		// priority lanes while it executes. Closed loop — one outstanding run
		// at a time — so the interactive lane stays busy without the submitter
		// outpacing a slow (-race, single-core) host and starving the corpus
		// outright.
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := client.New(client.Options{BaseURL: h.ts.URL, TenantKey: "key-alpha"})
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var st server.JobStatus
				if err := cl.DoJSON(ctx, http.MethodPost, "/v1/jobs",
					map[string]any{"benchmark": "gzip", "n": 30_000 + i}, "", &st); err == nil {
					_, _ = cl.Await(ctx, st.ID, 5*time.Millisecond)
				}
				time.Sleep(5 * time.Millisecond)
			}
		}()
		out := h.runBatchAs(ctx, "corpus-lanes", "key-beta", goldenCorpusBatch())
		close(stop)
		wg.Wait()
		requireBitIdentical(t, baseline, out)
	})
}

// TestClusterTenantLeases runs the corpus through a two-node cluster on a
// tenancy-enabled coordinator: results stay bit-identical and every lease
// the nodes receive is tagged with the submitting tenant.
func TestClusterTenantLeases(t *testing.T) {
	baseline := corpusLocal(t)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	h := startCoordinator(t, server.ClusterOptions{LeaseSize: 8}, func(o *server.Options) {
		o.DefaultDeadline = 8 * time.Minute
		o.Tenants = &tenant.Config{Tenants: []tenant.Spec{
			{Name: "alpha", Key: "key-alpha", Weight: 3},
			{Name: "beta", Key: "key-beta", Weight: 1},
		}}
	})
	var mu sync.Mutex
	tenants := map[string]int{}
	onLease := func(l *cluster.Lease) {
		mu.Lock()
		tenants[l.Tenant]++
		mu.Unlock()
	}
	nodeCtx, stopNodes := context.WithCancel(ctx)
	defer stopNodes()
	h.startNode(nodeCtx, "node-a", onLease)
	h.startNode(nodeCtx, "node-b", onLease)

	out := h.runBatchAs(ctx, "corpus-tenant-leases", "key-alpha", goldenCorpusBatch())
	requireBitIdentical(t, baseline, out)

	mu.Lock()
	defer mu.Unlock()
	if len(tenants) == 0 {
		t.Fatal("nodes observed no leases")
	}
	for name, n := range tenants {
		if name != "alpha" {
			t.Errorf("%d leases tagged tenant %q, want alpha (alpha submitted the batch)", n, name)
		}
	}
}
