package server

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	"hetwire"
	"hetwire/internal/obs/flight"
	"hetwire/internal/tenant"
)

// TenantHeader carries the submitting tenant's API key. Clients may instead
// send "Authorization: Bearer <key>" on the /v1 API routes; the explicit
// header wins when both are present (and is the only option on a cluster
// coordinator, where Authorization is claimed by the cluster token).
const TenantHeader = "X-Hetwire-Tenant"

// resolveTenant maps a request to its tenant. Open mode (no -tenants file)
// resolves everything to the anonymous tenant and ignores keys entirely —
// the pre-tenancy behaviour. Configured mode resolves an empty key to
// anonymous and rejects unknown keys with reason unknown_tenant.
func (s *Server) resolveTenant(r *http.Request) (*tenant.Tenant, error) {
	key := r.Header.Get(TenantHeader)
	if key == "" && s.clusterToken == "" {
		// Only consult Authorization when it cannot be the cluster secret.
		key, _ = strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
	}
	tn, ok := s.tenants.Lookup(key)
	if !ok {
		return nil, &hetwire.RequestError{Code: hetwire.ReasonUnknownTenant,
			Err: fmt.Errorf("server: unknown tenant key")}
	}
	return tn, nil
}

// reject counts one bounced submission on both the global and the tenant's
// per-reason rejection counters.
func (s *Server) reject(tn *tenant.Tenant, reason string) {
	s.metrics.ObserveRejection(reason)
	ev := flight.Event{Kind: flight.KindReject, Reason: reason}
	if tn != nil {
		tn.CountRejection(reason)
		ev.Tenant = tn.Name()
	}
	s.flight.Record(ev)
}

// retryAfterFor picks the Retry-After for a 429: a tenant_rate_limited
// rejection backs off by the tenant's own token-bucket refill time (rounded
// up to whole seconds, the header's unit); everything else backs off by the
// global queue-drain estimate.
func (s *Server) retryAfterFor(tn *tenant.Tenant, reason string) time.Duration {
	if reason == hetwire.ReasonTenantRateLimited && tn != nil {
		ra := tn.RetryAfter(time.Now())
		secs := (ra + time.Second - 1) / time.Second
		if secs < 1 {
			secs = 1
		}
		return secs * time.Second
	}
	return s.retryAfter()
}

// shedMonitor is the overload watchdog: sampling the queue every
// ShedInterval, it trips load-shed mode after the depth has stayed at or
// above ShedHighWater x QueueDepth for a full ShedWindow, and clears it once
// the depth falls to ShedLowWater x QueueDepth. While shedding, bulk-lane
// submissions are rejected with reason load_shed (429); the interactive
// lane stays open — the point of shedding is to keep latency-critical
// traffic live by dropping the traffic that can wait.
func (s *Server) shedMonitor() {
	ticker := time.NewTicker(s.opts.ShedInterval)
	defer ticker.Stop()
	high := int(s.opts.ShedHighWater * float64(s.opts.QueueDepth))
	if high < 1 {
		high = 1
	}
	low := int(s.opts.ShedLowWater * float64(s.opts.QueueDepth))
	need := int(s.opts.ShedWindow / s.opts.ShedInterval)
	if need < 1 {
		need = 1
	}
	hot := 0
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-ticker.C:
		}
		depth := s.queue.depthNow()
		switch {
		case s.shed.Load():
			if depth <= low {
				s.shed.Store(false)
				hot = 0
				s.flight.Record(flight.Event{Kind: flight.KindShedRelease,
					Detail: fmt.Sprintf("depth=%d low_water=%d", depth, low)})
				s.opts.Logger.Printf("load-shed cleared depth=%d low_water=%d", depth, low)
			}
		case depth >= high:
			hot++
			if hot >= need {
				s.shed.Store(true)
				s.metrics.loadShedTotal.Add(1)
				s.flight.Record(flight.Event{Kind: flight.KindShedEngage,
					Detail: fmt.Sprintf("depth=%d high_water=%d", depth, high)})
				s.opts.Logger.Printf("load-shed engaged depth=%d high_water=%d window=%s (bulk lane rejected until depth<=%d)",
					depth, high, s.opts.ShedWindow, low)
			}
		default:
			hot = 0
		}
	}
}

// Shedding reports whether load-shed mode is engaged (tests, debug).
func (s *Server) Shedding() bool { return s.shed.Load() }

// setShed forces load-shed mode (deterministic tests).
func (s *Server) setShed(on bool) {
	if on && !s.shed.Load() {
		s.metrics.loadShedTotal.Add(1)
		s.flight.Record(flight.Event{Kind: flight.KindShedEngage, Detail: "forced"})
	}
	if !on && s.shed.Load() {
		s.flight.Record(flight.Event{Kind: flight.KindShedRelease, Detail: "forced"})
	}
	s.shed.Store(on)
}
