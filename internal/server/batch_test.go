package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"hetwire"
)

// batchBody builds a small batch submission over the sweep axes.
func batchBody(models, benches []string, n uint64, parallelism int) map[string]any {
	return map[string]any{
		"batch": map[string]any{
			"sweep": map[string]any{
				"models":     models,
				"benchmarks": benches,
				"ns":         []uint64{n},
			},
			"parallelism": parallelism,
		},
	}
}

// TestBatchJobLifecycle: submit -> poll -> done, with deterministic scenario
// order in the merged result, per-scenario progress in the status, and a
// resubmission served entirely from the result cache.
func TestBatchJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	body := batchBody([]string{"I", "V"}, []string{"gcc", "mcf"}, 3_000, 0)

	resp, raw := postJSON(t, ts.URL+"/v1/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d: %s", resp.StatusCode, raw)
	}
	var sub JobStatus
	if err := json.Unmarshal(raw, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.Kind != "batch" {
		t.Fatalf("kind = %q, want batch", sub.Kind)
	}
	if sub.Batch == nil || sub.Batch.Total != 4 {
		t.Fatalf("submission status lacks batch progress: %+v", sub.Batch)
	}

	st := waitTerminal(t, ts.URL, sub.ID, 30*time.Second)
	if st.State != StateDone {
		t.Fatalf("job finished %s: %s", st.State, st.Error)
	}
	if st.Batch == nil || st.Batch.Completed != 4 || st.Batch.Failed != 0 {
		t.Fatalf("final batch progress = %+v", st.Batch)
	}
	if len(st.Batch.Points) != 4 {
		t.Fatalf("full status has %d points, want 4", len(st.Batch.Points))
	}
	for i, pt := range st.Batch.Points {
		if pt.State != "done" || pt.Index != i {
			t.Errorf("point %d = %+v", i, pt)
		}
	}

	var out hetwire.BatchResponse
	if err := json.Unmarshal(st.Result, &out); err != nil {
		t.Fatalf("result body: %v", err)
	}
	if out.Completed != 4 || out.Failed != 0 {
		t.Fatalf("batch response completed=%d failed=%d", out.Completed, out.Failed)
	}
	// Expansion order: benchmark-major over the sweep axes.
	wantOrder := []string{"gcc/I", "gcc/V", "mcf/I", "mcf/V"}
	for i, sc := range out.Scenarios {
		if got := sc.Request.Benchmark + "/" + sc.Request.Model; got != wantOrder[i] {
			t.Errorf("scenario %d = %s, want %s", i, got, wantOrder[i])
		}
		if sc.Response == nil || sc.Response.IPC <= 0 {
			t.Errorf("scenario %d missing response", i)
		}
	}
	spanNames := map[string]bool{}
	for _, sp := range st.Spans {
		spanNames[sp.Name] = true
	}
	for _, want := range []string{spanQueueWait, spanCacheLookup, spanSimRun} {
		if !spanNames[want] {
			t.Errorf("batch job missing %s span: %v", want, st.Spans)
		}
	}

	// Resubmit: every scenario must come from the result cache.
	_, raw2 := postJSON(t, ts.URL+"/v1/jobs", body)
	var sub2 JobStatus
	if err := json.Unmarshal(raw2, &sub2); err != nil {
		t.Fatal(err)
	}
	st2 := waitTerminal(t, ts.URL, sub2.ID, 30*time.Second)
	if !st2.CacheHit {
		t.Error("resubmitted batch not reported as a full cache hit")
	}
	var out2 hetwire.BatchResponse
	if err := json.Unmarshal(st2.Result, &out2); err != nil {
		t.Fatal(err)
	}
	if out2.CacheHits != 4 {
		t.Errorf("resubmission cache hits = %d, want 4", out2.CacheHits)
	}
	for i := range out.Scenarios {
		a, b := out.Scenarios[i].Response, out2.Scenarios[i].Response
		if a.IPC != b.IPC || a.Cycles != b.Cycles {
			t.Errorf("scenario %d drifted across cached resubmission", i)
		}
	}
}

// TestBatchRejectedTooLarge: an oversized batch is rejected with the
// machine-readable reason, and the rejection is counted in /metrics.
func TestBatchRejectedTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, MaxSweepPoints: 3})
	resp, raw := postJSON(t, ts.URL+"/v1/jobs",
		batchBody([]string{"I", "V"}, []string{"gcc", "mcf"}, 2_000, 0)) // 4 > 3
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), `"reason": "batch_too_large"`) &&
		!strings.Contains(string(raw), `"reason":"batch_too_large"`) {
		t.Errorf("rejection body lacks reason code: %s", raw)
	}
	metrics := scrapeMetrics(t, ts.URL)
	if v := metricValue(t, metrics, `hetwired_jobs_rejected_total{reason="batch_too_large"}`); v != 1 {
		t.Errorf("rejected_total{batch_too_large} = %v, want 1", v)
	}
}

// TestBatchRejectedShapes: batch+sweep together and invalid scenario shapes
// fail admission with their specific codes.
func TestBatchRejectedShapes(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	cases := []struct {
		name   string
		body   map[string]any
		reason string
	}{
		{"batch and sweep", map[string]any{
			"batch": map[string]any{"scenarios": []map[string]any{{"benchmark": "gcc"}}},
			"sweep": map[string]any{"models": []string{"I"}, "benchmarks": []string{"gcc"}},
		}, "bad_request"},
		{"empty batch", map[string]any{"batch": map[string]any{}}, "bad_request"},
		{"unknown benchmark", map[string]any{
			"batch": map[string]any{"scenarios": []map[string]any{{"benchmark": "bogus"}}},
		}, "unknown_benchmark"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, raw := postJSON(t, ts.URL+"/v1/jobs", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d: %s", resp.StatusCode, raw)
			}
			if !strings.Contains(string(raw), tc.reason) {
				t.Errorf("body lacks reason %q: %s", tc.reason, raw)
			}
		})
	}
}

// TestBatchCancelMidRun: cancelling a running batch job resolves it as
// cancelled without waiting for the remaining scenarios.
func TestBatchCancelMidRun(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	// Large-ish scenarios so the job is observably running when we cancel.
	_, raw := postJSON(t, ts.URL+"/v1/jobs",
		batchBody([]string{"I", "V", "VIII"}, []string{"gcc", "mcf", "swim"}, 400_000, 1))
	var sub JobStatus
	if err := json.Unmarshal(raw, &sub); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sub.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	st := waitTerminal(t, ts.URL, sub.ID, 30*time.Second)
	if st.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", st.State)
	}
}

// TestBatchSubmitCancelStress is the -race stress: concurrent submitters and
// cancellers hammering small batch jobs must leave the daemon consistent —
// every job terminal, no data races, no deadlocks.
func TestBatchSubmitCancelStress(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 4, QueueDepth: 256})
	const submitters = 8
	var wg sync.WaitGroup
	ids := make(chan string, submitters*4)
	for w := 0; w < submitters; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 4; k++ {
				// Vary N so some submissions share cache entries and some don't.
				n := uint64(1_000 + 500*((w+k)%3))
				resp, raw := postJSON(t, ts.URL+"/v1/jobs",
					batchBody([]string{"I"}, []string{"gcc", "mcf"}, n, 2))
				if resp.StatusCode != http.StatusAccepted {
					t.Errorf("submit: %d %s", resp.StatusCode, raw)
					return
				}
				var sub JobStatus
				if err := json.Unmarshal(raw, &sub); err != nil {
					t.Error(err)
					return
				}
				ids <- sub.ID
			}
		}()
	}
	var cwg sync.WaitGroup
	cwg.Add(1)
	go func() { // cancel every other job as it appears
		defer cwg.Done()
		i := 0
		for id := range ids {
			if i%2 == 0 {
				req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
				if resp, err := http.DefaultClient.Do(req); err == nil {
					resp.Body.Close()
				}
			}
			i++
			// Every job must reach a terminal state regardless of cancellation.
			st := waitTerminal(t, ts.URL, id, 60*time.Second)
			if !st.State.Terminal() {
				t.Errorf("job %s not terminal: %s", id, st.State)
			}
			if st.State == StateDone && st.Batch != nil && st.Batch.Completed != st.Batch.Total {
				t.Errorf("done job %s with partial batch: %+v", id, st.Batch)
			}
		}
	}()
	wg.Wait()
	close(ids)
	cwg.Wait()
}
