package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// fuzzClusterHandler builds one coordinator-mode handler shared by every fuzz
// iteration: constructing a Server per input would dominate the fuzz loop.
// The server is never shut down — the fuzz process exit reclaims it.
var fuzzClusterHandler = sync.OnceValue(func() http.Handler {
	s := New(Options{Workers: 1, Cluster: &ClusterOptions{Token: fuzzClusterToken}})
	return s.Handler()
})

const fuzzClusterToken = "fuzz-cluster-secret"

// clusterFuzzEndpoints maps the fuzz selector byte onto the protocol surface.
var clusterFuzzEndpoints = []string{
	"/v1/cluster/register",
	"/v1/cluster/heartbeat",
	"/v1/cluster/lease",
	"/v1/cluster/cachecheck",
	"/v1/cluster/upload",
}

// FuzzClusterProtocol throws arbitrary bodies at every cluster endpoint and
// requires the coordinator to stay up: no panic (a panic fails the fuzz run),
// no 5xx, and every rejection carries a machine-readable reason code. Bodies
// are sent authenticated so they reach the decoder and the coordinator's
// validation, not just the auth gate.
func FuzzClusterProtocol(f *testing.F) {
	// Structurally valid shapes, boundary junk, and type confusion.
	f.Add(uint8(0), []byte(`{}`))
	f.Add(uint8(0), []byte(`{"name":"n","protocol":1,"compat_hash":"nope"}`))
	f.Add(uint8(0), []byte(`{not json`))
	f.Add(uint8(1), []byte(`{"node_id":"n-9999"}`))
	f.Add(uint8(1), []byte(`{"node_id":12345}`))
	f.Add(uint8(2), []byte(`{"node_id":"n-0001","max":-7}`))
	f.Add(uint8(2), []byte(`null`))
	f.Add(uint8(3), []byte(`{"node_id":"n-0001","keys":["", "zzz"]}`))
	f.Add(uint8(4), []byte(`{"node_id":"n-0001","lease_id":"l-000001","results":[{"index":-3}]}`))
	f.Add(uint8(4), []byte(`{"results":[{"index":0,"body":{"x":1},"body_sha256":"mismatch"}]}`))
	f.Add(uint8(4), []byte("\x00\xff\xfe"))
	f.Add(uint8(255), []byte(``))

	f.Fuzz(func(t *testing.T, which uint8, body []byte) {
		path := clusterFuzzEndpoints[int(which)%len(clusterFuzzEndpoints)]
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Authorization", "Bearer "+fuzzClusterToken)
		rec := httptest.NewRecorder()
		fuzzClusterHandler().ServeHTTP(rec, req)

		if rec.Code >= 500 {
			t.Fatalf("%s: coordinator answered %d to %q", path, rec.Code, body)
		}
		if rec.Code >= 400 {
			var msg struct {
				Error  string `json:"error"`
				Reason string `json:"reason"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &msg); err != nil {
				t.Fatalf("%s: %d rejection is not JSON (%v): %q", path, rec.Code, err, rec.Body.String())
			}
			if msg.Reason == "" {
				t.Fatalf("%s: %d rejection has no machine-readable reason: %q", path, rec.Code, rec.Body.String())
			}
		}
	})
}
