package server

import (
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"strings"
	"sync"
	"time"
)

// TraceHeader is the request-tracing header: clients mint an ID per logical
// operation and send it on every request for that operation; the daemon
// echoes it on the response, stamps it into logs and job status, and carries
// it into the worker's job context (hetwire.WithTraceID). Requests without
// one get a daemon-minted ID so every job is traceable.
const TraceHeader = "X-Hetwire-Trace"

// maxTraceIDLen bounds accepted trace IDs; longer (or malformed) IDs are
// replaced rather than propagated, so log lines and labels stay bounded.
const maxTraceIDLen = 64

// validTraceID accepts hex-ish tokens: letters, digits, '.', '_', '-'.
func validTraceID(id string) bool {
	if id == "" || len(id) > maxTraceIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// MintTraceID creates a fresh 16-hex-char trace identifier.
func MintTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unheard of; a fixed fallback keeps requests
		// flowing (IDs are a debugging aid, not a security boundary).
		return "trace-rand-failed"
	}
	return hex.EncodeToString(b[:])
}

// ensureTraceID extracts the client's trace ID from the request, minting one
// when absent or malformed, and echoes it on the response so the caller
// learns the ID its operation ran under either way.
func ensureTraceID(w http.ResponseWriter, r *http.Request) string {
	id := r.Header.Get(TraceHeader)
	if !validTraceID(id) {
		id = MintTraceID()
	}
	w.Header().Set(TraceHeader, id)
	return id
}

// Span is one timed phase of a job's lifecycle, relative to submission.
// The daemon records queue_wait, cpu_wait, cache_lookup, sim_run, and
// result_encode; sweep and batch jobs merge the per-point phases into one
// span per name, so the span list stays bounded no matter how many points a
// job expands to.
type Span struct {
	Name string `json:"name"`
	// StartMS is when the phase first began, in milliseconds after the job
	// was submitted.
	StartMS float64 `json:"start_ms"`
	// DurMS is the total time spent in the phase (summed across occurrences
	// for merged spans).
	DurMS float64 `json:"dur_ms"`
}

// Span names recorded by the daemon.
const (
	spanQueueWait    = "queue_wait"
	spanCPUWait      = "cpu_wait"
	spanCacheLookup  = "cache_lookup"
	spanSimRun       = "sim_run"
	spanResultEncode = "result_encode"
)

// spanRecorder accumulates a job's phase spans. Same-name observations merge
// (earliest start, summed duration); safe for concurrent use — the worker
// and a status poll may touch it simultaneously.
type spanRecorder struct {
	base time.Time

	mu    sync.Mutex
	spans []Span
}

func newSpanRecorder(base time.Time) *spanRecorder {
	return &spanRecorder{base: base}
}

// observe folds one phase occurrence into the recorder.
func (sr *spanRecorder) observe(name string, start time.Time, d time.Duration) {
	if sr == nil {
		return
	}
	startMS := float64(start.Sub(sr.base)) / float64(time.Millisecond)
	durMS := float64(d) / float64(time.Millisecond)
	sr.mu.Lock()
	defer sr.mu.Unlock()
	for i := range sr.spans {
		if sr.spans[i].Name == name {
			if startMS < sr.spans[i].StartMS {
				sr.spans[i].StartMS = startMS
			}
			sr.spans[i].DurMS += durMS
			return
		}
	}
	sr.spans = append(sr.spans, Span{Name: name, StartMS: startMS, DurMS: durMS})
}

// totalDur sums the recorded duration of the named spans — how the scheduler
// and tenant accounting read back "sim CPU spent" after a job finishes
// (sim_run locally, node_sim when scenarios ran on cluster nodes).
func (sr *spanRecorder) totalDur(names ...string) time.Duration {
	if sr == nil {
		return 0
	}
	sr.mu.Lock()
	defer sr.mu.Unlock()
	var ms float64
	for i := range sr.spans {
		for _, n := range names {
			if sr.spans[i].Name == n {
				ms += sr.spans[i].DurMS
				break
			}
		}
	}
	return time.Duration(ms * float64(time.Millisecond))
}

// snapshot copies the spans in recording order.
func (sr *spanRecorder) snapshot() []Span {
	if sr == nil {
		return nil
	}
	sr.mu.Lock()
	defer sr.mu.Unlock()
	if len(sr.spans) == 0 {
		return nil
	}
	out := make([]Span, len(sr.spans))
	copy(out, sr.spans)
	return out
}

// NormalizeRoute folds a raw request into a bounded route label: the query
// string is stripped, job IDs under /v1/jobs/ collapse to the {id} pattern,
// and anything outside the served API folds to "other" — so the per-route
// metric label set cannot grow with traffic.
func NormalizeRoute(method, path string) string {
	if i := strings.IndexByte(path, '?'); i >= 0 {
		path = path[:i]
	}
	if rest, ok := strings.CutPrefix(path, "/v1/jobs/"); ok && rest != "" {
		// The streaming sub-resource is its own served route and must not fold
		// into the poll endpoint — their latency profiles are nothing alike.
		if strings.HasSuffix(rest, "/stream") && !strings.Contains(strings.TrimSuffix(rest, "/stream"), "/") {
			return method + " /v1/jobs/{id}/stream"
		}
		return method + " /v1/jobs/{id}"
	}
	if rest, ok := strings.CutPrefix(path, "/v1/cluster/"); ok {
		switch rest {
		case "register", "heartbeat", "lease", "cachecheck", "upload", "nodes":
			return method + " /v1/cluster/" + rest
		}
		return method + " other"
	}
	switch path {
	case "/v1/run", "/v1/jobs", "/v1/catalog", "/healthz", "/metrics",
		"/v1/debug/flight", "/v1/tenants/usage":
		return method + " " + path
	}
	return method + " other"
}
