package noc

import (
	"testing"
	"testing/quick"

	"hetwire/internal/config"
	"hetwire/internal/wires"
)

func net4(model config.ModelID) *Network {
	cfg := config.Default().WithModel(model)
	return New(cfg)
}

func net16(model config.ModelID) *Network {
	cfg := config.Default().WithModel(model)
	cfg.Topology = config.HierRing16
	return New(cfg)
}

func TestCrossbarLatenciesPerClass(t *testing.T) {
	n := net4(config.ModelX)
	from, to := Cluster(0), Cluster(1)
	if got := n.Latency(from, to, wires.B); got != 2 {
		t.Errorf("B latency = %d, want 2", got)
	}
	if got := n.Latency(from, to, wires.PW); got != 3 {
		t.Errorf("PW latency = %d, want 3", got)
	}
	if got := n.Latency(from, to, wires.L); got != 1 {
		t.Errorf("L latency = %d, want 1", got)
	}
}

func TestTransferDeliversAfterLatency(t *testing.T) {
	n := net4(config.ModelI)
	arrive := n.Transfer(Cluster(0), Cache, wires.B, 72, 100)
	if arrive != 102 {
		t.Errorf("arrival = %d, want 102 (2-cycle crossbar)", arrive)
	}
}

// TestLinkContentionSerializes: Model I gives each cluster one B transfer
// per cycle per direction; three simultaneous sends from one cluster are
// spaced out, and WaitCycles records the queueing.
func TestLinkContentionSerializes(t *testing.T) {
	n := net4(config.ModelI)
	a1 := n.Transfer(Cluster(0), Cluster(1), wires.B, 72, 50)
	a2 := n.Transfer(Cluster(0), Cluster(2), wires.B, 72, 50)
	a3 := n.Transfer(Cluster(0), Cluster(3), wires.B, 72, 50)
	if a1 != 52 || a2 != 53 || a3 != 54 {
		t.Errorf("arrivals = %d,%d,%d, want 52,53,54", a1, a2, a3)
	}
	if w := n.StatsFor(wires.B).WaitCycles; w != 3 {
		t.Errorf("wait cycles = %d, want 3 (0+1+2)", w)
	}
}

// TestCacheLinkHasDoubleBandwidth: the cache in-link accepts two B transfers
// per cycle under Model I (paper Section 4: cache links have twice the
// wires).
func TestCacheLinkHasDoubleBandwidth(t *testing.T) {
	n := net4(config.ModelI)
	// Sends from different clusters: out-links don't conflict; the cache
	// in-link is the shared resource.
	a1 := n.Transfer(Cluster(0), Cache, wires.B, 72, 10)
	a2 := n.Transfer(Cluster(1), Cache, wires.B, 72, 10)
	a3 := n.Transfer(Cluster(2), Cache, wires.B, 72, 10)
	if a1 != 12 || a2 != 12 {
		t.Errorf("first two arrivals = %d,%d, want 12,12", a1, a2)
	}
	if a3 != 13 {
		t.Errorf("third arrival = %d, want 13 (cache in-link full)", a3)
	}
}

// TestSeparatePlanesDoNotContend: B and L traffic on the same link use
// independent wire planes.
func TestSeparatePlanesDoNotContend(t *testing.T) {
	n := net4(config.ModelVII) // B + L
	a1 := n.Transfer(Cluster(0), Cluster(1), wires.B, 72, 20)
	a2 := n.Transfer(Cluster(0), Cluster(1), wires.B, 72, 20)
	aL := n.Transfer(Cluster(0), Cluster(1), wires.L, 18, 20)
	if a1 != 22 || a2 != 23 {
		t.Errorf("B arrivals = %d,%d, want 22,23", a1, a2)
	}
	if aL != 21 {
		t.Errorf("L arrival = %d, want 21 (independent plane, 1-cycle latency)", aL)
	}
}

func TestTransferOnAbsentPlanePanics(t *testing.T) {
	n := net4(config.ModelI)
	defer func() {
		if recover() == nil {
			t.Error("transfer on missing L plane did not panic")
		}
	}()
	n.Transfer(Cluster(0), Cluster(1), wires.L, 18, 0)
}

func TestRingPath(t *testing.T) {
	cases := []struct {
		a, b int
		segs int
		cw   bool
	}{
		{0, 0, 0, true},
		{0, 1, 1, true},
		{0, 2, 2, true}, // tie broken clockwise
		{0, 3, 1, false},
		{3, 0, 1, true},
		{2, 0, 2, true},
	}
	for _, c := range cases {
		segs, cw := ringPath(c.a, c.b)
		if len(segs) != c.segs || (len(segs) > 0 && cw != c.cw) {
			t.Errorf("ringPath(%d,%d) = %d segs cw=%v, want %d segs cw=%v",
				c.a, c.b, len(segs), cw, c.segs, c.cw)
		}
	}
}

// TestHierarchicalLatencies: paper Table 2 — 16-cluster system, B wires:
// crossbar 2 + ring hop 4 per hop.
func TestHierarchicalLatencies(t *testing.T) {
	n := net16(config.ModelI)
	// Same quad: crossbar only.
	if got := n.Latency(Cluster(0), Cluster(3), wires.B); got != 2 {
		t.Errorf("same-quad latency = %d, want 2", got)
	}
	// Adjacent quad (quad 0 -> 1): crossbar + 1 ring hop.
	if got := n.Latency(Cluster(0), Cluster(4), wires.B); got != 6 {
		t.Errorf("adjacent-quad latency = %d, want 6", got)
	}
	// Opposite quad (0 -> 2): crossbar + 2 ring hops.
	if got := n.Latency(Cluster(0), Cluster(8), wires.B); got != 10 {
		t.Errorf("opposite-quad latency = %d, want 10", got)
	}
	// Cache hangs off quad 0: cluster 15 (quad 3) is one hop away.
	if got := n.Latency(Cluster(15), Cache, wires.B); got != 6 {
		t.Errorf("cluster15->cache latency = %d, want 6", got)
	}
}

// TestRingSegmentContention: two cross-quad transfers sharing a ring segment
// serialize on it.
func TestRingSegmentContention(t *testing.T) {
	n := net16(config.ModelI)
	// Both 0->4 and 1->4 traverse ring segment 0 clockwise.
	a1 := n.Transfer(Cluster(0), Cluster(4), wires.B, 72, 10)
	a2 := n.Transfer(Cluster(1), Cluster(4), wires.B, 72, 10)
	if a1 != 16 {
		t.Errorf("first arrival = %d, want 16", a1)
	}
	if a2 != 17 {
		t.Errorf("second arrival = %d, want 17 (ring segment busy)", a2)
	}
}

// TestImbalanceDetector: the Section 4 detector fires only after the B-PW
// injection difference inside the window exceeds the threshold.
func TestImbalanceDetector(t *testing.T) {
	cfg := config.Default().WithModel(config.ModelV) // B + PW
	n := New(cfg)
	if n.PreferPW(100) {
		t.Fatal("detector fired with no traffic")
	}
	// 11 B injections in one cycle, threshold is 10.
	for i := 0; i < 11; i++ {
		n.Transfer(Cluster(0), Cluster(1), wires.B, 72, 100)
	}
	if !n.PreferPW(101) {
		t.Error("detector should fire after 11 B injections vs 0 PW")
	}
	// Outside the 5-cycle window the injections age out.
	if n.PreferPW(200) {
		t.Error("detector fired on stale traffic")
	}
}

func TestImbalanceDisabledWithoutTechnique(t *testing.T) {
	n := net4(config.ModelI) // no PW wires: balancing off
	for i := 0; i < 50; i++ {
		n.Transfer(Cluster(0), Cluster(1), wires.B, 72, 10)
	}
	if n.PreferPW(11) {
		t.Error("detector must stay off when the technique is disabled")
	}
}

// TestEnergyAccounting: bits and bit-hops accumulate with path length.
func TestEnergyAccounting(t *testing.T) {
	n := net16(config.ModelI)
	n.Transfer(Cluster(0), Cluster(1), wires.B, 72, 0)  // same quad: 1 unit
	n.Transfer(Cluster(0), Cluster(8), wires.B, 72, 50) // 2 ring hops: 5 units
	st := n.StatsFor(wires.B)
	if st.Transfers != 2 || st.Bits != 144 {
		t.Errorf("transfers/bits = %d/%d, want 2/144", st.Transfers, st.Bits)
	}
	if st.BitHops != 72*1+72*5 {
		t.Errorf("bit-hops = %d, want %d", st.BitHops, 72*6)
	}
}

// TestLinkInventory4Cluster: Model I on 4 clusters: 72 B wires x (2x4
// cluster directions) + 144 x 2 cache directions = 864 wire-units.
func TestLinkInventory4Cluster(t *testing.T) {
	n := net4(config.ModelI)
	inv := n.LinkInventory()
	if got := inv[wires.B]; got != 72*8+144*2 {
		t.Errorf("B inventory = %.0f, want %d", got, 72*8+144*2)
	}
	if _, ok := inv[wires.L]; ok {
		t.Error("Model I must have no L inventory")
	}
	// Model VII adds 18 L wires per cluster direction and 36 per cache
	// direction.
	n7 := net4(config.ModelVII)
	if got := n7.LinkInventory()[wires.L]; got != 18*8+36*2 {
		t.Errorf("L inventory = %.0f, want %d", got, 18*8+36*2)
	}
}

// TestTransferNeverEarlierThanLatency: property — arrival >= ready + class
// latency for arbitrary endpoints on the 16-cluster network.
func TestTransferNeverEarlierThanLatency(t *testing.T) {
	n := net16(config.ModelX)
	f := func(fromRaw, toRaw uint8, classRaw uint8, readyRaw uint16) bool {
		from := Cluster(int(fromRaw) % 16)
		to := Cluster(int(toRaw) % 16)
		class := []wires.Class{wires.B, wires.PW, wires.L}[classRaw%3]
		ready := uint64(readyRaw)
		arrive := n.Transfer(from, to, class, 72, ready)
		return arrive >= ready+n.Latency(from, to, class)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNodeString(t *testing.T) {
	if Cluster(3).String() != "cluster3" || Cache.String() != "cache" {
		t.Error("node names wrong")
	}
}

// TestPreferBSymmetry: the reverse arm of the imbalance detector fires when
// PW injections dominate.
func TestPreferBSymmetry(t *testing.T) {
	cfg := config.Default().WithModel(config.ModelV)
	n := New(cfg)
	for i := 0; i < 11; i++ {
		n.Transfer(Cluster(0), Cluster(1), wires.PW, 72, 100)
	}
	if !n.PreferB(101) {
		t.Error("PreferB should fire after 11 PW injections vs 0 B")
	}
	if n.PreferPW(101) {
		t.Error("PreferPW must not fire when PW is the congested plane")
	}
}

// TestPeekTransferEstimatesWithoutBooking: peeking twice gives the same
// answer; booking then shifts it.
func TestPeekTransferEstimatesWithoutBooking(t *testing.T) {
	n := net4(config.ModelI)
	p1 := n.PeekTransfer(Cluster(0), Cluster(1), wires.B, 10)
	p2 := n.PeekTransfer(Cluster(0), Cluster(1), wires.B, 10)
	if p1 != p2 || p1 != 12 {
		t.Fatalf("peeks = %d, %d; want 12, 12", p1, p2)
	}
	n.Transfer(Cluster(0), Cluster(2), wires.B, 72, 10) // books the out-link
	if p3 := n.PeekTransfer(Cluster(0), Cluster(1), wires.B, 10); p3 != 13 {
		t.Errorf("peek after booking = %d, want 13", p3)
	}
	// A missing plane peeks as unreachable.
	if n.PeekTransfer(Cluster(0), Cluster(1), wires.L, 10) != ^uint64(0) {
		t.Error("peek on a missing plane should be unreachable")
	}
}

// TestResetStatsKeepsReservations: statistics clear but link bookings
// persist (warmup semantics).
func TestResetStatsKeepsReservations(t *testing.T) {
	n := net4(config.ModelI)
	n.Transfer(Cluster(0), Cluster(1), wires.B, 72, 10)
	n.ResetStats()
	if n.StatsFor(wires.B).Transfers != 0 {
		t.Fatal("stats survived reset")
	}
	// Cycle 10 on the out-link is still booked.
	if a := n.Transfer(Cluster(0), Cluster(2), wires.B, 72, 10); a != 13 {
		t.Errorf("arrival = %d, want 13 (slot 10 still taken)", a)
	}
}

// TestLinkHeterogeneousAlternative: the Section 3 low-complexity design —
// even cluster links all-B, odd links all-PW at equal area; messages take
// whatever the link provides.
func TestLinkHeterogeneousAlternative(t *testing.T) {
	cfg := config.Default().WithModel(config.ModelV) // 72 B + 144 PW per direction
	cfg.LinkHeterogeneous = true
	n := New(cfg)

	// Cluster 0 (even): B-only link. Area 2*72+144 = 288 PW units -> 144
	// B-unit halves -> 144 B wires = 2 transfers/cycle.
	a := n.Transfer(Cluster(0), Cluster(1), wires.PW, 72, 10) // downgraded to B
	if a != 12 {
		t.Errorf("even-link transfer arrived %d, want 12 (B latency)", a)
	}
	if n.StatsFor(wires.PW).Transfers != 0 {
		t.Error("PW plane used on an all-B link")
	}

	// Cluster 1 (odd): PW-only link: a B request is diverted to PW.
	b := n.Transfer(Cluster(1), Cluster(2), wires.B, 72, 10)
	if b != 13 {
		t.Errorf("odd-link transfer arrived %d, want 13 (PW latency)", b)
	}
	if n.StatsFor(wires.B).Transfers != 1 {
		t.Errorf("B transfers = %d, want 1 (only the even-link one)", n.StatsFor(wires.B).Transfers)
	}
}

// TestLinkHeterogeneousKeepsLWires: L wires stay on every link in the
// alternative topology.
func TestLinkHeterogeneousKeepsLWires(t *testing.T) {
	cfg := config.Default().WithModel(config.ModelX)
	cfg.LinkHeterogeneous = true
	n := New(cfg)
	a := n.Transfer(Cluster(1), Cluster(0), wires.L, 18, 5)
	if a != 6 {
		t.Errorf("L transfer on an odd link arrived %d, want 6", a)
	}
}

// TestMaxWaitTracksWorstMessage: the longest buffered wait is recorded.
func TestMaxWaitTracksWorstMessage(t *testing.T) {
	n := net4(config.ModelI)
	for i := 0; i < 5; i++ {
		n.Transfer(Cluster(0), Cluster(1), wires.B, 72, 100)
	}
	if got := n.StatsFor(wires.B).MaxWait; got != 4 {
		t.Errorf("MaxWait = %d, want 4 (fifth message waits four cycles)", got)
	}
}
