// Package noc models the inter-cluster communication fabric: heterogeneous
// links made of B-, PW- and L-wire planes, the 4-cluster crossbar and the
// 16-cluster hierarchical crossbar+ring of paper Figure 2, per-link
// bandwidth arbitration with unbounded buffering, the traffic-imbalance
// detector of Section 4, and per-class traffic/energy accounting.
package noc

import (
	"fmt"

	"hetwire/internal/config"
	"hetwire/internal/sched"
	"hetwire/internal/wires"
)

// NodeKind distinguishes endpoint types on the network.
type NodeKind uint8

const (
	// ClusterNode is one execution cluster.
	ClusterNode NodeKind = iota
	// CacheNode is the centralized LSQ + L1 data cache. The front end
	// (fetch/rename) is co-located with it, so branch-mispredict signals to
	// the front end travel over the cache links.
	CacheNode
)

// Node identifies a network endpoint.
type Node struct {
	Kind  NodeKind
	Index int // cluster index; ignored for CacheNode
}

// Cluster returns the node for cluster i.
func Cluster(i int) Node { return Node{Kind: ClusterNode, Index: i} }

// Cache is the centralized cache/front-end node.
var Cache = Node{Kind: CacheNode}

// String names the node.
func (n Node) String() string {
	if n.Kind == CacheNode {
		return "cache"
	}
	return fmt.Sprintf("cluster%d", n.Index)
}

// link is one direction of one physical link: a calendar per wire class.
type link struct {
	cal  [3]*sched.Calendar // indexed by classIdx
	spec config.LinkSpec
}

func classIdx(c wires.Class) int {
	switch c {
	case wires.B:
		return 0
	case wires.PW:
		return 1
	case wires.L:
		return 2
	}
	panic("noc: W wires are a design reference, not a link plane")
}

// linkOnlySpec converts a plane-heterogeneous link into the Section 3
// alternative: even links carry only B-wires, odd links only PW-wires, at
// the same metal area (a B wire costs two PW wires of area). L wires, when
// present, stay on every link (they are the low-complexity plane).
func linkOnlySpec(spec config.LinkSpec, idx int) config.LinkSpec {
	if spec.BWires == 0 || spec.PWWires == 0 {
		return spec // single wide class: nothing to segregate
	}
	// Total area in PW-wire units.
	area := 2*spec.BWires + spec.PWWires
	out := config.LinkSpec{LWires: spec.LWires}
	if idx%2 == 0 {
		out.BWires = area / 2 / config.BTransferWires * config.BTransferWires
		if out.BWires == 0 {
			out.BWires = config.BTransferWires
		}
	} else {
		out.PWWires = area / config.PWTransferWires * config.PWTransferWires
		if out.PWWires == 0 {
			out.PWWires = config.PWTransferWires
		}
	}
	return out
}

func newLink(spec config.LinkSpec) *link {
	l := &link{spec: spec}
	for _, c := range []wires.Class{wires.B, wires.PW, wires.L} {
		bw := spec.Bandwidth(c)
		if bw > 0 {
			l.cal[classIdx(c)] = sched.NewCalendar(bw, sched.DefaultWindow)
		}
	}
	return l
}

// reserve books a slot of the class at the earliest cycle >= at.
func (l *link) reserve(c wires.Class, at uint64) uint64 {
	cal := l.cal[classIdx(c)]
	if cal == nil {
		panic(fmt.Sprintf("noc: link has no %v plane", c))
	}
	return cal.Reserve(at)
}

func (l *link) has(c wires.Class) bool { return l.cal[classIdx(c)] != nil }

// fallbackClass returns c if the link carries it, else the link's wide
// class (needed when link-heterogeneous links mix along one path).
func fallbackClass(l *link, c wires.Class) wires.Class {
	if l.has(c) {
		return c
	}
	if c != wires.L && l.has(wires.B) {
		return wires.B
	}
	if c != wires.L && l.has(wires.PW) {
		return wires.PW
	}
	return c
}

// ClassStats accumulates per-class traffic and energy inputs.
type ClassStats struct {
	Transfers  uint64
	Bits       uint64
	BitHops    uint64 // bits weighted by path length units (crossbar=1, ring hop=2)
	WaitCycles uint64 // cycles spent buffered waiting for a slot (contention)
	// MaxWait is the longest time any single message spent buffered — an
	// upper bound on the per-node buffer occupancy the paper's unbounded
	// buffers would need (Parcerisa et al. report a modest number of
	// entries suffices; this lets the claim be checked).
	MaxWait uint64
}

// Network is the inter-cluster fabric. Not safe for concurrent use.
type Network struct {
	cfg      config.Config
	clusters int

	clusterOut []*link // per cluster, towards the crossbar
	clusterIn  []*link // per cluster, from the crossbar
	cacheOut   *link   // cache -> network (double width)
	cacheIn    *link   // network -> cache (double width)

	// Ring segments for the 16-cluster topology: segment i connects quad i
	// to quad (i+1)%4, one link per direction.
	ringCW  []*link
	ringCCW []*link

	// Imbalance detector state (Section 4): recent injection cycle stamps
	// per class, pruned to the configured window.
	recentB  []uint64
	recentPW []uint64

	// routes caches the route between every pair of endpoints, indexed by
	// nodeIdx (clusters 0..clusters-1, cache at index clusters). Routes are
	// static for a topology, and precomputing them keeps ring-path segment
	// slices off the per-Transfer hot path.
	routes [][]route

	// allLinks lists every link once, for whole-network sweeps
	// (CalendarClamps, LinkInventory).
	allLinks []*link

	Stats [3]ClassStats // indexed by classIdx
}

// New builds the network for the configuration's topology and model.
func New(cfg config.Config) *Network {
	n := &Network{cfg: cfg, clusters: cfg.Topology.Clusters()}
	spec := cfg.Model.Link
	n.clusterOut = make([]*link, n.clusters)
	n.clusterIn = make([]*link, n.clusters)
	for i := range n.clusterOut {
		s := spec
		if cfg.LinkHeterogeneous {
			s = linkOnlySpec(spec, i)
		}
		n.clusterOut[i] = newLink(s)
		n.clusterIn[i] = newLink(s)
	}
	n.cacheOut = newLink(spec.Double())
	n.cacheIn = newLink(spec.Double())
	if cfg.Topology == config.HierRing16 {
		n.ringCW = make([]*link, 4)
		n.ringCCW = make([]*link, 4)
		for i := 0; i < 4; i++ {
			n.ringCW[i] = newLink(spec)
			n.ringCCW[i] = newLink(spec)
		}
	}
	n.routes = make([][]route, n.clusters+1)
	for a := 0; a <= n.clusters; a++ {
		n.routes[a] = make([]route, n.clusters+1)
		for b := 0; b <= n.clusters; b++ {
			n.routes[a][b] = n.buildRoute(n.nodeAt(a), n.nodeAt(b))
			n.initPlans(&n.routes[a][b])
		}
	}
	n.allLinks = append(n.allLinks, n.cacheOut, n.cacheIn)
	n.allLinks = append(n.allLinks, n.clusterOut...)
	n.allLinks = append(n.allLinks, n.clusterIn...)
	n.allLinks = append(n.allLinks, n.ringCW...)
	n.allLinks = append(n.allLinks, n.ringCCW...)
	return n
}

// nodeIdx maps an endpoint into the route table: cluster i at index i, the
// cache node at index clusters.
func (n *Network) nodeIdx(nd Node) int {
	if nd.Kind == CacheNode {
		return n.clusters
	}
	return nd.Index
}

// nodeAt is the inverse of nodeIdx.
func (n *Network) nodeAt(i int) Node {
	if i == n.clusters {
		return Cache
	}
	return Cluster(i)
}

// HasClass reports whether the interconnect provides the class.
func (n *Network) HasClass(c wires.Class) bool {
	return n.cfg.Model.Link.Has(c)
}

// quadOf returns the crossbar group of a cluster in the 16-cluster system.
func quadOf(c int) int { return c / 4 }

// cacheQuad is the quad the centralized cache hangs off in the hierarchical
// topology.
const cacheQuad = 0

// ringPath returns the ring segments (indices into ringCW/ringCCW) and the
// direction to travel from quad a to quad b, choosing the shorter way
// (ties clockwise).
func ringPath(a, b int) (segments []int, clockwise bool) {
	if a == b {
		return nil, true
	}
	cw := (b - a + 4) % 4
	ccw := (a - b + 4) % 4
	if cw <= ccw {
		segs := make([]int, 0, cw)
		for i := 0; i < cw; i++ {
			segs = append(segs, (a+i)%4)
		}
		return segs, true
	}
	segs := make([]int, 0, ccw)
	for i := 0; i < ccw; i++ {
		segs = append(segs, (a-1-i+4)%4)
	}
	return segs, false
}

// hopPlan is one precomputed ring-segment traversal: the resolved calendar
// (class fallback already applied) and the latency added after its grant.
type hopPlan struct {
	cal *sched.Calendar
	lat uint64
}

// xferPlan is the fully resolved recipe for transferring on one (route,
// requested class) pair. Everything branchy about class resolution — the
// link-heterogeneity downgrade at the sender, the per-segment and receiver
// fallback classes, the per-class latencies, which stats bucket to charge,
// and whether the imbalance detector records the injection — depends only on
// the topology and configuration, so it is computed once at construction and
// the per-Transfer work reduces to calendar reservations and adds.
type xferPlan struct {
	outCal  *sched.Calendar
	outLat  uint64
	hops    []hopPlan
	inCal   *sched.Calendar
	statIdx int   // classIdx of the effective (post-downgrade) class
	note    uint8 // imbalance detector: 0 none, 1 record as B, 2 record as PW
}

// route describes the resources and latency of a path.
type route struct {
	out      *link // source endpoint's outgoing link
	in       *link // destination endpoint's incoming link
	ringSegs []int
	ringCW   bool
	// lengthUnits weights energy: one crossbar traversal = 1, each ring hop
	// = 2 (ring hops have twice the latency, hence roughly twice the wire).
	lengthUnits int

	// plans and the peek shortcuts are indexed by the requested classIdx.
	plans   [3]xferPlan
	peekCal [3]*sched.Calendar // sender out-link plane for the requested class
	peekLat [3]uint64          // end-to-end latency for the requested class
}

func (n *Network) routeFor(from, to Node) *route {
	return &n.routes[n.nodeIdx(from)][n.nodeIdx(to)]
}

// initPlans resolves the per-class transfer plans of a route (see xferPlan).
func (n *Network) initPlans(r *route) {
	for idx, c := range [3]wires.Class{wires.B, wires.PW, wires.L} {
		r.peekCal[idx] = r.out.cal[idx]
		r.peekLat[idx] = n.latency(r, c)

		eff := c
		if c != wires.L && !r.out.has(c) {
			if r.out.has(wires.B) {
				eff = wires.B
			} else {
				eff = wires.PW
			}
		}
		pl := &r.plans[idx]
		pl.outCal = r.out.cal[classIdx(eff)]
		pl.outLat = uint64(n.cfg.Latency(eff))
		pl.statIdx = classIdx(eff)
		for _, seg := range r.ringSegs {
			sl := n.ringCCW[seg]
			if r.ringCW {
				sl = n.ringCW[seg]
			}
			segClass := fallbackClass(sl, eff)
			pl.hops = append(pl.hops, hopPlan{
				cal: sl.cal[classIdx(segClass)],
				lat: uint64(n.cfg.RingLatency(segClass)),
			})
		}
		pl.inCal = r.in.cal[classIdx(fallbackClass(r.in, eff))]
		if n.cfg.Tech.PWLoadBalance {
			switch eff {
			case wires.B:
				pl.note = 1
			case wires.PW:
				pl.note = 2
			}
		}
	}
}

// buildRoute computes a route from scratch; used once per endpoint pair at
// construction to fill the route table.
func (n *Network) buildRoute(from, to Node) route {
	r := route{lengthUnits: 1}
	switch {
	case from.Kind == CacheNode:
		r.out = n.cacheOut
	default:
		r.out = n.clusterOut[from.Index]
	}
	switch {
	case to.Kind == CacheNode:
		r.in = n.cacheIn
	default:
		r.in = n.clusterIn[to.Index]
	}
	if n.cfg.Topology == config.HierRing16 {
		fromQuad, toQuad := cacheQuad, cacheQuad
		if from.Kind == ClusterNode {
			fromQuad = quadOf(from.Index)
		}
		if to.Kind == ClusterNode {
			toQuad = quadOf(to.Index)
		}
		r.ringSegs, r.ringCW = ringPath(fromQuad, toQuad)
		r.lengthUnits += 2 * len(r.ringSegs)
	}
	return r
}

// latency returns the end-to-end pipelined latency of the route for a class.
func (n *Network) latency(r *route, c wires.Class) uint64 {
	lat := uint64(n.cfg.Latency(c))
	lat += uint64(len(r.ringSegs)) * uint64(n.cfg.RingLatency(c))
	return lat
}

// Latency exposes the source-to-destination latency in cycles for a class,
// without reserving bandwidth (used by the core to reason about paths).
func (n *Network) Latency(from, to Node, c wires.Class) uint64 {
	return n.latency(n.routeFor(from, to), c)
}

// Transfer sends `bits` from one node to another on the given wire class,
// beginning no earlier than `ready`. It books one transfer slot on every
// link along the path (sender out-link, ring segments, receiver in-link) and
// returns the cycle at which the message is available at the destination.
// Competing transfers queue in unbounded buffers, surfacing as later slots.
//
// Under link heterogeneity (config.LinkHeterogeneous) a wide-class message
// must take whatever wide class its sender's link provides; the requested
// class is downgraded/upgraded accordingly — exactly the inflexibility the
// paper attributes to that design.
func (n *Network) Transfer(from, to Node, c wires.Class, bits int, ready uint64) uint64 {
	r := n.routeFor(from, to)
	pl := &r.plans[classIdx(c)]
	if pl.outCal == nil {
		panic(fmt.Sprintf("noc: link has no %v plane", c))
	}

	slot := pl.outCal.Reserve(ready)
	wait := slot - ready
	pos := slot + pl.outLat // crossbar traversal to ring/endpoint

	for i := range pl.hops {
		h := &pl.hops[i]
		grant := h.cal.Reserve(pos)
		wait += grant - pos
		pos = grant + h.lat
	}

	grant := pl.inCal.Reserve(pos)
	wait += grant - pos
	arrive := grant // in-link reservation is the delivery cycle

	st := &n.Stats[pl.statIdx]
	st.Transfers++
	st.Bits += uint64(bits)
	st.BitHops += uint64(bits) * uint64(r.lengthUnits)
	st.WaitCycles += wait
	if wait > st.MaxWait {
		st.MaxWait = wait
	}

	// Imbalance detector (precomputed: enabled and effective class is wide).
	switch pl.note {
	case 1:
		n.recentB = append(n.recentB, ready)
	case 2:
		n.recentPW = append(n.recentPW, ready)
	}
	return arrive
}

// PeekTransfer estimates the delivery cycle a Transfer would achieve on the
// given class, without reserving bandwidth. It inspects only the sender's
// outgoing link (what a send buffer can see locally); downstream queueing
// is not included.
func (n *Network) PeekTransfer(from, to Node, c wires.Class, ready uint64) uint64 {
	r := n.routeFor(from, to)
	idx := classIdx(c)
	cal := r.peekCal[idx]
	if cal == nil {
		return ^uint64(0)
	}
	return cal.Peek(ready) + r.peekLat[idx]
}

func pruneRecent(s []uint64, cutoff uint64) []uint64 {
	i := 0
	for i < len(s) && s[i] < cutoff {
		i++
	}
	if i > 0 {
		s = append(s[:0], s[i:]...)
	}
	return s
}

// PreferPW implements the Section 4 interconnect-load-imbalance criterion:
// it reports true when, over the last BalanceWindow cycles, the traffic
// injected into the B plane exceeds the PW plane's by more than
// BalanceThreshold (and symmetric diversion back is handled by the caller
// choosing B when it returns false). Injections older than the window are
// discarded.
func (n *Network) PreferPW(now uint64) bool {
	t := n.cfg.Tech
	if !t.PWLoadBalance {
		return false
	}
	var cutoff uint64
	if w := uint64(t.BalanceWindow); now > w {
		cutoff = now - w
	}
	n.recentB = pruneRecent(n.recentB, cutoff)
	n.recentPW = pruneRecent(n.recentPW, cutoff)
	return len(n.recentB)-len(n.recentPW) > t.BalanceThreshold
}

// CalendarClamps returns the number of reservations that fell behind the
// sliding calendar windows across all links. A nonzero value means the
// window is too small for the run's in-flight span and timing is slightly
// approximated; integration tests assert it stays zero.
func (n *Network) CalendarClamps() uint64 {
	var sum uint64
	for _, l := range n.allLinks {
		for _, cal := range l.cal {
			if cal != nil {
				sum += cal.Clamped
			}
		}
	}
	return sum
}

// PreferB is the symmetric arm of the imbalance detector: it reports true
// when recent PW-plane injections exceed the B plane's by more than the
// threshold, so traffic that would default to PW wires (store data, ready
// operands) is steered back to the less congested B plane.
func (n *Network) PreferB(now uint64) bool {
	t := n.cfg.Tech
	if !t.PWLoadBalance {
		return false
	}
	var cutoff uint64
	if w := uint64(t.BalanceWindow); now > w {
		cutoff = now - w
	}
	n.recentB = pruneRecent(n.recentB, cutoff)
	n.recentPW = pruneRecent(n.recentPW, cutoff)
	return len(n.recentPW)-len(n.recentB) > t.BalanceThreshold
}

// Reset restores the network to its just-constructed state: every link
// calendar rewound, traffic statistics and the load-balance injection
// history cleared. Topology and route plans are immutable and stay.
func (n *Network) Reset() {
	for _, l := range n.allLinks {
		for _, cal := range l.cal {
			if cal != nil {
				cal.Reset()
			}
		}
	}
	n.Stats = [3]ClassStats{}
	n.recentB = n.recentB[:0]
	n.recentPW = n.recentPW[:0]
}

// ResetStats zeroes the traffic statistics (for post-warmup measurement).
func (n *Network) ResetStats() {
	n.Stats = [3]ClassStats{}
}

// TotalWaitCycles sums buffered-contention cycles across classes.
func (n *Network) TotalWaitCycles() uint64 {
	var sum uint64
	for _, s := range n.Stats {
		sum += s.WaitCycles
	}
	return sum
}

// StatsFor returns the accumulated stats for a class.
func (n *Network) StatsFor(c wires.Class) ClassStats { return n.Stats[classIdx(c)] }

// LinkInventory describes the physical wires present, for leakage
// accounting: total wire-length units per class across every link in the
// network. Each directional cluster link contributes its own wires x 1
// length unit (links differ under link heterogeneity); cache links are
// double-width and ring segments double-length.
func (n *Network) LinkInventory() map[wires.Class]float64 {
	inv := make(map[wires.Class]float64, 3)
	addLink := func(l *link, lengthUnits float64) {
		for _, c := range []wires.Class{wires.B, wires.PW, wires.L} {
			if w := float64(l.spec.TotalWires(c)); w > 0 {
				inv[c] += w * lengthUnits
			}
		}
	}
	for i := range n.clusterOut {
		addLink(n.clusterOut[i], 1)
		addLink(n.clusterIn[i], 1)
	}
	addLink(n.cacheOut, 1) // spec already double-width
	addLink(n.cacheIn, 1)
	for i := range n.ringCW {
		addLink(n.ringCW[i], 2) // ring hops are double-length
		addLink(n.ringCCW[i], 2)
	}
	return inv
}
