// Package stats provides the lightweight counters, histograms, and summary
// helpers shared by the simulator and the experiment harness.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Counter is a named monotonically increasing count.
type Counter struct {
	Name  string
	Value uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.Value += n }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Value++ }

// Set is an ordered collection of named counters. The zero value is ready to
// use. Lookup is by name; iteration order is insertion order so reports are
// stable.
type Set struct {
	order []string
	byKey map[string]*Counter
}

// Get returns the counter with the given name, creating it if necessary.
func (s *Set) Get(name string) *Counter {
	if s.byKey == nil {
		s.byKey = make(map[string]*Counter)
	}
	if c, ok := s.byKey[name]; ok {
		return c
	}
	c := &Counter{Name: name}
	s.byKey[name] = c
	s.order = append(s.order, name)
	return c
}

// Value returns the current value of the named counter (0 if absent).
func (s *Set) Value(name string) uint64 {
	if s.byKey == nil {
		return 0
	}
	if c, ok := s.byKey[name]; ok {
		return c.Value
	}
	return 0
}

// Names returns the counter names in insertion order.
func (s *Set) Names() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// String renders the set as "name=value" lines sorted by insertion order.
func (s *Set) String() string {
	var b strings.Builder
	for _, name := range s.order {
		fmt.Fprintf(&b, "%s=%d\n", name, s.byKey[name].Value)
	}
	return b.String()
}

// Histogram buckets integer samples. Buckets are fixed-width starting at 0;
// samples beyond the last bucket land in an overflow bucket.
type Histogram struct {
	Width   uint64
	Buckets []uint64
	Over    uint64
	Count   uint64
	Sum     uint64
	MaxSeen uint64
}

// NewHistogram creates a histogram with n buckets of the given width.
func NewHistogram(n int, width uint64) *Histogram {
	if n <= 0 || width == 0 {
		panic("stats: histogram needs positive bucket count and width")
	}
	return &Histogram{Width: width, Buckets: make([]uint64, n)}
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.Count++
	h.Sum += v
	if v > h.MaxSeen {
		h.MaxSeen = v
	}
	idx := v / h.Width
	if idx >= uint64(len(h.Buckets)) {
		h.Over++
		return
	}
	h.Buckets[idx]++
}

// Mean returns the mean of the observed samples (0 if none).
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns an approximate q-quantile (q in [0,1]) using bucket lower
// bounds; overflow samples report the max seen.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	target := uint64(q * float64(h.Count))
	var cum uint64
	for i, b := range h.Buckets {
		cum += b
		if cum > target {
			return uint64(i) * h.Width
		}
	}
	return h.MaxSeen
}

// CumBucket is one cumulative histogram bucket in export form: Count is the
// number of samples <= UpperBound. The final bucket has Inf true (no upper
// bound) and carries the total sample count — the shape Prometheus's
// histogram text format expects for its "le" label series.
type CumBucket struct {
	UpperBound uint64
	Inf        bool
	Count      uint64
}

// Cumulative exports the histogram as cumulative buckets. Bucket i covers
// samples < (i+1)*Width, i.e. its upper bound is inclusive at
// (i+1)*Width-1; the trailing +Inf bucket absorbs the overflow samples.
// Together with Sum and Count this is everything a Prometheus histogram
// exposition needs.
func (h *Histogram) Cumulative() []CumBucket {
	return h.AppendCumulative(make([]CumBucket, 0, len(h.Buckets)+1))
}

// AppendCumulative appends the cumulative buckets to dst and returns the
// extended slice, so periodic exporters (metrics scrapes) can reuse one
// buffer instead of allocating per call.
func (h *Histogram) AppendCumulative(dst []CumBucket) []CumBucket {
	var cum uint64
	for i, b := range h.Buckets {
		cum += b
		dst = append(dst, CumBucket{UpperBound: uint64(i+1)*h.Width - 1, Count: cum})
	}
	return append(dst, CumBucket{Inf: true, Count: h.Count})
}

// Merge adds the samples of other into h. The histograms must have the same
// bucket geometry; Merge panics otherwise, since silently re-bucketing
// would corrupt quantiles.
func (h *Histogram) Merge(other *Histogram) {
	if h.Width != other.Width || len(h.Buckets) != len(other.Buckets) {
		panic("stats: merging histograms with different geometry")
	}
	for i, b := range other.Buckets {
		h.Buckets[i] += b
	}
	h.Over += other.Over
	h.Count += other.Count
	h.Sum += other.Sum
	if other.MaxSeen > h.MaxSeen {
		h.MaxSeen = other.MaxSeen
	}
}

// ArithmeticMean averages a slice of float64 values. The paper reports the
// arithmetic mean of IPCs, which "represents a workload where every program
// executes for an equal number of cycles" [John 2004].
func ArithmeticMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeometricMean returns the geometric mean of strictly positive values.
func GeometricMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	prod := 1.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		prod *= x
	}
	// nth root via repeated sqrt would be lossy; use log-free Newton steps.
	return nthRoot(prod, len(xs))
}

func nthRoot(x float64, n int) float64 {
	if x <= 0 || n <= 0 {
		return 0
	}
	// Newton iteration on f(r) = r^n - x.
	r := x
	if r > 1 {
		r = 1 + (x-1)/float64(n) // reasonable start
	}
	for i := 0; i < 128; i++ {
		rn := 1.0
		for j := 0; j < n-1; j++ {
			rn *= r
		}
		next := ((float64(n)-1)*r + x/rn) / float64(n)
		if diff := next - r; diff < 1e-12 && diff > -1e-12 {
			return next
		}
		r = next
	}
	return r
}

// Table formats aligned columns for terminal reports.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given header columns.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells are printed with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with space-padded columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// SortedKeys returns the sorted keys of a string-keyed map; handy for stable
// report iteration.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
