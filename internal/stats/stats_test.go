package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounterSet(t *testing.T) {
	var s Set
	s.Get("a").Inc()
	s.Get("a").Add(4)
	s.Get("b").Add(2)
	if s.Value("a") != 5 || s.Value("b") != 2 || s.Value("missing") != 0 {
		t.Fatalf("values wrong: %s", s.String())
	}
	if names := s.Names(); len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("insertion order lost: %v", names)
	}
	if !strings.Contains(s.String(), "a=5") {
		t.Errorf("render missing counter: %q", s.String())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 5)
	for _, v := range []uint64{0, 3, 7, 12, 100} {
		h.Observe(v)
	}
	if h.Count != 5 {
		t.Fatalf("count = %d", h.Count)
	}
	if h.Buckets[0] != 2 || h.Buckets[1] != 1 || h.Buckets[2] != 1 {
		t.Errorf("bucketing wrong: %v", h.Buckets)
	}
	if h.Over != 1 {
		t.Errorf("overflow = %d, want 1", h.Over)
	}
	if h.MaxSeen != 100 {
		t.Errorf("max = %d", h.MaxSeen)
	}
	if m := h.Mean(); math.Abs(m-24.4) > 1e-9 {
		t.Errorf("mean = %f", m)
	}
	if q := h.Quantile(0.5); q > 10 {
		t.Errorf("median estimate %d too high", q)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewHistogram(4, 2)
	if h.Quantile(0.9) != 0 || h.Mean() != 0 {
		t.Error("empty histogram should report zeros")
	}
}

func TestArithmeticMean(t *testing.T) {
	if am := ArithmeticMean([]float64{1, 2, 3}); am != 2 {
		t.Errorf("AM = %f", am)
	}
	if ArithmeticMean(nil) != 0 {
		t.Error("empty AM should be 0")
	}
}

func TestGeometricMean(t *testing.T) {
	if gm := GeometricMean([]float64{1, 4}); math.Abs(gm-2) > 1e-9 {
		t.Errorf("GM = %f, want 2", gm)
	}
	if GeometricMean([]float64{1, 0}) != 0 {
		t.Error("GM with zero should be 0")
	}
	if GeometricMean(nil) != 0 {
		t.Error("empty GM should be 0")
	}
}

// TestGeometricMeanProperty: GM of identical values is the value.
func TestGeometricMeanProperty(t *testing.T) {
	f := func(raw uint16) bool {
		v := 0.1 + float64(raw)/100
		gm := GeometricMean([]float64{v, v, v})
		return math.Abs(gm-v) < 1e-6*v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("name", "value")
	tab.AddRow("alpha", 1.5)
	tab.AddRow("b", 12)
	out := tab.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.500") || !strings.Contains(out, "12") {
		t.Errorf("table render wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, separator, two rows
		t.Errorf("table has %d lines, want 4", len(lines))
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"c": 1, "a": 2, "b": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("sorted keys = %v", got)
	}
}

func TestHistogramPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-width histogram accepted")
		}
	}()
	NewHistogram(4, 0)
}

func TestHistogramCumulative(t *testing.T) {
	h := NewHistogram(4, 10)
	for _, v := range []uint64{0, 3, 9, 10, 25, 39, 40, 1000} {
		h.Observe(v)
	}
	cum := h.Cumulative()
	if len(cum) != 5 {
		t.Fatalf("want 4 finite buckets + inf, got %d", len(cum))
	}
	wantBounds := []uint64{9, 19, 29, 39}
	wantCounts := []uint64{3, 4, 5, 6}
	for i := 0; i < 4; i++ {
		if cum[i].Inf || cum[i].UpperBound != wantBounds[i] || cum[i].Count != wantCounts[i] {
			t.Errorf("bucket %d = %+v, want le=%d count=%d", i, cum[i], wantBounds[i], wantCounts[i])
		}
	}
	last := cum[4]
	if !last.Inf || last.Count != h.Count || last.Count != 8 {
		t.Errorf("inf bucket = %+v, want count %d", last, h.Count)
	}
	// Cumulative counts must be monotonic — the Prometheus invariant.
	for i := 1; i < len(cum); i++ {
		if cum[i].Count < cum[i-1].Count {
			t.Errorf("counts not monotonic at %d: %d < %d", i, cum[i].Count, cum[i-1].Count)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(4, 10)
	b := NewHistogram(4, 10)
	for _, v := range []uint64{1, 11, 100} {
		a.Observe(v)
	}
	for _, v := range []uint64{2, 35, 200} {
		b.Observe(v)
	}
	a.Merge(b)
	if a.Count != 6 || a.Sum != 349 || a.MaxSeen != 200 || a.Over != 2 {
		t.Errorf("merged = count %d sum %d max %d over %d", a.Count, a.Sum, a.MaxSeen, a.Over)
	}
	if a.Buckets[0] != 2 || a.Buckets[1] != 1 || a.Buckets[3] != 1 {
		t.Errorf("merged buckets = %v", a.Buckets)
	}

	defer func() {
		if recover() == nil {
			t.Error("mismatched geometry did not panic")
		}
	}()
	a.Merge(NewHistogram(2, 5))
}
