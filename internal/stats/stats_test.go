package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounterSet(t *testing.T) {
	var s Set
	s.Get("a").Inc()
	s.Get("a").Add(4)
	s.Get("b").Add(2)
	if s.Value("a") != 5 || s.Value("b") != 2 || s.Value("missing") != 0 {
		t.Fatalf("values wrong: %s", s.String())
	}
	if names := s.Names(); len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("insertion order lost: %v", names)
	}
	if !strings.Contains(s.String(), "a=5") {
		t.Errorf("render missing counter: %q", s.String())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 5)
	for _, v := range []uint64{0, 3, 7, 12, 100} {
		h.Observe(v)
	}
	if h.Count != 5 {
		t.Fatalf("count = %d", h.Count)
	}
	if h.Buckets[0] != 2 || h.Buckets[1] != 1 || h.Buckets[2] != 1 {
		t.Errorf("bucketing wrong: %v", h.Buckets)
	}
	if h.Over != 1 {
		t.Errorf("overflow = %d, want 1", h.Over)
	}
	if h.MaxSeen != 100 {
		t.Errorf("max = %d", h.MaxSeen)
	}
	if m := h.Mean(); math.Abs(m-24.4) > 1e-9 {
		t.Errorf("mean = %f", m)
	}
	if q := h.Quantile(0.5); q > 10 {
		t.Errorf("median estimate %d too high", q)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewHistogram(4, 2)
	if h.Quantile(0.9) != 0 || h.Mean() != 0 {
		t.Error("empty histogram should report zeros")
	}
}

func TestArithmeticMean(t *testing.T) {
	if am := ArithmeticMean([]float64{1, 2, 3}); am != 2 {
		t.Errorf("AM = %f", am)
	}
	if ArithmeticMean(nil) != 0 {
		t.Error("empty AM should be 0")
	}
}

func TestGeometricMean(t *testing.T) {
	if gm := GeometricMean([]float64{1, 4}); math.Abs(gm-2) > 1e-9 {
		t.Errorf("GM = %f, want 2", gm)
	}
	if GeometricMean([]float64{1, 0}) != 0 {
		t.Error("GM with zero should be 0")
	}
	if GeometricMean(nil) != 0 {
		t.Error("empty GM should be 0")
	}
}

// TestGeometricMeanProperty: GM of identical values is the value.
func TestGeometricMeanProperty(t *testing.T) {
	f := func(raw uint16) bool {
		v := 0.1 + float64(raw)/100
		gm := GeometricMean([]float64{v, v, v})
		return math.Abs(gm-v) < 1e-6*v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("name", "value")
	tab.AddRow("alpha", 1.5)
	tab.AddRow("b", 12)
	out := tab.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.500") || !strings.Contains(out, "12") {
		t.Errorf("table render wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, separator, two rows
		t.Errorf("table has %d lines, want 4", len(lines))
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"c": 1, "a": 2, "b": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("sorted keys = %v", got)
	}
}

func TestHistogramPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-width histogram accepted")
		}
	}()
	NewHistogram(4, 0)
}
