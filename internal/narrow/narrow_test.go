package narrow

import (
	"testing"
	"testing/quick"

	"hetwire/internal/xrand"
)

func TestIsNarrowBoundaries(t *testing.T) {
	cases := []struct {
		v    uint64
		bits int
		want bool
	}{
		{0, 10, true},
		{1023, 10, true},
		{1024, 10, false},
		{1 << 40, 10, false},
		{5, 0, false},
		{^uint64(0), 64, true},
		{^uint64(0), 63, false},
	}
	for _, c := range cases {
		if got := IsNarrow(c.v, c.bits); got != c.want {
			t.Errorf("IsNarrow(%d, %d) = %v, want %v", c.v, c.bits, got, c.want)
		}
	}
}

// TestIsNarrowProperty: property — IsNarrow(v, 10) iff v < 1024.
func TestIsNarrowProperty(t *testing.T) {
	f := func(v uint64) bool { return IsNarrow(v, 10) == (v < 1024) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPredictorRequiresSaturation: a PC must produce three narrow results
// before being predicted narrow — the high-confidence policy.
func TestPredictorRequiresSaturation(t *testing.T) {
	p := NewPredictor(8192)
	const pc = 0x1000
	for i := 0; i < 3; i++ {
		if p.Predict(pc) {
			t.Fatalf("predicted narrow after only %d observations", i)
		}
		p.Record(pc, true)
	}
	if !p.Predict(pc) {
		t.Error("not predicted narrow after counter saturation")
	}
	// One wide result de-saturates immediately.
	p.Record(pc, false)
	if p.Predict(pc) {
		t.Error("still predicted narrow after a wide result")
	}
}

// TestStablyNarrowInstructionsReachPaperRates reproduces the Section 4
// claim: with mostly-stable per-PC width behaviour, the predictor finds
// ~95% of narrow results and only ~2% of predicted-narrow values are wide.
func TestStablyNarrowInstructionsReachPaperRates(t *testing.T) {
	p := NewPredictor(8192)
	src := xrand.New(99)
	// 512 static instructions: 40% always narrow, 40% always wide, 20%
	// mostly narrow (95% narrow) — a plausible SPEC-like PC population.
	kind := make([]int, 512)
	for i := range kind {
		switch {
		case i < 205:
			kind[i] = 0 // always narrow
		case i < 410:
			kind[i] = 1 // always wide
		default:
			kind[i] = 2 // 95% narrow
		}
	}
	for i := 0; i < 300000; i++ {
		pcIdx := src.Intn(512)
		pc := uint64(0x40000 + pcIdx*4)
		var isNarrow bool
		switch kind[pcIdx] {
		case 0:
			isNarrow = true
		case 1:
			isNarrow = false
		default:
			isNarrow = src.Bool(0.95)
		}
		p.Record(pc, isNarrow)
	}
	if cov := p.Coverage(); cov < 0.90 {
		t.Errorf("coverage = %.3f, want >= 0.90 (paper: 0.95)", cov)
	}
	if fr := p.FalseNarrowRate(); fr > 0.04 {
		t.Errorf("false-narrow rate = %.3f, want <= 0.04 (paper: 0.02)", fr)
	}
}

// TestPredictorStatsConsistency: property — TP+FP == PredictedNarrow and
// TP <= ActualNarrow for any outcome sequence.
func TestPredictorStatsConsistency(t *testing.T) {
	p := NewPredictor(64)
	f := func(pcRaw uint8, narrow bool) bool {
		p.Record(uint64(pcRaw)*4, narrow)
		return p.TruePositives+p.FalsePositives == p.PredictedNarrow &&
			p.TruePositives <= p.ActualNarrow &&
			p.Predictions >= p.PredictedNarrow
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRatesWithNoData(t *testing.T) {
	p := NewPredictor(8)
	if p.Coverage() != 0 || p.FalseNarrowRate() != 0 {
		t.Error("rates must be zero before any data")
	}
}

func TestNewPredictorValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two size accepted")
		}
	}()
	NewPredictor(1000)
}

// TestFrequentValueTableLearnsHotValues: repeated values become encodable;
// one-off values do not displace them.
func TestFrequentValueTableLearnsHotValues(t *testing.T) {
	f := NewFrequentValueTable()
	hot := []uint64{0xDEAD0000, 42, 0x10000000}
	for i := 0; i < 200; i++ {
		for _, v := range hot {
			f.Observe(v)
		}
		f.Observe(uint64(0xF000_0000) + uint64(i)) // noise, never repeats
	}
	for _, v := range hot {
		if !f.Contains(v) {
			t.Errorf("hot value %#x not in table", v)
		}
	}
	if f.Contains(0xF000_0005) {
		t.Error("one-off noise value occupies the table")
	}
	if f.HitRate() == 0 {
		t.Error("hit rate not tracked")
	}
}

// TestFrequentValueTableAdapts: when the hot set changes, the table follows.
func TestFrequentValueTableAdapts(t *testing.T) {
	f := NewFrequentValueTable()
	for i := 0; i < 100; i++ {
		f.Observe(111)
	}
	if !f.Contains(111) {
		t.Fatal("value not learned")
	}
	// New regime: nine distinct hot values cycle; 111 never recurs. The
	// 8-entry table must eventually drop 111.
	for i := 0; i < 3000; i++ {
		f.Observe(uint64(200 + i%9))
	}
	if f.Contains(111) {
		t.Error("stale value survived a full working-set change")
	}
}
