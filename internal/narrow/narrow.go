// Package narrow implements the paper's narrow bit-width operand machinery
// (Section 4): a leading-zero-based width check (the PowerPC 603 precedent)
// deciding whether a result fits the 10 data bits an 18-bit L-wire transfer
// can carry, and the 8K-entry 2-bit saturating-counter predictor that
// supplies this information early in the pipeline. The paper reports the
// predictor identifies 95% of narrow results while mispredicting only 2% of
// predicted-narrow values; tests reproduce those rates on workload-like
// value streams.
package narrow

// IsNarrow reports whether a result value fits in maxBits bits, i.e. lies
// in [0, 2^maxBits). This is what leading-zero-detect hardware computes.
func IsNarrow(value uint64, maxBits int) bool {
	if maxBits <= 0 {
		return false
	}
	if maxBits >= 64 {
		return true
	}
	return value < 1<<uint(maxBits)
}

// Predictor is an 8K-entry (configurable) table of 2-bit saturating
// counters indexed by instruction PC. A result is predicted narrow only
// when its counter is saturated at 3 — the paper's high-confidence policy,
// which trades a little coverage for a very low false-narrow rate.
type Predictor struct {
	table []uint8
	mask  uint64

	// Statistics for the Section 4 claims.
	Predictions     uint64 // total queries
	PredictedNarrow uint64 // predicted narrow (counter == 3)
	ActualNarrow    uint64 // outcomes that were narrow
	TruePositives   uint64 // predicted narrow and actually narrow
	FalsePositives  uint64 // predicted narrow but wide (must re-send)
}

// NewPredictor builds a predictor with the given number of entries
// (power of two; the paper uses 8K).
func NewPredictor(entries int) *Predictor {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("narrow: predictor entries must be a positive power of two")
	}
	return &Predictor{table: make([]uint8, entries), mask: uint64(entries - 1)}
}

func (p *Predictor) idx(pc uint64) uint64 { return (pc >> 2) & p.mask }

// Predict reports whether the instruction at pc is predicted to produce a
// narrow result (counter saturated at 3).
func (p *Predictor) Predict(pc uint64) bool {
	return p.table[p.idx(pc)] == 3
}

// Record scores the prediction against the actual outcome and trains the
// counter. It returns the prediction that was in effect.
func (p *Predictor) Record(pc uint64, actualNarrow bool) bool {
	i := p.idx(pc)
	pred := p.table[i] == 3

	p.Predictions++
	if pred {
		p.PredictedNarrow++
		if actualNarrow {
			p.TruePositives++
		} else {
			p.FalsePositives++
		}
	}
	if actualNarrow {
		p.ActualNarrow++
		if p.table[i] < 3 {
			p.table[i]++
		}
	} else if p.table[i] > 0 {
		p.table[i]--
	}
	return pred
}

// ResetStats zeroes the statistics, keeping the learned counters.
func (p *Predictor) ResetStats() {
	p.Predictions, p.PredictedNarrow, p.ActualNarrow = 0, 0, 0
	p.TruePositives, p.FalsePositives = 0, 0
}

// Reset restores the predictor to its just-constructed state, reusing the
// counter table.
func (p *Predictor) Reset() {
	clear(p.table)
	p.ResetStats()
}

// Coverage returns the fraction of actually-narrow results that were
// predicted narrow (the paper reports 95%).
func (p *Predictor) Coverage() float64 {
	if p.ActualNarrow == 0 {
		return 0
	}
	return float64(p.TruePositives) / float64(p.ActualNarrow)
}

// FalseNarrowRate returns the fraction of predicted-narrow results that
// turned out wide (the paper reports 2%).
func (p *Predictor) FalseNarrowRate() float64 {
	if p.PredictedNarrow == 0 {
		return 0
	}
	return float64(p.FalsePositives) / float64(p.PredictedNarrow)
}

// FrequentValueTable tracks the most frequent recent result values (after
// Yang, Zhang & Gupta, "Frequent Value Compression in Data Caches", cited
// by the paper as a further compaction opportunity): a value present in the
// table can be encoded by its 3-bit index and therefore rides L-wires even
// when it does not fit the 10-bit narrow window. Producer- and
// consumer-side tables are assumed to stay in sync (they observe the same
// committed value stream).
type FrequentValueTable struct {
	entries [8]uint64
	counts  [8]uint32
	valid   [8]bool

	Hits    uint64
	Lookups uint64
}

// NewFrequentValueTable returns an empty 8-entry table.
func NewFrequentValueTable() *FrequentValueTable { return &FrequentValueTable{} }

// Reset empties the table and zeroes its statistics.
func (f *FrequentValueTable) Reset() { *f = FrequentValueTable{} }

// Contains reports whether the value is currently encodable.
func (f *FrequentValueTable) Contains(v uint64) bool {
	f.Lookups++
	for i, e := range f.entries {
		if f.valid[i] && e == v {
			f.Hits++
			return true
		}
	}
	return false
}

// Observe trains the table with a produced value: hits strengthen an entry,
// misses decay all entries and replace the weakest (a saturating-frequency
// scheme that needs no global counting).
func (f *FrequentValueTable) Observe(v uint64) {
	weakest, weakestCount := 0, uint32(1<<31)
	for i, e := range f.entries {
		if f.valid[i] && e == v {
			if f.counts[i] < 1<<24 {
				f.counts[i]++
			}
			return
		}
		if !f.valid[i] {
			weakest, weakestCount = i, 0
			break
		}
		if f.counts[i] < weakestCount {
			weakest, weakestCount = i, f.counts[i]
		}
	}
	// Decay so stale values eventually lose their slot.
	for i := range f.counts {
		if f.counts[i] > 0 {
			f.counts[i]--
		}
	}
	if weakestCount == 0 || f.counts[weakest] == 0 {
		f.entries[weakest] = v
		f.counts[weakest] = 1
		f.valid[weakest] = true
	}
}

// HitRate returns the fraction of lookups that found an encodable value.
func (f *FrequentValueTable) HitRate() float64 {
	if f.Lookups == 0 {
		return 0
	}
	return float64(f.Hits) / float64(f.Lookups)
}
