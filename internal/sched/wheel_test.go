package sched

import (
	"testing"

	"hetwire/internal/xrand"
)

// TestWheelHeapDifferential is the equivalence gate for the event-wheel: it
// drives a Wheel and a Heap of the same size through long randomized
// operation sequences that respect the documented monotone-query contract
// (non-decreasing query times; Commit follows Acquire with a release at or
// after the granted cycle) and asserts every observable output — Acquire
// grants, Free counts, Occupied counts — is bit-identical. Release spreads
// are drawn large enough to force the wheel through several ring growths, so
// the growth path is covered too.
func TestWheelHeapDifferential(t *testing.T) {
	for _, tc := range []struct {
		name      string
		slots     int
		maxStep   uint64 // max query-time advance per operation
		maxSpread uint64 // max release - grant distance
	}{
		{"tight", 4, 3, 8},
		{"pipeline-like", 32, 2, 4096},
		{"sparse-queries", 15, 5000, 2000},
		{"forces-growth", 8, 7, 3 * wheelMinWindow},
		{"single-slot", 1, 11, 700},
	} {
		t.Run(tc.name, func(t *testing.T) {
			src := xrand.New(0xD1FF + uint64(tc.slots))
			w := NewWheel(tc.slots)
			h := NewHeap(tc.slots)
			now := uint64(0)
			for op := 0; op < 30000; op++ {
				now += src.Uint64n(tc.maxStep + 1)
				switch src.Intn(4) {
				case 0: // acquire + commit
					gw, gh := w.Acquire(now), h.Acquire(now)
					if gw != gh {
						t.Fatalf("op %d: Acquire(%d): wheel %d, heap %d", op, now, gw, gh)
					}
					release := gh + 1 + src.Uint64n(tc.maxSpread)
					w.Commit(release)
					h.Commit(release)
				case 1: // free query
					fw, fh := w.Free(now), h.Free(now)
					if fw != fh {
						t.Fatalf("op %d: Free(%d): wheel %d, heap %d", op, now, fw, fh)
					}
				case 2: // occupancy telemetry (no state change)
					if w.Occupied() != h.Occupied() {
						t.Fatalf("op %d: Occupied: wheel %d, heap %d", op, w.Occupied(), h.Occupied())
					}
				default: // acquire without advancing time again (repeat query)
					gw, gh := w.Acquire(now), h.Acquire(now)
					if gw != gh {
						t.Fatalf("op %d: repeat Acquire(%d): wheel %d, heap %d", op, now, gw, gh)
					}
					release := gh + src.Uint64n(tc.maxSpread + 1)
					w.Commit(release)
					h.Commit(release)
				}
			}
			if w.Size() != h.Size() {
				t.Fatalf("Size: wheel %d, heap %d", w.Size(), h.Size())
			}
		})
	}
}

// TestWheelResetReplay proves Reset restores a freshly-constructed state: a
// wheel that has been run, reset, and re-run produces exactly the grant
// sequence of a brand-new wheel.
func TestWheelResetReplay(t *testing.T) {
	run := func(w *Wheel, seed uint64) []uint64 {
		src := xrand.New(seed)
		var out []uint64
		now := uint64(0)
		for op := 0; op < 5000; op++ {
			now += src.Uint64n(4)
			g := w.Acquire(now)
			out = append(out, g, uint64(w.Free(now)), uint64(w.Occupied()))
			w.Commit(g + 1 + src.Uint64n(6000))
		}
		return out
	}
	w := NewWheel(12)
	run(w, 1) // dirty the wheel (including growth) with one sequence...
	w.Reset()
	got := run(w, 2) // ...then replay a different one after Reset
	want := run(NewWheel(12), 2)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replay diverged at step %d: reset wheel %d, fresh wheel %d", i, got[i], want[i])
		}
	}
}

// TestCalendarResetReplay proves the watermark-based Calendar.Reset restores
// a just-constructed state, including after window slides and span bookings.
func TestCalendarResetReplay(t *testing.T) {
	run := func(c *Calendar, seed uint64) []uint64 {
		src := xrand.New(seed)
		var out []uint64
		at := uint64(0)
		for op := 0; op < 4000; op++ {
			at += src.Uint64n(40)
			switch src.Intn(3) {
			case 0:
				out = append(out, c.Reserve(at))
			case 1:
				out = append(out, c.ReserveSpan(at, 1+src.Intn(4)))
			default:
				out = append(out, c.Peek(at), uint64(c.Load(at)))
			}
		}
		return append(out, c.Clamped, c.Reservations)
	}
	c := NewCalendar(2, 1024)
	run(c, 7)
	c.Reset()
	got := run(c, 8)
	want := run(NewCalendar(2, 1024), 8)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replay diverged at step %d: reset calendar %d, fresh calendar %d", i, got[i], want[i])
		}
	}
}

// BenchmarkWheelSteadyState measures the wheel's per-operation cost in the
// pattern the core uses (free-scan, acquire, commit) and asserts zero
// steady-state allocations.
func BenchmarkWheelSteadyState(b *testing.B) {
	w := NewWheel(15)
	b.ReportAllocs()
	now := uint64(0)
	for i := 0; i < b.N; i++ {
		now++
		_ = w.Free(now)
		g := w.Acquire(now)
		w.Commit(g + 12)
	}
}

func BenchmarkHeapSteadyState(b *testing.B) {
	h := NewHeap(15)
	b.ReportAllocs()
	now := uint64(0)
	for i := 0; i < b.N; i++ {
		now++
		_ = h.Free(now)
		g := h.Acquire(now)
		h.Commit(g + 12)
	}
}
