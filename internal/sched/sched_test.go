package sched

import (
	"testing"
	"testing/quick"

	"hetwire/internal/xrand"
)

func TestCalendarSerializesOverCapacity(t *testing.T) {
	c := NewCalendar(1, 0)
	got := []uint64{c.Reserve(10), c.Reserve(10), c.Reserve(10)}
	want := []uint64{10, 11, 12}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("reservation %d at cycle %d, want %d", i, got[i], want[i])
		}
	}
}

func TestCalendarCapacityTwo(t *testing.T) {
	c := NewCalendar(2, 0)
	if a, b := c.Reserve(5), c.Reserve(5); a != 5 || b != 5 {
		t.Errorf("two reservations should share cycle 5, got %d and %d", a, b)
	}
	if x := c.Reserve(5); x != 6 {
		t.Errorf("third reservation should spill to cycle 6, got %d", x)
	}
}

func TestCalendarOutOfOrderRequests(t *testing.T) {
	c := NewCalendar(1, 0)
	if x := c.Reserve(100); x != 100 {
		t.Fatalf("got %d", x)
	}
	// An earlier request must still find cycle 50 free.
	if x := c.Reserve(50); x != 50 {
		t.Errorf("earlier free cycle not granted: got %d, want 50", x)
	}
}

func TestCalendarSlidesWithoutLosingCapacityInvariant(t *testing.T) {
	c := NewCalendar(1, 1024)
	src := xrand.New(42)
	seen := make(map[uint64]int)
	cycle := uint64(0)
	for i := 0; i < 50000; i++ {
		cycle += uint64(src.Intn(3))
		got := c.Reserve(cycle)
		seen[got]++
		if seen[got] > 1 {
			t.Fatalf("cycle %d double-booked on a capacity-1 calendar", got)
		}
	}
	if c.Clamped != 0 {
		t.Errorf("window clamped %d times; window too small for this access pattern", c.Clamped)
	}
}

func TestCalendarFarJump(t *testing.T) {
	c := NewCalendar(1, 1024)
	c.Reserve(0)
	if x := c.Reserve(1 << 30); x != 1<<30 {
		t.Errorf("far-future reservation: got %d", x)
	}
	// Era-stamped cells have no sliding window to fall behind: an earlier
	// free cycle is still granted after a far-future jump, and nothing is
	// ever clamped. (The former sliding-window implementation clamped such
	// requests to the window base; that was an artifact the engine never
	// exercised — integration tests assert Clamped == 0.)
	if x := c.Reserve(5); x != 5 {
		t.Errorf("earlier free cycle after far jump: got %d, want 5", x)
	}
	if c.Clamped != 0 {
		t.Errorf("Clamped = %d, want 0", c.Clamped)
	}
	// The far-future cycle shares a ring cell with 1<<30 + k*1024 cycles;
	// a fresh era reinterprets it as empty.
	if x := c.Reserve(1<<30 + 1024); x != 1<<30+1024 {
		t.Errorf("next-era reservation on a stale cell: got %d", x)
	}
}

func TestReserveSpan(t *testing.T) {
	c := NewCalendar(1, 0)
	if x := c.ReserveSpan(10, 4); x != 10 {
		t.Fatalf("span start = %d, want 10", x)
	}
	// Cycles 10..13 are booked; the next span of 2 must start at 14.
	if x := c.ReserveSpan(10, 2); x != 14 {
		t.Errorf("second span start = %d, want 14", x)
	}
	// A single reservation also lands at/after 16 because 14,15 are taken.
	if x := c.Reserve(13); x != 16 {
		t.Errorf("single after spans = %d, want 16", x)
	}
}

// TestCalendarNeverExceedsCapacity is the core property: for any request
// sequence within the window, the per-cycle booking count never exceeds
// capacity.
func TestCalendarNeverExceedsCapacity(t *testing.T) {
	f := func(capRaw uint8, reqs []uint16) bool {
		capacity := int(capRaw%4) + 1
		c := NewCalendar(capacity, 4096)
		counts := make(map[uint64]int)
		for _, r := range reqs {
			got := c.Reserve(uint64(r))
			counts[got]++
			if counts[got] > capacity {
				return false
			}
			if got < uint64(r) {
				return false // must never schedule before the request
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHeapUnderCapacityIsImmediate(t *testing.T) {
	h := NewHeap(3)
	for i := 0; i < 3; i++ {
		if at := h.Acquire(5); at != 5 {
			t.Fatalf("acquire %d delayed to %d", i, at)
		}
		h.Commit(100)
	}
	// Pool full with release=100: next acquire at 5 must wait until 100.
	if at := h.Acquire(5); at != 100 {
		t.Errorf("full pool acquire = %d, want 100", at)
	}
	// But a request after the release time proceeds immediately.
	if at := h.Acquire(150); at != 150 {
		t.Errorf("post-release acquire = %d, want 150", at)
	}
}

func TestHeapEvictsEarliestRelease(t *testing.T) {
	h := NewHeap(2)
	h.Commit(10)
	h.Commit(20)
	// Full; earliest release is 10.
	if at := h.Acquire(0); at != 10 {
		t.Fatalf("acquire = %d, want 10", at)
	}
	h.Commit(30) // reuses the release-10 slot
	if at := h.Acquire(0); at != 20 {
		t.Errorf("acquire = %d, want 20 (the remaining earliest)", at)
	}
}

func TestHeapFree(t *testing.T) {
	h := NewHeap(4)
	h.Commit(10)
	h.Commit(20)
	if f := h.Free(5); f != 2 { // both slots still held at cycle 5
		t.Errorf("Free(5) = %d, want 2", f)
	}
	if f := h.Free(15); f != 3 { // the release-10 slot is free again
		t.Errorf("Free(15) = %d, want 3", f)
	}
	if f := h.Free(25); f != 4 { // everything released
		t.Errorf("Free(25) = %d, want 4", f)
	}
	if h.Size() != 4 {
		t.Errorf("Size = %d, want 4", h.Size())
	}
}

// TestHeapLazyExpiryMatchesScan cross-checks the lazy-expiry fast path
// against a straightforward scan model under monotone query times (the
// documented Heap contract).
func TestHeapLazyExpiryMatchesScan(t *testing.T) {
	h := NewHeap(3)
	type model struct{ release []uint64 }
	m := model{}
	free := func(now uint64) int {
		used := 0
		for _, r := range m.release {
			if r > now {
				used++
			}
		}
		return 3 - used
	}
	now := uint64(0)
	rng := uint64(12345)
	for i := 0; i < 2000; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		now += rng % 3
		if gotAt, wantFree := h.Acquire(now), free(now); wantFree == 0 {
			// Full: the model's earliest release bounds the grant.
			min := m.release[0]
			for _, r := range m.release {
				if r < min {
					min = r
				}
			}
			if want := max(min, now); gotAt != want {
				t.Fatalf("step %d: Acquire(%d) = %d, want %d", i, now, gotAt, want)
			}
		} else if gotAt != now {
			t.Fatalf("step %d: Acquire(%d) = %d, want immediate", i, now, gotAt)
		}
		rel := now + 1 + rng%7
		h.Commit(rel)
		// Model commit: evict entries the heap would consider expired or,
		// when full, the earliest release.
		keep := m.release[:0]
		for _, r := range m.release {
			if r > now {
				keep = append(keep, r)
			}
		}
		m.release = keep
		if len(m.release) == 3 {
			minI := 0
			for j, r := range m.release {
				if r < m.release[minI] {
					minI = j
				}
			}
			m.release = append(m.release[:minI], m.release[minI+1:]...)
		}
		m.release = append(m.release, rel)
		if got, want := h.Free(now), free(now); got != want {
			t.Fatalf("step %d: Free(%d) = %d, want %d", i, now, got, want)
		}
	}
}

// TestHeapOrderingProperty: property — when every occupant's release time is
// at or after its acquire time (true for all pipeline resources: an entry is
// freed after it is granted), successive acquire times are monotone.
func TestHeapOrderingProperty(t *testing.T) {
	f := func(rels []uint16) bool {
		h := NewHeap(4)
		var lastMin uint64
		for _, r := range rels {
			at := h.Acquire(0)
			if at < lastMin {
				return false // the earliest-free time can only move forward
			}
			lastMin = at
			h.Commit(at + uint64(r))
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestConstructorsPanicOnBadInput(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("NewCalendar(0)", func() { NewCalendar(0, 0) })
	mustPanic("NewHeap(0)", func() { NewHeap(0) })
}

func TestPeekDoesNotBook(t *testing.T) {
	c := NewCalendar(1, 0)
	if c.Peek(10) != 10 {
		t.Fatal("peek on empty calendar")
	}
	if c.Peek(10) != 10 {
		t.Fatal("peek must not consume capacity")
	}
	c.Reserve(10)
	if c.Peek(10) != 11 {
		t.Fatal("peek should see the booked slot")
	}
	if got := c.Reserve(10); got != 11 {
		t.Fatalf("reserve after peek = %d, want 11", got)
	}
}
