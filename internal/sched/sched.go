// Package sched provides cycle calendars: sliding-window reservation
// structures that model resources with a fixed per-cycle capacity (network
// link slots, cache ports, functional units). The simulator books each
// event into the earliest feasible cycle, which models out-of-order resource
// arbitration with buffering: when more requests compete for a cycle than
// the capacity allows, the excess is pushed to later cycles — exactly the
// paper's "one transfer is effected in that cycle, while the others are
// buffered" semantics with unbounded buffers.
package sched

// Calendar reserves capacity-limited slots on a cycle timeline. The zero
// value is not usable; construct with NewCalendar. Not safe for concurrent
// use.
type Calendar struct {
	capacity uint16
	counts   []uint16 // ring buffer of per-cycle reservation counts; len is a power of two
	mask     uint64   // len(counts) - 1
	base     uint64   // cycle number of ring index baseIdx
	baseIdx  int
	// Clamped counts reservations requested before the sliding window's
	// base; these are booked at the base instead. With an adequately sized
	// window this never happens in practice, and integration tests assert
	// that it stays zero.
	Clamped uint64
	// Reservations is the total number of successful bookings.
	Reservations uint64
}

// DefaultWindow comfortably exceeds the maximum in-flight timespan of the
// simulated machine (a 480-entry ROB with 300-cycle memory misses spans a
// few thousand cycles; the window is 64K cycles).
const DefaultWindow = 1 << 16

// NewCalendar creates a calendar with the given per-cycle capacity and
// window size (rounded up to a minimum of 1024 cycles and to the next power
// of two, so ring indexing is a mask instead of a division).
func NewCalendar(capacity, window int) *Calendar {
	if capacity <= 0 {
		panic("sched: calendar capacity must be positive")
	}
	if window < 1024 {
		window = 1024
	}
	// Round up to a power of two. The window size is behaviour-neutral:
	// reservation results depend only on the booked counts, which are
	// identical for any window large enough to avoid clamping.
	w := 1024
	for w < window {
		w <<= 1
	}
	return &Calendar{
		capacity: uint16(capacity),
		counts:   make([]uint16, w),
		mask:     uint64(w - 1),
	}
}

// Capacity returns the per-cycle capacity.
func (c *Calendar) Capacity() int { return int(c.capacity) }

// slideTo advances the window so that cycle is inside it.
func (c *Calendar) slideTo(cycle uint64) {
	limit := c.base + uint64(len(c.counts))
	if cycle < limit {
		return
	}
	advance := cycle - limit + uint64(len(c.counts))/4 + 1
	if advance > uint64(len(c.counts)) {
		// Jumped far beyond the window: reset everything.
		clear(c.counts)
		c.base = cycle
		c.baseIdx = 0
		return
	}
	// Zero the cells leaving the window in (at most) two contiguous chunks.
	end := c.baseIdx + int(advance)
	if end <= len(c.counts) {
		clear(c.counts[c.baseIdx:end])
	} else {
		clear(c.counts[c.baseIdx:])
		clear(c.counts[:end-len(c.counts)])
	}
	c.baseIdx = int(uint64(end) & c.mask)
	c.base += advance
}

func (c *Calendar) idx(cycle uint64) int {
	return int((uint64(c.baseIdx) + (cycle - c.base)) & c.mask)
}

// Reserve books one unit of capacity at the earliest cycle >= at and returns
// that cycle. Requests earlier than the window base are clamped to the base
// (counted in Clamped).
func (c *Calendar) Reserve(at uint64) uint64 {
	if at < c.base {
		at = c.base
		c.Clamped++
	}
	c.slideTo(at)
	i := uint64(c.idx(at))
	limit := c.base + uint64(len(c.counts))
	for {
		if c.counts[i] < c.capacity {
			c.counts[i]++
			c.Reservations++
			return at
		}
		at++
		if at >= limit {
			c.slideTo(at)
			i = uint64(c.idx(at))
			limit = c.base + uint64(len(c.counts))
			continue
		}
		i = (i + 1) & c.mask
	}
}

// ReserveSpan books one unit of capacity in each of n consecutive cycles
// starting at the earliest feasible cycle >= at where the whole span fits,
// and returns the start cycle. Used for multi-cycle resource occupancy
// (e.g. unpipelined dividers).
func (c *Calendar) ReserveSpan(at uint64, n int) uint64 {
	if n <= 1 {
		return c.Reserve(at)
	}
	if at < c.base {
		at = c.base
		c.Clamped++
	}
outer:
	for {
		c.slideTo(at + uint64(n))
		for k := 0; k < n; k++ {
			if c.counts[c.idx(at+uint64(k))] >= c.capacity {
				at = at + uint64(k) + 1
				continue outer
			}
		}
		for k := 0; k < n; k++ {
			c.counts[c.idx(at+uint64(k))]++
		}
		c.Reservations++
		return at
	}
}

// Peek returns the cycle Reserve(at) would grant, without booking it.
func (c *Calendar) Peek(at uint64) uint64 {
	if at < c.base {
		at = c.base
	}
	c.slideTo(at)
	i := uint64(c.idx(at))
	limit := c.base + uint64(len(c.counts))
	for {
		if c.counts[i] < c.capacity {
			return at
		}
		at++
		if at >= limit {
			c.slideTo(at)
			i = uint64(c.idx(at))
			limit = c.base + uint64(len(c.counts))
			continue
		}
		i = (i + 1) & c.mask
	}
}

// Load returns the number of reservations currently booked at the cycle
// (0 for cycles outside the window).
func (c *Calendar) Load(cycle uint64) int {
	if cycle < c.base || cycle >= c.base+uint64(len(c.counts)) {
		return 0
	}
	return int(c.counts[c.idx(cycle)])
}

// Heap is a bounded-occupancy min-heap of release times, modelling a
// resource pool of fixed size where each occupant holds a slot until its
// release time (issue-queue entries held until issue, rename registers held
// until commit). Acquire returns the earliest cycle at which a slot is
// guaranteed free given the request time.
//
// Query times must be non-decreasing: Acquire and Free lazily expire
// occupants whose release time has passed, so a query at cycle t discards
// state that an earlier-cycle query could still observe. Every pipeline
// resource satisfies this naturally (requests are issued along a monotone
// dispatch frontier); the expiry makes both operations O(1) amortized
// instead of an O(slots) scan per call.
type Heap struct {
	release []uint64
	size    int
}

// NewHeap creates a pool with the given number of slots.
func NewHeap(slots int) *Heap {
	if slots <= 0 {
		panic("sched: heap needs at least one slot")
	}
	return &Heap{release: make([]uint64, 0, slots), size: slots}
}

// expire drops occupants whose slots are free at cycle now.
func (h *Heap) expire(now uint64) {
	for len(h.release) > 0 && h.release[0] <= now {
		h.popMin()
	}
}

// Acquire requests a slot at cycle `at`; it returns the earliest cycle >= at
// when a slot is free. The caller must then call Commit with the slot's
// release time.
func (h *Heap) Acquire(at uint64) uint64 {
	h.expire(at)
	if len(h.release) < h.size {
		return at
	}
	return h.release[0]
}

// Commit records that the slot acquired most recently will be held until
// release. It evicts the earliest-releasing entry if the pool is full
// (that entry's slot is the one being reused).
func (h *Heap) Commit(release uint64) {
	if len(h.release) == h.size {
		h.popMin()
	}
	h.push(release)
}

// Free returns the number of currently unused slots assuming the given
// current cycle (entries with release <= now are free).
func (h *Heap) Free(now uint64) int {
	h.expire(now)
	return h.size - len(h.release)
}

// Size returns the pool size.
func (h *Heap) Size() int { return h.size }

// Occupied returns the number of resident entries, counting entries whose
// release time has passed but that lazy expiry has not yet dropped. Unlike
// Free it touches no state, so telemetry may call it at any cycle without
// violating the monotone-query contract; the value is an upper bound on the
// true occupancy at the last queried cycle.
func (h *Heap) Occupied() int { return len(h.release) }

func (h *Heap) push(v uint64) {
	h.release = append(h.release, v)
	i := len(h.release) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.release[parent] <= h.release[i] {
			break
		}
		h.release[parent], h.release[i] = h.release[i], h.release[parent]
		i = parent
	}
}

func (h *Heap) popMin() uint64 {
	min := h.release[0]
	last := len(h.release) - 1
	h.release[0] = h.release[last]
	h.release = h.release[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.release) && h.release[l] < h.release[smallest] {
			smallest = l
		}
		if r < len(h.release) && h.release[r] < h.release[smallest] {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.release[i], h.release[smallest] = h.release[smallest], h.release[i]
		i = smallest
	}
	return min
}
