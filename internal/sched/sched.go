// Package sched provides cycle calendars: reservation structures that model
// resources with a fixed per-cycle capacity (network link slots, cache
// ports, functional units). The simulator books each event into the
// earliest feasible cycle, which models out-of-order resource arbitration
// with buffering: when more requests compete for a cycle than the capacity
// allows, the excess is pushed to later cycles — exactly the paper's "one
// transfer is effected in that cycle, while the others are buffered"
// semantics with unbounded buffers.
package sched

// Calendar reserves capacity-limited slots on a cycle timeline. The zero
// value is not usable; construct with NewCalendar. Not safe for concurrent
// use.
//
// The timeline is stored as an era-stamped ring: cell i describes cycle
// era*W + i, where W is the ring size and the era is packed into the cell
// alongside the booking count (era<<8 | count). A cell whose stamp does not
// match the requested cycle's era belongs to a cycle at least W away and
// reads as empty, so advancing through time never clears or slides
// anything — stale cells are reinterpreted in place. The era field is 24
// bits wide, so cycles alias only after 2^24 eras (2^40 cycles with the
// default ring); simulated runs are orders of magnitude shorter.
type Calendar struct {
	capacity uint16
	cells    []uint32 // era<<8 | count per cycle; len is a power of two
	mask     uint64   // len(cells) - 1
	log2W    uint     // log2(len(cells)); cycle>>log2W is the era
	// hiCycle is the highest cycle ever booked — the dirty-region watermark
	// Reset uses to clear only touched cells instead of the whole ring.
	hiCycle uint64
	// Clamped is retained for telemetry compatibility: the former
	// sliding-window implementation clamped requests behind the window base
	// and counted them here. Era-stamped cells have no base to fall behind,
	// so the counter is structurally zero — matching the invariant the
	// integration tests always asserted.
	Clamped uint64
	// Reservations is the total number of successful bookings.
	Reservations uint64
}

// DefaultWindow comfortably exceeds the maximum in-flight timespan of the
// simulated machine (a 480-entry ROB with 300-cycle memory misses spans a
// couple of thousand cycles; the ring is 8K cycles). Two cycles that are
// simultaneously in flight must never be a multiple of the ring size apart,
// since they would share a cell — era stamps make a smaller ring safe
// (stale cells read as empty instead of needing to be slid past), and the
// smaller ring keeps the hot cells resident in cache.
const DefaultWindow = 1 << 13

// NewCalendar creates a calendar with the given per-cycle capacity and ring
// size (rounded up to a minimum of 1024 cycles and to the next power of
// two, so ring indexing is a mask instead of a division). The capacity must
// fit the 8-bit count field.
func NewCalendar(capacity, window int) *Calendar {
	if capacity <= 0 {
		panic("sched: calendar capacity must be positive")
	}
	if capacity > 255 {
		panic("sched: calendar capacity exceeds the 8-bit cell count")
	}
	if window < 1024 {
		window = 1024
	}
	// Round up to a power of two. The ring size is behaviour-neutral:
	// reservation results depend only on the booked counts, which are
	// identical for any ring wider than the in-flight cycle span.
	w := 1024
	for w < window {
		w <<= 1
	}
	lg := uint(0)
	for 1<<lg < w {
		lg++
	}
	return &Calendar{
		capacity: uint16(capacity),
		cells:    make([]uint32, w),
		mask:     uint64(w - 1),
		log2W:    lg,
	}
}

// Capacity returns the per-cycle capacity.
func (c *Calendar) Capacity() int { return int(c.capacity) }

// Reserve books one unit of capacity at the earliest cycle >= at and
// returns that cycle. The common case — the requested cycle has spare
// capacity — is a mask, a stamp compare, and an increment; probing past
// full cycles lives in reserveSlow.
func (c *Calendar) Reserve(at uint64) uint64 {
	i := at & c.mask
	key := uint32(at>>c.log2W) << 8
	cell := c.cells[i]
	if cell&^uint32(0xFF) != key {
		cell = key // stale era: the cycle is empty
	}
	if cell&0xFF < uint32(c.capacity) {
		c.cells[i] = cell + 1
		c.Reservations++
		if at > c.hiCycle {
			c.hiCycle = at
		}
		return at
	}
	return c.reserveSlow(at + 1)
}

func (c *Calendar) reserveSlow(at uint64) uint64 {
	for {
		i := at & c.mask
		key := uint32(at>>c.log2W) << 8
		cell := c.cells[i]
		if cell&^uint32(0xFF) != key {
			cell = key
		}
		if cell&0xFF < uint32(c.capacity) {
			c.cells[i] = cell + 1
			c.Reservations++
			if at > c.hiCycle {
				c.hiCycle = at
			}
			return at
		}
		at++
	}
}

// ReserveSpan books one unit of capacity in each of n consecutive cycles
// starting at the earliest feasible cycle >= at where the whole span fits,
// and returns the start cycle. Used for multi-cycle resource occupancy
// (e.g. unpipelined dividers).
func (c *Calendar) ReserveSpan(at uint64, n int) uint64 {
	if n <= 1 {
		return c.Reserve(at)
	}
outer:
	for {
		for k := 0; k < n; k++ {
			if c.Load(at+uint64(k)) >= int(c.capacity) {
				at += uint64(k) + 1
				continue outer
			}
		}
		for k := 0; k < n; k++ {
			cy := at + uint64(k)
			i := cy & c.mask
			key := uint32(cy>>c.log2W) << 8
			cell := c.cells[i]
			if cell&^uint32(0xFF) != key {
				cell = key
			}
			c.cells[i] = cell + 1
		}
		if last := at + uint64(n-1); last > c.hiCycle {
			c.hiCycle = last
		}
		c.Reservations++
		return at
	}
}

// Reset restores the calendar to its just-constructed state, keeping the
// ring storage. Booked cycles all map to ring indexes at or below the
// watermark (cycles 0..hiCycle cover ring prefix 0..min(hiCycle, mask)),
// so only that prefix needs clearing; for the many lightly-used calendars
// in a machine this is a handful of cells instead of the whole ring. Cells
// beyond the prefix keep their stale stamps and read as empty.
func (c *Calendar) Reset() {
	if c.Reservations != 0 {
		n := c.hiCycle + 1
		if n > uint64(len(c.cells)) {
			n = uint64(len(c.cells))
		}
		clear(c.cells[:n])
	}
	c.hiCycle, c.Clamped, c.Reservations = 0, 0, 0
}

// Peek returns the cycle Reserve(at) would grant, without booking it.
func (c *Calendar) Peek(at uint64) uint64 {
	for {
		i := at & c.mask
		key := uint32(at>>c.log2W) << 8
		cell := c.cells[i]
		if cell&^uint32(0xFF) != key || cell&0xFF < uint32(c.capacity) {
			return at
		}
		at++
	}
}

// Load returns the number of reservations currently booked at the cycle (0
// for cycles whose cell has been overwritten by a later era).
func (c *Calendar) Load(cycle uint64) int {
	i := cycle & c.mask
	key := uint32(cycle>>c.log2W) << 8
	if v := c.cells[i]; v&^uint32(0xFF) == key {
		return int(v & 0xFF)
	}
	return 0
}

// Heap is a bounded-occupancy min-heap of release times, modelling a
// resource pool of fixed size where each occupant holds a slot until its
// release time (issue-queue entries held until issue, rename registers held
// until commit). Acquire returns the earliest cycle at which a slot is
// guaranteed free given the request time.
//
// Query times must be non-decreasing: Acquire and Free lazily expire
// occupants whose release time has passed, so a query at cycle t discards
// state that an earlier-cycle query could still observe. Every pipeline
// resource satisfies this naturally (requests are issued along a monotone
// dispatch frontier); the expiry makes both operations O(1) amortized
// instead of an O(slots) scan per call.
type Heap struct {
	release []uint64
	size    int
}

// NewHeap creates a pool with the given number of slots.
func NewHeap(slots int) *Heap {
	if slots <= 0 {
		panic("sched: heap needs at least one slot")
	}
	return &Heap{release: make([]uint64, 0, slots), size: slots}
}

// expire drops occupants whose slots are free at cycle now.
func (h *Heap) expire(now uint64) {
	for len(h.release) > 0 && h.release[0] <= now {
		h.popMin()
	}
}

// Acquire requests a slot at cycle `at`; it returns the earliest cycle >= at
// when a slot is free. The caller must then call Commit with the slot's
// release time.
func (h *Heap) Acquire(at uint64) uint64 {
	h.expire(at)
	if len(h.release) < h.size {
		return at
	}
	return h.release[0]
}

// Commit records that the slot acquired most recently will be held until
// release. It evicts the earliest-releasing entry if the pool is full
// (that entry's slot is the one being reused).
func (h *Heap) Commit(release uint64) {
	if len(h.release) == h.size {
		h.popMin()
	}
	h.push(release)
}

// Free returns the number of currently unused slots assuming the given
// current cycle (entries with release <= now are free).
func (h *Heap) Free(now uint64) int {
	h.expire(now)
	return h.size - len(h.release)
}

// Size returns the pool size.
func (h *Heap) Size() int { return h.size }

// Occupied returns the number of resident entries, counting entries whose
// release time has passed but that lazy expiry has not yet dropped. Unlike
// Free it touches no state, so telemetry may call it at any cycle without
// violating the monotone-query contract; the value is an upper bound on the
// true occupancy at the last queried cycle.
func (h *Heap) Occupied() int { return len(h.release) }

func (h *Heap) push(v uint64) {
	h.release = append(h.release, v)
	i := len(h.release) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.release[parent] <= h.release[i] {
			break
		}
		h.release[parent], h.release[i] = h.release[i], h.release[parent]
		i = parent
	}
}

func (h *Heap) popMin() uint64 {
	min := h.release[0]
	last := len(h.release) - 1
	h.release[0] = h.release[last]
	h.release = h.release[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.release) && h.release[l] < h.release[smallest] {
			smallest = l
		}
		if r < len(h.release) && h.release[r] < h.release[smallest] {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.release[i], h.release[smallest] = h.release[smallest], h.release[i]
		i = smallest
	}
	return min
}
