package sched

import "math/bits"

// Wheel is the event-wheel replacement for Heap: the same bounded-occupancy
// pool abstraction (slots held until a release cycle, lazy expiry under the
// monotone-query contract), but stored as a power-of-two ring of per-cycle
// release counts with a one-bit-per-cycle occupancy summary instead of a
// binary heap. Every operation is a handful of word operations on flat
// arrays — no sift-up/sift-down, no per-operation allocation — and the
// expiry sweep touches each cycle bucket at most once over the life of a
// run, so the amortized cost per query is O(1) plus one bitmap word per 64
// cycles of frontier advance.
//
// Equivalence with Heap (pinned by the differential property test in
// wheel_test.go): under the documented monotone-query contract the two
// structures return identical values from Acquire, Free, Size and Occupied
// for any interleaving of operations. The mapping is direct — the heap's
// multiset of release times is the wheel's bucket counts, expire(now)
// removes every release <= now in both, Acquire returns the request cycle
// when a slot is free and the minimum resident release otherwise (the
// first set bit at or after the frontier), and Commit-when-full evicts the
// minimum resident in both.
//
// The ring window only needs to span the distance between the query
// frontier and the furthest-out resident release (the machine's in-flight
// timespan, a few thousand cycles), not the whole run; Commit grows the
// ring on the rare release beyond it, after which steady state allocates
// nothing.
type Wheel struct {
	counts []uint8  // per-cycle resident release counts, ring-indexed by cycle & mask
	bitmap []uint64 // summary: bit i set iff counts[i] != 0
	mask   uint64   // len(counts) - 1
	// frontier is the expiry frontier: every resident release is >= frontier,
	// and query times seen so far are < frontier. Queries must be
	// non-decreasing (the Heap contract).
	frontier uint64
	occ      int
	// stale counts residents committed with a release below the frontier
	// (i.e. at or before the last query time). They occupy slots but hold no
	// bucket: monotonicity makes any subsequent query time >= their release,
	// so the next expiry call drops them all — exactly when the heap's lazy
	// expiry would.
	stale int
	size  int
}

// wheelMinWindow is the initial ring span in cycles. It comfortably covers
// the in-flight span of typical runs; Commit doubles the ring if a release
// ever lands beyond it, which is deterministic (the trigger depends only on
// simulated timing) and vanishingly rare after warmup.
const wheelMinWindow = 1 << 12

// NewWheel creates a pool with the given number of slots.
func NewWheel(slots int) *Wheel {
	if slots <= 0 {
		panic("sched: wheel needs at least one slot")
	}
	if slots > 255 {
		// counts are uint8; every pool in the machine is far smaller.
		panic("sched: wheel supports at most 255 slots")
	}
	w := &Wheel{size: slots}
	w.counts = make([]uint8, wheelMinWindow)
	w.bitmap = make([]uint64, wheelMinWindow/64)
	w.mask = wheelMinWindow - 1
	return w
}

// Acquire requests a slot at cycle `at`; it returns the earliest cycle >= at
// when a slot is free. The caller must then call Commit with the slot's
// release time. The common case — the frontier already passed `at` (so there
// is nothing to expire) and a slot is free — is branch-and-return, small
// enough to inline at call sites.
func (w *Wheel) Acquire(at uint64) uint64 {
	if w.stale == 0 && at < w.frontier && w.occ < w.size {
		return at
	}
	return w.acquireSlow(at)
}

func (w *Wheel) acquireSlow(at uint64) uint64 {
	w.expire(at)
	if w.occ < w.size {
		return at
	}
	return w.firstResident()
}

// Commit records that the slot acquired most recently will be held until
// release, evicting the earliest-releasing resident if the pool is full
// (that resident's slot is the one being reused).
func (w *Wheel) Commit(release uint64) {
	if w.occ == w.size {
		w.evictMin()
	}
	if release < w.frontier {
		// Already past the expiry frontier: the heap would keep the entry
		// resident only until the next query, whose time is necessarily
		// >= the release under the monotone contract. Count it as stale.
		w.stale++
		w.occ++
		return
	}
	for release-w.frontier > w.mask {
		w.grow()
	}
	i := release & w.mask
	w.counts[i]++
	w.bitmap[i>>6] |= 1 << (i & 63)
	w.occ++
}

// Free returns the number of unused slots at the given cycle. Like Acquire
// it inlines the already-expired common case: repeated queries at one
// dispatch cycle (the steering heuristic polls every cluster's queues at the
// same cycle) cost a compare and a subtraction each after the first.
func (w *Wheel) Free(now uint64) int {
	if w.stale == 0 && now < w.frontier {
		return w.size - w.occ
	}
	return w.freeSlow(now)
}

func (w *Wheel) freeSlow(now uint64) int {
	w.expire(now)
	return w.size - w.occ
}

// Size returns the pool size.
func (w *Wheel) Size() int { return w.size }

// Occupied returns the number of resident entries, counting entries whose
// release time has passed but that lazy expiry has not yet dropped — the
// same telemetry-safe upper bound Heap.Occupied documents. It touches no
// state.
func (w *Wheel) Occupied() int { return w.occ }

// Reset empties the wheel and rewinds the frontier to cycle zero, keeping
// the ring storage for reuse. Only the dirty buckets are cleared.
func (w *Wheel) Reset() {
	if w.occ > w.stale {
		w.drain(w.frontier, w.mask+1)
	}
	w.frontier = 0
	w.occ, w.stale = 0, 0
}

// expire drops residents whose release is at or before now and advances the
// frontier.
func (w *Wheel) expire(now uint64) {
	if w.stale > 0 {
		// now >= last query time >= every stale release (monotone queries).
		w.occ -= w.stale
		w.stale = 0
	}
	if now < w.frontier {
		return
	}
	if w.occ > 0 {
		span := now - w.frontier
		if span > w.mask {
			span = w.mask
		}
		w.drain(w.frontier, span+1)
	}
	w.frontier = now + 1
}

// drain clears the buckets of cycles [start, start+n), n <= ring size,
// subtracting their counts from the occupancy.
func (w *Wheel) drain(start, n uint64) {
	i := start & w.mask
	if i+n <= uint64(len(w.counts)) {
		w.drainRange(int(i), int(n))
		return
	}
	k := uint64(len(w.counts)) - i
	w.drainRange(int(i), int(k))
	w.drainRange(0, int(n-k))
}

// drainRange clears buckets [from, from+n) in ring-index space.
func (w *Wheel) drainRange(from, n int) {
	wordLo, wordHi := from>>6, (from+n-1)>>6
	for wi := wordLo; wi <= wordHi && w.occ > 0; wi++ {
		word := w.bitmap[wi]
		if word == 0 {
			continue
		}
		m := ^uint64(0)
		if wi == wordLo {
			m &= ^uint64(0) << (uint(from) & 63)
		}
		if wi == wordHi {
			m &= ^uint64(0) >> (63 - (uint(from+n-1) & 63))
		}
		hit := word & m
		for hit != 0 {
			idx := wi<<6 | bits.TrailingZeros64(hit)
			w.occ -= int(w.counts[idx])
			w.counts[idx] = 0
			hit &= hit - 1
		}
		w.bitmap[wi] = word &^ m
	}
}

// firstResident returns the minimum resident release cycle. Must only be
// called with occ > 0; residents all lie in [frontier, frontier+ring).
func (w *Wheel) firstResident() uint64 {
	i := w.frontier & w.mask
	wi := int(i >> 6)
	nWords := len(w.bitmap)
	word := w.bitmap[wi] & (^uint64(0) << (uint(i) & 63))
	for k := 0; k <= nWords; k++ {
		if word != 0 {
			idx := uint64(wi<<6 | bits.TrailingZeros64(word))
			return w.frontier + ((idx - i) & w.mask)
		}
		wi++
		if wi == nWords {
			wi = 0
		}
		word = w.bitmap[wi]
	}
	panic("sched: wheel occupancy does not match bitmap")
}

// evictMin removes one resident with the minimum release cycle. Stale
// residents sit below the frontier, so they are the minimum when present.
func (w *Wheel) evictMin() {
	if w.stale > 0 {
		w.stale--
		w.occ--
		return
	}
	i := w.firstResident() & w.mask
	w.counts[i]--
	if w.counts[i] == 0 {
		w.bitmap[i>>6] &^= 1 << (i & 63)
	}
	w.occ--
}

// grow doubles the ring, re-bucketing residents by their absolute cycle.
// The trigger is purely a function of simulated timing, so growth points are
// deterministic and results are independent of the initial ring size.
func (w *Wheel) grow() {
	oldCounts, oldBitmap, oldMask := w.counts, w.bitmap, w.mask
	n := 2 * len(oldCounts)
	w.counts = make([]uint8, n)
	w.bitmap = make([]uint64, n/64)
	w.mask = uint64(n - 1)
	fi := w.frontier & oldMask
	for wi, word := range oldBitmap {
		for word != 0 {
			idx := uint64(wi<<6 | bits.TrailingZeros64(word))
			word &= word - 1
			cycle := w.frontier + ((idx - fi) & oldMask)
			j := cycle & w.mask
			w.counts[j] = oldCounts[idx]
			w.bitmap[j>>6] |= 1 << (j & 63)
		}
	}
}
