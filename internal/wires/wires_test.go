package wires

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.4f, want %.4f (±%.3f)", name, got, want, tol)
	}
}

// TestDeriveTable2Delays checks that the physical model reproduces the
// paper's Table 2 relative delays from geometry alone.
func TestDeriveTable2Delays(t *testing.T) {
	p := DeriveParams(Tech45())
	approx(t, "W relDelay", p[W].RelDelay, 1.0, 1e-9)
	approx(t, "PW relDelay", p[PW].RelDelay, 1.2, 0.05)
	approx(t, "B relDelay", p[B].RelDelay, 0.8, 0.05)
	approx(t, "L relDelay", p[L].RelDelay, 0.3, 0.05)
}

// TestDeriveTable2Energy checks the derivable energy ratios. The PW dynamic
// value is the documented exception: the published 0.30 comes from Banerjee
// & Mehrotra's joint optimisation including short-circuit energy; the pure
// capacitive model here yields ~0.48. We assert the derived value to pin the
// deviation down, and assert that the simulator's published constants match
// the paper exactly.
func TestDeriveTable2Energy(t *testing.T) {
	p := DeriveParams(Tech45())
	approx(t, "B relDyn", p[B].RelDynPerWire, 0.58, 0.06)
	approx(t, "L relDyn", p[L].RelDynPerWire, 0.84, 0.06)
	approx(t, "PW relLkg", p[PW].RelLeakPerWire, 0.30, 0.05)
	approx(t, "B relLkg", p[B].RelLeakPerWire, 0.55, 0.08)
	approx(t, "L relLkg", p[L].RelLeakPerWire, 0.79, 0.08)
	// The documented deviation: capacitive-only PW dynamic energy.
	approx(t, "PW relDyn (capacitive model)", p[PW].RelDynPerWire, 0.48, 0.05)
}

// TestPublishedTable2 pins the constants the simulator actually uses to the
// paper's published Table 2.
func TestPublishedTable2(t *testing.T) {
	want := map[Class][3]float64{ // delay, dyn, lkg
		W:  {1.0, 1.00, 1.00},
		PW: {1.2, 0.30, 0.30},
		B:  {0.8, 0.58, 0.55},
		L:  {0.3, 0.84, 0.79},
	}
	for c, w := range want {
		p := Table2[c]
		if p.RelDelay != w[0] || p.RelDynPerWire != w[1] || p.RelLeakPerWire != w[2] {
			t.Errorf("%v: published params %v/%v/%v, want %v", c, p.RelDelay, p.RelDynPerWire, p.RelLeakPerWire, w)
		}
	}
}

func TestCrossbarAndRingLatencies(t *testing.T) {
	// Paper Table 2: crossbar 3/2/1 cycles for PW/B/L, ring hop 6/4/2.
	if CrossbarLatency(PW) != 3 || CrossbarLatency(B) != 2 || CrossbarLatency(L) != 1 {
		t.Fatalf("crossbar latencies: got %d/%d/%d, want 3/2/1",
			CrossbarLatency(PW), CrossbarLatency(B), CrossbarLatency(L))
	}
	if RingHopLatency(PW) != 6 || RingHopLatency(B) != 4 || RingHopLatency(L) != 2 {
		t.Fatalf("ring latencies: got %d/%d/%d, want 6/4/2",
			RingHopLatency(PW), RingHopLatency(B), RingHopLatency(L))
	}
}

// TestResistanceEquation spot-checks equation (1): doubling the width
// should roughly halve resistance (exactly, after removing the barrier).
func TestResistanceEquation(t *testing.T) {
	tech := Tech45()
	w1 := Wire{Tech: tech, Geom: Geometry{Width: 135, Spacing: 135}}
	w2 := Wire{Tech: tech, Geom: Geometry{Width: 270 - 2*tech.Barrier + 2*tech.Barrier, Spacing: 135}}
	r1 := w1.ResistancePerMM()
	// width' such that (width'-2b) = 2*(135-2b): width' = 270-2b = 260
	w2.Geom.Width = 2*(135-2*tech.Barrier) + 2*tech.Barrier
	r2 := w2.ResistancePerMM()
	approx(t, "R ratio", r1/r2, 2.0, 1e-9)
}

// TestCapacitanceEquation checks equation (2): increasing spacing strictly
// decreases capacitance; increasing width strictly increases the vertical
// component.
func TestCapacitanceEquation(t *testing.T) {
	tech := Tech45()
	base := Wire{Tech: tech, Geom: Geometry{Width: 135, Spacing: 135}}
	wide := Wire{Tech: tech, Geom: Geometry{Width: 270, Spacing: 135}}
	sparse := Wire{Tech: tech, Geom: Geometry{Width: 135, Spacing: 270}}
	if !(sparse.CapacitancePerMM() < base.CapacitancePerMM()) {
		t.Error("increasing spacing must decrease capacitance")
	}
	if !(wide.CapacitancePerMM() > base.CapacitancePerMM()) {
		t.Error("increasing width must increase capacitance (vertical term)")
	}
}

// TestDelayOptimalIsOptimal verifies the analytic optimum: perturbing
// repeater size or spacing in either direction never reduces delay.
func TestDelayOptimalIsOptimal(t *testing.T) {
	tech := Tech45()
	base := NewW(tech)
	d0 := base.DelayPerMM()
	for _, sf := range []float64{0.8, 0.9, 1.1, 1.25} {
		w := base
		w.Rep = Repeaters{SizeFactor: sf, SpacingFactor: 1}
		if w.DelayPerMM() < d0-1e-12 {
			t.Errorf("size factor %.2f beat the analytic optimum", sf)
		}
		w.Rep = Repeaters{SizeFactor: 1, SpacingFactor: sf}
		if w.DelayPerMM() < d0-1e-12 {
			t.Errorf("spacing factor %.2f beat the analytic optimum", sf)
		}
	}
}

// TestPowerOptimalTradeoff: the PW repeater policy must cost delay and save
// both dynamic and leakage energy relative to the delay-optimal W wire.
func TestPowerOptimalTradeoff(t *testing.T) {
	tech := Tech45()
	w := NewW(tech)
	pw := NewPW(tech)
	if !(pw.DelayPerMM() > w.DelayPerMM()) {
		t.Error("PW must be slower than W")
	}
	if !(pw.DynamicEnergyPerMM() < w.DynamicEnergyPerMM()) {
		t.Error("PW must burn less dynamic energy than W")
	}
	if !(pw.LeakagePowerPerMM() < w.LeakagePowerPerMM()) {
		t.Error("PW must leak less than W")
	}
}

// TestTransmissionLineFasterThanRC: paper Section 2 — transmission lines
// beat same-geometry RC wires (Chang et al. report >= 4/3 at 180nm, more at
// finer nodes).
func TestTransmissionLineFasterThanRC(t *testing.T) {
	tech := Tech45()
	rc := NewL(tech)
	tl := NewTransmissionLine(tech)
	ratio := rc.DelayPerMM() / tl.DelayPerMM()
	if ratio < 4.0/3.0 {
		t.Errorf("transmission line speedup %.2fx, want >= 1.33x", ratio)
	}
	if !(tl.DynamicEnergyPerMM() < rc.DynamicEnergyPerMM()) {
		t.Error("transmission line should dissipate less than the repeated RC wire")
	}
}

// TestPitchBandwidthTradeoff: the L wire's 8x geometry must cost 8x pitch —
// the bandwidth trade the whole paper revolves around (18 L-wires == 72
// B-wires == 144 PW/W-wires of metal area, paper Section 3).
func TestPitchBandwidthTradeoff(t *testing.T) {
	tech := Tech45()
	wPitch := NewW(tech).Geom.Pitch()
	approx(t, "B pitch", NewB(tech).Geom.Pitch()/wPitch, 2.0, 1e-9)
	approx(t, "L pitch", NewL(tech).Geom.Pitch()/wPitch, 8.0, 1e-9)
	// Equal-area wire counts: area of 72 B-wires holds 144 W/PW and 18 L.
	area := 72 * NewB(tech).Geom.Pitch()
	if n := int(area / NewPW(tech).Geom.Pitch()); n != 144 {
		t.Errorf("PW wires per 72-B-wire area = %d, want 144", n)
	}
	if n := int(area / NewL(tech).Geom.Pitch()); n != 18 {
		t.Errorf("L wires per 72-B-wire area = %d, want 18", n)
	}
}

// TestLatencyCyclesMonotone: property — latency in cycles is monotone in
// link length and never below one cycle.
func TestLatencyCyclesMonotone(t *testing.T) {
	tech := Tech45()
	w := NewB(tech)
	f := func(rawLen uint16) bool {
		l1 := 0.1 + float64(rawLen%200)/10 // 0.1 .. 20 mm
		l2 := l1 + 1.0
		c1 := LatencyCycles(w, l1, 3.0)
		c2 := LatencyCycles(w, l2, 3.0)
		return c1 >= 1 && c2 >= c1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestDelayQuadraticWithoutRepeaters: with repeaters the delay per mm is
// constant (linear total); the paper's motivation is that unrepeated wire
// delay grows quadratically. Check the RC product behaviour: per-mm delay of
// the repeated wire is independent of length by construction, and the raw
// RC time constant grows linearly per mm (so quadratically in total).
func TestDelayQuadraticWithoutRepeaters(t *testing.T) {
	tech := Tech45()
	w := NewW(tech)
	rc := w.ResistancePerMM() * w.CapacitancePerMM() // per-mm^2 coefficient
	if rc <= 0 {
		t.Fatal("RC must be positive")
	}
	// 10mm unrepeated delay / 1mm unrepeated delay should be 100x (0.38*R*C*L^2).
	d1 := 0.38 * rc * 1 * 1
	d10 := 0.38 * rc * 10 * 10
	approx(t, "quadratic growth", d10/d1, 100, 1e-9)
}

// TestClassStringAndForClass covers the enum helpers.
func TestClassStringAndForClass(t *testing.T) {
	names := map[Class]string{W: "W-Wire", PW: "PW-Wire", B: "B-Wire", L: "L-Wire"}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("Class(%d).String() = %q, want %q", c, c.String(), want)
		}
		_ = ForClass(Tech45(), c) // must not panic
	}
	if len(Classes()) != 4 {
		t.Errorf("Classes() returned %d classes, want 4", len(Classes()))
	}
}

// TestWiderWiresAreFaster: property over a range of width multipliers —
// delay decreases monotonically as wires get wider+sparser (the Section 2
// "wire width and spacing" argument).
func TestWiderWiresAreFaster(t *testing.T) {
	tech := Tech45()
	prev := math.Inf(1)
	for _, mult := range []float64{1, 2, 4, 8} {
		w := Wire{
			Tech: tech,
			Geom: Geometry{Width: mult * tech.MinWidth, Spacing: mult * tech.MinSpacing},
			Rep:  DelayOptimal,
		}
		d := w.DelayPerMM()
		if d >= prev {
			t.Errorf("delay did not decrease at width multiplier %.0f (%.3f >= %.3f)", mult, d, prev)
		}
		prev = d
	}
}

// TestFutureNodesAreMoreWireConstrained: at a fixed link length and clock,
// cycle latencies grow from 65nm to 45nm to 32nm (gates speed up, global
// wires do not), and the absolute gap between B and L wires widens — the
// premise of the paper's wire-constrained sensitivity study.
func TestFutureNodesAreMoreWireConstrained(t *testing.T) {
	const linkMM = 7.5
	clockFor := map[int]float64{65: 2.0, 45: 3.0, 32: 4.5} // gates keep scaling
	var prevB int
	var prevGap int
	for _, tech := range []Technology{Tech65(), Tech45(), Tech32()} {
		lat := NodeLatencies(tech, linkMM, clockFor[tech.Node])
		if lat[B] < prevB {
			t.Errorf("%dnm: B latency %d fell below the earlier node's %d", tech.Node, lat[B], prevB)
		}
		gap := lat[B] - lat[L]
		if gap < prevGap {
			t.Errorf("%dnm: B-L latency gap %d narrowed from %d", tech.Node, gap, prevGap)
		}
		if lat[L] > lat[B] || lat[B] > lat[PW] {
			t.Errorf("%dnm: class ordering broken: %v", tech.Node, lat)
		}
		prevB, prevGap = lat[B], gap
	}
}

// TestAllNodesPreserveClassOrdering: the derived relative delays keep
// L < B < W < PW at every node.
func TestAllNodesPreserveClassOrdering(t *testing.T) {
	for _, tech := range []Technology{Tech65(), Tech45(), Tech32()} {
		p := DeriveParams(tech)
		if !(p[L].RelDelay < p[B].RelDelay && p[B].RelDelay < p[W].RelDelay && p[W].RelDelay < p[PW].RelDelay) {
			t.Errorf("%dnm: relative delays out of order: L=%.2f B=%.2f W=%.2f PW=%.2f",
				tech.Node, p[L].RelDelay, p[B].RelDelay, p[W].RelDelay, p[PW].RelDelay)
		}
	}
}
