// Package wires models on-chip global interconnect at the circuit level:
// distributed-RC wires with repeater insertion, and transmission lines.
//
// It implements the analytic models the paper builds on:
//
//   - wire resistance and capacitance per unit length as functions of the
//     wire geometry (paper equations (1) and (2), after Ho/Mai/Horowitz),
//   - repeated-wire delay with explicit repeater size and spacing (Bakoglu),
//     whose delay-optimal configuration is proportional to sqrt(RC),
//   - power-optimal repeater scaling (after Banerjee & Mehrotra): smaller,
//     sparser repeaters trade delay for large energy savings,
//   - LC transmission lines whose delay approaches the speed of light in the
//     dielectric.
//
// On top of the physics it defines the paper's four wire classes (W, PW, B,
// L) and derives the relative delay/energy figures of paper Table 2 from
// geometry rather than hard-coding them.
package wires

import (
	"fmt"
	"math"
)

// Class identifies one of the paper's wire implementations.
type Class uint8

const (
	// W wires are the bandwidth reference: minimum width and spacing with
	// delay-optimal repeaters.
	W Class = iota
	// PW wires combine minimum width/spacing with small, sparse repeaters:
	// high bandwidth, low power, high delay ("P-Wires" + "W-Wires" merged,
	// as in the paper).
	PW
	// B wires are the baseline 72-bit interconnect: twice the metal area of
	// a W wire (extra spacing), delay-optimised.
	B
	// L wires are latency-optimal: 8x the width and spacing of W wires (or
	// transmission lines), very low bandwidth.
	L
	numClasses
)

// Classes lists all wire classes in declaration order.
func Classes() []Class { return []Class{W, PW, B, L} }

// String returns the paper's name for the class.
func (c Class) String() string {
	switch c {
	case W:
		return "W-Wire"
	case PW:
		return "PW-Wire"
	case B:
		return "B-Wire"
	case L:
		return "L-Wire"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Technology collects the process parameters needed by the wire models.
// Distances are in nanometres, resistivity in ohm*nm, capacitances in fF.
type Technology struct {
	Node int // nominal feature size in nm, e.g. 45

	// Material / dielectric parameters for equations (1) and (2).
	Rho          float64 // resistivity of copper, ohm*nm
	Barrier      float64 // diffusion-barrier thickness, nm
	EpsHoriz     float64 // relative dielectric, horizontal (same-layer) caps
	EpsVert      float64 // relative dielectric, vertical (inter-layer) caps
	MillerK      float64 // Miller-effect coupling factor K
	FringePerMM  float64 // constant fringing capacitance, fF/mm
	LayerSpacing float64 // gap between adjacent metal layers, nm

	// Minimum global-layer geometry (the W-wire geometry).
	MinWidth   float64 // nm
	MinSpacing float64 // nm
	Thickness  float64 // nm

	// Repeater (inverter) device parameters, for a minimum-sized inverter.
	RepRd float64 // output resistance, ohm
	RepCd float64 // input+output capacitance, fF
	// RepEnergyMult folds short-circuit and internal switching energy into
	// the repeater capacitive energy; >1 because optimally sized global
	// repeaters (hundreds of times minimum size) burn substantial crowbar
	// current.
	RepEnergyMult float64
	// RepLeakPerSize is repeater leakage power per unit of repeater size,
	// in arbitrary leakage units (the simulator only uses ratios).
	RepLeakPerSize float64
	// WireLeakPerCap models bitline/driver leakage attributable to the wire
	// itself, proportional to wire capacitance.
	WireLeakPerCap float64

	Vdd float64 // supply voltage, V

	// RelPermittivityTL is the effective dielectric constant seen by a
	// transmission-line signal (sets the propagation velocity).
	RelPermittivityTL float64
}

// Tech45 returns the 45nm technology point used throughout the paper's
// evaluation. The device constants are calibrated (see wires_test.go) so
// that the derived class parameters reproduce paper Table 2: relative
// delays 1.0 / 1.2 / 0.8 / 0.3 for W / PW / B / L, relative leakage
// 1.00 / 0.30 / 0.55 / 0.79, and relative dynamic energy for the
// delay-optimal classes (B 0.58, L 0.84).
//
// The one published value pure CV^2 physics cannot reach is the PW dynamic
// energy of 0.30: Banerjee & Mehrotra's 70% saving counts short-circuit and
// leakage energy re-optimised jointly, data this model does not have. The
// capacitive model derives ~0.48 for PW; the simulator therefore uses the
// published Table2 constants (below) for energy accounting, and the test
// suite documents this one deviation explicitly.
func Tech45() Technology {
	return Technology{
		Node:              45,
		Rho:               22, // ohm*nm; copper + size effects at 45nm
		Barrier:           5,
		EpsHoriz:          2.7,
		EpsVert:           2.7,
		MillerK:           1.5,
		FringePerMM:       80, // fF/mm
		LayerSpacing:      500,
		MinWidth:          135, // global-layer minimum width
		MinSpacing:        135,
		Thickness:         270,
		RepRd:             12000, // ohm, minimum inverter
		RepCd:             0.06,  // fF, minimum inverter
		RepEnergyMult:     3.4,
		RepLeakPerSize:    1.0,
		WireLeakPerCap:    0.01,
		Vdd:               1.0,
		RelPermittivityTL: 3.0,
	}
}

// Geometry is the physical cross-section of one signal wire.
type Geometry struct {
	Width   float64 // nm
	Spacing float64 // nm, gap to each neighbour on the same layer
}

// Pitch returns the per-wire pitch (width + spacing) in nm: the metal area
// cost of the wire, and hence the inverse of achievable wire density.
func (g Geometry) Pitch() float64 { return g.Width + g.Spacing }

// Repeaters describes a repeater insertion policy relative to the
// delay-optimal configuration for the same wire.
type Repeaters struct {
	// SizeFactor scales repeater size relative to the delay-optimal size
	// (1.0 = delay-optimal; <1 = smaller repeaters, less energy, more delay).
	SizeFactor float64
	// SpacingFactor scales the distance between successive repeaters
	// relative to delay-optimal (>1 = sparser repeaters).
	SpacingFactor float64
}

// DelayOptimal is the repeater policy that minimises wire delay.
var DelayOptimal = Repeaters{SizeFactor: 1, SpacingFactor: 1}

// PowerOptimal is the Banerjee-Mehrotra-style policy used for PW wires:
// repeaters at roughly half the optimal size and nearly double the optimal
// spacing, giving a ~20% delay penalty for ~70% interconnect energy savings
// at 45nm (paper Section 5.2).
var PowerOptimal = Repeaters{SizeFactor: 0.52, SpacingFactor: 1.9}

// Wire is a complete wire design: geometry plus repeater policy (or a
// transmission line) in a given technology.
type Wire struct {
	Tech             Technology
	Geom             Geometry
	Rep              Repeaters
	TransmissionLine bool
}

// ResistancePerMM implements paper equation (1):
//
//	R = rho / ((thickness - barrier) * (width - 2*barrier))
//
// returning ohm/mm.
func (w Wire) ResistancePerMM() float64 {
	t := w.Tech
	eff := (t.Thickness - t.Barrier) * (w.Geom.Width - 2*t.Barrier)
	if eff <= 0 {
		panic("wires: geometry smaller than barrier layers")
	}
	// rho[ohm*nm] / area[nm^2] = ohm/nm; * 1e6 nm/mm.
	return t.Rho / eff * 1e6
}

// CapacitancePerMM implements paper equation (2): two horizontal coupling
// capacitors (with Miller factor K), two vertical parallel-plate capacitors,
// and a constant fringe term. Returns fF/mm.
func (w Wire) CapacitancePerMM() float64 {
	t := w.Tech
	const eps0 = 8.854e-3 // fF per mm per unit relative permittivity, for ratio of dims
	horiz := 2 * t.MillerK * t.EpsHoriz * (t.Thickness / w.Geom.Spacing)
	vert := 2 * t.EpsVert * (w.Geom.Width / t.LayerSpacing)
	return eps0*(horiz+vert)*1e3 + t.FringePerMM
}

// optimalRepeaters returns the delay-optimal repeater size (in multiples of
// a minimum inverter) and spacing (mm) for this wire's RC, from the standard
// Bakoglu analysis:
//
//	size*   = sqrt(Rd*C / (R*Cd))
//	spacing = sqrt(0.69*Rd*Cd / (0.38*R*C))
func (w Wire) optimalRepeaters() (size, spacingMM float64) {
	r := w.ResistancePerMM()
	c := w.CapacitancePerMM()
	t := w.Tech
	size = math.Sqrt(t.RepRd * c / (r * t.RepCd))
	spacingMM = math.Sqrt(0.69 * t.RepRd * t.RepCd / (0.38 * r * c))
	return size, spacingMM
}

// repeaterConfig returns the actual repeater size and spacing after applying
// the wire's policy factors.
func (w Wire) repeaterConfig() (size, spacingMM float64) {
	size, spacingMM = w.optimalRepeaters()
	sf, lf := w.Rep.SizeFactor, w.Rep.SpacingFactor
	if sf == 0 {
		sf = 1
	}
	if lf == 0 {
		lf = 1
	}
	return size * sf, spacingMM * lf
}

// DelayPerMM returns the signal propagation delay in ps/mm.
//
// For repeated RC wires it evaluates the segmented Elmore delay
//
//	t/len = 0.69*Rd*Cd/l + 0.69*Rd*C/s + 0.38*R*C*l + 0.69*R*Cd*s
//
// with s the repeater size and l the repeater spacing. For transmission
// lines the delay is length / (c0/sqrt(eps_r)).
func (w Wire) DelayPerMM() float64 {
	if w.TransmissionLine {
		const c0 = 0.2998 // mm/ps, speed of light
		v := c0 / math.Sqrt(w.Tech.RelPermittivityTL)
		return 1 / v
	}
	r := w.ResistancePerMM()         // ohm/mm
	c := w.CapacitancePerMM() * 1e-3 // pF/mm so ohm*pF = ps
	t := w.Tech
	rd := t.RepRd
	cd := t.RepCd * 1e-3 // pF
	s, l := w.repeaterConfig()
	return 0.69*rd*cd/l + 0.69*rd*c/s + 0.38*r*c*l + 0.69*r*cd*s
}

// DynamicEnergyPerMM returns the switching energy per transition per mm, in
// fJ/mm (CV^2 units): wire capacitance plus repeater capacitance inflated by
// the short-circuit/internal-energy multiplier. Transmission lines dissipate
// in the termination; Chang et al. report roughly a 3x energy reduction
// versus repeated wires of the same width, which emerges here from the
// absence of repeaters (the line itself has low C due to large spacing).
func (w Wire) DynamicEnergyPerMM() float64 {
	t := w.Tech
	v2 := t.Vdd * t.Vdd
	cWire := w.CapacitancePerMM()
	if w.TransmissionLine {
		// Termination + driver energy, no repeaters. Model as wire C only.
		return cWire * v2
	}
	s, l := w.repeaterConfig()
	repCapPerMM := s * t.RepCd / l
	return (cWire + t.RepEnergyMult*repCapPerMM) * v2
}

// LeakagePowerPerMM returns static power per mm in arbitrary units
// (repeater subthreshold leakage proportional to total repeater width, plus
// a wire-proportional term).
func (w Wire) LeakagePowerPerMM() float64 {
	t := w.Tech
	wireTerm := t.WireLeakPerCap * w.CapacitancePerMM()
	if w.TransmissionLine {
		return wireTerm
	}
	s, l := w.repeaterConfig()
	return t.RepLeakPerSize*s/l + wireTerm
}

// NewW returns the bandwidth-reference wire: minimum width and spacing,
// delay-optimal repeaters.
func NewW(t Technology) Wire {
	return Wire{Tech: t, Geom: Geometry{Width: t.MinWidth, Spacing: t.MinSpacing}, Rep: DelayOptimal}
}

// NewPW returns the power+bandwidth wire: W geometry with power-optimal
// repeaters.
func NewPW(t Technology) Wire {
	w := NewW(t)
	w.Rep = PowerOptimal
	return w
}

// NewB returns the baseline wire: twice the metal area of a W/PW wire,
// achieved by keeping minimum width and doubling the pitch with extra
// spacing (paper Section 5.2), with delay-optimal repeaters.
func NewB(t Technology) Wire {
	return Wire{
		Tech: t,
		Geom: Geometry{Width: t.MinWidth, Spacing: t.MinWidth + 2*t.MinSpacing},
		Rep:  DelayOptimal,
	}
}

// NewL returns the latency-optimal RC wire: 8x the width and spacing of a W
// wire, delay-optimal repeaters. (Use NewTransmissionLine for the LC
// alternative.)
func NewL(t Technology) Wire {
	return Wire{
		Tech: t,
		Geom: Geometry{Width: 8 * t.MinWidth, Spacing: 8 * t.MinSpacing},
		Rep:  DelayOptimal,
	}
}

// NewTransmissionLine returns an L-class wire implemented as an on-chip
// transmission line with the same (large) geometry as an RC L wire.
func NewTransmissionLine(t Technology) Wire {
	w := NewL(t)
	w.TransmissionLine = true
	return w
}

// ForClass returns the canonical wire design for a class.
func ForClass(t Technology, c Class) Wire {
	switch c {
	case W:
		return NewW(t)
	case PW:
		return NewPW(t)
	case B:
		return NewB(t)
	case L:
		return NewL(t)
	}
	panic(fmt.Sprintf("wires: unknown class %v", c))
}

// Params summarises a wire class the way paper Table 2 does, normalised to
// the W wire of the same technology.
type Params struct {
	Class          Class
	RelDelay       float64 // delay per mm relative to W
	RelDynPerWire  float64 // dynamic energy per transition per wire, rel. W
	RelLeakPerWire float64 // leakage power per wire, rel. W
	RelPitch       float64 // metal area per wire relative to W
	DelayPSPerMM   float64
	DynFJPerMM     float64
}

// DeriveParams computes Table-2-style relative parameters for all classes
// from the physical models.
func DeriveParams(t Technology) map[Class]Params {
	ref := NewW(t)
	refDelay := ref.DelayPerMM()
	refDyn := ref.DynamicEnergyPerMM()
	refLeak := ref.LeakagePowerPerMM()
	refPitch := ref.Geom.Pitch()
	out := make(map[Class]Params, numClasses)
	for _, c := range Classes() {
		w := ForClass(t, c)
		out[c] = Params{
			Class:          c,
			RelDelay:       w.DelayPerMM() / refDelay,
			RelDynPerWire:  w.DynamicEnergyPerMM() / refDyn,
			RelLeakPerWire: w.LeakagePowerPerMM() / refLeak,
			RelPitch:       w.Geom.Pitch() / refPitch,
			DelayPSPerMM:   w.DelayPerMM(),
			DynFJPerMM:     w.DynamicEnergyPerMM(),
		}
	}
	return out
}

// Table2 are the paper's published relative wire parameters (paper Table 2),
// used by the simulator's energy accounting and checked in tests against
// DeriveParams. Keeping the published values as the simulation constants
// makes experiment outputs directly comparable with the paper even if the
// physical calibration drifts slightly.
var Table2 = map[Class]Params{
	W:  {Class: W, RelDelay: 1.0, RelDynPerWire: 1.00, RelLeakPerWire: 1.00, RelPitch: 1.0},
	PW: {Class: PW, RelDelay: 1.2, RelDynPerWire: 0.30, RelLeakPerWire: 0.30, RelPitch: 1.0},
	B:  {Class: B, RelDelay: 0.8, RelDynPerWire: 0.58, RelLeakPerWire: 0.55, RelPitch: 2.0},
	L:  {Class: L, RelDelay: 0.3, RelDynPerWire: 0.84, RelLeakPerWire: 0.79, RelPitch: 8.0},
}

// CrossbarLatency returns the paper's inter-cluster crossbar latency in
// cycles for each class (Table 2): PW=3, B=2, L=1.
func CrossbarLatency(c Class) int {
	switch c {
	case PW:
		return 3
	case B:
		return 2
	case L:
		return 1
	case W:
		return 3 // W wires are a reference design; treat like PW latency-wise
	}
	panic("wires: unknown class")
}

// RingHopLatency returns the paper's per-hop ring latency in cycles for the
// 16-cluster hierarchical interconnect (Table 2): PW=6, B=4, L=2.
func RingHopLatency(c Class) int {
	switch c {
	case PW:
		return 6
	case B:
		return 4
	case L:
		return 2
	case W:
		return 6
	}
	panic("wires: unknown class")
}

// LatencyCycles converts a physical wire delay over a link of the given
// length into pipelined cycles at the given clock, rounding up. All
// transfers are fully pipelined (paper Section 5.2), so this is the
// source-to-sink latency; bandwidth is set by wire count.
func LatencyCycles(w Wire, linkMM, clockGHz float64) int {
	delayPS := w.DelayPerMM() * linkMM
	periodPS := 1e3 / clockGHz
	n := int(math.Ceil(delayPS / periodPS))
	if n < 1 {
		n = 1
	}
	return n
}

// Tech65 returns a 65nm technology point: earlier node, relatively less
// resistive wires — the "today" end of the paper's scaling argument.
func Tech65() Technology {
	t := Tech45()
	t.Node = 65
	t.Rho = 19 // weaker size effects in wider wires
	t.MinWidth = 195
	t.MinSpacing = 195
	t.Thickness = 390
	t.LayerSpacing = 720
	t.RepRd = 9000
	t.RepCd = 0.09
	return t
}

// Tech32 returns a 32nm technology point: thinner, more resistive global
// wires while gates keep getting faster — the wire-constrained future the
// paper's Section 5.3 sensitivity study anticipates.
func Tech32() Technology {
	t := Tech45()
	t.Node = 32
	t.Rho = 28 // surface/grain-boundary scattering dominates
	t.MinWidth = 95
	t.MinSpacing = 95
	t.Thickness = 190
	t.LayerSpacing = 360
	t.RepRd = 16000
	t.RepCd = 0.042
	return t
}

// NodeLatencies derives the per-class crossbar latency in cycles for a
// link of the given length at the given clock, from the physical wire
// models — the analogue of Table 2's cycle counts, recomputed per node.
func NodeLatencies(t Technology, linkMM, clockGHz float64) map[Class]int {
	out := make(map[Class]int, numClasses)
	for _, c := range Classes() {
		out[c] = LatencyCycles(ForClass(t, c), linkMM, clockGHz)
	}
	return out
}
