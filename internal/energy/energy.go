// Package energy implements the paper's energy accounting (Section 5.4):
// interconnect dynamic energy from per-class traffic, interconnect leakage
// from the wire inventory and cycle count, and whole-processor energy and
// ED^2 under the paper's normalisation, where interconnect energy accounts
// for a given fraction (10% or 20%) of total processor energy in Model I
// and processor leakage:dynamic is 3:7.
package energy

import (
	"hetwire/internal/noc"
	"hetwire/internal/wires"
)

// RunMeasurement is the slice of a simulation run the energy model needs.
type RunMeasurement struct {
	Cycles uint64
	// Net carries per-class traffic (bits transferred, weighted by path
	// length) in the order B, PW, L.
	Net [3]noc.ClassStats
	// Inventory is the physical wire-length units per class present in the
	// network (from noc.Network.LinkInventory).
	Inventory map[wires.Class]float64
	// TransmissionLineL scales L-plane dynamic energy by one third: Chang
	// et al. report a 3x energy reduction for transmission-line signalling
	// versus repeated RC wires (paper Section 5.2).
	TransmissionLineL bool
}

// classOrder maps the Net array indices to classes.
var classOrder = [3]wires.Class{wires.B, wires.PW, wires.L}

// InterconnectDynamic returns the interconnect dynamic energy of a run in
// normalised units: each transferred bit-hop costs the per-wire relative
// dynamic energy of its class (paper Table 2).
func InterconnectDynamic(m RunMeasurement) float64 {
	var e float64
	for i, c := range classOrder {
		w := wires.Table2[c].RelDynPerWire
		if c == wires.L && m.TransmissionLineL {
			w /= 3
		}
		e += float64(m.Net[i].BitHops) * w
	}
	return e
}

// InterconnectLeakage returns the interconnect leakage energy of a run:
// every physical wire leaks every cycle in proportion to its class's
// relative leakage power.
func InterconnectLeakage(m RunMeasurement) float64 {
	var perCycle float64
	for c, units := range m.Inventory {
		perCycle += units * wires.Table2[c].RelLeakPerWire
	}
	return perCycle * float64(m.Cycles)
}

// Breakdown is the normalised energy decomposition of one model's run,
// relative to a baseline run (typically Model I), following the paper's
// method exactly:
//
//   - non-interconnect dynamic energy scales with instruction count (equal
//     across runs of the same program set, so it is constant),
//   - non-interconnect leakage scales with cycle count,
//   - interconnect dynamic and leakage scale with the simulated traffic and
//     inventory,
//   - in the baseline, interconnect energy is ICFraction of the total and
//     leakage:dynamic is 3:7 overall (applied to both components).
type Breakdown struct {
	NonICDynamic float64
	NonICLeakage float64
	ICDynamic    float64
	ICLeakage    float64
}

// Total returns the total processor energy.
func (b Breakdown) Total() float64 {
	return b.NonICDynamic + b.NonICLeakage + b.ICDynamic + b.ICLeakage
}

// Model computes energy results for one configuration run against a
// baseline run. icFraction is the interconnect share of total processor
// energy in the baseline (the paper evaluates 0.10 and 0.20).
type Model struct {
	Baseline   RunMeasurement
	ICFraction float64
}

// leakDynSplit is the paper's processor-wide leakage:dynamic ratio (3:7)
// in Model I.
const (
	leakShare = 0.3
	dynShare  = 0.7
)

// Evaluate returns the normalised breakdown for a run: the baseline run
// maps to a total of exactly 100 units.
func (em Model) Evaluate(run RunMeasurement) Breakdown {
	const totalUnits = 100.0
	icUnits := totalUnits * em.ICFraction
	nonIC := totalUnits - icUnits

	baseICDyn := InterconnectDynamic(em.Baseline)
	baseICLkg := InterconnectLeakage(em.Baseline)

	var b Breakdown
	// Non-interconnect: dynamic fixed (same instruction count), leakage
	// scales with cycles.
	b.NonICDynamic = nonIC * dynShare
	b.NonICLeakage = nonIC * leakShare * float64(run.Cycles) / float64(em.Baseline.Cycles)
	// Interconnect: the baseline's icUnits split 7:3 dynamic:leakage, each
	// component scaling with the simulated quantity.
	if baseICDyn > 0 {
		b.ICDynamic = icUnits * dynShare * InterconnectDynamic(run) / baseICDyn
	}
	if baseICLkg > 0 {
		b.ICLeakage = icUnits * leakShare * InterconnectLeakage(run) / baseICLkg
	}
	return b
}

// RelativeICDynamic returns the run's interconnect dynamic energy relative
// to the baseline's, scaled to 100 (the paper's "Relative interconnect
// dyn-energy" column).
func (em Model) RelativeICDynamic(run RunMeasurement) float64 {
	base := InterconnectDynamic(em.Baseline)
	if base == 0 {
		return 0
	}
	return 100 * InterconnectDynamic(run) / base
}

// RelativeICLeakage is the paper's "Relative interconnect lkg-energy"
// column.
func (em Model) RelativeICLeakage(run RunMeasurement) float64 {
	base := InterconnectLeakage(em.Baseline)
	if base == 0 {
		return 0
	}
	return 100 * InterconnectLeakage(run) / base
}

// RelativeProcessorEnergy is the paper's "Relative Processor Energy"
// column: run total over baseline total, scaled to 100.
func (em Model) RelativeProcessorEnergy(run RunMeasurement) float64 {
	return 100 * em.Evaluate(run).Total() / em.Evaluate(em.Baseline).Total()
}

// RelativeED2 is the paper's ED^2 column: total processor energy times the
// square of execution cycles, relative to the baseline, scaled to 100.
func (em Model) RelativeED2(run RunMeasurement) float64 {
	r := em.Evaluate(run).Total() * float64(run.Cycles) * float64(run.Cycles)
	b := em.Evaluate(em.Baseline).Total() * float64(em.Baseline.Cycles) * float64(em.Baseline.Cycles)
	return 100 * r / b
}
