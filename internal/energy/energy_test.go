package energy

import (
	"math"
	"testing"

	"hetwire/internal/noc"
	"hetwire/internal/wires"
)

func baselineRun() RunMeasurement {
	// Model-I-like: 1M cycles, 1M B bit-hops, 864 B wire-units.
	var m RunMeasurement
	m.Cycles = 1_000_000
	m.Net[0] = noc.ClassStats{BitHops: 1_000_000}
	m.Inventory = map[wires.Class]float64{wires.B: 864}
	return m
}

func TestBaselineNormalisesTo100(t *testing.T) {
	em := Model{Baseline: baselineRun(), ICFraction: 0.10}
	b := em.Evaluate(baselineRun())
	if math.Abs(b.Total()-100) > 1e-9 {
		t.Fatalf("baseline total = %f, want 100", b.Total())
	}
	// 10% interconnect, 3:7 leakage:dynamic everywhere.
	if math.Abs(b.ICDynamic+b.ICLeakage-10) > 1e-9 {
		t.Errorf("interconnect share = %f, want 10", b.ICDynamic+b.ICLeakage)
	}
	if math.Abs(b.NonICDynamic-63) > 1e-9 || math.Abs(b.NonICLeakage-27) > 1e-9 {
		t.Errorf("non-IC split = %f/%f, want 63/27", b.NonICDynamic, b.NonICLeakage)
	}
	if em.RelativeED2(baselineRun()) != 100 || em.RelativeProcessorEnergy(baselineRun()) != 100 {
		t.Error("baseline relative metrics must be 100")
	}
}

// TestPWTrafficCheaper reproduces the Model II arithmetic from the paper:
// moving all dynamic traffic from B to PW wires scales interconnect dynamic
// energy by 0.30/0.58 ~ 52%.
func TestPWTrafficCheaper(t *testing.T) {
	em := Model{Baseline: baselineRun(), ICFraction: 0.10}
	var pw RunMeasurement
	pw.Cycles = 1_000_000
	pw.Net[1] = noc.ClassStats{BitHops: 1_000_000} // same bits, PW plane
	pw.Inventory = map[wires.Class]float64{wires.PW: 2 * 864}
	rel := em.RelativeICDynamic(pw)
	want := 100 * wires.Table2[wires.PW].RelDynPerWire / wires.Table2[wires.B].RelDynPerWire
	if math.Abs(rel-want) > 1e-6 {
		t.Errorf("PW relative dynamic = %.2f, want %.2f", rel, want)
	}
	// Leakage: twice the wires at 0.30/0.55 per-wire leakage.
	lkg := em.RelativeICLeakage(pw)
	wantLkg := 100 * (2 * 864 * 0.30) / (864 * 0.55)
	if math.Abs(lkg-wantLkg) > 1e-6 {
		t.Errorf("PW relative leakage = %.2f, want %.2f", lkg, wantLkg)
	}
}

// TestSlowerRunPaysLeakageAndED2: a run with 10% more cycles pays 10% more
// leakage (interconnect and core) and ~21% more D^2.
func TestSlowerRunPaysLeakageAndED2(t *testing.T) {
	em := Model{Baseline: baselineRun(), ICFraction: 0.10}
	slow := baselineRun()
	slow.Cycles = 1_100_000
	b := em.Evaluate(slow)
	if math.Abs(b.NonICLeakage-27*1.1) > 1e-9 {
		t.Errorf("non-IC leakage = %f, want %f", b.NonICLeakage, 27*1.1)
	}
	if math.Abs(b.ICLeakage-3*1.1) > 1e-9 {
		t.Errorf("IC leakage = %f, want %f", b.ICLeakage, 3*1.1)
	}
	ed2 := em.RelativeED2(slow)
	// energy ratio ~ (63+29.7+7+3.3)/100 = 1.03; times 1.21 cycles^2.
	want := 100 * 1.03 * 1.21
	if math.Abs(ed2-want) > 0.5 {
		t.Errorf("ED2 = %.2f, want ~%.2f", ed2, want)
	}
}

// TestICFraction20DoublesInterconnectImpact: with a 20% interconnect share,
// halving interconnect dynamic energy saves twice as much total energy as
// with a 10% share.
func TestICFraction20DoublesInterconnectImpact(t *testing.T) {
	cheap := baselineRun()
	cheap.Net[0].BitHops = 500_000 // half the traffic energy

	e10 := Model{Baseline: baselineRun(), ICFraction: 0.10}
	e20 := Model{Baseline: baselineRun(), ICFraction: 0.20}
	s10 := 100 - e10.RelativeProcessorEnergy(cheap)
	s20 := 100 - e20.RelativeProcessorEnergy(cheap)
	if math.Abs(s20-2*s10) > 1e-6 {
		t.Errorf("savings at 20%% (%f) should be twice savings at 10%% (%f)", s20, s10)
	}
}

// TestMixedClassTraffic: energy adds linearly over classes with Table 2
// weights.
func TestMixedClassTraffic(t *testing.T) {
	var m RunMeasurement
	m.Cycles = 1
	m.Net[0] = noc.ClassStats{BitHops: 100} // B
	m.Net[1] = noc.ClassStats{BitHops: 100} // PW
	m.Net[2] = noc.ClassStats{BitHops: 100} // L
	got := InterconnectDynamic(m)
	want := 100*0.58 + 100*0.30 + 100*0.84
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("mixed dynamic = %f, want %f", got, want)
	}
}

func TestZeroBaselineGuards(t *testing.T) {
	em := Model{Baseline: RunMeasurement{Cycles: 1}, ICFraction: 0.10}
	run := baselineRun()
	if em.RelativeICDynamic(run) != 0 || em.RelativeICLeakage(run) != 0 {
		t.Error("zero-baseline relative metrics should be 0, not NaN")
	}
}

// TestTransmissionLineLCutsDynamicEnergy: the TL option scales only the L
// plane's dynamic energy by one third.
func TestTransmissionLineLCutsDynamicEnergy(t *testing.T) {
	var m RunMeasurement
	m.Cycles = 1
	m.Net[0] = noc.ClassStats{BitHops: 300} // B
	m.Net[2] = noc.ClassStats{BitHops: 300} // L
	rc := InterconnectDynamic(m)
	m.TransmissionLineL = true
	tl := InterconnectDynamic(m)
	wantDelta := 300 * wires.Table2[wires.L].RelDynPerWire * 2 / 3
	if math.Abs((rc-tl)-wantDelta) > 1e-9 {
		t.Errorf("TL saved %f, want %f", rc-tl, wantDelta)
	}
}
