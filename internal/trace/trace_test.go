package trace

import (
	"os"
	"testing"
)

func TestOpClassification(t *testing.T) {
	cases := []struct {
		op    Op
		isFP  bool
		isMem bool
	}{
		{IntALU, false, false},
		{IntMul, false, false},
		{FPALU, true, false},
		{FPMul, true, false},
		{Load, false, true},
		{Store, false, true},
		{Branch, false, false},
	}
	for _, c := range cases {
		if c.op.IsFP() != c.isFP {
			t.Errorf("%v.IsFP() = %v", c.op, c.op.IsFP())
		}
		if c.op.IsMem() != c.isMem {
			t.Errorf("%v.IsMem() = %v", c.op, c.op.IsMem())
		}
		if c.op.String() == "?" {
			t.Errorf("%d has no name", c.op)
		}
		if c.op.Latency() < 1 {
			t.Errorf("%v latency %d < 1", c.op, c.op.Latency())
		}
	}
}

func TestLatencies(t *testing.T) {
	// Multi-cycle units must actually be multi-cycle, and multiplies slower
	// than adds.
	if IntMul.Latency() <= IntALU.Latency() {
		t.Error("integer multiply should outlast the ALU op")
	}
	if FPMul.Latency() <= FPALU.Latency() {
		t.Error("fp multiply should outlast the fp add")
	}
}

func TestSliceStream(t *testing.T) {
	s := &SliceStream{Instrs: []Instr{
		{PC: 4, Op: IntALU},
		{PC: 8, Op: Load},
	}}
	var ins Instr
	if !s.Next(&ins) || ins.PC != 4 {
		t.Fatalf("first = %+v", ins)
	}
	if !s.Next(&ins) || ins.PC != 8 {
		t.Fatalf("second = %+v", ins)
	}
	if s.Next(&ins) {
		t.Fatal("stream should be exhausted")
	}
	s.Reset()
	if !s.Next(&ins) || ins.PC != 4 {
		t.Fatal("Reset did not rewind")
	}
}

func TestUnknownOpString(t *testing.T) {
	if Op(99).String() != "?" {
		t.Error("unknown op should render as ?")
	}
}

func sampleInstrs(n int) []Instr {
	out := make([]Instr, n)
	for i := range out {
		out[i] = Instr{
			PC: uint64(0x1000 + i*4), Op: Op(i % 7),
			Src1: int16(i % 32), Src2: NoReg, Dest: int16((i + 1) % 32),
			Addr: uint64(i) * 8, Taken: i%3 == 0, Target: uint64(0x2000 + i),
			Value: uint64(i * 17),
		}
	}
	return out
}

// TestTraceFileRoundTrip: write N instructions to disk, read them back
// bit-identically.
func TestTraceFileRoundTrip(t *testing.T) {
	path := t.TempDir() + "/trace.hwt"
	orig := sampleInstrs(1000)
	n, err := WriteTraceFile(path, &SliceStream{Instrs: orig}, 1000)
	if err != nil || n != 1000 {
		t.Fatalf("write: n=%d err=%v", n, err)
	}
	fs, err := OpenTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if fs.Count() != 1000 {
		t.Fatalf("count = %d", fs.Count())
	}
	var ins Instr
	for i := 0; fs.Next(&ins); i++ {
		if ins != orig[i] {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, ins, orig[i])
		}
	}
	if fs.Err() != nil {
		t.Fatal(fs.Err())
	}
	if fs.Count() != 0 {
		t.Fatal("records left over")
	}
}

// TestTraceFileShortStream: the header count is fixed up when the stream
// ends early.
func TestTraceFileShortStream(t *testing.T) {
	path := t.TempDir() + "/short.hwt"
	n, err := WriteTraceFile(path, &SliceStream{Instrs: sampleInstrs(10)}, 100)
	if err != nil || n != 10 {
		t.Fatalf("write: n=%d err=%v", n, err)
	}
	fs, err := OpenTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if fs.Count() != 10 {
		t.Fatalf("count = %d, want 10", fs.Count())
	}
	var ins Instr
	read := 0
	for fs.Next(&ins) {
		read++
	}
	if read != 10 || fs.Err() != nil {
		t.Fatalf("read %d, err %v", read, fs.Err())
	}
}

// TestOpenTraceFileRejectsGarbage: wrong magic is detected.
func TestOpenTraceFileRejectsGarbage(t *testing.T) {
	path := t.TempDir() + "/junk.bin"
	if err := os.WriteFile(path, []byte("this is not a trace, honestly"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenTraceFile(path); err == nil {
		t.Fatal("garbage accepted as a trace")
	}
	if _, err := OpenTraceFile(t.TempDir() + "/missing"); err == nil {
		t.Fatal("missing file accepted")
	}
}
