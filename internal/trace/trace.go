// Package trace defines the dynamic instruction stream consumed by the
// timing model: the instruction record, operation kinds, and stream
// interfaces. Streams are produced by the synthetic workload generators in
// internal/workload (standing in for the paper's SPEC2000/SimPoint traces)
// or by slice-backed readers in tests.
package trace

// Op is the operation class of an instruction; it determines the functional
// unit used and the execution latency.
type Op uint8

const (
	// IntALU is a single-cycle integer operation.
	IntALU Op = iota
	// IntMul is a multi-cycle integer multiply/divide.
	IntMul
	// FPALU is a pipelined floating-point add/compare.
	FPALU
	// FPMul is a multi-cycle floating-point multiply/divide.
	FPMul
	// Load reads memory: address generation + cache access.
	Load
	// Store writes memory: address generation + store queue.
	Store
	// Branch is a conditional branch.
	Branch
	numOps
)

// String names the op.
func (o Op) String() string {
	switch o {
	case IntALU:
		return "int"
	case IntMul:
		return "imul"
	case FPALU:
		return "fp"
	case FPMul:
		return "fmul"
	case Load:
		return "load"
	case Store:
		return "store"
	case Branch:
		return "branch"
	}
	return "?"
}

// IsFP reports whether the op executes on the floating-point cluster
// resources.
func (o Op) IsFP() bool { return o == FPALU || o == FPMul }

// IsMem reports whether the op accesses the data memory hierarchy.
func (o Op) IsMem() bool { return o == Load || o == Store }

// Latency returns the execution latency in cycles on its functional unit.
func (o Op) Latency() int {
	switch o {
	case IntALU, Branch:
		return 1
	case IntMul:
		return 7
	case FPALU:
		return 4
	case FPMul:
		return 12
	case Load, Store:
		return 1 // address generation; memory time is modeled separately
	}
	return 1
}

// NoReg marks an absent register operand.
const NoReg int16 = -1

// NumArchRegs is the architectural register count (32 int + 32 fp, Alpha
// style). Registers 0-31 are integer, 32-63 floating point.
const NumArchRegs = 64

// Instr is one dynamic instruction.
type Instr struct {
	PC   uint64
	Op   Op
	Src1 int16 // architectural register or NoReg
	Src2 int16
	Dest int16

	// Memory operations.
	Addr uint64

	// Branches.
	Taken  bool
	Target uint64

	// Produced value, used for narrow-operand detection. For loads this is
	// the loaded value.
	Value uint64
}

// Stream produces dynamic instructions. Next fills *ins and returns false
// when the stream is exhausted (synthetic generators never exhaust).
type Stream interface {
	Next(ins *Instr) bool
}

// SliceStream replays a fixed instruction sequence; primarily for tests.
type SliceStream struct {
	Instrs []Instr
	pos    int
}

// Next implements Stream.
func (s *SliceStream) Next(ins *Instr) bool {
	if s.pos >= len(s.Instrs) {
		return false
	}
	*ins = s.Instrs[s.pos]
	s.pos++
	return true
}

// Reset rewinds the stream.
func (s *SliceStream) Reset() { s.pos = 0 }
