package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// File format: a fixed 16-byte header (magic, version, instruction count)
// followed by fixed-width little-endian records. The format is
// deliberately trivial so traces can be produced by other tools (e.g. a
// Pin/DynamoRIO front end) without linking this package.
const (
	fileMagic   = 0x48455457 // "HETW"
	fileVersion = 1
	recordBytes = 41
)

// WriteTrace drains up to n instructions from the stream into w. It
// returns the number of instructions written (fewer than n if the stream
// ends first).
func WriteTrace(w io.Writer, src Stream, n uint64) (uint64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], fileMagic)
	binary.LittleEndian.PutUint32(hdr[4:], fileVersion)
	binary.LittleEndian.PutUint64(hdr[8:], n)
	if _, err := bw.Write(hdr[:]); err != nil {
		return 0, err
	}
	var rec [recordBytes]byte
	var ins Instr
	var written uint64
	for written < n && src.Next(&ins) {
		encodeRecord(&rec, &ins)
		if _, err := bw.Write(rec[:]); err != nil {
			return written, err
		}
		written++
	}
	return written, bw.Flush()
}

// WriteTraceFile writes a trace to the named file, fixing up the header's
// count to the instructions actually written.
func WriteTraceFile(path string, src Stream, n uint64) (uint64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	written, werr := WriteTrace(f, src, n)
	if werr == nil && written != n {
		// Rewrite the count field for a short stream.
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], written)
		if _, err := f.WriteAt(buf[:], 8); err != nil {
			werr = err
		}
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return written, werr
}

func encodeRecord(rec *[recordBytes]byte, ins *Instr) {
	binary.LittleEndian.PutUint64(rec[0:], ins.PC)
	rec[8] = byte(ins.Op)
	flags := byte(0)
	if ins.Taken {
		flags = 1
	}
	rec[9] = flags
	binary.LittleEndian.PutUint16(rec[10:], uint16(ins.Src1))
	binary.LittleEndian.PutUint16(rec[12:], uint16(ins.Src2))
	binary.LittleEndian.PutUint16(rec[14:], uint16(ins.Dest))
	rec[16] = 0 // reserved
	binary.LittleEndian.PutUint64(rec[17:], ins.Addr)
	binary.LittleEndian.PutUint64(rec[25:], ins.Target)
	binary.LittleEndian.PutUint64(rec[33:], ins.Value)
}

func decodeRecord(rec *[recordBytes]byte, ins *Instr) {
	ins.PC = binary.LittleEndian.Uint64(rec[0:])
	ins.Op = Op(rec[8])
	ins.Taken = rec[9]&1 != 0
	ins.Src1 = int16(binary.LittleEndian.Uint16(rec[10:]))
	ins.Src2 = int16(binary.LittleEndian.Uint16(rec[12:]))
	ins.Dest = int16(binary.LittleEndian.Uint16(rec[14:]))
	ins.Addr = binary.LittleEndian.Uint64(rec[17:])
	ins.Target = binary.LittleEndian.Uint64(rec[25:])
	ins.Value = binary.LittleEndian.Uint64(rec[33:])
}

// FileStream streams instructions from a trace file. It implements Stream
// and io.Closer.
type FileStream struct {
	f         *os.File
	r         *bufio.Reader
	remaining uint64
	err       error
}

// OpenTraceFile opens a trace written by WriteTraceFile.
func OpenTraceFile(path string) (*FileStream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r := bufio.NewReaderSize(f, 1<<16)
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != fileMagic {
		f.Close()
		return nil, fmt.Errorf("trace: %s is not a hetwire trace file", path)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != fileVersion {
		f.Close()
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	return &FileStream{
		f:         f,
		r:         r,
		remaining: binary.LittleEndian.Uint64(hdr[8:]),
	}, nil
}

// Count returns the number of instructions left to read.
func (fs *FileStream) Count() uint64 { return fs.remaining }

// Err returns the first read error encountered (nil on clean EOF).
func (fs *FileStream) Err() error { return fs.err }

// Next implements Stream.
func (fs *FileStream) Next(ins *Instr) bool {
	if fs.remaining == 0 || fs.err != nil {
		return false
	}
	var rec [recordBytes]byte
	if _, err := io.ReadFull(fs.r, rec[:]); err != nil {
		if err != io.EOF {
			fs.err = err
		}
		fs.remaining = 0
		return false
	}
	decodeRecord(&rec, ins)
	fs.remaining--
	return true
}

// Close releases the underlying file.
func (fs *FileStream) Close() error { return fs.f.Close() }
