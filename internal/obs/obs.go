// Package obs is the simulator's sampling telemetry layer: a Recorder
// implements core.Probe and streams periodic interval samples — per-wire-
// class link traffic and occupancy, interconnect dynamic/leakage energy
// deltas, LSQ/issue-queue occupancy, stall-reason breakdowns, and the
// L-wire technique hit rates — as a compact JSONL trace with a versioned
// header. The package also reads traces back and reduces them to summaries
// and diffs for the hetwiretrace CLI.
//
// The probe contract is strictly read-only: attaching a Recorder changes no
// simulated behaviour (golden-corpus hashes are bit-identical with probes on
// and off), and a run with no probe attached pays nothing beyond one pointer
// comparison per sampling interval. The trace itself is deterministic — no
// timestamps, no environment — so two traces of the same (config, workload,
// n) are byte-identical and diff cleanly.
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"hetwire/internal/core"
	"hetwire/internal/energy"
)

// Schema identifies the trace format. The header is versioned so readers
// can reject traces written by a future incompatible writer instead of
// misparsing them; additive field changes keep the same version.
const Schema = "hetwire-trace/v1"

// Header is the first JSONL record of a trace: run identity plus the static
// facts a reader needs to interpret the samples (sampling interval, wire
// inventory for utilization, the L-plane energy mode).
type Header struct {
	Schema    string `json:"schema"`
	Benchmark string `json:"benchmark"`
	Model     string `json:"model"`
	Clusters  int    `json:"clusters"`
	N         uint64 `json:"n"`
	// Interval is the sampling cadence in committed instructions.
	Interval uint64 `json:"interval"`
	// ConfigHash is the canonical hash of the resolved machine configuration
	// (hetwire.ConfigHash), tying the trace to exactly one machine.
	ConfigHash string `json:"config_hash,omitempty"`
	// Inventory is the physical wire-length units per class present in the
	// network, keyed by class name; utilization = bit-hops/(inventory·cycles).
	Inventory map[string]float64 `json:"inventory,omitempty"`
	// TransmissionLineL records whether L-plane dynamic energy is scaled for
	// transmission-line signalling (energy.RunMeasurement.TransmissionLineL).
	TransmissionLineL bool `json:"transmission_line_l,omitempty"`
}

// ClassSample is the cumulative per-wire-class traffic readout at one
// sample point (mirrors noc.ClassStats).
type ClassSample struct {
	Transfers  uint64 `json:"transfers"`
	Bits       uint64 `json:"bits"`
	BitHops    uint64 `json:"bit_hops"`
	WaitCycles uint64 `json:"wait_cycles"`
	MaxWait    uint64 `json:"max_wait"`
}

// Classes carries the per-plane samples. W wires are the paper's design
// reference, not an instantiated link plane, so they have no traffic row.
type Classes struct {
	B  ClassSample `json:"B"`
	PW ClassSample `json:"PW"`
	L  ClassSample `json:"L"`
}

// Stalls is the cumulative stall-reason breakdown (cycle sums over
// committed instructions, from core.Stats).
type Stalls struct {
	Dispatch    uint64 `json:"dispatch"`
	SrcWait     uint64 `json:"src_wait"`
	FUWait      uint64 `json:"fu_wait"`
	LoadLatency uint64 `json:"load_latency"`
	LSQWait     uint64 `json:"lsq_wait"`
}

// Techniques is the cumulative readout of the paper's L-wire mechanisms:
// narrow-operand transfers and the partial-address (early-disambiguation)
// cache pipeline.
type Techniques struct {
	OperandTransfers   uint64 `json:"operand_transfers"`
	NarrowTransfers    uint64 `json:"narrow_transfers"`
	NarrowEligible     uint64 `json:"narrow_eligible"`
	NarrowMispredicted uint64 `json:"narrow_mispredicted"`
	PartialChecks      uint64 `json:"partial_checks"`
	PartialFalseDeps   uint64 `json:"partial_false_deps"`
	StoreForwards      uint64 `json:"store_forwards"`
}

// Energy is the interconnect energy accounting at one sample point:
// cumulative normalised units (internal/energy weights) plus the delta
// since the previous sample of the same trace.
type Energy struct {
	Dynamic      float64 `json:"dynamic"`
	Leakage      float64 `json:"leakage"`
	DynamicDelta float64 `json:"dynamic_delta"`
	LeakageDelta float64 `json:"leakage_delta"`
}

// Sample is one JSONL interval record. Counters are cumulative since the
// stats baseline; readers difference consecutive samples for per-interval
// rates.
type Sample struct {
	Committed       uint64     `json:"committed"`
	Cycle           uint64     `json:"cycle"`
	Final           bool       `json:"final,omitempty"`
	IPC             float64    `json:"ipc"`
	Classes         Classes    `json:"classes"`
	LSQDepth        int        `json:"lsq_depth"`
	IQOccupancy     int        `json:"iq_occupancy"`
	RenameOccupancy int        `json:"rename_occupancy"`
	Stalls          Stalls     `json:"stalls"`
	Techniques      Techniques `json:"techniques"`
	Energy          Energy     `json:"energy"`
}

// classSample converts one noc.ClassStats-shaped readout.
func classSample(s core.Stats, idx int) ClassSample {
	cs := s.Net[idx]
	return ClassSample{
		Transfers:  cs.Transfers,
		Bits:       cs.Bits,
		BitHops:    cs.BitHops,
		WaitCycles: cs.WaitCycles,
		MaxWait:    cs.MaxWait,
	}
}

// Recorder implements core.Probe: it converts each ProbeSample into a trace
// Sample and streams it as one JSON line. The header is written on the first
// sample (the wire inventory arrives with it). Not safe for concurrent use;
// a Recorder serves one run.
type Recorder struct {
	w           *bufio.Writer
	hdr         Header
	wroteHeader bool
	prevDyn     float64
	prevLkg     float64
	samples     int
	err         error
}

// NewRecorder builds a recorder streaming to w. The header's Schema and
// Interval are filled in; the caller supplies run identity (benchmark,
// model, clusters, n, config hash) and the L-plane energy mode.
func NewRecorder(w io.Writer, hdr Header) *Recorder {
	hdr.Schema = Schema
	hdr.Interval = core.ProbeInterval
	return &Recorder{w: bufio.NewWriter(w), hdr: hdr}
}

// Err returns the first write or encode error, if any. A failed recorder
// swallows subsequent samples rather than panicking mid-simulation.
func (r *Recorder) Err() error { return r.err }

// Samples returns how many samples have been recorded.
func (r *Recorder) Samples() int { return r.samples }

// ProbeSample implements core.Probe.
func (r *Recorder) ProbeSample(ps *core.ProbeSample) {
	if r.err != nil {
		return
	}
	if !r.wroteHeader {
		if r.hdr.Inventory == nil {
			r.hdr.Inventory = make(map[string]float64, len(ps.Stats.LinkInventory))
			for c, units := range ps.Stats.LinkInventory {
				// wires.Class prints the paper's long names ("L-Wire");
				// trace keys use the short class letters to match ClassOrder.
				r.hdr.Inventory[strings.TrimSuffix(c.String(), "-Wire")] = units
			}
		}
		if r.err = r.writeLine(&r.hdr); r.err != nil {
			return
		}
		r.wroteHeader = true
	}

	m := energy.RunMeasurement{
		Cycles:            ps.Cycle,
		Net:               ps.Stats.Net,
		Inventory:         ps.Stats.LinkInventory,
		TransmissionLineL: r.hdr.TransmissionLineL,
	}
	dyn := energy.InterconnectDynamic(m)
	lkg := energy.InterconnectLeakage(m)

	s := Sample{
		Committed: ps.Committed,
		Cycle:     ps.Cycle,
		Final:     ps.Final,
		IPC:       ps.Stats.IPC(),
		Classes: Classes{
			B:  classSample(ps.Stats, 0),
			PW: classSample(ps.Stats, 1),
			L:  classSample(ps.Stats, 2),
		},
		LSQDepth:        ps.LSQDepth,
		IQOccupancy:     ps.IQOccupancy,
		RenameOccupancy: ps.RenameOccupancy,
		Stalls: Stalls{
			Dispatch:    ps.Stats.SumDispatchStall,
			SrcWait:     ps.Stats.SumSrcWait,
			FUWait:      ps.Stats.SumFUWait,
			LoadLatency: ps.Stats.SumLoadLatency,
			LSQWait:     ps.Stats.SumLSQWait,
		},
		Techniques: Techniques{
			OperandTransfers:   ps.Stats.OperandTransfers,
			NarrowTransfers:    ps.Stats.NarrowTransfers,
			NarrowEligible:     ps.Stats.NarrowEligible,
			NarrowMispredicted: ps.Stats.NarrowMispredicted,
			PartialChecks:      ps.Stats.PartialChecks,
			PartialFalseDeps:   ps.Stats.PartialFalseDeps,
			StoreForwards:      ps.Stats.StoreForwards,
		},
		Energy: Energy{
			Dynamic:      dyn,
			Leakage:      lkg,
			DynamicDelta: dyn - r.prevDyn,
			LeakageDelta: lkg - r.prevLkg,
		},
	}
	r.prevDyn, r.prevLkg = dyn, lkg
	if r.err = r.writeLine(&s); r.err != nil {
		return
	}
	r.samples++
}

func (r *Recorder) writeLine(v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := r.w.Write(raw); err != nil {
		return err
	}
	return r.w.WriteByte('\n')
}

// Flush drains the buffered writer. Call once after the run completes.
func (r *Recorder) Flush() error {
	if r.err != nil {
		return r.err
	}
	return r.w.Flush()
}

// ReadTrace parses a JSONL trace: the versioned header line followed by
// samples. An unknown schema or a malformed line is an error (partial
// samples read so far are discarded).
func ReadTrace(rd io.Reader) (Header, []Sample, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return Header{}, nil, err
		}
		return Header{}, nil, fmt.Errorf("obs: empty trace")
	}
	var hdr Header
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return Header{}, nil, fmt.Errorf("obs: parsing trace header: %w", err)
	}
	if hdr.Schema != Schema {
		return Header{}, nil, fmt.Errorf("obs: unsupported trace schema %q (reader speaks %q)", hdr.Schema, Schema)
	}
	var samples []Sample
	line := 1
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var s Sample
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			return Header{}, nil, fmt.Errorf("obs: parsing trace line %d: %w", line, err)
		}
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return Header{}, nil, err
	}
	if len(samples) == 0 {
		return Header{}, nil, fmt.Errorf("obs: trace has a header but no samples")
	}
	return hdr, samples, nil
}
