package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestLeaseEventRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	events := []LeaseEvent{
		{TraceID: "t1", JobID: "cj-000001", LeaseID: "l-000001", Node: "n-0001",
			Start: 0, End: 8, Simulated: 6, Skipped: 2},
		{TraceID: "t1", JobID: "cj-000001", LeaseID: "l-000002", Node: "n-0002",
			Start: 8, End: 12, Simulated: 3, Failed: 1},
		{JobID: "cj-000002", LeaseID: "l-000003", Node: "n-0001",
			Start: 0, End: 4, Aborted: true},
	}
	for _, ev := range events {
		if err := AppendLeaseEvent(&buf, ev); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	got, err := ReadLeaseEvents(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(got) != len(events) {
		t.Fatalf("read %d events, want %d", len(got), len(events))
	}
	for i := range got {
		if got[i].Schema != LeaseSchema {
			t.Errorf("event %d schema %q, want %q", i, got[i].Schema, LeaseSchema)
		}
		want := events[i]
		want.Schema = LeaseSchema
		if got[i] != want {
			t.Errorf("event %d = %+v, want %+v", i, got[i], want)
		}
	}
}

func TestReadLeaseEventsRejectsBadInput(t *testing.T) {
	if _, err := ReadLeaseEvents(strings.NewReader("{not json\n")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := ReadLeaseEvents(strings.NewReader(`{"schema":"hetwire-lease/v99"}` + "\n")); err == nil {
		t.Error("unknown schema accepted")
	}
	// Blank lines are tolerated.
	var buf bytes.Buffer
	if err := AppendLeaseEvent(&buf, LeaseEvent{JobID: "j", LeaseID: "l"}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLeaseEvents(strings.NewReader("\n" + buf.String() + "\n\n"))
	if err != nil || len(got) != 1 {
		t.Fatalf("blank-line log: %d events, err %v", len(got), err)
	}
}
