package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// ClassOrder is the paper's canonical wire-class presentation order. W leads
// even though it carries no traffic (it is the design reference the other
// classes are derived from), matching Table 2 and the figures.
var ClassOrder = []string{"W", "PW", "B", "L"}

// ClassRow is the per-wire-class reduction of a trace: cumulative traffic at
// end of run plus the derived rates the figures care about.
type ClassRow struct {
	Class      string `json:"class"`
	Transfers  uint64 `json:"transfers"`
	Bits       uint64 `json:"bits"`
	BitHops    uint64 `json:"bit_hops"`
	WaitCycles uint64 `json:"wait_cycles"`
	MaxWait    uint64 `json:"max_wait"`
	// AvgWait is WaitCycles/Transfers — mean link-contention delay per
	// transfer on this plane.
	AvgWait float64 `json:"avg_wait"`
	// Inventory is the plane's physical wire-length units (from the header).
	Inventory float64 `json:"inventory"`
	// Utilization is BitHops/(Inventory·Cycles): the fraction of the plane's
	// aggregate wire-cycle capacity that carried bits. Zero for W (not an
	// instantiated link plane) and for planes with no inventory.
	Utilization float64 `json:"utilization"`
}

// Summary is the whole-trace reduction hetwiretrace prints and diffs.
type Summary struct {
	Header     Header     `json:"header"`
	Samples    int        `json:"samples"`
	Committed  uint64     `json:"committed"`
	Cycles     uint64     `json:"cycles"`
	IPC        float64    `json:"ipc"`
	Classes    []ClassRow `json:"classes"` // W, PW, B, L order
	Stalls     Stalls     `json:"stalls"`
	Techniques Techniques `json:"techniques"`
	// NarrowHitRate is NarrowTransfers/NarrowEligible — how often an
	// eligible operand actually took the narrow L-wire path.
	NarrowHitRate float64 `json:"narrow_hit_rate"`
	// PartialFalseDepRate is PartialFalseDeps/PartialChecks — how often the
	// partial-address early disambiguation raised a false dependence.
	PartialFalseDepRate float64 `json:"partial_false_dep_rate"`
	Energy              Energy  `json:"energy"`
	// Peak occupancies observed across interval samples (upper bounds; see
	// core.ProbeSample).
	PeakLSQ    int `json:"peak_lsq"`
	PeakIQ     int `json:"peak_iq"`
	PeakRename int `json:"peak_rename"`
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// classAt extracts the cumulative per-class readout from a sample by class
// name; W has no traffic plane and returns a zero row.
func classAt(s Sample, class string) ClassSample {
	switch class {
	case "B":
		return s.Classes.B
	case "PW":
		return s.Classes.PW
	case "L":
		return s.Classes.L
	}
	return ClassSample{}
}

// Summarize reduces a parsed trace to its Summary. The last sample carries
// the end-of-run cumulative counters; peaks scan all samples.
func Summarize(hdr Header, samples []Sample) (Summary, error) {
	if len(samples) == 0 {
		return Summary{}, fmt.Errorf("obs: cannot summarize a trace with no samples")
	}
	last := samples[len(samples)-1]
	sum := Summary{
		Header:              hdr,
		Samples:             len(samples),
		Committed:           last.Committed,
		Cycles:              last.Cycle,
		IPC:                 last.IPC,
		Stalls:              last.Stalls,
		Techniques:          last.Techniques,
		NarrowHitRate:       ratio(last.Techniques.NarrowTransfers, last.Techniques.NarrowEligible),
		PartialFalseDepRate: ratio(last.Techniques.PartialFalseDeps, last.Techniques.PartialChecks),
		Energy:              last.Energy,
	}
	for _, s := range samples {
		if s.LSQDepth > sum.PeakLSQ {
			sum.PeakLSQ = s.LSQDepth
		}
		if s.IQOccupancy > sum.PeakIQ {
			sum.PeakIQ = s.IQOccupancy
		}
		if s.RenameOccupancy > sum.PeakRename {
			sum.PeakRename = s.RenameOccupancy
		}
	}
	for _, class := range ClassOrder {
		cs := classAt(last, class)
		row := ClassRow{
			Class:      class,
			Transfers:  cs.Transfers,
			Bits:       cs.Bits,
			BitHops:    cs.BitHops,
			WaitCycles: cs.WaitCycles,
			MaxWait:    cs.MaxWait,
			AvgWait:    ratio(cs.WaitCycles, cs.Transfers),
			Inventory:  hdr.Inventory[class],
		}
		if row.Inventory > 0 && last.Cycle > 0 {
			row.Utilization = float64(cs.BitHops) / (row.Inventory * float64(last.Cycle))
		}
		sum.Classes = append(sum.Classes, row)
	}
	return sum, nil
}

// DiffRow is one metric compared across two summaries. DeltaPct is
// (B-A)/A·100, NaN-free: a zero baseline with a nonzero B reports +Inf
// folded to 100, and two zeros report 0.
type DiffRow struct {
	Metric   string  `json:"metric"`
	A        float64 `json:"a"`
	B        float64 `json:"b"`
	DeltaPct float64 `json:"delta_pct"`
}

func deltaPct(a, b float64) float64 {
	switch {
	case a == b:
		return 0
	case a == 0:
		return 100
	default:
		return (b - a) / math.Abs(a) * 100
	}
}

// DiffSummaries compares two summaries metric by metric, in a stable order:
// run-level metrics first, then per-class traffic in ClassOrder, then energy
// and technique rates. Metrics equal in both runs are elided — the diff of
// two identical traces is empty, and the diff of two sparse configurations
// stays readable.
func DiffSummaries(a, b Summary) []DiffRow {
	var rows []DiffRow
	add := func(metric string, va, vb float64) {
		if va == vb {
			return
		}
		rows = append(rows, DiffRow{Metric: metric, A: va, B: vb, DeltaPct: deltaPct(va, vb)})
	}
	add("ipc", a.IPC, b.IPC)
	add("cycles", float64(a.Cycles), float64(b.Cycles))
	add("committed", float64(a.Committed), float64(b.Committed))

	classA := make(map[string]ClassRow, len(a.Classes))
	for _, r := range a.Classes {
		classA[r.Class] = r
	}
	classB := make(map[string]ClassRow, len(b.Classes))
	for _, r := range b.Classes {
		classB[r.Class] = r
	}
	for _, class := range ClassOrder {
		ra, rb := classA[class], classB[class]
		add(class+".transfers", float64(ra.Transfers), float64(rb.Transfers))
		add(class+".bit_hops", float64(ra.BitHops), float64(rb.BitHops))
		add(class+".avg_wait", ra.AvgWait, rb.AvgWait)
		add(class+".utilization", ra.Utilization, rb.Utilization)
	}

	add("energy.dynamic", a.Energy.Dynamic, b.Energy.Dynamic)
	add("energy.leakage", a.Energy.Leakage, b.Energy.Leakage)
	add("stalls.dispatch", float64(a.Stalls.Dispatch), float64(b.Stalls.Dispatch))
	add("stalls.src_wait", float64(a.Stalls.SrcWait), float64(b.Stalls.SrcWait))
	add("stalls.fu_wait", float64(a.Stalls.FUWait), float64(b.Stalls.FUWait))
	add("stalls.load_latency", float64(a.Stalls.LoadLatency), float64(b.Stalls.LoadLatency))
	add("stalls.lsq_wait", float64(a.Stalls.LSQWait), float64(b.Stalls.LSQWait))
	add("narrow_hit_rate", a.NarrowHitRate, b.NarrowHitRate)
	add("partial_false_dep_rate", a.PartialFalseDepRate, b.PartialFalseDepRate)
	return rows
}

// FormatSummary renders a Summary as the aligned text block hetwiretrace
// prints. Deterministic: no timestamps, map-free iteration.
func FormatSummary(s Summary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace    %s  benchmark=%s model=%s clusters=%d n=%d\n",
		s.Header.Schema, s.Header.Benchmark, s.Header.Model, s.Header.Clusters, s.Header.N)
	fmt.Fprintf(&b, "run      committed=%d cycles=%d ipc=%.4f samples=%d (interval=%d)\n",
		s.Committed, s.Cycles, s.IPC, s.Samples, s.Header.Interval)
	fmt.Fprintf(&b, "peaks    lsq=%d iq=%d rename=%d\n", s.PeakLSQ, s.PeakIQ, s.PeakRename)
	b.WriteString("class    transfers     bit-hops  avg-wait  max-wait  inventory  utilization\n")
	for _, r := range s.Classes {
		if r.Class == "W" {
			// Design reference, not an instantiated plane: no traffic row.
			fmt.Fprintf(&b, "%-5s %12s %12s %9s %9s %10s %12s\n",
				r.Class, "-", "-", "-", "-", "-", "-")
			continue
		}
		fmt.Fprintf(&b, "%-5s %12d %12d %9.3f %9d %10.1f %12.6f\n",
			r.Class, r.Transfers, r.BitHops, r.AvgWait, r.MaxWait, r.Inventory, r.Utilization)
	}
	fmt.Fprintf(&b, "stalls   dispatch=%d src_wait=%d fu_wait=%d load_latency=%d lsq_wait=%d\n",
		s.Stalls.Dispatch, s.Stalls.SrcWait, s.Stalls.FUWait, s.Stalls.LoadLatency, s.Stalls.LSQWait)
	fmt.Fprintf(&b, "l-wire   narrow=%d/%d (hit %.1f%%, mispredict %d)  partial=%d checks, %d false deps (%.2f%%), %d store forwards\n",
		s.Techniques.NarrowTransfers, s.Techniques.NarrowEligible, s.NarrowHitRate*100,
		s.Techniques.NarrowMispredicted, s.Techniques.PartialChecks, s.Techniques.PartialFalseDeps,
		s.PartialFalseDepRate*100, s.Techniques.StoreForwards)
	fmt.Fprintf(&b, "energy   dynamic=%.1f leakage=%.1f (normalized units)\n",
		s.Energy.Dynamic, s.Energy.Leakage)
	return b.String()
}

// FormatDiff renders DiffSummaries rows as an aligned table.
func FormatDiff(rows []DiffRow) string {
	if len(rows) == 0 {
		return "no differing metrics\n"
	}
	width := len("metric")
	for _, r := range rows {
		if len(r.Metric) > width {
			width = len(r.Metric)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s %14s %14s %9s\n", width, "metric", "a", "b", "delta")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-*s %14.4f %14.4f %+8.2f%%\n", width, r.Metric, r.A, r.B, r.DeltaPct)
	}
	return b.String()
}

// Timeline renders per-class utilization over the run as text: one row per
// traffic plane, one cell per bucket of samples, glyphs scaling with the
// bucket's mean interval utilization. Interval utilization differences
// consecutive cumulative samples, so the timeline shows bursts the end-of-run
// average hides.
func Timeline(hdr Header, samples []Sample, width int) string {
	if width <= 0 {
		width = 64
	}
	if len(samples) == 0 {
		return "empty trace\n"
	}
	// Per-interval utilization per plane.
	type point struct{ util float64 }
	planes := []string{"PW", "B", "L"}
	series := make(map[string][]float64, len(planes))
	prev := Sample{}
	for i, s := range samples {
		dc := s.Cycle - prev.Cycle
		for _, class := range planes {
			inv := hdr.Inventory[class]
			var u float64
			if inv > 0 && dc > 0 {
				dh := classAt(s, class).BitHops - classAt(prev, class).BitHops
				u = float64(dh) / (inv * float64(dc))
			}
			series[class] = append(series[class], u)
		}
		prev = s
		_ = i
	}
	n := len(samples)
	if width > n {
		width = n
	}
	glyphs := []rune(" .:-=+*#%@")
	// Scale glyphs to the max utilization across all planes so rows are
	// comparable to each other.
	var max float64
	for _, class := range planes {
		for _, u := range series[class] {
			if u > max {
				max = u
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "utilization timeline  %d samples -> %d buckets  (scale: max=%.6f, glyphs \"%s\")\n",
		n, width, max, string(glyphs))
	for _, class := range planes {
		cells := make([]rune, width)
		for c := 0; c < width; c++ {
			lo, hi := c*n/width, (c+1)*n/width
			if hi <= lo {
				hi = lo + 1
			}
			var mean float64
			for _, u := range series[class][lo:hi] {
				mean += u
			}
			mean /= float64(hi - lo)
			g := 0
			if max > 0 {
				g = int(mean / max * float64(len(glyphs)-1))
				if g >= len(glyphs) {
					g = len(glyphs) - 1
				}
			}
			cells[c] = glyphs[g]
		}
		fmt.Fprintf(&b, "%-3s |%s|\n", class, string(cells))
	}
	return b.String()
}

// SortRowsByMagnitude orders diff rows by absolute delta, largest first —
// used by hetwiretrace to surface the biggest movers.
func SortRowsByMagnitude(rows []DiffRow) {
	sort.SliceStable(rows, func(i, j int) bool {
		return math.Abs(rows[i].DeltaPct) > math.Abs(rows[j].DeltaPct)
	})
}
