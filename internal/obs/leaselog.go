package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// LeaseSchema identifies the cluster lease-event log format. Like the
// sampling trace, the log is versioned JSONL so readers reject records
// written by a future incompatible writer instead of misparsing them.
const LeaseSchema = "hetwire-lease/v1"

// LeaseEvent is one completed (or aborted) work lease as seen by the node
// that executed it: which shard of which job it covered, how the scenarios
// resolved, and the trace identifier that ties it back to the originating
// batch request on the coordinator. Events carry no timestamps — ordering
// is the append order of the log — so logs from deterministic replays diff
// cleanly, matching the telemetry-trace contract.
type LeaseEvent struct {
	Schema  string `json:"schema"`
	TraceID string `json:"trace_id,omitempty"`
	// Tenant names the tenant the lease's originating job belongs to, as
	// reported by the coordinator; empty when the cluster predates tenancy
	// or runs in open mode.
	Tenant  string `json:"tenant,omitempty"`
	JobID   string `json:"job_id"`
	LeaseID string `json:"lease_id"`
	// Node is the coordinator-assigned node identity that ran the lease.
	Node string `json:"node"`
	// Start (inclusive) and End (exclusive) bound the absolute scenario
	// indices the lease covered.
	Start int `json:"start"`
	End   int `json:"end"`
	// Simulated counts scenarios the node actually ran; Skipped counts those
	// answered by the coordinator's federated cache index; Failed counts
	// per-scenario errors isolated to their slots.
	Simulated int `json:"simulated"`
	Skipped   int `json:"skipped"`
	Failed    int `json:"failed"`
	// Aborted marks a lease the node abandoned before upload (shutdown or
	// cancellation mid-lease); its indices are re-dispatched by lease expiry.
	Aborted bool `json:"aborted,omitempty"`
}

// AppendLeaseEvent writes one lease event as a JSONL record, stamping the
// schema. Safe to interleave with other writers only if w serializes writes
// (the node agent owns its log writer).
func AppendLeaseEvent(w io.Writer, ev LeaseEvent) error {
	ev.Schema = LeaseSchema
	b, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("obs: encoding lease event: %w", err)
	}
	b = append(b, '\n')
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("obs: writing lease event: %w", err)
	}
	return nil
}

// ReadLeaseEvents parses a lease-event log, skipping blank lines and
// rejecting records with a missing or unknown schema.
func ReadLeaseEvents(r io.Reader) ([]LeaseEvent, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var events []LeaseEvent
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var ev LeaseEvent
		if err := json.Unmarshal([]byte(text), &ev); err != nil {
			return nil, fmt.Errorf("obs: lease log line %d: %w", line, err)
		}
		if ev.Schema != LeaseSchema {
			return nil, fmt.Errorf("obs: lease log line %d: unsupported schema %q (want %q)", line, ev.Schema, LeaseSchema)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading lease log: %w", err)
	}
	return events, nil
}
