package obs

import (
	"bytes"
	"strings"
	"testing"

	"hetwire/internal/core"
	"hetwire/internal/noc"
	"hetwire/internal/wires"
)

// fakeSample builds a core.ProbeSample with deterministic, distinguishable
// counters scaled by k, so cumulative samples look like a growing run.
func fakeSample(k uint64, final bool) *core.ProbeSample {
	ps := &core.ProbeSample{
		Committed:       k * 8192,
		Cycle:           k * 4096,
		Final:           final,
		LSQDepth:        int(3 * k),
		IQOccupancy:     int(5 * k),
		RenameOccupancy: int(7 * k),
	}
	ps.Stats.Instructions = ps.Committed
	ps.Stats.Cycles = ps.Cycle
	for i := range ps.Stats.Net {
		ps.Stats.Net[i] = noc.ClassStats{
			Transfers:  k * uint64(100*(i+1)),
			Bits:       k * uint64(6400*(i+1)),
			BitHops:    k * uint64(12800*(i+1)),
			WaitCycles: k * uint64(10*(i+1)),
			MaxWait:    uint64(i + 2),
		}
	}
	ps.Stats.LinkInventory = map[wires.Class]float64{
		wires.B: 80, wires.PW: 80, wires.L: 20,
	}
	ps.Stats.SumDispatchStall = k * 11
	ps.Stats.SumSrcWait = k * 13
	ps.Stats.SumFUWait = k * 17
	ps.Stats.SumLoadLatency = k * 19
	ps.Stats.SumLSQWait = k * 23
	ps.Stats.NarrowEligible = k * 50
	ps.Stats.NarrowTransfers = k * 40
	ps.Stats.NarrowMispredicted = k * 2
	ps.Stats.PartialChecks = k * 30
	ps.Stats.PartialFalseDeps = k * 3
	ps.Stats.StoreForwards = k * 9
	ps.Stats.OperandTransfers = k * 70
	return ps
}

func recordTrace(t *testing.T, intervals int) (Header, []Sample, []byte) {
	t.Helper()
	var buf bytes.Buffer
	rec := NewRecorder(&buf, Header{
		Benchmark: "gcc", Model: "V", Clusters: 4, N: 16000,
	})
	for k := 1; k <= intervals; k++ {
		rec.ProbeSample(fakeSample(uint64(k), k == intervals))
	}
	if err := rec.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if rec.Samples() != intervals {
		t.Fatalf("Samples() = %d, want %d", rec.Samples(), intervals)
	}
	hdr, samples, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	return hdr, samples, buf.Bytes()
}

func TestRecorderRoundTrip(t *testing.T) {
	hdr, samples, _ := recordTrace(t, 4)
	if hdr.Schema != Schema {
		t.Errorf("header schema = %q, want %q", hdr.Schema, Schema)
	}
	if hdr.Interval != core.ProbeInterval {
		t.Errorf("header interval = %d, want %d", hdr.Interval, core.ProbeInterval)
	}
	if hdr.Benchmark != "gcc" || hdr.Model != "V" || hdr.Clusters != 4 || hdr.N != 16000 {
		t.Errorf("header identity mangled: %+v", hdr)
	}
	if got := hdr.Inventory["L"]; got != 20 {
		t.Errorf("header inventory L = %v, want 20", got)
	}
	if len(samples) != 4 {
		t.Fatalf("got %d samples, want 4", len(samples))
	}
	last := samples[3]
	if !last.Final {
		t.Error("last sample not marked final")
	}
	if samples[0].Final {
		t.Error("first sample marked final")
	}
	if last.Committed != 4*8192 || last.Cycle != 4*4096 {
		t.Errorf("last sample committed/cycle = %d/%d", last.Committed, last.Cycle)
	}
	if last.Classes.B.Transfers != 400 || last.Classes.PW.Transfers != 800 || last.Classes.L.Transfers != 1200 {
		t.Errorf("class transfers = %+v", last.Classes)
	}
	if last.Stalls.LSQWait != 4*23 {
		t.Errorf("stalls.lsq_wait = %d, want %d", last.Stalls.LSQWait, 4*23)
	}
	if last.Techniques.NarrowTransfers != 160 || last.Techniques.PartialChecks != 120 {
		t.Errorf("techniques = %+v", last.Techniques)
	}
}

func TestRecorderEnergyDeltasAreConsistent(t *testing.T) {
	_, samples, _ := recordTrace(t, 5)
	// Deltas must telescope back to the cumulative totals.
	var sumDyn, sumLkg float64
	for i, s := range samples {
		sumDyn += s.Energy.DynamicDelta
		sumLkg += s.Energy.LeakageDelta
		if s.Energy.Dynamic <= 0 || s.Energy.Leakage <= 0 {
			t.Fatalf("sample %d: non-positive cumulative energy %+v", i, s.Energy)
		}
	}
	last := samples[len(samples)-1]
	if diff := sumDyn - last.Energy.Dynamic; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("dynamic deltas sum to %v, cumulative %v", sumDyn, last.Energy.Dynamic)
	}
	if diff := sumLkg - last.Energy.Leakage; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("leakage deltas sum to %v, cumulative %v", sumLkg, last.Energy.Leakage)
	}
}

func TestRecorderDeterministicBytes(t *testing.T) {
	_, _, a := recordTrace(t, 3)
	_, _, b := recordTrace(t, 3)
	if !bytes.Equal(a, b) {
		t.Error("two identical recordings produced different bytes")
	}
}

func TestReadTraceRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"unknown schema": `{"schema":"hetwire-trace/v99"}` + "\n" + `{"committed":1}` + "\n",
		"no samples":     `{"schema":"hetwire-trace/v1"}` + "\n",
		"garbage line":   `{"schema":"hetwire-trace/v1"}` + "\n" + `{not json}` + "\n",
	}
	for name, in := range cases {
		if _, _, err := ReadTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadTrace accepted bad input", name)
		}
	}
}

func TestSummarize(t *testing.T) {
	hdr, samples, _ := recordTrace(t, 4)
	sum, err := Summarize(hdr, samples)
	if err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	if sum.Samples != 4 || sum.Committed != 4*8192 || sum.Cycles != 4*4096 {
		t.Errorf("summary run facts: %+v", sum)
	}
	if len(sum.Classes) != 4 {
		t.Fatalf("got %d class rows, want 4", len(sum.Classes))
	}
	for i, class := range ClassOrder {
		if sum.Classes[i].Class != class {
			t.Errorf("class row %d = %q, want %q", i, sum.Classes[i].Class, class)
		}
	}
	// W is the design reference: no traffic, no utilization.
	if w := sum.Classes[0]; w.Transfers != 0 || w.Utilization != 0 {
		t.Errorf("W row carries traffic: %+v", w)
	}
	// L: BitHops 4*12800*3 = 153600; inventory 20; cycles 16384.
	l := sum.Classes[3]
	wantUtil := 153600.0 / (20 * 16384.0)
	if got := l.Utilization; got < wantUtil*0.999 || got > wantUtil*1.001 {
		t.Errorf("L utilization = %v, want %v", got, wantUtil)
	}
	if l.AvgWait <= 0 {
		t.Errorf("L avg wait = %v, want > 0", l.AvgWait)
	}
	if got, want := sum.NarrowHitRate, 0.8; got != want {
		t.Errorf("narrow hit rate = %v, want %v", got, want)
	}
	if got, want := sum.PartialFalseDepRate, 0.1; got != want {
		t.Errorf("partial false-dep rate = %v, want %v", got, want)
	}
	if sum.PeakLSQ != 12 || sum.PeakIQ != 20 || sum.PeakRename != 28 {
		t.Errorf("peaks = %d/%d/%d", sum.PeakLSQ, sum.PeakIQ, sum.PeakRename)
	}
}

func TestDiffSummaries(t *testing.T) {
	hdr, samples, _ := recordTrace(t, 4)
	a, _ := Summarize(hdr, samples)
	b := a
	b.IPC = a.IPC * 1.10
	b.Energy.Dynamic = a.Energy.Dynamic * 0.5
	rows := DiffSummaries(a, b)
	byMetric := make(map[string]DiffRow, len(rows))
	for _, r := range rows {
		byMetric[r.Metric] = r
	}
	ipc, ok := byMetric["ipc"]
	if !ok {
		t.Fatal("diff missing ipc row")
	}
	if ipc.DeltaPct < 9.99 || ipc.DeltaPct > 10.01 {
		t.Errorf("ipc delta = %v%%, want ~10%%", ipc.DeltaPct)
	}
	dyn := byMetric["energy.dynamic"]
	if dyn.DeltaPct < -50.01 || dyn.DeltaPct > -49.99 {
		t.Errorf("energy.dynamic delta = %v%%, want ~-50%%", dyn.DeltaPct)
	}
	if _, present := byMetric["cycles"]; present {
		t.Error("diff contains the unchanged cycles metric; equal metrics must be elided")
	}
	// W carries no traffic in either run, so no W rows should appear.
	for _, r := range rows {
		if strings.HasPrefix(r.Metric, "W.") {
			t.Errorf("diff contains W-plane row %q", r.Metric)
		}
	}
}

func TestFormatSummaryAndTimeline(t *testing.T) {
	hdr, samples, _ := recordTrace(t, 4)
	sum, _ := Summarize(hdr, samples)
	out := FormatSummary(sum)
	for _, want := range []string{"benchmark=gcc", "ipc=", "W ", "PW", "B ", "L ", "narrow=160/200", "dynamic="} {
		if !strings.Contains(out, want) {
			t.Errorf("summary output missing %q:\n%s", want, out)
		}
	}
	tl := Timeline(hdr, samples, 16)
	for _, want := range []string{"PW  |", "B   |", "L   |"} {
		if !strings.Contains(tl, want) {
			t.Errorf("timeline missing row %q:\n%s", want, tl)
		}
	}
	// The L plane is the busiest; its row must contain a non-blank glyph.
	for _, line := range strings.Split(tl, "\n") {
		if strings.HasPrefix(line, "L ") && !strings.ContainsAny(line, ".:-=+*#%@") {
			t.Errorf("L timeline row is blank: %q", line)
		}
	}
}

func TestRecorderSurfacesWriteErrors(t *testing.T) {
	rec := NewRecorder(failingWriter{}, Header{Benchmark: "gcc"})
	// Enough samples to overflow the internal buffer so the failure hits the
	// underlying writer before Flush.
	for k := 1; k <= 16; k++ {
		rec.ProbeSample(fakeSample(uint64(k), false))
	}
	if rec.Err() == nil {
		t.Error("recorder did not record the write error")
	}
	if err := rec.Flush(); err == nil {
		t.Error("Flush did not surface the write error")
	}
	// A failed recorder must swallow further samples without panicking.
	before := rec.Samples()
	rec.ProbeSample(fakeSample(99, true))
	if rec.Samples() != before {
		t.Error("failed recorder kept counting samples")
	}
}

type failingWriter struct{}

func (failingWriter) Write(p []byte) (int, error) {
	return 0, errWrite
}

var errWrite = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "synthetic write failure" }
