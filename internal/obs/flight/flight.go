// Package flight is the hetwired flight recorder: an always-on, bounded,
// lock-light ring buffer of typed operational events (admission verdicts,
// scheduler dispatch decisions, lease lifecycle, cache outcomes, load-shed
// transitions). It answers "what did the daemon just decide, in order?"
// after an incident — the ring holds the most recent window and is dumped
// on demand (GET /v1/debug/flight) or automatically on worker panic and
// watchdog stall.
//
// Contract, mirroring the package obs probes:
//
//   - A nil *Recorder is fully inert: every method is a single pointer
//     compare and return, so the disabled path costs nothing measurable.
//   - Events carry a monotonic sequence number and NO wall-clock state.
//     Ordering is seq order, so two identical runs dump identically and
//     dumps are golden-testable. Measured quantities (virtual time,
//     durations) are the only nondeterministic fields, and canonical dumps
//     elide them (see Canonical).
//   - Recording never blocks on I/O and never allocates beyond the ring:
//     one atomic increment claims a slot, one per-slot mutex guards the
//     write. Contention is spread across the ring, not funneled through a
//     global lock.
package flight

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Schema identifies the dump format; the header line of every JSONL dump
// carries it, and readers reject anything else.
const Schema = "hetwire-flight/v1"

// DefaultEvents is the ring capacity when the caller does not choose one.
// 4096 events × ~200 B/event bounds the recorder near 1 MiB.
const DefaultEvents = 4096

// MaxEvents caps the ring so a misconfigured flag cannot allocate an
// unbounded buffer at startup.
const MaxEvents = 1 << 20

// Event kinds recorded by the daemon, the coordinator, and node agents.
const (
	// KindAdmit: a job passed admission (trace, tenant, job, lane).
	KindAdmit = "admit"
	// KindReject: admission refused; Reason carries the machine-readable
	// rejection code surfaced to the client.
	KindReject = "reject"
	// KindDispatch: the fair scheduler handed a job to a worker; Tenant,
	// Lane, and VTime record the decision inputs.
	KindDispatch = "dispatch"
	// KindLeaseGrant / KindLeaseExpire / KindLeaseUpload: coordinator-side
	// work-lease lifecycle. Expire implies the range re-dispatches.
	KindLeaseGrant  = "lease_grant"
	KindLeaseExpire = "lease_expire"
	KindLeaseUpload = "lease_upload"
	// KindLeaseRun: node-side — the agent started executing a lease.
	KindLeaseRun = "lease_run"
	// KindSpan: node-side span summary attached to heartbeat traffic
	// (Detail names the phase, DurMS its measured cost).
	KindSpan = "span"
	// KindCacheHit / KindCacheMiss / KindCacheCorrupt: result-cache
	// outcomes. Corrupt means a checksum-failed entry was dropped.
	KindCacheHit     = "cache_hit"
	KindCacheMiss    = "cache_miss"
	KindCacheCorrupt = "cache_corrupt"
	// KindWireDecode / KindZeroDecode: binary result path — a payload
	// decode happened, or a cache hit was served without one.
	KindWireDecode = "wire_decode"
	KindZeroDecode = "zero_decode"
	// KindShedEngage / KindShedRelease: load-shed watchdog transitions.
	KindShedEngage  = "shed_engage"
	KindShedRelease = "shed_release"
	// KindPanic: a worker panicked; the recorder is auto-dumped.
	KindPanic = "panic"
	// KindStall: the forward-progress watchdog aborted a run.
	KindStall = "stall"
)

// Event is one recorded decision. All fields except Seq and Kind are
// optional; unset fields are elided from JSON so dumps stay compact and
// canonical. VTime and DurMS are the only fields carrying measured (hence
// nondeterministic) quantities — Canonical clears them.
type Event struct {
	Seq    uint64  `json:"seq"`
	Kind   string  `json:"kind"`
	Trace  string  `json:"trace,omitempty"`
	Tenant string  `json:"tenant,omitempty"`
	Job    string  `json:"job,omitempty"`
	Lane   string  `json:"lane,omitempty"`
	Reason string  `json:"reason,omitempty"`
	Lease  string  `json:"lease,omitempty"`
	Node   string  `json:"node,omitempty"`
	VTime  float64 `json:"vtime,omitempty"`
	DurMS  float64 `json:"dur_ms,omitempty"`
	Detail string  `json:"detail,omitempty"`
}

// slot is one ring position. The per-slot mutex serializes the rare case of
// two writers lapping onto the same position; the seq guard keeps a slow
// writer from clobbering a newer event.
type slot struct {
	mu  sync.Mutex
	seq uint64 // 0 = empty; otherwise the 1-based seq stored here
	ev  Event
}

// sinkState is an attached streaming sink; its own mutex serializes line
// writes without touching the ring's hot path when no sink is set.
type sinkState struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// Recorder is the bounded event ring. Safe for concurrent use; the zero
// value is not usable — construct with New.
type Recorder struct {
	mask  uint64
	seq   atomic.Uint64
	slots []slot
	sink  atomic.Pointer[sinkState]
}

// New returns a recorder holding the most recent `capacity` events
// (rounded up to a power of two; 0 or negative selects DefaultEvents).
func New(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultEvents
	}
	if capacity > MaxEvents {
		capacity = MaxEvents
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &Recorder{mask: uint64(size - 1), slots: make([]slot, size)}
}

// SetSink attaches an optional streaming sink: every recorded event is also
// appended to w as one JSONL line (after the schema header line). Used by
// node agents' -flight-log.
func (r *Recorder) SetSink(w io.Writer, source string) error {
	if r == nil || w == nil {
		return nil
	}
	st := &sinkState{enc: json.NewEncoder(w)}
	if err := st.enc.Encode(Header{Schema: Schema, Source: source}); err != nil {
		return err
	}
	r.sink.Store(st)
	return nil
}

// Record stores ev in the ring, stamping its sequence number. A nil
// recorder is one pointer compare.
func (r *Recorder) Record(ev Event) {
	if r == nil {
		return
	}
	seq := r.seq.Add(1)
	ev.Seq = seq
	s := &r.slots[(seq-1)&r.mask]
	s.mu.Lock()
	if seq > s.seq {
		s.seq = seq
		s.ev = ev
	}
	s.mu.Unlock()
	if st := r.sink.Load(); st != nil {
		st.mu.Lock()
		st.enc.Encode(ev) // best-effort: the ring is the source of truth
		st.mu.Unlock()
	}
}

// Enabled reports whether events are being recorded.
func (r *Recorder) Enabled() bool { return r != nil }

// Seq returns the sequence number of the most recently recorded event
// (0 before any event).
func (r *Recorder) Seq() uint64 {
	if r == nil {
		return 0
	}
	return r.seq.Load()
}

// Snapshot copies the ring's surviving events in sequence order.
func (r *Recorder) Snapshot() []Event {
	return r.Since(0)
}

// Since copies the surviving events with Seq > after, in sequence order.
// Node agents use it to drain incrementally into heartbeats.
func (r *Recorder) Since(after uint64) []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		s := &r.slots[i]
		s.mu.Lock()
		if s.seq > after {
			out = append(out, s.ev)
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Canonical returns a copy of events with the measured (nondeterministic)
// fields cleared. Two identical runs produce byte-identical canonical
// dumps; full dumps differ only in VTime/DurMS (DESIGN §12).
func Canonical(events []Event) []Event {
	out := make([]Event, len(events))
	for i, ev := range events {
		ev.VTime = 0
		ev.DurMS = 0
		out[i] = ev
	}
	return out
}

// Header is the first JSONL line of a dump: the schema plus an optional
// source label naming the process that recorded it (coordinator address,
// node name) so merged cluster timelines can attribute events.
type Header struct {
	Schema string `json:"schema"`
	Source string `json:"source,omitempty"`
}

// WriteDump writes a header line plus one JSONL line per event. Events are
// written in the order given (callers pass Snapshot output, already
// seq-ordered), so identical event sequences produce identical bytes.
func WriteDump(w io.Writer, source string, events []Event) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(Header{Schema: Schema, Source: source}); err != nil {
		return err
	}
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// ReadDump parses a JSONL flight dump: a Schema header line followed by
// events. Blank lines are skipped; any other schema is rejected.
func ReadDump(r io.Reader) (Header, []Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	var hdr Header
	var events []Event
	seenHeader := false
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if !seenHeader {
			if err := json.Unmarshal(line, &hdr); err != nil {
				return Header{}, nil, fmt.Errorf("flight: parsing dump header: %w", err)
			}
			if hdr.Schema != Schema {
				return Header{}, nil, fmt.Errorf("flight: unsupported dump schema %q (want %q)", hdr.Schema, Schema)
			}
			seenHeader = true
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return Header{}, nil, fmt.Errorf("flight: parsing event line: %w", err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return Header{}, nil, err
	}
	if !seenHeader {
		return Header{}, nil, fmt.Errorf("flight: empty dump (no %s header)", Schema)
	}
	return hdr, events, nil
}
