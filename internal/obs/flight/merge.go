package flight

import (
	"fmt"
	"sort"
	"strings"

	"hetwire/internal/obs"
)

// Source is one process's contribution to a merged cluster timeline: a
// flight dump (coordinator or node) and/or a node's lease log. Name labels
// the rows it contributes; dumps carry their own source label in the
// header, which callers normally pass through here.
type Source struct {
	Name   string
	Events []Event
	Leases []obs.LeaseEvent
}

// mergedRow is one timeline line with its deterministic sort key. Anchor is
// the coordinator sequence number the row hangs off: coordinator events
// anchor to themselves; node events and lease records anchor to the
// coordinator's lease_grant for their lease, so causally dependent rows
// sort after their cause. Rows whose lease the coordinator never granted
// (partial dump sets) sink to the end.
type mergedRow struct {
	anchor uint64
	class  int // 0 coordinator event, 1 node event, 2 lease record
	source string
	seq    uint64
	text   string
}

// MergeTimeline merges coordinator and node flight dumps plus lease logs
// into one causal timeline per trace ID, rendered as deterministic text:
// ordering is by sequence number and grant anchoring, never wall clock, so
// two identical cluster runs merge byte-identically. Measured quantities
// (vtime, durations) are elided unless withDurations is set — they are the
// only nondeterministic event fields (DESIGN §12).
func MergeTimeline(sources []Source, withDurations bool) string {
	// The coordinator is whichever source granted leases; its events anchor
	// everyone else's.
	grantSeq := make(map[string]uint64)
	coordName := ""
	for _, src := range sources {
		for _, ev := range src.Events {
			if ev.Kind == KindLeaseGrant && ev.Lease != "" {
				grantSeq[ev.Lease] = ev.Seq
				coordName = src.Name
			}
		}
	}

	const unanchored = ^uint64(0)
	byTrace := make(map[string][]mergedRow)
	addRow := func(trace string, row mergedRow) {
		byTrace[trace] = append(byTrace[trace], row)
	}
	for _, src := range sources {
		isCoord := src.Name == coordName && coordName != ""
		for _, ev := range src.Events {
			row := mergedRow{source: src.Name, seq: ev.Seq, text: formatEvent(ev, withDurations)}
			if isCoord {
				row.anchor, row.class = ev.Seq, 0
			} else {
				row.class = 1
				if a, ok := grantSeq[ev.Lease]; ok && ev.Lease != "" {
					row.anchor = a
				} else {
					row.anchor = unanchored
				}
			}
			addRow(ev.Trace, row)
		}
		for _, le := range src.Leases {
			row := mergedRow{source: src.Name, class: 2, text: formatLease(le)}
			if a, ok := grantSeq[le.LeaseID]; ok {
				row.anchor = a
			} else {
				row.anchor = unanchored
			}
			addRow(le.TraceID, row)
		}
	}

	traces := make([]string, 0, len(byTrace))
	for tr := range byTrace {
		traces = append(traces, tr)
	}
	sort.Strings(traces)

	var b strings.Builder
	fmt.Fprintf(&b, "%s cluster timeline  sources=%d traces=%d\n", Schema, len(sources), len(traces))
	for _, tr := range traces {
		rows := byTrace[tr]
		sort.SliceStable(rows, func(i, j int) bool {
			a, c := rows[i], rows[j]
			if a.anchor != c.anchor {
				return a.anchor < c.anchor
			}
			if a.class != c.class {
				return a.class < c.class
			}
			if a.source != c.source {
				return a.source < c.source
			}
			return a.seq < c.seq
		})
		label := tr
		if label == "" {
			label = "(untraced)"
		}
		fmt.Fprintf(&b, "\ntrace %s\n", label)
		width := 0
		for _, r := range rows {
			if len(r.source) > width {
				width = len(r.source)
			}
		}
		for _, r := range rows {
			fmt.Fprintf(&b, "  %-*s %s\n", width, r.source, r.text)
		}
	}
	return b.String()
}

// formatEvent renders one event as a stable single line: kind first, then
// the set fields in fixed order.
func formatEvent(ev Event, withDurations bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%-4d %s", ev.Seq, ev.Kind)
	add := func(k, v string) {
		if v != "" {
			fmt.Fprintf(&b, " %s=%s", k, v)
		}
	}
	add("tenant", ev.Tenant)
	add("job", ev.Job)
	add("lane", ev.Lane)
	add("reason", ev.Reason)
	add("lease", ev.Lease)
	add("node", ev.Node)
	if withDurations {
		if ev.VTime != 0 {
			fmt.Fprintf(&b, " vtime=%.6f", ev.VTime)
		}
		if ev.DurMS != 0 {
			fmt.Fprintf(&b, " dur_ms=%.3f", ev.DurMS)
		}
	}
	add("detail", ev.Detail)
	return b.String()
}

// formatLease renders one lease-log record. Lease logs carry no wall-clock
// state (obs.LeaseEvent), so every field prints.
func formatLease(le obs.LeaseEvent) string {
	s := fmt.Sprintf("lease-log %s node=%s job=%s scenarios=[%d,%d) simulated=%d skipped=%d failed=%d",
		le.LeaseID, le.Node, le.JobID, le.Start, le.End, le.Simulated, le.Skipped, le.Failed)
	if le.Tenant != "" {
		s += " tenant=" + le.Tenant
	}
	if le.Aborted {
		s += " aborted"
	}
	return s
}
