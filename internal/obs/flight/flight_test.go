package flight_test

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"

	"hetwire/internal/obs"
	"hetwire/internal/obs/flight"
	"hetwire/internal/wire"
)

// TestNilRecorderIsInert pins the disabled-path contract: every method on a
// nil recorder is a no-op, never a panic.
func TestNilRecorderIsInert(t *testing.T) {
	var r *flight.Recorder
	r.Record(flight.Event{Kind: flight.KindAdmit})
	if r.Enabled() {
		t.Error("nil recorder reports enabled")
	}
	if r.Seq() != 0 {
		t.Error("nil recorder has a sequence")
	}
	if got := r.Snapshot(); got != nil {
		t.Errorf("nil Snapshot = %v, want nil", got)
	}
	if got := r.Since(0); got != nil {
		t.Errorf("nil Since = %v, want nil", got)
	}
	if err := r.SetSink(&bytes.Buffer{}, "x"); err != nil {
		t.Errorf("nil SetSink: %v", err)
	}
}

func TestRecorderOrderingAndLapping(t *testing.T) {
	r := flight.New(4) // tiny ring: 16 events lap it 4x
	for i := 0; i < 16; i++ {
		r.Record(flight.Event{Kind: flight.KindDispatch, Job: "j"})
	}
	if r.Seq() != 16 {
		t.Fatalf("Seq = %d, want 16", r.Seq())
	}
	evs := r.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("ring of 4 holds %d events after lapping", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(13 + i); ev.Seq != want {
			t.Errorf("event %d has seq %d, want %d (most recent window, ordered)", i, ev.Seq, want)
		}
	}

	// Since drains incrementally: the watermark excludes already-seen events.
	if got := r.Since(14); len(got) != 2 || got[0].Seq != 15 || got[1].Seq != 16 {
		t.Errorf("Since(14) = %+v, want seqs 15,16", got)
	}
	if got := r.Since(16); len(got) != 0 {
		t.Errorf("Since(16) = %+v, want empty", got)
	}
}

func TestRecorderConcurrentRecord(t *testing.T) {
	r := flight.New(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(flight.Event{Kind: flight.KindCacheHit})
			}
		}()
	}
	wg.Wait()
	if r.Seq() != 800 {
		t.Fatalf("Seq = %d, want 800", r.Seq())
	}
	evs := r.Snapshot()
	if len(evs) != 64 {
		t.Fatalf("full ring snapshot has %d events, want 64", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("snapshot out of order at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}

func TestCanonicalClearsMeasuredFields(t *testing.T) {
	in := []flight.Event{{Seq: 1, Kind: flight.KindDispatch, Tenant: "a", VTime: 3.5, DurMS: 12}}
	out := flight.Canonical(in)
	if out[0].VTime != 0 || out[0].DurMS != 0 {
		t.Errorf("canonical kept measured fields: %+v", out[0])
	}
	if out[0].Tenant != "a" || out[0].Seq != 1 {
		t.Errorf("canonical disturbed deterministic fields: %+v", out[0])
	}
	if in[0].VTime != 3.5 {
		t.Error("Canonical mutated its input")
	}
}

// TestDumpRoundTrip checks JSONL dump identity and that the same dump pushed
// through the binary flight container (TypeFlightRecord frames) comes back
// byte-identical — the property the CI cmp determinism check relies on.
func TestDumpRoundTrip(t *testing.T) {
	events := []flight.Event{
		{Seq: 1, Kind: flight.KindAdmit, Trace: "t1", Tenant: "acme", Job: "j-1", Lane: "interactive"},
		{Seq: 2, Kind: flight.KindDispatch, Trace: "t1", Tenant: "acme", Job: "j-1", Lane: "interactive", VTime: 0.25},
		{Seq: 3, Kind: flight.KindReject, Reason: "queue_full", Detail: "depth=64"},
	}
	var jsonl bytes.Buffer
	if err := flight.WriteDump(&jsonl, "hetwired", events); err != nil {
		t.Fatal(err)
	}
	hdr, got, err := flight.ReadDump(bytes.NewReader(jsonl.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Schema != flight.Schema || hdr.Source != "hetwired" {
		t.Errorf("header = %+v", hdr)
	}
	if !reflect.DeepEqual(got, events) {
		t.Errorf("round trip drifted:\n got %+v\nwant %+v", got, events)
	}

	// Binary container: frame the JSONL, unwrap it, require byte identity.
	var framed bytes.Buffer
	fw := wire.NewFlightWriter(&framed)
	if _, err := fw.Write(jsonl.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	if !wire.IsWire(framed.Bytes()) {
		t.Fatal("framed dump does not carry the wire magic")
	}
	var unwrapped bytes.Buffer
	if _, err := unwrapped.ReadFrom(wire.NewFlightReader(bytes.NewReader(framed.Bytes()))); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(unwrapped.Bytes(), jsonl.Bytes()) {
		t.Errorf("binary container round trip is not byte-identical:\n got %q\nwant %q",
			unwrapped.Bytes(), jsonl.Bytes())
	}
}

func TestReadDumpRejectsWrongSchema(t *testing.T) {
	if _, _, err := flight.ReadDump(strings.NewReader(`{"schema":"hetwire-trace/v1"}` + "\n")); err == nil {
		t.Error("foreign schema accepted")
	}
	if _, _, err := flight.ReadDump(strings.NewReader("")); err == nil {
		t.Error("empty dump accepted")
	}
}

func TestSinkStreamsEvents(t *testing.T) {
	r := flight.New(8)
	var buf bytes.Buffer
	if err := r.SetSink(&buf, "node-a"); err != nil {
		t.Fatal(err)
	}
	r.Record(flight.Event{Kind: flight.KindLeaseRun, Lease: "l-1"})
	r.Record(flight.Event{Kind: flight.KindSpan, Detail: "node_sim", DurMS: 4})
	hdr, evs, err := flight.ReadDump(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Source != "node-a" {
		t.Errorf("sink header source = %q", hdr.Source)
	}
	if len(evs) != 2 || evs[0].Kind != flight.KindLeaseRun || evs[1].Kind != flight.KindSpan {
		t.Errorf("sink stream = %+v", evs)
	}
}

// timelineSources builds a fixed coordinator + node + lease-log source set.
func timelineSources() []flight.Source {
	coord := []flight.Event{
		{Seq: 1, Kind: flight.KindAdmit, Trace: "tr-a", Tenant: "acme", Job: "b-1"},
		{Seq: 2, Kind: flight.KindLeaseGrant, Trace: "tr-a", Tenant: "acme", Job: "b-1", Lease: "l-1", Node: "n-1", Detail: "range=[0,4)"},
		{Seq: 3, Kind: flight.KindLeaseGrant, Trace: "tr-a", Tenant: "acme", Job: "b-1", Lease: "l-2", Node: "n-1", Detail: "range=[4,8)"},
		{Seq: 4, Kind: flight.KindLeaseUpload, Trace: "tr-a", Tenant: "acme", Job: "b-1", Lease: "l-1", Detail: "accepted=4 duplicate=0 requeued=0"},
	}
	nodeEvs := []flight.Event{
		{Seq: 1, Kind: flight.KindLeaseRun, Trace: "tr-a", Tenant: "acme", Job: "b-1", Lease: "l-1", Node: "n-1", Detail: "range=[0,4)"},
		{Seq: 2, Kind: flight.KindSpan, Trace: "tr-a", Job: "b-1", Lease: "l-1", Node: "n-1", DurMS: 7.5, Detail: "node_sim"},
		{Seq: 3, Kind: flight.KindLeaseRun, Trace: "tr-a", Tenant: "acme", Job: "b-1", Lease: "l-2", Node: "n-1", Detail: "range=[4,8)"},
	}
	leases := []obs.LeaseEvent{
		{Schema: obs.LeaseSchema, TraceID: "tr-a", Tenant: "acme", JobID: "b-1", LeaseID: "l-1", Node: "n-1", Start: 0, End: 4, Simulated: 4},
	}
	return []flight.Source{
		{Name: "coordinator", Events: coord},
		{Name: "node-1", Events: nodeEvs},
		{Name: "node-1.leases", Leases: leases},
	}
}

func TestMergeTimelineDeterministicAndCausal(t *testing.T) {
	a := flight.MergeTimeline(timelineSources(), false)
	b := flight.MergeTimeline(timelineSources(), false)
	if a != b {
		t.Fatalf("two merges of identical sources differ:\n%s\n---\n%s", a, b)
	}
	// Source-order independence: the merge keys on grant anchoring, not on
	// the order dumps were passed.
	srcs := timelineSources()
	srcs[0], srcs[1] = srcs[1], srcs[0]
	if c := flight.MergeTimeline(srcs, false); c != a {
		t.Fatalf("merge depends on source argument order:\n%s\n---\n%s", a, c)
	}

	// Causality: the node's l-1 execution sorts after the coordinator's l-1
	// grant and before the l-2 grant block.
	grant1 := strings.Index(a, "lease_grant tenant=acme job=b-1 lease=l-1")
	run1 := strings.Index(a, "lease_run tenant=acme job=b-1 lease=l-1")
	grant2 := strings.Index(a, "lease_grant tenant=acme job=b-1 lease=l-2")
	run2 := strings.Index(a, "lease_run tenant=acme job=b-1 lease=l-2")
	if !(grant1 >= 0 && run1 > grant1 && grant2 > run1 && run2 > grant2) {
		t.Errorf("causal ordering broken (grant1=%d run1=%d grant2=%d run2=%d):\n%s",
			grant1, run1, grant2, run2, a)
	}
	if !strings.Contains(a, "lease-log l-1 node=n-1 job=b-1 scenarios=[0,4) simulated=4") {
		t.Errorf("lease log row missing:\n%s", a)
	}
	if strings.Contains(a, "dur_ms") {
		t.Error("durations leaked into a canonical timeline")
	}
	if d := flight.MergeTimeline(timelineSources(), true); !strings.Contains(d, "dur_ms=7.500") {
		t.Errorf("-durations timeline misses the measured span:\n%s", d)
	}
}
