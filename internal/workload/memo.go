package workload

import (
	"container/list"
	"expvar"
	"sync"
	"unsafe"
)

// Static-program memoization.
//
// Building a profile's static program (buildProgram) costs far more than
// streaming its first few thousand instructions: block construction, memory
// pattern placement, and the Zipf CDF are O(StaticBlocks + WorkingSet). A
// sweep re-running the same benchmark across ten interconnect models pays
// that cost once per scenario unless the build is shared. The Cache below
// memoizes programs content-addressed by the full Profile value (Profile is
// a flat comparable struct, so the key *is* the content: two requests share
// an entry exactly when every parameter — seed, mix, locality, address
// offset — is equal, the same condition under which their streams are
// byte-identical).
//
// Invalidation contract: a program depends on nothing but the Profile and
// the generator code itself. Profiles are immutable values, so entries can
// never go stale at runtime; the only invalidation is process restart after
// a code change, which the golden corpus re-pins. Eviction is therefore
// purely a memory-budget concern, handled LRU under a byte budget.
//
// Concurrency: cached artifacts are shared read-only across generators (the
// mutable memory-pattern table is cloned per generator; see program), so any
// number of goroutines may draw generators for the same profile at once. A
// concurrent miss may build the same program twice; both builds are
// deterministic and identical, so whichever loses the insert race is simply
// dropped.

// DefaultMemoBytes is the Shared cache budget: comfortably above the whole
// SPEC2K suite plus per-thread multiprogrammed variants (a program retains
// roughly 50–400 KiB), small next to one simulator instance.
const DefaultMemoBytes = 32 << 20

// Shared is the process-wide program memo used by NewGenerator.
var Shared = NewCache(DefaultMemoBytes)

// Cache memoizes built static programs under a byte budget with LRU
// eviction. The zero value is not usable; construct with NewCache.
type Cache struct {
	mu      sync.Mutex
	budget  int64
	bytes   int64
	ll      *list.List // front = most recently used
	entries map[Profile]*list.Element

	hits      uint64
	misses    uint64
	evictions uint64
}

type memoEntry struct {
	key Profile
	pr  *program
}

// NewCache creates a program cache holding at most budget bytes of build
// artifacts. A budget <= 0 disables retention: every Generator call builds
// cold (and counts as a miss).
func NewCache(budget int64) *Cache {
	return &Cache{
		budget:  budget,
		ll:      list.New(),
		entries: make(map[Profile]*list.Element),
	}
}

// Generator returns a fresh deterministic stream for the profile, reusing
// the memoized static program when one is cached and building (and caching)
// it otherwise. Generators from hits and misses are indistinguishable.
func (c *Cache) Generator(p Profile) *Generator {
	p = p.normalized()
	c.mu.Lock()
	if el, ok := c.entries[p]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		pr := el.Value.(*memoEntry).pr
		c.mu.Unlock()
		return newFromProgram(p, pr)
	}
	c.misses++
	c.mu.Unlock()

	// Build outside the lock: programs take milliseconds to construct and
	// holding the lock would serialize concurrent cold scenarios. A racing
	// builder may insert first; the duplicate build below is then discarded.
	pr := buildProgram(p)

	c.mu.Lock()
	if _, ok := c.entries[p]; !ok && pr.bytes <= c.budget {
		c.entries[p] = c.ll.PushFront(&memoEntry{key: p, pr: pr})
		c.bytes += pr.bytes
		for c.bytes > c.budget {
			back := c.ll.Back()
			if back == nil || back == c.ll.Front() {
				break // never evict the entry just inserted
			}
			ent := back.Value.(*memoEntry)
			c.ll.Remove(back)
			delete(c.entries, ent.key)
			c.bytes -= ent.pr.bytes
			c.evictions++
		}
	}
	c.mu.Unlock()
	return newFromProgram(p, pr)
}

// MemoStats is a point-in-time readout of a Cache.
type MemoStats struct {
	Hits, Misses, Evictions uint64
	Bytes                   int64
	Entries                 int
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() MemoStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return MemoStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Bytes:     c.bytes,
		Entries:   len(c.entries),
	}
}

// sizeBytes estimates the heap retained by a program: slice headers are
// ignored (constant noise), element payloads dominate.
func (pr *program) sizeBytes() int64 {
	n := int64(unsafe.Sizeof(*pr))
	n += int64(len(pr.mems)) * int64(unsafe.Sizeof(memPattern{}))
	n += int64(pr.zipf.TableLen()) * 8
	for i := range pr.blocks {
		n += int64(unsafe.Sizeof(staticBlock{}))
		n += int64(len(pr.blocks[i].instrs)) * int64(unsafe.Sizeof(staticInstr{}))
	}
	return n
}

// The Shared cache's counters are published under expvar so the hetwired
// debug listener (-debug-addr) exposes memo effectiveness alongside the
// runtime's own variables.
func init() {
	expvar.Publish("hetwire_workload_memo", expvar.Func(func() any {
		st := Shared.Stats()
		return map[string]any{
			"hits":      st.Hits,
			"misses":    st.Misses,
			"evictions": st.Evictions,
			"bytes":     st.Bytes,
			"entries":   st.Entries,
		}
	}))
}
