package workload

import (
	"math"
	"testing"

	"hetwire/internal/bpred"
	"hetwire/internal/cache"
	"hetwire/internal/narrow"
	"hetwire/internal/trace"
)

// sample draws n instructions from a generator.
func sample(p Profile, n int) []trace.Instr {
	g := NewGenerator(p)
	out := make([]trace.Instr, n)
	var ins trace.Instr
	for i := 0; i < n; i++ {
		if !g.Next(&ins) {
			panic("generator ended")
		}
		out[i] = ins
	}
	return out
}

// TestDeterminism: two generators with the same profile produce identical
// streams.
func TestDeterminism(t *testing.T) {
	p, _ := ByName("gcc")
	a := sample(p, 5000)
	b := sample(p, 5000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at instruction %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestInstructionMixMatchesProfile: dynamic fractions land near the profile
// parameters for every benchmark.
func TestInstructionMixMatchesProfile(t *testing.T) {
	for _, p := range SPEC2K() {
		instrs := sample(p, 60000)
		var loads, stores, branches, fp int
		for _, ins := range instrs {
			switch ins.Op {
			case trace.Load:
				loads++
			case trace.Store:
				stores++
			case trace.Branch:
				branches++
			case trace.FPALU, trace.FPMul:
				fp++
			}
		}
		n := float64(len(instrs))
		if got := float64(loads) / n; math.Abs(got-p.FracLoad) > 0.08 {
			t.Errorf("%s: load fraction %.3f, profile %.3f", p.Name, got, p.FracLoad)
		}
		if got := float64(stores) / n; math.Abs(got-p.FracStore) > 0.08 {
			t.Errorf("%s: store fraction %.3f, profile %.3f", p.Name, got, p.FracStore)
		}
		if got := float64(branches) / n; math.Abs(got-p.FracBranch) > 0.08 {
			t.Errorf("%s: branch fraction %.3f, profile %.3f", p.Name, got, p.FracBranch)
		}
	}
}

// TestBranchStreamIsPredictable: feeding the generated branch stream to the
// real combining predictor must give realistic SPEC-like accuracy — above
// 80% everywhere, and integer-branchy codes below 99.9% (not trivially
// predictable).
func TestBranchStreamIsPredictable(t *testing.T) {
	for _, name := range []string{"gcc", "gzip", "mcf", "swim", "mesa"} {
		p, ok := ByName(name)
		if !ok {
			t.Fatalf("missing profile %s", name)
		}
		pr := bpred.New(bpred.Config{
			BimodalSize: 16384, L1Size: 16384, HistoryBits: 12,
			L2Size: 16384, ChooserSize: 16384, BTBSets: 16384, BTBAssoc: 2, RASEntries: 32,
		})
		g := NewGenerator(p)
		var ins trace.Instr
		for i := 0; i < 200000; i++ {
			g.Next(&ins)
			if ins.Op == trace.Branch {
				pr.UpdateDirection(ins.PC, ins.Taken)
			}
		}
		acc := pr.Accuracy()
		if acc < 0.80 || acc > 0.999 {
			t.Errorf("%s: branch accuracy %.4f outside realistic range [0.80, 0.999]", name, acc)
		}
	}
}

// TestMemoryStreamMissRates: the generated address streams must drive the
// real cache model to sensible miss rates — near zero for cache-friendly
// codes, substantial for mcf/art.
func TestMemoryStreamMissRates(t *testing.T) {
	missRate := func(name string) float64 {
		p, _ := ByName(name)
		c := cache.New(cache.Config{SizeBytes: 32 * 1024, LineBytes: 64, Assoc: 4, Latency: 6})
		g := NewGenerator(p)
		var ins trace.Instr
		for i := 0; i < 300000; i++ {
			g.Next(&ins)
			if ins.Op.IsMem() {
				c.Lookup(ins.Addr)
			}
		}
		return c.MissRate()
	}
	friendly := missRate("eon")
	hostile := missRate("mcf")
	if friendly > 0.10 {
		t.Errorf("eon L1 miss rate %.3f, want < 0.10", friendly)
	}
	if hostile < 0.15 {
		t.Errorf("mcf L1 miss rate %.3f, want > 0.15", hostile)
	}
	if hostile < friendly*2 {
		t.Errorf("mcf (%.3f) should miss far more than eon (%.3f)", hostile, friendly)
	}
}

// TestNarrowFractionTracksProfile: the dynamic fraction of narrow integer
// results follows the profile's NarrowFrac knob, and the stream keeps per-PC
// width behaviour stable enough for the 2-bit predictor (>= 85% coverage).
func TestNarrowFractionTracksProfile(t *testing.T) {
	p, _ := ByName("gzip") // NarrowFrac 0.30
	pred := narrow.NewPredictor(8192)
	g := NewGenerator(p)
	var ins trace.Instr
	producers, narrows := 0, 0
	for i := 0; i < 200000; i++ {
		g.Next(&ins)
		if ins.Dest == trace.NoReg || ins.Op.IsFP() {
			continue
		}
		producers++
		isN := narrow.IsNarrow(ins.Value, 10)
		if isN {
			narrows++
		}
		pred.Record(ins.PC, isN)
	}
	frac := float64(narrows) / float64(producers)
	if math.Abs(frac-p.NarrowFrac) > 0.12 {
		t.Errorf("narrow fraction %.3f, profile %.3f", frac, p.NarrowFrac)
	}
	if cov := pred.Coverage(); cov < 0.85 {
		t.Errorf("narrow predictor coverage %.3f on synthetic stream, want >= 0.85", cov)
	}
	if fnr := pred.FalseNarrowRate(); fnr > 0.05 {
		t.Errorf("false-narrow rate %.3f, want <= 0.05", fnr)
	}
}

// TestDependenceDistanceKnob: a higher DepP concentrates dependences on the
// immediately preceding producers (tighter chains). Measured as the share
// of register sources whose writer is within the last four instructions.
func TestDependenceDistanceKnob(t *testing.T) {
	tightShare := func(depP float64) float64 {
		p, _ := ByName("gcc")
		p.DepP = depP
		g := NewGenerator(p)
		var ins trace.Instr
		lastWrite := map[int16]int{}
		near, n := 0, 0
		for i := 0; i < 100000; i++ {
			g.Next(&ins)
			for _, src := range []int16{ins.Src1, ins.Src2} {
				if src == trace.NoReg {
					continue
				}
				if w, ok := lastWrite[src]; ok {
					n++
					if i-w <= 4 {
						near++
					}
				}
			}
			if ins.Dest != trace.NoReg {
				lastWrite[ins.Dest] = i
			}
		}
		return float64(near) / float64(n)
	}
	tight := tightShare(0.85)
	loose := tightShare(0.3)
	if tight <= loose {
		t.Errorf("dependence knob inverted: tight share %.3f <= loose share %.3f", tight, loose)
	}
}

// TestPCsAndTargetsConsistent: branch targets point at real block starts and
// PCs advance by 4 within a block.
func TestPCsAndTargetsConsistent(t *testing.T) {
	p, _ := ByName("crafty")
	g := NewGenerator(p)
	starts := map[uint64]bool{}
	for _, b := range g.blocks {
		starts[b.pc] = true
	}
	var ins trace.Instr
	var prev trace.Instr
	for i := 0; i < 50000; i++ {
		g.Next(&ins)
		if i > 0 && prev.Op == trace.Branch {
			if prev.Taken && !starts[ins.PC] {
				t.Fatalf("taken branch led to non-block-start PC %#x", ins.PC)
			}
			if prev.Taken && ins.PC != prev.Target {
				t.Fatalf("taken branch target %#x but next PC %#x", prev.Target, ins.PC)
			}
			if !prev.Taken && ins.PC != prev.PC+4 && !starts[ins.PC] {
				t.Fatalf("fall-through went to %#x from branch at %#x", ins.PC, prev.PC)
			}
		} else if i > 0 && ins.PC != prev.PC+4 {
			t.Fatalf("non-branch PC discontinuity: %#x -> %#x", prev.PC, ins.PC)
		}
		prev = ins
	}
}

// TestAllProfilesPresent: the paper's 23-benchmark subset, by name.
func TestAllProfilesPresent(t *testing.T) {
	want := []string{
		"ammp", "applu", "apsi", "art", "bzip2", "crafty", "eon", "equake",
		"fma3d", "galgel", "gap", "gcc", "gzip", "lucas", "mcf", "mesa",
		"mgrid", "parser", "swim", "twolf", "vortex", "vpr", "wupwise",
	}
	got := Names()
	if len(got) != 23 {
		t.Fatalf("have %d profiles, want 23", len(got))
	}
	for i, name := range want {
		if got[i] != name {
			t.Errorf("profile %d = %s, want %s", i, got[i], name)
		}
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Error("ByName found a nonexistent benchmark")
	}
}

// TestStoresHaveAddressesLoadsHaveValues: structural sanity of the records.
func TestStoresHaveAddressesLoadsHaveValues(t *testing.T) {
	p, _ := ByName("vortex")
	for _, ins := range sample(p, 20000) {
		switch ins.Op {
		case trace.Load:
			if ins.Addr == 0 || ins.Dest == trace.NoReg {
				t.Fatalf("malformed load: %+v", ins)
			}
		case trace.Store:
			if ins.Addr == 0 || ins.Dest != trace.NoReg || ins.Src2 == trace.NoReg {
				t.Fatalf("malformed store: %+v", ins)
			}
		case trace.Branch:
			if ins.Dest != trace.NoReg || ins.Target == 0 {
				t.Fatalf("malformed branch: %+v", ins)
			}
		}
		if ins.Addr != 0 && ins.Addr%8 != 0 {
			t.Fatalf("unaligned address %#x", ins.Addr)
		}
	}
}

// TestKernelCharacteristics: each microbenchmark kernel expresses the
// behaviour it is named for.
func TestKernelCharacteristics(t *testing.T) {
	missRateOf := func(p Profile) float64 {
		c := cache.New(cache.Config{SizeBytes: 32 * 1024, LineBytes: 64, Assoc: 4, Latency: 6})
		g := NewGenerator(p)
		var ins trace.Instr
		for i := 0; i < 200000; i++ {
			g.Next(&ins)
			if ins.Op.IsMem() {
				c.Lookup(ins.Addr)
			}
		}
		return c.MissRate()
	}
	braccOf := func(p Profile) float64 {
		pr := bpred.New(bpred.Config{
			BimodalSize: 16384, L1Size: 16384, HistoryBits: 12,
			L2Size: 16384, ChooserSize: 16384, BTBSets: 16384, BTBAssoc: 2, RASEntries: 32,
		})
		g := NewGenerator(p)
		var ins trace.Instr
		for i := 0; i < 200000; i++ {
			g.Next(&ins)
			if ins.Op == trace.Branch {
				pr.UpdateDirection(ins.PC, ins.Taken)
			}
		}
		return pr.Accuracy()
	}

	chase, _ := KernelByName("pchase")
	aluK, _ := KernelByName("alu")
	storm, _ := KernelByName("brstorm")

	if mr := missRateOf(chase); mr < 0.3 {
		t.Errorf("pchase L1 miss rate %.2f, want memory-hostile (> 0.3)", mr)
	}
	if mr := missRateOf(aluK); mr > 0.05 {
		t.Errorf("alu kernel L1 miss rate %.2f, want cache-resident (< 0.05)", mr)
	}
	if acc := braccOf(storm); acc > 0.92 {
		t.Errorf("brstorm branch accuracy %.3f, want hard-to-predict (< 0.92)", acc)
	}
	if acc := braccOf(aluK); acc < 0.93 {
		t.Errorf("alu kernel branch accuracy %.3f, want predictable (> 0.93)", acc)
	}
	if len(Kernels()) < 5 {
		t.Error("kernel set shrank")
	}
	if _, ok := KernelByName("nope"); ok {
		t.Error("KernelByName invented a kernel")
	}
}
