package workload

import (
	"encoding/json"
	"expvar"
	"testing"

	"hetwire/internal/trace"
)

func profileNamed(t *testing.T, name string) Profile {
	t.Helper()
	p, ok := ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %q", name)
	}
	return p
}

// streamPrefix drives a generator for n instructions and returns the emitted
// records.
func streamPrefix(g *Generator, n int) []trace.Instr {
	out := make([]trace.Instr, n)
	for i := 0; i < n; i++ {
		g.Next(&out[i])
	}
	return out
}

// TestMemoCachedStreamIdentical: a generator drawn from a memo hit emits the
// byte-identical instruction stream of a cold build — the property the
// golden-corpus batch test then pins end-to-end through the simulator.
func TestMemoCachedStreamIdentical(t *testing.T) {
	for _, name := range []string{"gcc", "mcf", "swim"} {
		p := profileNamed(t, name)
		c := NewCache(1 << 30)
		miss := c.Generator(p) // builds and caches
		hit := c.Generator(p)  // served from the memo
		cold := NewGeneratorUncached(p)

		const n = 20_000
		wantStream := streamPrefix(cold, n)
		for which, g := range map[string]*Generator{"miss": miss, "hit": hit} {
			got := streamPrefix(g, n)
			for i := range got {
				if got[i] != wantStream[i] {
					t.Fatalf("%s: %s generator diverges from cold build at instr %d:\n got %+v\nwant %+v",
						name, which, i, got[i], wantStream[i])
				}
			}
		}
		if st := c.Stats(); st.Hits != 1 || st.Misses != 1 {
			t.Errorf("%s: stats = %+v, want 1 hit / 1 miss", name, st)
		}
	}
}

// TestMemoCacheCounters: hits and misses count exactly, per profile.
func TestMemoCacheCounters(t *testing.T) {
	c := NewCache(1 << 30)
	gcc := profileNamed(t, "gcc")
	mcf := profileNamed(t, "mcf")

	c.Generator(gcc) // miss
	c.Generator(gcc) // hit
	c.Generator(gcc) // hit
	c.Generator(mcf) // miss

	st := c.Stats()
	if st.Misses != 2 || st.Hits != 2 || st.Entries != 2 || st.Evictions != 0 {
		t.Errorf("stats = %+v, want 2 misses, 2 hits, 2 entries", st)
	}
	if st.Bytes <= 0 {
		t.Errorf("bytes = %d, want > 0", st.Bytes)
	}
}

// TestMemoCacheEviction: the byte budget is enforced by evicting the least
// recently used program, and an over-budget program is simply not retained.
func TestMemoCacheEviction(t *testing.T) {
	gcc := profileNamed(t, "gcc")
	mcf := profileNamed(t, "mcf")

	// Learn the two programs' retained sizes with an unbounded cache.
	probe := NewCache(1 << 30)
	probe.Generator(gcc)
	gccBytes := probe.Stats().Bytes
	probe.Generator(mcf)
	bothBytes := probe.Stats().Bytes
	if gccBytes <= 0 || bothBytes <= gccBytes {
		t.Fatalf("size probe broken: gcc=%d both=%d", gccBytes, bothBytes)
	}

	// A budget one byte short of both forces LRU eviction of gcc when mcf
	// arrives.
	c := NewCache(bothBytes - 1)
	c.Generator(gcc)
	c.Generator(mcf)
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 1 {
		t.Fatalf("stats after over-budget insert = %+v, want 1 eviction / 1 entry", st)
	}
	if st.Bytes > bothBytes-1 {
		t.Errorf("bytes = %d exceeds budget %d", st.Bytes, bothBytes-1)
	}
	c.Generator(gcc) // re-miss: it was evicted
	if st := c.Stats(); st.Misses != 3 || st.Hits != 0 {
		t.Errorf("stats after re-request = %+v, want 3 misses / 0 hits", st)
	}

	// MRU protection: the entry just inserted is never evicted, even when it
	// alone exceeds the budget (it is returned but not retained... unless it
	// fits exactly at the front).
	tiny := NewCache(1)
	tiny.Generator(gcc)
	if st := tiny.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("over-budget program was retained: %+v", st)
	}
}

// TestMemoCacheLRUOrder: touching an entry protects it; the stalest entry
// goes first.
func TestMemoCacheLRUOrder(t *testing.T) {
	gcc := profileNamed(t, "gcc")
	mcf := profileNamed(t, "mcf")
	swim := profileNamed(t, "swim")

	gzip := profileNamed(t, "gzip")
	size := func(p Profile) int64 {
		probe := NewCache(1 << 30)
		probe.Generator(p)
		return probe.Stats().Bytes
	}
	bGcc, bMcf, bSwim, bGzip := size(gcc), size(mcf), size(swim), size(gzip)

	// Budget that holds {gcc, mcf, swim}, and holds {gcc, swim, gzip} after
	// evicting exactly the LRU entry (mcf) — whichever of mcf/gzip is larger.
	budget := bGcc + bMcf + bSwim
	if alt := bGcc + bSwim + bGzip; alt > budget {
		budget = alt
	}
	c := NewCache(budget)
	c.Generator(gcc)
	c.Generator(mcf)
	c.Generator(gcc)  // touch gcc -> mcf is now LRU
	c.Generator(swim) // fits, no eviction
	if st := c.Stats(); st.Evictions != 0 {
		t.Fatalf("eviction despite fitting budget: %+v", st)
	}
	// gzip pushes the cache over budget: exactly the LRU entry (mcf) must go.
	c.Generator(gzip)
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 3 {
		t.Fatalf("stats after over-budget insert = %+v, want exactly 1 eviction", st)
	}
	c.Generator(gcc) // must still be cached
	if st := c.Stats(); st.Hits != 2 { // the explicit touch + this one
		t.Errorf("gcc was evicted instead of the LRU entry: %+v", st)
	}
}

// TestMemoExpvarPublished: the Shared cache's counters are visible to the
// debug listener and stay JSON-encodable.
func TestMemoExpvarPublished(t *testing.T) {
	v := expvar.Get("hetwire_workload_memo")
	if v == nil {
		t.Fatal("hetwire_workload_memo not published")
	}
	var out map[string]any
	if err := json.Unmarshal([]byte(v.String()), &out); err != nil {
		t.Fatalf("expvar payload not JSON: %v", err)
	}
	for _, k := range []string{"hits", "misses", "evictions", "bytes", "entries"} {
		if _, ok := out[k]; !ok {
			t.Errorf("expvar payload missing %q: %v", k, out)
		}
	}
}
