package workload

// Kernels returns synthetic microbenchmark profiles that isolate one
// machine behaviour each — useful for studying a single bottleneck the way
// the SPEC-like profiles cannot. They reuse the same generator machinery
// and are fully deterministic.
func Kernels() []Profile {
	return []Profile{
		{
			// pchase: dependent loads over a huge region — pure memory
			// latency, near-zero ILP. The worst case for any interconnect.
			Name: "pchase", Seed: 9001,
			FracLoad: 0.40, FracStore: 0.02, FracBranch: 0.06,
			FracFP: 0, FracMul: 0,
			DepP: 0.85, FarDepFrac: 0.05,
			BiasedFrac: 0.80, LoopFrac: 0.15, RandTakenP: 0.5,
			WorkingSetKB: 64, BigRegionMB: 64, BigFrac: 0.60, StrideFrac: 0.02,
			BiasP: 0.99, NarrowFrac: 0.05, StaticBlocks: 64,
		},
		{
			// stream: unit-stride vector walks with wide fp ILP — the
			// bandwidth extreme, where PW-wires shine.
			Name: "stream", Seed: 9002,
			FracLoad: 0.34, FracStore: 0.16, FracBranch: 0.02,
			FracFP: 0.90, FracMul: 0.30,
			DepP: 0.30, FarDepFrac: 0.45,
			BiasedFrac: 0.20, LoopFrac: 0.78, RandTakenP: 0.5,
			WorkingSetKB: 32, BigRegionMB: 4, BigFrac: 0.50, StrideFrac: 0.98,
			BiasP: 0.995, NarrowFrac: 0.02, StaticBlocks: 32,
		},
		{
			// brstorm: short blocks of barely-predictable branches — the
			// mispredict-signal path's stress test.
			Name: "brstorm", Seed: 9003,
			FracLoad: 0.10, FracStore: 0.04, FracBranch: 0.24,
			FracFP: 0, FracMul: 0,
			DepP: 0.60, FarDepFrac: 0.30,
			BiasedFrac: 0.25, LoopFrac: 0.10, RandTakenP: 0.45,
			WorkingSetKB: 16, BigRegionMB: 1, BigFrac: 0, StrideFrac: 0.3,
			NarrowFrac: 0.30, StaticBlocks: 512,
		},
		{
			// alu: register-to-register integer chains that fit entirely in
			// cluster-local resources — the communication minimum.
			Name: "alu", Seed: 9004,
			FracLoad: 0.06, FracStore: 0.02, FracBranch: 0.06,
			FracFP: 0, FracMul: 0.05,
			DepP: 0.55, FarDepFrac: 0.40,
			BiasedFrac: 0.75, LoopFrac: 0.22, RandTakenP: 0.5,
			WorkingSetKB: 16, BigRegionMB: 1, BigFrac: 0, StrideFrac: 0.5,
			BiasP: 0.99, NarrowFrac: 0.40, StaticBlocks: 96,
		},
		{
			// xfer: deliberately scattered dependences — the communication
			// maximum, where L-wires matter most.
			Name: "xfer", Seed: 9005,
			FracLoad: 0.12, FracStore: 0.05, FracBranch: 0.08,
			FracFP: 0.30, FracMul: 0.15,
			DepP: 0.30, FarDepFrac: 0.10,
			BiasedFrac: 0.70, LoopFrac: 0.20, RandTakenP: 0.5,
			WorkingSetKB: 24, BigRegionMB: 1, BigFrac: 0, StrideFrac: 0.4,
			BiasP: 0.99, NarrowFrac: 0.25, StaticBlocks: 48,
		},
	}
}

// KernelByName returns a kernel profile by name.
func KernelByName(name string) (Profile, bool) {
	for _, p := range Kernels() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
