package workload

// SPEC2K returns the 23 synthetic benchmark profiles standing in for the
// paper's SPEC2000 subset (all of SPEC2k except sixtrack, facerec and
// perlbmk, which were incompatible with the paper's infrastructure).
//
// Parameters are set from the well-known characteristics of each program
// (instruction mix, branchiness, memory-boundedness, fp share) and then
// calibrated so the 4-cluster Model-I baseline reproduces the rough IPC
// spread of paper Figure 3: memory-bound programs (mcf, art) at the bottom,
// regular codes (mesa, eon, galgel) at the top, and an arithmetic-mean IPC
// near 0.95.
func SPEC2K() []Profile {
	return []Profile{
		{
			Name: "ammp", Seed: 101,
			FracLoad: 0.26, FracStore: 0.09, FracBranch: 0.06,
			FracFP: 0.75, FracMul: 0.3,
			DepP: 0.55, FarDepFrac: 0.35,
			BiasedFrac: 0.55, LoopFrac: 0.4, RandTakenP: 0.5,
			WorkingSetKB: 40, BigRegionMB: 4, BigFrac: 0.05, StrideFrac: 0.4,
			BiasP:      0.985,
			NarrowFrac: 0.1, StaticBlocks: 384,
		},
		{
			Name: "applu", Seed: 102,
			FracLoad: 0.27, FracStore: 0.11, FracBranch: 0.03,
			FracFP: 0.85, FracMul: 0.35,
			DepP: 0.5, FarDepFrac: 0.38,
			BiasedFrac: 0.5, LoopFrac: 0.47, RandTakenP: 0.5,
			WorkingSetKB: 32, BigRegionMB: 2, BigFrac: 0.35, StrideFrac: 0.8,
			BiasP:      0.99,
			NarrowFrac: 0.08, StaticBlocks: 256,
		},
		{
			Name: "apsi", Seed: 103,
			FracLoad: 0.25, FracStore: 0.1, FracBranch: 0.05,
			FracFP: 0.75, FracMul: 0.3,
			DepP: 0.55, FarDepFrac: 0.35,
			BiasedFrac: 0.52, LoopFrac: 0.44, RandTakenP: 0.5,
			WorkingSetKB: 40, BigRegionMB: 2, BigFrac: 0.25, StrideFrac: 0.7,
			BiasP:      0.985,
			NarrowFrac: 0.1, StaticBlocks: 320,
		},
		{
			Name: "art", Seed: 104,
			FracLoad: 0.3, FracStore: 0.07, FracBranch: 0.1,
			FracFP: 0.7, FracMul: 0.25,
			DepP: 0.6, FarDepFrac: 0.32,
			BiasedFrac: 0.6, LoopFrac: 0.36, RandTakenP: 0.5,
			WorkingSetKB: 64, BigRegionMB: 2, BigFrac: 0.45, StrideFrac: 0.7,
			NarrowFrac: 0.12, StaticBlocks: 128,
		},
		{
			Name: "bzip2", Seed: 105,
			FracLoad: 0.26, FracStore: 0.1, FracBranch: 0.13,
			FracFP: 0.0, FracMul: 0.04,
			DepP: 0.7, FarDepFrac: 0.3,
			BiasedFrac: 0.75, LoopFrac: 0.17, RandTakenP: 0.45,
			WorkingSetKB: 32, BigRegionMB: 4, BigFrac: 0.04, StrideFrac: 0.5,
			BiasP:      0.98,
			NarrowFrac: 0.22, StaticBlocks: 256,
		},
		{
			Name: "crafty", Seed: 106,
			FracLoad: 0.28, FracStore: 0.08, FracBranch: 0.12,
			FracFP: 0.0, FracMul: 0.03,
			DepP: 0.7, FarDepFrac: 0.28,
			BiasedFrac: 0.8, LoopFrac: 0.12, RandTakenP: 0.42,
			WorkingSetKB: 24, BigRegionMB: 4, BigFrac: 0.01, StrideFrac: 0.3,
			BiasP:      0.985,
			NarrowFrac: 0.25, StaticBlocks: 1024,
		},
		{
			Name: "eon", Seed: 107,
			FracLoad: 0.26, FracStore: 0.13, FracBranch: 0.1,
			FracFP: 0.45, FracMul: 0.25,
			DepP: 0.6, FarDepFrac: 0.32,
			BiasedFrac: 0.8, LoopFrac: 0.16, RandTakenP: 0.5,
			WorkingSetKB: 24, BigRegionMB: 2, BigFrac: 0.004, StrideFrac: 0.4,
			BiasP:      0.985,
			NarrowFrac: 0.15, StaticBlocks: 640,
		},
		{
			Name: "equake", Seed: 108,
			FracLoad: 0.3, FracStore: 0.09, FracBranch: 0.07,
			FracFP: 0.7, FracMul: 0.35,
			DepP: 0.55, FarDepFrac: 0.32,
			BiasedFrac: 0.58, LoopFrac: 0.36, RandTakenP: 0.5,
			WorkingSetKB: 32, BigRegionMB: 4, BigFrac: 0.12, StrideFrac: 0.55,
			BiasP:      0.985,
			NarrowFrac: 0.1, StaticBlocks: 256,
		},
		{
			Name: "fma3d", Seed: 109,
			FracLoad: 0.26, FracStore: 0.12, FracBranch: 0.06,
			FracFP: 0.75, FracMul: 0.3,
			DepP: 0.55, FarDepFrac: 0.3,
			BiasedFrac: 0.58, LoopFrac: 0.37, RandTakenP: 0.5,
			WorkingSetKB: 32, BigRegionMB: 2, BigFrac: 0.1, StrideFrac: 0.6,
			BiasP:      0.985,
			NarrowFrac: 0.09, StaticBlocks: 768,
		},
		{
			Name: "galgel", Seed: 110,
			FracLoad: 0.28, FracStore: 0.08, FracBranch: 0.04,
			FracFP: 0.85, FracMul: 0.4,
			DepP: 0.45, FarDepFrac: 0.35,
			BiasedFrac: 0.5, LoopFrac: 0.47, RandTakenP: 0.5,
			WorkingSetKB: 32, BigRegionMB: 2, BigFrac: 0.08, StrideFrac: 0.8,
			BiasP:      0.99,
			NarrowFrac: 0.07, StaticBlocks: 192,
		},
		{
			Name: "gap", Seed: 111,
			FracLoad: 0.25, FracStore: 0.1, FracBranch: 0.12,
			FracFP: 0.0, FracMul: 0.06,
			DepP: 0.7, FarDepFrac: 0.3,
			BiasedFrac: 0.8, LoopFrac: 0.14, RandTakenP: 0.48,
			WorkingSetKB: 32, BigRegionMB: 4, BigFrac: 0.03, StrideFrac: 0.4,
			BiasP:      0.985,
			NarrowFrac: 0.24, StaticBlocks: 512,
		},
		{
			Name: "gcc", Seed: 112,
			FracLoad: 0.27, FracStore: 0.12, FracBranch: 0.16,
			FracFP: 0.0, FracMul: 0.02,
			DepP: 0.72, FarDepFrac: 0.28,
			BiasedFrac: 0.74, LoopFrac: 0.15, RandTakenP: 0.45,
			WorkingSetKB: 32, BigRegionMB: 4, BigFrac: 0.015, StrideFrac: 0.25,
			NarrowFrac: 0.28, StaticBlocks: 2048,
		},
		{
			Name: "gzip", Seed: 113,
			FracLoad: 0.22, FracStore: 0.08, FracBranch: 0.14,
			FracFP: 0.0, FracMul: 0.02,
			DepP: 0.7, FarDepFrac: 0.28,
			BiasedFrac: 0.72, LoopFrac: 0.18, RandTakenP: 0.4,
			WorkingSetKB: 32, BigRegionMB: 2, BigFrac: 0.02, StrideFrac: 0.55,
			BiasP:      0.98,
			NarrowFrac: 0.3, StaticBlocks: 192,
		},
		{
			Name: "lucas", Seed: 114,
			FracLoad: 0.24, FracStore: 0.11, FracBranch: 0.03,
			FracFP: 0.88, FracMul: 0.45,
			DepP: 0.5, FarDepFrac: 0.32,
			BiasedFrac: 0.5, LoopFrac: 0.47, RandTakenP: 0.5,
			WorkingSetKB: 32, BigRegionMB: 2, BigFrac: 0.3, StrideFrac: 0.85,
			BiasP:      0.99,
			NarrowFrac: 0.05, StaticBlocks: 160,
		},
		{
			Name: "mcf", Seed: 115,
			FracLoad: 0.31, FracStore: 0.09, FracBranch: 0.19,
			FracFP: 0.0, FracMul: 0.01,
			DepP: 0.72, FarDepFrac: 0.25,
			BiasedFrac: 0.78, LoopFrac: 0.12, RandTakenP: 0.45,
			WorkingSetKB: 48, BigRegionMB: 96, BigFrac: 0.3, StrideFrac: 0.08,
			NarrowFrac: 0.2, StaticBlocks: 192,
		},
		{
			Name: "mesa", Seed: 116,
			FracLoad: 0.24, FracStore: 0.12, FracBranch: 0.08,
			FracFP: 0.55, FracMul: 0.3,
			DepP: 0.6, FarDepFrac: 0.3,
			BiasedFrac: 0.78, LoopFrac: 0.18, RandTakenP: 0.5,
			WorkingSetKB: 28, BigRegionMB: 4, BigFrac: 0.004, StrideFrac: 0.6,
			BiasP:      0.99,
			NarrowFrac: 0.18, StaticBlocks: 512,
		},
		{
			Name: "mgrid", Seed: 117,
			FracLoad: 0.3, FracStore: 0.08, FracBranch: 0.02,
			FracFP: 0.88, FracMul: 0.38,
			DepP: 0.45, FarDepFrac: 0.35,
			BiasedFrac: 0.45, LoopFrac: 0.52, RandTakenP: 0.5,
			WorkingSetKB: 32, BigRegionMB: 2, BigFrac: 0.3, StrideFrac: 0.9,
			BiasP:      0.99,
			NarrowFrac: 0.05, StaticBlocks: 128,
		},
		{
			Name: "parser", Seed: 118,
			FracLoad: 0.25, FracStore: 0.09, FracBranch: 0.16,
			FracFP: 0.0, FracMul: 0.02,
			DepP: 0.72, FarDepFrac: 0.28,
			BiasedFrac: 0.76, LoopFrac: 0.14, RandTakenP: 0.45,
			WorkingSetKB: 32, BigRegionMB: 4, BigFrac: 0.03, StrideFrac: 0.2,
			NarrowFrac: 0.26, StaticBlocks: 768,
		},
		{
			Name: "swim", Seed: 119,
			FracLoad: 0.28, FracStore: 0.12, FracBranch: 0.02,
			FracFP: 0.9, FracMul: 0.35,
			DepP: 0.45, FarDepFrac: 0.35,
			BiasedFrac: 0.45, LoopFrac: 0.52, RandTakenP: 0.5,
			WorkingSetKB: 32, BigRegionMB: 2, BigFrac: 0.35, StrideFrac: 0.9,
			BiasP:      0.99,
			NarrowFrac: 0.04, StaticBlocks: 96,
		},
		{
			Name: "twolf", Seed: 120,
			FracLoad: 0.27, FracStore: 0.08, FracBranch: 0.15,
			FracFP: 0.05, FracMul: 0.04,
			DepP: 0.72, FarDepFrac: 0.26,
			BiasedFrac: 0.7, LoopFrac: 0.12, RandTakenP: 0.48,
			WorkingSetKB: 32, BigRegionMB: 4, BigFrac: 0.02, StrideFrac: 0.15,
			NarrowFrac: 0.22, StaticBlocks: 448,
		},
		{
			Name: "vortex", Seed: 121,
			FracLoad: 0.27, FracStore: 0.14, FracBranch: 0.13,
			FracFP: 0.0, FracMul: 0.02,
			DepP: 0.68, FarDepFrac: 0.3,
			BiasedFrac: 0.88, LoopFrac: 0.1, RandTakenP: 0.5,
			WorkingSetKB: 32, BigRegionMB: 4, BigFrac: 0.025, StrideFrac: 0.35,
			BiasP:      0.995,
			NarrowFrac: 0.24, StaticBlocks: 2048,
		},
		{
			Name: "vpr", Seed: 122,
			FracLoad: 0.27, FracStore: 0.09, FracBranch: 0.14,
			FracFP: 0.1, FracMul: 0.05,
			DepP: 0.72, FarDepFrac: 0.26,
			BiasedFrac: 0.72, LoopFrac: 0.16, RandTakenP: 0.47,
			WorkingSetKB: 32, BigRegionMB: 4, BigFrac: 0.02, StrideFrac: 0.18,
			NarrowFrac: 0.22, StaticBlocks: 384,
		},
		{
			Name: "wupwise", Seed: 123,
			FracLoad: 0.23, FracStore: 0.1, FracBranch: 0.05,
			FracFP: 0.8, FracMul: 0.4,
			DepP: 0.5, FarDepFrac: 0.35,
			BiasedFrac: 0.55, LoopFrac: 0.4, RandTakenP: 0.5,
			WorkingSetKB: 32, BigRegionMB: 2, BigFrac: 0.06, StrideFrac: 0.7,
			BiasP:      0.99,
			NarrowFrac: 0.06, StaticBlocks: 224,
		},
	}
}

// ByName returns the profile with the given benchmark name.
func ByName(name string) (Profile, bool) {
	for _, p := range SPEC2K() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Names lists the benchmark names in the canonical (alphabetical) order the
// paper's Figure 3 uses.
func Names() []string {
	ps := SPEC2K()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}
