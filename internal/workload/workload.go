// Package workload synthesises SPEC2000-like dynamic instruction streams.
//
// The paper evaluates 23 SPEC2k programs (reference inputs, SimPoint
// regions) on a Simplescalar/Alpha pipeline; neither the binaries nor the
// traces are available here, so each benchmark is replaced by a calibrated
// synthetic profile that reproduces the first-order statistics the paper's
// mechanisms are sensitive to:
//
//   - instruction mix (loads, stores, branches, int/fp compute),
//   - register dependence distances (which set inter-cluster traffic),
//   - branch predictability (per-branch biased/loop/random behaviour with a
//     fixed static PC population, so the real combining predictor and BTB
//     produce realistic mispredict rates),
//   - memory locality (working-set and streaming components driving the
//     real L1/L2/TLB models to realistic miss rates),
//   - narrow-operand fraction (values in [0, 1024) eligible for L-wires).
//
// Generation is fully deterministic per profile seed.
package workload

import (
	"hetwire/internal/trace"
	"hetwire/internal/xrand"
)

// Profile parameterises one synthetic benchmark.
type Profile struct {
	Name string
	Seed uint64

	// Instruction mix. FracBranch is realised through basic-block length;
	// loads/stores/compute fill the block bodies.
	FracLoad   float64
	FracStore  float64
	FracBranch float64
	FracFP     float64 // fraction of compute ops that are floating point
	FracMul    float64 // fraction of compute ops that are multiplies

	// Register dependence behaviour.
	DepP       float64 // geometric parameter: larger = tighter dependences
	FarDepFrac float64 // fraction of sources drawn from far-older writers

	// Branch behaviour mix (fractions of static branches; remainder are
	// random with RandTakenP).
	BiasedFrac float64
	LoopFrac   float64
	RandTakenP float64

	// Memory behaviour.
	WorkingSetKB int     // cache-resident region
	BigRegionMB  int     // large region causing L2/memory misses
	BigFrac      float64 // fraction of accesses into the big region
	StrideFrac   float64 // fraction of static memory ops that stream

	// BiasP is the taken probability of biased-taken branches (and one
	// minus it for biased-not-taken); 0 means the default 0.97. Codes with
	// extremely predictable control flow (vortex) use ~0.995.
	BiasP float64

	// Value behaviour.
	NarrowFrac float64 // average fraction of int results in [0, 1024)

	// Code footprint: number of static basic blocks (~blockLen instrs each).
	StaticBlocks int

	// AddrOffset shifts every generated code and data address; used to give
	// multiprogrammed threads disjoint address spaces.
	AddrOffset uint64
}

// blockLen derives the average basic-block length from the branch fraction.
func (p Profile) blockLen() int {
	if p.FracBranch <= 0 {
		return 16
	}
	l := int(1/p.FracBranch + 0.5)
	if l < 3 {
		l = 3
	}
	if l > 24 {
		l = 24
	}
	return l
}

// branch behaviour kinds
const (
	brBiasedTaken = iota
	brBiasedNotTaken
	brLoop
	brRandom
)

// narrow behaviour kinds for value generation
const (
	nwWide = iota
	nwAlways
	nwMixed
)

type staticInstr struct {
	op      trace.Op
	dest    int16
	narrowK uint8
	memID   int // index into memory pattern table, -1 for non-mem
}

type staticBlock struct {
	pc     uint64 // PC of first instruction
	instrs []staticInstr
	// branch behaviour (the last instruction is always the branch)
	brKind   uint8
	loopN    int // loop trip count for brLoop
	takenTgt int // block index when taken
	biasP    float64
}

type memPattern struct {
	stride    bool
	base      uint64
	strideB   uint64
	pos       uint64
	regionLen uint64
	big       bool
}

// Generator streams a synthetic benchmark. It implements trace.Stream.
type Generator struct {
	prof   Profile
	src    *xrand.Source
	blocks []staticBlock
	mems   []memPattern

	curBlock int
	curIdx   int
	loopLeft int

	// Shared Zipf sampler over working-set cache lines (temporal locality
	// for non-streaming accesses).
	wsLines uint64
	zipf    *xrand.Zipf

	// recentWriters is a ring of the destination registers of recent
	// instructions, used to realise dependence distances.
	recentWriters [64]int16
	writerPos     int

	intReg int16 // round-robin dest allocation
	fpReg  int16

	// commonValues is a small pool of wide constants (base pointers,
	// repeated structure tags) that recur in the value stream; roughly half
	// of all values in real programs come from a handful of frequent values
	// (Yang et al.), which the frequent-value-encoding extension exploits.
	commonValues [12]uint64

	// writersInBlock counts results produced since the current basic block
	// began; near dependences are scoped to it (see pickSource).
	writersInBlock int
}

// normalized applies the constructor defaults, so profiles that differ only
// in how the caller spelled a default share one memo-cache identity.
func (p Profile) normalized() Profile {
	if p.StaticBlocks <= 0 {
		p.StaticBlocks = 256
	}
	return p
}

// NewGenerator returns a deterministic stream over the profile's static
// program. The expensive static-program construction is memoized in the
// process-wide Shared cache: repeated generators for the same profile reuse
// the immutable build artifacts (basic blocks, memory-pattern templates,
// Zipf table) and are bit-identical to a cold build — see NewGeneratorUncached
// and the memo-cache contract in memo.go.
func NewGenerator(p Profile) *Generator { return Shared.Generator(p) }

// NewGeneratorUncached builds the static program from scratch, bypassing the
// memo cache. It exists so tests can prove the cached path equivalent; the
// two constructors must be behaviourally indistinguishable.
func NewGeneratorUncached(p Profile) *Generator {
	p = p.normalized()
	return newFromProgram(p, buildProgram(p))
}

// program is the immutable product of building a profile's static code: the
// basic blocks, the pristine memory-pattern table, the Zipf locality table,
// and the RNG state the dynamic stream starts from. Everything here is
// read-only after buildProgram returns (memory patterns are copied per
// generator because streaming positions advance), so one program can back
// any number of concurrent generators.
type program struct {
	blocks       []staticBlock
	mems         []memPattern // template; cloned per generator
	src          xrand.State  // generator RNG position at end of build
	commonValues [12]uint64
	wsLines      uint64
	zipf         *xrand.Zipf // CDF table only; reseated per generator
	bytes        int64       // approximate retained size, for cache budgeting
}

// buildProgram runs the cold static-program construction for a normalized
// profile and captures the artifacts a generator needs to start streaming.
func buildProgram(p Profile) *program {
	g := &Generator{prof: p, src: xrand.New(p.Seed)}
	for i := range g.recentWriters {
		g.recentWriters[i] = trace.NoReg
	}
	ws := uint64(p.WorkingSetKB) * 1024
	if ws == 0 {
		ws = 16 << 10
	}
	g.wsLines = ws / 64
	g.zipf = xrand.NewZipf(g.src, int(g.wsLines), 1.1)
	// A separate source keeps the static-program construction independent
	// of the value-pool contents.
	vsrc := xrand.New(p.Seed ^ 0xC0FFEE)
	for i := range g.commonValues {
		g.commonValues[i] = 1024 + vsrc.Uint64()>>1
	}
	g.build()
	pr := &program{
		blocks:       g.blocks,
		mems:         append([]memPattern(nil), g.mems...),
		src:          g.src.State(),
		commonValues: g.commonValues,
		wsLines:      g.wsLines,
		zipf:         g.zipf,
	}
	pr.bytes = pr.sizeBytes()
	return pr
}

// newFromProgram constructs a fresh generator over a built program. The
// result is byte-for-byte the generator a cold build would have produced:
// the RNG resumes from the post-build snapshot, memory patterns start from
// their pristine positions, and all shared state is read-only.
func newFromProgram(p Profile, pr *program) *Generator {
	src := xrand.FromState(pr.src)
	g := &Generator{
		prof:         p,
		src:          src,
		blocks:       pr.blocks,
		mems:         append([]memPattern(nil), pr.mems...),
		wsLines:      pr.wsLines,
		zipf:         pr.zipf.Reseat(src),
		commonValues: pr.commonValues,
	}
	for i := range g.recentWriters {
		g.recentWriters[i] = trace.NoReg
	}
	g.loopLeft = g.blocks[0].loopN
	return g
}

// Name returns the profile name of the workload being generated, so
// consumers can label results produced from this stream.
func (g *Generator) Name() string { return g.prof.Name }

const codeBase = uint64(0x0040_0000)
const dataBase = uint64(0x1000_0000)
const bigBase = uint64(0x4000_0000)

func (g *Generator) build() {
	p := g.prof
	avgLen := p.blockLen()
	pc := codeBase + p.AddrOffset
	nBlocks := p.StaticBlocks
	g.blocks = make([]staticBlock, 0, nBlocks)

	biasP := p.BiasP
	if biasP == 0 {
		biasP = 0.97
	}
	// Probabilities within a block body (branch excluded).
	bodyFrac := 1 - p.FracBranch
	pLoad := p.FracLoad / bodyFrac
	pStore := p.FracStore / bodyFrac
	var loadAcc, storeAcc float64
	ops := make([]trace.Op, 0, avgLen+4) // scratch, reused across blocks

	for b := 0; b < nBlocks; b++ {
		// Block length jitters around the average.
		n := avgLen - 2 + g.src.Intn(5)
		if n < 2 {
			n = 2
		}
		blk := staticBlock{pc: pc}
		// Stratified op assignment: every block individually carries its
		// share of loads and stores (with fractional carry across blocks),
		// so dynamically hot loop blocks cannot skew the instruction mix.
		body := n - 1
		ops = ops[:0]
		loadAcc += pLoad * float64(body)
		storeAcc += pStore * float64(body)
		nLoads := int(loadAcc)
		loadAcc -= float64(nLoads)
		nStores := int(storeAcc)
		storeAcc -= float64(nStores)
		if nLoads+nStores > body {
			nStores = body - nLoads
			if nStores < 0 {
				nLoads, nStores = body, 0
			}
		}
		for i := 0; i < nLoads; i++ {
			ops = append(ops, trace.Load)
		}
		for i := 0; i < nStores; i++ {
			ops = append(ops, trace.Store)
		}
		for len(ops) < body {
			fp := g.src.Bool(p.FracFP)
			mul := g.src.Bool(p.FracMul)
			switch {
			case fp && mul:
				ops = append(ops, trace.FPMul)
			case fp:
				ops = append(ops, trace.FPALU)
			case mul:
				ops = append(ops, trace.IntMul)
			default:
				ops = append(ops, trace.IntALU)
			}
		}
		// Fisher-Yates shuffle so loads/stores sit at varied block offsets.
		for i := len(ops) - 1; i > 0; i-- {
			j := g.src.Intn(i + 1)
			ops[i], ops[j] = ops[j], ops[i]
		}
		blk.instrs = make([]staticInstr, 0, n)
		for _, op := range ops {
			si := staticInstr{op: op, memID: -1}
			if op.IsMem() {
				si.memID = g.newMemPattern()
			}
			si.narrowK = g.narrowKind(si.op)
			blk.instrs = append(blk.instrs, si)
		}
		// Terminating branch.
		blk.instrs = append(blk.instrs, staticInstr{op: trace.Branch, memID: -1})
		r := g.src.Float64()
		switch {
		case r < p.BiasedFrac/2:
			blk.brKind = brBiasedTaken
			blk.biasP = biasP
		case r < p.BiasedFrac:
			blk.brKind = brBiasedNotTaken
			blk.biasP = 1 - biasP
		case r < p.BiasedFrac+p.LoopFrac:
			blk.brKind = brLoop
			blk.loopN = 4 + g.src.Intn(27)
		default:
			blk.brKind = brRandom
			blk.biasP = p.RandTakenP
		}
		pc += uint64(len(blk.instrs)) * 4
		g.blocks = append(g.blocks, blk)
	}

	// Assign taken targets now that all blocks exist: loops target their own
	// block; other taken branches jump to a random block (forward jumps and
	// cross-function calls look alike at this fidelity).
	for b := range g.blocks {
		if g.blocks[b].brKind == brLoop {
			g.blocks[b].takenTgt = b
		} else {
			g.blocks[b].takenTgt = g.src.Intn(len(g.blocks))
		}
	}
	g.loopLeft = g.blocks[0].loopN
}

// narrowKind assigns per-static-instruction value behaviour so that the
// dynamic narrow fraction averages NarrowFrac while per-PC behaviour stays
// predictable (what the 2-bit predictor exploits).
func (g *Generator) narrowKind(op trace.Op) uint8 {
	if op.IsFP() || op == trace.Store || op == trace.Branch {
		return nwWide // fp and non-producing ops never count as narrow
	}
	f := g.prof.NarrowFrac
	switch {
	case g.src.Bool(0.9 * f):
		return nwAlways
	case g.src.Bool(0.2 * f):
		return nwMixed
	default:
		return nwWide
	}
}

// newMemPattern allocates an access pattern for a static memory op.
func (g *Generator) newMemPattern() int {
	p := g.prof
	mp := memPattern{}
	mp.big = g.src.Bool(p.BigFrac)
	mp.stride = g.src.Bool(p.StrideFrac)
	if mp.big {
		region := uint64(p.BigRegionMB) * 1 << 20
		if region == 0 {
			region = 64 << 20
		}
		mp.base = bigBase + p.AddrOffset + g.src.Uint64n(region/2)
		mp.regionLen = region / 2
	} else {
		mp.base = dataBase + p.AddrOffset
		mp.regionLen = g.wsLines * 64
	}
	if mp.stride {
		mp.strideB = uint64(8 * (1 + g.src.Intn(8)))
		if mp.big {
			// Big-region streams are unit-stride array walks (one miss per
			// cache line); wide strides over huge arrays would turn every
			// access into a miss, which real vector loops do not do.
			mp.strideB = uint64(8 << g.src.Intn(2)) // 8 or 16 bytes
		}
		if !mp.big {
			// Working-set streams walk a small sub-array (real loops stream
			// over vectors much smaller than the whole working set); a
			// WS-sized cyclic walk would pathologically thrash LRU.
			span := uint64(1<<10) + g.src.Uint64n(3<<10)
			if span > mp.regionLen {
				span = mp.regionLen
			}
			if mp.regionLen > span {
				mp.base = dataBase + p.AddrOffset + (g.src.Uint64n(mp.regionLen-span) &^ 63)
			}
			mp.regionLen = span
		}
		mp.pos = g.src.Uint64n(mp.regionLen) &^ 7
	}
	g.mems = append(g.mems, mp)
	return len(g.mems) - 1
}

// nextAddr advances a memory pattern and returns the next address.
// Streaming patterns walk their region with a fixed stride; big-region
// random patterns are uniform (pointer chasing over a huge heap, mcf-style);
// working-set random patterns draw cache lines from a Zipf distribution so
// they exhibit the temporal locality real programs have.
func (g *Generator) nextAddr(id int) uint64 {
	mp := &g.mems[id]
	if mp.stride {
		a := mp.base + mp.pos
		mp.pos += mp.strideB
		if mp.pos >= mp.regionLen {
			mp.pos = 0
		}
		return a &^ 7
	}
	if mp.big {
		return (mp.base + g.src.Uint64n(mp.regionLen)) &^ 7
	}
	line := uint64(g.zipf.Next())
	return mp.base + line*64 + 8*g.src.Uint64n(8)
}

// pickSource chooses a source register by dependence distance, mimicking
// the dataflow shape of compiled code: each basic block pulls a few inputs
// (long-lived pinned values, or values produced by recent earlier blocks)
// and then forms a tight internal expression chain over them. The chains
// make inter-cluster transfer latency matter (a consumer is dispatched well
// before its operand is produced), while block-level independence supplies
// the instruction-level parallelism.
func (g *Generator) pickSource() int16 {
	p := g.prof
	var d int
	switch {
	case g.writersInBlock == 0 || g.src.Bool(p.FarDepFrac):
		// Block input.
		if g.src.Bool(0.55) {
			// Long-lived stable value (stack/global base), always ready.
			return pinnedInt(g.src.Intn(numPinned))
		}
		// Output of a recent earlier block (loop-carried value, common
		// subexpression, accumulator).
		d = g.writersInBlock + 1 + g.src.Geometric(0.3)
	default:
		// Block-local chain: mostly the immediately preceding producer.
		d = 1 + g.src.Geometric(p.DepP)
		if d > g.writersInBlock {
			d = g.writersInBlock
		}
	}
	if d > len(g.recentWriters) {
		d = len(g.recentWriters)
	}
	idx := (g.writerPos - d + 2*len(g.recentWriters)) % len(g.recentWriters)
	r := g.recentWriters[idx]
	if r == trace.NoReg {
		return int16(g.src.Intn(32)) // cold start: arbitrary ready register
	}
	return r
}

// numPinned is the number of long-lived registers per bank (stack pointer,
// frame pointer, global bases). They are rewritten only rarely, so they are
// ready at dispatch essentially always.
const numPinned = 4

func pinnedInt(i int) int16 { return int16(28 + i) }
func pinnedFP(i int) int16  { return int16(60 + i) }

// pickAddrSource chooses the address-base register of a load or store.
// Address bases in real code are overwhelmingly stack/frame/array-base
// pointers (pinned registers, ready at dispatch); the rest is short
// pointer arithmetic computed a couple of instructions earlier.
func (g *Generator) pickAddrSource() int16 {
	if g.src.Bool(0.92) {
		return pinnedInt(g.src.Intn(numPinned))
	}
	d := 1 + g.src.Geometric(0.7)
	if d > g.writersInBlock {
		d = g.writersInBlock
	}
	if d == 0 {
		return pinnedInt(g.src.Intn(numPinned))
	}
	idx := (g.writerPos - d + 2*len(g.recentWriters)) % len(g.recentWriters)
	if r := g.recentWriters[idx]; r != trace.NoReg {
		return r
	}
	return pinnedInt(g.src.Intn(numPinned))
}

// destFor allocates a destination register round-robin in the int or fp
// bank.
func (g *Generator) destFor(op trace.Op) int16 {
	// Roughly one in 800 results updates a pinned (long-lived) register —
	// an occasional global/stack-pointer update.
	if g.src.Bool(1.0 / 800) {
		if op.IsFP() {
			return pinnedFP(g.src.Intn(numPinned))
		}
		return pinnedInt(g.src.Intn(numPinned))
	}
	if op.IsFP() {
		g.fpReg = (g.fpReg + 1) % 28
		return 32 + g.fpReg
	}
	g.intReg = (g.intReg + 1) % 28
	return g.intReg
}

// value generates a result value obeying the static narrow class. Wide
// values are drawn from the frequent-value pool about a third of the time,
// mimicking the heavy value reuse of real programs.
func (g *Generator) value(k uint8) uint64 {
	switch k {
	case nwAlways:
		return g.src.Uint64n(1024)
	case nwMixed:
		if g.src.Bool(0.5) {
			return g.src.Uint64n(1024)
		}
	}
	if g.src.Bool(0.35) {
		return g.commonValues[g.src.Intn(len(g.commonValues))]
	}
	return 1024 + g.src.Uint64()>>1
}

// Next implements trace.Stream; synthetic streams never end.
func (g *Generator) Next(ins *trace.Instr) bool {
	blk := &g.blocks[g.curBlock]
	si := &blk.instrs[g.curIdx]
	pc := blk.pc + uint64(g.curIdx)*4

	*ins = trace.Instr{PC: pc, Op: si.op, Src1: trace.NoReg, Src2: trace.NoReg, Dest: trace.NoReg}

	switch si.op {
	case trace.Branch:
		ins.Src1 = g.pickSource()
		taken := false
		switch blk.brKind {
		case brLoop:
			g.loopLeft--
			taken = g.loopLeft > 0
		default:
			taken = g.src.Bool(blk.biasP)
		}
		ins.Taken = taken
		if taken {
			ins.Target = g.blocks[blk.takenTgt].pc
		} else {
			ins.Target = pc + 4
		}
		g.advance(taken, blk)
		return true
	case trace.Load:
		ins.Src1 = g.pickAddrSource() // address base register
		ins.Dest = g.destFor(si.op)
		ins.Addr = g.nextAddr(si.memID)
		ins.Value = g.value(si.narrowK)
	case trace.Store:
		ins.Src1 = g.pickAddrSource() // address base
		ins.Src2 = g.pickSource()     // data
		ins.Addr = g.nextAddr(si.memID)
	default:
		// Real integer/fp ops frequently take an immediate or a
		// loop-invariant operand: ~15% have no register source at all and
		// only ~40% read two registers. This is what gives the stream its
		// ILP; all-register chains would serialise the whole program.
		if !g.src.Bool(0.15) {
			ins.Src1 = g.pickSource()
		}
		if g.src.Bool(0.4) {
			ins.Src2 = g.pickSource()
		}
		ins.Dest = g.destFor(si.op)
		ins.Value = g.value(si.narrowK)
	}
	if ins.Dest != trace.NoReg {
		g.writerPos = (g.writerPos + 1) % len(g.recentWriters)
		g.recentWriters[g.writerPos] = ins.Dest
		g.writersInBlock++
	}
	g.curIdx++
	if g.curIdx >= len(blk.instrs) {
		// Can't happen: blocks always end with the branch handled above.
		g.curIdx = 0
	}
	return true
}

// advance moves control flow after a branch.
func (g *Generator) advance(taken bool, blk *staticBlock) {
	if taken {
		g.curBlock = blk.takenTgt
	} else {
		g.curBlock = (g.curBlock + 1) % len(g.blocks)
	}
	g.curIdx = 0
	g.writersInBlock = 0
	nb := &g.blocks[g.curBlock]
	if nb.brKind == brLoop && (g.loopLeft <= 0 || g.curBlock != blk.takenTgt || !taken) {
		g.loopLeft = nb.loopN
	}
}
