package core

import (
	"testing"

	"hetwire/internal/config"
	"hetwire/internal/trace"
)

func newTestProc() *Processor { return New(config.Default()) }

// TestSteerFollowsProducer: an instruction with one unready source goes to
// the producing cluster (dependence + criticality weights dominate).
func TestSteerFollowsProducer(t *testing.T) {
	p := newTestProc()
	p.regCluster[5] = 2
	p.regReady[5] = 1000 // far in the future: critical operand
	ins := &trace.Instr{Op: trace.IntALU, Src1: 5, Src2: trace.NoReg, Dest: 1}
	if got := p.steer(ins, 10); got != 2 {
		t.Errorf("steered to cluster %d, want producer cluster 2", got)
	}
}

// TestSteerCriticalOperandWins: with two unready sources, the one that
// becomes ready last carries the extra criticality weight.
func TestSteerCriticalOperandWins(t *testing.T) {
	p := newTestProc()
	p.regCluster[1] = 0
	p.regReady[1] = 50
	p.regCluster[2] = 3
	p.regReady[2] = 500 // the critical one
	ins := &trace.Instr{Op: trace.IntALU, Src1: 1, Src2: 2, Dest: 3}
	if got := p.steer(ins, 10); got != 3 {
		t.Errorf("steered to cluster %d, want critical producer's cluster 3", got)
	}
}

// TestSteerSpreadsIndependentWork: instructions with no register sources
// distribute across clusters (round-robin + emptiness) rather than piling
// onto one.
func TestSteerSpreadsIndependentWork(t *testing.T) {
	p := newTestProc()
	seen := map[int]bool{}
	for i := 0; i < 8; i++ {
		ins := &trace.Instr{Op: trace.IntALU, Src1: trace.NoReg, Src2: trace.NoReg, Dest: int16(i % 28)}
		c := p.steer(ins, 10)
		seen[c] = true
		// Occupy the chosen cluster's queue a little so emptiness shifts.
		p.clusters[c].intIQ.Commit(1000)
	}
	if len(seen) < 3 {
		t.Errorf("independent work used only %d clusters", len(seen))
	}
}

// TestSteerAvoidsFullCluster: when the preferred cluster has no free
// issue-queue entries now, the instruction goes to a neighbour with room.
func TestSteerAvoidsFullCluster(t *testing.T) {
	p := newTestProc()
	p.regCluster[7] = 1
	p.regReady[7] = 1000
	// Fill cluster 1's integer issue queue beyond cycle 10.
	for i := 0; i < p.cfg.Core.IssueQPerClust; i++ {
		p.clusters[1].intIQ.Commit(5000)
	}
	ins := &trace.Instr{Op: trace.IntALU, Src1: 7, Src2: trace.NoReg, Dest: 1}
	if got := p.steer(ins, 10); got == 1 {
		t.Error("steered into a cluster with a full issue queue")
	}
}

// TestSteerCacheProximity16Clusters: on the hierarchical machine, memory
// operations with no strong dependence pull gravitate to the cache's quad.
func TestSteerCacheProximity16Clusters(t *testing.T) {
	cfg := config.Default()
	cfg.Topology = config.HierRing16
	p := New(cfg)
	hits := 0
	const trials = 32
	for i := 0; i < trials; i++ {
		ins := &trace.Instr{Op: trace.Load, Src1: trace.NoReg, Src2: trace.NoReg, Dest: int16(i % 28)}
		if c := p.steer(ins, 10); c/4 == 0 {
			hits++
		}
	}
	if hits < trials/2 {
		t.Errorf("only %d/%d loads steered to the cache quad", hits, trials)
	}
}

// TestSteerFPUsesFPQueues: fp instructions are judged against fp issue
// queues; a full int queue must not repel them.
func TestSteerFPUsesFPQueues(t *testing.T) {
	p := newTestProc()
	p.regCluster[40] = 2
	p.regReady[40] = 1000
	for i := 0; i < p.cfg.Core.IssueQPerClust; i++ {
		p.clusters[2].intIQ.Commit(5000) // int queue full, fp queue empty
	}
	ins := &trace.Instr{Op: trace.FPALU, Src1: 40, Src2: trace.NoReg, Dest: 41}
	if got := p.steer(ins, 10); got != 2 {
		t.Errorf("fp instruction repelled by a full int queue: cluster %d", got)
	}
}

// TestSteeringPolicies: the paper's dynamic heuristic must beat static
// hashing, which must beat blind round-robin (communication grows in that
// order).
func TestSteeringPolicies(t *testing.T) {
	run := func(pol config.SteeringPolicy) Stats {
		cfg := config.Default()
		cfg.Steering = pol
		return runBench(t, cfg, "gzip", testInstrs)
	}
	dyn := run(config.SteerDynamic)
	static := run(config.SteerStatic)
	rr := run(config.SteerRoundRobin)

	if dyn.IPC() <= static.IPC() {
		t.Errorf("dynamic steering (%.3f) should beat static hashing (%.3f)", dyn.IPC(), static.IPC())
	}
	if static.OperandTransfers <= dyn.OperandTransfers {
		t.Errorf("static steering should communicate more (%d vs %d)",
			static.OperandTransfers, dyn.OperandTransfers)
	}
	if rr.OperandTransfers <= dyn.OperandTransfers {
		t.Errorf("round-robin should communicate most (%d vs %d)",
			rr.OperandTransfers, dyn.OperandTransfers)
	}
}
