package core

import (
	"sync"

	"hetwire/internal/config"
)

// RunScratch owns the reusable per-run arenas of one simulation: the
// Processor and, transitively, every calendar ring, wheel, cache array,
// predictor table and LSQ column it allocated. Building a processor touches
// tens of megabytes of fresh memory (about eighty 64K-cycle calendars plus
// the 8MB L2 tag store); pooling the whole machine and rewinding it with
// Reset turns that into a sweep over only the cells a run actually dirtied.
//
// Scratches are pooled per configuration key (the caller supplies a stable
// content hash of the machine configuration), so a pooled processor is only
// ever revived for a configuration identical to the one it was built for.
type RunScratch struct {
	key  string
	proc *Processor
}

// Proc returns the scratch's processor, reset and ready to run.
func (s *RunScratch) Proc() *Processor { return s.proc }

// scratchPools maps configuration key -> *sync.Pool of *Processor.
var scratchPools sync.Map

// AcquireScratch returns a run-ready processor for the configuration,
// reviving a pooled one for the same key when available. An empty key
// disables pooling (the scratch is built fresh and Release discards it) —
// the fallback for configurations with no canonical hash.
func AcquireScratch(key string, cfg config.Config) *RunScratch {
	if key == "" {
		return &RunScratch{proc: New(cfg)}
	}
	pv, _ := scratchPools.LoadOrStore(key, new(sync.Pool))
	if v := pv.(*sync.Pool).Get(); v != nil {
		p := v.(*Processor)
		p.Reset()
		return &RunScratch{key: key, proc: p}
	}
	return &RunScratch{key: key, proc: New(cfg)}
}

// Release returns the processor to its configuration's pool for the next
// run. The caller must not touch the processor afterwards. Safe to call on
// unpooled (empty-key) scratches and at most once per Acquire.
func (s *RunScratch) Release() {
	if s.key == "" || s.proc == nil {
		return
	}
	p := s.proc
	s.proc = nil
	pv, _ := scratchPools.LoadOrStore(s.key, new(sync.Pool))
	pv.(*sync.Pool).Put(p)
}
