package core

import (
	"context"
	"fmt"

	"hetwire/internal/config"
	"hetwire/internal/trace"
)

// CtxCheckInterval is the number of committed instructions between context
// polls in RunContext and RunMultiprogramContext. The check touches no
// simulator state, so results are bit-identical to the uncancelled path; the
// interval is large enough that the poll amortizes to noise on the hot loop
// (each step costs hundreds of nanoseconds, so 8192 steps dwarf two atomic
// loads) yet small enough that cancellation latency stays in the low
// milliseconds at observed simulation speeds.
const CtxCheckInterval = 8192

// NoProgressError is the forward-progress watchdog's diagnostic: the commit
// frontier failed to advance across a full check window. With a finite
// commit width (Table 1: 8/cycle) a window of CtxCheckInterval committed
// instructions must span at least CtxCheckInterval/CommitWidth cycles, so a
// flat frontier means the timing state is corrupt (or a fault was injected);
// aborting with diagnostics beats spinning forever on a cyclic stream or
// reporting garbage statistics.
type NoProgressError struct {
	// Committed is how many instructions the run had retired when the
	// watchdog fired.
	Committed uint64
	// Cycle is the stuck commit-frontier cycle.
	Cycle uint64
}

func (e *NoProgressError) Error() string {
	return fmt.Sprintf("core: no forward progress: commit frontier stuck at cycle %d after %d instructions (%d-instruction watchdog window)",
		e.Cycle, e.Committed, uint64(CtxCheckInterval))
}

// checkProgress is the watchdog predicate: given the commit frontier at the
// previous window boundary, it returns a diagnostic error when the frontier
// has not advanced. Split out so the invariant is unit-testable without
// constructing a corrupted stream.
func (p *Processor) checkProgress(prevFrontier, committed uint64) error {
	if p.lastCommit == prevFrontier {
		return &NoProgressError{Committed: committed, Cycle: p.lastCommit}
	}
	return nil
}

// RunContext simulates up to n instructions from the stream, polling ctx
// every CtxCheckInterval committed instructions and running the
// forward-progress watchdog at the same cadence. On cancellation or watchdog
// abort it finalizes and returns the partial statistics together with the
// error; a nil error means the run completed (or the stream ended). The
// simulated behaviour is bit-identical to Run for any run that completes.
func (p *Processor) RunContext(ctx context.Context, src trace.Stream, n uint64) (Stats, error) {
	var ins trace.Instr
	prevFrontier := p.lastCommit
	for i := uint64(0); i < n; i++ {
		if i&(CtxCheckInterval-1) == 0 && i != 0 {
			if err := ctx.Err(); err != nil {
				return p.finish(err)
			}
			if err := p.checkProgress(prevFrontier, i); err != nil {
				return p.finish(err)
			}
			prevFrontier = p.lastCommit
			if p.probe != nil {
				p.emitProbe(false)
			}
		}
		if !src.Next(&ins) {
			break
		}
		p.step(&ins)
	}
	return p.finish(nil)
}

// finish finalizes the run, emits the probe's final sample (partial counts
// on an aborted run), and returns the statistics with the given error.
func (p *Processor) finish(err error) (Stats, error) {
	p.finalize()
	if p.probe != nil {
		p.emitProbe(true)
	}
	return p.s, err
}

// RunMultiprogramContext is RunMultiprogram with cooperative cancellation
// and the forward-progress watchdog: ctx is polled every CtxCheckInterval
// total committed instructions (across all threads), and the minimum commit
// frontier over the still-active threads must advance between polls. On
// abort the partial per-thread results are returned alongside the error.
func RunMultiprogramContext(ctx context.Context, cfg config.Config, streams []trace.Stream, n uint64) ([]ThreadResult, error) {
	if len(streams) == 0 {
		return nil, nil
	}
	total := cfg.Topology.Clusters()
	if len(streams) > total {
		panic("core: more threads than clusters")
	}
	per := total / len(streams)
	fab := NewSharedFabric(cfg)

	procs := make([]*Processor, len(streams))
	out := make([]ThreadResult, len(streams))
	for i := range streams {
		clusters := make([]int, per)
		for j := range clusters {
			clusters[j] = i*per + j
		}
		procs[i] = NewOnFabric(cfg, fab, clusters)
		out[i].Clusters = clusters
	}

	finish := func(err error) ([]ThreadResult, error) {
		for i, p := range procs {
			p.finalize()
			out[i].Stats = p.s
		}
		return out, err
	}

	remaining := make([]uint64, len(streams))
	for i := range remaining {
		remaining[i] = n
	}
	var ins trace.Instr
	active := len(streams)
	var stepped uint64
	prevFrontier := uint64(0)
	havePrev := false
	for active > 0 {
		if stepped&(CtxCheckInterval-1) == 0 && stepped != 0 {
			if err := ctx.Err(); err != nil {
				return finish(err)
			}
			frontier := minFrontier(procs, remaining)
			if havePrev && frontier == prevFrontier {
				return finish(&NoProgressError{Committed: stepped, Cycle: frontier})
			}
			prevFrontier, havePrev = frontier, true
		}
		// Step the thread whose commit frontier is furthest behind, keeping
		// the shared calendars time-aligned across threads.
		pick := -1
		for i, p := range procs {
			if remaining[i] == 0 {
				continue
			}
			if pick == -1 || p.lastCommit < procs[pick].lastCommit {
				pick = i
			}
		}
		if !streams[pick].Next(&ins) {
			remaining[pick] = 0
			active--
			continue
		}
		procs[pick].step(&ins)
		stepped++
		remaining[pick]--
		if remaining[pick] == 0 {
			active--
		}
	}
	return finish(nil)
}

// minFrontier returns the lowest commit frontier among threads that still
// have instructions to run (finished threads no longer advance and must not
// wedge the watchdog).
func minFrontier(procs []*Processor, remaining []uint64) uint64 {
	min := ^uint64(0)
	for i, p := range procs {
		if remaining[i] == 0 {
			continue
		}
		if p.lastCommit < min {
			min = p.lastCommit
		}
	}
	return min
}
