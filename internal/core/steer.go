package core

import (
	"hetwire/internal/config"
	"hetwire/internal/trace"
)

// steer implements the paper's dynamic instruction steering heuristic
// (Section 4, after [7, 15, 43]): while dispatching, each cluster is scored
// by
//
//   - whether it produces an input operand of the instruction,
//   - extra weight if it produces the operand predicted to be on the
//     critical path (the operand that becomes ready last),
//   - proximity to the data cache for loads and stores,
//   - issue-queue occupancy (empty entries attract work; this is the
//     load-balance term).
//
// The instruction goes to the highest-scoring cluster; if that cluster has
// no free register or issue-queue resources at dispatch time, the nearest
// cluster with available resources is used instead.
func (p *Processor) steer(ins *trace.Instr, at uint64) int {
	switch p.cfg.Steering {
	case config.SteerStatic:
		// Compile-time-style partitioning: each static instruction has a
		// home cluster. Fall back to a neighbour when it is full.
		cands := p.candidateClusters()
		home := cands[int((ins.PC>>2)%uint64(len(cands)))]
		if p.hasResources(home, ins, at) {
			return home
		}
		for d := 1; d < len(cands); d++ {
			if c := cands[(int(ins.PC>>2)+d)%len(cands)]; p.hasResources(c, ins, at) {
				return c
			}
		}
		return home
	case config.SteerRoundRobin:
		cands := p.candidateClusters()
		p.steerRR = (p.steerRR + 1) % len(cands)
		return cands[p.steerRR]
	}

	cands := p.candidateClusters()
	weights := p.steerW[:p.nClusters]
	for i := range weights {
		weights[i] = 0
	}

	// Operand-producer weights, with a criticality bonus for the
	// latest-ready operand.
	var critCluster = -1
	var critReady uint64
	for _, src := range [2]int16{ins.Src1, ins.Src2} {
		if src == trace.NoReg {
			continue
		}
		rs := &p.regs[src]
		weights[rs.cluster] += 3
		if rs.ready >= critReady {
			critReady = rs.ready
			critCluster = rs.cluster
		}
	}
	if critCluster >= 0 && critReady > at {
		// Only an operand that is not ready yet can be critical.
		weights[critCluster] += 2
	}

	// Cache proximity for memory operations: clusters nearer the
	// centralized cache win. On the 4-cluster crossbar all clusters are
	// equidistant; on the 16-cluster hierarchy the cache's quad is closer.
	if ins.Op.IsMem() && p.nClusters > 4 {
		for _, c := range cands {
			if c/4 == 0 { // the cache hangs off quad 0
				weights[c] += 2
			}
		}
	}

	// Issue-queue emptiness (cluster load balance).
	for _, c := range cands {
		iq := p.clusters[c].intIQ
		if ins.Op.IsFP() {
			iq = p.clusters[c].fpIQ
		}
		weights[c] += iq.Free(at) / 4
	}

	// Pick the highest weight among this thread's clusters; break ties
	// round-robin so cold streams spread across clusters.
	best, bestW := -1, -1<<30
	for i := range cands {
		c := cands[(p.steerRR+i)%len(cands)]
		if weights[c] > bestW {
			best, bestW = c, weights[c]
		}
	}
	p.steerRR = (p.steerRR + 1) % len(cands)

	// Resource fallback: if the chosen cluster has no free issue-queue
	// entry or rename register right now, move to the nearest cluster that
	// has both (paper: "the instruction is assigned to the nearest cluster
	// with available resources"). If nobody has resources, keep the
	// original choice and let dispatch stall until an entry frees.
	if p.hasResources(best, ins, at) {
		return best
	}
	pos := 0
	for i, c := range cands {
		if c == best {
			pos = i
			break
		}
	}
	for d := 1; d < len(cands); d++ {
		if c := cands[(pos+d)%len(cands)]; p.hasResources(c, ins, at) {
			return c
		}
		if c := cands[(pos-d+len(cands))%len(cands)]; p.hasResources(c, ins, at) {
			return c
		}
	}
	return best
}

// hasResources reports whether the cluster can accept the instruction at
// the given cycle without stalling.
func (p *Processor) hasResources(c int, ins *trace.Instr, at uint64) bool {
	cl := p.clusters[c]
	iq, regs := cl.intIQ, cl.intRegs
	if ins.Op.IsFP() {
		iq, regs = cl.fpIQ, cl.fpRegs
	}
	if iq.Free(at) == 0 {
		return false
	}
	if ins.Dest != trace.NoReg && regs.Free(at) == 0 {
		return false
	}
	return true
}
