package core

import (
	"hetwire/internal/config"
	"hetwire/internal/trace"
)

// steer implements the paper's dynamic instruction steering heuristic
// (Section 4, after [7, 15, 43]): while dispatching, each cluster is scored
// by
//
//   - whether it produces an input operand of the instruction,
//   - extra weight if it produces the operand predicted to be on the
//     critical path (the operand that becomes ready last),
//   - proximity to the data cache for loads and stores,
//   - issue-queue occupancy (empty entries attract work; this is the
//     load-balance term).
//
// The instruction goes to the highest-scoring cluster; if that cluster has
// no free register or issue-queue resources at dispatch time, the nearest
// cluster with available resources is used instead.
//
// The scoring is one fused pass in round-robin order: each candidate's
// weight is computed and compared in place, so there is no weights array to
// zero and each issue queue is consulted exactly once.
func (p *Processor) steer(ins *trace.Instr, at uint64) int {
	switch p.cfg.Steering {
	case config.SteerStatic:
		// Compile-time-style partitioning: each static instruction has a
		// home cluster. Fall back to a neighbour when it is full.
		cands := p.candidateClusters()
		home := cands[int((ins.PC>>2)%uint64(len(cands)))]
		if p.hasResources(home, ins, at) {
			return home
		}
		for d := 1; d < len(cands); d++ {
			if c := cands[(int(ins.PC>>2)+d)%len(cands)]; p.hasResources(c, ins, at) {
				return c
			}
		}
		return home
	case config.SteerRoundRobin:
		cands := p.candidateClusters()
		p.steerRR = (p.steerRR + 1) % len(cands)
		return cands[p.steerRR]
	}

	cands := p.candidateClusters()
	n := len(cands)

	// Operand-producer clusters, with a criticality bonus for the
	// latest-ready operand (only an operand not ready yet can be critical).
	c1, c2, critCluster := -1, -1, -1
	var critReady uint64
	if ins.Src1 != trace.NoReg {
		c1 = int(p.regCluster[ins.Src1])
		critReady = p.regReady[ins.Src1]
		critCluster = c1
	}
	if ins.Src2 != trace.NoReg {
		c2 = int(p.regCluster[ins.Src2])
		if r := p.regReady[ins.Src2]; r >= critReady {
			critReady = r
			critCluster = c2
		}
	}
	if critReady <= at {
		critCluster = -1
	}

	// Cache proximity applies to memory operations when clusters are not
	// equidistant from the centralized cache: on the 16-cluster hierarchy
	// the cache hangs off quad 0.
	memBonus := ins.Op.IsMem() && p.nClusters > 4
	isFP := ins.Op.IsFP()

	fp := 0
	if isFP {
		fp = 1
	}
	frees := p.iqFreeRow(fp, at)

	rr := p.steerRR
	best, bestW := -1, -1<<30
	j := rr
	for i := 0; i < n; i++ {
		c := cands[j]
		j++
		if j == n {
			j = 0
		}
		// Issue-queue emptiness (cluster load balance) plus dependence,
		// criticality, and proximity bonuses.
		w := int(frees[c]) >> 2
		if c == c1 {
			w += 3
		}
		if c == c2 {
			w += 3
		}
		if c == critCluster {
			w += 2
		}
		if memBonus && c>>2 == 0 {
			w += 2
		}
		if w > bestW {
			best, bestW = c, w
		}
	}
	p.steerRR = rr + 1
	if p.steerRR == n {
		p.steerRR = 0
	}

	// Resource fallback: if the chosen cluster has no free issue-queue
	// entry or rename register right now, move to the nearest cluster that
	// has both (paper: "the instruction is assigned to the nearest cluster
	// with available resources"). If nobody has resources, keep the
	// original choice and let dispatch stall until an entry frees.
	if p.hasResources(best, ins, at) {
		return best
	}
	pos := 0
	for i, c := range cands {
		if c == best {
			pos = i
			break
		}
	}
	for d := 1; d < n; d++ {
		if c := cands[(pos+d)%n]; p.hasResources(c, ins, at) {
			return c
		}
		if c := cands[(pos-d+n)%n]; p.hasResources(c, ins, at) {
			return c
		}
	}
	return best
}

// iqFreeRow returns the per-cluster free issue-queue counts for the register
// type at the dispatch cycle, refreshing the cached row if the frontier
// moved. The refresh expires every wheel of the row at once — semantically
// transparent under the monotone-query contract (lazy expiry may run at any
// query time at or after the releases it drops).
func (p *Processor) iqFreeRow(fp int, at uint64) *[maxClusters]int32 {
	row := &p.freeIQ[fp]
	if p.freeIQAt[fp] != at {
		for c := 0; c < p.nClusters; c++ {
			cl := &p.clusters[c]
			iq := cl.intIQ
			if fp != 0 {
				iq = cl.fpIQ
			}
			row[c] = int32(iq.Free(at))
		}
		p.freeIQAt[fp] = at
	}
	return row
}

// regsFreeRow is iqFreeRow for the rename-register pools.
func (p *Processor) regsFreeRow(fp int, at uint64) *[maxClusters]int32 {
	row := &p.freeRegs[fp]
	if p.freeRegsAt[fp] != at {
		for c := 0; c < p.nClusters; c++ {
			cl := &p.clusters[c]
			regs := cl.intRegs
			if fp != 0 {
				regs = cl.fpRegs
			}
			row[c] = int32(regs.Free(at))
		}
		p.freeRegsAt[fp] = at
	}
	return row
}

// hasResources reports whether the cluster can accept the instruction at
// the given cycle without stalling.
func (p *Processor) hasResources(c int, ins *trace.Instr, at uint64) bool {
	fp := 0
	if ins.Op.IsFP() {
		fp = 1
	}
	if p.iqFreeRow(fp, at)[c] == 0 {
		return false
	}
	if ins.Dest != trace.NoReg && p.regsFreeRow(fp, at)[c] == 0 {
		return false
	}
	return true
}
