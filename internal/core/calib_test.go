package core

import (
	"testing"

	"hetwire/internal/config"
	"hetwire/internal/stats"
	"hetwire/internal/workload"
)

func TestCalibrateAll(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep")
	}
	var ipcs []float64
	for _, prof := range workload.SPEC2K() {
		p := New(config.Default())
		st := p.Run(workload.NewGenerator(prof), 150000)
		ipcs = append(ipcs, st.IPC())
		t.Logf("%-8s IPC=%.3f l1d=%.3f l2=%.3f bracc=%.3f xferFrac=%.2f loadLat=%.1f lsqW=%.1f srcW=%.1f dispSt=%.1f",
			prof.Name, st.IPC(), st.L1DMissRate, st.L2MissRate, st.BranchAccuracy,
			float64(st.OperandTransfers)/float64(st.OperandTransfers+st.LocalOperands),
			float64(st.SumLoadLatency)/float64(st.Loads),
			float64(st.SumLSQWait)/float64(st.Loads),
			float64(st.SumSrcWait)/float64(st.Instructions),
			float64(st.SumDispatchStall)/float64(st.Instructions))
	}
	t.Logf("AM IPC = %.3f", stats.ArithmeticMean(ipcs))
}
