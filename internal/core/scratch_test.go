package core

import (
	"reflect"
	"testing"

	"hetwire/internal/config"
	"hetwire/internal/workload"
)

// TestProcessorResetReplay pins the Reset contract RunScratch pooling relies
// on: a reset processor replays a workload with statistics bit-identical to
// a freshly constructed one. Exercised across the interconnect models that
// reach every subsystem Reset touches (L-wire paths, narrow prediction,
// PW steering, the hierarchical ring) and across back-to-back reuse with a
// different workload in between (the batch-sweep access pattern).
func TestProcessorResetReplay(t *testing.T) {
	gcc, ok := workload.ByName("gcc")
	if !ok {
		t.Fatal("missing gcc profile")
	}
	mcf, _ := workload.ByName("mcf")
	const n = 20_000

	ring8 := config.Default()
	ring8.Topology = config.HierRing16
	ring8 = ring8.WithModel(config.ModelVIII)

	for _, tc := range []struct {
		name string
		cfg  config.Config
	}{
		{"modelI-crossbar4", config.Default()},
		{"modelV-crossbar4", config.Default().WithModel(config.ModelV)},
		{"modelVIII-hierring16", ring8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fresh := New(tc.cfg).Run(workload.NewGenerator(gcc), n)

			p := New(tc.cfg)
			// Dirty the machine with a different workload, then reset and
			// replay: the revived processor must match the fresh run exactly.
			p.Run(workload.NewGenerator(mcf), n)
			p.Reset()
			replay := p.Run(workload.NewGenerator(gcc), n)
			if !reflect.DeepEqual(fresh, replay) {
				t.Errorf("reset replay diverged from fresh run:\nfresh:  %+v\nreplay: %+v", fresh, replay)
			}

			// A second reset cycle (pool reuse is unbounded).
			p.Reset()
			again := p.Run(workload.NewGenerator(gcc), n)
			if !reflect.DeepEqual(fresh, again) {
				t.Errorf("second reset replay diverged from fresh run")
			}
		})
	}
}

// TestAcquireScratchReuse checks the pool round-trip: release then acquire
// with the same key revives a processor that produces identical results,
// and an empty key degrades to unpooled construction.
func TestAcquireScratchReuse(t *testing.T) {
	cfg := config.Default().WithModel(config.ModelV)
	prof, _ := workload.ByName("swim")
	const n = 15_000

	s1 := AcquireScratch("test-key-scratch-reuse", cfg)
	r1 := s1.Proc().Run(workload.NewGenerator(prof), n)
	s1.Release()

	s2 := AcquireScratch("test-key-scratch-reuse", cfg)
	r2 := s2.Proc().Run(workload.NewGenerator(prof), n)
	s2.Release()
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("pooled rerun diverged:\nfirst:  %+v\nsecond: %+v", r1, r2)
	}

	s3 := AcquireScratch("", cfg)
	r3 := s3.Proc().Run(workload.NewGenerator(prof), n)
	s3.Release() // no-op for unpooled scratches
	if !reflect.DeepEqual(r1, r3) {
		t.Errorf("unpooled run diverged from pooled run")
	}
}
