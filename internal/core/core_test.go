package core

import (
	"testing"

	"hetwire/internal/config"
	"hetwire/internal/trace"
	"hetwire/internal/wires"
	"hetwire/internal/workload"
)

const testInstrs = 60_000

func runBench(t *testing.T, cfg config.Config, bench string, n uint64) Stats {
	t.Helper()
	prof, ok := workload.ByName(bench)
	if !ok {
		t.Fatalf("unknown benchmark %s", bench)
	}
	return New(cfg).Run(workload.NewGenerator(prof), n)
}

// TestDeterminism: identical configuration and workload give bit-identical
// statistics.
func TestDeterminism(t *testing.T) {
	a := runBench(t, config.Default(), "gcc", 20_000)
	b := runBench(t, config.Default(), "gcc", 20_000)
	if a.Cycles != b.Cycles || a.Mispredicts != b.Mispredicts || a.Net != b.Net {
		t.Fatalf("nondeterministic run: %+v vs %+v", a, b)
	}
}

// TestBasicSanity: IPC in a physical range, cycles consistent, every
// instruction committed.
func TestBasicSanity(t *testing.T) {
	st := runBench(t, config.Default(), "mesa", testInstrs)
	if st.Instructions != testInstrs {
		t.Fatalf("committed %d instructions, want %d", st.Instructions, testInstrs)
	}
	if ipc := st.IPC(); ipc <= 0.05 || ipc > 8 {
		t.Fatalf("IPC %.3f outside physical range", ipc)
	}
	if st.Branches == 0 || st.Loads == 0 || st.Stores == 0 {
		t.Fatal("instruction classes missing from the run")
	}
	if st.BranchAccuracy < 0.5 || st.BranchAccuracy > 1 {
		t.Fatalf("branch accuracy %.3f out of range", st.BranchAccuracy)
	}
}

// TestMemoryBoundBenchmarksAreSlower: the Figure 3 ordering at its
// coarsest: mcf must be far slower than the cache-resident codes.
func TestMemoryBoundBenchmarksAreSlower(t *testing.T) {
	mcf := runBench(t, config.Default(), "mcf", testInstrs)
	mesa := runBench(t, config.Default(), "mesa", testInstrs)
	if mcf.IPC() > 0.6*mesa.IPC() {
		t.Errorf("mcf IPC %.3f should be well below mesa IPC %.3f", mcf.IPC(), mesa.IPC())
	}
}

// TestLWireTechniquesImprovePerformance: adding an L-wire layer plus the
// Section 4 low-latency techniques must raise IPC (paper Figure 3).
func TestLWireTechniquesImprovePerformance(t *testing.T) {
	lw := config.Default()
	lw.Model.Link.LWires = 18
	lw.Tech = config.AllTechniques()
	lw.Tech.PWReadyOperands = false
	lw.Tech.PWStoreData = false
	lw.Tech.PWLoadBalance = false

	for _, bench := range []string{"gcc", "mesa", "swim"} {
		base := runBench(t, config.Default(), bench, testInstrs)
		fast := runBench(t, lw, bench, testInstrs)
		if fast.IPC() <= base.IPC() {
			t.Errorf("%s: L-wire techniques did not help (%.3f -> %.3f)", bench, base.IPC(), fast.IPC())
		}
		if fast.Net[2].Transfers == 0 {
			t.Errorf("%s: no L-plane traffic despite enabled techniques", bench)
		}
	}
}

// TestDoubledLatencyHurts: the Section 1 sensitivity claim, directionally.
func TestDoubledLatencyHurts(t *testing.T) {
	slow := config.Default()
	slow.LatencyScale = 2
	for _, bench := range []string{"eon", "gzip"} {
		base := runBench(t, config.Default(), bench, testInstrs)
		s2 := runBench(t, slow, bench, testInstrs)
		if s2.IPC() >= base.IPC() {
			t.Errorf("%s: doubling latency did not hurt (%.3f -> %.3f)", bench, base.IPC(), s2.IPC())
		}
	}
}

// TestPWOnlyInterconnectIsSlower: Model II (all PW, 3-cycle) must not beat
// Model I (B, 2-cycle) even with twice the bandwidth (paper Table 3: 0.92
// vs 0.95).
func TestPWOnlyInterconnectIsSlower(t *testing.T) {
	base := runBench(t, config.Default(), "gzip", testInstrs)
	ii := runBench(t, config.Default().WithModel(config.ModelII), "gzip", testInstrs)
	if ii.IPC() > base.IPC()*1.005 {
		t.Errorf("Model II IPC %.3f should not exceed Model I %.3f", ii.IPC(), base.IPC())
	}
	if ii.Net[0].Transfers != 0 {
		t.Error("Model II must carry no B traffic")
	}
}

// TestMoreBandwidthNeverHurts: Model IV (288 B) must be at least as fast as
// Model I (144 B).
func TestMoreBandwidthNeverHurts(t *testing.T) {
	for _, bench := range []string{"mesa", "swim"} {
		base := runBench(t, config.Default(), bench, testInstrs)
		iv := runBench(t, config.Default().WithModel(config.ModelIV), bench, testInstrs)
		if iv.IPC() < base.IPC()*0.995 {
			t.Errorf("%s: Model IV IPC %.3f below Model I %.3f", bench, iv.IPC(), base.IPC())
		}
		if iv.WaitCycles >= base.WaitCycles {
			t.Errorf("%s: doubling bandwidth did not reduce contention (%d -> %d)",
				bench, base.WaitCycles, iv.WaitCycles)
		}
	}
}

// TestPWSteeringDivertsTraffic: under Model V the three Section 4 criteria
// must move a substantial fraction of traffic to PW wires with only a small
// IPC cost (paper: 36% of transfers, 1% slowdown).
func TestPWSteeringDivertsTraffic(t *testing.T) {
	iv := runBench(t, config.Default().WithModel(config.ModelIV), "vortex", testInstrs)
	v := runBench(t, config.Default().WithModel(config.ModelV), "vortex", testInstrs)

	var total uint64
	for i := range v.Net {
		total += v.Net[i].Transfers
	}
	pwShare := float64(v.Net[1].Transfers) / float64(total)
	if pwShare < 0.10 || pwShare > 0.80 {
		t.Errorf("PW share of traffic = %.2f, want a substantial fraction", pwShare)
	}
	if v.StoreDataPW == 0 || v.ReadyOperandPW == 0 {
		t.Error("PW steering criteria never fired")
	}
	if v.IPC() < iv.IPC()*0.93 {
		t.Errorf("PW steering cost too much: %.3f vs %.3f", v.IPC(), iv.IPC())
	}
}

// TestSixteenClusters: the hierarchical topology runs and extracts more ILP
// from high-ILP codes than 4 clusters (paper: +17% average).
func TestSixteenClusters(t *testing.T) {
	cfg := config.Default()
	cfg.Topology = config.HierRing16
	for _, bench := range []string{"galgel", "mesa"} {
		four := runBench(t, config.Default(), bench, testInstrs)
		sixteen := runBench(t, cfg, bench, testInstrs)
		if sixteen.IPC() < four.IPC()*0.95 {
			t.Errorf("%s: 16 clusters (%.3f) should not be clearly slower than 4 (%.3f)",
				bench, sixteen.IPC(), four.IPC())
		}
	}
}

// TestPartialAddressFalseDependences: with 8 LS bits the false-dependence
// rate must be small (paper: <9% of loads).
func TestPartialAddressFalseDependences(t *testing.T) {
	cfg := config.Default().WithModel(config.ModelVII)
	st := runBench(t, cfg, "vortex", testInstrs)
	if st.PartialChecks == 0 {
		t.Fatal("partial-address pipeline never engaged")
	}
	rate := float64(st.PartialFalseDeps) / float64(st.PartialChecks)
	if rate > 0.09 {
		t.Errorf("false-dependence rate %.3f, want < 0.09 (paper)", rate)
	}
}

// TestFewerLSBitsMoreFalseDeps: the ablation direction — shrinking the
// partial comparison width increases false dependences.
func TestFewerLSBitsMoreFalseDeps(t *testing.T) {
	rate := func(bits int) float64 {
		cfg := config.Default().WithModel(config.ModelVII)
		cfg.Tech.LSBits = bits
		st := runBench(t, cfg, "vortex", testInstrs)
		if st.PartialChecks == 0 {
			t.Fatal("no partial checks")
		}
		return float64(st.PartialFalseDeps) / float64(st.PartialChecks)
	}
	if r4, r12 := rate(4), rate(12); r4 < r12 {
		t.Errorf("4 LS bits (%.4f) should alias more than 12 (%.4f)", r4, r12)
	}
}

// TestNarrowOracleBeatsPredictorBeatsNothing: oracle narrow knowledge >=
// predictor >= baseline on L-wire traffic volume.
func TestNarrowOracleBeatsPredictorBeatsNothing(t *testing.T) {
	pred := config.Default().WithModel(config.ModelVII)
	oracle := pred
	oracle.Tech.NarrowOracle = true

	sPred := runBench(t, pred, "gzip", testInstrs)
	sOracle := runBench(t, oracle, "gzip", testInstrs)
	if sOracle.NarrowTransfers < sPred.NarrowTransfers {
		t.Errorf("oracle sent fewer narrow transfers (%d) than the predictor (%d)",
			sOracle.NarrowTransfers, sPred.NarrowTransfers)
	}
	if sOracle.NarrowMispredicted != 0 {
		t.Errorf("oracle mispredicted %d narrow values", sOracle.NarrowMispredicted)
	}
	if sPred.NarrowTransfers > 0 {
		falseRate := float64(sPred.NarrowMispredicted) / float64(sPred.NarrowTransfers+sPred.NarrowMispredicted)
		if falseRate > 0.05 {
			t.Errorf("predictor false-narrow transfer rate %.3f, want <= 0.05 (paper: 2%%)", falseRate)
		}
	}
}

// TestMispredictSignalOnLWiresHelps: the branch-ID-on-L-wires technique in
// isolation must not slow anything down and should help branchy codes.
func TestMispredictSignalOnLWiresHelps(t *testing.T) {
	cfg := config.Default()
	cfg.Model.Link.LWires = 18
	cfg.Tech = config.Techniques{MispredictOnL: true}
	base := runBench(t, config.Default(), "gcc", testInstrs)
	fast := runBench(t, cfg, "gcc", testInstrs)
	if fast.IPC() < base.IPC() {
		t.Errorf("mispredict-on-L slowed gcc: %.3f -> %.3f", base.IPC(), fast.IPC())
	}
}

// TestRunStopsOnStreamEnd: a finite stream ends the run early.
func TestRunStopsOnStreamEnd(t *testing.T) {
	src := &trace.SliceStream{Instrs: []trace.Instr{
		{PC: 0x1000, Op: trace.IntALU, Src1: trace.NoReg, Src2: trace.NoReg, Dest: 1},
		{PC: 0x1004, Op: trace.IntALU, Src1: 1, Src2: trace.NoReg, Dest: 2},
	}}
	st := New(config.Default()).Run(src, 100)
	if st.Instructions != 2 {
		t.Fatalf("ran %d instructions, want 2", st.Instructions)
	}
	if st.Cycles == 0 {
		t.Fatal("zero cycles for a non-empty run")
	}
}

// TestDependentPairTiming: a two-instruction dependence executes in order
// with a plausible gap.
func TestDependentPairTiming(t *testing.T) {
	src := &trace.SliceStream{Instrs: []trace.Instr{
		{PC: 0x1000, Op: trace.IntMul, Src1: trace.NoReg, Src2: trace.NoReg, Dest: 1},
		{PC: 0x1004, Op: trace.IntALU, Src1: 1, Src2: trace.NoReg, Dest: 2},
	}}
	st := New(config.Default()).Run(src, 2)
	// The dependent pair needs at least the multiply latency beyond the
	// pipeline fill.
	minCycles := uint64(frontDepth + trace.IntMul.Latency() + 1)
	if st.Cycles < minCycles {
		t.Errorf("dependent pair finished in %d cycles, want >= %d", st.Cycles, minCycles)
	}
}

// TestInvalidConfigPanics: core.New guards its inputs.
func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New accepted an invalid config")
		}
	}()
	bad := config.Default()
	bad.Core.ROBSize = 0
	New(bad)
}

// TestStatsAccounting: derived counters are internally consistent.
func TestStatsAccounting(t *testing.T) {
	st := runBench(t, config.Default().WithModel(config.ModelX), "twolf", testInstrs)
	if st.NarrowTransfers+st.NarrowMispredicted > st.OperandTransfers {
		t.Error("narrow transfers exceed total operand transfers")
	}
	var netTransfers uint64
	for i := range st.Net {
		netTransfers += st.Net[i].Transfers
	}
	// Every operand transfer and memory message rides the network at least
	// once; network transfers must dominate operand transfers.
	if netTransfers < st.OperandTransfers {
		t.Error("network transfer count below operand transfer count")
	}
	if st.Cycles == 0 || st.IPC() == 0 {
		t.Error("missing cycle accounting")
	}
	if st.LinkInventory == nil || len(st.LinkInventory) == 0 {
		t.Error("missing link inventory")
	}
}

// TestNoCalendarClamps: the sliding calendar windows must be large enough
// that no reservation is ever clamped — i.e. all resource timing is exact —
// across representative configurations.
func TestNoCalendarClamps(t *testing.T) {
	configs := []config.Config{
		config.Default(),
		config.Default().WithModel(config.ModelX),
	}
	c16 := config.Default()
	c16.Topology = config.HierRing16
	configs = append(configs, c16)
	for _, cfg := range configs {
		for _, bench := range []string{"mcf", "gzip"} {
			st := runBench(t, cfg, bench, testInstrs)
			if st.CalendarClamps != 0 {
				t.Errorf("%v/%s: %d calendar clamps; timing approximated", cfg.Model.ID, bench, st.CalendarClamps)
			}
		}
	}
}

// TestFrequentValueCompaction: with the extension on, repeated wide values
// ride L-wires. On value-heavy codes it must not hurt (the adaptive send
// buffer falls back to B when the L plane is busy); memory-op-heavy codes
// like vortex can lose slightly to L-plane sharing with address LS bits,
// which EXPERIMENTS.md reports.
func TestFrequentValueCompaction(t *testing.T) {
	base := config.Default().WithModel(config.ModelVII)
	fv := base
	fv.Tech.FrequentValueEnc = true

	sBase := runBench(t, base, "gzip", testInstrs)
	sFV := runBench(t, fv, "gzip", testInstrs)
	if sFV.FVTransfers == 0 {
		t.Fatal("frequent-value encoding never fired")
	}
	if sBase.FVTransfers != 0 {
		t.Fatal("FV transfers counted with the extension off")
	}
	if sFV.IPC() < sBase.IPC()*0.995 {
		t.Errorf("FV compaction slowed gzip: %.3f -> %.3f", sBase.IPC(), sFV.IPC())
	}
}

// TestCriticalWordOnL: L2/memory loads with narrow values return on
// L-wires; the technique needs L wires and never fires for L1 hits only.
func TestCriticalWordOnL(t *testing.T) {
	cfg := config.Default().WithModel(config.ModelVII)
	cfg.Tech.CriticalWordOnL = true
	st := runBench(t, cfg, "mcf", testInstrs) // plenty of L2/memory misses
	if st.CriticalWordOnL == 0 {
		t.Fatal("critical-word returns never fired on a memory-bound benchmark")
	}
	if st.CriticalWordOnL > st.Loads {
		t.Fatal("more critical-word returns than loads")
	}
}

// TestExtensionsRequireLWires: validation rejects extensions on L-less
// interconnects.
func TestExtensionsRequireLWires(t *testing.T) {
	cfg := config.Default() // Model I: no L wires
	cfg.Tech.FrequentValueEnc = true
	if cfg.Validate() == nil {
		t.Error("frequent-value encoding accepted without L wires")
	}
}

// TestWarmupResetsStatsKeepsState: measured statistics after a warmup
// reflect only the measured region, and warmed structures make the measured
// region faster than a cold run of the same length.
func TestWarmupResetsStatsKeepsState(t *testing.T) {
	prof, _ := workload.ByName("gcc")

	cold := New(config.Default()).Run(workload.NewGenerator(prof), 30_000)

	warm := New(config.Default())
	gen := workload.NewGenerator(prof)
	warm.Warmup(gen, 30_000)
	st := warm.Run(gen, 30_000)

	if st.Instructions != 30_000 {
		t.Fatalf("measured %d instructions, want 30k", st.Instructions)
	}
	if st.IPC() <= cold.IPC() {
		t.Errorf("warmed IPC %.3f not above cold IPC %.3f", st.IPC(), cold.IPC())
	}
	if st.L1DMissRate >= cold.L1DMissRate {
		t.Errorf("warmed L1D miss rate %.3f not below cold %.3f", st.L1DMissRate, cold.L1DMissRate)
	}
}

// TestMispredictPenaltyFloor: a mispredicted branch must cost at least the
// Table 1 minimum of 12 cycles of fetch delay for the following
// instruction.
func TestMispredictPenaltyFloor(t *testing.T) {
	// Two streams, identical except that the branch outcome flips between
	// runs so the second run's branch trains then mispredicts.
	mk := func(taken bool) *trace.SliceStream {
		instrs := []trace.Instr{}
		// Warm the predictor towards not-taken.
		for i := 0; i < 6; i++ {
			instrs = append(instrs, trace.Instr{
				PC: 0x1000, Op: trace.Branch, Src1: trace.NoReg, Src2: trace.NoReg,
				Dest: trace.NoReg, Taken: false, Target: 0x2000,
			})
			instrs = append(instrs, trace.Instr{
				PC: 0x1004, Op: trace.IntALU, Src1: trace.NoReg, Src2: trace.NoReg, Dest: 1,
			})
		}
		// The probe branch.
		next := uint64(0x1004)
		if taken {
			next = 0x2000
		}
		instrs = append(instrs, trace.Instr{
			PC: 0x1000, Op: trace.Branch, Src1: trace.NoReg, Src2: trace.NoReg,
			Dest: trace.NoReg, Taken: taken, Target: 0x2000,
		})
		instrs = append(instrs, trace.Instr{
			PC: next, Op: trace.IntALU, Src1: trace.NoReg, Src2: trace.NoReg, Dest: 2,
		})
		return &trace.SliceStream{Instrs: instrs}
	}
	good := New(config.Default()).Run(mk(false), 100)
	bad := New(config.Default()).Run(mk(true), 100)
	if bad.Mispredicts == 0 {
		t.Fatal("probe branch was not mispredicted")
	}
	penalty := int64(bad.Cycles) - int64(good.Cycles)
	if penalty < 12 {
		t.Errorf("mispredict penalty = %d cycles, Table 1 requires >= 12", penalty)
	}
}

// TestFetchBlockLimit: at most two basic blocks are fetched per cycle, so a
// stream of single-instruction taken-branch blocks cannot exceed 2 IPC at
// the fetch stage.
func TestFetchBlockLimit(t *testing.T) {
	instrs := make([]trace.Instr, 0, 4096)
	// Alternate between two single-branch blocks that jump to each other:
	// every instruction starts a new basic block.
	for i := 0; i < 4096; i++ {
		pc, tgt := uint64(0x1000), uint64(0x2000)
		if i%2 == 1 {
			pc, tgt = 0x2000, 0x1000
		}
		instrs = append(instrs, trace.Instr{
			PC: pc, Op: trace.Branch, Src1: trace.NoReg, Src2: trace.NoReg,
			Dest: trace.NoReg, Taken: true, Target: tgt,
		})
	}
	st := New(config.Default()).Run(&trace.SliceStream{Instrs: instrs}, 4096)
	if ipc := st.IPC(); ipc > 2.05 {
		t.Errorf("IPC %.2f exceeds the 2-blocks-per-cycle fetch limit", ipc)
	}
}

// TestObserverTimelineInvariants: for every instruction the pipeline stages
// are causally ordered, commits are monotone, and every committed
// instruction is reported exactly once.
func TestObserverTimelineInvariants(t *testing.T) {
	p := New(config.Default())
	var lastCommit uint64
	var count uint64
	p.Observer = func(ti InstrTiming) {
		count++
		if !(ti.Fetch <= ti.Dispatch && ti.Dispatch < ti.Issue && ti.Issue <= ti.Complete && ti.Complete < ti.Commit) {
			t.Fatalf("stage ordering violated: %+v", ti)
		}
		if ti.Commit < lastCommit {
			t.Fatalf("commit went backwards: %d after %d (%+v)", ti.Commit, lastCommit, ti)
		}
		lastCommit = ti.Commit
		if ti.Cluster < 0 || ti.Cluster >= 4 {
			t.Fatalf("bad cluster %d", ti.Cluster)
		}
		if ti.Dispatch-ti.Fetch < frontDepth {
			t.Fatalf("front-end depth violated: %+v", ti)
		}
	}
	prof, _ := workload.ByName("gzip")
	st := p.Run(workload.NewGenerator(prof), 20_000)
	if count != st.Instructions {
		t.Fatalf("observer saw %d instructions, committed %d", count, st.Instructions)
	}
}

// TestMultiprogramTwoThreads: two threads on the 16-cluster machine, each
// committing its full stream on disjoint cluster sets over a shared fabric.
func TestMultiprogramTwoThreads(t *testing.T) {
	cfg := config.Default()
	cfg.Topology = config.HierRing16
	p1, _ := workload.ByName("gzip")
	p2, _ := workload.ByName("swim")
	res := RunMultiprogram(cfg, []trace.Stream{
		workload.NewGenerator(p1),
		workload.NewGenerator(p2),
	}, 30_000)
	if len(res) != 2 {
		t.Fatalf("got %d thread results", len(res))
	}
	for i, r := range res {
		if r.Stats.Instructions != 30_000 {
			t.Errorf("thread %d committed %d instructions", i, r.Stats.Instructions)
		}
		if len(r.Clusters) != 8 {
			t.Errorf("thread %d owns %d clusters, want 8", i, len(r.Clusters))
		}
		if r.Stats.IPC() <= 0 {
			t.Errorf("thread %d has zero IPC", i)
		}
	}
	// Disjoint cluster sets.
	seen := map[int]bool{}
	for _, r := range res {
		for _, c := range r.Clusters {
			if seen[c] {
				t.Fatalf("cluster %d assigned to two threads", c)
			}
			seen[c] = true
		}
	}
}

// TestMultiprogramSharedCacheContention: two copies of a memory-heavy
// thread slow each other down relative to running alone on the same-sized
// partition (shared cache ports and wires are the paper's TLP pressure
// point).
func TestMultiprogramSharedCacheContention(t *testing.T) {
	cfg := config.Default()
	cfg.Topology = config.HierRing16
	prof, _ := workload.ByName("swim")
	profB := prof
	profB.Seed ^= 0xBEEF
	profB.AddrOffset = 1 << 32 // disjoint address space: no constructive sharing

	alone := RunMultiprogram(cfg, []trace.Stream{workload.NewGenerator(prof)}, 30_000)
	// A single thread gets all 16 clusters; to isolate sharing effects,
	// compare per-thread IPC of the duo against a solo run on 8 clusters.
	fab := NewSharedFabric(cfg)
	solo8 := NewOnFabric(cfg, fab, []int{0, 1, 2, 3, 4, 5, 6, 7})
	gen := workload.NewGenerator(prof)
	soloStats := solo8.Run(gen, 30_000)

	duo := RunMultiprogram(cfg, []trace.Stream{
		workload.NewGenerator(prof),
		workload.NewGenerator(profB),
	}, 30_000)

	if duo[0].Stats.IPC() > soloStats.IPC()*1.02 {
		t.Errorf("shared-fabric thread (%.3f) should not beat the solo 8-cluster run (%.3f)",
			duo[0].Stats.IPC(), soloStats.IPC())
	}
	if alone[0].Stats.IPC() <= 0 {
		t.Error("single-thread multiprogram run broken")
	}
	// Aggregate throughput of two threads must exceed one thread alone.
	if agg := duo[0].Stats.IPC() + duo[1].Stats.IPC(); agg <= alone[0].Stats.IPC() {
		t.Errorf("TLP throughput %.3f not above single-thread %.3f", agg, alone[0].Stats.IPC())
	}
}

// TestPlaneBeatsLinkHeterogeneity: the paper adopted plane heterogeneity
// (every link carries every class) over per-link class segregation because
// it "affords more flexibility"; at equal metal area the plane design
// should perform at least as well.
func TestPlaneBeatsLinkHeterogeneity(t *testing.T) {
	plane := config.Default().WithModel(config.ModelV)
	linkH := plane
	linkH.LinkHeterogeneous = true
	pr := runBench(t, plane, "gzip", testInstrs)
	lr := runBench(t, linkH, "gzip", testInstrs)
	if lr.IPC() > pr.IPC()*1.02 {
		t.Errorf("link heterogeneity (%.3f) should not beat plane heterogeneity (%.3f)",
			lr.IPC(), pr.IPC())
	}
}

// TestRandomConfigurationsHoldInvariants: property test — for arbitrary
// valid technique/model/topology combinations the machine commits every
// instruction, reports sane IPC, and never clamps a calendar.
func TestRandomConfigurationsHoldInvariants(t *testing.T) {
	models := config.Models()
	benches := workload.Names()
	for trial := 0; trial < 12; trial++ {
		cfg := config.Default().WithModel(models[trial%len(models)].ID)
		if trial%3 == 1 {
			cfg.Topology = config.HierRing16
		}
		if trial%4 == 2 {
			cfg.LatencyScale = 2
		}
		cfg.Steering = config.SteeringPolicy(trial % 3)
		if cfg.Model.Link.Has(wires.L) && trial%2 == 0 {
			cfg.Tech.FrequentValueEnc = true
			cfg.Tech.CriticalWordOnL = true
		}
		if cfg.Model.Link.Has(wires.B) && cfg.Model.Link.Has(wires.PW) && trial%5 == 0 {
			cfg.LinkHeterogeneous = true
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("trial %d produced invalid config: %v", trial, err)
		}
		st := runBench(t, cfg, benches[trial%len(benches)], 15_000)
		if st.Instructions != 15_000 {
			t.Fatalf("trial %d (%v): committed %d", trial, cfg.Model.ID, st.Instructions)
		}
		if ipc := st.IPC(); ipc <= 0.01 || ipc > 8 {
			t.Fatalf("trial %d (%v): IPC %.3f out of range", trial, cfg.Model.ID, ipc)
		}
		if st.CalendarClamps != 0 {
			t.Fatalf("trial %d (%v): %d calendar clamps", trial, cfg.Model.ID, st.CalendarClamps)
		}
	}
}

// TestBufferOccupancyIsModest: the paper cites Parcerisa et al. for
// unbounded network buffers needing only a modest number of entries in
// practice; the recorded worst-case buffered wait bounds the occupancy.
func TestBufferOccupancyIsModest(t *testing.T) {
	st := runBench(t, config.Default(), "gzip", testInstrs)
	for i, ns := range st.Net {
		if ns.Transfers == 0 {
			continue
		}
		if ns.MaxWait > 200 {
			t.Errorf("class %d worst buffered wait %d cycles; buffers are not modest", i, ns.MaxWait)
		}
	}
}

// TestObserverCrossChecksMixCounters: the op counts seen by the observer
// match the Stats counters exactly.
func TestObserverCrossChecksMixCounters(t *testing.T) {
	p := New(config.Default())
	var loads, stores, branches uint64
	p.Observer = func(ti InstrTiming) {
		switch ti.Op {
		case trace.Load:
			loads++
		case trace.Store:
			stores++
		case trace.Branch:
			branches++
		}
	}
	prof, _ := workload.ByName("vortex")
	st := p.Run(workload.NewGenerator(prof), 20_000)
	if loads != st.Loads || stores != st.Stores || branches != st.Branches {
		t.Fatalf("observer saw %d/%d/%d, stats say %d/%d/%d",
			loads, stores, branches, st.Loads, st.Stores, st.Branches)
	}
}
