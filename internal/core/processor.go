// Package core implements the paper's evaluation platform: a dynamically
// scheduled partitioned (clustered) processor with a centralized load/store
// queue and L1 data cache, connected by the heterogeneous interconnect of
// internal/noc.
//
// The engine is a timestamp+calendar cycle-level model: instructions are
// processed in program order, and every structural resource — fetch
// bandwidth, the 64-entry fetch queue, dispatch bandwidth, the 480-entry
// ROB, per-cluster 15-entry issue queues and 32-entry rename register pools,
// per-cluster functional units, cache bank ports, and every per-class
// directional network link — is a cycle calendar or bounded-occupancy pool
// that grants each event the earliest feasible cycle. This models
// out-of-order issue, buffered link contention and in-order commit exactly,
// while staying deterministic. Wrong-path instructions are not simulated
// (the standard trace-driven approximation); the mispredict penalty,
// including the network latency of the resolution signal back to the front
// end, is modeled explicitly.
package core

import (
	"context"

	"hetwire/internal/bpred"
	"hetwire/internal/cache"
	"hetwire/internal/config"
	"hetwire/internal/narrow"
	"hetwire/internal/noc"
	"hetwire/internal/sched"
	"hetwire/internal/trace"
	"hetwire/internal/wires"
)

// fuKind indexes the per-cluster functional units.
type fuKind int

const (
	fuIntALU fuKind = iota
	fuIntMul
	fuFPALU
	fuFPMul
	numFUKinds
)

func fuFor(op trace.Op) fuKind {
	switch op {
	case trace.IntMul:
		return fuIntMul
	case trace.FPALU:
		return fuFPALU
	case trace.FPMul:
		return fuFPMul
	default: // int ALU ops, branches, and load/store address generation
		return fuIntALU
	}
}

// maxClusters is the largest cluster count any topology provides (the
// 16-cluster hierarchical ring); fixed-size per-register arrays are sized by
// it so renaming allocates nothing per register.
const maxClusters = 16

// xferAction is a precomputed operand-transfer decision: which arm of the
// paper's wire-class ladder a transfer takes, as a function of the three
// per-operand bits (predicted-narrow, actually-narrow, ready-early) and the
// configuration. The dynamic parts of the ladder — frequent-value lookup and
// the PreferB/PreferPW congestion checks — stay runtime checks layered on
// top; everything configuration-static is folded into the 8-entry table.
type xferAction uint8

const (
	xWide       xferAction = iota // full-width transfer on the wide plane (with load-balance diversion)
	xNarrowL                      // predicted and actually narrow: L-wires
	xNarrowMiss                   // predicted narrow, actually wide: wasted L send + resend
	xReadyPW                      // ready-operand diversion candidate (criterion 1)
)

// cluster bundles one cluster's resources.
type cluster struct {
	intIQ   *sched.Wheel // 15 int issue-queue entries
	fpIQ    *sched.Wheel
	intRegs *sched.Wheel // 32 int rename registers
	fpRegs  *sched.Wheel
	fus     [numFUKinds]*sched.Calendar
}

// Processor is the simulated machine. Construct with New; drive with Run.
type Processor struct {
	cfg config.Config
	net *noc.Network
	mem *cache.Hierarchy
	bp  *bpred.Predictor
	np  *narrow.Predictor
	fvt *narrow.FrequentValueTable

	nClusters int
	clusters  []cluster

	// Front end.
	fetchCal    *sched.Calendar // fetch bandwidth: FetchWidth/cycle
	fetchQ      *sched.Wheel     // 64 entries, freed at dispatch
	dispatchCal *sched.Calendar // DispatchWidth/cycle
	commitCal   *sched.Calendar // CommitWidth/cycle
	rob         []uint64        // ring of commit times, ROBSize entries
	robPos      int

	lastFetch    uint64 // monotone fetch frontier (in-order fetch)
	lastDispatch uint64
	lastCommit   uint64
	redirectAt   uint64 // earliest fetch cycle after a mispredict redirect
	curFetchLine uint64 // current I-cache line, for fetch-access modelling

	// Basic-block fetch limiting (MaxBlocksFetch blocks per cycle).
	pendingBlockStart bool
	blkCycle          uint64
	blkCount          int

	// Store awaiting its commit time before entering the LSQ books.
	pendingStore     lsqStore
	havePendingStore bool

	// Architectural-register state in struct-of-arrays layout: the steering
	// and operand loops touch only the one or two fields they need, so each
	// lookup reads one contiguous cache line of the field it wants instead of
	// striding across 176-byte per-register structs.
	regCluster    [trace.NumArchRegs]uint8  // cluster holding the value
	regReady      [trace.NumArchRegs]uint64 // cycle the value is ready there
	regValue      [trace.NumArchRegs]uint64
	regNarrow     [trace.NumArchRegs]uint8 // 0/1: value fits NarrowMaxBits
	regPredNarrow [trace.NumArchRegs]uint8 // 0/1: predictor's (or oracle's) call
	// regGen is bumped on every writeback; the arrived cache below is valid
	// only for matching generations, which invalidates all per-cluster copy
	// times of the overwritten mapping in one increment instead of a 128-byte
	// clear per renamed destination.
	regGen     [trace.NumArchRegs]uint32
	arrivedAt  [trace.NumArchRegs * maxClusters]uint64 // per-(reg,cluster) copy arrival
	arrivedGen [trace.NumArchRegs * maxClusters]uint32

	lsq *lsqState

	steerRR int // round-robin tiebreaker for steering

	// Cached per-cluster free counts at one dispatch cycle, refreshed lazily
	// per register type when the dispatch frontier moves and patched in place
	// as dispatch books entries. The steering weight loop and the resource
	// fallback read these flat rows instead of polling every cluster's wheels
	// (16 pointer-chasing queries per steered instruction otherwise).
	// Index [0] is the integer row, [1] the floating-point row; the At stamps
	// hold the cycle each row reflects (^0 = never refreshed).
	freeIQAt   [2]uint64
	freeRegsAt [2]uint64
	freeIQ     [2][maxClusters]int32
	freeRegs   [2][maxClusters]int32

	// Configuration-derived constants hoisted out of the per-instruction
	// loop (see initDerived).
	hasB        bool
	wideCls     wires.Class // B when present, else the homogeneous PW plane
	mispredCls  wires.Class
	fvEnabled   bool
	balanceOn   bool
	pwStoreData bool
	lwirePipe   bool
	criticalOnL bool
	narrowOrcl  bool
	narrowOps   bool
	narrowMax   int
	xferTab     [8]xferAction // index: predNarrow<<2 | narrow<<1 | readyEarly

	// allowed restricts steering to a cluster subset (multiprogrammed
	// threads); nil means all clusters. all caches the full index list.
	allowed []int
	all     []int

	// statsBase is the commit-frontier cycle at the last stats reset;
	// Cycles reports lastCommit - statsBase.
	statsBase uint64

	// Observer, when non-nil, receives the resolved timing of every
	// instruction — the per-stage timeline a hardware pipeline viewer
	// would show. Used by debugging tools and tests; nil costs nothing.
	Observer func(InstrTiming)

	// probe, when non-nil, receives read-only interval samples every
	// ProbeInterval committed instructions (see SetProbe). Checked only on
	// the context-poll cadence, never in the per-instruction loop.
	probe Probe

	// Statistics.
	s Stats
}

// InstrTiming is the resolved pipeline timeline of one instruction.
type InstrTiming struct {
	Seq      uint64
	PC       uint64
	Op       trace.Op
	Cluster  int
	Fetch    uint64
	Dispatch uint64
	Issue    uint64
	Complete uint64
	Commit   uint64
	Mispred  bool
}

// Stats aggregates everything the experiments read out of a run.
type Stats struct {
	Instructions uint64
	Cycles       uint64

	Branches       uint64
	Mispredicts    uint64
	BTBMisses      uint64
	Loads          uint64
	Stores         uint64
	L1DMissRate    float64
	L2MissRate     float64
	TLBMissRate    float64
	BranchAccuracy float64

	// Inter-cluster operand communication.
	OperandTransfers   uint64 // producer cluster != consumer cluster
	LocalOperands      uint64
	NarrowTransfers    uint64 // operand copies that rode L-wires
	NarrowMispredicted uint64 // predicted narrow, actually wide (resend)
	ReadyOperandPW     uint64 // criterion 1 diversions
	StoreDataPW        uint64 // criterion 2 diversions
	BalancePW          uint64 // criterion 3 diversions
	NarrowEligible     uint64 // transfers whose value was actually narrow
	FVTransfers        uint64 // transfers compacted by the frequent-value table
	CriticalWordOnL    uint64 // L2/memory loads returned on L-wires

	// LSQ behaviour.
	PartialFalseDeps uint64 // LS-bit match, full-address mismatch
	PartialChecks    uint64
	StoreForwards    uint64

	// Network.
	Net           [3]noc.ClassStats // B, PW, L
	WaitCycles    uint64
	LinkInventory map[wires.Class]float64

	// CalendarClamps counts sliding-window violations across every cycle
	// calendar in the machine; zero means all timing was exact.
	CalendarClamps uint64

	// Latency breakdown diagnostics (cycle sums; divide by Instructions).
	SumDispatchStall uint64 // dispatch beyond fetch+frontDepth (window stalls)
	SumSrcWait       uint64 // operand wait beyond dispatch+1
	SumFUWait        uint64 // issue wait beyond operand readiness
	SumLoadLatency   uint64 // load execDone -> data back in cluster
	SumLSQWait       uint64 // load address arrival -> disambiguated start
	SumStoreAddrLag  uint64 // store dispatch -> full address at LSQ
	MaxStoreAddrLag  uint64
}

// IPC returns committed instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// New builds a processor for the configuration.
func New(cfg config.Config) *Processor {
	if err := cfg.Validate(); err != nil {
		panic("core: " + err.Error())
	}
	if cfg.Topology.Clusters() > maxClusters {
		panic("core: topology exceeds maxClusters")
	}
	c := cfg.Core
	p := &Processor{
		cfg:       cfg,
		net:       noc.New(cfg),
		nClusters: cfg.Topology.Clusters(),
		bp: bpred.New(bpred.Config{
			BimodalSize: c.BimodalSize,
			L1Size:      c.L1PredSize,
			HistoryBits: c.HistoryBits,
			L2Size:      c.L2PredSize,
			ChooserSize: c.ChooserSize,
			BTBSets:     c.BTBSets,
			BTBAssoc:    c.BTBAssoc,
			RASEntries:  c.RASEntries,
		}),
		np:  narrow.NewPredictor(c.NarrowPredSz),
		fvt: narrow.NewFrequentValueTable(),
		mem: cache.NewHierarchy(cache.HierarchyConfig{
			L1I:        cache.Config{SizeBytes: c.L1ISizeKB * 1024, LineBytes: c.LineBytes, Assoc: c.L1IAssoc, Latency: c.L1ILatency},
			L1D:        cache.Config{SizeBytes: c.L1DSizeKB * 1024, LineBytes: c.LineBytes, Assoc: c.L1DAssoc, Latency: c.L1DLatency, Banks: c.L1DBanks, Ports: c.L1DPorts},
			L2:         cache.Config{SizeBytes: c.L2SizeMB * 1024 * 1024, LineBytes: c.LineBytes, Assoc: c.L2Assoc, Latency: c.L2Latency},
			TLBEntries: c.TLBEntries,
			PageBytes:  c.PageBytes,
			MemLatency: c.MemLatency,
		}),
		fetchCal:    sched.NewCalendar(c.FetchWidth, sched.DefaultWindow),
		fetchQ:      sched.NewWheel(c.FetchQueueSize),
		dispatchCal: sched.NewCalendar(c.DispatchWidth, sched.DefaultWindow),
		commitCal:   sched.NewCalendar(c.CommitWidth, sched.DefaultWindow),
		rob:         make([]uint64, c.ROBSize),
		lsq:         newLSQ(cfg),
	}
	p.clusters = make([]cluster, p.nClusters)
	for i := range p.clusters {
		cl := &p.clusters[i]
		cl.intIQ = sched.NewWheel(c.IssueQPerClust)
		cl.fpIQ = sched.NewWheel(c.IssueQPerClust)
		cl.intRegs = sched.NewWheel(c.RegsPerClust)
		cl.fpRegs = sched.NewWheel(c.RegsPerClust)
		for k := range cl.fus {
			cl.fus[k] = sched.NewCalendar(1, sched.DefaultWindow)
		}
	}
	for r := range p.regCluster {
		p.regCluster[r] = uint8(r % p.nClusters)
		p.regGen[r] = 1 // arrivedGen zero-state must mismatch: no copies cached
	}
	p.freeIQAt = [2]uint64{^uint64(0), ^uint64(0)}
	p.freeRegsAt = p.freeIQAt
	p.initDerived()
	return p
}

// initDerived hoists every configuration-static decision of the transfer
// ladders out of the per-instruction loop: scalar class choices, feature
// flags, and the 8-entry operand-transfer action table indexed by the packed
// (predicted-narrow, narrow, ready-early) bits. The table preserves the
// ladder's priority order exactly; the frequent-value arm and the congestion
// checks remain dynamic and are layered on top in operandReady.
func (p *Processor) initDerived() {
	t := &p.cfg.Tech
	p.hasB = p.cfg.Model.Link.Has(wires.B)
	p.wideCls = wires.B
	if !p.hasB {
		p.wideCls = wires.PW
	}
	p.mispredCls = p.wideCls
	if t.MispredictOnL {
		p.mispredCls = wires.L
	}
	p.fvEnabled = t.FrequentValueEnc
	p.balanceOn = t.PWLoadBalance
	p.pwStoreData = t.PWStoreData
	p.lwirePipe = t.LWireCachePipeline
	p.criticalOnL = t.CriticalWordOnL
	p.narrowOrcl = t.NarrowOracle
	p.narrowOps = t.NarrowOperands
	p.narrowMax = p.cfg.Core.NarrowMaxBits
	for idx := range p.xferTab {
		pn, nw, re := idx&4 != 0, idx&2 != 0, idx&1 != 0
		a := xWide
		switch {
		case t.NarrowOperands && pn && nw:
			a = xNarrowL
		case t.NarrowOperands && pn && !nw:
			a = xNarrowMiss
		case t.PWReadyOperands && re:
			a = xReadyPW
		}
		p.xferTab[idx] = a
	}
}

// Reset restores the processor to the state New returns, reusing every
// allocation: calendars and wheels are rewound, caches and predictors
// cooled, the LSQ emptied, and the architectural registers re-seeded with
// their round-robin home clusters. A reset processor produces bit-identical
// results to a freshly constructed one (pinned by TestProcessorResetReplay),
// which is what lets RunScratch pool processors across runs.
//
// Reset is only valid on processors built with New: fabric-attached
// processors (NewOnFabric) share their network and memory hierarchy with
// sibling threads and must not rewind them unilaterally.
func (p *Processor) Reset() {
	p.net.Reset()
	p.mem.Reset()
	p.bp.Reset()
	p.np.Reset()
	p.fvt.Reset()

	p.fetchCal.Reset()
	p.fetchQ.Reset()
	p.dispatchCal.Reset()
	p.commitCal.Reset()
	clear(p.rob)
	p.robPos = 0
	for i := range p.clusters {
		cl := &p.clusters[i]
		cl.intIQ.Reset()
		cl.fpIQ.Reset()
		cl.intRegs.Reset()
		cl.fpRegs.Reset()
		for _, fu := range cl.fus {
			fu.Reset()
		}
	}

	p.lastFetch, p.lastDispatch, p.lastCommit = 0, 0, 0
	p.redirectAt, p.curFetchLine = 0, 0
	p.pendingBlockStart, p.blkCycle, p.blkCount = false, 0, 0
	p.pendingStore, p.havePendingStore = lsqStore{}, false

	for r := range p.regCluster {
		p.regCluster[r] = uint8(r % p.nClusters)
		p.regReady[r], p.regValue[r] = 0, 0
		p.regNarrow[r], p.regPredNarrow[r] = 0, 0
		// Bumping the generation invalidates every cached per-cluster copy
		// without touching the arrival arrays; only gen equality is ever
		// observed, so the monotone values leave behaviour identical to a
		// fresh processor's gen-1 start.
		p.regGen[r]++
	}

	p.lsq.reset()
	p.steerRR = 0
	p.freeIQAt = [2]uint64{^uint64(0), ^uint64(0)}
	p.freeRegsAt = p.freeIQAt
	p.statsBase = 0
	p.s = Stats{}
	p.probe = nil
	p.Observer = nil
}

// frontDepth is the number of pipeline stages between fetch and dispatch
// (decode + rename); together with branch resolution and the network
// signal latency it realises the "at least 12 cycles" mispredict penalty of
// Table 1.
const frontDepth = 9

// Run simulates n instructions from the stream and returns the statistics.
// It is RunContext with a background context: never cancelled, and the
// forward-progress watchdog's abort is unreachable on a well-formed machine
// (the error is discarded because it cannot occur without state corruption).
func (p *Processor) Run(src trace.Stream, n uint64) Stats {
	st, _ := p.RunContext(context.Background(), src, n)
	return st
}

// Warmup simulates n instructions and then clears all statistics while
// keeping the microarchitectural state (caches, predictors, calendars)
// warm — the paper's methodology of detailed warmup before measurement.
func (p *Processor) Warmup(src trace.Stream, n uint64) {
	var ins trace.Instr
	for i := uint64(0); i < n; i++ {
		if !src.Next(&ins) {
			break
		}
		p.step(&ins)
	}
	p.resetStats()
}

// resetStats zeroes every statistic without touching machine state. The
// cycle baseline moves to the current commit frontier so IPC reflects only
// the measured region.
func (p *Processor) resetStats() {
	p.s = Stats{}
	p.statsBase = p.lastCommit
	p.net.ResetStats()
	p.mem.ResetStats()
	p.bp.ResetStats()
	p.np.ResetStats()
	p.fvt.Hits, p.fvt.Lookups = 0, 0
}

// FrequentValueHitRate exposes the frequent-value table's lookup hit rate.
func (p *Processor) FrequentValueHitRate() float64 { return p.fvt.HitRate() }

// finalize fills the derived statistics after a run.
func (p *Processor) finalize() {
	p.s.Cycles = p.lastCommit - p.statsBase
	p.s.BranchAccuracy = p.bp.Accuracy()
	p.s.L1DMissRate = p.mem.L1D.MissRate()
	p.s.L2MissRate = p.mem.L2.MissRate()
	p.s.TLBMissRate = p.mem.TLB.MissRate()
	p.s.BTBMisses = p.bp.BTBMisses
	for i, c := range []wires.Class{wires.B, wires.PW, wires.L} {
		p.s.Net[i] = p.net.StatsFor(c)
	}
	p.s.WaitCycles = p.net.TotalWaitCycles()
	p.s.LinkInventory = p.net.LinkInventory()
	clamps := p.net.CalendarClamps() + p.mem.L1D.CalendarClamps()
	clamps += p.fetchCal.Clamped + p.dispatchCal.Clamped + p.commitCal.Clamped
	for i := range p.clusters {
		for _, fu := range p.clusters[i].fus {
			clamps += fu.Clamped
		}
	}
	p.s.CalendarClamps = clamps
}

// NarrowCoverage exposes the narrow predictor's coverage for the claims
// experiments.
func (p *Processor) NarrowCoverage() float64 { return p.np.Coverage() }

// NarrowFalseRate exposes the predictor's false-narrow rate.
func (p *Processor) NarrowFalseRate() float64 { return p.np.FalseNarrowRate() }
