// Package core implements the paper's evaluation platform: a dynamically
// scheduled partitioned (clustered) processor with a centralized load/store
// queue and L1 data cache, connected by the heterogeneous interconnect of
// internal/noc.
//
// The engine is a timestamp+calendar cycle-level model: instructions are
// processed in program order, and every structural resource — fetch
// bandwidth, the 64-entry fetch queue, dispatch bandwidth, the 480-entry
// ROB, per-cluster 15-entry issue queues and 32-entry rename register pools,
// per-cluster functional units, cache bank ports, and every per-class
// directional network link — is a cycle calendar or bounded-occupancy pool
// that grants each event the earliest feasible cycle. This models
// out-of-order issue, buffered link contention and in-order commit exactly,
// while staying deterministic. Wrong-path instructions are not simulated
// (the standard trace-driven approximation); the mispredict penalty,
// including the network latency of the resolution signal back to the front
// end, is modeled explicitly.
package core

import (
	"context"

	"hetwire/internal/bpred"
	"hetwire/internal/cache"
	"hetwire/internal/config"
	"hetwire/internal/narrow"
	"hetwire/internal/noc"
	"hetwire/internal/sched"
	"hetwire/internal/trace"
	"hetwire/internal/wires"
)

// fuKind indexes the per-cluster functional units.
type fuKind int

const (
	fuIntALU fuKind = iota
	fuIntMul
	fuFPALU
	fuFPMul
	numFUKinds
)

func fuFor(op trace.Op) fuKind {
	switch op {
	case trace.IntMul:
		return fuIntMul
	case trace.FPALU:
		return fuFPALU
	case trace.FPMul:
		return fuFPMul
	default: // int ALU ops, branches, and load/store address generation
		return fuIntALU
	}
}

// maxClusters is the largest cluster count any topology provides (the
// 16-cluster hierarchical ring); fixed-size per-register arrays are sized by
// it so renaming allocates nothing per register.
const maxClusters = 16

// regState tracks the current architectural-register mapping: which cluster
// holds the value, when it is ready there, and whether it is narrow.
type regState struct {
	cluster int
	ready   uint64
	value   uint64
	narrow  bool
	// predNarrow is the narrow predictor's decision made when the producer
	// was renamed (or the oracle's answer); transfers use it.
	predNarrow bool
	// arrived caches per-cluster delivery times of this value so multiple
	// consumers in one cluster share a single copy transfer.
	arrived [maxClusters]uint64 // 0 = not transferred yet
}

// cluster bundles one cluster's resources.
type cluster struct {
	intIQ   *sched.Heap // 15 int issue-queue entries
	fpIQ    *sched.Heap
	intRegs *sched.Heap // 32 int rename registers
	fpRegs  *sched.Heap
	fus     [numFUKinds]*sched.Calendar
}

// Processor is the simulated machine. Construct with New; drive with Run.
type Processor struct {
	cfg config.Config
	net *noc.Network
	mem *cache.Hierarchy
	bp  *bpred.Predictor
	np  *narrow.Predictor
	fvt *narrow.FrequentValueTable

	nClusters int
	clusters  []*cluster

	// Front end.
	fetchCal    *sched.Calendar // fetch bandwidth: FetchWidth/cycle
	fetchQ      *sched.Heap     // 64 entries, freed at dispatch
	dispatchCal *sched.Calendar // DispatchWidth/cycle
	commitCal   *sched.Calendar // CommitWidth/cycle
	rob         []uint64        // ring of commit times, ROBSize entries
	robPos      int

	lastFetch    uint64 // monotone fetch frontier (in-order fetch)
	lastDispatch uint64
	lastCommit   uint64
	redirectAt   uint64 // earliest fetch cycle after a mispredict redirect
	curFetchLine uint64 // current I-cache line, for fetch-access modelling

	// Basic-block fetch limiting (MaxBlocksFetch blocks per cycle).
	pendingBlockStart bool
	blkCycle          uint64
	blkCount          int

	// Store awaiting its commit time before entering the LSQ books.
	pendingStore     lsqStore
	havePendingStore bool

	regs [trace.NumArchRegs]regState

	lsq *lsqState

	steerRR int // round-robin tiebreaker for steering

	// steerW is the per-call cluster-weight scratch buffer of the dynamic
	// steering heuristic; reused across instructions so steering allocates
	// nothing on the hot path.
	steerW [maxClusters]int

	// allowed restricts steering to a cluster subset (multiprogrammed
	// threads); nil means all clusters. all caches the full index list.
	allowed []int
	all     []int

	// statsBase is the commit-frontier cycle at the last stats reset;
	// Cycles reports lastCommit - statsBase.
	statsBase uint64

	// Observer, when non-nil, receives the resolved timing of every
	// instruction — the per-stage timeline a hardware pipeline viewer
	// would show. Used by debugging tools and tests; nil costs nothing.
	Observer func(InstrTiming)

	// probe, when non-nil, receives read-only interval samples every
	// ProbeInterval committed instructions (see SetProbe). Checked only on
	// the context-poll cadence, never in the per-instruction loop.
	probe Probe

	// Statistics.
	s Stats
}

// InstrTiming is the resolved pipeline timeline of one instruction.
type InstrTiming struct {
	Seq      uint64
	PC       uint64
	Op       trace.Op
	Cluster  int
	Fetch    uint64
	Dispatch uint64
	Issue    uint64
	Complete uint64
	Commit   uint64
	Mispred  bool
}

// Stats aggregates everything the experiments read out of a run.
type Stats struct {
	Instructions uint64
	Cycles       uint64

	Branches       uint64
	Mispredicts    uint64
	BTBMisses      uint64
	Loads          uint64
	Stores         uint64
	L1DMissRate    float64
	L2MissRate     float64
	TLBMissRate    float64
	BranchAccuracy float64

	// Inter-cluster operand communication.
	OperandTransfers   uint64 // producer cluster != consumer cluster
	LocalOperands      uint64
	NarrowTransfers    uint64 // operand copies that rode L-wires
	NarrowMispredicted uint64 // predicted narrow, actually wide (resend)
	ReadyOperandPW     uint64 // criterion 1 diversions
	StoreDataPW        uint64 // criterion 2 diversions
	BalancePW          uint64 // criterion 3 diversions
	NarrowEligible     uint64 // transfers whose value was actually narrow
	FVTransfers        uint64 // transfers compacted by the frequent-value table
	CriticalWordOnL    uint64 // L2/memory loads returned on L-wires

	// LSQ behaviour.
	PartialFalseDeps uint64 // LS-bit match, full-address mismatch
	PartialChecks    uint64
	StoreForwards    uint64

	// Network.
	Net           [3]noc.ClassStats // B, PW, L
	WaitCycles    uint64
	LinkInventory map[wires.Class]float64

	// CalendarClamps counts sliding-window violations across every cycle
	// calendar in the machine; zero means all timing was exact.
	CalendarClamps uint64

	// Latency breakdown diagnostics (cycle sums; divide by Instructions).
	SumDispatchStall uint64 // dispatch beyond fetch+frontDepth (window stalls)
	SumSrcWait       uint64 // operand wait beyond dispatch+1
	SumFUWait        uint64 // issue wait beyond operand readiness
	SumLoadLatency   uint64 // load execDone -> data back in cluster
	SumLSQWait       uint64 // load address arrival -> disambiguated start
	SumStoreAddrLag  uint64 // store dispatch -> full address at LSQ
	MaxStoreAddrLag  uint64
}

// IPC returns committed instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// New builds a processor for the configuration.
func New(cfg config.Config) *Processor {
	if err := cfg.Validate(); err != nil {
		panic("core: " + err.Error())
	}
	if cfg.Topology.Clusters() > maxClusters {
		panic("core: topology exceeds maxClusters")
	}
	c := cfg.Core
	p := &Processor{
		cfg:       cfg,
		net:       noc.New(cfg),
		nClusters: cfg.Topology.Clusters(),
		bp: bpred.New(bpred.Config{
			BimodalSize: c.BimodalSize,
			L1Size:      c.L1PredSize,
			HistoryBits: c.HistoryBits,
			L2Size:      c.L2PredSize,
			ChooserSize: c.ChooserSize,
			BTBSets:     c.BTBSets,
			BTBAssoc:    c.BTBAssoc,
			RASEntries:  c.RASEntries,
		}),
		np:  narrow.NewPredictor(c.NarrowPredSz),
		fvt: narrow.NewFrequentValueTable(),
		mem: cache.NewHierarchy(cache.HierarchyConfig{
			L1I:        cache.Config{SizeBytes: c.L1ISizeKB * 1024, LineBytes: c.LineBytes, Assoc: c.L1IAssoc, Latency: c.L1ILatency},
			L1D:        cache.Config{SizeBytes: c.L1DSizeKB * 1024, LineBytes: c.LineBytes, Assoc: c.L1DAssoc, Latency: c.L1DLatency, Banks: c.L1DBanks, Ports: c.L1DPorts},
			L2:         cache.Config{SizeBytes: c.L2SizeMB * 1024 * 1024, LineBytes: c.LineBytes, Assoc: c.L2Assoc, Latency: c.L2Latency},
			TLBEntries: c.TLBEntries,
			PageBytes:  c.PageBytes,
			MemLatency: c.MemLatency,
		}),
		fetchCal:    sched.NewCalendar(c.FetchWidth, sched.DefaultWindow),
		fetchQ:      sched.NewHeap(c.FetchQueueSize),
		dispatchCal: sched.NewCalendar(c.DispatchWidth, sched.DefaultWindow),
		commitCal:   sched.NewCalendar(c.CommitWidth, sched.DefaultWindow),
		rob:         make([]uint64, c.ROBSize),
		lsq:         newLSQ(cfg),
	}
	p.clusters = make([]*cluster, p.nClusters)
	for i := range p.clusters {
		cl := &cluster{
			intIQ:   sched.NewHeap(c.IssueQPerClust),
			fpIQ:    sched.NewHeap(c.IssueQPerClust),
			intRegs: sched.NewHeap(c.RegsPerClust),
			fpRegs:  sched.NewHeap(c.RegsPerClust),
		}
		for k := range cl.fus {
			cl.fus[k] = sched.NewCalendar(1, sched.DefaultWindow)
		}
		p.clusters[i] = cl
	}
	for r := range p.regs {
		p.regs[r] = regState{cluster: r % p.nClusters}
	}
	return p
}

// frontDepth is the number of pipeline stages between fetch and dispatch
// (decode + rename); together with branch resolution and the network
// signal latency it realises the "at least 12 cycles" mispredict penalty of
// Table 1.
const frontDepth = 9

// Run simulates n instructions from the stream and returns the statistics.
// It is RunContext with a background context: never cancelled, and the
// forward-progress watchdog's abort is unreachable on a well-formed machine
// (the error is discarded because it cannot occur without state corruption).
func (p *Processor) Run(src trace.Stream, n uint64) Stats {
	st, _ := p.RunContext(context.Background(), src, n)
	return st
}

// Warmup simulates n instructions and then clears all statistics while
// keeping the microarchitectural state (caches, predictors, calendars)
// warm — the paper's methodology of detailed warmup before measurement.
func (p *Processor) Warmup(src trace.Stream, n uint64) {
	var ins trace.Instr
	for i := uint64(0); i < n; i++ {
		if !src.Next(&ins) {
			break
		}
		p.step(&ins)
	}
	p.resetStats()
}

// resetStats zeroes every statistic without touching machine state. The
// cycle baseline moves to the current commit frontier so IPC reflects only
// the measured region.
func (p *Processor) resetStats() {
	p.s = Stats{}
	p.statsBase = p.lastCommit
	p.net.ResetStats()
	p.mem.ResetStats()
	p.bp.ResetStats()
	p.np.ResetStats()
	p.fvt.Hits, p.fvt.Lookups = 0, 0
}

// FrequentValueHitRate exposes the frequent-value table's lookup hit rate.
func (p *Processor) FrequentValueHitRate() float64 { return p.fvt.HitRate() }

// finalize fills the derived statistics after a run.
func (p *Processor) finalize() {
	p.s.Cycles = p.lastCommit - p.statsBase
	p.s.BranchAccuracy = p.bp.Accuracy()
	p.s.L1DMissRate = p.mem.L1D.MissRate()
	p.s.L2MissRate = p.mem.L2.MissRate()
	p.s.TLBMissRate = p.mem.TLB.MissRate()
	p.s.BTBMisses = p.bp.BTBMisses
	for i, c := range []wires.Class{wires.B, wires.PW, wires.L} {
		p.s.Net[i] = p.net.StatsFor(c)
	}
	p.s.WaitCycles = p.net.TotalWaitCycles()
	p.s.LinkInventory = p.net.LinkInventory()
	clamps := p.net.CalendarClamps() + p.mem.L1D.CalendarClamps()
	clamps += p.fetchCal.Clamped + p.dispatchCal.Clamped + p.commitCal.Clamped
	for _, cl := range p.clusters {
		for _, fu := range cl.fus {
			clamps += fu.Clamped
		}
	}
	p.s.CalendarClamps = clamps
}

// NarrowCoverage exposes the narrow predictor's coverage for the claims
// experiments.
func (p *Processor) NarrowCoverage() float64 { return p.np.Coverage() }

// NarrowFalseRate exposes the predictor's false-narrow rate.
func (p *Processor) NarrowFalseRate() float64 { return p.np.FalseNarrowRate() }
