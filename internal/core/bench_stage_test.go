package core

import (
	"testing"

	"hetwire/internal/config"
	"hetwire/internal/trace"
)

// Per-stage microbenchmarks for the hot pipeline primitives. Each one
// isolates the data structure a stage leans on — rename-register
// acquisition, issue-queue wakeup/select occupancy, the commit-bandwidth
// calendar, and the steering scorer with its cached free-count rows — so a
// layout or scheduling change shows up attributed to a stage instead of
// buried in whole-engine numbers. All of them must run allocation-free in
// steady state; TestStageZeroSteadyStateAllocs pins that.

func benchProcessor() *Processor {
	cfg := config.Default()
	cfg.Topology = config.HierRing16
	return New(cfg.WithModel(config.ModelVIII))
}

// BenchmarkRename is the dispatch-stage rename path: acquire a rename
// register at the dispatch frontier, hold it until a commit-like release.
func BenchmarkRename(b *testing.B) {
	p := benchProcessor()
	regs := p.clusters[0].intRegs
	b.ReportAllocs()
	at := uint64(0)
	for i := 0; i < b.N; i++ {
		at++
		got := regs.Acquire(at)
		regs.Commit(got + 40)
	}
}

// BenchmarkWakeupSelect is the issue-queue residency cycle: an entry is
// selected (acquired) at dispatch, occupies the queue until issue two
// cycles later, and the free-count poll is the wakeup scan the steering
// scorer performs.
func BenchmarkWakeupSelect(b *testing.B) {
	p := benchProcessor()
	iq := p.clusters[0].intIQ
	b.ReportAllocs()
	at := uint64(0)
	for i := 0; i < b.N; i++ {
		at++
		got := iq.Acquire(at)
		iq.Commit(got + 2)
		_ = iq.Free(at)
	}
}

// BenchmarkCommit is the retire-bandwidth calendar: CommitWidth
// reservations per cycle along a monotone frontier, the exact booking
// pattern the commit stage issues.
func BenchmarkCommit(b *testing.B) {
	p := benchProcessor()
	width := p.commitCal.Capacity()
	b.ReportAllocs()
	at := uint64(0)
	for i := 0; i < b.N; i++ {
		if i%width == 0 {
			at++
		}
		p.commitCal.Reserve(at)
	}
}

// BenchmarkSteerTable is the full dynamic steering scorer: one fused
// round-robin pass over all 16 clusters reading the cached free-count rows,
// with the per-cycle row refresh included (the cycle advances every call,
// which is the worst case for the cache).
func BenchmarkSteerTable(b *testing.B) {
	p := benchProcessor()
	ins := trace.Instr{Op: trace.IntALU, Src1: 3, Src2: 7, Dest: 9}
	p.candidateClusters() // settle the one-time cluster list
	b.ReportAllocs()
	at := uint64(1)
	for i := 0; i < b.N; i++ {
		_ = p.steer(&ins, at)
		at++
	}
}

// TestStageZeroSteadyStateAllocs asserts the contract the benchmarks
// report: after warmup, none of the stage primitives allocate.
func TestStageZeroSteadyStateAllocs(t *testing.T) {
	p := benchProcessor()
	regs := p.clusters[0].intRegs
	iq := p.clusters[0].intIQ
	ins := trace.Instr{Op: trace.IntALU, Src1: 3, Src2: 7, Dest: 9}
	p.candidateClusters()
	at := uint64(1)
	stages := []struct {
		name string
		fn   func()
	}{
		{"rename", func() { regs.Commit(regs.Acquire(at) + 40) }},
		{"wakeup-select", func() { iq.Commit(iq.Acquire(at) + 2); iq.Free(at) }},
		{"commit", func() { p.commitCal.Reserve(at) }},
		{"steer-table", func() { p.steer(&ins, at) }},
	}
	for _, st := range stages {
		st.fn() // warm any one-time state
		allocs := testing.AllocsPerRun(200, func() {
			at++
			st.fn()
		})
		if allocs != 0 {
			t.Errorf("%s: %v allocs per op in steady state, want 0", st.name, allocs)
		}
	}
}
