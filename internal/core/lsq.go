package core

import (
	"hetwire/internal/config"
)

// lsqStore is one in-flight store tracked by the centralized load/store
// queue.
type lsqStore struct {
	seq       uint64 // program-order sequence number
	addr      uint64
	partialAt uint64 // LS address bits known at the LSQ (L-wire pipeline)
	fullAt    uint64 // full address known at the LSQ
	dataAt    uint64 // store data available at the LSQ
	commitAt  uint64 // store leaves the LSQ
}

// lsqState models the centralized LSQ: memory disambiguation against
// earlier in-flight stores, with either full-address comparison (baseline)
// or the paper's partial-address (LS-bit) early comparison.
type lsqState struct {
	stores []lsqStore
	lsMask uint64
	seq    uint64
}

func newLSQ(cfg config.Config) *lsqState {
	bits := cfg.Tech.LSBits
	if bits == 0 {
		bits = 8
	}
	return &lsqState{lsMask: 1<<uint(bits) - 1}
}

// word returns the 8-byte-word address used for dependence comparison.
func word(addr uint64) uint64 { return addr >> 3 }

// partial returns the LS comparison bits of an address.
func (l *lsqState) partial(addr uint64) uint64 { return word(addr) & l.lsMask }

// prune drops stores that left the LSQ well before the given time. The
// generous margin keeps pruning safe even though out-of-order address
// generation makes arrival times only roughly monotone.
//
// Stores arrive in program order with commit times granted by the commit
// calendar under monotone requests, so l.stores is sorted by commitAt and the
// expired entries form a prefix: scan until the first survivor instead of
// filtering the whole queue on every store dispatch.
func (l *lsqState) prune(before uint64) {
	const margin = 2048
	if before < margin {
		return
	}
	cutoff := before - margin
	i := 0
	for i < len(l.stores) && l.stores[i].commitAt <= cutoff {
		i++
	}
	if i > 0 {
		l.stores = l.stores[:copy(l.stores, l.stores[i:])]
	}
}

// addStore registers an in-flight store. Stores are added in program order.
func (l *lsqState) addStore(st lsqStore) {
	l.prune(st.partialAt)
	l.stores = append(l.stores, st)
}

// nextSeq hands out program-order sequence numbers.
func (l *lsqState) nextSeq() uint64 {
	l.seq++
	return l.seq
}

// loadTiming is the disambiguation result for one load.
type loadTiming struct {
	// start is the cycle at which the load is free of memory-dependence
	// constraints and may access the cache (full-address path), or at which
	// the partial comparison cleared it (partial path).
	start uint64
	// indexReady is when cache RAM indexing may begin (early on the L-wire
	// path).
	indexReady uint64
	// forwarded: an earlier store to the same word supplies the data.
	forwarded bool
	// dataAt: when forwarded data is available (valid when forwarded).
	dataAt uint64
	// falseDep: the partial comparison matched but the full addresses
	// differ (paper: <9% of loads with 8 LS bits).
	falseDep bool
	// partialChecked: the partial path performed a comparison.
	partialChecked bool
}

// disambiguateFull is the baseline LSQ pipeline: the load waits for its own
// full address and for the full addresses of all earlier in-flight stores,
// then either forwards from a matching store or proceeds to the cache.
func (l *lsqState) disambiguateFull(seq uint64, addr uint64, addrAt uint64) loadTiming {
	t := loadTiming{start: addrAt, indexReady: addrAt}
	for i := range l.stores {
		st := &l.stores[i]
		if st.seq >= seq || st.commitAt <= addrAt {
			continue // later store, or already retired from the LSQ
		}
		if st.fullAt > t.start {
			t.start = st.fullAt
		}
		if word(st.addr) == word(addr) {
			t.forwarded = true
			if st.dataAt > t.dataAt {
				t.dataAt = st.dataAt
			}
		}
	}
	t.indexReady = t.start
	if t.forwarded {
		if t.dataAt < t.start {
			t.dataAt = t.start
		}
		t.dataAt++ // forwarding mux
	}
	return t
}

// disambiguatePartial is the paper's accelerated pipeline: the LS bits
// (arriving early on L-wires) are compared against the LS bits of earlier
// stores. No match => the load is dependence-free and cache RAM access
// begins immediately; a match requires the full addresses (arriving on
// B-wires) of the matching stores before resolution.
func (l *lsqState) disambiguatePartial(seq uint64, addr uint64, lsAt, fullAt uint64) loadTiming {
	t := loadTiming{partialChecked: true}
	partialStart := lsAt
	anyMatch := false
	resolveAt := fullAt
	for i := range l.stores {
		st := &l.stores[i]
		if st.seq >= seq || st.commitAt <= lsAt {
			continue
		}
		if st.partialAt > partialStart {
			partialStart = st.partialAt
		}
		if l.partial(st.addr) == l.partial(addr) {
			anyMatch = true
			if st.fullAt > resolveAt {
				resolveAt = st.fullAt
			}
			if word(st.addr) == word(addr) {
				t.forwarded = true
				if st.dataAt > t.dataAt {
					t.dataAt = st.dataAt
				}
			}
		}
	}
	if !anyMatch {
		// Dependence-free: RAM access starts as soon as the LS bits and the
		// earlier stores' LS bits are in; the full address (needed only for
		// the final tag compare) arrives on B-wires.
		t.start = fullAt
		t.indexReady = partialStart
		return t
	}
	// Partial match: wait for the full addresses of the matching stores.
	t.start = resolveAt
	t.indexReady = partialStart // RAM banks were prefetched speculatively
	if t.forwarded {
		if t.dataAt < t.start {
			t.dataAt = t.start
		}
		t.dataAt++
	} else {
		t.falseDep = true
	}
	return t
}
