package core

import (
	"hetwire/internal/config"
)

// lsqStore is one in-flight store on its way into the centralized
// load/store queue (the store's commit time is known only after the commit
// stage, so the entry is staged in the Processor and registered then).
type lsqStore struct {
	addr      uint64
	partialAt uint64 // LS address bits known at the LSQ (L-wire pipeline)
	fullAt    uint64 // full address known at the LSQ
	dataAt    uint64 // store data available at the LSQ
	commitAt  uint64 // store leaves the LSQ
}

// lsqState models the centralized LSQ: memory disambiguation against
// earlier in-flight stores, with either full-address comparison (baseline)
// or the paper's partial-address (LS-bit) early comparison.
//
// In-flight stores live in struct-of-arrays layout: the disambiguation scans
// — the hottest loops in the LSQ — each stream through only the columns they
// compare (commit time, then full-arrival/word or partial bits), one value
// per 8 bytes of cache line instead of one per 48-byte struct. The word and
// LS-bit comparison keys are precomputed at insertion.
//
// Program order needs no explicit sequence check during disambiguation:
// stores are registered at the commit stage of their own instruction, so
// every resident entry is program-order-earlier than any load that queries
// afterwards. (Loads never enter the structure.)
type lsqState struct {
	words     []uint64 // 8-byte-word address, addr>>3
	partials  []uint64 // LS comparison bits of the word address
	partialAt []uint64
	fullAt    []uint64
	dataAt    []uint64
	commitAt  []uint64
	lsMask    uint64
	seq       uint64
}

func newLSQ(cfg config.Config) *lsqState {
	bits := cfg.Tech.LSBits
	if bits == 0 {
		bits = 8
	}
	return &lsqState{lsMask: 1<<uint(bits) - 1}
}

// word returns the 8-byte-word address used for dependence comparison.
func word(addr uint64) uint64 { return addr >> 3 }

// partial returns the LS comparison bits of an address.
func (l *lsqState) partial(addr uint64) uint64 { return word(addr) & l.lsMask }

// depth returns the number of in-flight stores resident in the queue.
func (l *lsqState) depth() int { return len(l.commitAt) }

// prune drops stores that left the LSQ well before the given time. The
// generous margin keeps pruning safe even though out-of-order address
// generation makes arrival times only roughly monotone.
//
// Stores arrive in program order with commit times granted by the commit
// calendar under monotone requests, so the queue is sorted by commitAt and
// the expired entries form a prefix: scan until the first survivor instead
// of filtering the whole queue on every store dispatch.
func (l *lsqState) prune(before uint64) {
	const margin = 2048
	if before < margin {
		return
	}
	cutoff := before - margin
	i := 0
	for i < len(l.commitAt) && l.commitAt[i] <= cutoff {
		i++
	}
	if i > 0 {
		l.words = l.words[:copy(l.words, l.words[i:])]
		l.partials = l.partials[:copy(l.partials, l.partials[i:])]
		l.partialAt = l.partialAt[:copy(l.partialAt, l.partialAt[i:])]
		l.fullAt = l.fullAt[:copy(l.fullAt, l.fullAt[i:])]
		l.dataAt = l.dataAt[:copy(l.dataAt, l.dataAt[i:])]
		l.commitAt = l.commitAt[:copy(l.commitAt, l.commitAt[i:])]
	}
}

// addStore registers an in-flight store. Stores are added in program order.
func (l *lsqState) addStore(st lsqStore) {
	l.prune(st.partialAt)
	w := word(st.addr)
	l.words = append(l.words, w)
	l.partials = append(l.partials, w&l.lsMask)
	l.partialAt = append(l.partialAt, st.partialAt)
	l.fullAt = append(l.fullAt, st.fullAt)
	l.dataAt = append(l.dataAt, st.dataAt)
	l.commitAt = append(l.commitAt, st.commitAt)
}

// reset empties the queue (keeping column storage) and rewinds sequencing.
func (l *lsqState) reset() {
	l.words = l.words[:0]
	l.partials = l.partials[:0]
	l.partialAt = l.partialAt[:0]
	l.fullAt = l.fullAt[:0]
	l.dataAt = l.dataAt[:0]
	l.commitAt = l.commitAt[:0]
	l.seq = 0
}

// nextSeq hands out program-order sequence numbers.
func (l *lsqState) nextSeq() uint64 {
	l.seq++
	return l.seq
}

// firstInFlight returns the index of the first store still resident at the
// given cycle. The queue is sorted by commitAt (commit-calendar grants under
// monotone requests), so the retired entries form a prefix that a binary
// search skips in one step instead of a per-entry test in the scan loops.
func (l *lsqState) firstInFlight(at uint64) int {
	lo, hi := 0, len(l.commitAt)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if l.commitAt[mid] <= at {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// loadTiming is the disambiguation result for one load.
type loadTiming struct {
	// start is the cycle at which the load is free of memory-dependence
	// constraints and may access the cache (full-address path), or at which
	// the partial comparison cleared it (partial path).
	start uint64
	// indexReady is when cache RAM indexing may begin (early on the L-wire
	// path).
	indexReady uint64
	// forwarded: an earlier store to the same word supplies the data.
	forwarded bool
	// dataAt: when forwarded data is available (valid when forwarded).
	dataAt uint64
	// falseDep: the partial comparison matched but the full addresses
	// differ (paper: <9% of loads with 8 LS bits).
	falseDep bool
	// partialChecked: the partial path performed a comparison.
	partialChecked bool
}

// disambiguateFull is the baseline LSQ pipeline: the load waits for its own
// full address and for the full addresses of all earlier in-flight stores,
// then either forwards from a matching store or proceeds to the cache.
func (l *lsqState) disambiguateFull(addr uint64, addrAt uint64) loadTiming {
	t := loadTiming{start: addrAt, indexReady: addrAt}
	w := word(addr)
	n := len(l.commitAt)
	lo := l.firstInFlight(addrAt)
	fullAt, words, dataAt := l.fullAt[lo:n], l.words[lo:n], l.dataAt[lo:n]
	for i := range fullAt {
		if f := fullAt[i]; f > t.start {
			t.start = f
		}
		if words[i] == w {
			t.forwarded = true
			if d := dataAt[i]; d > t.dataAt {
				t.dataAt = d
			}
		}
	}
	t.indexReady = t.start
	if t.forwarded {
		if t.dataAt < t.start {
			t.dataAt = t.start
		}
		t.dataAt++ // forwarding mux
	}
	return t
}

// disambiguatePartial is the paper's accelerated pipeline: the LS bits
// (arriving early on L-wires) are compared against the LS bits of earlier
// stores. No match => the load is dependence-free and cache RAM access
// begins immediately; a match requires the full addresses (arriving on
// B-wires) of the matching stores before resolution.
func (l *lsqState) disambiguatePartial(addr uint64, lsAt, fullAt uint64) loadTiming {
	t := loadTiming{partialChecked: true}
	w := word(addr)
	pw := w & l.lsMask
	partialStart := lsAt
	anyMatch := false
	resolveAt := fullAt
	n := len(l.commitAt)
	lo := l.firstInFlight(lsAt)
	partials, partialAts, fullAts, words, dataAts := l.partials[lo:n], l.partialAt[lo:n], l.fullAt[lo:n], l.words[lo:n], l.dataAt[lo:n]
	for i := range partials {
		if pa := partialAts[i]; pa > partialStart {
			partialStart = pa
		}
		if partials[i] == pw {
			anyMatch = true
			if f := fullAts[i]; f > resolveAt {
				resolveAt = f
			}
			if words[i] == w {
				t.forwarded = true
				if d := dataAts[i]; d > t.dataAt {
					t.dataAt = d
				}
			}
		}
	}
	if !anyMatch {
		// Dependence-free: RAM access starts as soon as the LS bits and the
		// earlier stores' LS bits are in; the full address (needed only for
		// the final tag compare) arrives on B-wires.
		t.start = fullAt
		t.indexReady = partialStart
		return t
	}
	// Partial match: wait for the full addresses of the matching stores.
	t.start = resolveAt
	t.indexReady = partialStart // RAM banks were prefetched speculatively
	if t.forwarded {
		if t.dataAt < t.start {
			t.dataAt = t.start
		}
		t.dataAt++
	} else {
		t.falseDep = true
	}
	return t
}
