package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"hetwire/internal/config"
	"hetwire/internal/trace"
	"hetwire/internal/workload"
)

func genFor(t *testing.T, bench string) trace.Stream {
	t.Helper()
	prof, ok := workload.ByName(bench)
	if !ok {
		t.Fatalf("unknown benchmark %s", bench)
	}
	return workload.NewGenerator(prof)
}

// TestRunContextMatchesRun: the ctx polling must not perturb simulation —
// a completed RunContext is bit-identical to Run (the corpus-level guard
// lives in the root package; this is the unit-level version).
func TestRunContextMatchesRun(t *testing.T) {
	const n = 3 * CtxCheckInterval // cross several check boundaries
	a := New(config.Default()).Run(genFor(t, "gcc"), n)
	b, err := New(config.Default()).RunContext(context.Background(), genFor(t, "gcc"), n)
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("ctx path diverged from plain Run:\n%+v\nvs\n%+v", a, b)
	}
}

// TestRunContextCancel: a pre-cancelled context stops the run within one
// check interval and surfaces ctx's error with partial statistics.
func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := New(config.Default()).RunContext(ctx, genFor(t, "gzip"), 50*CtxCheckInterval)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The first poll happens at CtxCheckInterval committed instructions.
	if st.Instructions > CtxCheckInterval {
		t.Errorf("ran %d instructions after cancellation, want <= %d", st.Instructions, uint64(CtxCheckInterval))
	}
}

// TestRunMultiprogramContextCancel: same for the multiprogrammed loop.
func TestRunMultiprogramContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	streams := []trace.Stream{genFor(t, "gcc"), genFor(t, "mcf")}
	res, err := RunMultiprogramContext(ctx, config.Default(), streams, 50*CtxCheckInterval)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var total uint64
	for _, r := range res {
		total += r.Stats.Instructions
	}
	if total > CtxCheckInterval {
		t.Errorf("threads ran %d instructions after cancellation, want <= %d", total, uint64(CtxCheckInterval))
	}
}

// TestRunMultiprogramContextMatches: the ctx multiprogram loop completes
// bit-identically to the legacy path (which now delegates to it — this
// guards the delegation itself against drift).
func TestRunMultiprogramContextMatches(t *testing.T) {
	const n = 2 * CtxCheckInterval
	mk := func() []trace.Stream {
		return []trace.Stream{genFor(t, "gzip"), genFor(t, "swim")}
	}
	a := RunMultiprogram(config.Default(), mk(), n)
	b, err := RunMultiprogramContext(context.Background(), config.Default(), mk(), n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !reflect.DeepEqual(a[i].Stats, b[i].Stats) {
			t.Fatalf("thread %d diverged", i)
		}
	}
}

// TestWatchdogPredicate: the forward-progress check fires exactly when the
// commit frontier fails to advance across a window, with diagnostics.
func TestWatchdogPredicate(t *testing.T) {
	p := New(config.Default())
	p.lastCommit = 900
	if err := p.checkProgress(800, CtxCheckInterval); err != nil {
		t.Errorf("advancing frontier flagged: %v", err)
	}
	err := p.checkProgress(900, 2*CtxCheckInterval)
	if err == nil {
		t.Fatal("stuck frontier not flagged")
	}
	var np *NoProgressError
	if !errors.As(err, &np) {
		t.Fatalf("error type %T, want *NoProgressError", err)
	}
	if np.Cycle != 900 || np.Committed != 2*CtxCheckInterval {
		t.Errorf("diagnostics = %+v", np)
	}
}

// TestWatchdogQuietOnRealRuns: a long legitimate run must never trip the
// watchdog (commit width is finite, so every window advances the frontier).
func TestWatchdogQuietOnRealRuns(t *testing.T) {
	_, err := New(config.Default()).RunContext(context.Background(), genFor(t, "mcf"), 6*CtxCheckInterval)
	if err != nil {
		t.Fatalf("watchdog fired on a healthy run: %v", err)
	}
}
